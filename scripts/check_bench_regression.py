#!/usr/bin/env python3
"""Gate the observability-probe overhead against BENCH_substrate.json.

Usage: scripts/check_bench_regression.py bench_out.json \
           [--reference BENCH_substrate.json] [--tolerance 2.0]
       scripts/check_bench_regression.py --placement placement_ab.json \
           [--reference BENCH_substrate.json] [--tolerance 2.0]
       scripts/check_bench_regression.py --spill oom_spill.json \
           [--reference BENCH_substrate.json] [--tolerance 2.0]

`bench_out.json` is google-benchmark's --benchmark_out JSON for a run of
bench_micro_substrate covering the BM_FabricSendMT* series. The reference
file records, per probe family (tracing, telemetry), the armed/disarmed
per-op times captured on the baseline machine as "NNN (X.XM/s)" strings.

Absolute nanoseconds do not transfer between machines (shared CI runners
drift 2x and more), so the gate compares RATIOS: for each thread count, the
armed-over-disarmed slowdown measured in this run must not exceed the
reference slowdown times --tolerance. A disabled-gate regression (the
one-relaxed-atomic-branch discipline eroding into real work) shows up the
same way: the armed/disarmed ratio collapses toward 1 only if both paths do
the work, so the disarmed baseline is additionally checked against the
armed time of the SAME run (disarmed must stay strictly cheaper).

--spill gates bench_oom_spill_ab's out-of-core measurements against the
oom_spill_ab series: per algorithm, the budget must have bitten (spill_runs
> 0), spill amplification (spilled bytes over the unlimited run's shuffle
bytes) must not exceed the reference times --tolerance, and the virtual-time
slowdown must stay within the same factor of the reference. Run counts and
high-water marks are NOT gated here — batch arrival order shifts them a few
percent between runs, and the binary already hard-gates byte identity,
ledger balance, and the arena ceiling before emitting JSON at all.

--placement instead gates bench_placement_ab's remote-byte measurements:
virtual-traffic byte counts are fully deterministic (no machine drift), so
each algorithm's hash-over-bfs remote-byte ratio must stay at or above both
the 2x acceptance floor and the reference ratio in the placement_ab series
divided by --tolerance.
"""
import argparse
import json
import re
import sys

# Reference key -> (disarmed benchmark, armed benchmark) as named by
# bench_micro_substrate. BM_FabricSendMTDisarmed is the shared
# gates-off baseline for both probe families.
SERIES = {
    "fabric_send_mt_tracing": (
        "BM_FabricSendMTDisarmed",
        "BM_FabricSendMTTraceEnabled",
    ),
    "fabric_send_mt_telemetry": (
        "BM_FabricSendMTDisarmed",
        "BM_FabricSendMTTelemetryEnabled",
    ),
}
THREADS = (1, 4, 8)


def ref_ns(cell: str) -> float:
    """Parse the leading per-op time from a 'NNN (X.XM/s)' reference cell."""
    m = re.match(r"\s*([0-9.]+)", cell)
    if not m:
        raise ValueError(f"unparseable reference cell: {cell!r}")
    return float(m.group(1))


def load_run(path: str) -> dict:
    """Map 'BM_Name/threads:N' -> real_time ns from a --benchmark_out file.

    Prefers the 'median' aggregate when repetitions were requested; falls
    back to the plain iteration entry otherwise.
    """
    with open(path) as f:
        out = json.load(f)
    times = {}
    for b in out.get("benchmarks", []):
        name = b["name"]
        base = name
        aggregate = b.get("aggregate_name", "")
        if aggregate:
            if aggregate != "median":
                continue
            base = name.rsplit("_", 1)[0]  # strip '_median'
        elif b.get("run_type") == "aggregate":
            continue
        if base in times and not aggregate:
            continue  # keep the first (or the median already stored)
        times[base] = float(b["real_time"])
    return times


PLACEMENT_FLOOR = 2.0  # ISSUE 9 acceptance: remote bytes drop >= 2x


def check_placement(run_path: str, reference: dict, tolerance: float) -> int:
    """Gate bench_placement_ab --json output against the placement_ab series."""
    with open(run_path) as f:
        run = json.load(f)
    series = reference.get("placement_ab", {})
    failures = []
    for algo in ("pagerank", "sssp"):
        point = run.get(algo)
        if point is None:
            failures.append(f"placement_ab/{algo}: missing from the bench run")
            continue
        ratio = float(point["ratio"])
        ref = series.get(algo, {})
        ref_ratio = float(ref.get("ratio", PLACEMENT_FLOOR))
        limit = max(PLACEMENT_FLOOR, ref_ratio / tolerance)
        verdict = "ok" if ratio >= limit else "REGRESSION"
        print(
            f"placement_ab/{algo}: hash/bfs remote bytes {ratio:.2f}x "
            f"(reference {ref_ratio:.2f}x, floor {limit:.2f}x) {verdict}"
        )
        if ratio < limit:
            failures.append(
                f"placement_ab/{algo}: remote-byte drop {ratio:.2f}x fell "
                f"below {limit:.2f}x"
            )
    if failures:
        print("\nFAIL:")
        for f_ in failures:
            print(f"  {f_}")
        return 1
    print("\nall placement remote-byte ratios at or above their floors")
    return 0


def check_spill(run_path: str, reference: dict, tolerance: float) -> int:
    """Gate bench_oom_spill_ab --json output against the oom_spill_ab series."""
    with open(run_path) as f:
        run = json.load(f)
    series = reference.get("oom_spill_ab", {})
    failures = []
    for algo in ("pagerank", "sssp"):
        point = run.get(algo)
        if point is None:
            failures.append(f"oom_spill_ab/{algo}: missing from the bench run")
            continue
        runs = int(point["spill_runs"])
        amp = float(point["amplification"])
        slowdown = float(point["slowdown"])
        ref = series.get(algo, {})
        amp_limit = float(ref.get("amplification", 1.0)) * tolerance
        slow_limit = float(ref.get("slowdown", 2.0)) * tolerance
        checks = [
            (runs > 0, f"{runs} spill runs", "the budget never bit"),
            (
                amp <= amp_limit,
                f"amplification {amp:.2f}x (limit {amp_limit:.2f}x)",
                f"amplification {amp:.2f}x exceeds {amp_limit:.2f}x",
            ),
            (
                slowdown <= slow_limit,
                f"slowdown {slowdown:.2f}x (limit {slow_limit:.2f}x)",
                f"slowdown {slowdown:.2f}x exceeds {slow_limit:.2f}x",
            ),
        ]
        parts = []
        for ok, detail, failure in checks:
            parts.append(detail)
            if not ok:
                failures.append(f"oom_spill_ab/{algo}: {failure}")
        verdict = (
            "ok"
            if all(ok for ok, _, _ in checks)
            else "REGRESSION"
        )
        print(f"oom_spill_ab/{algo}: " + ", ".join(parts) + f" {verdict}")
    if failures:
        print("\nFAIL:")
        for f_ in failures:
            print(f"  {f_}")
        return 1
    print("\nall spill amplification and slowdown ratios within tolerance")
    return 0


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument(
        "bench_out",
        nargs="?",
        help="google-benchmark --benchmark_out JSON (probe-overhead mode)",
    )
    ap.add_argument(
        "--placement",
        help="bench_placement_ab --json output to gate instead of the "
        "probe-overhead series",
    )
    ap.add_argument(
        "--spill",
        help="bench_oom_spill_ab --json output to gate instead of the "
        "probe-overhead series",
    )
    ap.add_argument("--reference", default="BENCH_substrate.json")
    ap.add_argument(
        "--tolerance",
        type=float,
        default=2.0,
        help="armed/disarmed ratio may exceed the reference ratio by "
        "at most this factor (default 2.0); in --placement mode the "
        "measured drop may fall below the reference by the same factor",
    )
    args = ap.parse_args()

    with open(args.reference) as f:
        reference = json.load(f)
    if args.placement:
        return check_placement(args.placement, reference, args.tolerance)
    if args.spill:
        return check_spill(args.spill, reference, args.tolerance)
    if not args.bench_out:
        ap.error("either bench_out, --placement, or --spill is required")
    run = load_run(args.bench_out)

    failures = []
    for key, (disarmed_bm, armed_bm) in SERIES.items():
        series = reference.get(key)
        if series is None:
            print(f"{key}: no reference series, skipping")
            continue
        for t in THREADS:
            tkey = f"threads_{t}"
            try:
                ref_ratio = ref_ns(series["enabled"][tkey]) / ref_ns(
                    series["disabled"][tkey]
                )
            except KeyError:
                print(f"{key}/{tkey}: incomplete reference, skipping")
                continue
            disarmed = run.get(f"{disarmed_bm}/threads:{t}")
            armed = run.get(f"{armed_bm}/threads:{t}")
            if disarmed is None or armed is None:
                failures.append(
                    f"{key}/{tkey}: series missing from the benchmark run "
                    f"(need {disarmed_bm} and {armed_bm} at threads:{t})"
                )
                continue
            ratio = armed / disarmed
            limit = ref_ratio * args.tolerance
            verdict = "ok" if ratio <= limit else "REGRESSION"
            print(
                f"{key}/{tkey}: armed {armed:.0f}ns / disarmed "
                f"{disarmed:.0f}ns = {ratio:.2f}x "
                f"(reference {ref_ratio:.2f}x, limit {limit:.2f}x) {verdict}"
            )
            if ratio > limit:
                failures.append(
                    f"{key}/{tkey}: armed/disarmed {ratio:.2f}x exceeds "
                    f"{limit:.2f}x"
                )
            if armed < disarmed * 0.5:
                # An armed probe measurably CHEAPER than the gated-off path
                # means the baseline got slower, not the probe faster.
                failures.append(
                    f"{key}/{tkey}: disarmed path ({disarmed:.0f}ns) is over "
                    f"2x slower than armed ({armed:.0f}ns) — the disabled "
                    f"gate is doing real work"
                )

    if failures:
        print("\nFAIL:")
        for f_ in failures:
            print(f"  {f_}")
        return 1
    print("\nall probe-overhead ratios within tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
