#!/usr/bin/env python3
"""Summarize a bench_output.txt into the EXPERIMENTS.md results digest.

Usage: scripts/summarize_bench.py [bench_output.txt]

Extracts, per bench binary: the banner line, every `expected (paper)` /
`measured` pair, and the exit status — the material EXPERIMENTS.md records.
"""
import re
import sys


def main() -> int:
    path = sys.argv[1] if len(sys.argv) > 1 else "bench_output.txt"
    with open(path, errors="replace") as f:
        text = f.read()

    blocks = re.split(r"^##### (build/\S+)$", text, flags=re.M)
    # blocks[0] is preamble; then alternating (name, body)
    ok = True
    for name, body in zip(blocks[1::2], blocks[2::2]):
        short = name.split("/")[-1]
        exit_m = re.search(r"^##### exit=(\d+)", body, flags=re.M)
        code = exit_m.group(1) if exit_m else "?"
        banner = ""
        lines = body.splitlines()
        for i, line in enumerate(lines):
            if line.startswith("====") and i + 1 < len(lines):
                banner = lines[i + 1].strip()
                break
        print(f"\n## {short}  [exit={code}]")
        if banner:
            print(f"   {banner}")
        if code not in ("0", "?"):
            ok = False
        for m in re.finditer(
            r"^\s*expected \(paper\): (.*)$\n^\s*measured:\s+(.*)$",
            body,
            flags=re.M,
        ):
            print(f"   paper:    {m.group(1).strip()}")
            print(f"   measured: {m.group(2).strip()}")
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
