// imr_run — command-line driver for the framework.
//
//   imr_run <algorithm> [flags]
//
// Algorithms: sssp | pagerank | concomp | kmeans | jacobi | logreg | matpower
//
// Common flags:
//   --engine imr|mr|both   which framework to run (default both)
//   --workers N            cluster size (default 4)
//   --tasks N              persistent task pairs (default = workers)
//   --iterations N         max iterations (default 10)
//   --threshold X          distance threshold (default: fixed iterations)
//   --sync                 disable asynchronous map execution
//   --workset              workset (frontier) iteration for the imr engine
//                          (sssp | concomp | pagerank; pagerank switches to
//                          its delta-accumulation formulation)
//   --update-batch PATH    evolving-input session (requires --workset and a
//                          graph algorithm): converge, then replay the graph
//                          edits in PATH against the live session instead of
//                          recomputing from scratch. One edit per line:
//                            add <u> <v> [w] | remove <u> <v> | weight <u> <v> <w>
//                          A line of "---" ends a batch; each batch is one
//                          apply_update() epoch.
//   --delta-threshold X    pagerank --workset share threshold (default 1e-8)
//   --partitioner P        hash | bfs | file — how keys map to task pairs
//                          (graph algorithms; default hash). bfs grows seeded
//                          balanced regions over the graph; file loads a
//                          METIS-style assignment (see --partition-file).
//                          Non-hash partitioners also drive partition-aware
//                          task placement (DESIGN.md §9).
//   --partition-file PATH  vertex->partition file for --partitioner file
//                          (line i = partition of vertex i; '#' comments)
//   --agg-exchange         aggregate remote-destined shuffle output into one
//                          coalesced batch per destination worker, flushed at
//                          the iteration barrier (DESIGN.md §9)
//   --buffer N             reduce->map send buffer records
//   --max-memory B         per-task memory budget in bytes, with optional
//                          k/m/g suffix (binary units, e.g. 64m). Tasks
//                          whose record buffers overflow the budget sort
//                          and spill runs to MiniDfs and the reduce streams
//                          a k-way merge over them — same output bytes,
//                          bounded footprint (DESIGN.md §10). Default:
//                          unlimited.
//   --checkpoint N         checkpoint every N iterations
//   --balance              enable load balancing
//   --combiner             enable the map-side combiner (kmeans)
//   --ec2                  use the EC2 cost preset instead of local
//   --data-scale S         cost-model scaling for 1/S-size datasets
//   --seed S               dataset seed
//   --report               dump the metrics report after the run
//   --trace PATH           record a Chrome/Perfetto trace of the run(s) and
//                          write it to PATH (or set IMR_TRACE=<path>)
//   --telemetry PATH       record iteration telemetry (traffic matrix, hot
//                          keys, stragglers) and write the JSONL to PATH
//                          (or set IMR_TELEMETRY=<path>); analyze it with
//                          tools/imr_stat
//
// Dataset flags: --graph <name> --scale <s> (graph algorithms),
//   --points/--dim/--clusters (kmeans), --samples/--lr (logreg),
//   --n/--density (jacobi), --n (matpower).
#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "algorithms/concomp.h"
#include "algorithms/jacobi.h"
#include "algorithms/kmeans.h"
#include "algorithms/logreg.h"
#include "algorithms/matpower.h"
#include "algorithms/pagerank.h"
#include "algorithms/sssp.h"
#include "bench_util/harness.h"
#include "common/flags.h"
#include "common/log.h"
#include "common/strings.h"
#include "graph/generator.h"
#include "graph/partition.h"
#include "imapreduce/engine.h"
#include "mapreduce/iterative_driver.h"
#include "metrics/telemetry.h"
#include "metrics/trace.h"

using namespace imr;

namespace {

struct Options {
  std::string engine = "both";
  int workers = 4;
  int tasks = 0;
  int iterations = 10;
  double threshold = -1.0;
  bool sync = false;
  bool workset = false;
  double delta_threshold = 1e-8;
  int buffer = 4096;
  int checkpoint = 0;
  bool balance = false;
  bool combiner = false;
  bool ec2 = false;
  double data_scale = 1.0;
  uint64_t seed = 42;
  bool report = false;
  std::string partitioner = "hash";  // hash | bfs | file
  std::string partition_file;       // METIS-style assignment for "file"
  bool agg = false;                 // aggregated cross-worker exchange
  std::string max_memory_raw;  // --max-memory as given; parsed in main
  int64_t max_memory = 0;      // parsed byte budget; 0 = unlimited
  std::string trace;  // trace export path; empty = no tracing
  std::string telemetry;  // telemetry JSONL export path; empty = disabled
  std::string update_batch;  // graph-edit script; empty = plain run
};

Options parse_options(const Flags& flags) {
  Options o;
  o.engine = flags.get("engine", "both");
  o.workers = static_cast<int>(flags.get_int("workers", 4));
  o.tasks = static_cast<int>(flags.get_int("tasks", 0));
  o.iterations = static_cast<int>(flags.get_int("iterations", 10));
  o.threshold = flags.get_double("threshold", -1.0);
  o.sync = flags.get_bool("sync");
  o.workset = flags.get_bool("workset");
  o.delta_threshold = flags.get_double("delta-threshold", 1e-8);
  o.buffer = static_cast<int>(flags.get_int("buffer", 4096));
  o.checkpoint = static_cast<int>(flags.get_int("checkpoint", 0));
  o.balance = flags.get_bool("balance");
  o.combiner = flags.get_bool("combiner");
  o.ec2 = flags.get_bool("ec2");
  o.data_scale = flags.get_double("data-scale", 1.0);
  o.seed = static_cast<uint64_t>(flags.get_int("seed", 42));
  o.report = flags.get_bool("report");
  o.partitioner = flags.get("partitioner", "hash");
  o.partition_file = flags.get("partition-file", "");
  o.agg = flags.get_bool("agg-exchange");
  o.max_memory_raw = flags.get("max-memory", "");
  o.update_batch = flags.get("update-batch", "");
  o.trace = flags.get("trace", "");
  if (o.trace.empty()) {
    // IMR_TRACE=<path> arms tracing at process start (see metrics/trace.h);
    // honor its value as the export path.
    const char* env = std::getenv("IMR_TRACE");
    if (env != nullptr) o.trace = env;
  }
  o.telemetry = flags.get("telemetry", "");
  if (o.telemetry.empty()) {
    // IMR_TELEMETRY=<path> arms telemetry at process start (see
    // metrics/telemetry.h); honor its value as the export path.
    const char* env = std::getenv("IMR_TELEMETRY");
    if (env != nullptr) o.telemetry = env;
  }
  return o;
}

std::unique_ptr<Cluster> make_cluster(const Options& o) {
  ClusterConfig config = o.ec2 ? bench::ec2_preset(o.workers, o.data_scale)
                               : bench::local_cluster_preset(o.data_scale);
  config.num_workers = o.workers;
  return std::make_unique<Cluster>(config);
}

void apply_common(IterJobConf& conf, const Options& o) {
  conf.num_tasks = o.tasks;
  if (o.sync) conf.async_maps = false;
  conf.workset_mode = o.workset;
  conf.buffer_records = o.buffer;
  conf.checkpoint_every = o.checkpoint;
  conf.load_balancing = o.balance;
  conf.aggregated_shuffle = o.agg;
  conf.max_task_memory_bytes = o.max_memory;
}

// Parses a --max-memory byte count: a positive integer with an optional
// k/m/g suffix (binary units). Rejects zero, negatives, and trailing junk.
bool parse_memory_bytes(const std::string& s, int64_t& out) {
  if (s.empty()) return false;
  char* end = nullptr;
  const long long v = std::strtoll(s.c_str(), &end, 10);
  if (end == s.c_str() || v <= 0) return false;
  int64_t mult = 1;
  if (*end != '\0') {
    switch (std::tolower(static_cast<unsigned char>(*end))) {
      case 'k': mult = int64_t{1} << 10; break;
      case 'm': mult = int64_t{1} << 20; break;
      case 'g': mult = int64_t{1} << 30; break;
      default: return false;
    }
    if (end[1] != '\0') return false;
  }
  out = static_cast<int64_t>(v) * mult;
  return true;
}

// Builds the conf's partitioner from --partitioner/--partition-file (graph
// algorithms only; flag combinations are validated in main). A non-hash
// partitioner pins conf.num_tasks: the partition count must equal the
// engine's task count, so the default ("fill the slots") is resolved here.
void apply_partitioner(IterJobConf& conf, const Options& o, const Graph& g,
                       const Cluster& cluster) {
  if (o.partitioner == "hash") return;
  const int t = o.tasks > 0
                    ? o.tasks
                    : std::min(cluster.map_slots(), cluster.reduce_slots());
  conf.num_tasks = t;
  if (o.partitioner == "bfs") {
    conf.partitioner =
        make_bfs_partitioner(g, static_cast<uint32_t>(t), o.seed);
  } else {  // "file"
    conf.partitioner = make_file_partitioner(
        load_partition_file(o.partition_file, g.num_nodes()), g,
        static_cast<uint32_t>(t));
  }
}

// One parsed batch of graph edits from an --update-batch script.
using EditBatch = std::vector<std::vector<std::string>>;

// Splits the script into batches at "---" lines; "#" starts a comment.
std::vector<EditBatch> parse_update_script(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw Error("cannot open update batch: " + path);
  std::vector<EditBatch> batches(1);
  std::string line;
  while (std::getline(in, line)) {
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    std::istringstream tok(line);
    std::vector<std::string> words;
    std::string w;
    while (tok >> w) words.push_back(w);
    if (words.empty()) continue;
    if (words[0] == "---") {
      if (!batches.back().empty()) batches.emplace_back();
      continue;
    }
    batches.back().push_back(std::move(words));
  }
  if (batches.back().empty()) batches.pop_back();
  return batches;
}

uint32_t parse_node(const std::string& s, uint32_t num_nodes) {
  char* end = nullptr;
  const unsigned long v = std::strtoul(s.c_str(), &end, 10);
  if (end == s.c_str() || *end != '\0' || v >= num_nodes) {
    throw Error("update batch: bad node id '" + s + "'");
  }
  return static_cast<uint32_t>(v);
}

// Applies one batch of edits to a copy of `g` and returns the mutated graph.
Graph apply_edits(const Graph& g, const EditBatch& batch) {
  Graph out = g;
  for (const auto& words : batch) {
    const std::string& op = words[0];
    if ((op == "add" && (words.size() < 3 || words.size() > 4)) ||
        (op == "remove" && words.size() != 3) ||
        (op == "weight" && words.size() != 4)) {
      throw Error("update batch: malformed edit '" + join(words, " ") + "'");
    }
    if (op != "add" && op != "remove" && op != "weight") {
      throw Error("update batch: unknown op '" + op + "'");
    }
    const uint32_t u = parse_node(words[1], out.num_nodes());
    const uint32_t v = parse_node(words[2], out.num_nodes());
    double w = 1.0;
    if (words.size() == 4 && !parse_double_strict(words[3], w)) {
      throw Error("update batch: bad weight '" + words[3] + "'");
    }
    auto& edges = out.adj[u];
    auto it = std::find_if(edges.begin(), edges.end(),
                           [v](const WEdge& e) { return e.dst == v; });
    if (op == "remove") {
      if (it == edges.end()) {
        throw Error("update batch: remove of absent edge " + words[1] + "->" +
                    words[2]);
      }
      edges.erase(it);
    } else if (it != edges.end()) {
      it->weight = w;
    } else {
      edges.push_back(WEdge{v, w});
    }
  }
  return out;
}

void print_outcome(const char* label, const RunReport& r) {
  std::printf("%-22s %3d iterations  %10.1f virtual s  %s\n", label,
              r.iterations_run, r.total_wall_ms / 1e3,
              r.converged ? "(converged)" : "");
}

// Evolving-input session (DESIGN.md §8): converge once, then absorb each
// edit batch through apply_update instead of recomputing from scratch.
RunReport run_update_session(Cluster& cluster, const IterJobConf& conf,
                             Graph g, const std::vector<EditBatch>& batches,
                             StaticDelta (*delta_fn)(const Graph&,
                                                     const Graph&)) {
  IterativeEngine engine(cluster);
  JobSession session = engine.open_session(conf);
  print_outcome("session converge:", session.last_report());
  int n = 0;
  for (const EditBatch& batch : batches) {
    Graph g1 = apply_edits(g, batch);
    const StaticDelta delta = delta_fn(g, g1);
    const RunReport ep = session.apply_update(delta);
    const std::string label =
        "update batch " + std::to_string(++n) + " (" +
        std::to_string(batch.size()) + " edits, " +
        std::to_string(delta.size()) + " ops):";
    print_outcome(label.c_str(), ep);
    g = std::move(g1);
  }
  return session.close();
}

int usage() {
  std::fprintf(stderr,
               "usage: imr_run <sssp|pagerank|concomp|kmeans|jacobi|logreg|"
               "matpower> [flags]\n  (see the header of tools/imr_run.cpp)\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  if (flags.positional().empty()) return usage();
  const std::string algo = flags.positional()[0];
  Options o = parse_options(flags);
  if (flags.get_bool("verbose")) set_log_level(LogLevel::kInfo);
  if (o.workset && algo != "sssp" && algo != "concomp" && algo != "pagerank") {
    std::fprintf(stderr,
                 "error: --workset is wired for sssp|concomp|pagerank (the "
                 "jobs whose reducers implement the monotonic-update merge "
                 "contract)\n");
    return 2;
  }

  if (!o.update_batch.empty() && !o.workset) {
    std::fprintf(stderr,
                 "error: --update-batch needs --workset (sessions reconverge "
                 "from a frontier) and a graph algorithm\n");
    return 2;
  }

  const bool graph_algo =
      algo == "sssp" || algo == "pagerank" || algo == "concomp";
  if (o.partitioner != "hash" && o.partitioner != "bfs" &&
      o.partitioner != "file") {
    std::fprintf(stderr, "error: --partitioner must be hash, bfs, or file\n");
    return 2;
  }
  if (o.partitioner == "file" && o.partition_file.empty()) {
    std::fprintf(stderr,
                 "error: --partitioner file needs --partition-file <path>\n");
    return 2;
  }
  if (!o.partition_file.empty() && o.partitioner != "file") {
    std::fprintf(stderr,
                 "error: --partition-file only applies to --partitioner "
                 "file\n");
    return 2;
  }
  if (o.partitioner != "hash" && !graph_algo) {
    std::fprintf(stderr,
                 "error: --partitioner is wired for the graph algorithms "
                 "(sssp|pagerank|concomp)\n");
    return 2;
  }
  if (!o.max_memory_raw.empty() &&
      !parse_memory_bytes(o.max_memory_raw, o.max_memory)) {
    std::fprintf(stderr,
                 "error: --max-memory wants a positive byte count with an "
                 "optional k/m/g suffix (e.g. 64m, 1g), got '%s'\n",
                 o.max_memory_raw.c_str());
    return 2;
  }

  if (!o.trace.empty()) TraceRecorder::instance().enable();
  if (!o.telemetry.empty()) TelemetryRecorder::instance().enable();

  auto cluster = make_cluster(o);
  // An update session has no MapReduce counterpart — the baseline for
  // evolving inputs IS the cold recompute, which `--engine imr` without
  // --update-batch gives you.
  const bool session = !o.update_batch.empty();
  const bool run_mr = !session && (o.engine == "mr" || o.engine == "both");
  const bool run_imr = o.engine == "imr" || o.engine == "both";
  RunReport mr, imr;

  try {
    if (algo == "sssp" || algo == "pagerank" || algo == "concomp") {
      const std::string graph_name =
          flags.get("graph", algo == "pagerank" ? "google" : "dblp");
      const double scale = flags.get_double("scale", 0.01);
      Graph g = algo == "pagerank"
                    ? make_pagerank_graph(graph_name, scale, o.seed)
                    : make_sssp_graph(graph_name, scale, o.seed);
      std::printf("graph %s: %u nodes, %llu edges\n", graph_name.c_str(),
                  g.num_nodes(),
                  static_cast<unsigned long long>(g.num_edges()));
      if (algo == "sssp") {
        Sssp::setup(*cluster, g, 0, "data");
        if (run_mr) {
          IterativeDriver driver(*cluster);
          mr = driver.run(
              Sssp::baseline("data", "work", o.iterations, o.threshold));
        }
        if (run_imr) {
          IterJobConf conf =
              Sssp::imapreduce("data", "out", o.iterations, o.threshold);
          apply_common(conf, o);
          apply_partitioner(conf, o, g, *cluster);
          imr = session ? run_update_session(
                              *cluster, conf, g,
                              parse_update_script(o.update_batch),
                              &Sssp::static_delta)
                        : IterativeEngine(*cluster).run(conf);
        }
      } else if (algo == "pagerank") {
        PageRank::setup(*cluster, g, "data");
        if (run_mr) {
          IterativeDriver driver(*cluster);
          mr = driver.run(PageRank::baseline("data", "work", g.num_nodes(),
                                             o.iterations, o.threshold));
        }
        if (run_imr && o.workset) {
          // The plain power-iteration job is not workset-eligible (a node's
          // rank needs ALL in-neighbor shares); switch to the accumulative
          // delta formulation (see algorithms/pagerank.h).
          PageRank::setup_delta(*cluster, g, "data_delta");
          IterJobConf conf = PageRank::imapreduce_delta(
              "data_delta", "out", o.iterations, o.delta_threshold);
          apply_common(conf, o);
          apply_partitioner(conf, o, g, *cluster);
          imr = session ? run_update_session(
                              *cluster, conf, g,
                              parse_update_script(o.update_batch),
                              &PageRank::static_delta)
                        : IterativeEngine(*cluster).run(conf);
        } else if (run_imr) {
          IterJobConf conf = PageRank::imapreduce(
              "data", "out", g.num_nodes(), o.iterations, o.threshold);
          apply_common(conf, o);
          apply_partitioner(conf, o, g, *cluster);
          imr = IterativeEngine(*cluster).run(conf);
        }
      } else {
        ConComp::setup(*cluster, g, "data");
        if (run_mr) {
          IterativeDriver driver(*cluster);
          mr = driver.run(
              ConComp::baseline("data", "work", o.iterations, o.threshold));
        }
        if (run_imr) {
          IterJobConf conf =
              ConComp::imapreduce("data", "out", o.iterations, o.threshold);
          apply_common(conf, o);
          apply_partitioner(conf, o, g, *cluster);
          imr = session ? run_update_session(
                              *cluster, conf, g,
                              parse_update_script(o.update_batch),
                              &ConComp::static_delta)
                        : IterativeEngine(*cluster).run(conf);
        }
      }
    } else if (algo == "kmeans") {
      KMeansDataSpec spec;
      spec.num_points = static_cast<uint32_t>(flags.get_int("points", 10000));
      spec.dim = static_cast<int>(flags.get_int("dim", 8));
      spec.num_clusters = static_cast<int>(flags.get_int("clusters", 10));
      spec.seed = o.seed;
      auto points = KMeans::generate_points(spec);
      KMeans::setup(*cluster, points, spec.num_clusters, "data");
      if (run_mr) {
        IterativeDriver driver(*cluster);
        mr = driver.run(KMeans::baseline("data", "work", o.iterations,
                                         o.threshold, o.combiner));
      }
      if (run_imr) {
        IterJobConf conf = KMeans::imapreduce("data", "out", o.iterations,
                                              o.threshold, o.combiner);
        apply_common(conf, o);
        imr = IterativeEngine(*cluster).run(conf);
      }
    } else if (algo == "jacobi") {
      JacobiSystem sys =
          Jacobi::generate(static_cast<uint32_t>(flags.get_int("n", 1000)),
                           flags.get_double("density", 0.02), o.seed);
      Jacobi::setup(*cluster, sys, "data");
      if (run_mr) {
        IterativeDriver driver(*cluster);
        mr = driver.run(
            Jacobi::baseline("data", "work", o.iterations, o.threshold));
      }
      if (run_imr) {
        IterJobConf conf =
            Jacobi::imapreduce("data", "out", o.iterations, o.threshold);
        apply_common(conf, o);
        imr = IterativeEngine(*cluster).run(conf);
      }
    } else if (algo == "logreg") {
      LogRegDataSpec spec;
      spec.num_samples =
          static_cast<uint32_t>(flags.get_int("samples", 5000));
      spec.dim = static_cast<int>(flags.get_int("dim", 6));
      spec.seed = o.seed;
      double lr = flags.get_double("lr", 0.5);
      auto data = LogReg::generate(spec);
      LogReg::setup(*cluster, data, spec.dim, "data");
      if (run_mr) {
        IterativeDriver driver(*cluster);
        mr = driver.run(LogReg::baseline("data", "work", spec.dim,
                                         o.iterations, lr, o.threshold));
      }
      if (run_imr) {
        IterJobConf conf = LogReg::imapreduce("data", "out", spec.dim,
                                              o.iterations, lr, o.threshold);
        apply_common(conf, o);
        imr = IterativeEngine(*cluster).run(conf);
      }
      if (run_imr) {
        std::printf("accuracy: %.3f\n",
                    LogReg::accuracy(data, LogReg::read_result(*cluster, "out")));
      }
    } else if (algo == "matpower") {
      Matrix m = MatPower::generate(
          static_cast<uint32_t>(flags.get_int("n", 64)), o.seed);
      MatPower::setup(*cluster, m, "data");
      if (run_mr) {
        IterativeDriver driver(*cluster);
        mr = driver.run(MatPower::baseline("data", "work", o.iterations));
      }
      if (run_imr) {
        IterJobConf conf = MatPower::imapreduce("data", "out", o.iterations);
        conf.num_tasks = o.tasks;
        conf.buffer_records = o.buffer;
        conf.max_task_memory_bytes = o.max_memory;
        imr = IterativeEngine(*cluster).run(conf);
      }
    } else {
      return usage();
    }
  } catch (const Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }

  std::printf("\n");
  if (run_mr) print_outcome("MapReduce:", mr);
  if (run_imr) print_outcome("iMapReduce:", imr);
  if (run_mr && run_imr && imr.total_wall_ms > 0) {
    std::printf("speedup: %.2fx\n", mr.total_wall_ms / imr.total_wall_ms);
  }
  if (o.report) {
    std::printf("\n%s", cluster->metrics().report().c_str());
  }
  if (!o.trace.empty()) {
    if (TraceRecorder::instance().export_to_file(o.trace)) {
      std::printf("trace written to %s (load in https://ui.perfetto.dev)\n",
                  o.trace.c_str());
    } else {
      std::fprintf(stderr, "error: could not write trace to %s\n",
                   o.trace.c_str());
      return 1;
    }
  }
  if (!o.telemetry.empty()) {
    if (TelemetryRecorder::instance().export_to_file(o.telemetry)) {
      std::printf("telemetry written to %s (analyze with imr_stat)\n",
                  o.telemetry.c_str());
    } else {
      std::fprintf(stderr, "error: could not write telemetry to %s\n",
                   o.telemetry.c_str());
      return 1;
    }
  }
  return 0;
}
