// imr_stat — offline analyzer for iteration-telemetry JSONL files.
//
//   imr_stat <telemetry.jsonl> [--top N] [--validate]
//
// Reads the JSONL a telemetry-armed run exports (imr_run --telemetry PATH
// or IMR_TELEMETRY=<path>; see docs/OBSERVABILITY.md for the schema) and
// prints placement advice per recorded run:
//
//   - the Fig-11 traffic totals per category, re-derived from the sparse
//     worker x worker matrix and cross-checked against the run line's
//     "traffic" summary (a mismatch means the file is corrupt or the
//     producer broke conservation);
//   - the cross-worker edge cut — bytes that crossed a worker boundary —
//     and the heaviest remote edges, the first places a placement change
//     would claw bandwidth back;
//   - heavy-hitter shuffle keys from the merged SpaceSaving sketches, with
//     their count-error bars and the sketch's N/k admission bound;
//   - per-partition record counts and the skew coefficient
//     (max partition / mean partition);
//   - the per-iteration critical path: virtual-time cost of each decided
//     iteration with its map/reduce split and the straggler that gated it;
//   - a straggler ranking (how often each task/worker was the slowest
//     reporter) — a worker that dominates this table is the one to speed
//     up or unload;
//   - the memory-footprint trajectory: resident reduce-state bytes per
//     iteration on top of the static (in-memory StaticStore) baseline.
//
// --validate runs schema + conservation checks only and exits non-zero on
// the first malformed or non-conserving file; CI uses it to gate telemetry
// regressions. --top N widens the hot-key / edge / iteration tables
// (default 10).
//
// The parser below is a deliberately small recursive-descent JSON reader —
// the tool must stay dependency-free and build anywhere the simulator does.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "common/strings.h"

using imr::human_bytes;
using imr::strprintf;

namespace {

// ---------------------------------------------------------------------------
// Minimal JSON value + recursive-descent parser (objects, arrays, strings,
// doubles, bools, null). Throws std::runtime_error with a byte offset on
// malformed input.

struct JValue {
  enum class Type { kNull, kBool, kNum, kStr, kArr, kObj };
  Type type = Type::kNull;
  bool boolean = false;
  double num = 0.0;
  std::string str;
  std::vector<JValue> arr;
  std::map<std::string, JValue> obj;

  bool is_obj() const { return type == Type::kObj; }
  bool is_arr() const { return type == Type::kArr; }
  bool is_num() const { return type == Type::kNum; }
  bool is_str() const { return type == Type::kStr; }

  const JValue* find(const std::string& key) const {
    auto it = obj.find(key);
    return it == obj.end() ? nullptr : &it->second;
  }
  // Required-field accessors: throw on absence or type mismatch so that
  // --validate reports schema drift instead of misreading zeros.
  const JValue& at(const std::string& key) const {
    const JValue* v = find(key);
    if (v == nullptr) throw std::runtime_error("missing field \"" + key + "\"");
    return *v;
  }
  double num_at(const std::string& key) const {
    const JValue& v = at(key);
    if (!v.is_num()) throw std::runtime_error("field \"" + key + "\" not a number");
    return v.num;
  }
  int64_t int_at(const std::string& key) const {
    return static_cast<int64_t>(num_at(key));
  }
  const std::string& str_at(const std::string& key) const {
    const JValue& v = at(key);
    if (!v.is_str()) throw std::runtime_error("field \"" + key + "\" not a string");
    return v.str;
  }
  const std::vector<JValue>& arr_at(const std::string& key) const {
    const JValue& v = at(key);
    if (!v.is_arr()) throw std::runtime_error("field \"" + key + "\" not an array");
    return v.arr;
  }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : s_(text) {}

  JValue parse() {
    JValue v = parse_value();
    skip_ws();
    if (pos_ != s_.size()) fail("trailing data");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw std::runtime_error(what + " at byte " + std::to_string(pos_));
  }
  void skip_ws() {
    while (pos_ < s_.size() &&
           (s_[pos_] == ' ' || s_[pos_] == '\t' || s_[pos_] == '\n' ||
            s_[pos_] == '\r')) {
      ++pos_;
    }
  }
  char peek() {
    if (pos_ >= s_.size()) fail("unexpected end of input");
    return s_[pos_];
  }
  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  JValue parse_value() {
    skip_ws();
    switch (peek()) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return parse_string();
      case 't': case 'f': return parse_bool();
      case 'n': return parse_null();
      default: return parse_number();
    }
  }

  JValue parse_object() {
    expect('{');
    JValue v;
    v.type = JValue::Type::kObj;
    skip_ws();
    if (peek() == '}') { ++pos_; return v; }
    while (true) {
      skip_ws();
      JValue key = parse_string();
      skip_ws();
      expect(':');
      v.obj.emplace(std::move(key.str), parse_value());
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      expect('}');
      return v;
    }
  }

  JValue parse_array() {
    expect('[');
    JValue v;
    v.type = JValue::Type::kArr;
    skip_ws();
    if (peek() == ']') { ++pos_; return v; }
    while (true) {
      v.arr.push_back(parse_value());
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      expect(']');
      return v;
    }
  }

  JValue parse_string() {
    expect('"');
    JValue v;
    v.type = JValue::Type::kStr;
    while (true) {
      if (pos_ >= s_.size()) fail("unterminated string");
      char c = s_[pos_++];
      if (c == '"') return v;
      if (c != '\\') { v.str.push_back(c); continue; }
      if (pos_ >= s_.size()) fail("dangling escape");
      char e = s_[pos_++];
      switch (e) {
        case '"': v.str.push_back('"'); break;
        case '\\': v.str.push_back('\\'); break;
        case '/': v.str.push_back('/'); break;
        case 'b': v.str.push_back('\b'); break;
        case 'f': v.str.push_back('\f'); break;
        case 'n': v.str.push_back('\n'); break;
        case 'r': v.str.push_back('\r'); break;
        case 't': v.str.push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > s_.size()) fail("truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            char h = s_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else fail("bad \\u escape");
          }
          // The exporter only emits \u00XX for control / non-ASCII bytes;
          // reconstruct the raw byte (no UTF-16 surrogate handling needed).
          v.str.push_back(static_cast<char>(code & 0xff));
          break;
        }
        default: fail("unknown escape");
      }
    }
  }

  JValue parse_bool() {
    JValue v;
    v.type = JValue::Type::kBool;
    if (s_.compare(pos_, 4, "true") == 0) { v.boolean = true; pos_ += 4; }
    else if (s_.compare(pos_, 5, "false") == 0) { v.boolean = false; pos_ += 5; }
    else fail("bad literal");
    return v;
  }

  JValue parse_null() {
    if (s_.compare(pos_, 4, "null") != 0) fail("bad literal");
    pos_ += 4;
    return JValue{};
  }

  JValue parse_number() {
    std::size_t start = pos_;
    if (pos_ < s_.size() && (s_[pos_] == '-' || s_[pos_] == '+')) ++pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) != 0 ||
            s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
            s_[pos_] == '-' || s_[pos_] == '+')) {
      ++pos_;
    }
    if (pos_ == start) fail("expected value");
    JValue v;
    v.type = JValue::Type::kNum;
    char* end = nullptr;
    const std::string tok = s_.substr(start, pos_ - start);
    v.num = std::strtod(tok.c_str(), &end);
    if (end == tok.c_str() || *end != '\0') fail("bad number");
    return v;
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

// ---------------------------------------------------------------------------
// Telemetry model: one run line plus the iter lines that preceded it.

constexpr int kNumCats = 9;
const char* const kCatNames[kNumCats] = {
    "shuffle", "reduce_to_map", "broadcast", "dfs_read", "dfs_write",
    "checkpoint", "control", "shuffle_agg", "spill"};

struct Run {
  JValue line;                 // the "run" object
  std::vector<JValue> iters;   // its "iter" objects, in export order
};

struct ParsedFile {
  std::vector<Run> runs;
};

ParsedFile parse_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open " + path);
  ParsedFile file;
  std::vector<JValue> pending_iters;
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (line.empty()) continue;
    JValue v;
    try {
      v = JsonParser(line).parse();
    } catch (const std::exception& e) {
      throw std::runtime_error(path + ":" + std::to_string(lineno) + ": " +
                               e.what());
    }
    if (!v.is_obj()) {
      throw std::runtime_error(path + ":" + std::to_string(lineno) +
                               ": line is not a JSON object");
    }
    const std::string& type = v.str_at("type");
    if (type == "iter") {
      pending_iters.push_back(std::move(v));
    } else if (type == "run") {
      Run r;
      r.line = std::move(v);
      r.iters = std::move(pending_iters);
      pending_iters.clear();
      file.runs.push_back(std::move(r));
    } else {
      throw std::runtime_error(path + ":" + std::to_string(lineno) +
                               ": unknown record type \"" + type + "\"");
    }
  }
  if (!pending_iters.empty()) {
    throw std::runtime_error(path + ": " +
                             std::to_string(pending_iters.size()) +
                             " iter record(s) with no closing run record");
  }
  return file;
}

int cat_index(const std::string& name) {
  for (int c = 0; c < kNumCats; ++c) {
    if (name == kCatNames[c]) return c;
  }
  return -1;
}

// Per-category totals re-derived from the sparse matrix cells.
struct MatrixSums {
  int64_t bytes[kNumCats] = {};
  int64_t remote[kNumCats] = {};
  int64_t msgs[kNumCats] = {};
};

MatrixSums sum_matrix(const Run& run) {
  MatrixSums sums;
  for (const JValue& cell : run.line.arr_at("matrix")) {
    if (!cell.is_arr() || cell.arr.size() != 5) {
      throw std::runtime_error("matrix cell is not a 5-tuple");
    }
    const int from = static_cast<int>(cell.arr[0].num);
    const int to = static_cast<int>(cell.arr[1].num);
    const int c = cat_index(cell.arr[2].str);
    if (c < 0) throw std::runtime_error("matrix cell names unknown category");
    const int64_t bytes = static_cast<int64_t>(cell.arr[3].num);
    const int64_t msgs = static_cast<int64_t>(cell.arr[4].num);
    sums.bytes[c] += bytes;
    sums.msgs[c] += msgs;
    if (from != to) sums.remote[c] += bytes;
  }
  return sums;
}

// ---------------------------------------------------------------------------
// Validation: schema shape + matrix/traffic conservation. Returns violation
// strings; empty = clean.

std::vector<std::string> validate_run(const Run& run) {
  std::vector<std::string> bad;
  const JValue& r = run.line;
  const int64_t workers = r.int_at("workers");
  const int64_t tasks = r.int_at("tasks");
  if (workers <= 0) bad.push_back("run: non-positive worker count");
  if (tasks <= 0) bad.push_back("run: non-positive task count");
  r.str_at("job");
  r.int_at("iterations_run");
  r.int_at("session_epochs");
  r.int_at("hot_key_samples");
  r.int_at("static_bytes");
  r.num_at("skew");

  // Matrix cells in range; sums reproduce the run's traffic summary.
  for (const JValue& cell : r.arr_at("matrix")) {
    if (!cell.is_arr() || cell.arr.size() != 5) {
      bad.push_back("run: matrix cell is not a [from,to,cat,bytes,msgs] tuple");
      continue;
    }
    const int from = static_cast<int>(cell.arr[0].num);
    const int to = static_cast<int>(cell.arr[1].num);
    if (from < -1 || from >= workers || to < -1 || to >= workers) {
      bad.push_back(strprintf("run: matrix edge %d->%d outside [-1, %lld)",
                              from, to, static_cast<long long>(workers)));
    }
    if (cell.arr[3].num < 0 || cell.arr[4].num < 0) {
      bad.push_back(strprintf("run: matrix edge %d->%d has negative counts",
                              from, to));
    }
  }
  MatrixSums sums;
  try {
    sums = sum_matrix(run);
  } catch (const std::exception& e) {
    bad.push_back(std::string("run: ") + e.what());
    return bad;
  }
  const JValue& traffic = r.at("traffic");
  if (!traffic.is_obj()) {
    bad.push_back("run: \"traffic\" is not an object");
    return bad;
  }
  for (int c = 0; c < kNumCats; ++c) {
    const JValue* cat = traffic.find(kCatNames[c]);
    if (cat == nullptr || !cat->is_obj()) {
      bad.push_back(strprintf("run: traffic summary missing category %s",
                              kCatNames[c]));
      continue;
    }
    const int64_t tb = cat->int_at("bytes");
    const int64_t tr = cat->int_at("remote");
    const int64_t tm = cat->int_at("msgs");
    if (tb != sums.bytes[c] || tr != sums.remote[c] || tm != sums.msgs[c]) {
      bad.push_back(strprintf(
          "run: traffic[%s] summary (%lld/%lld/%lld) != matrix sums "
          "(%lld/%lld/%lld)",
          kCatNames[c], static_cast<long long>(tb),
          static_cast<long long>(tr), static_cast<long long>(tm),
          static_cast<long long>(sums.bytes[c]),
          static_cast<long long>(sums.remote[c]),
          static_cast<long long>(sums.msgs[c])));
    }
    if (tr > tb) {
      bad.push_back(strprintf("run: traffic[%s] remote %lld exceeds total %lld",
                              kCatNames[c], static_cast<long long>(tr),
                              static_cast<long long>(tb)));
    }
    // Locality ratio (local / total bytes) must land in [0, 1]; outside it
    // means a negative remote count or remote > total slipped through.
    if (tb > 0) {
      const double loc =
          static_cast<double>(tb - tr) / static_cast<double>(tb);
      if (loc < 0.0 || loc > 1.0) {
        bad.push_back(strprintf("run: traffic[%s] locality ratio %.3f "
                                "outside [0, 1]",
                                kCatNames[c], loc));
      }
    }
  }

  // Hot keys: sketch counts are bounded by the sample total and errors by
  // their counts.
  const int64_t samples = r.int_at("hot_key_samples");
  for (const JValue& hk : r.arr_at("hot_keys")) {
    const int64_t count = hk.int_at("count");
    const int64_t error = hk.int_at("error");
    hk.str_at("key");
    if (count < 0 || error < 0 || error > count || count > samples) {
      bad.push_back(strprintf(
          "run: hot key count/error (%lld/%lld) outside [0, samples %lld]",
          static_cast<long long>(count), static_cast<long long>(error),
          static_cast<long long>(samples)));
    }
  }

  if (static_cast<int64_t>(r.arr_at("static_bytes_per_task").size()) != 0 &&
      static_cast<int64_t>(r.arr_at("static_bytes_per_task").size()) != tasks) {
    bad.push_back("run: static_bytes_per_task length != tasks");
  }

  // Spill ledger conservation (invariant 11, re-checked offline): every
  // byte and run written was either read back (merged / replayed) or
  // dropped (rollback GC, torn writes, end-of-run sweeps).
  const JValue* spill = r.find("spill");
  if (spill == nullptr || !spill->is_obj()) {
    bad.push_back("run: missing \"spill\" object");
  } else {
    const int64_t sw = spill->int_at("bytes_written");
    const int64_t sr = spill->int_at("bytes_read");
    const int64_t sd = spill->int_at("bytes_dropped");
    const int64_t runs = spill->int_at("runs");
    const int64_t hwm = spill->int_at("arena_hwm");
    if (sw < 0 || sr < 0 || sd < 0 || runs < 0 || hwm < 0) {
      bad.push_back("run: negative spill counter");
    }
    if (sw != sr + sd) {
      bad.push_back(strprintf(
          "run: spill ledger not conserved: %lld written != %lld read + "
          "%lld dropped",
          static_cast<long long>(sw), static_cast<long long>(sr),
          static_cast<long long>(sd)));
    }
    if (sw > 0 && runs == 0) {
      bad.push_back("run: spill bytes written but zero runs recorded");
    }
  }

  // Iter lines: fixed-shape arrays, categories all present, straggler in
  // range, per-iteration sums bounded by the run totals.
  int64_t iter_bytes[kNumCats] = {};
  for (const JValue& it : run.iters) {
    const int64_t iter = it.int_at("iteration");
    it.num_at("vt_ms");
    it.num_at("map_ms");
    it.num_at("reduce_ms");
    it.int_at("workset");
    it.int_at("queue_hwm");
    if (static_cast<int64_t>(it.arr_at("task_ms").size()) != tasks ||
        static_cast<int64_t>(it.arr_at("state_bytes").size()) != tasks) {
      bad.push_back(strprintf("iter %lld: task arrays != %lld tasks",
                              static_cast<long long>(iter),
                              static_cast<long long>(tasks)));
    }
    const JValue& straggler = it.at("straggler");
    const int64_t s_task = straggler.int_at("task");
    const int64_t s_worker = straggler.int_at("worker");
    if (s_task < -1 || s_task >= tasks || s_worker < -1 ||
        s_worker >= workers) {
      bad.push_back(strprintf("iter %lld: straggler task %lld / worker %lld "
                              "out of range",
                              static_cast<long long>(iter),
                              static_cast<long long>(s_task),
                              static_cast<long long>(s_worker)));
    }
    for (int c = 0; c < kNumCats; ++c) {
      const int64_t b = it.at("bytes").int_at(kCatNames[c]);
      const int64_t m = it.at("msgs").int_at(kCatNames[c]);
      if (b < 0 || m < 0) {
        bad.push_back(strprintf("iter %lld: negative %s traffic",
                                static_cast<long long>(iter), kCatNames[c]));
      }
      iter_bytes[c] += b;
    }
  }
  // The per-iteration buckets only see fabric sends issued inside decided
  // iterations, so their category sums can never exceed the matrix totals
  // (which also cover init/teardown traffic).
  for (int c = 0; c < kNumCats; ++c) {
    if (iter_bytes[c] > sums.bytes[c]) {
      bad.push_back(strprintf(
          "run: per-iteration %s bytes %lld exceed matrix total %lld",
          kCatNames[c], static_cast<long long>(iter_bytes[c]),
          static_cast<long long>(sums.bytes[c])));
    }
  }
  return bad;
}

// ---------------------------------------------------------------------------
// Summary printing.

std::string hb(int64_t v) {
  return v < 0 ? "-" + human_bytes(static_cast<std::size_t>(-v))
               : human_bytes(static_cast<std::size_t>(v));
}

std::string endpoint_name(int w) {
  return w < 0 ? std::string("master") : "w" + std::to_string(w);
}

// Shuffle keys are raw wire bytes (graph jobs use fixed-width binary node
// ids); show printable keys verbatim and everything else as hex.
std::string printable_key(const std::string& key) {
  bool printable = !key.empty();
  for (char c : key) {
    if (c < 0x20 || c >= 0x7f) { printable = false; break; }
  }
  if (printable) return key;
  std::string out = "0x";
  for (char c : key) {
    out += strprintf("%02x", static_cast<unsigned char>(c));
  }
  return out;
}

void print_run(const Run& run, int top) {
  const JValue& r = run.line;
  const int64_t workers = r.int_at("workers");
  const int64_t tasks = r.int_at("tasks");
  std::printf("run \"%s\": %lld workers, %lld tasks, %lld iterations%s, "
              "%lld session epoch(s)\n",
              r.str_at("job").c_str(), static_cast<long long>(workers),
              static_cast<long long>(tasks),
              static_cast<long long>(r.int_at("iterations_run")),
              r.at("converged").boolean ? " (converged)" : "",
              static_cast<long long>(r.int_at("session_epochs")));

  // Traffic totals (the Fig-11 categories) with the conservation verdict.
  const MatrixSums sums = sum_matrix(run);
  const JValue& traffic = r.at("traffic");
  std::printf(
      "\n  traffic (total / remote / msgs / locality)  matrix check\n");
  int64_t total_bytes = 0, total_remote = 0;
  for (int c = 0; c < kNumCats; ++c) {
    const JValue& cat = traffic.at(kCatNames[c]);
    const int64_t tb = cat.int_at("bytes");
    const int64_t tr = cat.int_at("remote");
    const int64_t tm = cat.int_at("msgs");
    total_bytes += tb;
    total_remote += tr;
    if (tb == 0 && tm == 0) continue;
    const bool ok = tb == sums.bytes[c] && tr == sums.remote[c] &&
                    tm == sums.msgs[c];
    // Locality ratio: share of the category's bytes that stayed on-worker.
    std::printf("    %-13s %10s / %10s / %-6lld loc %.2f  %s\n", kCatNames[c],
                hb(tb).c_str(), hb(tr).c_str(), static_cast<long long>(tm),
                tb > 0 ? static_cast<double>(tb - tr) /
                             static_cast<double>(tb)
                       : 1.0,
                ok ? "conserved" : "MISMATCH");
  }
  std::printf("    %-13s %10s / %10s", "total", hb(total_bytes).c_str(),
              hb(total_remote).c_str());
  if (total_bytes > 0) {
    std::printf("          loc %.2f",
                static_cast<double>(total_bytes - total_remote) /
                    static_cast<double>(total_bytes));
  }
  std::printf("\n");

  // Edge cut: worker->worker off-diagonal bytes, master excluded (control
  // traffic is placement-insensitive).
  std::map<std::pair<int, int>, int64_t> edges;
  int64_t edge_cut = 0;
  for (const JValue& cell : r.arr_at("matrix")) {
    const int from = static_cast<int>(cell.arr[0].num);
    const int to = static_cast<int>(cell.arr[1].num);
    const int64_t bytes = static_cast<int64_t>(cell.arr[3].num);
    if (from == to || bytes == 0) continue;
    edges[{from, to}] += bytes;
    if (from >= 0 && to >= 0) edge_cut += bytes;
  }
  std::printf("\n  cross-worker edge cut: %s", hb(edge_cut).c_str());
  if (total_bytes > 0) {
    std::printf(" (%.1f%% of all traffic)",
                100.0 * static_cast<double>(edge_cut) /
                    static_cast<double>(total_bytes));
  }
  std::printf("\n");
  std::vector<std::pair<std::pair<int, int>, int64_t>> ranked(edges.begin(),
                                                              edges.end());
  std::sort(ranked.begin(), ranked.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });
  for (int n = 0; n < static_cast<int>(ranked.size()) && n < top; ++n) {
    std::printf("    %-6s -> %-6s %10s\n",
                endpoint_name(ranked[static_cast<std::size_t>(n)].first.first)
                    .c_str(),
                endpoint_name(ranked[static_cast<std::size_t>(n)].first.second)
                    .c_str(),
                hb(ranked[static_cast<std::size_t>(n)].second).c_str());
  }

  // Hot keys. The SpaceSaving sketch guarantees every key with frequency
  // > N/k is present, with per-key over-count error <= N/k.
  const std::vector<JValue>& hot = r.arr_at("hot_keys");
  const int64_t samples = r.int_at("hot_key_samples");
  if (!hot.empty() && samples > 0) {
    const int64_t bound =
        samples / std::max<int64_t>(1, static_cast<int64_t>(hot.size()));
    std::printf("\n  hot shuffle keys (of %lld samples; admission bound "
                "N/k = %lld):\n",
                static_cast<long long>(samples),
                static_cast<long long>(bound));
    for (int n = 0; n < static_cast<int>(hot.size()) && n < top; ++n) {
      const JValue& hk = hot[static_cast<std::size_t>(n)];
      const int64_t count = hk.int_at("count");
      const int64_t error = hk.int_at("error");
      std::printf("    %-24s %8lld (±%lld, %.2f%% of shuffle)\n",
                  printable_key(hk.str_at("key")).c_str(),
                  static_cast<long long>(count),
                  static_cast<long long>(error),
                  100.0 * static_cast<double>(count) /
                      static_cast<double>(samples));
    }
  }
  const std::vector<JValue>& parts = r.arr_at("partition_records");
  if (!parts.empty()) {
    int64_t max_part = 0, sum_part = 0;
    for (const JValue& p : parts) {
      max_part = std::max(max_part, static_cast<int64_t>(p.num));
      sum_part += static_cast<int64_t>(p.num);
    }
    const double mean_part = static_cast<double>(sum_part) /
                             static_cast<double>(parts.size());
    std::printf("  partition skew: %.3f (max %lld vs mean %.1f over %d "
                "partitions)\n",
                r.num_at("skew"), static_cast<long long>(max_part),
                mean_part, static_cast<int>(parts.size()));
    if (mean_part > 0) {
      // Balance factor (max/mean shuffle records per partition): 1.0 is a
      // perfectly even split; the partitioner tests bound it at 1.1.
      std::printf("  partition balance factor: %.3f (max/mean)\n",
                  static_cast<double>(max_part) / mean_part);
    }
  }

  if (run.iters.empty()) return;

  // Critical path: each decided iteration's virtual-time cost (delta of the
  // decision clock), its map/reduce split, and the straggler that gated it.
  struct IterCost {
    int64_t iteration;
    int64_t session;
    double cost_ms;
    double map_ms;
    double reduce_ms;
    int64_t s_task;
    int64_t s_worker;
    double s_ms;
  };
  std::vector<IterCost> costs;
  double prev_vt = 0.0;
  int64_t prev_session = -1;
  double total_ms = 0.0;
  for (const JValue& it : run.iters) {
    const int64_t session = it.int_at("session");
    const double vt = it.num_at("vt_ms");
    // vt_ms is the cluster clock at decision time; a session boundary (or a
    // rollback re-run) restarts the delta chain.
    double cost = vt - prev_vt;
    if (session != prev_session || cost < 0) cost = vt;
    prev_vt = vt;
    prev_session = session;
    const JValue& s = it.at("straggler");
    costs.push_back(IterCost{it.int_at("iteration"), session, cost,
                             it.num_at("map_ms"), it.num_at("reduce_ms"),
                             s.int_at("task"), s.int_at("worker"),
                             s.num_at("ms")});
    total_ms += cost;
  }
  std::vector<const IterCost*> slowest;
  for (const IterCost& c : costs) slowest.push_back(&c);
  std::sort(slowest.begin(), slowest.end(),
            [](const IterCost* a, const IterCost* b) {
              return a->cost_ms > b->cost_ms;
            });
  std::printf("\n  critical path: %.1f virtual ms over %d decided "
              "iterations (slowest first):\n",
              total_ms, static_cast<int>(costs.size()));
  for (int n = 0; n < static_cast<int>(slowest.size()) && n < top; ++n) {
    const IterCost& c = *slowest[static_cast<std::size_t>(n)];
    std::printf("    iter %-4lld %8.1f ms  (map %6.1f, reduce %6.1f",
                static_cast<long long>(c.iteration), c.cost_ms, c.map_ms,
                c.reduce_ms);
    if (c.s_task >= 0) {
      std::printf(", straggler task %lld on %s at %.1f ms",
                  static_cast<long long>(c.s_task),
                  endpoint_name(static_cast<int>(c.s_worker)).c_str(), c.s_ms);
    }
    std::printf(")\n");
  }

  // Straggler ranking: who gated the most iterations.
  std::map<std::pair<int64_t, int64_t>, int64_t> gate_counts;
  for (const IterCost& c : costs) {
    if (c.s_task >= 0) gate_counts[{c.s_worker, c.s_task}] += 1;
  }
  if (!gate_counts.empty()) {
    std::vector<std::pair<std::pair<int64_t, int64_t>, int64_t>> gates(
        gate_counts.begin(), gate_counts.end());
    std::sort(gates.begin(), gates.end(), [](const auto& a, const auto& b) {
      return a.second > b.second;
    });
    std::printf("  straggler ranking (iterations gated):\n");
    for (int n = 0; n < static_cast<int>(gates.size()) && n < top; ++n) {
      const auto& g = gates[static_cast<std::size_t>(n)];
      std::printf("    %-6s task %-4lld gated %lld/%d iterations\n",
                  endpoint_name(static_cast<int>(g.first.first)).c_str(),
                  static_cast<long long>(g.first.second),
                  static_cast<long long>(g.second),
                  static_cast<int>(costs.size()));
    }
  }

  // Memory trajectory: resident reduce state per iteration on top of the
  // static baseline.
  const int64_t static_bytes = r.int_at("static_bytes");
  int64_t first_state = -1, last_state = 0, peak_state = 0;
  int64_t peak_iter = 0;
  for (const JValue& it : run.iters) {
    int64_t state = 0;
    for (const JValue& b : it.arr_at("state_bytes")) {
      state += static_cast<int64_t>(b.num);
    }
    if (first_state < 0) first_state = state;
    last_state = state;
    if (state > peak_state) {
      peak_state = state;
      peak_iter = it.int_at("iteration");
    }
  }
  std::printf("  memory: static stores %s; reduce state %s -> %s "
              "(peak %s at iter %lld)\n",
              hb(static_bytes).c_str(), hb(std::max<int64_t>(0, first_state)).c_str(),
              hb(last_state).c_str(), hb(peak_state).c_str(),
              static_cast<long long>(peak_iter));

  // Out-of-core activity (DESIGN.md §10): spill volume, the ledger verdict,
  // the largest per-task footprint, and the amplification ratio — spilled
  // bytes over DFS input bytes, i.e. how many extra I/O bytes the budget
  // cost per input byte (0 = everything fit in memory).
  const JValue* spill = r.find("spill");
  if (spill != nullptr && spill->is_obj()) {
    const int64_t sw = spill->int_at("bytes_written");
    const int64_t sr = spill->int_at("bytes_read");
    const int64_t sd = spill->int_at("bytes_dropped");
    const int64_t runs = spill->int_at("runs");
    const int64_t hwm = spill->int_at("arena_hwm");
    if (sw > 0 || hwm > 0) {
      std::printf("  spill: %s written / %s read / %s dropped over %lld "
                  "run(s)  %s\n",
                  hb(sw).c_str(), hb(sr).c_str(), hb(sd).c_str(),
                  static_cast<long long>(runs),
                  sw == sr + sd ? "ledger conserved" : "LEDGER MISMATCH");
      if (hwm > 0) {
        std::printf("  task memory high-water mark: %s\n", hb(hwm).c_str());
      }
      const int64_t input_bytes =
          sum_matrix(run).bytes[cat_index("dfs_read")];
      if (sw > 0 && input_bytes > 0) {
        std::printf("  spill amplification: %.2fx of %s DFS input\n",
                    static_cast<double>(sw) /
                        static_cast<double>(input_bytes),
                    hb(input_bytes).c_str());
      }
      // Per-worker spill I/O from the traffic matrix — the workers whose
      // tasks ran hottest against the budget.
      std::map<int, int64_t> by_worker;
      for (const JValue& cell : r.arr_at("matrix")) {
        if (cell.arr[2].str != "spill") continue;
        by_worker[static_cast<int>(cell.arr[0].num)] +=
            static_cast<int64_t>(cell.arr[3].num);
      }
      for (const auto& [w, bytes] : by_worker) {
        if (bytes > 0) {
          std::printf("    %-6s spill i/o %10s\n", endpoint_name(w).c_str(),
                      hb(bytes).c_str());
        }
      }
    }
  }
}

int usage() {
  std::fprintf(stderr,
               "usage: imr_stat <telemetry.jsonl> [--top N] [--validate]\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string path;
  int top = 10;
  bool validate = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--validate") {
      validate = true;
    } else if (arg == "--top") {
      if (i + 1 >= argc) return usage();
      top = std::atoi(argv[++i]);
      if (top <= 0) return usage();
    } else if (!arg.empty() && arg[0] == '-') {
      return usage();
    } else if (path.empty()) {
      path = arg;
    } else {
      return usage();
    }
  }
  if (path.empty()) return usage();

  ParsedFile file;
  try {
    file = parse_file(path);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "imr_stat: %s\n", e.what());
    return 1;
  }
  if (file.runs.empty()) {
    std::fprintf(stderr, "imr_stat: %s holds no run records\n", path.c_str());
    return 1;
  }

  int bad_runs = 0;
  for (std::size_t n = 0; n < file.runs.size(); ++n) {
    const Run& run = file.runs[n];
    std::vector<std::string> violations;
    try {
      violations = validate_run(run);
    } catch (const std::exception& e) {
      violations.push_back(e.what());
    }
    if (validate) {
      if (violations.empty()) {
        std::printf("run %d (\"%s\"): ok — %d iter record(s), matrix "
                    "conserved\n",
                    static_cast<int>(n),
                    run.line.find("job") != nullptr &&
                            run.line.at("job").is_str()
                        ? run.line.str_at("job").c_str()
                        : "?",
                    static_cast<int>(run.iters.size()));
      } else {
        ++bad_runs;
        for (const std::string& v : violations) {
          std::fprintf(stderr, "run %d: %s\n", static_cast<int>(n), v.c_str());
        }
      }
      continue;
    }
    if (n > 0) std::printf("\n");
    try {
      print_run(run, top);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "imr_stat: run %d: %s\n", static_cast<int>(n),
                   e.what());
      return 1;
    }
    for (const std::string& v : violations) {
      std::fprintf(stderr, "  warning: %s\n", v.c_str());
    }
  }
  return bad_runs > 0 ? 1 : 0;
}
