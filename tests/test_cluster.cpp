// Cluster facade tests: slots, speeds, failure scheduling, task context
// charging.
#include <gtest/gtest.h>

#include "cluster/task_context.h"
#include "tests/test_util.h"

namespace imr {
namespace {

TEST(Cluster, SlotArithmetic) {
  ClusterConfig cfg;
  cfg.num_workers = 5;
  cfg.map_slots_per_worker = 3;
  cfg.reduce_slots_per_worker = 2;
  cfg.cost = CostModel::free();
  Cluster c(cfg);
  EXPECT_EQ(c.num_workers(), 5);
  EXPECT_EQ(c.map_slots(), 15);
  EXPECT_EQ(c.reduce_slots(), 10);
}

TEST(Cluster, WorkerSpeeds) {
  auto c = testutil::free_cluster();
  EXPECT_EQ(c->worker_speed(0), 1.0);
  c->set_worker_speed(0, 0.5);
  EXPECT_EQ(c->worker_speed(0), 0.5);
  EXPECT_THROW(c->set_worker_speed(0, -1.0), Error);
  EXPECT_THROW(c->set_worker_speed(99, 1.0), Error);
}

TEST(Cluster, FailureSchedule) {
  auto c = testutil::free_cluster();
  EXPECT_FALSE(c->worker_failed(1, 100));
  c->schedule_worker_failure(1, 5);
  EXPECT_FALSE(c->worker_failed(1, 4));
  EXPECT_TRUE(c->worker_failed(1, 5));
  EXPECT_TRUE(c->worker_failed(1, 9));
  EXPECT_TRUE(c->worker_alive(1));  // alive until the master marks it dead
  c->mark_dead(1);
  EXPECT_FALSE(c->worker_alive(1));
  c->revive_worker(1);
  EXPECT_TRUE(c->worker_alive(1));
  EXPECT_FALSE(c->worker_failed(1, 100));  // revive clears the schedule
}

TEST(TaskContext, ChargesFixedCosts) {
  auto c = testutil::free_cluster();
  TaskContext ctx(*c, "t", 0, 1000);
  EXPECT_EQ(ctx.vt().now_ns(), 1000);
  ctx.charge(sim_ms(2), TimeCategory::kTaskInit);
  EXPECT_EQ(ctx.vt().now_ns(), 1000 + 2000000);
  EXPECT_EQ(c->metrics().time(TimeCategory::kTaskInit), sim_ms(2));
}

TEST(TaskContext, ComputeScaledBySpeedFactor) {
  ClusterConfig cfg;
  cfg.cost = CostModel::free();
  cfg.cost.compute_scale = 10.0;
  Cluster c(cfg);
  c.set_worker_speed(1, 0.5);

  TaskContext fast(c, "fast", 0, 0);
  fast.charge_compute(1000);
  EXPECT_EQ(fast.vt().now_ns(), 10000);

  TaskContext slow(c, "slow", 1, 0);
  slow.charge_compute(1000);
  EXPECT_EQ(slow.vt().now_ns(), 20000);  // half speed = double time
}

TEST(TaskContext, ZeroComputeScaleChargesNothing) {
  auto c = testutil::free_cluster();
  TaskContext ctx(*c, "t", 0, 0);
  ctx.charge_compute(123456789);
  EXPECT_EQ(ctx.vt().now_ns(), 0);
}

TEST(TaskContext, DfsHelpersChargeTheTaskClock) {
  auto c = testutil::costed_cluster();
  TaskContext writer(*c, "w", 0, 0);
  KVVec recs;
  recs.emplace_back(Bytes("k"), Bytes(100000, 'v'));
  writer.dfs_write("f", std::move(recs));
  EXPECT_GT(writer.vt().now_ns(), 0);

  TaskContext reader(*c, "r", 1, 0);
  KVVec back = reader.dfs_read_all("f");
  EXPECT_EQ(back.size(), 1u);
  EXPECT_GT(reader.vt().now_ns(), 0);
}

}  // namespace
}  // namespace imr
