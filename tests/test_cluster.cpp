// Cluster facade tests: slots, speeds, failure scheduling, task context
// charging.
#include <gtest/gtest.h>

#include "cluster/task_context.h"
#include "tests/test_util.h"

namespace imr {
namespace {

TEST(Cluster, SlotArithmetic) {
  ClusterConfig cfg;
  cfg.num_workers = 5;
  cfg.map_slots_per_worker = 3;
  cfg.reduce_slots_per_worker = 2;
  cfg.cost = CostModel::free();
  Cluster c(cfg);
  EXPECT_EQ(c.num_workers(), 5);
  EXPECT_EQ(c.map_slots(), 15);
  EXPECT_EQ(c.reduce_slots(), 10);
}

TEST(Cluster, WorkerSpeeds) {
  auto c = testutil::free_cluster();
  EXPECT_EQ(c->worker_speed(0), 1.0);
  c->set_worker_speed(0, 0.5);
  EXPECT_EQ(c->worker_speed(0), 0.5);
  EXPECT_THROW(c->set_worker_speed(0, -1.0), Error);
  EXPECT_THROW(c->set_worker_speed(99, 1.0), Error);
}

TEST(Cluster, FailureSchedule) {
  auto c = testutil::free_cluster();
  EXPECT_FALSE(c->worker_failed(1, 100));
  c->schedule_worker_failure(1, 5);
  EXPECT_FALSE(c->worker_failed(1, 4));
  EXPECT_TRUE(c->worker_failed(1, 5));
  EXPECT_TRUE(c->worker_failed(1, 9));
  EXPECT_TRUE(c->worker_alive(1));  // alive until the master marks it dead
  c->mark_dead(1);
  EXPECT_FALSE(c->worker_alive(1));
  c->revive_worker(1);
  EXPECT_TRUE(c->worker_alive(1));
  EXPECT_FALSE(c->worker_failed(1, 100));  // revive clears the schedule
}

TEST(Cluster, FaultConsumedExactlyOnce) {
  auto c = testutil::free_cluster();
  c->schedule_fault({/*worker=*/2, FaultPoint::kMidShuffle,
                     /*at_iteration=*/3});
  EXPECT_EQ(c->pending_fault_count(), 1);

  // Wrong worker / point / too-early iteration: not consumed.
  EXPECT_FALSE(c->consume_fault(1, FaultPoint::kMidShuffle, 3));
  EXPECT_FALSE(c->consume_fault(2, FaultPoint::kMidMap, 3));
  EXPECT_FALSE(c->consume_fault(2, FaultPoint::kMidShuffle, 2));
  EXPECT_EQ(c->consumed_fault_count(), 0);

  // First matching probe consumes it; every later probe misses — the same
  // scheduled failure can never trip twice (e.g. in a later job sharing the
  // cluster).
  EXPECT_TRUE(c->consume_fault(2, FaultPoint::kMidShuffle, 5));
  EXPECT_FALSE(c->consume_fault(2, FaultPoint::kMidShuffle, 5));
  EXPECT_FALSE(c->worker_failed(2, 100));
  EXPECT_EQ(c->pending_fault_count(), 0);
  EXPECT_EQ(c->consumed_fault_count(), 1);
  EXPECT_EQ(c->metrics().count("faults_injected"), 1);
  EXPECT_NO_THROW(c->assert_faults_consumed());
}

TEST(Cluster, AssertFaultsConsumedThrowsOnUnfiredEvent) {
  auto c = testutil::free_cluster();
  c->schedule_fault({0, FaultPoint::kCheckpointWrite, 2});
  EXPECT_THROW(c->assert_faults_consumed(), Error);
  EXPECT_TRUE(c->consume_fault(0, FaultPoint::kCheckpointWrite, 2));
  EXPECT_NO_THROW(c->assert_faults_consumed());
}

TEST(Cluster, ReviveClearsPendingFaultsForThatWorkerOnly) {
  auto c = testutil::free_cluster();
  FaultSchedule schedule;
  schedule.add(1, FaultPoint::kMidMap, 2).add(2, FaultPoint::kStatePush, 4);
  c->set_fault_schedule(schedule);
  EXPECT_EQ(c->pending_fault_count(), 2);
  c->revive_worker(1);
  EXPECT_EQ(c->pending_fault_count(), 1);
  EXPECT_FALSE(c->consume_fault(1, FaultPoint::kMidMap, 99));
  EXPECT_TRUE(c->consume_fault(2, FaultPoint::kStatePush, 4));
}

TEST(FaultScheduleRandom, DeterministicFromSeedAndInRange) {
  FaultSchedule a = FaultSchedule::random(/*seed=*/42, /*num_workers=*/4,
                                          /*max_iteration=*/6,
                                          /*num_faults=*/3);
  FaultSchedule b = FaultSchedule::random(42, 4, 6, 3);
  ASSERT_EQ(a.size(), 3u);
  ASSERT_EQ(b.size(), 3u);
  for (std::size_t n = 0; n < a.size(); ++n) {
    EXPECT_EQ(a.events()[n].worker, b.events()[n].worker);
    EXPECT_EQ(a.events()[n].point, b.events()[n].point);
    EXPECT_EQ(a.events()[n].at_iteration, b.events()[n].at_iteration);
    EXPECT_GE(a.events()[n].worker, 0);
    EXPECT_LT(a.events()[n].worker, 4);
    EXPECT_GE(a.events()[n].at_iteration, 1);
    EXPECT_LE(a.events()[n].at_iteration, 6);
  }
  FaultSchedule other = FaultSchedule::random(43, 4, 6, 3);
  bool any_diff = false;
  for (std::size_t n = 0; n < a.size(); ++n) {
    any_diff = any_diff ||
               a.events()[n].worker != other.events()[n].worker ||
               a.events()[n].point != other.events()[n].point ||
               a.events()[n].at_iteration != other.events()[n].at_iteration;
  }
  EXPECT_TRUE(any_diff);
}

TEST(TaskContext, ChargesFixedCosts) {
  auto c = testutil::free_cluster();
  TaskContext ctx(*c, "t", 0, 1000);
  EXPECT_EQ(ctx.vt().now_ns(), 1000);
  ctx.charge(sim_ms(2), TimeCategory::kTaskInit);
  EXPECT_EQ(ctx.vt().now_ns(), 1000 + 2000000);
  EXPECT_EQ(c->metrics().time(TimeCategory::kTaskInit), sim_ms(2));
}

TEST(TaskContext, ComputeScaledBySpeedFactor) {
  ClusterConfig cfg;
  cfg.cost = CostModel::free();
  cfg.cost.compute_scale = 10.0;
  Cluster c(cfg);
  c.set_worker_speed(1, 0.5);

  TaskContext fast(c, "fast", 0, 0);
  fast.charge_compute(1000);
  EXPECT_EQ(fast.vt().now_ns(), 10000);

  TaskContext slow(c, "slow", 1, 0);
  slow.charge_compute(1000);
  EXPECT_EQ(slow.vt().now_ns(), 20000);  // half speed = double time
}

TEST(TaskContext, ZeroComputeScaleChargesNothing) {
  auto c = testutil::free_cluster();
  TaskContext ctx(*c, "t", 0, 0);
  ctx.charge_compute(123456789);
  EXPECT_EQ(ctx.vt().now_ns(), 0);
}

TEST(TaskContext, DfsHelpersChargeTheTaskClock) {
  auto c = testutil::costed_cluster();
  TaskContext writer(*c, "w", 0, 0);
  KVVec recs;
  recs.emplace_back(Bytes("k"), Bytes(100000, 'v'));
  writer.dfs_write("f", std::move(recs));
  EXPECT_GT(writer.vt().now_ns(), 0);

  TaskContext reader(*c, "r", 1, 0);
  KVVec back = reader.dfs_read_all("f");
  EXPECT_EQ(back.size(), 1u);
  EXPECT_GT(reader.vt().now_ns(), 0);
}

}  // namespace
}  // namespace imr
