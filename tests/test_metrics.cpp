// Metrics registry and text-table tests.
#include <gtest/gtest.h>

#include <thread>

#include "common/error.h"
#include "metrics/metrics.h"
#include "metrics/table.h"

namespace imr {
namespace {

TEST(Metrics, TrafficByCategory) {
  MetricsRegistry m;
  m.add_traffic(TrafficCategory::kShuffle, 100, true);
  m.add_traffic(TrafficCategory::kShuffle, 50, false);
  m.add_traffic(TrafficCategory::kDfsRead, 10, true);
  EXPECT_EQ(m.traffic_bytes(TrafficCategory::kShuffle), 150);
  EXPECT_EQ(m.traffic_remote_bytes(TrafficCategory::kShuffle), 100);
  EXPECT_EQ(m.traffic_transfers(TrafficCategory::kShuffle), 2);
  EXPECT_EQ(m.total_remote_bytes(), 110);
  EXPECT_EQ(m.total_bytes(), 160);
}

TEST(Metrics, TimesAccumulate) {
  MetricsRegistry m;
  m.add_time(TimeCategory::kJobInit, sim_ms(5));
  m.add_time(TimeCategory::kJobInit, sim_ms(3));
  EXPECT_EQ(m.time(TimeCategory::kJobInit), sim_ms(8));
}

TEST(Metrics, NamedCountersThreadSafe) {
  MetricsRegistry m;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&m] {
      for (int i = 0; i < 1000; ++i) m.inc("events");
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(m.count("events"), 4000);
  EXPECT_EQ(m.count("missing"), 0);
}

TEST(Metrics, ResetClearsEverything) {
  MetricsRegistry m;
  m.add_traffic(TrafficCategory::kShuffle, 100, true);
  m.add_time(TimeCategory::kCompute, sim_ms(1));
  m.inc("x");
  m.reset();
  EXPECT_EQ(m.total_bytes(), 0);
  EXPECT_EQ(m.time(TimeCategory::kCompute).count(), 0);
  EXPECT_EQ(m.count("x"), 0);
}

TEST(Metrics, ReportMentionsActiveCategories) {
  MetricsRegistry m;
  m.add_traffic(TrafficCategory::kBroadcast, 100, true);
  m.inc("imr_iterations", 7);
  std::string report = m.report();
  EXPECT_NE(report.find("broadcast"), std::string::npos);
  EXPECT_NE(report.find("imr_iterations"), std::string::npos);
  EXPECT_EQ(report.find("checkpoint"), std::string::npos);
}

TEST(RunReportCapture, PullsTotalsFromRegistry) {
  MetricsRegistry m;
  m.add_traffic(TrafficCategory::kShuffle, 500, true);
  m.add_traffic(TrafficCategory::kDfsRead, 200, false);
  m.add_time(TimeCategory::kJobInit, sim_ms(12));
  RunReport r;
  r.capture(m);
  EXPECT_EQ(r.shuffle_bytes, 500);
  EXPECT_EQ(r.dfs_read_bytes, 200);
  EXPECT_EQ(r.total_comm_bytes, 500);
  EXPECT_EQ(r.job_init_time, sim_ms(12));
}

TEST(TextTable, RendersAlignedColumns) {
  TextTable t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"b", "12345"});
  std::string s = t.render();
  EXPECT_NE(s.find("| alpha |     1 |"), std::string::npos);
  EXPECT_NE(s.find("| b     | 12345 |"), std::string::npos);
}

TEST(TextTable, CsvOutput) {
  TextTable t({"a", "b"});
  t.add_row({"1", "2"});
  EXPECT_EQ(t.csv(), "a,b\n1,2\n");
}

TEST(TextTable, RejectsRaggedRows) {
  TextTable t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), Error);
}

}  // namespace
}  // namespace imr
