// Metrics registry and text-table tests.
#include <gtest/gtest.h>

#include <thread>

#include "common/error.h"
#include "metrics/invariants.h"
#include "metrics/metrics.h"
#include "metrics/table.h"

namespace imr {
namespace {

TEST(Metrics, TrafficByCategory) {
  MetricsRegistry m;
  m.add_traffic(TrafficCategory::kShuffle, 100, true);
  m.add_traffic(TrafficCategory::kShuffle, 50, false);
  m.add_traffic(TrafficCategory::kDfsRead, 10, true);
  EXPECT_EQ(m.traffic_bytes(TrafficCategory::kShuffle), 150);
  EXPECT_EQ(m.traffic_remote_bytes(TrafficCategory::kShuffle), 100);
  EXPECT_EQ(m.traffic_transfers(TrafficCategory::kShuffle), 2);
  EXPECT_EQ(m.total_remote_bytes(), 110);
  EXPECT_EQ(m.total_bytes(), 160);
}

TEST(Metrics, TimesAccumulate) {
  MetricsRegistry m;
  m.add_time(TimeCategory::kJobInit, sim_ms(5));
  m.add_time(TimeCategory::kJobInit, sim_ms(3));
  EXPECT_EQ(m.time(TimeCategory::kJobInit), sim_ms(8));
}

TEST(Metrics, NamedCountersThreadSafe) {
  MetricsRegistry m;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&m] {
      for (int i = 0; i < 1000; ++i) m.inc("events");
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(m.count("events"), 4000);
  EXPECT_EQ(m.count("missing"), 0);
}

TEST(Metrics, ResetClearsEverything) {
  MetricsRegistry m;
  m.add_traffic(TrafficCategory::kShuffle, 100, true);
  m.add_time(TimeCategory::kCompute, sim_ms(1));
  m.inc("x");
  m.reset();
  EXPECT_EQ(m.total_bytes(), 0);
  EXPECT_EQ(m.time(TimeCategory::kCompute).count(), 0);
  EXPECT_EQ(m.count("x"), 0);
}

TEST(Metrics, ReportMentionsActiveCategories) {
  MetricsRegistry m;
  m.add_traffic(TrafficCategory::kBroadcast, 100, true);
  m.inc("imr_iterations", 7);
  std::string report = m.report();
  EXPECT_NE(report.find("broadcast"), std::string::npos);
  EXPECT_NE(report.find("imr_iterations"), std::string::npos);
  EXPECT_EQ(report.find("checkpoint"), std::string::npos);
}

TEST(RunReportCapture, PullsTotalsFromRegistry) {
  MetricsRegistry m;
  m.add_traffic(TrafficCategory::kShuffle, 500, true);
  m.add_traffic(TrafficCategory::kDfsRead, 200, false);
  m.add_time(TimeCategory::kJobInit, sim_ms(12));
  RunReport r;
  r.capture(m);
  EXPECT_EQ(r.shuffle_bytes, 500);
  EXPECT_EQ(r.dfs_read_bytes, 200);
  EXPECT_EQ(r.total_comm_bytes, 500);
  EXPECT_EQ(r.job_init_time, sim_ms(12));
}

TEST(TextTable, RendersAlignedColumns) {
  TextTable t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"b", "12345"});
  std::string s = t.render();
  EXPECT_NE(s.find("| alpha |     1 |"), std::string::npos);
  EXPECT_NE(s.find("| b     | 12345 |"), std::string::npos);
}

TEST(TextTable, CsvOutput) {
  TextTable t({"a", "b"});
  t.add_row({"1", "2"});
  EXPECT_EQ(t.csv(), "a,b\n1,2\n");
}

TEST(TextTable, RejectsRaggedRows) {
  TextTable t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), Error);
}

// ---------------------------------------------------------------------------
// InvariantChecker
// ---------------------------------------------------------------------------

TEST(InvariantChecker, CleanStateHasNoViolations) {
  MetricsRegistry m;
  m.add_traffic(TrafficCategory::kShuffle, 100, true);
  ChannelStats stats;
  stats.attempts = 10;
  stats.delivered = 8;
  stats.dropped = 1;
  stats.rejected = 1;
  stats.received = 7;
  stats.discarded = 1;
  auto violations =
      InvariantChecker(m).with_channel_stats(stats).check(InvariantExpectations{});
  EXPECT_TRUE(violations.empty())
      << ::testing::PrintToString(violations);
}

TEST(InvariantChecker, DetectsChannelLedgerImbalance) {
  MetricsRegistry m;
  ChannelStats stats;
  stats.attempts = 10;
  stats.delivered = 8;  // 2 attempts unaccounted for
  auto violations = InvariantChecker(m).with_channel_stats(stats).check();
  ASSERT_FALSE(violations.empty());
  EXPECT_NE(violations[0].find("channel ledger"), std::string::npos);
}

TEST(InvariantChecker, DetectsUnquiescedDeliveries) {
  MetricsRegistry m;
  ChannelStats stats;
  stats.attempts = 5;
  stats.delivered = 5;
  stats.received = 3;  // 2 delivered messages vanished
  EXPECT_FALSE(InvariantChecker(m).with_channel_stats(stats).check().empty());
  InvariantExpectations mid_run;
  mid_run.quiesced = false;
  EXPECT_TRUE(
      InvariantChecker(m).with_channel_stats(stats).check(mid_run).empty());
}

TEST(InvariantChecker, DetectsRemoteBytesOnStateChannel) {
  MetricsRegistry m;
  m.add_traffic(TrafficCategory::kReduceToMap, 64, /*remote=*/true);
  auto violations = InvariantChecker(m).check();
  ASSERT_FALSE(violations.empty());
  EXPECT_NE(violations[0].find("co-located"), std::string::npos);
  InvariantExpectations one2all;
  one2all.colocated_state_channel = false;
  EXPECT_TRUE(InvariantChecker(m).check(one2all).empty());
}

TEST(InvariantChecker, IterationLedgerMustStepByOneEvenAcrossRollbacks) {
  MetricsRegistry m;
  RunReport r;
  // A recovered run reads as one consecutive sequence: the engine truncates
  // entries above the restored checkpoint before the re-run appends.
  for (int it : {1, 2, 3, 4}) {
    IterationStat st;
    st.iteration = it;
    r.iterations.push_back(st);
  }
  r.iterations_run = 4;
  r.rollback_iterations = {1};
  EXPECT_TRUE(InvariantChecker(m).with_report(r).check().empty());

  // Duplicated entries (3 -> 2 restart left in the ledger) mean the engine
  // skipped the truncation — a violation even when a rollback is on record.
  r.iterations.clear();
  for (int it : {1, 2, 3, 2, 3, 4}) {
    IterationStat st;
    st.iteration = it;
    r.iterations.push_back(st);
  }
  auto violations = InvariantChecker(m).with_report(r).check();
  ASSERT_FALSE(violations.empty());
  EXPECT_NE(violations[0].find("step by one"), std::string::npos);
}

TEST(InvariantChecker, DetectsMixedIterationPartFiles) {
  MetricsRegistry m;
  RunReport r;
  IterationStat st;
  st.iteration = 5;
  r.iterations.push_back(st);
  r.iterations_run = 5;
  r.final_part_iterations = {5, 5, 4};  // one part lagged an iteration
  auto violations = InvariantChecker(m).with_report(r).check();
  ASSERT_FALSE(violations.empty());
  EXPECT_NE(violations[0].find("part file"), std::string::npos);
}

TEST(InvariantChecker, RecoveryAccountingComparesReportAndMetrics) {
  MetricsRegistry m;
  m.inc("imr_recoveries");
  RunReport r;
  r.rollback_iterations = {2};
  InvariantExpectations expect;
  expect.expected_recoveries = 1;
  EXPECT_TRUE(InvariantChecker(m).with_report(r).check(expect).empty());

  expect.expected_recoveries = 2;  // claims a recovery that never happened
  EXPECT_FALSE(InvariantChecker(m).with_report(r).check(expect).empty());
}

}  // namespace
}  // namespace imr
