// Metrics registry and text-table tests.
#include <gtest/gtest.h>

#include <thread>

#include "common/error.h"
#include "metrics/invariants.h"
#include "metrics/metrics.h"
#include "metrics/table.h"

namespace imr {
namespace {

TEST(Metrics, TrafficByCategory) {
  MetricsRegistry m;
  m.add_traffic(TrafficCategory::kShuffle, 100, true);
  m.add_traffic(TrafficCategory::kShuffle, 50, false);
  m.add_traffic(TrafficCategory::kDfsRead, 10, true);
  EXPECT_EQ(m.traffic_bytes(TrafficCategory::kShuffle), 150);
  EXPECT_EQ(m.traffic_remote_bytes(TrafficCategory::kShuffle), 100);
  EXPECT_EQ(m.traffic_transfers(TrafficCategory::kShuffle), 2);
  EXPECT_EQ(m.total_remote_bytes(), 110);
  EXPECT_EQ(m.total_bytes(), 160);
}

TEST(Metrics, TimesAccumulate) {
  MetricsRegistry m;
  m.add_time(TimeCategory::kJobInit, sim_ms(5));
  m.add_time(TimeCategory::kJobInit, sim_ms(3));
  EXPECT_EQ(m.time(TimeCategory::kJobInit), sim_ms(8));
}

TEST(Metrics, NamedCountersThreadSafe) {
  MetricsRegistry m;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&m] {
      for (int i = 0; i < 1000; ++i) m.inc("events");
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(m.count("events"), 4000);
  EXPECT_EQ(m.count("missing"), 0);
}

TEST(Metrics, ResetClearsEverything) {
  MetricsRegistry m;
  m.add_traffic(TrafficCategory::kShuffle, 100, true);
  m.add_time(TimeCategory::kCompute, sim_ms(1));
  m.inc("x");
  m.reset();
  EXPECT_EQ(m.total_bytes(), 0);
  EXPECT_EQ(m.time(TimeCategory::kCompute).count(), 0);
  EXPECT_EQ(m.count("x"), 0);
}

TEST(Metrics, ReportMentionsActiveCategories) {
  MetricsRegistry m;
  m.add_traffic(TrafficCategory::kBroadcast, 100, true);
  m.inc("imr_iterations", 7);
  std::string report = m.report();
  EXPECT_NE(report.find("broadcast"), std::string::npos);
  EXPECT_NE(report.find("imr_iterations"), std::string::npos);
  EXPECT_EQ(report.find("checkpoint"), std::string::npos);
}

TEST(RunReportCapture, PullsTotalsFromRegistry) {
  MetricsRegistry m;
  m.add_traffic(TrafficCategory::kShuffle, 500, true);
  m.add_traffic(TrafficCategory::kDfsRead, 200, false);
  m.add_time(TimeCategory::kJobInit, sim_ms(12));
  RunReport r;
  r.capture(m);
  EXPECT_EQ(r.shuffle_bytes, 500);
  EXPECT_EQ(r.dfs_read_bytes, 200);
  EXPECT_EQ(r.total_comm_bytes, 500);
  EXPECT_EQ(r.job_init_time, sim_ms(12));
}

TEST(RunReportCapture, CoversEveryCommunicationCategory) {
  MetricsRegistry m;
  m.add_traffic(TrafficCategory::kReduceToMap, 300, false);
  m.add_traffic(TrafficCategory::kReduceToMap, 120, true);
  m.add_traffic(TrafficCategory::kBroadcast, 80, true);
  m.add_traffic(TrafficCategory::kCheckpoint, 64, false);
  m.add_traffic(TrafficCategory::kCheckpoint, 32, true);
  m.add_traffic(TrafficCategory::kControl, 9, true);
  RunReport r;
  r.capture(m);
  EXPECT_EQ(r.reduce_to_map_bytes, 420);
  EXPECT_EQ(r.reduce_to_map_remote_bytes, 120);
  EXPECT_EQ(r.broadcast_bytes, 80);
  EXPECT_EQ(r.broadcast_remote_bytes, 80);
  EXPECT_EQ(r.checkpoint_bytes, 96);
  EXPECT_EQ(r.checkpoint_remote_bytes, 32);
  EXPECT_EQ(r.control_bytes, 9);
  EXPECT_EQ(r.control_remote_bytes, 9);
  EXPECT_EQ(r.shuffle_remote_bytes, 0);
  // The report's per-category remote slices must sum to the communication
  // total (plus DFS, absent here) — the Fig. 11 decomposition closes.
  EXPECT_EQ(r.total_comm_bytes, r.reduce_to_map_remote_bytes +
                                    r.broadcast_remote_bytes +
                                    r.checkpoint_remote_bytes +
                                    r.control_remote_bytes);
}

// ---------------------------------------------------------------------------
// Histograms
// ---------------------------------------------------------------------------

TEST(Histogram, BucketIndexCoversPowerOfTwoRanges) {
  EXPECT_EQ(Histogram::bucket_index(-5), 0);
  EXPECT_EQ(Histogram::bucket_index(0), 0);
  EXPECT_EQ(Histogram::bucket_index(1), 1);
  EXPECT_EQ(Histogram::bucket_index(2), 2);
  EXPECT_EQ(Histogram::bucket_index(3), 2);
  EXPECT_EQ(Histogram::bucket_index(4), 3);
  EXPECT_EQ(Histogram::bucket_index(1023), 10);
  EXPECT_EQ(Histogram::bucket_index(1024), 11);
  EXPECT_EQ(Histogram::bucket_index(INT64_MAX), 63);
  // bucket b covers [bucket_lower(b), bucket_lower(b+1)).
  for (int b = 1; b < 62; ++b) {
    EXPECT_EQ(Histogram::bucket_index(Histogram::bucket_lower(b)), b);
    EXPECT_EQ(Histogram::bucket_index(Histogram::bucket_lower(b + 1) - 1), b);
  }
}

TEST(Histogram, CountMeanAndPercentiles) {
  Histogram h;
  EXPECT_EQ(h.count(), 0);
  EXPECT_EQ(h.percentile(50), 0.0);
  // 90 samples around 1000 (bucket [512, 1024)), 10 around 100000
  // (bucket [65536, 131072)).
  for (int i = 0; i < 90; ++i) h.record(1000);
  for (int i = 0; i < 10; ++i) h.record(100000);
  EXPECT_EQ(h.count(), 100);
  EXPECT_DOUBLE_EQ(h.mean(), (90 * 1000.0 + 10 * 100000.0) / 100.0);
  // Percentiles interpolate linearly inside the target bucket: rank r of n
  // bucket samples sits at fraction (r - 0.5) / n of [lower, 2*lower).
  // p50 -> rank 50 of 90 in [512, 1024): 512 + 512 * 49.5 / 90.
  EXPECT_DOUBLE_EQ(h.percentile(50), 512 + 512 * 49.5 / 90);
  // p90 -> rank 90 of 90 in [512, 1024): near the bucket's upper edge.
  EXPECT_DOUBLE_EQ(h.percentile(90), 512 + 512 * 89.5 / 90);
  // p99 -> rank 9 of the 10 samples in [65536, 131072).
  EXPECT_DOUBLE_EQ(h.percentile(99), 65536 + 65536 * 8.5 / 10);
  // Log-bucket accuracy promise: within one bucket width of the true value.
  EXPECT_GT(h.percentile(50), 512.0);
  EXPECT_LT(h.percentile(50), 1024.0);
}

TEST(Histogram, ZeroAndNegativeSamplesLandInBucketZero) {
  Histogram h;
  h.record(0);
  h.record(-17);
  EXPECT_EQ(h.count(), 2);
  EXPECT_DOUBLE_EQ(h.percentile(99), 0.0);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);  // non-positive samples don't enter sum
}

TEST(Histogram, MergeAccumulatesAndResetClears) {
  Histogram a, b;
  for (int i = 0; i < 10; ++i) a.record(100);
  for (int i = 0; i < 10; ++i) b.record(4000);
  a.merge(b);
  EXPECT_EQ(a.count(), 20);
  EXPECT_DOUBLE_EQ(a.mean(), (10 * 100.0 + 10 * 4000.0) / 20.0);
  // p99 -> rank 19 of 20: the 9th of b's 10 samples in [2048, 4096).
  EXPECT_DOUBLE_EQ(a.percentile(99), 2048 + 2048 * 8.5 / 10);
  a.reset();
  EXPECT_EQ(a.count(), 0);
  EXPECT_DOUBLE_EQ(a.mean(), 0.0);
  EXPECT_EQ(b.count(), 10);  // merge source untouched
}

TEST(Histogram, ConcurrentRecordLosesNothing) {
  Histogram h;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&h, t] {
      for (int i = 0; i < 10000; ++i) h.record(1 + t);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(h.count(), 40000);
}

TEST(Metrics, HistogramRegistryIsStableAcrossReset) {
  MetricsRegistry m;
  Histogram& h = m.histogram("latency_ns");
  h.record(1000);
  EXPECT_EQ(&h, &m.histogram("latency_ns"));  // stable reference
  m.reset();
  // reset() clears contents but keeps the entry: cached pointers stay valid.
  EXPECT_EQ(h.count(), 0);
  h.record(2000);
  EXPECT_EQ(m.histogram("latency_ns").count(), 1);
}

TEST(Metrics, ReportShowsHistogramPercentiles) {
  MetricsRegistry m;
  Histogram& h = m.histogram("iteration_wall_us");
  for (int i = 0; i < 100; ++i) h.record(1000);
  m.histogram("empty_one");  // empty histograms are skipped
  std::string report = m.report();
  EXPECT_NE(report.find("iteration_wall_us"), std::string::npos);
  EXPECT_NE(report.find("p50"), std::string::npos);
  EXPECT_EQ(report.find("empty_one"), std::string::npos);
}

TEST(TextTable, RendersAlignedColumns) {
  TextTable t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"b", "12345"});
  std::string s = t.render();
  EXPECT_NE(s.find("| alpha |     1 |"), std::string::npos);
  EXPECT_NE(s.find("| b     | 12345 |"), std::string::npos);
}

TEST(TextTable, CsvOutput) {
  TextTable t({"a", "b"});
  t.add_row({"1", "2"});
  EXPECT_EQ(t.csv(), "a,b\n1,2\n");
}

TEST(TextTable, RejectsRaggedRows) {
  TextTable t({"a", "b"});
  EXPECT_THROW(t.add_row({"only-one"}), Error);
}

// ---------------------------------------------------------------------------
// InvariantChecker
// ---------------------------------------------------------------------------

TEST(InvariantChecker, CleanStateHasNoViolations) {
  MetricsRegistry m;
  m.add_traffic(TrafficCategory::kShuffle, 100, true);
  ChannelStats stats;
  stats.attempts = 10;
  stats.delivered = 8;
  stats.dropped = 1;
  stats.rejected = 1;
  stats.received = 7;
  stats.discarded = 1;
  auto violations =
      InvariantChecker(m).with_channel_stats(stats).check(InvariantExpectations{});
  EXPECT_TRUE(violations.empty())
      << ::testing::PrintToString(violations);
}

TEST(InvariantChecker, DetectsChannelLedgerImbalance) {
  MetricsRegistry m;
  ChannelStats stats;
  stats.attempts = 10;
  stats.delivered = 8;  // 2 attempts unaccounted for
  auto violations = InvariantChecker(m).with_channel_stats(stats).check();
  ASSERT_FALSE(violations.empty());
  EXPECT_NE(violations[0].find("channel ledger"), std::string::npos);
}

TEST(InvariantChecker, DetectsUnquiescedDeliveries) {
  MetricsRegistry m;
  ChannelStats stats;
  stats.attempts = 5;
  stats.delivered = 5;
  stats.received = 3;  // 2 delivered messages vanished
  EXPECT_FALSE(InvariantChecker(m).with_channel_stats(stats).check().empty());
  InvariantExpectations mid_run;
  mid_run.quiesced = false;
  EXPECT_TRUE(
      InvariantChecker(m).with_channel_stats(stats).check(mid_run).empty());
}

TEST(InvariantChecker, DetectsRemoteBytesOnStateChannel) {
  MetricsRegistry m;
  m.add_traffic(TrafficCategory::kReduceToMap, 64, /*remote=*/true);
  auto violations = InvariantChecker(m).check();
  ASSERT_FALSE(violations.empty());
  EXPECT_NE(violations[0].find("co-located"), std::string::npos);
  InvariantExpectations one2all;
  one2all.colocated_state_channel = false;
  EXPECT_TRUE(InvariantChecker(m).check(one2all).empty());
}

TEST(InvariantChecker, IterationLedgerMustStepByOneEvenAcrossRollbacks) {
  MetricsRegistry m;
  RunReport r;
  // A recovered run reads as one consecutive sequence: the engine truncates
  // entries above the restored checkpoint before the re-run appends.
  for (int it : {1, 2, 3, 4}) {
    IterationStat st;
    st.iteration = it;
    r.iterations.push_back(st);
  }
  r.iterations_run = 4;
  r.rollback_iterations = {1};
  EXPECT_TRUE(InvariantChecker(m).with_report(r).check().empty());

  // Duplicated entries (3 -> 2 restart left in the ledger) mean the engine
  // skipped the truncation — a violation even when a rollback is on record.
  r.iterations.clear();
  for (int it : {1, 2, 3, 2, 3, 4}) {
    IterationStat st;
    st.iteration = it;
    r.iterations.push_back(st);
  }
  auto violations = InvariantChecker(m).with_report(r).check();
  ASSERT_FALSE(violations.empty());
  EXPECT_NE(violations[0].find("step by one"), std::string::npos);
}

TEST(InvariantChecker, DetectsMixedIterationPartFiles) {
  MetricsRegistry m;
  RunReport r;
  IterationStat st;
  st.iteration = 5;
  r.iterations.push_back(st);
  r.iterations_run = 5;
  r.final_part_iterations = {5, 5, 4};  // one part lagged an iteration
  auto violations = InvariantChecker(m).with_report(r).check();
  ASSERT_FALSE(violations.empty());
  EXPECT_NE(violations[0].find("part file"), std::string::npos);
}

TEST(InvariantChecker, RecoveryAccountingComparesReportAndMetrics) {
  MetricsRegistry m;
  m.inc("imr_recoveries");
  RunReport r;
  r.rollback_iterations = {2};
  InvariantExpectations expect;
  expect.expected_recoveries = 1;
  EXPECT_TRUE(InvariantChecker(m).with_report(r).check(expect).empty());

  expect.expected_recoveries = 2;  // claims a recovery that never happened
  EXPECT_FALSE(InvariantChecker(m).with_report(r).check(expect).empty());
}

}  // namespace
}  // namespace imr
