// Classic MapReduce engine tests: wordcount, combiner, multiple inputs,
// distributed cache, determinism, slot limits, and timing structure.
#include <gtest/gtest.h>

#include "common/codec.h"
#include "common/strings.h"
#include "mapreduce/engine.h"
#include "tests/test_util.h"

namespace imr {
namespace {

// Text records: key = line id, value = space-separated words.
KVVec text_records(const std::vector<std::string>& lines) {
  KVVec recs;
  for (uint32_t i = 0; i < lines.size(); ++i) {
    recs.emplace_back(u32_key(i), lines[i]);
  }
  return recs;
}

MapperFactory word_splitter() {
  return make_mapper([](const Bytes&, const Bytes& value, Emitter& out) {
    for (const std::string& w : split(std::string(value), ' ')) {
      if (!w.empty()) out.emit(w, u64_key(1));
    }
  });
}

ReducerFactory count_summer() {
  return make_reducer(
      [](const Bytes& key, const std::vector<Bytes>& values, Emitter& out) {
        uint64_t n = 0;
        for (const Bytes& v : values) n += as_u64(v);
        out.emit(key, u64_key(n));
      });
}

std::map<std::string, uint64_t> read_counts(Cluster& cluster,
                                            const std::string& out) {
  std::map<std::string, uint64_t> counts;
  for (const auto& part : resolve_input_paths(cluster.dfs(), out)) {
    for (const KV& kv : cluster.dfs().read_all(part, -1, nullptr)) {
      counts[std::string(kv.key)] = as_u64(kv.value);
    }
  }
  return counts;
}

TEST(MapReduce, WordCount) {
  auto cluster = testutil::free_cluster();
  cluster->dfs().write_file(
      "in", text_records({"a b a", "b c", "a c c c"}), 0, nullptr);
  JobConf job;
  job.set_input("in", word_splitter());
  job.output_path = "out";
  job.reducer = count_summer();
  MapReduceEngine engine(*cluster);
  JobResult res = engine.run_job(job);

  auto counts = read_counts(*cluster, "out");
  EXPECT_EQ(counts["a"], 3u);
  EXPECT_EQ(counts["b"], 2u);
  EXPECT_EQ(counts["c"], 4u);
  EXPECT_EQ(res.map_input_records, 3);
  EXPECT_EQ(res.map_output_records, 9);
  EXPECT_EQ(res.reduce_input_groups, 3);
  EXPECT_EQ(res.reduce_output_records, 3);
}

TEST(MapReduce, CombinerReducesShuffleRecordsNotResults) {
  auto cluster = testutil::free_cluster();
  std::vector<std::string> lines(50, "x x x y");
  cluster->dfs().write_file("in", text_records(lines), 0, nullptr);

  auto run = [&](bool with_combiner, const std::string& out) {
    cluster->metrics().reset();
    JobConf job;
    job.set_input("in", word_splitter());
    job.output_path = out;
    job.reducer = count_summer();
    if (with_combiner) job.combiner = count_summer();
    MapReduceEngine engine(*cluster);
    engine.run_job(job);
    return cluster->metrics().traffic_bytes(TrafficCategory::kShuffle);
  };

  int64_t plain = run(false, "out1");
  int64_t combined = run(true, "out2");
  EXPECT_LT(combined, plain);
  EXPECT_EQ(read_counts(*cluster, "out1"), read_counts(*cluster, "out2"));
}

TEST(MapReduce, MultipleInputs) {
  auto cluster = testutil::free_cluster();
  cluster->dfs().write_file("in1", text_records({"a a"}), 0, nullptr);
  cluster->dfs().write_file("in2", text_records({"a b"}), 0, nullptr);
  JobConf job;
  job.inputs.push_back(InputSpec{"in1", word_splitter()});
  job.inputs.push_back(InputSpec{"in2", word_splitter()});
  job.output_path = "out";
  job.reducer = count_summer();
  MapReduceEngine engine(*cluster);
  engine.run_job(job);
  auto counts = read_counts(*cluster, "out");
  EXPECT_EQ(counts["a"], 3u);
  EXPECT_EQ(counts["b"], 1u);
}

TEST(MapReduce, DirectoryInputReadsAllParts) {
  auto cluster = testutil::free_cluster();
  cluster->dfs().write_file("dir/part-0", text_records({"a"}), 0, nullptr);
  cluster->dfs().write_file("dir/part-1", text_records({"a b"}), 0, nullptr);
  JobConf job;
  job.set_input("dir", word_splitter());
  job.output_path = "out";
  job.reducer = count_summer();
  MapReduceEngine engine(*cluster);
  engine.run_job(job);
  auto counts = read_counts(*cluster, "out");
  EXPECT_EQ(counts["a"], 2u);
  EXPECT_EQ(counts["b"], 1u);
}

TEST(MapReduce, DistributedCacheReachesEveryMapTask) {
  auto cluster = testutil::free_cluster();
  cluster->dfs().write_file("in", text_records({"a", "b", "c", "d"}), 0,
                            nullptr);
  KVVec cache;
  cache.emplace_back("prefix", "Z_");
  cluster->dfs().write_file("cache", std::move(cache), 0, nullptr);

  class PrefixMapper : public Mapper {
   public:
    void attach_cache(const KVVec& records) override {
      ASSERT_EQ(records.size(), 1u);
      prefix_ = records[0].value;
    }
    void map(const Bytes&, const Bytes& value, Emitter& out) override {
      out.emit(prefix_ + value, u64_key(1));
    }

   private:
    Bytes prefix_;
  };

  JobConf job;
  job.set_input("in", [] { return std::make_unique<PrefixMapper>(); });
  job.cache_path = "cache";
  job.output_path = "out";
  job.reducer = count_summer();
  job.num_map_tasks = 4;
  MapReduceEngine engine(*cluster);
  engine.run_job(job);
  auto counts = read_counts(*cluster, "out");
  EXPECT_EQ(counts.size(), 4u);
  EXPECT_EQ(counts.count("Z_a"), 1u);
}

TEST(MapReduce, DeterministicAcrossTaskCounts) {
  // The same job must produce identical output regardless of parallelism.
  std::map<std::string, uint64_t> first;
  for (int maps : {1, 2, 5}) {
    for (int reduces : {1, 3}) {
      auto cluster = testutil::free_cluster(4, 4, 4);
      std::vector<std::string> lines;
      for (int i = 0; i < 100; ++i) {
        lines.push_back("w" + std::to_string(i % 17) + " w" +
                        std::to_string(i % 5));
      }
      cluster->dfs().write_file("in", text_records(lines), 0, nullptr);
      JobConf job;
      job.set_input("in", word_splitter());
      job.output_path = "out";
      job.reducer = count_summer();
      job.num_map_tasks = maps;
      job.num_reduce_tasks = reduces;
      MapReduceEngine engine(*cluster);
      engine.run_job(job);
      auto counts = read_counts(*cluster, "out");
      if (first.empty()) {
        first = counts;
      } else {
        EXPECT_EQ(counts, first) << maps << " maps, " << reduces << " reduces";
      }
    }
  }
}

TEST(MapReduce, RejectsBadConfigs) {
  auto cluster = testutil::free_cluster();
  cluster->dfs().write_file("in", text_records({"a"}), 0, nullptr);
  MapReduceEngine engine(*cluster);

  JobConf no_inputs;
  no_inputs.output_path = "out";
  no_inputs.reducer = count_summer();
  EXPECT_THROW(engine.run_job(no_inputs), ConfigError);

  JobConf no_reducer;
  no_reducer.set_input("in", word_splitter());
  no_reducer.output_path = "out";
  EXPECT_THROW(engine.run_job(no_reducer), ConfigError);

  JobConf too_many_tasks;
  too_many_tasks.set_input("in", word_splitter());
  too_many_tasks.output_path = "out";
  too_many_tasks.reducer = count_summer();
  too_many_tasks.num_map_tasks = 1000;  // 4 workers x 4 slots = 16
  EXPECT_THROW(engine.run_job(too_many_tasks), ConfigError);
}

TEST(MapReduce, UserExceptionPropagates) {
  auto cluster = testutil::free_cluster();
  cluster->dfs().write_file("in", text_records({"a"}), 0, nullptr);
  JobConf job;
  job.set_input("in", make_mapper([](const Bytes&, const Bytes&, Emitter&) {
                  throw Error("user bug");
                }));
  job.output_path = "out";
  job.reducer = count_summer();
  MapReduceEngine engine(*cluster);
  EXPECT_THROW(engine.run_job(job), Error);
}

TEST(MapReduce, VirtualTimingStructure) {
  auto cluster = testutil::costed_cluster();
  cluster->dfs().write_file("in", text_records({"a b c", "d e f"}), 0,
                            nullptr);
  JobConf job;
  job.set_input("in", word_splitter());
  job.output_path = "out";
  job.reducer = count_summer();
  MapReduceEngine engine(*cluster);

  JobResult r1 = engine.run_job(job, /*submit_vt_ns=*/0);
  const CostModel& cost = cluster->cost();
  // A job can never beat init + cleanup.
  EXPECT_GT(r1.end_vt_ns,
            (cost.job_init + cost.task_init + cost.job_cleanup).count());
  // Chaining: the second job starts where the first ended.
  job.output_path = "out2";
  JobResult r2 = engine.run_job(job, r1.end_vt_ns);
  EXPECT_GT(r2.end_vt_ns, r1.end_vt_ns);
  EXPECT_EQ(r2.submit_vt_ns, r1.end_vt_ns);
  // Init is charged into metrics.
  EXPECT_GE(cluster->metrics().time(TimeCategory::kJobInit).count(),
            2 * cost.job_init.count());
}

}  // namespace
}  // namespace imr
