// iMapReduce extension & runtime-support tests: one2all broadcast (K-means,
// Jacobi), multi-phase iterations (matrix power), auxiliary phases,
// checkpoint-based fault recovery, and load-balancing migration.
#include <gtest/gtest.h>

#include "algorithms/jacobi.h"
#include "algorithms/kmeans.h"
#include "algorithms/matpower.h"
#include "algorithms/pagerank.h"
#include "algorithms/sssp.h"
#include "graph/generator.h"
#include "imapreduce/engine.h"
#include "tests/test_util.h"

namespace imr {
namespace {

using testutil::expect_near_vectors;

// ---------------------------------------------------------------------------
// One2all broadcast (§5.1)
// ---------------------------------------------------------------------------

TEST(ImrOne2All, KMeansMatchesReference) {
  auto cluster = testutil::free_cluster();
  KMeansDataSpec dspec;
  dspec.num_points = 800;
  dspec.dim = 4;
  dspec.num_clusters = 5;
  auto points = KMeans::generate_points(dspec);
  KMeans::setup(*cluster, points, 5, "km");

  IterativeEngine engine(*cluster);
  RunReport report = engine.run(KMeans::imapreduce("km", "out", 4));
  EXPECT_EQ(report.iterations_run, 4);

  auto init = KMeans::read_result(*cluster, "km/centroids0", false);
  auto expected = KMeans::reference(points, init, 4);
  auto actual = KMeans::read_result(*cluster, "out", false);
  ASSERT_EQ(expected.size(), actual.size());
  for (const auto& [cid, c] : expected) {
    ASSERT_TRUE(actual.count(cid));
    for (std::size_t d = 0; d < c.size(); ++d) {
      EXPECT_NEAR(c[d], actual[cid][d], 1e-9);
    }
  }
}

TEST(ImrOne2All, KMeansCombinerSameResultLessShuffle) {
  auto run = [](bool combiner) {
    auto cluster = testutil::costed_cluster();
    KMeansDataSpec dspec;
    dspec.num_points = 600;
    dspec.dim = 4;
    auto points = KMeans::generate_points(dspec);
    KMeans::setup(*cluster, points, 8, "km");
    cluster->metrics().reset();
    IterativeEngine engine(*cluster);
    engine.run(KMeans::imapreduce("km", "out", 3, -1.0, combiner));
    return std::make_pair(
        KMeans::read_result(*cluster, "out", false),
        cluster->metrics().traffic_bytes(TrafficCategory::kShuffle));
  };
  auto [plain, plain_bytes] = run(false);
  auto [combined, combined_bytes] = run(true);
  ASSERT_EQ(plain.size(), combined.size());
  for (const auto& [cid, c] : plain) {
    for (std::size_t d = 0; d < c.size(); ++d) {
      EXPECT_NEAR(c[d], combined.at(cid)[d], 1e-9);
    }
  }
  EXPECT_LT(combined_bytes, plain_bytes);
}

TEST(ImrOne2All, KMeansMatchesBaseline) {
  auto cluster = testutil::free_cluster();
  KMeansDataSpec dspec;
  dspec.num_points = 500;
  dspec.dim = 3;
  auto points = KMeans::generate_points(dspec);
  KMeans::setup(*cluster, points, 6, "km");

  IterativeDriver driver(*cluster);
  driver.run(KMeans::baseline("km", "work", 3));
  auto mr = KMeans::read_result(*cluster, driver.final_output(), false);

  IterativeEngine engine(*cluster);
  engine.run(KMeans::imapreduce("km", "out", 3));
  auto imr = KMeans::read_result(*cluster, "out", false);

  ASSERT_EQ(mr.size(), imr.size());
  for (const auto& [cid, c] : mr) {
    for (std::size_t d = 0; d < c.size(); ++d) {
      EXPECT_NEAR(c[d], imr.at(cid)[d], 1e-9);
    }
  }
}

TEST(ImrOne2All, JacobiConvergesToSolution) {
  auto cluster = testutil::free_cluster();
  JacobiSystem sys = Jacobi::generate(200, 0.05, 13);
  Jacobi::setup(*cluster, sys, "jac");

  IterativeEngine engine(*cluster);
  RunReport report = engine.run(Jacobi::imapreduce("jac", "out", 30, 1e-10));
  EXPECT_TRUE(report.converged);

  auto x = Jacobi::read_result(*cluster, "out", sys.n);
  // Residual check: ||Ax - b|| small.
  for (uint32_t i = 0; i < sys.n; ++i) {
    double lhs = sys.diag[i] * x[i];
    for (const WEdge& e : sys.off_diag[i]) lhs += e.weight * x[e.dst];
    EXPECT_NEAR(lhs, sys.b[i], 1e-6) << "row " << i;
  }
}

TEST(ImrOne2All, JacobiMatchesReferenceAndBaseline) {
  auto cluster = testutil::free_cluster();
  JacobiSystem sys = Jacobi::generate(120, 0.08, 17);
  Jacobi::setup(*cluster, sys, "jac");

  IterativeEngine engine(*cluster);
  engine.run(Jacobi::imapreduce("jac", "out", 8));
  auto imr = Jacobi::read_result(*cluster, "out", sys.n);
  expect_near_vectors(Jacobi::reference(sys, 8), imr, 1e-10);

  IterativeDriver driver(*cluster);
  driver.run(Jacobi::baseline("jac", "work", 8));
  auto mr = Jacobi::read_result(*cluster, driver.final_output(), sys.n);
  expect_near_vectors(imr, mr, 1e-12);
}

TEST(ImrOne2All, RequiresStaticData) {
  auto cluster = testutil::free_cluster();
  JacobiSystem sys = Jacobi::generate(20, 0.2, 1);
  Jacobi::setup(*cluster, sys, "jac");
  IterJobConf conf = Jacobi::imapreduce("jac", "out", 2);
  conf.phases[0].static_path.clear();
  IterativeEngine engine(*cluster);
  EXPECT_THROW(engine.run(conf), ConfigError);
}

// ---------------------------------------------------------------------------
// Multi-phase iterations (§5.2)
// ---------------------------------------------------------------------------

TEST(ImrMultiPhase, MatrixPowerMatchesReference) {
  auto cluster = testutil::free_cluster();
  Matrix m = MatPower::generate(24, 31);
  MatPower::setup(*cluster, m, "mat");

  IterativeEngine engine(*cluster);
  RunReport report = engine.run(MatPower::imapreduce("mat", "out", 3));
  EXPECT_EQ(report.iterations_run, 3);

  Matrix expected = MatPower::reference(m, 3);
  Matrix actual = MatPower::read_result(*cluster, "out", m.n);
  for (uint32_t i = 0; i < m.n; ++i) {
    for (uint32_t k = 0; k < m.n; ++k) {
      EXPECT_NEAR(expected.at(i, k), actual.at(i, k), 1e-12)
          << i << "," << k;
    }
  }
}

TEST(ImrMultiPhase, MatrixPowerMatchesBaseline) {
  auto cluster = testutil::free_cluster();
  Matrix m = MatPower::generate(16, 33);
  MatPower::setup(*cluster, m, "mat");

  IterativeDriver driver(*cluster);
  driver.run(MatPower::baseline("mat", "work", 2));
  Matrix mr = MatPower::read_result(*cluster, driver.final_output(), m.n);

  IterativeEngine engine(*cluster);
  engine.run(MatPower::imapreduce("mat", "out", 2));
  Matrix imr = MatPower::read_result(*cluster, "out", m.n);

  for (uint32_t i = 0; i < m.n; ++i) {
    for (uint32_t k = 0; k < m.n; ++k) {
      EXPECT_NEAR(mr.at(i, k), imr.at(i, k), 1e-12);
    }
  }
}

TEST(ImrMultiPhase, CheckpointingRejectedForMultiPhase) {
  auto cluster = testutil::free_cluster();
  Matrix m = MatPower::generate(8, 1);
  MatPower::setup(*cluster, m, "mat");
  IterJobConf conf = MatPower::imapreduce("mat", "out", 2);
  conf.checkpoint_every = 1;
  IterativeEngine engine(*cluster);
  EXPECT_THROW(engine.run(conf), ConfigError);
}

// ---------------------------------------------------------------------------
// Auxiliary phase (§5.3)
// ---------------------------------------------------------------------------

TEST(ImrAux, KMeansConvergenceDetectionTerminates) {
  auto cluster = testutil::free_cluster();
  KMeansDataSpec dspec;
  dspec.num_points = 600;
  dspec.dim = 4;
  dspec.num_clusters = 4;
  dspec.spread = 0.05;  // well-separated: assignments stabilize fast
  auto points = KMeans::generate_points(dspec);
  KMeans::setup(*cluster, points, 4, "km");

  IterativeEngine engine(*cluster);
  RunReport report =
      engine.run(KMeans::imapreduce_with_aux("km", "out", 30,
                                             /*move_threshold=*/1));
  EXPECT_TRUE(report.converged);
  EXPECT_LT(report.iterations_run, 30);
  EXPECT_GE(cluster->metrics().count("imr_aux_signals"), 1);
}

TEST(ImrAux, WithoutAuxRunsToMaxIter) {
  auto cluster = testutil::free_cluster();
  KMeansDataSpec dspec;
  dspec.num_points = 300;
  dspec.dim = 3;
  auto points = KMeans::generate_points(dspec);
  KMeans::setup(*cluster, points, 4, "km");
  IterativeEngine engine(*cluster);
  RunReport report = engine.run(KMeans::imapreduce("km", "out", 6));
  EXPECT_EQ(report.iterations_run, 6);
  EXPECT_EQ(cluster->metrics().count("imr_aux_signals"), 0);
}

// ---------------------------------------------------------------------------
// Fault tolerance (§3.4.1)
// ---------------------------------------------------------------------------

TEST(ImrFaultTolerance, RecoversFromWorkerFailure) {
  auto cluster = testutil::free_cluster(4, 4, 4);
  Graph g = make_sssp_graph("dblp", 0.002, 5);
  Sssp::setup(*cluster, g, 0, "sssp");

  IterJobConf conf = Sssp::imapreduce("sssp", "out", 8);
  conf.checkpoint_every = 2;
  cluster->schedule_worker_failure(/*worker=*/1, /*at_iteration=*/4);

  IterativeEngine engine(*cluster);
  RunReport report = engine.run(conf);
  EXPECT_EQ(report.iterations_run, 8);
  EXPECT_EQ(cluster->metrics().count("imr_recoveries"), 1);
  EXPECT_FALSE(cluster->worker_alive(1));

  // The recovered run must produce exactly the failure-free result.
  auto expected = Sssp::reference(g, 0, 8);
  expect_near_vectors(expected,
                      Sssp::read_result_imr(*cluster, "out", g.num_nodes()),
                      1e-12);
}

TEST(ImrFaultTolerance, RecoveryWithoutCheckpointRestartsFromInitialState) {
  auto cluster = testutil::free_cluster(4, 4, 4);
  Graph g = make_sssp_graph("dblp", 0.001, 7);
  Sssp::setup(*cluster, g, 0, "sssp");

  IterJobConf conf = Sssp::imapreduce("sssp", "out", 6);
  conf.checkpoint_every = 100;  // never checkpoints within the run
  cluster->schedule_worker_failure(2, 3);

  IterativeEngine engine(*cluster);
  RunReport report = engine.run(conf);
  EXPECT_EQ(report.iterations_run, 6);
  auto expected = Sssp::reference(g, 0, 6);
  expect_near_vectors(expected,
                      Sssp::read_result_imr(*cluster, "out", g.num_nodes()),
                      1e-12);
}

TEST(ImrFaultTolerance, SurvivesTwoFailures) {
  auto cluster = testutil::free_cluster(6, 4, 4);
  Graph g = make_sssp_graph("dblp", 0.002, 9);
  Sssp::setup(*cluster, g, 0, "sssp");

  IterJobConf conf = Sssp::imapreduce("sssp", "out", 10);
  conf.num_tasks = 6;
  conf.checkpoint_every = 2;
  cluster->schedule_worker_failure(0, 3);
  cluster->schedule_worker_failure(5, 7);

  IterativeEngine engine(*cluster);
  RunReport report = engine.run(conf);
  EXPECT_EQ(report.iterations_run, 10);
  EXPECT_EQ(cluster->metrics().count("imr_recoveries"), 2);
  auto expected = Sssp::reference(g, 0, 10);
  expect_near_vectors(expected,
                      Sssp::read_result_imr(*cluster, "out", g.num_nodes()),
                      1e-12);
}

TEST(ImrFaultTolerance, CheckpointsAreWritten) {
  auto cluster = testutil::free_cluster();
  Graph g = make_sssp_graph("dblp", 0.001, 3);
  Sssp::setup(*cluster, g, 0, "sssp");
  IterJobConf conf = Sssp::imapreduce("sssp", "out", 6);
  conf.num_tasks = 5;
  conf.checkpoint_every = 2;
  IterativeEngine engine(*cluster);
  engine.run(conf);
  // 3 checkpoint rounds x num_tasks part files.
  EXPECT_EQ(cluster->metrics().count("imr_checkpoints"), 3 * 5);
  EXPECT_GT(cluster->metrics().traffic_bytes(TrafficCategory::kCheckpoint), 0);
}

// ---------------------------------------------------------------------------
// Load balancing (§3.4.2)
// ---------------------------------------------------------------------------

TEST(ImrLoadBalance, MigratesFromSlowWorkerAndStaysCorrect) {
  auto cluster = testutil::costed_cluster(4, 4, 4);
  cluster->set_worker_speed(0, 0.05);  // heterogeneous cluster: worker 0 slow
  // Large enough that per-iteration compute dominates the fixed network/DFS
  // charges — otherwise the slow worker is not measurably slower.
  Graph g = make_sssp_graph("facebook", 0.01, 19);
  Sssp::setup(*cluster, g, 0, "sssp");
  cluster->metrics().reset();

  IterJobConf conf = Sssp::imapreduce("sssp", "out", 10);
  conf.checkpoint_every = 1;
  conf.load_balancing = true;
  conf.migration_threshold = 0.5;

  IterativeEngine engine(*cluster);
  RunReport report = engine.run(conf);
  EXPECT_EQ(report.iterations_run, 10);
  EXPECT_GE(cluster->metrics().count("imr_migrations"), 1);

  auto expected = Sssp::reference(g, 0, 10);
  expect_near_vectors(expected,
                      Sssp::read_result_imr(*cluster, "out", g.num_nodes()),
                      1e-12);
}

TEST(ImrLoadBalance, NoMigrationOnHomogeneousCluster) {
  auto cluster = testutil::costed_cluster(4, 4, 4);
  Graph g = make_sssp_graph("dblp", 0.001, 23);
  Sssp::setup(*cluster, g, 0, "sssp");
  cluster->metrics().reset();

  IterJobConf conf = Sssp::imapreduce("sssp", "out", 8);
  conf.checkpoint_every = 1;
  conf.load_balancing = true;
  conf.migration_threshold = 3.0;  // generous: noise never triggers it

  IterativeEngine engine(*cluster);
  engine.run(conf);
  EXPECT_EQ(cluster->metrics().count("imr_migrations"), 0);
}

}  // namespace
}  // namespace imr
