// Connected components and logistic regression through the full stack.
#include <gtest/gtest.h>

#include "algorithms/concomp.h"
#include "algorithms/logreg.h"
#include "graph/generator.h"
#include "imapreduce/engine.h"
#include "mapreduce/iterative_driver.h"
#include "tests/test_util.h"

namespace imr {
namespace {

// --- connected components ---

Graph components_graph() {
  // Three components: {0..3} chain, {4,5}, {6} isolated, plus a random blob.
  Graph g;
  g.weighted = false;
  g.adj.resize(12);
  g.adj[0] = {{1, 1}};
  g.adj[1] = {{2, 1}};
  g.adj[2] = {{3, 1}};
  g.adj[4] = {{5, 1}};
  g.adj[7] = {{8, 1}, {9, 1}};
  g.adj[9] = {{10, 1}, {11, 1}};
  return g;
}

TEST(ConCompUnit, UnionFindReference) {
  Graph g = components_graph();
  auto label = ConComp::reference(g);
  EXPECT_EQ(label[0], 0u);
  EXPECT_EQ(label[3], 0u);
  EXPECT_EQ(label[4], 4u);
  EXPECT_EQ(label[5], 4u);
  EXPECT_EQ(label[6], 6u);
  EXPECT_EQ(label[11], 7u);
}

TEST(ConCompUnit, RoundsReferenceConvergesToUnionFind) {
  Graph g = make_sssp_graph("dblp", 0.001, 71);
  auto fix = ConComp::reference(g);
  auto rounds = ConComp::reference_rounds(g, static_cast<int>(g.num_nodes()));
  EXPECT_EQ(fix, rounds);
}

TEST(ConComp, ImrMatchesRoundsReference) {
  auto cluster = testutil::free_cluster();
  Graph g = make_sssp_graph("dblp", 0.002, 73);
  ConComp::setup(*cluster, g, "cc");
  IterativeEngine engine(*cluster);
  engine.run(ConComp::imapreduce("cc", "out", 4));
  EXPECT_EQ(ConComp::read_result_imr(*cluster, "out", g.num_nodes()),
            ConComp::reference_rounds(g, 4));
}

TEST(ConComp, ImrConvergesToExactComponents) {
  auto cluster = testutil::free_cluster();
  Graph g = components_graph();
  ConComp::setup(*cluster, g, "cc");
  IterativeEngine engine(*cluster);
  RunReport r = engine.run(ConComp::imapreduce("cc", "out", 50, 0.5));
  EXPECT_TRUE(r.converged);
  EXPECT_EQ(ConComp::read_result_imr(*cluster, "out", g.num_nodes()),
            ConComp::reference(g));
}

TEST(ConComp, BaselineMatchesImr) {
  auto cluster = testutil::free_cluster();
  Graph g = make_sssp_graph("dblp", 0.001, 79);
  ConComp::setup(*cluster, g, "cc");

  IterativeDriver driver(*cluster);
  driver.run(ConComp::baseline("cc", "work", 5));
  auto mr = ConComp::read_result_mr(*cluster, driver.final_output(),
                                    g.num_nodes());

  IterativeEngine engine(*cluster);
  engine.run(ConComp::imapreduce("cc", "out", 5));
  EXPECT_EQ(mr, ConComp::read_result_imr(*cluster, "out", g.num_nodes()));
}

// --- logistic regression ---

TEST(LogRegUnit, GenerateIsDeterministicAndBalancedish) {
  LogRegDataSpec spec;
  spec.num_samples = 1000;
  auto a = LogReg::generate(spec);
  auto b = LogReg::generate(spec);
  ASSERT_EQ(a.size(), b.size());
  int positives = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].label, b[i].label);
    EXPECT_EQ(a[i].x, b[i].x);
    if (a[i].label > 0) ++positives;
  }
  EXPECT_GT(positives, 350);
  EXPECT_LT(positives, 650);
}

TEST(LogRegUnit, ReferenceLearnsSeparableData) {
  LogRegDataSpec spec;
  spec.num_samples = 2000;
  spec.separation = 4.0;
  auto data = LogReg::generate(spec);
  auto w = LogReg::reference(data, spec.dim, 50, 0.5);
  EXPECT_GT(LogReg::accuracy(data, w), 0.95);
}

TEST(LogReg, ImrMatchesReference) {
  auto cluster = testutil::free_cluster();
  LogRegDataSpec spec;
  spec.num_samples = 1500;
  spec.dim = 5;
  auto data = LogReg::generate(spec);
  LogReg::setup(*cluster, data, spec.dim, "lr");

  IterativeEngine engine(*cluster);
  RunReport r = engine.run(LogReg::imapreduce("lr", "out", spec.dim, 8, 0.5));
  EXPECT_EQ(r.iterations_run, 8);

  auto w = LogReg::read_result(*cluster, "out");
  auto expected = LogReg::reference(data, spec.dim, 8, 0.5);
  ASSERT_EQ(w.size(), expected.size());
  for (std::size_t d = 0; d < w.size(); ++d) {
    EXPECT_NEAR(w[d], expected[d], 1e-9) << d;
  }
}

TEST(LogReg, BaselineMatchesImr) {
  auto cluster = testutil::free_cluster();
  LogRegDataSpec spec;
  spec.num_samples = 1000;
  spec.dim = 4;
  auto data = LogReg::generate(spec);
  LogReg::setup(*cluster, data, spec.dim, "lr");

  IterativeDriver driver(*cluster);
  driver.run(LogReg::baseline("lr", "work", spec.dim, 6, 0.5));
  auto mr = LogReg::read_result(*cluster, driver.final_output());

  IterativeEngine engine(*cluster);
  engine.run(LogReg::imapreduce("lr", "out", spec.dim, 6, 0.5));
  auto imr = LogReg::read_result(*cluster, "out");

  ASSERT_EQ(mr.size(), imr.size());
  for (std::size_t d = 0; d < mr.size(); ++d) {
    EXPECT_NEAR(mr[d], imr[d], 1e-9);
  }
}

TEST(LogReg, ThresholdTerminationOnConvergedWeights) {
  auto cluster = testutil::free_cluster();
  LogRegDataSpec spec;
  spec.num_samples = 800;
  spec.dim = 3;
  // Overlapping classes: a separable problem has no finite optimum (weights
  // grow forever) and would never meet a weight-movement threshold.
  spec.separation = 1.5;
  auto data = LogReg::generate(spec);
  LogReg::setup(*cluster, data, spec.dim, "lr");

  IterativeEngine engine(*cluster);
  RunReport r =
      engine.run(LogReg::imapreduce("lr", "out", spec.dim, 500, 0.5, 5e-3));
  EXPECT_TRUE(r.converged);
  EXPECT_LT(r.iterations_run, 500);
  auto w = LogReg::read_result(*cluster, "out");
  EXPECT_GT(LogReg::accuracy(data, w), 0.7);
}

TEST(LogReg, WorksAcrossTaskCounts) {
  LogRegDataSpec spec;
  spec.num_samples = 600;
  spec.dim = 4;
  auto data = LogReg::generate(spec);
  std::vector<double> first;
  for (int tasks : {1, 3, 8}) {
    auto cluster = testutil::free_cluster(4, 4, 4);
    LogReg::setup(*cluster, data, spec.dim, "lr");
    IterJobConf conf = LogReg::imapreduce("lr", "out", spec.dim, 5, 0.5);
    conf.num_tasks = tasks;
    IterativeEngine engine(*cluster);
    engine.run(conf);
    auto w = LogReg::read_result(*cluster, "out");
    if (first.empty()) {
      first = w;
    } else {
      ASSERT_EQ(w.size(), first.size());
      for (std::size_t d = 0; d < w.size(); ++d) {
        EXPECT_NEAR(w[d], first[d], 1e-9) << "tasks=" << tasks;
      }
    }
  }
}

}  // namespace
}  // namespace imr
