// Job-session (incremental recomputation) suite — DESIGN.md §8.
//
// The load-bearing property: a session that converges on graph g0, absorbs
// static-delta batches toward graph g1, and reconverges must hold the SAME
// final state, byte for byte, as a cold workset run over g1. Refining deltas
// (per the algorithms' perturbed_keys hooks) take the incremental path —
// frontier iterations seeded only at the perturbed keys; non-refining deltas
// take the reset_all path — an in-session replay from the original initial
// state over the mutated static data. Both must land on identical bytes.
//
// Also here: the StaticStore mutation contract (apply_delta == fresh build of
// the mutated partition, epoch bump per mutation), the perturbed_keys hook
// classifications for all three algorithms, session fault sweeps (worker
// death mid-reconvergence with delta replay, torn converged-* checkpoints),
// and the InvariantChecker's session-aware rules (5: resume jumps, 8:
// per-session drain suffix, 9: delta conservation).
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <random>
#include <string>
#include <tuple>
#include <vector>

#include "algorithms/concomp.h"
#include "algorithms/pagerank.h"
#include "algorithms/sssp.h"
#include "cluster/fault_schedule.h"
#include "common/codec.h"
#include "common/error.h"
#include "graph/generator.h"
#include "imapreduce/api.h"
#include "imapreduce/conf.h"
#include "imapreduce/delta.h"
#include "imapreduce/engine.h"
#include "imapreduce/static_store.h"
#include "mapreduce/engine.h"  // resolve_input_paths
#include "mapreduce/shuffle_util.h"
#include "metrics/invariants.h"
#include "tests/chaos_harness.h"
#include "tests/test_util.h"

namespace imr {
namespace {

using chaos::workset_expectations;

enum class SesAlgo { kSssp, kConComp, kPrDelta };

const char* algo_name(SesAlgo a) {
  switch (a) {
    case SesAlgo::kSssp:
      return "Sssp";
    case SesAlgo::kConComp:
      return "ConComp";
    case SesAlgo::kPrDelta:
      return "PrDelta";
  }
  return "?";
}

constexpr double kPrTheta = 1e-6;

std::map<Bytes, Bytes> read_state(Cluster& cluster, const std::string& path) {
  std::map<Bytes, Bytes> state;
  for (const auto& part : resolve_input_paths(cluster.dfs(), path)) {
    for (const KV& kv : cluster.dfs().read_all(part, -1, nullptr)) {
      state[kv.key] = kv.value;
    }
  }
  return state;
}

void setup_algo(SesAlgo algo, Cluster& cluster, const Graph& g,
                const std::string& base) {
  switch (algo) {
    case SesAlgo::kSssp:
      Sssp::setup(cluster, g, 0, base);
      break;
    case SesAlgo::kConComp:
      ConComp::setup(cluster, g, base);
      break;
    case SesAlgo::kPrDelta:
      PageRank::setup_delta(cluster, g, base);
      break;
  }
}

IterJobConf make_conf(SesAlgo algo, const std::string& base,
                      const std::string& out, int tasks) {
  IterJobConf conf;
  switch (algo) {
    case SesAlgo::kSssp:
      conf = Sssp::imapreduce(base, out, /*max_iterations=*/60);
      break;
    case SesAlgo::kConComp:
      conf = ConComp::imapreduce(base, out, /*max_iterations=*/60);
      break;
    case SesAlgo::kPrDelta:
      conf = PageRank::imapreduce_delta(base, out, /*max_iterations=*/80,
                                        kPrTheta);
      break;
  }
  conf.num_tasks = tasks;
  conf.workset_mode = true;
  conf.distance_threshold = -1.0;  // the drain is the only way to converge
  return conf;
}

StaticDelta build_delta(SesAlgo algo, const Graph& before,
                        const Graph& after) {
  switch (algo) {
    case SesAlgo::kSssp:
      return Sssp::static_delta(before, after);
    case SesAlgo::kConComp:
      return ConComp::static_delta(before, after);
    case SesAlgo::kPrDelta:
      return PageRank::static_delta(before, after);
  }
  return {};
}

Graph base_graph(SesAlgo algo, uint64_t seed) {
  LogNormalGraphSpec spec;
  spec.num_nodes = 60 + static_cast<uint32_t>((seed * 41) % 100);
  spec.degree_mu = 0.6 + 0.3 * static_cast<double>(seed % 3);
  spec.degree_sigma = 0.7;
  spec.weighted = algo == SesAlgo::kSssp;
  spec.seed = 4000 + 11 * seed + static_cast<uint64_t>(algo);
  return generate_lognormal_graph(spec);
}

// Adds an edge between a deterministically-chosen non-adjacent pair, so every
// mutation is guaranteed to change at least one adjacency list even after
// symmetrization (ConComp's delta ignores duplicate edges).
void add_fresh_edge(Graph& g, std::mt19937_64& rng, bool weighted) {
  const uint32_t n = g.num_nodes();
  for (int tries = 0; tries < 64; ++tries) {
    auto u = static_cast<uint32_t>(rng() % n);
    auto v = static_cast<uint32_t>(rng() % n);
    if (u == v) continue;
    bool adjacent = false;
    for (const WEdge& e : g.adj[u]) adjacent |= e.dst == v;
    for (const WEdge& e : g.adj[v]) adjacent |= e.dst == u;
    if (adjacent) continue;
    double w = weighted ? 0.25 + 0.5 * (static_cast<double>(rng() % 8)) : 1.0;
    g.adj[u].push_back(WEdge{v, w});
    return;
  }
}

enum class Mutation { kRefine, kMixed };

// Deterministic graph edit batch. kRefine only adds edges or lowers weights,
// so SSSP/ConComp hooks accept the whole batch and the session takes the
// incremental path; kMixed also removes edges and raises weights, forcing
// reset_all. The node universe never changes.
Graph mutate(Graph g, uint64_t seed, Mutation kind, bool weighted) {
  std::mt19937_64 rng(seed * 977 + 13 + (kind == Mutation::kMixed ? 1 : 0));
  const uint32_t n = g.num_nodes();
  add_fresh_edge(g, rng, weighted);
  const int edits = 3 + static_cast<int>(rng() % 5);
  for (int i = 0; i < edits; ++i) {
    auto u = static_cast<uint32_t>(rng() % n);
    switch (rng() % (kind == Mutation::kMixed ? 3u : 2u)) {
      case 0:
        add_fresh_edge(g, rng, weighted);
        break;
      case 1:  // cheapen an existing edge (a no-op delta for unweighted algos)
        if (weighted && !g.adj[u].empty()) {
          g.adj[u][rng() % g.adj[u].size()].weight *= 0.5;
        } else {
          add_fresh_edge(g, rng, weighted);
        }
        break;
      case 2:  // remove an edge: never refining
        if (!g.adj[u].empty()) {
          g.adj[u].erase(g.adj[u].begin() +
                         static_cast<std::ptrdiff_t>(rng() % g.adj[u].size()));
        }
        break;
    }
  }
  return g;
}

// ---------------------------------------------------------------------------
// StaticStore mutation contract.
// ---------------------------------------------------------------------------

KVVec sorted_records(std::vector<std::pair<std::string, std::string>> kvs) {
  KVVec records;
  for (auto& [k, v] : kvs) records.emplace_back(k, v);
  sort_records(records, /*sort_values=*/false);
  return records;
}

TEST(StaticStoreDelta, ApplyDeltaMatchesFreshBuild) {
  std::mt19937_64 rng(7);
  for (int round = 0; round < 20; ++round) {
    // Random base partition (with occasional duplicate keys, as a real
    // static partition may hold) and a random op batch over the key space.
    std::vector<std::pair<std::string, std::string>> base;
    const int nkeys = 5 + static_cast<int>(rng() % 20);
    for (int i = 0; i < nkeys; ++i) {
      std::string key = "k" + std::to_string(rng() % 16);
      base.emplace_back(key, "v" + std::to_string(rng() % 100));
    }
    std::vector<StaticDeltaOp> ops;
    const int nops = 1 + static_cast<int>(rng() % 8);
    for (int i = 0; i < nops; ++i) {
      std::string key = "k" + std::to_string(rng() % 16);
      if (rng() % 3 == 0) {
        ops.emplace_back(DeltaOpKind::kErase, key);
      } else {
        ops.emplace_back(DeltaOpKind::kUpsert, key,
                         "u" + std::to_string(rng() % 100));
      }
    }

    StaticStore incremental;
    incremental.build(sorted_records(base));
    incremental.apply_delta(ops);

    // The reference: replay the batch against a plain multimap — an upsert
    // replaces ALL records of its key with the single new value, an erase
    // removes them all, and untouched keys keep every duplicate — then
    // build fresh from the surviving records.
    std::multimap<std::string, std::string> expect_map;
    for (auto& r : sorted_records(base)) {
      expect_map.emplace(std::string(r.key), std::string(r.value));
    }
    for (const auto& op : ops) {
      expect_map.erase(std::string(op.key));
      if (op.kind == DeltaOpKind::kUpsert) {
        expect_map.emplace(std::string(op.key), std::string(op.value));
      }
    }
    StaticStore fresh;
    {
      KVVec records;
      for (auto& [k, v] : expect_map) records.emplace_back(k, v);
      sort_records(records, /*sort_values=*/false);
      fresh.build(std::move(records));
    }

    ASSERT_EQ(incremental.records().size(), fresh.records().size())
        << "round " << round;
    for (std::size_t i = 0; i < fresh.records().size(); ++i) {
      EXPECT_EQ(incremental.records()[i].key, fresh.records()[i].key);
      EXPECT_EQ(incremental.records()[i].value, fresh.records()[i].value);
    }
    for (int k = 0; k < 16; ++k) {
      std::string key = "k" + std::to_string(k);
      const Bytes* a = incremental.find(key);
      const Bytes* b = fresh.find(key);
      ASSERT_EQ(a == nullptr, b == nullptr) << "key " << key;
      if (a != nullptr) EXPECT_EQ(*a, *b) << "key " << key;
    }
  }
}

TEST(StaticStoreDelta, UpsertCollapsesDuplicatesEraseRemovesAll) {
  StaticStore store;
  store.build(sorted_records({{"a", "1"}, {"a", "2"}, {"b", "3"},
                              {"b", "4"}, {"c", "5"}}));
  ASSERT_NE(store.find("a"), nullptr);
  EXPECT_EQ(*store.find("a"), "1");  // first in sorted order

  store.apply_delta({{DeltaOpKind::kUpsert, Bytes("a"), Bytes("9")},
                     {DeltaOpKind::kErase, Bytes("b")}});
  ASSERT_NE(store.find("a"), nullptr);
  EXPECT_EQ(*store.find("a"), "9");
  EXPECT_EQ(store.find("b"), nullptr);
  EXPECT_EQ(*store.find("c"), "5");
  EXPECT_EQ(store.records().size(), 2u);  // a collapsed, b gone, c kept
}

TEST(StaticStoreDelta, EveryMutationBumpsTheEpoch) {
  StaticStore store;
  const uint64_t e0 = store.epoch();
  store.build(sorted_records({{"a", "1"}}));
  const uint64_t e1 = store.epoch();
  EXPECT_GT(e1, e0);
  store.apply_delta({{DeltaOpKind::kUpsert, Bytes("a"), Bytes("2")}});
  const uint64_t e2 = store.epoch();
  EXPECT_GT(e2, e1);
  store.apply_delta({});  // even an empty batch invalidates probes
  EXPECT_GT(store.epoch(), e2);
}

// ---------------------------------------------------------------------------
// perturbed_keys hook classifications.
// ---------------------------------------------------------------------------

Bytes wedges(const std::vector<WEdge>& edges) {
  Bytes b;
  encode_wedges(edges, b);
  return b;
}

Bytes adj_bytes(const std::vector<uint32_t>& adj) {
  Bytes b;
  encode_adj(adj, b);
  return b;
}

TEST(PerturbHooks, SsspRefinesOnlyWhenNoDestinationGetsFarther) {
  IterJobConf conf = Sssp::imapreduce("in", "out", 5);
  auto mapper = conf.phases[0].mapper();
  const Bytes old_edges = wedges({{1, 2.0}, {2, 5.0}});

  KVVec seeds;
  // Added edge + lowered weight: refining, seed = the perturbed key.
  EXPECT_TRUE(mapper->perturbed_keys(
      {DeltaOpKind::kUpsert, u32_key(7), wedges({{1, 2.0}, {2, 4.0}, {3, 1.0}})},
      &old_edges, seeds));
  ASSERT_EQ(seeds.size(), 1u);
  EXPECT_EQ(seeds[0].key, u32_key(7));

  // Raised weight: the path through dst 2 may lengthen.
  seeds.clear();
  EXPECT_FALSE(mapper->perturbed_keys(
      {DeltaOpKind::kUpsert, u32_key(7), wedges({{1, 2.0}, {2, 6.0}})},
      &old_edges, seeds));
  EXPECT_EQ(seeds.size(), 1u);  // the seed is pushed either way

  // Removed destination.
  seeds.clear();
  EXPECT_FALSE(mapper->perturbed_keys(
      {DeltaOpKind::kUpsert, u32_key(7), wedges({{1, 2.0}})}, &old_edges,
      seeds));

  // A parallel cheaper edge covers the old one: still refining.
  seeds.clear();
  EXPECT_TRUE(mapper->perturbed_keys(
      {DeltaOpKind::kUpsert, u32_key(7),
       wedges({{1, 2.0}, {2, 9.0}, {2, 3.0}})},
      &old_edges, seeds));

  // Erase and no-prior-static cases.
  seeds.clear();
  EXPECT_FALSE(mapper->perturbed_keys({DeltaOpKind::kErase, u32_key(7)},
                                      &old_edges, seeds));
  seeds.clear();
  EXPECT_TRUE(mapper->perturbed_keys(
      {DeltaOpKind::kUpsert, u32_key(9), wedges({{1, 1.0}})}, nullptr,
      seeds));
}

TEST(PerturbHooks, ConCompRefinesOnlyOnNeighborSupersets) {
  IterJobConf conf = ConComp::imapreduce("in", "out", 5);
  auto mapper = conf.phases[0].mapper();
  const Bytes old_adj = adj_bytes({1, 4});

  KVVec seeds;
  EXPECT_TRUE(mapper->perturbed_keys(
      {DeltaOpKind::kUpsert, u32_key(3), adj_bytes({1, 2, 4})}, &old_adj,
      seeds));
  ASSERT_EQ(seeds.size(), 1u);
  EXPECT_EQ(seeds[0].key, u32_key(3));
  EXPECT_EQ(seeds[0].value, u32_key(3));  // fallback label = own id

  seeds.clear();
  EXPECT_FALSE(mapper->perturbed_keys(
      {DeltaOpKind::kUpsert, u32_key(3), adj_bytes({1, 2})}, &old_adj,
      seeds));
  seeds.clear();
  EXPECT_FALSE(mapper->perturbed_keys({DeltaOpKind::kErase, u32_key(3)},
                                      &old_adj, seeds));
  seeds.clear();
  EXPECT_TRUE(mapper->perturbed_keys(
      {DeltaOpKind::kUpsert, u32_key(3), adj_bytes({5})}, nullptr, seeds));
}

TEST(PerturbHooks, PageRankDeltaAlwaysResets) {
  IterJobConf conf = PageRank::imapreduce_delta("in", "out", 5, kPrTheta);
  auto mapper = conf.phases[0].mapper();
  const Bytes old_adj = adj_bytes({1});
  KVVec seeds;
  // Even a pure superset is non-refining: share mass already banked
  // downstream redistributes, so only a reset replay is byte-exact.
  EXPECT_FALSE(mapper->perturbed_keys(
      {DeltaOpKind::kUpsert, u32_key(0), adj_bytes({1, 2})}, &old_adj,
      seeds));
}

// ---------------------------------------------------------------------------
// Session equivalence sweep: the session's reconverged state must be
// byte-identical to a cold workset run over the mutated graph — across
// seeds, algorithms, and both the refining and reset_all paths, with TWO
// update batches applied back to back.
// ---------------------------------------------------------------------------

using SesParam = std::tuple<uint64_t, SesAlgo, Mutation>;

class SessionEquivalence : public ::testing::TestWithParam<SesParam> {};

TEST_P(SessionEquivalence, ReconvergesToColdRunBytes) {
  const auto [seed, algo, kind] = GetParam();
  const bool weighted = algo == SesAlgo::kSssp;
  const Graph g0 = base_graph(algo, seed);
  const Graph g1 = mutate(g0, seed, kind, weighted);
  const Graph g2 = mutate(g1, seed + 100, kind, weighted);
  const auto n = static_cast<int64_t>(g0.num_nodes());
  const int tasks = 2 + static_cast<int>(seed % 3);

  // Cold reference: a plain workset run over the FINAL graph.
  auto cold = testutil::free_cluster(3, 4, 4);
  setup_algo(algo, *cold, g2, "in");
  IterativeEngine cold_engine(*cold);
  RunReport cold_run = cold_engine.run(make_conf(algo, "in", "out", tasks));
  ASSERT_TRUE(cold_run.converged);
  const auto reference = read_state(*cold, "out");

  // Session: converge on g0, then absorb g0->g1 and g1->g2.
  auto live = testutil::free_cluster(3, 4, 4);
  setup_algo(algo, *live, g0, "in");
  IterativeEngine engine(*live);
  JobSession session = engine.open_session(make_conf(algo, "in", "out", tasks));
  ASSERT_TRUE(session.last_report().converged);

  const StaticDelta d1 = build_delta(algo, g0, g1);
  const StaticDelta d2 = build_delta(algo, g1, g2);
  RunReport epoch1 = session.apply_update(d1);
  EXPECT_TRUE(epoch1.converged);
  RunReport epoch2 = session.apply_update(d2);
  EXPECT_TRUE(epoch2.converged);
  RunReport full = session.close();
  EXPECT_TRUE(session.closed());

  // The property under test: byte-identical reconverged state.
  EXPECT_EQ(reference, read_state(*live, "out"))
      << "session state diverged from the cold run (seed=" << seed
      << ", algo=" << algo_name(algo)
      << ", kind=" << (kind == Mutation::kRefine ? "refine" : "mixed") << ")";

  // Epoch accounting and the delta-conservation invariant over the whole
  // session run.
  EXPECT_EQ(live->metrics().count("imr_session_epochs"), 2);
  if (algo == SesAlgo::kPrDelta) {
    // Non-monotone: every batch resets.
    EXPECT_EQ(live->metrics().count("imr_session_resets"), 2);
  } else if (kind == Mutation::kRefine) {
    // Purely refining batches must take the incremental path.
    EXPECT_EQ(live->metrics().count("imr_session_resets"), 0);
  }
  InvariantExpectations expect = workset_expectations(n, tasks);
  expect.expected_delta_ops = static_cast<int64_t>(d1.size() + d2.size());
  auto violations = InvariantChecker(live->metrics())
                        .with_channel_stats(live->fabric().channel_stats())
                        .with_report(full)
                        .check(expect);
  EXPECT_TRUE(violations.empty()) << ::testing::PrintToString(violations);
}

INSTANTIATE_TEST_SUITE_P(
    SeedsByAlgosByMutations, SessionEquivalence,
    ::testing::Combine(
        ::testing::Values(uint64_t{1}, uint64_t{2}, uint64_t{3}),
        ::testing::Values(SesAlgo::kSssp, SesAlgo::kConComp,
                          SesAlgo::kPrDelta),
        ::testing::Values(Mutation::kRefine, Mutation::kMixed)),
    [](const ::testing::TestParamInfo<SesParam>& info) {
      return std::string("seed") + std::to_string(std::get<0>(info.param)) +
             "_" + algo_name(std::get<1>(info.param)) +
             (std::get<2>(info.param) == Mutation::kRefine ? "_refine"
                                                           : "_mixed");
    });

// Sessions are defined over frontiers: a bulk-mode conf must be rejected at
// open time, before any task spawns.
TEST(SessionConf, RejectsBulkModeJobs) {
  IterJobConf conf = Sssp::imapreduce("in", "out", 5);
  auto cluster = testutil::free_cluster(2, 2, 2);
  IterativeEngine engine(*cluster);
  EXPECT_THROW(engine.open_session(conf), ConfigError);
}

// An empty update batch is a legal no-op epoch: the frontier starts empty
// and drains immediately, and the state is untouched.
TEST(SessionConf, EmptyDeltaIsANoOpEpoch) {
  const Graph g = base_graph(SesAlgo::kSssp, 1);
  auto cluster = testutil::free_cluster(3, 4, 4);
  Sssp::setup(*cluster, g, 0, "in");
  IterativeEngine engine(*cluster);
  JobSession session =
      engine.open_session(make_conf(SesAlgo::kSssp, "in", "out", 3));
  RunReport epoch = session.apply_update(StaticDelta{});
  EXPECT_TRUE(epoch.converged);
  session.close();

  auto fresh = testutil::free_cluster(3, 4, 4);
  Sssp::setup(*fresh, g, 0, "in");
  IterativeEngine cold_engine(*fresh);
  cold_engine.run(make_conf(SesAlgo::kSssp, "in", "out", 3));
  EXPECT_EQ(read_state(*fresh, "out"), read_state(*cluster, "out"));
}

// ---------------------------------------------------------------------------
// Session fault sweeps.
// ---------------------------------------------------------------------------

// A long tail hanging off node 0 guarantees reconvergence takes at least
// `len` iterations (the halved weights re-propagate hop by hop), giving the
// mid-reconvergence fault a window to fire.
Graph with_tail(Graph g, int len) {
  uint32_t prev = 0;
  for (int t = 0; t < len; ++t) {
    auto node = static_cast<uint32_t>(g.adj.size());
    g.adj.emplace_back();
    g.adj[prev].push_back(WEdge{node, 1.0});
    prev = node;
  }
  return g;
}

Graph halve_weights(Graph g) {
  for (auto& adj : g.adj) {
    for (WEdge& e : adj) e.weight *= 0.5;
  }
  return g;
}

struct ChaosGraphs {
  Graph g0, g1;
  int64_t n = 0;
};

ChaosGraphs chaos_graphs() {
  LogNormalGraphSpec spec;
  spec.num_nodes = 90;
  spec.degree_mu = 1.0;
  spec.degree_sigma = 0.8;
  spec.weighted = true;
  spec.seed = 7321;
  ChaosGraphs g;
  g.g0 = with_tail(generate_lognormal_graph(spec), 8);
  // Halving EVERY weight perturbs every node that has out-edges — the delta
  // spans all partitions, so any respawned map task must replay ops — and is
  // refining (no destination gets farther), so the session reconverges
  // incrementally over >= 8 frontier iterations down the tail.
  g.g1 = halve_weights(g.g0);
  g.n = static_cast<int64_t>(g.g0.num_nodes());
  return g;
}

// Worker death in the middle of a reconvergence epoch: the master rolls the
// epoch back, the respawned map tasks rebuild their static stores from the
// ORIGINAL input and replay the session's delta history, and the re-drained
// state must still match the cold run bytes.
TEST(SessionChaos, WorkerDeathMidReconvergenceReplaysDeltas) {
  const ChaosGraphs g = chaos_graphs();
  const int kTasks = 4;
  IterJobConf conf = make_conf(SesAlgo::kSssp, "in", "out", kTasks);
  conf.checkpoint_every = 2;

  auto cold = testutil::free_cluster(3, 4, 4);
  Sssp::setup(*cold, g.g1, 0, "in");
  IterativeEngine cold_engine(*cold);
  ASSERT_TRUE(cold_engine.run(conf).converged);
  const auto reference = read_state(*cold, "out");

  auto live = testutil::free_cluster(3, 4, 4);
  Sssp::setup(*live, g.g0, 0, "in");
  IterativeEngine engine(*live);
  JobSession session = engine.open_session(conf);
  const RunReport& initial = session.last_report();
  ASSERT_TRUE(initial.converged);
  ASSERT_FALSE(initial.iterations.empty());
  const int k_star = initial.iterations.back().iteration;

  // The epoch resumes at k*+2; parked tasks may already have probed the
  // k*+2 boundary while draining, so strike one iteration later — the >= 8
  // tail iterations guarantee the epoch reaches it.
  FaultSchedule schedule;
  schedule.add(/*worker=*/1, FaultPoint::kIterationBoundary,
               /*at_iteration=*/k_star + 3);
  live->set_fault_schedule(schedule);

  const StaticDelta delta = Sssp::static_delta(g.g0, g.g1);
  RunReport epoch = session.apply_update(delta);
  EXPECT_TRUE(epoch.converged);
  RunReport full = session.close();

  EXPECT_EQ(reference, read_state(*live, "out"))
      << "recovered session diverged from the cold run bytes";
  EXPECT_EQ(live->metrics().count("imr_recoveries"), 1);
  EXPECT_GT(live->metrics().count("imr_delta_ops_replayed"), 0)
      << "respawned maps must replay the session's delta history";
  EXPECT_EQ(live->metrics().count("imr_session_resets"), 0);
  chaos::expect_all_faults_consumed(*live);

  InvariantExpectations expect = workset_expectations(g.n, kTasks,
                                                      /*expected_recoveries=*/1);
  expect.expected_delta_ops = static_cast<int64_t>(delta.size());
  auto violations = InvariantChecker(live->metrics())
                        .with_channel_stats(live->fabric().channel_stats())
                        .with_report(full)
                        .check(expect);
  EXPECT_TRUE(violations.empty()) << ::testing::PrintToString(violations);
}

// A fault tears the converged-* checkpoint mid-write (half the records land,
// then the task dies). The master must roll back, re-drain, and re-quiesce
// with a complete baseline — and the following update epoch must still
// reconverge to the cold bytes (the torn half must never be read back).
TEST(SessionChaos, TornConvergedCheckpointRetriesQuiesce) {
  const ChaosGraphs g = chaos_graphs();
  const int kTasks = 4;
  IterJobConf conf = make_conf(SesAlgo::kSssp, "in", "out", kTasks);
  // Suppress periodic checkpoints so the converged-* dump is the ONLY
  // kCheckpointWrite probe: the rollback restarts from iteration 0.
  conf.checkpoint_every = 100;

  auto cold = testutil::free_cluster(3, 4, 4);
  Sssp::setup(*cold, g.g1, 0, "in");
  IterativeEngine cold_engine(*cold);
  ASSERT_TRUE(cold_engine.run(conf).converged);
  const auto reference = read_state(*cold, "out");

  auto live = testutil::free_cluster(3, 4, 4);
  Sssp::setup(*live, g.g0, 0, "in");
  FaultSchedule schedule;
  schedule.add(/*worker=*/1, FaultPoint::kCheckpointWrite, /*at_iteration=*/1);
  live->set_fault_schedule(schedule);

  IterativeEngine engine(*live);
  JobSession session = engine.open_session(conf);
  ASSERT_TRUE(session.last_report().converged);
  EXPECT_EQ(live->metrics().count("imr_torn_checkpoints"), 1);
  EXPECT_EQ(live->metrics().count("imr_recoveries"), 1);

  const StaticDelta delta = Sssp::static_delta(g.g0, g.g1);
  EXPECT_TRUE(session.apply_update(delta).converged);
  RunReport full = session.close();

  EXPECT_EQ(reference, read_state(*live, "out"))
      << "session resumed from a torn converged checkpoint";
  chaos::expect_all_faults_consumed(*live);

  InvariantExpectations expect = workset_expectations(g.n, kTasks,
                                                      /*expected_recoveries=*/1);
  expect.expected_delta_ops = static_cast<int64_t>(delta.size());
  auto violations = InvariantChecker(live->metrics())
                        .with_channel_stats(live->fabric().channel_stats())
                        .with_report(full)
                        .check(expect);
  EXPECT_TRUE(violations.empty()) << ::testing::PrintToString(violations);
}

// Worker death inside a reset_all epoch: the replay is a full cold run in
// place, and recovery during it must still land on the cold bytes.
TEST(SessionChaos, WorkerDeathDuringResetReplay) {
  const ChaosGraphs g = chaos_graphs();
  // Drop one edge so the delta is non-refining and the epoch resets.
  Graph g1 = g.g1;
  uint32_t victim = 0;
  while (g1.adj[victim].empty()) ++victim;
  g1.adj[victim].pop_back();

  const int kTasks = 4;
  IterJobConf conf = make_conf(SesAlgo::kSssp, "in", "out", kTasks);
  conf.checkpoint_every = 2;

  auto cold = testutil::free_cluster(3, 4, 4);
  Sssp::setup(*cold, g1, 0, "in");
  IterativeEngine cold_engine(*cold);
  ASSERT_TRUE(cold_engine.run(conf).converged);
  const auto reference = read_state(*cold, "out");

  auto live = testutil::free_cluster(3, 4, 4);
  Sssp::setup(*live, g.g0, 0, "in");
  IterativeEngine engine(*live);
  JobSession session = engine.open_session(conf);
  ASSERT_TRUE(session.last_report().converged);
  const int k_star = session.last_report().iterations.back().iteration;

  FaultSchedule schedule;
  schedule.add(/*worker=*/2, FaultPoint::kIterationBoundary,
               /*at_iteration=*/k_star + 3);
  live->set_fault_schedule(schedule);

  EXPECT_TRUE(session.apply_update(Sssp::static_delta(g.g0, g1)).converged);
  session.close();

  EXPECT_EQ(live->metrics().count("imr_session_resets"), 1);
  EXPECT_EQ(live->metrics().count("imr_recoveries"), 1);
  chaos::expect_all_faults_consumed(*live);
  EXPECT_EQ(reference, read_state(*live, "out"))
      << "reset replay diverged after recovery";
}

// ---------------------------------------------------------------------------
// InvariantChecker session-aware rules (5, 8, 9) — synthetic reports.
// ---------------------------------------------------------------------------

RunReport session_report(
    const std::vector<std::tuple<int, int, int64_t>>& entries) {
  RunReport r;
  r.converged = true;
  for (const auto& [iteration, session, ws] : entries) {
    IterationStat st;
    st.iteration = iteration;
    st.session = session;
    st.workset_size = ws;
    r.iterations.push_back(st);
  }
  r.iterations_run = r.iterations.empty() ? 0 : r.iterations.back().iteration;
  r.final_state_records = 100;
  return r;
}

std::vector<std::string> check_synthetic(const MetricsRegistry& metrics,
                                         const RunReport& report,
                                         const InvariantExpectations& expect) {
  return InvariantChecker(metrics).with_report(report).check(expect);
}

TEST(SessionInvariants, ResumeJumpAcrossSessionsIsClean) {
  // Session 0 drains at 3; the update epoch resumes at 5 (drain + 2).
  RunReport r = session_report(
      {{1, 0, 100}, {2, 0, 10}, {3, 0, 0}, {5, 1, 4}, {6, 1, 0}});
  MetricsRegistry m;
  auto violations = check_synthetic(m, r, workset_expectations(100));
  EXPECT_TRUE(violations.empty()) << ::testing::PrintToString(violations);
}

TEST(SessionInvariants, IterationRegressAcrossSessionBoundaryFlagged) {
  RunReport r = session_report({{1, 0, 100}, {2, 0, 0}, {2, 1, 4}, {3, 1, 0}});
  MetricsRegistry m;
  auto violations = check_synthetic(m, r, workset_expectations(100));
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_NE(violations[0].find("regresses"), std::string::npos)
      << violations[0];
}

TEST(SessionInvariants, JumpWithinASessionStillFlagged) {
  RunReport r = session_report({{1, 0, 100}, {3, 0, 0}});
  MetricsRegistry m;
  auto violations = check_synthetic(m, r, workset_expectations(100));
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_NE(violations[0].find("jumps"), std::string::npos) << violations[0];
}

TEST(SessionInvariants, SessionRegressFlagged) {
  RunReport r = session_report({{1, 1, 100}, {2, 0, 0}});
  MetricsRegistry m;
  auto violations = check_synthetic(m, r, workset_expectations(100));
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_NE(violations[0].find("session ledger"), std::string::npos)
      << violations[0];
}

TEST(SessionInvariants, DrainedSuffixWithinSessionIsClean) {
  // A recovery that rolled back to the drain checkpoint re-decides drained
  // iterations before quiescing: trailing zeros are legal.
  RunReport r = session_report(
      {{1, 0, 100}, {2, 0, 0}, {4, 1, 6}, {5, 1, 0}, {6, 1, 0}});
  MetricsRegistry m;
  auto violations = check_synthetic(m, r, workset_expectations(100));
  EXPECT_TRUE(violations.empty()) << ::testing::PrintToString(violations);
}

TEST(SessionInvariants, ZeroThenNonzeroSameSessionFlagged) {
  RunReport r = session_report({{1, 0, 100}, {2, 0, 0}, {3, 0, 5}, {4, 0, 0}});
  MetricsRegistry m;
  auto violations = check_synthetic(m, r, workset_expectations(100));
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_NE(violations[0].find("past its fixpoint"), std::string::npos)
      << violations[0];
}

TEST(SessionInvariants, DeltaLedgerImbalanceFlagged) {
  RunReport r = session_report({{1, 0, 100}, {2, 0, 0}});
  MetricsRegistry m;
  m.inc("imr_delta_ops_routed", 5);
  m.inc("imr_delta_ops_applied", 4);
  auto violations = check_synthetic(m, r, workset_expectations(100));
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_NE(violations[0].find("delta ledger"), std::string::npos)
      << violations[0];
}

TEST(SessionInvariants, DeltaLedgerBalancedAndExpectedCountChecked) {
  RunReport r = session_report({{1, 0, 100}, {2, 0, 0}});
  MetricsRegistry m;
  m.inc("imr_delta_ops_routed", 5);
  m.inc("imr_delta_ops_applied", 5);
  // Replayed ops are outside the balance on purpose.
  m.inc("imr_delta_ops_replayed", 3);
  InvariantExpectations expect = workset_expectations(100);
  expect.expected_delta_ops = 5;
  EXPECT_TRUE(check_synthetic(m, r, expect).empty());
  expect.expected_delta_ops = 7;
  auto violations = check_synthetic(m, r, expect);
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_NE(violations[0].find("expected 7 delta ops"), std::string::npos)
      << violations[0];
}

}  // namespace
}  // namespace imr
