// Deterministic chaos tests: seeded fault schedules swept across injection
// points and algorithms, every run checked against the sequential reference
// and the InvariantChecker. A failing case is reproducible from its parameter
// tuple alone (docs/PROTOCOL.md, "Fault injection & chaos testing").
#include <gtest/gtest.h>

#include <string>
#include <tuple>
#include <vector>

#include "algorithms/pagerank.h"
#include "algorithms/sssp.h"
#include "graph/generator.h"
#include "imapreduce/engine.h"
#include "tests/chaos_harness.h"
#include "tests/test_util.h"

namespace imr {
namespace {

using chaos::run_chaos_job;
using testutil::expect_near_vectors;

// ---------------------------------------------------------------------------
// The sweep: 5 seeds x 5 injection points x 2 algorithms = 50 cases.
// (kMigration is exercised by the targeted cascade test below — its respawn
// target depends on live-worker load, so it does not sweep independently.)
// ---------------------------------------------------------------------------

enum class ChaosAlgo { kSssp, kPageRank };

const char* algo_name(ChaosAlgo a) {
  return a == ChaosAlgo::kSssp ? "Sssp" : "PageRank";
}

using SweepParam = std::tuple<uint64_t, FaultPoint, ChaosAlgo>;

class ChaosSweep : public ::testing::TestWithParam<SweepParam> {};

TEST_P(ChaosSweep, RecoversAndMatchesReference) {
  const auto [seed, point, algo] = GetParam();
  constexpr int kWorkers = 3;
  constexpr int kTasks = 4;
  constexpr int kIterations = 7;

  auto cluster = testutil::free_cluster(kWorkers, 4, 4);

  Graph g;
  IterJobConf conf;
  if (algo == ChaosAlgo::kSssp) {
    g = make_sssp_graph("dblp", 0.001, 5);
    Sssp::setup(*cluster, g, 0, "in");
    conf = Sssp::imapreduce("in", "out", kIterations);
  } else {
    g = make_pagerank_graph("google", 0.0003, 21);
    PageRank::setup(*cluster, g, "in");
    conf = PageRank::imapreduce("in", "out", g.num_nodes(), kIterations);
  }
  conf.num_tasks = kTasks;
  conf.checkpoint_every = 2;

  // One worker death derived from the seed; every point fires within the
  // run (at_iteration <= 5 < kIterations, and the checkpoint-write point
  // reaches a checkpoint iteration by 6 at the latest).
  FaultSchedule schedule;
  schedule.add(chaos::derive_fault(seed, kWorkers, /*max_iteration=*/5,
                                   point));

  InvariantExpectations expect;
  expect.expected_recoveries = 1;
  expect.expected_parts = kTasks;
  auto result = run_chaos_job(*cluster, conf, schedule, ChannelFaultConfig{},
                              expect);

  EXPECT_TRUE(result.violations.empty())
      << "invariant violations (seed=" << seed
      << ", point=" << fault_point_name(point) << ", algo="
      << algo_name(algo) << "):\n  "
      << ::testing::PrintToString(result.violations);
  EXPECT_EQ(result.report.iterations_run, kIterations);
  chaos::expect_all_faults_consumed(*cluster);

  // The recovered run must produce exactly the failure-free result.
  if (algo == ChaosAlgo::kSssp) {
    expect_near_vectors(Sssp::reference(g, 0, kIterations),
                        Sssp::read_result_imr(*cluster, "out", g.num_nodes()),
                        1e-12);
  } else {
    expect_near_vectors(
        PageRank::reference(g, kIterations),
        PageRank::read_result_imr(*cluster, "out", g.num_nodes()), 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(
    SeedsByPointsByAlgos, ChaosSweep,
    ::testing::Combine(
        ::testing::Values(uint64_t{1}, uint64_t{2}, uint64_t{3}, uint64_t{4},
                          uint64_t{5}),
        ::testing::Values(FaultPoint::kIterationBoundary, FaultPoint::kMidMap,
                          FaultPoint::kMidShuffle,
                          FaultPoint::kCheckpointWrite,
                          FaultPoint::kStatePush),
        ::testing::Values(ChaosAlgo::kSssp, ChaosAlgo::kPageRank)),
    [](const ::testing::TestParamInfo<SweepParam>& info) {
      return std::string("seed") + std::to_string(std::get<0>(info.param)) +
             "_" + fault_point_name(std::get<1>(info.param)) + "_" +
             algo_name(std::get<2>(info.param));
    });

// ---------------------------------------------------------------------------
// Targeted regressions
// ---------------------------------------------------------------------------

// §3.4.1 rollback ordering: a worker that dies DURING a checkpoint write
// leaves a torn part file behind, and recovery must restore the previous
// complete checkpoint — never the torn one. The write-then-report ordering
// guarantees it: the master never collected all of iteration 6's reports, so
// last_ckpt stays at 3.
TEST(ChaosRegression, TornCheckpointRecoversFromPreviousComplete) {
  auto cluster = testutil::free_cluster(4, 4, 4);
  Graph g = make_sssp_graph("dblp", 0.002, 5);
  Sssp::setup(*cluster, g, 0, "in");

  IterJobConf conf = Sssp::imapreduce("in", "out", 8);
  conf.checkpoint_every = 3;  // checkpoints at 3 and 6

  FaultSchedule schedule;
  schedule.add(/*worker=*/1, FaultPoint::kCheckpointWrite,
               /*at_iteration=*/4);  // trips at the k=6 checkpoint

  InvariantExpectations expect;
  expect.expected_recoveries = 1;
  auto result = run_chaos_job(*cluster, conf, schedule, ChannelFaultConfig{},
                              expect);

  EXPECT_TRUE(result.violations.empty())
      << ::testing::PrintToString(result.violations);
  EXPECT_EQ(cluster->metrics().count("imr_torn_checkpoints"), 1);
  // The one recovery rolled back to checkpoint 3, not the torn 6.
  ASSERT_EQ(result.report.rollback_iterations, std::vector<int>{3});
  EXPECT_EQ(result.report.iterations_run, 8);
  chaos::expect_all_faults_consumed(*cluster);

  // Recovering from the torn checkpoint would lose half of part 1's nodes;
  // exact agreement with the reference proves it was never read.
  expect_near_vectors(Sssp::reference(g, 0, 8),
                      Sssp::read_result_imr(*cluster, "out", g.num_nodes()),
                      1e-12);
}

// Cascading failure: the worker that receives the recovered tasks dies while
// restoring them (§3.4.2's failure-during-recovery case). With one pair per
// worker the respawn target is deterministic: pairs from worker 1 land on
// worker 0 (lowest-id least-loaded), whose scheduled kMigration fault then
// kills it, pushing everything to worker 2.
TEST(ChaosRegression, CascadingFailureDuringRecovery) {
  auto cluster = testutil::free_cluster(3, 4, 4);
  Graph g = make_sssp_graph("dblp", 0.002, 7);
  Sssp::setup(*cluster, g, 0, "in");

  IterJobConf conf = Sssp::imapreduce("in", "out", 8);
  conf.num_tasks = 3;
  conf.checkpoint_every = 2;

  FaultSchedule schedule;
  schedule.add(/*worker=*/1, FaultPoint::kIterationBoundary,
               /*at_iteration=*/3);
  schedule.add(/*worker=*/0, FaultPoint::kMigration, /*at_iteration=*/1);

  InvariantExpectations expect;
  expect.expected_recoveries = 2;
  expect.expected_parts = 3;
  auto result = run_chaos_job(*cluster, conf, schedule, ChannelFaultConfig{},
                              expect);

  EXPECT_TRUE(result.violations.empty())
      << ::testing::PrintToString(result.violations);
  // Both recoveries restored checkpoint 2: the cascade struck before any
  // later iteration could be decided.
  ASSERT_EQ(result.report.rollback_iterations, (std::vector<int>{2, 2}));
  EXPECT_FALSE(cluster->worker_alive(0));
  EXPECT_FALSE(cluster->worker_alive(1));
  EXPECT_TRUE(cluster->worker_alive(2));
  EXPECT_EQ(result.report.iterations_run, 8);
  chaos::expect_all_faults_consumed(*cluster);

  expect_near_vectors(Sssp::reference(g, 0, 8),
                      Sssp::read_result_imr(*cluster, "out", g.num_nodes()),
                      1e-12);
}

// A failure that strikes AFTER iterations beyond the last checkpoint were
// decided: the rollback must truncate those per-iteration stats before the
// re-run appends its own, leaving one strictly consecutive 1..N sequence.
// (Without truncation the report reads 1,2,3,4,4,5,... — a duplicated entry
// for every re-run iteration.)
TEST(ChaosRegression, IterationStatsStayConsecutiveAfterRollback) {
  auto cluster = testutil::free_cluster(4, 4, 4);
  Graph g = make_sssp_graph("dblp", 0.002, 15);
  Sssp::setup(*cluster, g, 0, "in");

  IterJobConf conf = Sssp::imapreduce("in", "out", 8);
  conf.checkpoint_every = 3;  // checkpoints at 3 and 6

  FaultSchedule schedule;
  // Dies entering iteration 5: iteration 4 is already decided and recorded,
  // but the restored checkpoint is at most 3 — every entry above it must be
  // dropped and re-earned. (The exact restore point is timing-dependent:
  // checkpoints are written in parallel with the iteration, and a slow run
  // — TSan — can fail before checkpoint 3 completes and restore 0 instead.
  // Either way entries above the restore point exist and must go.)
  schedule.add(/*worker=*/1, FaultPoint::kMidMap, /*at_iteration=*/5);

  InvariantExpectations expect;
  expect.expected_recoveries = 1;
  auto result = run_chaos_job(*cluster, conf, schedule, ChannelFaultConfig{},
                              expect);

  EXPECT_TRUE(result.violations.empty())
      << ::testing::PrintToString(result.violations);
  ASSERT_EQ(result.report.rollback_iterations.size(), 1u);
  EXPECT_LE(result.report.rollback_iterations[0], 3);
  ASSERT_EQ(result.report.iterations.size(), 8u);
  for (std::size_t n = 0; n < result.report.iterations.size(); ++n) {
    EXPECT_EQ(result.report.iterations[n].iteration, static_cast<int>(n) + 1);
  }
  chaos::expect_all_faults_consumed(*cluster);
  expect_near_vectors(Sssp::reference(g, 0, 8),
                      Sssp::read_result_imr(*cluster, "out", g.num_nodes()),
                      1e-12);
}

// Two independent worker deaths at different injection points.
TEST(ChaosRegression, TwoIndependentFailuresAtDifferentPoints) {
  auto cluster = testutil::free_cluster(4, 4, 4);
  Graph g = make_sssp_graph("dblp", 0.002, 9);
  Sssp::setup(*cluster, g, 0, "in");

  IterJobConf conf = Sssp::imapreduce("in", "out", 8);
  conf.checkpoint_every = 2;

  FaultSchedule schedule;
  schedule.add(/*worker=*/1, FaultPoint::kMidMap, /*at_iteration=*/2);
  schedule.add(/*worker=*/2, FaultPoint::kStatePush, /*at_iteration=*/5);

  InvariantExpectations expect;
  expect.expected_recoveries = 2;
  auto result = run_chaos_job(*cluster, conf, schedule, ChannelFaultConfig{},
                              expect);

  EXPECT_TRUE(result.violations.empty())
      << ::testing::PrintToString(result.violations);
  EXPECT_EQ(result.report.iterations_run, 8);
  chaos::expect_all_faults_consumed(*cluster);
  expect_near_vectors(Sssp::reference(g, 0, 8),
                      Sssp::read_result_imr(*cluster, "out", g.num_nodes()),
                      1e-12);
}

// A scheduled fault is consumed exactly once: a second job sharing the
// cluster (with the dead worker revived) must run failure-free even though
// it re-probes every injection point with the same worker/iteration pattern.
TEST(ChaosRegression, ConsumedFaultCannotLeakIntoNextJob) {
  auto cluster = testutil::free_cluster(4, 4, 4);
  Graph g = make_sssp_graph("dblp", 0.002, 5);
  Sssp::setup(*cluster, g, 0, "in");

  IterJobConf conf = Sssp::imapreduce("in", "out", 6);
  conf.checkpoint_every = 2;

  FaultSchedule schedule;
  schedule.add(/*worker=*/1, FaultPoint::kIterationBoundary,
               /*at_iteration=*/3);
  InvariantExpectations expect;
  expect.expected_recoveries = 1;
  auto first = run_chaos_job(*cluster, conf, schedule, ChannelFaultConfig{},
                             expect);
  EXPECT_TRUE(first.violations.empty())
      << ::testing::PrintToString(first.violations);
  EXPECT_EQ(cluster->consumed_fault_count(), 1);
  chaos::expect_all_faults_consumed(*cluster);

  // Same cluster, same worker layout, no new schedule: nothing may fire.
  cluster->revive_worker(1);
  conf.output_path = "out2";
  IterativeEngine engine(*cluster);
  RunReport second = engine.run(conf);
  EXPECT_EQ(second.iterations_run, 6);
  EXPECT_TRUE(second.rollback_iterations.empty());
  EXPECT_EQ(cluster->metrics().count("imr_recoveries"), 1);  // job 1 only
  EXPECT_EQ(cluster->consumed_fault_count(), 1);
  expect_near_vectors(Sssp::reference(g, 0, 6),
                      Sssp::read_result_imr(*cluster, "out2", g.num_nodes()),
                      1e-12);
}

// Transient channel faults: heavy seeded drops with retry/backoff lose no
// data — the ledger reconciles and the result is exact.
TEST(ChaosChannel, HeavyDropsLoseNothing) {
  auto cluster = testutil::costed_cluster(4, 4, 4);
  Graph g = make_sssp_graph("dblp", 0.002, 11);
  Sssp::setup(*cluster, g, 0, "in");

  IterJobConf conf = Sssp::imapreduce("in", "out", 6);
  conf.buffer_records = 8;  // many small batches -> many drop opportunities

  ChannelFaultConfig channel;
  channel.drop_rate = 0.3;
  channel.seed = 77;
  auto result = run_chaos_job(*cluster, conf, FaultSchedule{}, channel);

  EXPECT_TRUE(result.violations.empty())
      << ::testing::PrintToString(result.violations);
  ChannelStats stats = cluster->fabric().channel_stats();
  EXPECT_GT(stats.dropped, 0);
  EXPECT_EQ(stats.attempts, stats.delivered + stats.dropped + stats.rejected);
  EXPECT_GT(cluster->metrics().count("net_retries"), 0);
  EXPECT_EQ(result.report.iterations_run, 6);
  expect_near_vectors(Sssp::reference(g, 0, 6),
                      Sssp::read_result_imr(*cluster, "out", g.num_nodes()),
                      1e-12);
}

// Worker death and channel faults together: recovery must work over a lossy
// fabric too.
TEST(ChaosChannel, WorkerDeathUnderChannelFaults) {
  auto cluster = testutil::free_cluster(4, 4, 4);
  Graph g = make_sssp_graph("dblp", 0.002, 13);
  Sssp::setup(*cluster, g, 0, "in");

  IterJobConf conf = Sssp::imapreduce("in", "out", 7);
  conf.checkpoint_every = 2;
  conf.buffer_records = 16;

  FaultSchedule schedule;
  schedule.add(/*worker=*/2, FaultPoint::kMidShuffle, /*at_iteration=*/4);
  ChannelFaultConfig channel;
  channel.drop_rate = 0.15;
  channel.seed = 99;

  InvariantExpectations expect;
  expect.expected_recoveries = 1;
  auto result = run_chaos_job(*cluster, conf, schedule, channel, expect);

  EXPECT_TRUE(result.violations.empty())
      << ::testing::PrintToString(result.violations);
  EXPECT_GT(cluster->fabric().channel_stats().dropped, 0);
  EXPECT_EQ(result.report.iterations_run, 7);
  chaos::expect_all_faults_consumed(*cluster);
  expect_near_vectors(Sssp::reference(g, 0, 7),
                      Sssp::read_result_imr(*cluster, "out", g.num_nodes()),
                      1e-12);
}

}  // namespace
}  // namespace imr
