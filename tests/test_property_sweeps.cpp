// Randomized property sweeps: for a matrix of (seed, workers, tasks, mode),
// both engines must agree with the sequential references on every algorithm
// family. These are the broad invariants the whole reproduction rests on.
#include <gtest/gtest.h>

#include <algorithm>

#include "algorithms/jacobi.h"
#include "algorithms/kmeans.h"
#include "algorithms/matpower.h"
#include "algorithms/pagerank.h"
#include "algorithms/sssp.h"
#include "graph/generator.h"
#include "imapreduce/engine.h"
#include "mapreduce/iterative_driver.h"
#include "tests/chaos_harness.h"
#include "tests/test_util.h"

namespace imr {
namespace {

using testutil::expect_near_vectors;

struct SweepCase {
  uint64_t seed;
  int workers;
  int tasks;
  bool async;
};

class RandomGraphSweep : public ::testing::TestWithParam<SweepCase> {};

TEST_P(RandomGraphSweep, SsspExactAcrossEngines) {
  const SweepCase c = GetParam();
  auto cluster = testutil::free_cluster(c.workers, 4, 4);
  LogNormalGraphSpec spec;
  spec.num_nodes = 250;
  spec.seed = c.seed;
  Graph g = generate_lognormal_graph(spec);
  uint32_t source = static_cast<uint32_t>(c.seed % g.num_nodes());
  Sssp::setup(*cluster, g, source, "sssp");

  IterJobConf conf = Sssp::imapreduce("sssp", "out", 5);
  conf.num_tasks = c.tasks;
  conf.async_maps = c.async;
  IterativeEngine engine(*cluster);
  engine.run(conf);

  auto expected = Sssp::reference(g, source, 5);
  expect_near_vectors(expected,
                      Sssp::read_result_imr(*cluster, "out", g.num_nodes()),
                      0.0);

  IterativeDriver driver(*cluster);
  driver.run(Sssp::baseline("sssp", "work", 5));
  expect_near_vectors(
      expected,
      Sssp::read_result_mr(*cluster, driver.final_output(), g.num_nodes()),
      0.0);
}

TEST_P(RandomGraphSweep, PageRankTightAcrossEngines) {
  const SweepCase c = GetParam();
  auto cluster = testutil::free_cluster(c.workers, 4, 4);
  LogNormalGraphSpec spec;
  spec.num_nodes = 250;
  spec.weighted = false;
  spec.degree_mu = -0.5;
  spec.degree_sigma = 2.0;
  spec.seed = c.seed;
  Graph g = generate_lognormal_graph(spec);
  PageRank::setup(*cluster, g, "pr");

  IterJobConf conf = PageRank::imapreduce("pr", "out", g.num_nodes(), 6);
  conf.num_tasks = c.tasks;
  conf.async_maps = c.async;
  IterativeEngine engine(*cluster);
  engine.run(conf);

  auto expected = PageRank::reference(g, 6);
  expect_near_vectors(
      expected, PageRank::read_result_imr(*cluster, "out", g.num_nodes()),
      1e-10);
}

// Every sweep case again, now with one seeded worker death injected at a
// seed-chosen point and iteration — recovery must reproduce the exact
// failure-free result on every configuration.
TEST_P(RandomGraphSweep, SsspExactUnderInjectedWorkerFailure) {
  const SweepCase c = GetParam();
  auto cluster = testutil::free_cluster(c.workers, 4, 4);
  LogNormalGraphSpec spec;
  spec.num_nodes = 250;
  spec.seed = c.seed;
  Graph g = generate_lognormal_graph(spec);
  uint32_t source = static_cast<uint32_t>(c.seed % g.num_nodes());
  Sssp::setup(*cluster, g, source, "sssp");

  IterJobConf conf = Sssp::imapreduce("sssp", "out", 5);
  conf.num_tasks = c.tasks;
  conf.async_maps = c.async;
  conf.checkpoint_every = 2;

  // Only workers 0..min(tasks, workers)-1 are guaranteed to host a pair
  // (pair i lives on worker i % workers), so pick the victim among those.
  const FaultPoint points[] = {
      FaultPoint::kIterationBoundary, FaultPoint::kMidMap,
      FaultPoint::kMidShuffle, FaultPoint::kCheckpointWrite,
      FaultPoint::kStatePush};
  FaultSchedule schedule;
  schedule.add(static_cast<int>(c.seed) % std::min(c.tasks, c.workers),
               points[c.seed % 5], /*at_iteration=*/1 + (c.seed % 4));

  InvariantExpectations expect;
  expect.expected_recoveries = 1;
  auto result =
      chaos::run_chaos_job(*cluster, conf, schedule, ChannelFaultConfig{},
                           expect);
  EXPECT_TRUE(result.violations.empty())
      << ::testing::PrintToString(result.violations);
  chaos::expect_all_faults_consumed(*cluster);

  expect_near_vectors(Sssp::reference(g, source, 5),
                      Sssp::read_result_imr(*cluster, "out", g.num_nodes()),
                      0.0);
}

// One2all (K-means, Jacobi) and multi-phase (matrix power) jobs cannot use
// checkpoint rollback — the engine contract restricts worker-death recovery
// to single-phase one2one jobs (IterJobConf::validate) — so their injected
// failure is a seeded transient channel fault: every send may be dropped and
// retried, and the run must still be lossless and exact.
TEST_P(RandomGraphSweep, KMeansExactUnderChannelFaults) {
  const SweepCase c = GetParam();
  auto cluster = testutil::free_cluster(c.workers, 4, 4);
  KMeansDataSpec dspec;
  dspec.num_points = 500;
  dspec.dim = 4;
  dspec.seed = c.seed;
  auto points = KMeans::generate_points(dspec);
  KMeans::setup(*cluster, points, 5, "km");

  IterJobConf conf = KMeans::imapreduce("km", "out", 3);
  conf.num_tasks = c.tasks;

  ChannelFaultConfig channel;
  channel.drop_rate = 0.15;
  channel.seed = c.seed;
  auto result = chaos::run_chaos_job(*cluster, conf, FaultSchedule{}, channel);
  EXPECT_TRUE(result.violations.empty())
      << ::testing::PrintToString(result.violations);
  EXPECT_GT(cluster->fabric().channel_stats().dropped, 0);

  auto init = KMeans::read_result(*cluster, "km/centroids0", false);
  auto expected = KMeans::reference(points, init, 3);
  auto actual = KMeans::read_result(*cluster, "out", false);
  ASSERT_EQ(expected.size(), actual.size());
  for (const auto& [cid, centroid] : expected) {
    ASSERT_TRUE(actual.count(cid));
    for (std::size_t d = 0; d < centroid.size(); ++d) {
      EXPECT_NEAR(centroid[d], actual[cid][d], 1e-9);
    }
  }
}

TEST_P(RandomGraphSweep, JacobiExactUnderChannelFaults) {
  const SweepCase c = GetParam();
  auto cluster = testutil::free_cluster(c.workers, 4, 4);
  JacobiSystem sys = Jacobi::generate(150, 0.05, c.seed);
  Jacobi::setup(*cluster, sys, "jac");

  IterJobConf conf = Jacobi::imapreduce("jac", "out", 6);
  conf.num_tasks = c.tasks;

  ChannelFaultConfig channel;
  channel.drop_rate = 0.15;
  channel.seed = c.seed + 1;
  auto result = chaos::run_chaos_job(*cluster, conf, FaultSchedule{}, channel);
  EXPECT_TRUE(result.violations.empty())
      << ::testing::PrintToString(result.violations);
  EXPECT_GT(cluster->fabric().channel_stats().dropped, 0);

  expect_near_vectors(Jacobi::reference(sys, 6),
                      Jacobi::read_result(*cluster, "out", sys.n), 1e-10);
}

TEST_P(RandomGraphSweep, MatPowerExactUnderChannelFaults) {
  const SweepCase c = GetParam();
  auto cluster = testutil::free_cluster(c.workers, 4, 4);
  Matrix m = MatPower::generate(20, c.seed);
  MatPower::setup(*cluster, m, "mp");

  IterJobConf conf = MatPower::imapreduce("mp", "out", 3);
  conf.num_tasks = c.tasks;

  ChannelFaultConfig channel;
  channel.drop_rate = 0.15;
  channel.seed = c.seed + 2;
  auto result = chaos::run_chaos_job(*cluster, conf, FaultSchedule{}, channel);
  EXPECT_TRUE(result.violations.empty())
      << ::testing::PrintToString(result.violations);
  EXPECT_GT(cluster->fabric().channel_stats().dropped, 0);

  Matrix expected = MatPower::reference(m, 3);
  Matrix actual = MatPower::read_result(*cluster, "out", m.n);
  ASSERT_EQ(expected.n, actual.n);
  for (uint32_t i = 0; i < m.n; ++i) {
    for (uint32_t j = 0; j < m.n; ++j) {
      EXPECT_NEAR(expected.at(i, j), actual.at(i, j), 1e-12)
          << "entry (" << i << ", " << j << ")";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Random, RandomGraphSweep,
    ::testing::Values(SweepCase{101, 2, 2, true}, SweepCase{202, 3, 4, true},
                      SweepCase{303, 4, 7, false}, SweepCase{404, 5, 5, true},
                      SweepCase{505, 2, 6, false}, SweepCase{606, 6, 6, true},
                      SweepCase{707, 4, 1, true}, SweepCase{808, 3, 3, false}),
    [](const ::testing::TestParamInfo<SweepCase>& info) {
      const SweepCase& c = info.param;
      return "s" + std::to_string(c.seed) + "_w" + std::to_string(c.workers) +
             "_t" + std::to_string(c.tasks) + (c.async ? "_async" : "_sync");
    });

// Traffic conservation across random configurations: every byte recorded as
// remote is also recorded in the total, totals are monotone in iterations.
TEST(PropertyTraffic, RemoteNeverExceedsTotalAndGrowsWithIterations) {
  auto run_iters = [](int iters) {
    auto cluster = testutil::costed_cluster(5, 2, 2);
    LogNormalGraphSpec spec;
    spec.num_nodes = 400;
    spec.seed = 999;
    Graph g = generate_lognormal_graph(spec);
    Sssp::setup(*cluster, g, 0, "sssp");
    cluster->metrics().reset();
    IterativeEngine engine(*cluster);
    engine.run(Sssp::imapreduce("sssp", "out", iters));
    auto& m = cluster->metrics();
    EXPECT_LE(m.total_remote_bytes(), m.total_bytes());
    for (int cat = 0; cat < kNumTrafficCategories; ++cat) {
      auto c = static_cast<TrafficCategory>(cat);
      EXPECT_GE(m.traffic_bytes(c), m.traffic_remote_bytes(c));
      EXPECT_GE(m.traffic_bytes(c), 0);
    }
    return m.total_bytes();
  };
  int64_t four = run_iters(4);
  int64_t eight = run_iters(8);
  EXPECT_GT(eight, four);
}

// PageRank's per-iteration shuffle volume is constant (every node emits to
// every out-neighbor every iteration), so total shuffle bytes are linear in
// the iteration count. (SSSP would NOT satisfy this: its volume grows as the
// wavefront expands.)
TEST(PropertyTraffic, PageRankShuffleLinearInIterations) {
  auto shuffle_bytes = [](int iters) {
    auto cluster = testutil::costed_cluster();
    LogNormalGraphSpec spec;
    spec.num_nodes = 300;
    spec.weighted = false;
    spec.seed = 1234;
    Graph g = generate_lognormal_graph(spec);
    PageRank::setup(*cluster, g, "pr");
    cluster->metrics().reset();
    IterativeEngine engine(*cluster);
    IterJobConf conf = PageRank::imapreduce("pr", "out", g.num_nodes(), iters);
    // Sync maps: async runs do speculative (master-cut) work on iteration
    // N+1, which makes byte totals timing-dependent.
    conf.async_maps = false;
    engine.run(conf);
    return cluster->metrics().traffic_bytes(TrafficCategory::kShuffle);
  };
  int64_t three = shuffle_bytes(3);
  int64_t six = shuffle_bytes(6);
  EXPECT_NEAR(static_cast<double>(six), 2.0 * static_cast<double>(three),
              0.02 * static_cast<double>(six));
}

}  // namespace
}  // namespace imr
