// Randomized property sweeps: for a matrix of (seed, workers, tasks, mode),
// both engines must agree with the sequential references on every algorithm
// family. These are the broad invariants the whole reproduction rests on.
#include <gtest/gtest.h>

#include "algorithms/pagerank.h"
#include "algorithms/sssp.h"
#include "graph/generator.h"
#include "imapreduce/engine.h"
#include "mapreduce/iterative_driver.h"
#include "tests/test_util.h"

namespace imr {
namespace {

using testutil::expect_near_vectors;

struct SweepCase {
  uint64_t seed;
  int workers;
  int tasks;
  bool async;
};

class RandomGraphSweep : public ::testing::TestWithParam<SweepCase> {};

TEST_P(RandomGraphSweep, SsspExactAcrossEngines) {
  const SweepCase c = GetParam();
  auto cluster = testutil::free_cluster(c.workers, 4, 4);
  LogNormalGraphSpec spec;
  spec.num_nodes = 250;
  spec.seed = c.seed;
  Graph g = generate_lognormal_graph(spec);
  uint32_t source = static_cast<uint32_t>(c.seed % g.num_nodes());
  Sssp::setup(*cluster, g, source, "sssp");

  IterJobConf conf = Sssp::imapreduce("sssp", "out", 5);
  conf.num_tasks = c.tasks;
  conf.async_maps = c.async;
  IterativeEngine engine(*cluster);
  engine.run(conf);

  auto expected = Sssp::reference(g, source, 5);
  expect_near_vectors(expected,
                      Sssp::read_result_imr(*cluster, "out", g.num_nodes()),
                      0.0);

  IterativeDriver driver(*cluster);
  driver.run(Sssp::baseline("sssp", "work", 5));
  expect_near_vectors(
      expected,
      Sssp::read_result_mr(*cluster, driver.final_output(), g.num_nodes()),
      0.0);
}

TEST_P(RandomGraphSweep, PageRankTightAcrossEngines) {
  const SweepCase c = GetParam();
  auto cluster = testutil::free_cluster(c.workers, 4, 4);
  LogNormalGraphSpec spec;
  spec.num_nodes = 250;
  spec.weighted = false;
  spec.degree_mu = -0.5;
  spec.degree_sigma = 2.0;
  spec.seed = c.seed;
  Graph g = generate_lognormal_graph(spec);
  PageRank::setup(*cluster, g, "pr");

  IterJobConf conf = PageRank::imapreduce("pr", "out", g.num_nodes(), 6);
  conf.num_tasks = c.tasks;
  conf.async_maps = c.async;
  IterativeEngine engine(*cluster);
  engine.run(conf);

  auto expected = PageRank::reference(g, 6);
  expect_near_vectors(
      expected, PageRank::read_result_imr(*cluster, "out", g.num_nodes()),
      1e-10);
}

INSTANTIATE_TEST_SUITE_P(
    Random, RandomGraphSweep,
    ::testing::Values(SweepCase{101, 2, 2, true}, SweepCase{202, 3, 4, true},
                      SweepCase{303, 4, 7, false}, SweepCase{404, 5, 5, true},
                      SweepCase{505, 2, 6, false}, SweepCase{606, 6, 6, true},
                      SweepCase{707, 4, 1, true}, SweepCase{808, 3, 3, false}),
    [](const ::testing::TestParamInfo<SweepCase>& info) {
      const SweepCase& c = info.param;
      return "s" + std::to_string(c.seed) + "_w" + std::to_string(c.workers) +
             "_t" + std::to_string(c.tasks) + (c.async ? "_async" : "_sync");
    });

// Traffic conservation across random configurations: every byte recorded as
// remote is also recorded in the total, totals are monotone in iterations.
TEST(PropertyTraffic, RemoteNeverExceedsTotalAndGrowsWithIterations) {
  auto run_iters = [](int iters) {
    auto cluster = testutil::costed_cluster(5, 2, 2);
    LogNormalGraphSpec spec;
    spec.num_nodes = 400;
    spec.seed = 999;
    Graph g = generate_lognormal_graph(spec);
    Sssp::setup(*cluster, g, 0, "sssp");
    cluster->metrics().reset();
    IterativeEngine engine(*cluster);
    engine.run(Sssp::imapreduce("sssp", "out", iters));
    auto& m = cluster->metrics();
    EXPECT_LE(m.total_remote_bytes(), m.total_bytes());
    for (int cat = 0; cat < kNumTrafficCategories; ++cat) {
      auto c = static_cast<TrafficCategory>(cat);
      EXPECT_GE(m.traffic_bytes(c), m.traffic_remote_bytes(c));
      EXPECT_GE(m.traffic_bytes(c), 0);
    }
    return m.total_bytes();
  };
  int64_t four = run_iters(4);
  int64_t eight = run_iters(8);
  EXPECT_GT(eight, four);
}

// PageRank's per-iteration shuffle volume is constant (every node emits to
// every out-neighbor every iteration), so total shuffle bytes are linear in
// the iteration count. (SSSP would NOT satisfy this: its volume grows as the
// wavefront expands.)
TEST(PropertyTraffic, PageRankShuffleLinearInIterations) {
  auto shuffle_bytes = [](int iters) {
    auto cluster = testutil::costed_cluster();
    LogNormalGraphSpec spec;
    spec.num_nodes = 300;
    spec.weighted = false;
    spec.seed = 1234;
    Graph g = generate_lognormal_graph(spec);
    PageRank::setup(*cluster, g, "pr");
    cluster->metrics().reset();
    IterativeEngine engine(*cluster);
    IterJobConf conf = PageRank::imapreduce("pr", "out", g.num_nodes(), iters);
    // Sync maps: async runs do speculative (master-cut) work on iteration
    // N+1, which makes byte totals timing-dependent.
    conf.async_maps = false;
    engine.run(conf);
    return cluster->metrics().traffic_bytes(TrafficCategory::kShuffle);
  };
  int64_t three = shuffle_bytes(3);
  int64_t six = shuffle_bytes(6);
  EXPECT_NEAR(static_cast<double>(six), 2.0 * static_cast<double>(three),
              0.02 * static_cast<double>(six));
}

}  // namespace
}  // namespace imr
