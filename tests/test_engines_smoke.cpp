// End-to-end smoke tests: SSSP through both engines on a small graph,
// compared against the sequential reference.
#include <gtest/gtest.h>

#include "algorithms/sssp.h"
#include "graph/generator.h"
#include "imapreduce/engine.h"
#include "mapreduce/iterative_driver.h"
#include "tests/test_util.h"

namespace imr {
namespace {

using testutil::expect_near_vectors;

Graph small_graph() {
  LogNormalGraphSpec spec;
  spec.num_nodes = 200;
  spec.seed = 3;
  return generate_lognormal_graph(spec);
}

TEST(EnginesSmoke, MapReduceBaselineMatchesReference) {
  auto cluster = testutil::free_cluster();
  Graph g = small_graph();
  Sssp::setup(*cluster, g, 0, "sssp");

  IterativeSpec spec = Sssp::baseline("sssp", "work", /*max_iterations=*/5);
  IterativeDriver driver(*cluster);
  RunReport report = driver.run(spec);
  EXPECT_EQ(report.iterations_run, 5);

  auto result = Sssp::read_result_mr(*cluster, driver.final_output(),
                                     g.num_nodes());
  auto expected = Sssp::reference(g, 0, 5);
  expect_near_vectors(expected, result, 1e-12);
}

TEST(EnginesSmoke, IMapReduceMatchesReference) {
  auto cluster = testutil::free_cluster();
  Graph g = small_graph();
  Sssp::setup(*cluster, g, 0, "sssp");

  IterJobConf conf = Sssp::imapreduce("sssp", "out", /*max_iterations=*/5);
  IterativeEngine engine(*cluster);
  RunReport report = engine.run(conf);
  EXPECT_EQ(report.iterations_run, 5);

  auto result = Sssp::read_result_imr(*cluster, "out", g.num_nodes());
  auto expected = Sssp::reference(g, 0, 5);
  expect_near_vectors(expected, result, 1e-12);
}

TEST(EnginesSmoke, IMapReduceSyncMatchesReference) {
  auto cluster = testutil::free_cluster();
  Graph g = small_graph();
  Sssp::setup(*cluster, g, 0, "sssp");

  IterJobConf conf = Sssp::imapreduce("sssp", "out", /*max_iterations=*/5);
  conf.async_maps = false;
  IterativeEngine engine(*cluster);
  RunReport report = engine.run(conf);
  EXPECT_EQ(report.iterations_run, 5);

  auto result = Sssp::read_result_imr(*cluster, "out", g.num_nodes());
  auto expected = Sssp::reference(g, 0, 5);
  expect_near_vectors(expected, result, 1e-12);
}

TEST(EnginesSmoke, CostedClusterTimesAreOrdered) {
  auto cluster = testutil::costed_cluster();
  Graph g = small_graph();
  Sssp::setup(*cluster, g, 0, "sssp");
  cluster->metrics().reset();

  IterativeDriver driver(*cluster);
  RunReport mr = driver.run(Sssp::baseline("sssp", "work", 5));

  cluster->metrics().reset();
  IterativeEngine engine(*cluster);
  RunReport imr = engine.run(Sssp::imapreduce("sssp", "out", 5));

  EXPECT_GT(mr.total_wall_ms, 0);
  EXPECT_GT(imr.total_wall_ms, 0);
  // iMapReduce must beat the chain-of-jobs baseline.
  EXPECT_LT(imr.total_wall_ms, mr.total_wall_ms);
  // Per-iteration curves are monotone.
  for (std::size_t i = 1; i < imr.iterations.size(); ++i) {
    EXPECT_GT(imr.iterations[i].wall_ms_end, imr.iterations[i - 1].wall_ms_end);
  }
}

}  // namespace
}  // namespace imr
