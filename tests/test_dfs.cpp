// MiniDfs tests: namespace, blocks, replicas, locality cost, splits,
// partitioned reads, and traffic accounting.
#include <gtest/gtest.h>

#include "common/codec.h"

#include "common/hash.h"
#include "tests/test_util.h"

namespace imr {
namespace {

KVVec make_records(int n, std::size_t value_size = 16) {
  KVVec recs;
  for (int i = 0; i < n; ++i) {
    Bytes key;
    encode_u32(static_cast<uint32_t>(i), key);
    recs.emplace_back(std::move(key), Bytes(value_size, 'v'));
  }
  return recs;
}

TEST(MiniDfs, WriteReadRoundTrip) {
  auto cluster = testutil::free_cluster();
  KVVec recs = make_records(100);
  cluster->dfs().write_file("f", recs, 0, nullptr);
  EXPECT_TRUE(cluster->dfs().exists("f"));
  EXPECT_EQ(cluster->dfs().read_all("f", 0, nullptr), recs);
  EXPECT_EQ(cluster->dfs().file_records("f"), 100u);
}

TEST(MiniDfs, MissingFileThrows) {
  auto cluster = testutil::free_cluster();
  EXPECT_THROW(cluster->dfs().read_all("nope", 0, nullptr), DfsError);
  EXPECT_THROW(cluster->dfs().file_bytes("nope"), DfsError);
}

TEST(MiniDfs, RemoveAndList) {
  auto cluster = testutil::free_cluster();
  cluster->dfs().write_file("dir/a", make_records(1), 0, nullptr);
  cluster->dfs().write_file("dir/b", make_records(1), 0, nullptr);
  cluster->dfs().write_file("other", make_records(1), 0, nullptr);
  EXPECT_EQ(cluster->dfs().list("dir/"),
            (std::vector<std::string>{"dir/a", "dir/b"}));
  cluster->dfs().remove("dir/a");
  EXPECT_FALSE(cluster->dfs().exists("dir/a"));
  EXPECT_EQ(cluster->dfs().list("dir/").size(), 1u);
}

TEST(MiniDfs, OverwriteReplaces) {
  auto cluster = testutil::free_cluster();
  cluster->dfs().write_file("f", make_records(10), 0, nullptr);
  cluster->dfs().write_file("f", make_records(3), 0, nullptr);
  EXPECT_EQ(cluster->dfs().file_records("f"), 3u);
}

TEST(MiniDfs, SplitsCoverFileDisjointly) {
  ClusterConfig cfg;
  cfg.num_workers = 4;
  cfg.cost = CostModel::free();
  cfg.cost.dfs_block_size = 512;  // force many blocks
  Cluster cluster(cfg);
  cluster.dfs().write_file("f", make_records(1000, 32), 0, nullptr);

  for (int want : {1, 2, 3, 7}) {
    auto splits = cluster.dfs().make_splits("f", want);
    ASSERT_GE(splits.size(), 1u);
    ASSERT_LE(static_cast<int>(splits.size()), want);
    std::size_t cursor = 0;
    std::size_t total = 0;
    for (const auto& s : splits) {
      EXPECT_EQ(s.begin, cursor);
      EXPECT_GT(s.end, s.begin);
      cursor = s.end;
      total += s.end - s.begin;
    }
    EXPECT_EQ(cursor, 1000u);
    EXPECT_EQ(total, 1000u);
  }
}

TEST(MiniDfs, ReadSplitReturnsExactRange) {
  ClusterConfig cfg;
  cfg.num_workers = 4;
  cfg.cost = CostModel::free();
  cfg.cost.dfs_block_size = 256;
  Cluster cluster(cfg);
  KVVec recs = make_records(500, 32);
  cluster.dfs().write_file("f", recs, 0, nullptr);
  auto splits = cluster.dfs().make_splits("f", 4);
  KVVec reassembled;
  for (const auto& s : splits) {
    KVVec part = cluster.dfs().read_split(s, 0, nullptr);
    reassembled.insert(reassembled.end(), part.begin(), part.end());
  }
  EXPECT_EQ(reassembled, recs);
}

TEST(MiniDfs, ReadPartitionMatchesHashPartitioner) {
  auto cluster = testutil::free_cluster();
  KVVec recs = make_records(1000);
  cluster->dfs().write_file("f", recs, 0, nullptr);
  std::size_t total = 0;
  for (uint32_t p = 0; p < 7; ++p) {
    KVVec part = cluster->dfs().read_partition("f", p, 7, 0, nullptr);
    for (const KV& kv : part) {
      EXPECT_EQ(partition_of(kv.key, 7), p);
    }
    total += part.size();
  }
  EXPECT_EQ(total, 1000u);
}

TEST(MiniDfs, LocalReadCheaperThanRemote) {
  ClusterConfig cfg;
  cfg.num_workers = 8;
  cfg.cost = CostModel::local_cluster();
  cfg.cost.dfs_replication = 1;  // exactly one replica: on the writer
  Cluster cluster(cfg);
  cluster.dfs().write_file("f", make_records(5000, 64), /*writer=*/2, nullptr);

  VClock local, remote;
  cluster.dfs().read_all("f", 2, &local);
  cluster.dfs().read_all("f", 3, &remote);
  EXPECT_LT(local.now_ns(), remote.now_ns());
}

TEST(MiniDfs, WriteChargesReplicationTraffic) {
  ClusterConfig cfg;
  cfg.num_workers = 4;
  cfg.cost = CostModel::local_cluster();  // replication = 3
  Cluster cluster(cfg);
  KVVec recs = make_records(100, 64);
  std::size_t bytes = wire_size(recs);
  cluster.dfs().write_file("f", std::move(recs), 0, nullptr);
  // 2 remote copies of every byte.
  EXPECT_EQ(cluster.metrics().traffic_remote_bytes(TrafficCategory::kDfsWrite),
            static_cast<int64_t>(2 * bytes));
}

TEST(MiniDfs, CheckpointCategoryTracked) {
  auto cluster = testutil::free_cluster();
  cluster->dfs().write_file("ckpt/1", make_records(10), 0, nullptr,
                            TrafficCategory::kCheckpoint);
  EXPECT_GT(cluster->metrics().traffic_bytes(TrafficCategory::kCheckpoint), 0);
  EXPECT_EQ(cluster->metrics().traffic_bytes(TrafficCategory::kDfsWrite), 0);
}

TEST(MiniDfs, EmptyFileReadable) {
  auto cluster = testutil::free_cluster();
  cluster->dfs().write_file("empty", {}, 0, nullptr);
  EXPECT_TRUE(cluster->dfs().read_all("empty", 0, nullptr).empty());
  auto splits = cluster->dfs().make_splits("empty", 3);
  EXPECT_EQ(splits.size(), 1u);
}

}  // namespace
}  // namespace imr
