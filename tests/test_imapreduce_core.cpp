// iMapReduce engine core tests: correctness parity with both the sequential
// references and the MapReduce baseline, across worker counts, task counts,
// async/sync modes, and buffer sizes (parameterized property sweeps).
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <stdexcept>

#include "algorithms/pagerank.h"
#include "algorithms/sssp.h"
#include "graph/generator.h"
#include "imapreduce/engine.h"
#include "mapreduce/iterative_driver.h"
#include "tests/test_util.h"

namespace imr {
namespace {

using testutil::expect_near_vectors;

struct ParitySetup {
  int workers;
  int num_tasks;
  bool async;
  int buffer_records;
};

class ImrParity : public ::testing::TestWithParam<ParitySetup> {};

TEST_P(ImrParity, SsspMatchesReferenceAndBaseline) {
  const ParitySetup p = GetParam();
  auto cluster = testutil::free_cluster(p.workers, 4, 4);
  LogNormalGraphSpec gspec;
  gspec.num_nodes = 300;
  gspec.seed = 11;
  Graph g = generate_lognormal_graph(gspec);
  Sssp::setup(*cluster, g, 0, "sssp");

  IterJobConf conf = Sssp::imapreduce("sssp", "out", 4);
  conf.num_tasks = p.num_tasks;
  conf.async_maps = p.async;
  conf.buffer_records = p.buffer_records;
  IterativeEngine engine(*cluster);
  RunReport report = engine.run(conf);
  EXPECT_EQ(report.iterations_run, 4);

  auto expected = Sssp::reference(g, 0, 4);
  expect_near_vectors(expected,
                      Sssp::read_result_imr(*cluster, "out", g.num_nodes()),
                      1e-12);
}

TEST_P(ImrParity, PageRankMatchesReference) {
  const ParitySetup p = GetParam();
  auto cluster = testutil::free_cluster(p.workers, 4, 4);
  Graph g = make_pagerank_graph("google", 0.0005, 21);
  PageRank::setup(*cluster, g, "pr");

  IterJobConf conf = PageRank::imapreduce("pr", "out", g.num_nodes(), 5);
  conf.num_tasks = p.num_tasks;
  conf.async_maps = p.async;
  conf.buffer_records = p.buffer_records;
  IterativeEngine engine(*cluster);
  RunReport report = engine.run(conf);
  EXPECT_EQ(report.iterations_run, 5);

  auto expected = PageRank::reference(g, 5);
  expect_near_vectors(
      expected, PageRank::read_result_imr(*cluster, "out", g.num_nodes()),
      1e-9);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, ImrParity,
    ::testing::Values(ParitySetup{1, 1, true, 4096},
                      ParitySetup{2, 2, true, 4096},
                      ParitySetup{4, 4, true, 4096},
                      ParitySetup{4, 8, true, 4096},
                      ParitySetup{3, 5, true, 4096},
                      ParitySetup{4, 4, false, 4096},
                      ParitySetup{4, 8, false, 4096},
                      ParitySetup{4, 4, true, 1},
                      ParitySetup{4, 4, true, 7},
                      ParitySetup{2, 4, false, 3}),
    [](const ::testing::TestParamInfo<ParitySetup>& info) {
      const ParitySetup& p = info.param;
      return "w" + std::to_string(p.workers) + "_t" +
             std::to_string(p.num_tasks) + (p.async ? "_async" : "_sync") +
             "_b" + std::to_string(p.buffer_records);
    });

TEST(ImrCore, MatchesMapReduceBaselineBitwise) {
  // SSSP min() is order-insensitive: baseline and iMapReduce agree exactly.
  auto cluster = testutil::free_cluster(4, 4, 4);
  Graph g = make_sssp_graph("dblp", 0.002, 5);
  Sssp::setup(*cluster, g, 0, "sssp");

  IterativeDriver driver(*cluster);
  driver.run(Sssp::baseline("sssp", "work", 6));
  auto mr = Sssp::read_result_mr(*cluster, driver.final_output(),
                                 g.num_nodes());

  IterativeEngine engine(*cluster);
  engine.run(Sssp::imapreduce("sssp", "out", 6));
  auto imr = Sssp::read_result_imr(*cluster, "out", g.num_nodes());
  EXPECT_EQ(mr, imr);
}

TEST(ImrCore, RepeatedRunsAreDeterministic) {
  auto ref = [] {
    auto cluster = testutil::free_cluster(4, 4, 4);
    Graph g = make_pagerank_graph("berkstan", 0.0005, 9);
    PageRank::setup(*cluster, g, "pr");
    IterativeEngine engine(*cluster);
    engine.run(PageRank::imapreduce("pr", "out", g.num_nodes(), 4));
    return PageRank::read_result_imr(*cluster, "out", g.num_nodes());
  };
  auto first = ref();
  for (int i = 0; i < 3; ++i) {
    auto again = ref();
    EXPECT_EQ(first, again) << "run " << i;  // bitwise identical
  }
}

TEST(ImrCore, ThresholdTerminationStopsEarly) {
  auto cluster = testutil::free_cluster();
  LogNormalGraphSpec gspec;
  gspec.num_nodes = 150;
  gspec.seed = 2;
  Graph g = generate_lognormal_graph(gspec);
  Sssp::setup(*cluster, g, 0, "sssp");

  // Count-changed distance < 0.5 means a fixpoint; the graph converges well
  // before 50 iterations.
  IterJobConf conf = Sssp::imapreduce("sssp", "out", 50, 0.5);
  IterativeEngine engine(*cluster);
  RunReport report = engine.run(conf);
  EXPECT_TRUE(report.converged);
  EXPECT_LT(report.iterations_run, 50);

  auto expected = Sssp::reference(g, 0, -1);
  expect_near_vectors(expected,
                      Sssp::read_result_imr(*cluster, "out", g.num_nodes()),
                      1e-12);
}

TEST(ImrCore, MaxIterTerminationReportsNotConverged) {
  auto cluster = testutil::free_cluster();
  Graph g = make_pagerank_graph("google", 0.0002, 3);
  PageRank::setup(*cluster, g, "pr");
  IterJobConf conf = PageRank::imapreduce("pr", "out", g.num_nodes(), 3);
  IterativeEngine engine(*cluster);
  RunReport report = engine.run(conf);
  EXPECT_EQ(report.iterations_run, 3);
  EXPECT_FALSE(report.converged);
}

TEST(ImrCore, DistancesDecreaseForPageRank) {
  auto cluster = testutil::free_cluster();
  Graph g = make_pagerank_graph("google", 0.0005, 4);
  PageRank::setup(*cluster, g, "pr");
  IterJobConf conf = PageRank::imapreduce("pr", "out", g.num_nodes(), 6);
  IterativeEngine engine(*cluster);
  RunReport report = engine.run(conf);
  ASSERT_EQ(report.iterations.size(), 6u);
  // Manhattan distance between consecutive rank vectors shrinks (power
  // iteration contraction); allow the first pair to be anything.
  for (std::size_t i = 2; i < report.iterations.size(); ++i) {
    EXPECT_LT(report.iterations[i].distance, report.iterations[i - 1].distance);
  }
}

TEST(ImrCore, StaticDataNeverShuffledOne2One) {
  auto cluster = testutil::costed_cluster();
  Graph g = make_sssp_graph("dblp", 0.002, 5);
  Sssp::setup(*cluster, g, 0, "sssp");
  cluster->metrics().reset();

  IterativeEngine engine(*cluster);
  engine.run(Sssp::imapreduce("sssp", "out", 5));

  // Shuffle carries only state-derived records: with ~5 edges/node and 8-byte
  // distances, shuffled bytes per iteration must stay well below the static
  // (adjacency) size per iteration that the baseline would move.
  int64_t shuffle = cluster->metrics().traffic_bytes(TrafficCategory::kShuffle);
  auto static_bytes =
      static_cast<int64_t>(cluster->dfs().file_bytes("sssp/static"));
  // The static file is read from DFS exactly once in total (5 iterations).
  int64_t dfs_read = cluster->metrics().traffic_bytes(TrafficCategory::kDfsRead);
  EXPECT_LT(dfs_read, 2 * static_bytes + 100000);
  EXPECT_GT(shuffle, 0);
}

TEST(ImrCore, RejectsInvalidConfigs) {
  auto cluster = testutil::free_cluster();
  IterativeEngine engine(*cluster);

  IterJobConf empty;
  EXPECT_THROW(engine.run(empty), ConfigError);

  Graph g = make_sssp_graph("dblp", 0.001, 5);
  Sssp::setup(*cluster, g, 0, "sssp");
  IterJobConf too_many = Sssp::imapreduce("sssp", "out", 2);
  too_many.num_tasks = 1000;
  EXPECT_THROW(engine.run(too_many), ConfigError);

  IterJobConf bad_balance = Sssp::imapreduce("sssp", "out", 2);
  bad_balance.load_balancing = true;  // requires checkpointing
  EXPECT_THROW(engine.run(bad_balance), ConfigError);
}

// A job whose user code throws must still tear everything down: no endpoint
// left registered on the fabric, no ckpt/ files left in the DFS. (The error
// used to be rethrown before teardown, leaking both.)
TEST(ImrCore, FailedJobLeaksNoEndpointsOrCheckpoints) {
  auto cluster = testutil::free_cluster();
  LogNormalGraphSpec gspec;
  gspec.num_nodes = 300;
  gspec.seed = 19;
  Graph g = generate_lognormal_graph(gspec);
  Sssp::setup(*cluster, g, 0, "sssp");

  IterJobConf conf = Sssp::imapreduce("sssp", "out", 10);
  conf.checkpoint_every = 1;
  conf.num_tasks = 4;
  // A pass-through mapper that dies partway into iteration 3 — late enough
  // that checkpoints exist when the job aborts.
  auto calls = std::make_shared<std::atomic<int64_t>>(0);
  const int64_t limit = 2 * static_cast<int64_t>(g.num_nodes()) + 10;
  conf.phases[0].mapper = make_iter_mapper(
      [calls, limit](const Bytes& key, const Bytes& value, const Bytes&,
                     IterEmitter& out) {
        if (calls->fetch_add(1) >= limit) {
          throw std::runtime_error("injected user-code failure");
        }
        out.emit(key, value);
      });

  const std::size_t eps_before = cluster->fabric().endpoint_count();
  IterativeEngine engine(*cluster);
  EXPECT_THROW(engine.run(conf), std::runtime_error);
  EXPECT_EQ(cluster->fabric().endpoint_count(), eps_before);
  EXPECT_GT(cluster->metrics().count("imr_checkpoints"), 0);
  EXPECT_TRUE(cluster->dfs().list("ckpt/").empty());
}

}  // namespace
}  // namespace imr
