// Shared helpers for the test suite.
#pragma once

#include <gtest/gtest.h>

#include <memory>

#include "cluster/cluster.h"

namespace imr::testutil {

// A small cluster with zero costs (pure logic testing).
inline std::unique_ptr<Cluster> free_cluster(int workers = 4, int map_slots = 4,
                                             int reduce_slots = 4) {
  ClusterConfig config;
  config.num_workers = workers;
  config.map_slots_per_worker = map_slots;
  config.reduce_slots_per_worker = reduce_slots;
  config.cost = CostModel::free();
  return std::make_unique<Cluster>(config);
}

// A cluster with the paper-calibrated local-cluster cost model (virtual time
// flows; still fast in real time).
inline std::unique_ptr<Cluster> costed_cluster(int workers = 4,
                                               int map_slots = 4,
                                               int reduce_slots = 4) {
  ClusterConfig config;
  config.num_workers = workers;
  config.map_slots_per_worker = map_slots;
  config.reduce_slots_per_worker = reduce_slots;
  config.cost = CostModel::local_cluster();
  return std::make_unique<Cluster>(config);
}

inline void expect_near_vectors(const std::vector<double>& expected,
                                const std::vector<double>& actual,
                                double tol) {
  ASSERT_EQ(expected.size(), actual.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    if (std::isinf(expected[i])) {
      EXPECT_TRUE(std::isinf(actual[i])) << "index " << i;
    } else {
      EXPECT_NEAR(expected[i], actual[i], tol) << "index " << i;
    }
  }
}

}  // namespace imr::testutil
