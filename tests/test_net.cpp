// Fabric tests: delivery, virtual-time stamping, local vs remote costing,
// broadcast, and traffic conservation.
#include <gtest/gtest.h>

#include <thread>
#include <tuple>

#include "tests/test_util.h"

namespace imr {
namespace {

NetMessage data_msg(KVVec records) {
  NetMessage m;
  m.kind = NetMessage::Kind::kData;
  m.set_records(std::move(records));
  return m;
}

TEST(Fabric, DeliversInOrder) {
  auto cluster = testutil::free_cluster();
  auto ep = cluster->fabric().create_endpoint("a", 0);
  VClock sender;
  for (int i = 0; i < 5; ++i) {
    NetMessage m = data_msg({});
    m.iteration = i;
    cluster->fabric().send(1, sender, *ep, std::move(m),
                           TrafficCategory::kShuffle);
  }
  VClock recv;
  for (int i = 0; i < 5; ++i) {
    auto m = ep->receive(recv);
    ASSERT_TRUE(m.has_value());
    EXPECT_EQ(m->iteration, i);
  }
}

TEST(Fabric, RemoteSendAdvancesSenderAndStampsArrival) {
  auto cluster = testutil::costed_cluster();
  auto ep = cluster->fabric().create_endpoint("a", 0);
  VClock sender;
  KVVec payload;
  payload.emplace_back(Bytes(100, 'k'), Bytes(100000, 'v'));
  cluster->fabric().send(1, sender, *ep, data_msg(std::move(payload)),
                         TrafficCategory::kShuffle);
  EXPECT_GT(sender.now_ns(), 0);  // serialization charged to sender

  VClock recv;
  auto m = ep->receive(recv);
  ASSERT_TRUE(m.has_value());
  // Arrival = sender finish + latency.
  EXPECT_GT(m->vt_ready, sender.now_ns());
  EXPECT_EQ(recv.now_ns(), m->vt_ready);
}

TEST(Fabric, LocalSendCheaperThanRemote) {
  auto cluster = testutil::costed_cluster();
  auto ep = cluster->fabric().create_endpoint("a", 0);
  KVVec payload;
  payload.emplace_back(Bytes(8, 'k'), Bytes(100000, 'v'));

  VClock local_sender;
  cluster->fabric().send(0, local_sender, *ep, data_msg(payload),
                         TrafficCategory::kReduceToMap);
  VClock remote_sender;
  cluster->fabric().send(1, remote_sender, *ep, data_msg(payload),
                         TrafficCategory::kReduceToMap);
  EXPECT_LT(local_sender.now_ns(), remote_sender.now_ns());

  // Only the remote copy counts as remote traffic.
  int64_t total = cluster->metrics().traffic_bytes(TrafficCategory::kReduceToMap);
  int64_t remote =
      cluster->metrics().traffic_remote_bytes(TrafficCategory::kReduceToMap);
  EXPECT_GT(total, remote);
  EXPECT_GT(remote, 100000);
  EXPECT_LT(remote, 2 * 100000 + 1000);
}

TEST(Fabric, ReceiverClockNeverMovesBackwards) {
  auto cluster = testutil::costed_cluster();
  auto ep = cluster->fabric().create_endpoint("a", 0);
  VClock sender;
  cluster->fabric().send(1, sender, *ep, data_msg({}),
                         TrafficCategory::kControl);
  VClock recv(int64_t{1} << 40);  // receiver already far in the future
  auto m = ep->receive(recv);
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(recv.now_ns(), int64_t{1} << 40);
}

TEST(Fabric, BroadcastChargesPerCopy) {
  auto cluster = testutil::costed_cluster();
  std::vector<std::shared_ptr<Endpoint>> eps;
  for (int i = 0; i < 4; ++i) {
    eps.push_back(cluster->fabric().create_endpoint("b" + std::to_string(i),
                                                    i % 2));
  }
  KVVec payload;
  payload.emplace_back(Bytes(8, 'k'), Bytes(50000, 'v'));
  VClock sender;
  cluster->fabric().broadcast(0, sender, eps, data_msg(std::move(payload)),
                              TrafficCategory::kBroadcast);
  EXPECT_EQ(cluster->metrics().traffic_transfers(TrafficCategory::kBroadcast),
            4);
  for (auto& ep : eps) EXPECT_EQ(ep->pending(), 1u);
}

TEST(Fabric, FindAndRemove) {
  auto cluster = testutil::free_cluster();
  cluster->fabric().create_endpoint("x", 0);
  EXPECT_NO_THROW(cluster->fabric().find("x"));
  cluster->fabric().remove_endpoint("x");
  EXPECT_THROW(cluster->fabric().find("x"), Error);
}

TEST(Fabric, CloseUnblocksReceiver) {
  auto cluster = testutil::free_cluster();
  auto ep = cluster->fabric().create_endpoint("a", 0);
  std::thread t([&] {
    VClock c;
    EXPECT_EQ(ep->receive(c), std::nullopt);
  });
  ep->close();
  t.join();
}

TEST(Fabric, ChannelFaultsRetryUntilDelivered) {
  auto cluster = testutil::free_cluster();
  ChannelFaultConfig faults;
  faults.drop_rate = 0.8;
  faults.seed = 5;
  faults.max_attempts = 6;
  cluster->fabric().set_channel_faults(faults);

  auto ep = cluster->fabric().create_endpoint("a", 0);
  VClock sender;
  for (int i = 0; i < 50; ++i) {
    NetMessage m = data_msg({});
    m.iteration = i;
    cluster->fabric().send(1, sender, *ep, std::move(m),
                           TrafficCategory::kShuffle);
  }
  // Every message arrives, in per-sender FIFO order, despite heavy drops.
  VClock recv;
  for (int i = 0; i < 50; ++i) {
    auto m = ep->receive(recv);
    ASSERT_TRUE(m.has_value());
    EXPECT_EQ(m->iteration, i);
  }
  ChannelStats s = cluster->fabric().channel_stats();
  EXPECT_EQ(s.delivered, 50);
  EXPECT_EQ(s.received, 50);
  EXPECT_GT(s.dropped, 0);
  EXPECT_EQ(s.attempts, s.delivered + s.dropped + s.rejected);
  EXPECT_GT(cluster->metrics().count("net_retries"), 0);
  EXPECT_EQ(cluster->metrics().count("net_dropped_sends"), s.dropped);
}

TEST(Fabric, SameSeedSameDropDecisions) {
  // The channel-fault RNG must be consumed in a deterministic order: one
  // draw per send attempt, under the fault mutex, including the re-acquired
  // retry attempts. Two identical runs with the same seed must produce the
  // same drop ledger bit for bit — this is what makes every chaos seed
  // reproducible.
  auto run_once = [] {
    auto cluster = testutil::free_cluster();
    ChannelFaultConfig faults;
    faults.drop_rate = 0.6;
    faults.seed = 42;
    faults.max_attempts = 8;
    cluster->fabric().set_channel_faults(faults);
    auto ep = cluster->fabric().create_endpoint("a", 0);
    VClock sender;
    for (int i = 0; i < 200; ++i) {
      NetMessage m = data_msg({});
      m.iteration = i;
      cluster->fabric().send(1, sender, *ep, std::move(m),
                             TrafficCategory::kShuffle);
    }
    ChannelStats s = cluster->fabric().channel_stats();
    return std::tuple(s.attempts, s.dropped,
                      cluster->metrics().count("net_retries"));
  };
  auto first = run_once();
  EXPECT_GT(std::get<1>(first), 0) << "fault config never dropped a send";
  EXPECT_EQ(first, run_once());
}

TEST(Fabric, DroppedAttemptsChargeRetryBackoffTime) {
  auto send_many = [](double drop_rate) {
    auto cluster = testutil::costed_cluster();
    ChannelFaultConfig faults;
    faults.drop_rate = drop_rate;
    faults.seed = 11;
    cluster->fabric().set_channel_faults(faults);
    auto ep = cluster->fabric().create_endpoint("a", 0);
    VClock sender;
    KVVec payload;
    payload.emplace_back(Bytes(8, 'k'), Bytes(10000, 'v'));
    for (int i = 0; i < 20; ++i) {
      cluster->fabric().send(1, sender, *ep, data_msg(payload),
                             TrafficCategory::kShuffle);
    }
    return sender.now_ns();
  };
  // Retried sends pay the detection timeout + wasted wire time, so the
  // faulty sender's clock runs later than the clean one's.
  EXPECT_GT(send_many(0.7), send_many(0.0));
}

TEST(Fabric, RejectedPushToClosedMailboxStaysOnLedger) {
  auto cluster = testutil::free_cluster();
  auto ep = cluster->fabric().create_endpoint("a", 0);
  ep->close();
  VClock sender;
  cluster->fabric().send(1, sender, *ep, data_msg({}),
                         TrafficCategory::kShuffle);
  ChannelStats s = cluster->fabric().channel_stats();
  EXPECT_EQ(s.rejected, 1);
  EXPECT_EQ(s.delivered, 0);
  EXPECT_EQ(s.attempts, s.delivered + s.dropped + s.rejected);
}

TEST(Fabric, TeardownDeclaresUndrainedDiscards) {
  auto cluster = testutil::free_cluster();
  VClock sender;
  {
    auto ep = cluster->fabric().create_endpoint("a", 0);
    for (int i = 0; i < 3; ++i) {
      cluster->fabric().send(1, sender, *ep, data_msg({}),
                             TrafficCategory::kShuffle);
    }
    cluster->fabric().remove_endpoint("a");
  }  // last handle gone: the destructor declares every undrained message
  ChannelStats s = cluster->fabric().channel_stats();
  EXPECT_EQ(s.delivered, 3);
  EXPECT_EQ(s.discarded, 3);
  EXPECT_EQ(s.received, 0);
  // Quiesced: delivered == received + discarded.
  EXPECT_EQ(s.delivered, s.received + s.discarded);
}

TEST(Fabric, SendsFromDeadWorkersAreSuppressed) {
  auto cluster = testutil::free_cluster();
  auto ep = cluster->fabric().create_endpoint("a", 0);
  cluster->mark_dead(1);
  VClock sender;
  cluster->fabric().send(1, sender, *ep, data_msg({}),
                         TrafficCategory::kReduceToMap);
  EXPECT_EQ(ep->pending(), 0u);  // the machine is gone; nothing hit the wire
  EXPECT_EQ(sender.now_ns(), 0);
  EXPECT_EQ(cluster->metrics().traffic_bytes(TrafficCategory::kReduceToMap),
            0);
  EXPECT_EQ(cluster->metrics().count("net_zombie_sends"), 1);
  ChannelStats s = cluster->fabric().channel_stats();
  EXPECT_EQ(s.dropped, 1);
  EXPECT_EQ(s.attempts, s.delivered + s.dropped + s.rejected);

  // Master control traffic (sender -1) is never suppressed.
  VClock master;
  cluster->fabric().send(-1, master, *ep, data_msg({}),
                         TrafficCategory::kControl);
  EXPECT_EQ(ep->pending(), 1u);
}

TEST(Fabric, ChannelFaultConfigValidated) {
  auto cluster = testutil::free_cluster();
  ChannelFaultConfig bad;
  bad.drop_rate = 1.0;  // would retry forever
  EXPECT_THROW(cluster->fabric().set_channel_faults(bad), Error);
  bad.drop_rate = 0.5;
  bad.max_attempts = 0;
  EXPECT_THROW(cluster->fabric().set_channel_faults(bad), Error);
  bad.max_attempts = 3;
  bad.backoff_factor = 0.5;
  EXPECT_THROW(cluster->fabric().set_channel_faults(bad), Error);
}

TEST(Fabric, MigrationRecreatesEndpointOnNewHome) {
  auto cluster = testutil::costed_cluster();
  auto ep = cluster->fabric().create_endpoint("a", 0);
  KVVec payload;
  payload.emplace_back(Bytes(8, 'k'), Bytes(50000, 'v'));
  VClock s1;
  cluster->fabric().send(0, s1, *ep, data_msg(payload),
                         TrafficCategory::kShuffle);  // local
  // Task migration: an endpoint's home is fixed for life, so the master
  // re-creates the mailbox under the same name homed on the target.
  auto moved = cluster->fabric().create_endpoint("a", 2);
  EXPECT_EQ(cluster->fabric().find("a"), moved);
  EXPECT_EQ(moved->home_worker(), 2);
  EXPECT_EQ(cluster->fabric().endpoint_count(), 1u);  // replaced, not added
  VClock s2;
  cluster->fabric().send(0, s2, *moved, data_msg(payload),
                         TrafficCategory::kShuffle);  // now remote
  EXPECT_GT(s2.now_ns(), s1.now_ns());
}

TEST(Fabric, EndpointCountTracksCreateAndRemove) {
  auto cluster = testutil::free_cluster();
  EXPECT_EQ(cluster->fabric().endpoint_count(), 0u);
  cluster->fabric().create_endpoint("a", 0);
  cluster->fabric().create_endpoint("b", 1);
  EXPECT_EQ(cluster->fabric().endpoint_count(), 2u);
  cluster->fabric().remove_endpoint("a");
  cluster->fabric().remove_endpoint("b");
  EXPECT_EQ(cluster->fabric().endpoint_count(), 0u);
}

TEST(NetMessage, TakeRecordsMovesWhenSoleOwner) {
  int64_t copies_before = NetMessage::payload_deep_copies();
  KVVec records;
  records.emplace_back(Bytes("k"), Bytes("v"));
  NetMessage m = data_msg(std::move(records));
  const KV* buffer = m.records().data();
  KVVec out = m.take_records();
  EXPECT_EQ(out.data(), buffer);  // moved out, not copied
  EXPECT_TRUE(m.records().empty());
  EXPECT_EQ(NetMessage::payload_deep_copies(), copies_before);
}

TEST(NetMessage, TakeRecordsCopiesWhenMarkedShared) {
  int64_t copies_before = NetMessage::payload_deep_copies();
  KVVec records;
  records.emplace_back(Bytes("k"), Bytes("v"));
  NetMessage a = data_msg(std::move(records));
  NetMessage b = a;  // fan-out copy, as Fabric::broadcast makes
  b.mark_payload_shared();
  KVVec out = b.take_records();
  EXPECT_EQ(NetMessage::payload_deep_copies(), copies_before + 1);
  ASSERT_EQ(a.records().size(), 1u);  // the sibling's view is untouched
  ASSERT_EQ(out.size(), 1u);
  // a was never marked (the original in the sender's hands): taking moves.
  const KV* buffer = a.records().data();
  KVVec rest = a.take_records();
  EXPECT_EQ(NetMessage::payload_deep_copies(), copies_before + 1);
  EXPECT_EQ(rest.data(), buffer);
}

TEST(Fabric, BroadcastSharesOnePayloadBuffer) {
  auto cluster = testutil::free_cluster();
  std::vector<std::shared_ptr<Endpoint>> eps;
  for (int i = 0; i < 8; ++i) {
    eps.push_back(cluster->fabric().create_endpoint("b" + std::to_string(i),
                                                    i % 2));
  }
  KVVec payload;
  for (int i = 0; i < 64; ++i) {
    payload.emplace_back(Bytes(8, 'k'), Bytes(128, 'v'));
  }
  NetMessage msg = data_msg(std::move(payload));
  const std::size_t per_msg_bytes = msg.payload_bytes();
  const KVVec* shared_buffer = msg.payload.get();
  int64_t copies_before = NetMessage::payload_deep_copies();
  VClock sender;
  cluster->fabric().broadcast(0, sender, eps, msg,
                              TrafficCategory::kBroadcast);
  // Enqueuing 8 messages made zero deep copies of the records...
  EXPECT_EQ(NetMessage::payload_deep_copies(), copies_before);
  // ...because every receiver holds a handle to the SAME buffer.
  VClock recv;
  for (auto& ep : eps) {
    auto got = ep->receive(recv);
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(got->payload.get(), shared_buffer);
    EXPECT_EQ(got->records().size(), 64u);
  }
  // Byte accounting is per message, sharing notwithstanding.
  EXPECT_EQ(cluster->metrics().traffic_transfers(TrafficCategory::kBroadcast),
            8);
  EXPECT_EQ(cluster->metrics().traffic_bytes(TrafficCategory::kBroadcast),
            static_cast<int64_t>(8 * per_msg_bytes));
}

TEST(Fabric, DisarmedSendsSkipFaultMachinery) {
  auto cluster = testutil::free_cluster();
  ChannelFaultConfig faults;
  faults.drop_rate = 0.9;
  faults.seed = 3;
  faults.max_attempts = 4;
  cluster->fabric().set_channel_faults(faults);
  auto ep = cluster->fabric().create_endpoint("a", 0);
  VClock sender;
  for (int i = 0; i < 20; ++i) {
    cluster->fabric().send(1, sender, *ep, data_msg({}),
                           TrafficCategory::kShuffle);
  }
  int64_t drops_armed = cluster->metrics().count("net_dropped_sends");
  EXPECT_GT(drops_armed, 0);

  // drop_rate 0 disarms: sends stop consulting the fault config entirely.
  cluster->fabric().set_channel_faults(ChannelFaultConfig{});
  for (int i = 0; i < 200; ++i) {
    cluster->fabric().send(1, sender, *ep, data_msg({}),
                           TrafficCategory::kShuffle);
  }
  EXPECT_EQ(cluster->metrics().count("net_dropped_sends"), drops_armed);
  ChannelStats s = cluster->fabric().channel_stats();
  EXPECT_EQ(s.attempts, s.delivered + s.dropped + s.rejected);
}

}  // namespace
}  // namespace imr
