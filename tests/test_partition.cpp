// Partition-aware placement and aggregated exchange (DESIGN.md §9).
//
// The load-bearing property: the final state of a job is byte-identical
// whatever the partitioner (hash, BFS region, external file) and whether the
// cross-worker shuffle streams per-partition or coalesces into one batch per
// destination worker — across bulk, workset, and session modes, with and
// without injected worker deaths. A partitioner moves keys BETWEEN tasks and
// the aggregated exchange changes WHEN batches arrive; neither may ever
// change a value.
//
// Also here: the partitioner library's own contracts (same-seed determinism,
// the 1.1 balance bound on grid and RMAT graphs, BFS cut <= hash cut, the
// METIS-style file round-trip), the plan_placement layout rules, and the
// partition_of zero-partition guard.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <map>
#include <string>
#include <tuple>
#include <vector>

#include "algorithms/concomp.h"
#include "algorithms/pagerank.h"
#include "algorithms/sssp.h"
#include "cluster/fault_schedule.h"
#include "cluster/placement.h"
#include "common/codec.h"
#include "common/error.h"
#include "common/hash.h"
#include "graph/generator.h"
#include "graph/partition.h"
#include "imapreduce/conf.h"
#include "imapreduce/engine.h"
#include "mapreduce/engine.h"  // resolve_input_paths
#include "tests/chaos_harness.h"
#include "tests/test_util.h"

namespace imr {
namespace {

using chaos::run_chaos_job;
using chaos::workset_expectations;

// ---------------------------------------------------------------------------
// Partitioner library
// ---------------------------------------------------------------------------

Graph small_grid() {
  GridGraphSpec spec;
  spec.rows = 24;
  spec.cols = 24;
  spec.weighted = false;
  spec.seed = 5;
  return generate_grid_graph(spec);
}

Graph small_rmat() {
  RmatGraphSpec spec;
  spec.num_nodes = 1 << 11;
  spec.edges_per_node = 6;
  spec.weighted = false;
  spec.seed = 9;
  return generate_rmat_graph(spec);
}

std::vector<uint32_t> assignment_of(const Partitioner& p, uint32_t n) {
  std::vector<uint32_t> a(n);
  for (uint32_t u = 0; u < n; ++u) a[u] = p.partition(u32_key(u));
  return a;
}

TEST(PartitionOf, RejectsZeroPartitions) {
  const Bytes key = u32_key(7);
  EXPECT_THROW(partition_of(key, 0), Error);
  EXPECT_EQ(partition_of(key, 1), 0u);
}

TEST(HashPartitioner, MatchesBuiltInHash) {
  auto p = make_hash_partitioner(7);
  EXPECT_EQ(p->num_partitions(), 7u);
  EXPECT_TRUE(p->affinity().empty());
  for (uint32_t u = 0; u < 100; ++u) {
    const Bytes key = u32_key(u);
    EXPECT_EQ(p->partition(key), partition_of(key, 7));
  }
}

TEST(BfsPartitioner, SameSeedSameAssignment) {
  const Graph g = small_rmat();
  auto a = make_bfs_partitioner(g, 8, 42);
  auto b = make_bfs_partitioner(g, 8, 42);
  EXPECT_EQ(assignment_of(*a, g.num_nodes()), assignment_of(*b, g.num_nodes()));
  // Affinity is a pure function of the assignment, so it matches too.
  EXPECT_EQ(a->affinity(), b->affinity());
}

TEST(BfsPartitioner, BalanceBoundOnGridAndRmat) {
  for (const Graph& g : {small_grid(), small_rmat()}) {
    for (uint32_t parts : {4u, 8u, 13u}) {
      for (uint64_t seed : {1ull, 2ull}) {
        auto p = make_bfs_partitioner(g, parts, seed);
        const auto sizes = partition_sizes(g, *p);
        EXPECT_EQ(sizes.size(), parts);
        EXPECT_LE(balance_factor(sizes), 1.1)
            << "parts=" << parts << " seed=" << seed;
      }
    }
  }
}

TEST(BfsPartitioner, CutsNoWorseThanHashOnBenchGraphs) {
  for (const Graph& g : {small_grid(), small_rmat()}) {
    for (uint32_t parts : {4u, 8u}) {
      auto hash = make_hash_partitioner(parts);
      auto bfs = make_bfs_partitioner(g, parts, 1);
      EXPECT_LE(edge_cut(g, *bfs), edge_cut(g, *hash))
          << "parts=" << parts << " n=" << g.num_nodes();
    }
  }
}

TEST(BfsPartitioner, CoversEveryVertexExactlyOnce) {
  const Graph g = small_grid();
  auto p = make_bfs_partitioner(g, 5, 3);
  int64_t total = 0;
  for (int64_t s : partition_sizes(g, *p)) {
    EXPECT_GT(s, 0);
    total += s;
  }
  EXPECT_EQ(total, static_cast<int64_t>(g.num_nodes()));
  // The affinity matrix accounts for every in-range directed edge.
  int64_t aff_total = 0;
  for (int64_t a : p->affinity()) aff_total += a;
  EXPECT_EQ(aff_total, static_cast<int64_t>(g.num_edges()));
}

TEST(FilePartitioner, RoundTripsThroughMetisFile) {
  const Graph g = small_grid();
  auto bfs = make_bfs_partitioner(g, 6, 17);
  const auto assignment = assignment_of(*bfs, g.num_nodes());

  const std::string path = ::testing::TempDir() + "/parts.txt";
  write_partition_file(path, assignment);
  const auto loaded = load_partition_file(path, g.num_nodes());
  EXPECT_EQ(loaded, assignment);

  auto file = make_file_partitioner(loaded, g, 6);
  EXPECT_EQ(assignment_of(*file, g.num_nodes()), assignment);
  EXPECT_EQ(file->affinity(), bfs->affinity());
  std::remove(path.c_str());
}

TEST(FilePartitioner, RejectsBadFiles) {
  const Graph g = small_grid();
  EXPECT_THROW(load_partition_file("/no/such/partition/file", g.num_nodes()),
               ConfigError);

  const std::string path = ::testing::TempDir() + "/bad_parts.txt";
  write_partition_file(path, {0, 1, 2});  // wrong vertex count
  EXPECT_THROW(load_partition_file(path, g.num_nodes()), ConfigError);

  // Right count, but names a partition out of range.
  std::vector<uint32_t> assignment(g.num_nodes(), 0);
  assignment[3] = 6;
  EXPECT_THROW(make_file_partitioner(assignment, g, 6), ConfigError);
  // And a count that disagrees with the graph.
  EXPECT_THROW(make_file_partitioner({0, 1}, g, 6), ConfigError);
  std::remove(path.c_str());
}

TEST(FilePartitioner, ParsesCommentsAndBlankLines) {
  const std::string path = ::testing::TempDir() + "/commented_parts.txt";
  {
    std::FILE* f = std::fopen(path.c_str(), "w");
    ASSERT_NE(f, nullptr);
    std::fputs("# header comment\n1\n\n0  # trailing comment\n2\n", f);
    std::fclose(f);
  }
  EXPECT_EQ(load_partition_file(path, 3), (std::vector<uint32_t>{1, 0, 2}));
  std::remove(path.c_str());
}

// Non-4-byte keys (aux key spaces) fall back to the flat hash.
TEST(VertexPartitioner, ForeignKeysFallBackToHash) {
  const Graph g = small_grid();
  auto p = make_bfs_partitioner(g, 4, 1);
  const Bytes key = u64_key(123456789);
  EXPECT_EQ(p->partition(key), partition_of(key, 4));
}

// ---------------------------------------------------------------------------
// plan_placement
// ---------------------------------------------------------------------------

TEST(PlanPlacement, RoundRobinWithoutAffinity) {
  const auto plan =
      plan_placement(5, 3, {}, CostModel::local_cluster());
  EXPECT_EQ(plan, (std::vector<int>{0, 1, 2, 0, 1}));
}

TEST(PlanPlacement, RoundRobinWhenColocationIsFree) {
  // CostModel::free() zeroes the bandwidth gap, so affinity is ignored —
  // this is what keeps logic-test layouts identical to the seed behavior.
  std::vector<int64_t> aff(16, 1);
  const auto plan = plan_placement(4, 2, aff, CostModel::free());
  EXPECT_EQ(plan, (std::vector<int>{0, 1, 0, 1}));
}

TEST(PlanPlacement, GroupsHighAffinityPartitions) {
  // Partitions {0,1} and {2,3} form two heavy pairs; the greedy layout must
  // put each pair on one worker (capacity ceil(4/2) = 2).
  std::vector<int64_t> aff(16, 0);
  aff[0 * 4 + 1] = 100;
  aff[2 * 4 + 3] = 100;
  const auto plan = plan_placement(4, 2, aff, CostModel::local_cluster());
  ASSERT_EQ(plan.size(), 4u);
  EXPECT_EQ(plan[0], plan[1]);
  EXPECT_EQ(plan[2], plan[3]);
  EXPECT_NE(plan[0], plan[2]);
}

TEST(PlanPlacement, RespectsCapacityAndIsDeterministic) {
  // A fully-connected affinity clique would love one worker; the capacity
  // cap ceil(6/3)=2 forces an even spread anyway.
  std::vector<int64_t> aff(36, 10);
  const auto a = plan_placement(6, 3, aff, CostModel::local_cluster());
  const auto b = plan_placement(6, 3, aff, CostModel::local_cluster());
  EXPECT_EQ(a, b);
  std::vector<int> load(3, 0);
  for (int w : a) {
    ASSERT_GE(w, 0);
    ASSERT_LT(w, 3);
    ++load[static_cast<std::size_t>(w)];
  }
  for (int l : load) EXPECT_EQ(l, 2);
}

// ---------------------------------------------------------------------------
// Conf validation
// ---------------------------------------------------------------------------

TEST(PartitionConf, AggregatedShuffleNeedsDeterministicReduce) {
  IterJobConf conf = Sssp::imapreduce("in", "out", 10);
  conf.aggregated_shuffle = true;
  conf.deterministic_reduce = false;
  EXPECT_THROW(conf.validate(), ConfigError);
  conf.deterministic_reduce = true;
  EXPECT_NO_THROW(conf.validate());
}

TEST(PartitionConf, PartitionCountMustMatchTaskCount) {
  const Graph g = small_grid();
  auto cluster = testutil::free_cluster(3, 4, 4);
  Sssp::setup(*cluster, g, 0, "in");
  IterJobConf conf = Sssp::imapreduce("in", "out", 5);
  conf.num_tasks = 3;
  conf.partitioner = make_bfs_partitioner(g, 4, 1);  // 4 != 3
  IterativeEngine engine(*cluster);
  EXPECT_THROW(engine.run(conf), ConfigError);
}

// ---------------------------------------------------------------------------
// Engine equivalence: every partitioner/exchange combination lands on the
// hash run's exact bytes.
// ---------------------------------------------------------------------------

enum class PAlgo { kSssp, kConComp, kPrDelta };

const char* algo_name(PAlgo a) {
  switch (a) {
    case PAlgo::kSssp:
      return "Sssp";
    case PAlgo::kConComp:
      return "ConComp";
    case PAlgo::kPrDelta:
      return "PrDelta";
  }
  return "?";
}

constexpr double kPrTheta = 1e-4;

std::map<Bytes, Bytes> read_state(Cluster& cluster, const std::string& path) {
  std::map<Bytes, Bytes> state;
  for (const auto& part : resolve_input_paths(cluster.dfs(), path)) {
    for (const KV& kv : cluster.dfs().read_all(part, -1, nullptr)) {
      state[kv.key] = kv.value;
    }
  }
  return state;
}

Graph sweep_graph(PAlgo algo, uint64_t seed) {
  LogNormalGraphSpec spec;
  spec.num_nodes = 70 + static_cast<uint32_t>((seed * 31) % 90);
  spec.degree_mu = 0.5 + 0.3 * static_cast<double>(seed % 3);
  spec.degree_sigma = 0.7;
  spec.weighted = algo == PAlgo::kSssp;
  spec.seed = 9000 + 23 * seed + static_cast<uint64_t>(algo);
  return generate_lognormal_graph(spec);
}

void setup_algo(PAlgo algo, Cluster& cluster, const Graph& g,
                const std::string& base) {
  switch (algo) {
    case PAlgo::kSssp:
      Sssp::setup(cluster, g, 0, base);
      break;
    case PAlgo::kConComp:
      ConComp::setup(cluster, g, base);
      break;
    case PAlgo::kPrDelta:
      PageRank::setup_delta(cluster, g, base);
      break;
  }
}

IterJobConf make_conf(PAlgo algo, const std::string& base,
                      const std::string& out) {
  switch (algo) {
    case PAlgo::kSssp:
      return Sssp::imapreduce(base, out, /*max_iterations=*/60, 0.5);
    case PAlgo::kConComp:
      return ConComp::imapreduce(base, out, /*max_iterations=*/60, 0.5);
    case PAlgo::kPrDelta:
      return PageRank::imapreduce_delta(base, out, /*max_iterations=*/80,
                                        kPrTheta);
  }
  return {};
}

// A contiguous-range assignment: deliberately NOT what the BFS grower
// produces, so the file path exercises a genuinely external layout.
std::vector<uint32_t> range_assignment(uint32_t n, uint32_t parts) {
  std::vector<uint32_t> a(n);
  for (uint32_t u = 0; u < n; ++u) {
    a[u] = static_cast<uint32_t>((static_cast<uint64_t>(u) * parts) / n);
  }
  return a;
}

using EquivParam = std::tuple<uint64_t, PAlgo>;

class PartitionerEquivalence : public ::testing::TestWithParam<EquivParam> {};

TEST_P(PartitionerEquivalence, BulkMatchesHashByteForByte) {
  const auto [seed, algo] = GetParam();
  const Graph g = sweep_graph(algo, seed);
  const auto n = static_cast<int64_t>(g.num_nodes());
  const int tasks = 3 + static_cast<int>(seed % 2);
  const auto parts = static_cast<uint32_t>(tasks);

  auto cluster = testutil::free_cluster(3, 4, 4);
  setup_algo(algo, *cluster, g, "in");

  InvariantExpectations expect;
  expect.expected_parts = tasks;
  expect.expected_state_records = n;

  auto run_one = [&](const std::string& out,
                     std::shared_ptr<const Partitioner> part, bool agg) {
    IterJobConf conf = make_conf(algo, "in", out);
    conf.num_tasks = tasks;
    conf.partitioner = std::move(part);
    conf.aggregated_shuffle = agg;
    auto r = run_chaos_job(*cluster, conf, FaultSchedule{},
                           ChannelFaultConfig{}, expect);
    EXPECT_TRUE(r.violations.empty()) << ::testing::PrintToString(r.violations);
    EXPECT_TRUE(r.report.converged);
    return r.report;
  };

  const RunReport base = run_one("out_hash", nullptr, false);
  const auto reference = read_state(*cluster, "out_hash");
  ASSERT_EQ(reference.size(), static_cast<std::size_t>(n));

  struct Variant {
    const char* label;
    std::shared_ptr<const Partitioner> part;
    bool agg;
  };
  const Variant variants[] = {
      {"hash+agg", nullptr, true},
      {"bfs", make_bfs_partitioner(g, parts, seed), false},
      {"bfs+agg", make_bfs_partitioner(g, parts, seed), true},
      {"file", make_file_partitioner(range_assignment(g.num_nodes(), parts),
                                     g, parts),
       false},
  };
  for (const Variant& v : variants) {
    const std::string out = std::string("out_") + v.label;
    const RunReport r = run_one(out, v.part, v.agg);
    // Same fixpoint at the same iteration, and the same bytes.
    EXPECT_EQ(r.iterations_run, base.iterations_run) << v.label;
    EXPECT_EQ(read_state(*cluster, out), reference)
        << v.label << " diverged from hash (seed=" << seed
        << ", algo=" << algo_name(algo) << ")";
  }
}

INSTANTIATE_TEST_SUITE_P(
    SeedsByAlgos, PartitionerEquivalence,
    ::testing::Combine(::testing::Values(uint64_t{1}, uint64_t{2},
                                         uint64_t{3}),
                       ::testing::Values(PAlgo::kSssp, PAlgo::kConComp,
                                         PAlgo::kPrDelta)),
    [](const ::testing::TestParamInfo<EquivParam>& info) {
      return std::string("seed") + std::to_string(std::get<0>(info.param)) +
             "_" + algo_name(std::get<1>(info.param));
    });

// Workset mode: the frontier drain must reach the same bytes under a BFS
// partitioner with the aggregated exchange as bulk hash does.
TEST(PartitionerWorkset, FrontierRunMatchesBulkHash) {
  const Graph g = sweep_graph(PAlgo::kSssp, 4);
  const auto n = static_cast<int64_t>(g.num_nodes());
  const int tasks = 4;

  auto cluster = testutil::free_cluster(3, 4, 4);
  Sssp::setup(*cluster, g, 0, "in");

  IterJobConf bulk = make_conf(PAlgo::kSssp, "in", "out_bulk");
  bulk.num_tasks = tasks;
  InvariantExpectations expect;
  expect.expected_parts = tasks;
  expect.expected_state_records = n;
  auto bulk_run = run_chaos_job(*cluster, bulk, FaultSchedule{},
                                ChannelFaultConfig{}, expect);
  ASSERT_TRUE(bulk_run.report.converged);

  IterJobConf ws = make_conf(PAlgo::kSssp, "in", "out_ws");
  ws.num_tasks = tasks;
  ws.workset_mode = true;
  ws.distance_threshold = -1.0;
  ws.partitioner = make_bfs_partitioner(g, static_cast<uint32_t>(tasks), 4);
  ws.aggregated_shuffle = true;
  auto ws_run = run_chaos_job(*cluster, ws, FaultSchedule{},
                              ChannelFaultConfig{},
                              workset_expectations(n, tasks));
  EXPECT_TRUE(ws_run.violations.empty())
      << ::testing::PrintToString(ws_run.violations);
  ASSERT_TRUE(ws_run.report.converged);
  EXPECT_EQ(ws_run.report.iterations_run, bulk_run.report.iterations_run);
  EXPECT_EQ(read_state(*cluster, "out_ws"), read_state(*cluster, "out_bulk"));
}

// A costed cluster exercises the affinity-guided placement for real (the
// free cost model falls back to round-robin); values must not move.
TEST(PartitionerPlacement, CostedPlacementKeepsBytes) {
  const Graph g = sweep_graph(PAlgo::kSssp, 6);
  const auto n = static_cast<int64_t>(g.num_nodes());
  const int tasks = 6;

  auto free_c = testutil::free_cluster(3, 4, 4);
  Sssp::setup(*free_c, g, 0, "in");
  IterJobConf hash_conf = make_conf(PAlgo::kSssp, "in", "out");
  hash_conf.num_tasks = tasks;
  ASSERT_TRUE(IterativeEngine(*free_c).run(hash_conf).converged);
  const auto reference = read_state(*free_c, "out");
  ASSERT_EQ(reference.size(), static_cast<std::size_t>(n));

  auto costed = testutil::costed_cluster(3, 4, 4);
  Sssp::setup(*costed, g, 0, "in");
  IterJobConf conf = make_conf(PAlgo::kSssp, "in", "out");
  conf.num_tasks = tasks;
  conf.partitioner = make_bfs_partitioner(g, static_cast<uint32_t>(tasks), 6);
  conf.aggregated_shuffle = true;
  ASSERT_TRUE(IterativeEngine(*costed).run(conf).converged);
  EXPECT_EQ(read_state(*costed, "out"), reference);
}

// Session mode: converge under a BFS partitioner + aggregated exchange,
// absorb a delta batch, and land on the cold hash recompute's bytes.
TEST(PartitionerSession, UpdateEpochMatchesColdHashRun) {
  const Graph g0 = sweep_graph(PAlgo::kSssp, 7);
  Graph g1 = g0;
  // A deterministic fresh edge: node 1 gains a shortcut to the last node.
  const auto last = static_cast<uint32_t>(g1.num_nodes() - 1);
  g1.adj[1].push_back(WEdge{last, 0.25});
  const int tasks = 4;

  auto make_session_conf = [&](const std::string& out) {
    IterJobConf conf = make_conf(PAlgo::kSssp, "in", out);
    conf.num_tasks = tasks;
    conf.workset_mode = true;
    conf.distance_threshold = -1.0;  // the drain is the only way to converge
    return conf;
  };

  // Cold reference over the FINAL graph, hash partitioning.
  auto cold = testutil::free_cluster(3, 4, 4);
  Sssp::setup(*cold, g1, 0, "in");
  ASSERT_TRUE(IterativeEngine(*cold).run(make_session_conf("out")).converged);
  const auto reference = read_state(*cold, "out");

  auto live = testutil::free_cluster(3, 4, 4);
  Sssp::setup(*live, g0, 0, "in");
  IterJobConf conf = make_session_conf("out");
  conf.partitioner =
      make_bfs_partitioner(g0, static_cast<uint32_t>(tasks), 7);
  conf.aggregated_shuffle = true;
  IterativeEngine engine(*live);
  JobSession session = engine.open_session(conf);
  ASSERT_TRUE(session.last_report().converged);
  EXPECT_TRUE(session.apply_update(Sssp::static_delta(g0, g1)).converged);
  session.close();
  EXPECT_EQ(read_state(*live, "out"), reference);
}

// ---------------------------------------------------------------------------
// Chaos: worker deaths under BFS partitioning + aggregated exchange must
// recover to the clean run's bytes (the PR-5/6 sweep pattern).
// ---------------------------------------------------------------------------

using ChaosParam = std::tuple<uint64_t, FaultPoint>;

class PartitionerChaos : public ::testing::TestWithParam<ChaosParam> {};

TEST_P(PartitionerChaos, RecoversToCleanBytes) {
  const auto [seed, point] = GetParam();
  LogNormalGraphSpec spec;
  spec.num_nodes = 90;
  spec.degree_mu = 1.0;
  spec.degree_sigma = 0.8;
  spec.weighted = true;
  spec.seed = 300 + seed;
  const Graph g = generate_lognormal_graph(spec);
  const auto n = static_cast<int64_t>(g.num_nodes());
  const int tasks = 4;

  auto make_pconf = [&](const std::string& out) {
    IterJobConf conf = Sssp::imapreduce("in", out, /*max_iterations=*/60, 0.5);
    conf.num_tasks = tasks;
    conf.partitioner = make_bfs_partitioner(g, static_cast<uint32_t>(tasks),
                                            seed);
    conf.aggregated_shuffle = true;
    conf.checkpoint_every = 2;
    return conf;
  };

  auto clean = testutil::free_cluster(4, 4, 4);
  Sssp::setup(*clean, g, 0, "in");
  auto clean_run = run_chaos_job(*clean, make_pconf("out"), FaultSchedule{});
  ASSERT_TRUE(clean_run.report.converged);
  const auto reference = read_state(*clean, "out");
  ASSERT_EQ(reference.size(), static_cast<std::size_t>(n));
  const int k_star = clean_run.report.iterations_run;
  ASSERT_GE(k_star, 3) << "graph converges too fast to inject faults";

  auto faulty = testutil::free_cluster(4, 4, 4);
  Sssp::setup(*faulty, g, 0, "in");
  FaultSchedule schedule;
  schedule.add(chaos::derive_fault(seed, 4, k_star - 1, point));
  InvariantExpectations expect;
  expect.expected_parts = tasks;
  expect.expected_state_records = n;
  expect.expected_recoveries = 1;
  auto result = run_chaos_job(*faulty, make_pconf("out"), schedule,
                              ChannelFaultConfig{}, expect);
  EXPECT_TRUE(result.violations.empty())
      << ::testing::PrintToString(result.violations);
  ASSERT_TRUE(result.report.converged);
  chaos::expect_all_faults_consumed(*faulty);
  EXPECT_EQ(read_state(*faulty, "out"), reference)
      << "seed=" << seed;
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, PartitionerChaos,
    ::testing::Combine(::testing::Values(uint64_t{1}, uint64_t{2},
                                         uint64_t{3}),
                       ::testing::Values(FaultPoint::kIterationBoundary,
                                         FaultPoint::kMidShuffle)),
    [](const ::testing::TestParamInfo<ChaosParam>& info) {
      return std::string("seed") + std::to_string(std::get<0>(info.param)) +
             (std::get<1>(info.param) == FaultPoint::kMidShuffle
                  ? "_MidShuffle"
                  : "_IterationBoundary");
    });

}  // namespace
}  // namespace imr
