// Workset (frontier) iteration equivalence suite.
//
// The load-bearing property: a workset-mode run — where each iteration's map
// phase visits only the records the previous reduce actually changed — must
// produce the SAME final state, byte for byte, as the bulk run of the same
// job, across randomized graphs, skews, partition counts, and seeds, with
// and without injected worker deaths. SSSP and connected components get the
// guarantee from min-merge idempotence; PageRank-with-threshold uses the
// delta-accumulation formulation, whose correctness additionally depends on
// checkpoints restoring the *exact* frontier (replaying a wrong frontier
// double-applies share mass — exactly what the chaos sweep would catch).
//
// Also here: the InvariantChecker's frontier-aware rules (7: conservation on
// the final state, not per-iteration transfers; 8: the workset ledger in
// both bulk and workset directions), and the conf validation gates.
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <string>
#include <tuple>
#include <vector>

#include "algorithms/concomp.h"
#include "algorithms/pagerank.h"
#include "algorithms/sssp.h"
#include "cluster/fault_schedule.h"
#include "common/error.h"
#include "graph/generator.h"
#include "imapreduce/conf.h"
#include "imapreduce/engine.h"
#include "mapreduce/engine.h"  // resolve_input_paths
#include "metrics/invariants.h"
#include "tests/chaos_harness.h"
#include "tests/test_util.h"

namespace imr {
namespace {

using chaos::run_chaos_job;
using chaos::workset_expectations;
using testutil::expect_near_vectors;

enum class WsAlgo { kSssp, kConComp, kPrDelta };

const char* algo_name(WsAlgo a) {
  switch (a) {
    case WsAlgo::kSssp:
      return "Sssp";
    case WsAlgo::kConComp:
      return "ConComp";
    case WsAlgo::kPrDelta:
      return "PrDelta";
  }
  return "?";
}

// Share-emission thresholds for PageRank-with-threshold. The chaos value is
// small enough that share mass stays above it along the 6-node tail chain
// (shares decay by the damping factor per hop), keeping the frontier alive
// long enough for every injection point to fire before the drain.
constexpr double kPrTheta = 1e-4;
constexpr double kPrThetaChaos = 1e-6;

// Raw final state: key -> value bytes across all part files. Byte-level on
// purpose — float tolerance would hide exactly the class of bug (dropped or
// double-applied updates) this suite exists to catch.
std::map<Bytes, Bytes> read_state(Cluster& cluster, const std::string& path) {
  std::map<Bytes, Bytes> state;
  for (const auto& part : resolve_input_paths(cluster.dfs(), path)) {
    for (const KV& kv : cluster.dfs().read_all(part, -1, nullptr)) {
      state[kv.key] = kv.value;
    }
  }
  return state;
}

// Randomized graph for the clean sweep: node count, degree skew, and edge
// seed all vary with the case seed.
Graph sweep_graph(WsAlgo algo, uint64_t seed) {
  LogNormalGraphSpec spec;
  spec.num_nodes = 60 + static_cast<uint32_t>((seed * 37) % 120);
  spec.degree_mu = 0.4 + 0.4 * static_cast<double>(seed % 4);
  spec.degree_sigma = 0.6 + 0.3 * static_cast<double>(seed % 3);
  spec.weighted = algo == WsAlgo::kSssp;
  spec.seed = 1000 * seed + 17 + static_cast<uint64_t>(algo);
  return generate_lognormal_graph(spec);
}

// Appends a directed path of `len` extra nodes hanging off node 0. State
// needs >= len iterations to propagate to the tail's end, so convergence is
// guaranteed to take at least that many rounds — the chaos sweep derives its
// injection iteration from the observed drain point and needs headroom.
Graph with_tail(Graph g, int len) {
  uint32_t prev = 0;
  for (int t = 0; t < len; ++t) {
    auto node = static_cast<uint32_t>(g.adj.size());
    g.adj.emplace_back();
    g.adj[prev].push_back(WEdge{node, 1.0});
    prev = node;
  }
  return g;
}

Graph chaos_graph(WsAlgo algo, uint64_t seed) {
  LogNormalGraphSpec spec;
  spec.num_nodes = 90 + static_cast<uint32_t>(seed % 3) * 20;
  spec.degree_mu = 1.0;
  spec.degree_sigma = 0.8;
  spec.weighted = algo == WsAlgo::kSssp;
  spec.seed = 7000 + 13 * seed + static_cast<uint64_t>(algo);
  return with_tail(generate_lognormal_graph(spec), 6);
}

void setup_algo(WsAlgo algo, Cluster& cluster, const Graph& g,
                const std::string& base) {
  switch (algo) {
    case WsAlgo::kSssp:
      Sssp::setup(cluster, g, 0, base);
      break;
    case WsAlgo::kConComp:
      ConComp::setup(cluster, g, base);
      break;
    case WsAlgo::kPrDelta:
      PageRank::setup_delta(cluster, g, base);
      break;
  }
}

IterJobConf make_conf(WsAlgo algo, const std::string& base,
                      const std::string& out, int max_iterations,
                      double theta) {
  switch (algo) {
    case WsAlgo::kSssp:
      return Sssp::imapreduce(base, out, max_iterations, /*threshold=*/0.5);
    case WsAlgo::kConComp:
      return ConComp::imapreduce(base, out, max_iterations,
                                 /*threshold=*/0.5);
    case WsAlgo::kPrDelta:
      return PageRank::imapreduce_delta(base, out, max_iterations, theta);
  }
  return {};
}

// Sanity: the (byte-identical) results also match the sequential references.
void check_values(WsAlgo algo, Cluster& cluster, const Graph& g,
                  const std::string& out, int iterations, double theta) {
  const uint32_t n = g.num_nodes();
  switch (algo) {
    case WsAlgo::kSssp:
      expect_near_vectors(Sssp::reference(g, 0, iterations),
                          Sssp::read_result_imr(cluster, out, n), 1e-12);
      break;
    case WsAlgo::kConComp:
      EXPECT_EQ(ConComp::reference_rounds(g, iterations),
                ConComp::read_result_imr(cluster, out, n));
      break;
    case WsAlgo::kPrDelta:
      // Same scheme, different float summation order: tight but not exact.
      expect_near_vectors(PageRank::reference_delta(g, iterations, theta),
                          PageRank::read_result_delta(cluster, out, n), 1e-9);
      break;
  }
}

int max_iterations_for(WsAlgo algo) {
  return algo == WsAlgo::kPrDelta ? 80 : 60;
}

// ---------------------------------------------------------------------------
// Clean sweep: 10 seeds x 3 algorithms. Bulk first (count-changed threshold),
// then workset on the same cluster with the distance check disabled entirely
// (threshold -1): the drain is the ONLY way the workset run can converge.
// ---------------------------------------------------------------------------

using EquivParam = std::tuple<uint64_t, WsAlgo>;

class WorksetEquivalence : public ::testing::TestWithParam<EquivParam> {};

TEST_P(WorksetEquivalence, MatchesBulkByteForByte) {
  const auto [seed, algo] = GetParam();
  const Graph g = sweep_graph(algo, seed);
  const auto n = static_cast<int64_t>(g.num_nodes());
  const int tasks = 2 + static_cast<int>(seed % 3);
  const int max_iter = max_iterations_for(algo);

  auto cluster = testutil::free_cluster(3, 4, 4);
  setup_algo(algo, *cluster, g, "in");

  IterJobConf bulk = make_conf(algo, "in", "out_bulk", max_iter, kPrTheta);
  bulk.num_tasks = tasks;
  IterJobConf ws = make_conf(algo, "in", "out_ws", max_iter, kPrTheta);
  ws.num_tasks = tasks;
  ws.workset_mode = true;
  ws.distance_threshold = -1.0;

  InvariantExpectations bulk_expect;
  bulk_expect.expected_parts = tasks;
  bulk_expect.expected_state_records = n;
  auto bulk_run =
      run_chaos_job(*cluster, bulk, FaultSchedule{}, ChannelFaultConfig{},
                    bulk_expect);
  EXPECT_TRUE(bulk_run.violations.empty())
      << ::testing::PrintToString(bulk_run.violations);
  ASSERT_TRUE(bulk_run.report.converged);
  const int k_star = bulk_run.report.iterations_run;
  // Bulk maps every record every iteration — plus up to two speculative
  // iterations' worth: async maps run ahead of the master's decision, so the
  // final full-state push is often consumed before the terminate lands.
  const int64_t bulk_mapped = cluster->metrics().count("imr_map_input_records");
  EXPECT_GE(bulk_mapped, n * k_star);
  EXPECT_LE(bulk_mapped, n * (k_star + 2));

  auto ws_run = run_chaos_job(*cluster, ws, FaultSchedule{},
                              ChannelFaultConfig{},
                              workset_expectations(n, tasks));
  EXPECT_TRUE(ws_run.violations.empty())
      << ::testing::PrintToString(ws_run.violations);
  ASSERT_TRUE(ws_run.report.converged);

  // Same fixpoint, same iteration: the drain fires exactly where the bulk
  // count-changed distance hits zero.
  EXPECT_EQ(ws_run.report.iterations_run, k_star);

  // The property under test: byte-identical final state.
  auto bulk_state = read_state(*cluster, "out_bulk");
  auto ws_state = read_state(*cluster, "out_ws");
  ASSERT_EQ(bulk_state.size(), static_cast<std::size_t>(n));
  EXPECT_EQ(bulk_state, ws_state)
      << "workset final state diverged from bulk (seed=" << seed
      << ", algo=" << algo_name(algo) << ")";

  // Frontier ledger: the map phase visits the full state once (iteration 1),
  // then exactly the previous iteration's changed set. The last iteration's
  // workset is the empty frontier that triggered termination.
  const auto& stats = ws_run.report.iterations;
  ASSERT_EQ(static_cast<int>(stats.size()), k_star);
  EXPECT_EQ(stats.back().workset_size, 0);
  int64_t expected_mapped = n;
  for (std::size_t j = 0; j + 1 < stats.size(); ++j) {
    expected_mapped += stats[j].workset_size;
  }
  const int64_t ws_mapped =
      cluster->metrics().count("imr_map_input_records") - bulk_mapped;
  EXPECT_EQ(ws_mapped, expected_mapped);
  EXPECT_LE(ws_mapped, bulk_mapped);

  check_values(algo, *cluster, g, "out_ws", k_star, kPrTheta);
}

INSTANTIATE_TEST_SUITE_P(
    SeedsByAlgos, WorksetEquivalence,
    ::testing::Combine(
        ::testing::Values(uint64_t{1}, uint64_t{2}, uint64_t{3}, uint64_t{4},
                          uint64_t{5}, uint64_t{6}, uint64_t{7}, uint64_t{8},
                          uint64_t{9}, uint64_t{10}),
        ::testing::Values(WsAlgo::kSssp, WsAlgo::kConComp, WsAlgo::kPrDelta)),
    [](const ::testing::TestParamInfo<EquivParam>& info) {
      return std::string("seed") + std::to_string(std::get<0>(info.param)) +
             "_" + algo_name(std::get<1>(info.param));
    });

// ---------------------------------------------------------------------------
// Chaos sweep: 3 seeds x 5 injection points x 3 algorithms. A clean workset
// run pins the reference bytes and the drain iteration k*; the fault is then
// derived to strike no later than k*-2, so every point fires before the
// frontier empties (and a checkpoint iteration remains in range). The
// recovered run must land on the same drain iteration with the same bytes —
// which in particular proves the checkpointed changed-set restores the exact
// frontier (a superset frontier would double-apply delta-PageRank shares).
// ---------------------------------------------------------------------------

using WsChaosParam = std::tuple<uint64_t, FaultPoint, WsAlgo>;

class WorksetChaosSweep : public ::testing::TestWithParam<WsChaosParam> {};

TEST_P(WorksetChaosSweep, RecoversToIdenticalBytes) {
  const auto [seed, point, algo] = GetParam();
  constexpr int kWorkers = 3;
  constexpr int kTasks = 4;
  const Graph g = chaos_graph(algo, seed);
  const auto n = static_cast<int64_t>(g.num_nodes());

  IterJobConf conf = make_conf(algo, "in", "out",
                               max_iterations_for(algo), kPrThetaChaos);
  conf.num_tasks = kTasks;
  conf.checkpoint_every = 2;
  conf.workset_mode = true;
  conf.distance_threshold = -1.0;

  // Failure-free reference run.
  auto clean = testutil::free_cluster(kWorkers, 4, 4);
  setup_algo(algo, *clean, g, "in");
  auto clean_run = run_chaos_job(*clean, conf, FaultSchedule{},
                                 ChannelFaultConfig{},
                                 workset_expectations(n, kTasks));
  EXPECT_TRUE(clean_run.violations.empty())
      << ::testing::PrintToString(clean_run.violations);
  ASSERT_TRUE(clean_run.report.converged);
  const int k_star = clean_run.report.iterations_run;
  ASSERT_GE(k_star, 4) << "tail chain failed to delay the drain";
  const auto reference = read_state(*clean, "out");

  // Same job under a seed-derived worker death.
  auto faulty = testutil::free_cluster(kWorkers, 4, 4);
  setup_algo(algo, *faulty, g, "in");
  FaultSchedule schedule;
  schedule.add(chaos::derive_fault(seed, kWorkers,
                                   /*max_iteration=*/k_star - 2, point));
  auto result = run_chaos_job(*faulty, conf, schedule, ChannelFaultConfig{},
                              workset_expectations(n, kTasks,
                                                   /*expected_recoveries=*/1));
  EXPECT_TRUE(result.violations.empty())
      << "invariant violations (seed=" << seed
      << ", point=" << fault_point_name(point)
      << ", algo=" << algo_name(algo) << "):\n  "
      << ::testing::PrintToString(result.violations);
  ASSERT_TRUE(result.report.converged);
  EXPECT_EQ(result.report.iterations_run, k_star);
  chaos::expect_all_faults_consumed(*faulty);

  EXPECT_EQ(reference, read_state(*faulty, "out"))
      << "recovered workset run diverged from the failure-free bytes (seed="
      << seed << ", point=" << fault_point_name(point)
      << ", algo=" << algo_name(algo) << ")";
}

INSTANTIATE_TEST_SUITE_P(
    SeedsByPointsByAlgos, WorksetChaosSweep,
    ::testing::Combine(
        ::testing::Values(uint64_t{1}, uint64_t{2}, uint64_t{3}),
        ::testing::Values(FaultPoint::kIterationBoundary, FaultPoint::kMidMap,
                          FaultPoint::kMidShuffle,
                          FaultPoint::kCheckpointWrite,
                          FaultPoint::kStatePush),
        ::testing::Values(WsAlgo::kSssp, WsAlgo::kConComp,
                          WsAlgo::kPrDelta)),
    [](const ::testing::TestParamInfo<WsChaosParam>& info) {
      return std::string("seed") + std::to_string(std::get<0>(info.param)) +
             "_" + fault_point_name(std::get<1>(info.param)) + "_" +
             algo_name(std::get<2>(info.param));
    });

// ---------------------------------------------------------------------------
// Targeted regressions
// ---------------------------------------------------------------------------

// A torn checkpoint has no workset file (the fault strikes before it is
// written). Recovery must restore the previous complete checkpoint — state
// AND changed-set together — and replay from there. Delta-PageRank is the
// algorithm that would notice a wrong frontier: its merge is accumulative,
// so replaying from a full-state frontier would double-apply share mass.
TEST(WorksetRegression, TornCheckpointRestoresExactFrontier) {
  const Graph g = chaos_graph(WsAlgo::kPrDelta, 2);
  const auto n = static_cast<int64_t>(g.num_nodes());

  IterJobConf conf = PageRank::imapreduce_delta("in", "out", 80,
                                               kPrThetaChaos);
  conf.workset_mode = true;
  conf.distance_threshold = -1.0;
  conf.checkpoint_every = 2;

  auto clean = testutil::free_cluster(4, 4, 4);
  PageRank::setup_delta(*clean, g, "in");
  auto clean_run = run_chaos_job(*clean, conf, FaultSchedule{},
                                 ChannelFaultConfig{},
                                 workset_expectations(n));
  ASSERT_TRUE(clean_run.report.converged);
  const auto reference = read_state(*clean, "out");

  auto faulty = testutil::free_cluster(4, 4, 4);
  PageRank::setup_delta(*faulty, g, "in");
  FaultSchedule schedule;
  // First checkpoint-write probe at iteration >= 3 is the k=4 dump; the
  // previous complete checkpoint (with its workset file) is at k=2.
  schedule.add(/*worker=*/1, FaultPoint::kCheckpointWrite, /*at_iteration=*/3);
  auto result = run_chaos_job(*faulty, conf, schedule, ChannelFaultConfig{},
                              workset_expectations(n, /*expected_parts=*/-1,
                                                   /*expected_recoveries=*/1));
  EXPECT_TRUE(result.violations.empty())
      << ::testing::PrintToString(result.violations);
  EXPECT_EQ(faulty->metrics().count("imr_torn_checkpoints"), 1);
  ASSERT_EQ(result.report.rollback_iterations, std::vector<int>{2});
  EXPECT_EQ(result.report.iterations_run, clean_run.report.iterations_run);
  chaos::expect_all_faults_consumed(*faulty);

  EXPECT_EQ(reference, read_state(*faulty, "out"));
}

// Cascading failure during recovery (the test_chaos pattern, under workset):
// worker 1 dies at an iteration boundary; its tasks respawn on worker 0,
// whose kMigration fault then kills it too, pushing everything to worker 2.
// Both the state and the frontier must survive two back-to-back rollbacks.
TEST(WorksetRegression, CascadingFailureDuringRecovery) {
  const Graph g = chaos_graph(WsAlgo::kSssp, 1);
  const auto n = static_cast<int64_t>(g.num_nodes());

  IterJobConf conf = Sssp::imapreduce("in", "out", 60);
  conf.num_tasks = 3;
  conf.checkpoint_every = 2;
  conf.workset_mode = true;
  conf.distance_threshold = -1.0;

  auto clean = testutil::free_cluster(3, 4, 4);
  Sssp::setup(*clean, g, 0, "in");
  auto clean_run = run_chaos_job(*clean, conf, FaultSchedule{},
                                 ChannelFaultConfig{},
                                 workset_expectations(n, 3));
  ASSERT_TRUE(clean_run.report.converged);
  const auto reference = read_state(*clean, "out");

  auto faulty = testutil::free_cluster(3, 4, 4);
  Sssp::setup(*faulty, g, 0, "in");
  FaultSchedule schedule;
  schedule.add(/*worker=*/1, FaultPoint::kIterationBoundary,
               /*at_iteration=*/3);
  schedule.add(/*worker=*/0, FaultPoint::kMigration, /*at_iteration=*/1);
  auto result = run_chaos_job(*faulty, conf, schedule, ChannelFaultConfig{},
                              workset_expectations(n, 3,
                                                   /*expected_recoveries=*/2));
  EXPECT_TRUE(result.violations.empty())
      << ::testing::PrintToString(result.violations);
  ASSERT_EQ(result.report.rollback_iterations.size(), 2u);
  EXPECT_FALSE(faulty->worker_alive(0));
  EXPECT_FALSE(faulty->worker_alive(1));
  EXPECT_TRUE(faulty->worker_alive(2));
  EXPECT_EQ(result.report.iterations_run, clean_run.report.iterations_run);
  chaos::expect_all_faults_consumed(*faulty);

  EXPECT_EQ(reference, read_state(*faulty, "out"));
}

// ---------------------------------------------------------------------------
// InvariantChecker rules 7 and 8 — synthetic reports, both directions.
// ---------------------------------------------------------------------------

RunReport synthetic_report(const std::vector<int64_t>& workset_sizes,
                           int64_t final_state_records) {
  RunReport r;
  r.iterations_run = static_cast<int>(workset_sizes.size());
  r.converged = true;
  for (std::size_t k = 0; k < workset_sizes.size(); ++k) {
    IterationStat st;
    st.iteration = static_cast<int>(k) + 1;
    st.workset_size = workset_sizes[k];
    r.iterations.push_back(st);
  }
  r.final_state_records = final_state_records;
  return r;
}

std::vector<std::string> check_synthetic(const RunReport& report,
                                         const InvariantExpectations& expect) {
  MetricsRegistry metrics;
  return InvariantChecker(metrics).with_report(report).check(expect);
}

// The regression that motivated rule 7's shape: a workset run whose map
// phases visit only a sliver of the keys must NOT trip conservation, as long
// as the final state still holds every record.
TEST(WorksetInvariants, FrontierRunWithFullFinalStateIsClean) {
  RunReport report = synthetic_report({100, 7, 2, 0}, 100);
  auto violations = check_synthetic(report, workset_expectations(100));
  EXPECT_TRUE(violations.empty()) << ::testing::PrintToString(violations);
}

TEST(WorksetInvariants, FinalStateShortfallTripsConservation) {
  RunReport report = synthetic_report({100, 7, 0}, 93);
  auto violations = check_synthetic(report, workset_expectations(100));
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_NE(violations[0].find("final state holds 93"), std::string::npos)
      << violations[0];
}

TEST(WorksetInvariants, BulkRunMustKeepTheSentinel) {
  RunReport report = synthetic_report({100, 7, 0}, 100);
  InvariantExpectations expect;
  expect.expected_state_records = 100;
  expect.workset_mode = false;  // but the report carries workset sizes
  auto violations = check_synthetic(report, expect);
  ASSERT_EQ(violations.size(), 3u);  // one per non-sentinel entry
  EXPECT_NE(violations[0].find("-1 sentinel"), std::string::npos)
      << violations[0];
}

TEST(WorksetInvariants, WorksetRunMissingSizesIsFlagged) {
  RunReport report = synthetic_report({100, -1, 0}, 100);
  auto violations = check_synthetic(report, workset_expectations(100));
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_NE(violations[0].find("missing workset size"), std::string::npos)
      << violations[0];
}

TEST(WorksetInvariants, WorksetLargerThanStateIsFlagged) {
  RunReport report = synthetic_report({150, 7, 0}, 100);
  auto violations = check_synthetic(report, workset_expectations(100));
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_NE(violations[0].find("exceeds"), std::string::npos) << violations[0];
}

TEST(WorksetInvariants, IteratingPastTheDrainIsFlagged) {
  RunReport report = synthetic_report({100, 0, 3}, 100);
  auto violations = check_synthetic(report, workset_expectations(100));
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_NE(violations[0].find("past its fixpoint"), std::string::npos)
      << violations[0];
}

// ---------------------------------------------------------------------------
// Conf validation gates.
// ---------------------------------------------------------------------------

TEST(WorksetConf, RejectsMultiPhaseJobs) {
  IterJobConf conf = Sssp::imapreduce("in", "out", 5);
  conf.workset_mode = true;
  conf.phases.push_back(conf.phases[0]);
  EXPECT_THROW(conf.validate(), ConfigError);
}

TEST(WorksetConf, RejectsOne2AllJobs) {
  IterJobConf conf = Sssp::imapreduce("in", "out", 5);
  conf.workset_mode = true;
  conf.phases[0].mapping = Mapping::kOne2All;
  EXPECT_THROW(conf.validate(), ConfigError);
}

TEST(WorksetConf, RejectsAuxiliaryPhases) {
  IterJobConf conf = Sssp::imapreduce("in", "out", 5);
  conf.workset_mode = true;
  AuxConf aux;
  aux.mapper = conf.phases[0].mapper;
  aux.reducer = conf.phases[0].reducer;
  conf.aux = aux;
  EXPECT_THROW(conf.validate(), ConfigError);
}

TEST(WorksetConf, AcceptsSinglePhaseOne2One) {
  IterJobConf conf = Sssp::imapreduce("in", "out", 5);
  conf.workset_mode = true;
  conf.distance_threshold = -1.0;
  EXPECT_NO_THROW(conf.validate());
}

}  // namespace
}  // namespace imr
