// Codec unit + property tests: round-trips and order preservation.
#include <gtest/gtest.h>

#include <limits>

#include "common/codec.h"
#include "common/rng.h"

namespace imr {
namespace {

TEST(Codec, U32RoundTrip) {
  for (uint32_t v : {0u, 1u, 255u, 256u, 65536u, 4294967295u}) {
    EXPECT_EQ(as_u32(u32_key(v)), v);
  }
}

TEST(Codec, U64RoundTrip) {
  for (uint64_t v : {0ull, 1ull, 1ull << 40, ~0ull}) {
    EXPECT_EQ(as_u64(u64_key(v)), v);
  }
}

TEST(Codec, I64RoundTrip) {
  for (int64_t v : {int64_t{0}, int64_t{-1}, int64_t{1},
                    std::numeric_limits<int64_t>::min(),
                    std::numeric_limits<int64_t>::max()}) {
    Bytes b;
    encode_i64(v, b);
    std::size_t pos = 0;
    EXPECT_EQ(decode_i64(b, pos), v);
  }
}

TEST(Codec, F64RoundTripIncludingSpecials) {
  for (double v : {0.0, -0.0, 1.5, -1.5, 1e300, -1e300,
                   std::numeric_limits<double>::infinity(),
                   -std::numeric_limits<double>::infinity(),
                   std::numeric_limits<double>::denorm_min()}) {
    Bytes b;
    encode_f64(v, b);
    std::size_t pos = 0;
    EXPECT_EQ(decode_f64(b, pos), v);
  }
}

TEST(Codec, U32OrderPreserving) {
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    auto a = static_cast<uint32_t>(rng.next_u64());
    auto b = static_cast<uint32_t>(rng.next_u64());
    EXPECT_EQ(a < b, u32_key(a) < u32_key(b));
  }
}

TEST(Codec, I64OrderPreserving) {
  Rng rng(2);
  for (int i = 0; i < 1000; ++i) {
    auto a = static_cast<int64_t>(rng.next_u64());
    auto b = static_cast<int64_t>(rng.next_u64());
    Bytes ea, eb;
    encode_i64(a, ea);
    encode_i64(b, eb);
    EXPECT_EQ(a < b, ea < eb) << a << " vs " << b;
  }
}

TEST(Codec, F64OrderPreserving) {
  Rng rng(3);
  std::vector<double> vals = {-std::numeric_limits<double>::infinity(),
                              std::numeric_limits<double>::infinity(), 0.0};
  for (int i = 0; i < 500; ++i) {
    vals.push_back(rng.gaussian(0, 1e6));
    vals.push_back(rng.uniform_real(-1, 1));
  }
  for (std::size_t i = 0; i + 1 < vals.size(); ++i) {
    Bytes ea, eb;
    encode_f64(vals[i], ea);
    encode_f64(vals[i + 1], eb);
    EXPECT_EQ(vals[i] < vals[i + 1], ea < eb)
        << vals[i] << " vs " << vals[i + 1];
  }
}

TEST(Codec, VarintRoundTrip) {
  Rng rng(4);
  for (int i = 0; i < 1000; ++i) {
    uint64_t v = rng.next_u64() >> (i % 64);
    Bytes b;
    encode_varint(v, b);
    std::size_t pos = 0;
    EXPECT_EQ(decode_varint(b, pos), v);
    EXPECT_EQ(pos, b.size());
  }
}

TEST(Codec, BytesSegmentRoundTrip) {
  Bytes out;
  encode_bytes("hello", out);
  encode_bytes("", out);
  encode_bytes(Bytes(1000, 'x'), out);
  std::size_t pos = 0;
  EXPECT_EQ(decode_bytes(out, pos), "hello");
  EXPECT_EQ(decode_bytes(out, pos), "");
  EXPECT_EQ(decode_bytes(out, pos), Bytes(1000, 'x'));
  EXPECT_EQ(pos, out.size());
}

TEST(Codec, F64VecRoundTrip) {
  std::vector<double> v = {1.0, -2.5, 0.0, 1e-300};
  Bytes b;
  encode_f64_vec(v, b);
  std::size_t pos = 0;
  EXPECT_EQ(decode_f64_vec(b, pos), v);
}

TEST(Codec, WEdgesRoundTrip) {
  std::vector<WEdge> edges = {{1, 0.5}, {100, 2.25}, {4294967295u, -1.0}};
  Bytes b;
  encode_wedges(edges, b);
  EXPECT_EQ(decode_wedges(b), edges);
}

TEST(Codec, EmptyWEdges) {
  Bytes b;
  encode_wedges({}, b);
  EXPECT_TRUE(decode_wedges(b).empty());
}

TEST(Codec, AdjRoundTrip) {
  std::vector<uint32_t> adj = {0, 5, 17, 4294967295u};
  Bytes b;
  encode_adj(adj, b);
  EXPECT_EQ(decode_adj(b), adj);
}

TEST(Codec, UnderflowThrows) {
  Bytes b = u32_key(7);
  std::size_t pos = 2;
  EXPECT_THROW(decode_u64(b, pos), FormatError);
  EXPECT_THROW(as_u32(Bytes("abc")), FormatError);
  EXPECT_THROW(decode_wedges(Bytes("\x05")), FormatError);
}

TEST(Codec, TrailingBytesThrow) {
  Bytes b = u32_key(7);
  b.push_back('x');
  EXPECT_THROW(as_u32(b), FormatError);
}

TEST(Codec, ByteReaderWalksSequentially) {
  Bytes b;
  encode_u32(42, b);
  encode_f64(2.5, b);
  encode_varint(1000, b);
  encode_bytes("seg", b);
  ByteReader r(b);
  EXPECT_EQ(r.u32(), 42u);
  EXPECT_EQ(r.f64(), 2.5);
  EXPECT_EQ(r.varint(), 1000u);
  EXPECT_EQ(r.bytes(), "seg");
  EXPECT_TRUE(r.done());
}

}  // namespace
}  // namespace imr
