// Typed-adapter tests: codecs and an end-to-end typed SSSP that must match
// the byte-level implementation exactly.
#include <gtest/gtest.h>

#include <limits>

#include "algorithms/sssp.h"
#include "graph/generator.h"
#include "imapreduce/engine.h"
#include "imapreduce/typed.h"
#include "tests/test_util.h"

namespace imr {
namespace {

TEST(TypeCodecs, RoundTrips) {
  EXPECT_EQ(TypeCodec<uint32_t>::decode(TypeCodec<uint32_t>::encode(42u)),
            42u);
  EXPECT_EQ(TypeCodec<uint64_t>::decode(TypeCodec<uint64_t>::encode(1ull << 50)),
            1ull << 50);
  EXPECT_EQ(TypeCodec<double>::decode(TypeCodec<double>::encode(-2.5)), -2.5);
  EXPECT_EQ(TypeCodec<std::string>::decode(
                TypeCodec<std::string>::encode("hello")),
            "hello");
  std::vector<double> dv = {1.0, -3.5};
  EXPECT_EQ(TypeCodec<std::vector<double>>::decode(
                TypeCodec<std::vector<double>>::encode(dv)),
            dv);
  std::vector<WEdge> ev = {{7, 0.5}};
  EXPECT_EQ(TypeCodec<std::vector<WEdge>>::decode(
                TypeCodec<std::vector<WEdge>>::encode(ev)),
            ev);
  std::vector<uint32_t> av = {1, 2, 3};
  EXPECT_EQ(TypeCodec<std::vector<uint32_t>>::decode(
                TypeCodec<std::vector<uint32_t>>::encode(av)),
            av);
}

TEST(TypeCodecs, KeyEncodingIsOrderPreserving) {
  EXPECT_LT(TypeCodec<uint32_t>::encode(3), TypeCodec<uint32_t>::encode(300));
  EXPECT_LT(TypeCodec<double>::encode(-1.0), TypeCodec<double>::encode(2.0));
}

TEST(TypedApi, TypedSsspMatchesByteLevelImplementation) {
  constexpr double kInf = std::numeric_limits<double>::infinity();

  auto cluster = testutil::free_cluster();
  LogNormalGraphSpec spec;
  spec.num_nodes = 400;
  spec.seed = 107;
  Graph g = generate_lognormal_graph(spec);
  Sssp::setup(*cluster, g, 0, "sssp");

  // The same algorithm as Sssp::imapreduce, written against the typed API.
  IterJobConf conf;
  conf.name = "typed-sssp";
  conf.state_path = "sssp/state";
  conf.output_path = "typed_out";
  conf.max_iterations = 6;

  PhaseConf phase;
  phase.static_path = "sssp/static";
  phase.mapper =
      typed_iter_mapper<uint32_t, double, std::vector<WEdge>, uint32_t,
                        double>(
          [](uint32_t u, double d, const std::vector<WEdge>* edges,
             TypedEmitter<uint32_t, double>& out) {
            if (d != kInf && edges != nullptr) {
              for (const WEdge& e : *edges) out.emit(e.dst, d + e.weight);
            }
            out.emit(u, d);
          });
  phase.reducer = typed_iter_reducer<uint32_t, double, uint32_t, double>(
      [](uint32_t u, const std::vector<double>& values,
         TypedEmitter<uint32_t, double>& out) {
        double best = kInf;
        for (double v : values) best = std::min(best, v);
        out.emit(u, best);
      },
      [](uint32_t, const double* prev, const double& cur) {
        if (prev == nullptr) return 1.0;
        return *prev == cur ? 0.0 : 1.0;
      });
  conf.phases.push_back(std::move(phase));

  IterativeEngine engine(*cluster);
  engine.run(conf);
  auto typed_result = Sssp::read_result_imr(*cluster, "typed_out",
                                            g.num_nodes());

  engine.run(Sssp::imapreduce("sssp", "byte_out", 6));
  auto byte_result = Sssp::read_result_imr(*cluster, "byte_out",
                                           g.num_nodes());
  EXPECT_EQ(typed_result, byte_result);
}

TEST(TypedApi, DecodeRejectsTrailingGarbage) {
  Bytes enc = TypeCodec<std::vector<double>>::encode({1.0});
  enc.push_back('x');
  EXPECT_THROW(TypeCodec<std::vector<double>>::decode(enc), FormatError);
}

}  // namespace
}  // namespace imr
