// Record-path equivalence properties: the overhauled sort / group / join /
// combine primitives must be indistinguishable from the implementations they
// replaced. Each test pits the new code against a VERBATIM copy of the old
// one over generated corpora that stress the tricky inputs: duplicate keys,
// empty keys, keys absent from the static data, and keys sharing a >8-byte
// prefix (so the prefix fast path ties and must fall back correctly).
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "common/codec.h"
#include "common/rng.h"
#include "imapreduce/static_store.h"
#include "mapreduce/engine.h"
#include "mapreduce/shuffle_util.h"
#include "tests/test_util.h"

namespace imr {
namespace {

// --- Verbatim pre-overhaul implementations (the oracles) --------------------

void sort_records_reference(KVVec& records, bool sort_values) {
  if (sort_values) {
    std::sort(records.begin(), records.end());
  } else {
    std::stable_sort(records.begin(), records.end(),
                     [](const KV& a, const KV& b) { return a.key < b.key; });
  }
}

void for_each_group_reference(
    const KVVec& sorted,
    const std::function<void(const Bytes& key,
                             const std::vector<Bytes>& values)>& fn) {
  std::size_t i = 0;
  std::vector<Bytes> values;
  while (i < sorted.size()) {
    std::size_t j = i;
    values.clear();
    while (j < sorted.size() && sorted[j].key == sorted[i].key) {
      values.push_back(sorted[j].value);
      ++j;
    }
    fn(sorted[i].key, values);
    i = j;
  }
}

const Bytes* lower_bound_join(const KVVec& static_sorted, const Bytes& key) {
  auto it = std::lower_bound(
      static_sorted.begin(), static_sorted.end(), key,
      [](const KV& kv, const Bytes& k) { return kv.key < k; });
  if (it == static_sorted.end() || it->key != key) return nullptr;
  return &it->value;
}

// --- Corpus generation ------------------------------------------------------

// A deliberately nasty key mix: dup-heavy numeric keys, empty keys, short
// (<8 byte) keys, and long keys whose first 12 bytes are shared so the
// 8-byte prefix cannot distinguish them.
Bytes nasty_key(Rng& rng, std::size_t n) {
  const uint64_t r = rng.next_u64();
  switch (r % 5) {
    case 0:
      return u64_key(r % (n / 4 + 1));  // duplicate-heavy
    case 1:
      return Bytes();  // empty key
    case 2:
      return u64_key(r).substr(0, 1 + r % 7);  // shorter than the prefix
    case 3:
      return Bytes("shared-prefix") + u64_key(r % (n / 8 + 1));
    default:
      return u64_key(r);
  }
}

KVVec nasty_corpus(uint64_t seed, std::size_t n) {
  Rng rng(seed);
  KVVec out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    Bytes key = nasty_key(rng, n);
    out.emplace_back(std::move(key), f64_value(static_cast<double>(i)));
  }
  return out;
}

void expect_identical(const KVVec& a, const KVVec& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].key, b[i].key) << "record " << i;
    EXPECT_EQ(a[i].value, b[i].value) << "record " << i;
  }
}

// --- Sort -------------------------------------------------------------------

TEST(RecordPathSort, MatchesReferenceAcrossCorpora) {
  // Sizes straddle the prefix-sort threshold (64) on purpose.
  for (std::size_t n : {0u, 1u, 2u, 63u, 64u, 65u, 500u, 4096u}) {
    for (uint64_t seed : {1u, 2u, 3u}) {
      for (bool sort_values : {false, true}) {
        KVVec expected = nasty_corpus(seed, n);
        KVVec actual = expected;
        sort_records_reference(expected, sort_values);
        sort_records(actual, sort_values);
        expect_identical(expected, actual);
      }
    }
  }
}

TEST(RecordPathSort, KeyOnlySortOfSortedInputIsIdentity) {
  // The one2all fast path skips the re-sort when the buffer is already
  // key-sorted; that is only sound if sorting sorted input is a no-op.
  KVVec records = nasty_corpus(7, 2000);
  sort_records(records, /*sort_values=*/false);
  KVVec again = records;
  sort_records(again, /*sort_values=*/false);
  expect_identical(records, again);
  EXPECT_TRUE(std::is_sorted(
      records.begin(), records.end(),
      [](const KV& a, const KV& b) { return a.key < b.key; }));
}

TEST(RecordPathSort, PrefixCollisionsFallBackToFullCompare) {
  // All keys share a 16-byte prefix: every prefix comparison ties.
  Rng rng(11);
  KVVec records;
  for (int i = 0; i < 1000; ++i) {
    records.emplace_back(Bytes("0123456789abcdef") + u64_key(rng.next_u64() % 50),
                         f64_value(static_cast<double>(i)));
  }
  KVVec expected = records;
  sort_records_reference(expected, true);
  sort_records(records, true);
  expect_identical(expected, records);
}

// --- Grouping ---------------------------------------------------------------

using GroupList = std::vector<std::pair<Bytes, std::vector<Bytes>>>;

GroupList reference_groups(const KVVec& sorted) {
  GroupList out;
  for_each_group_reference(
      sorted, [&](const Bytes& key, const std::vector<Bytes>& values) {
        out.emplace_back(key, values);
      });
  return out;
}

TEST(RecordPathGroup, CursorViewMatchesReference) {
  for (std::size_t n : {0u, 1u, 100u, 3000u}) {
    KVVec sorted = nasty_corpus(21, n);
    sort_records(sorted, true);
    GroupList expected = reference_groups(sorted);

    GroupList actual;
    GroupCursor groups(sorted);
    GroupValues vals;
    while (groups.next()) {
      actual.emplace_back(groups.key(), vals.view(groups));
      EXPECT_EQ(groups.size(), actual.back().second.size());
    }
    EXPECT_EQ(expected, actual);
  }
}

TEST(RecordPathGroup, CursorTakeMatchesReference) {
  KVVec sorted = nasty_corpus(22, 3000);
  sort_records(sorted, true);
  GroupList expected = reference_groups(sorted);

  GroupList actual;
  GroupCursor groups(sorted);
  GroupValues vals;
  while (groups.next()) {
    // take() moves values out of `sorted`; keys stay intact for the cursor.
    actual.emplace_back(groups.key(), vals.take(sorted, groups));
  }
  EXPECT_EQ(expected, actual);
}

TEST(RecordPathGroup, CompatEntryStillCopies) {
  KVVec sorted = nasty_corpus(23, 500);
  sort_records(sorted, true);
  KVVec before = sorted;
  GroupList expected = reference_groups(sorted);
  GroupList actual;
  for_each_group(sorted,
                 [&](const Bytes& key, const std::vector<Bytes>& values) {
                   actual.emplace_back(key, values);
                 });
  EXPECT_EQ(expected, actual);
  expect_identical(before, sorted);  // buffer untouched
}

// --- Static join index ------------------------------------------------------

TEST(RecordPathJoin, IndexMatchesLowerBound) {
  for (uint64_t seed : {31u, 32u, 33u}) {
    KVVec static_data = nasty_corpus(seed, 2000);
    sort_records(static_data, /*sort_values=*/false);
    StaticStore store;
    store.build(static_data);  // copy: the vector doubles as the oracle

    Rng rng(seed + 100);
    // Present keys, absent keys, and the empty key all probe identically.
    std::vector<Bytes> probes;
    for (const KV& kv : static_data) probes.push_back(kv.key);
    for (int i = 0; i < 2000; ++i) probes.push_back(nasty_key(rng, 2000));
    probes.push_back(Bytes());

    for (const Bytes& key : probes) {
      const Bytes* expected = lower_bound_join(static_data, key);
      const Bytes* actual = store.find(key);
      ASSERT_EQ(expected == nullptr, actual == nullptr) << "key probe";
      if (expected) {
        EXPECT_EQ(*expected, *actual);
      }
    }
  }
}

TEST(RecordPathJoin, EmptyStoreFindsNothing) {
  StaticStore store;
  EXPECT_TRUE(store.empty());
  EXPECT_EQ(store.find("anything"), nullptr);
  store.build(KVVec{});
  EXPECT_EQ(store.find(Bytes()), nullptr);
}

TEST(RecordPathJoin, DuplicateKeysResolveToFirstSortedRecord) {
  KVVec static_data;
  static_data.emplace_back(u64_key(5), f64_value(1.0));
  static_data.emplace_back(u64_key(5), f64_value(2.0));
  static_data.emplace_back(u64_key(9), f64_value(3.0));
  StaticStore store;
  store.build(static_data);
  ASSERT_NE(store.find(u64_key(5)), nullptr);
  EXPECT_EQ(*store.find(u64_key(5)), f64_value(1.0));
  EXPECT_EQ(*store.find(u64_key(9)), f64_value(3.0));
  EXPECT_EQ(store.find(u64_key(6)), nullptr);
}

// --- Combining --------------------------------------------------------------

// Order-sensitive combiner: records the exact value sequence it was fed, so
// any within-key reordering shows up in the output bytes.
CombineFn concat_combiner() {
  return [](const Bytes& key, const std::vector<Bytes>& values, KVVec& out) {
    Bytes all;
    for (const Bytes& v : values) {
      all += v;
      all += '|';
    }
    out.emplace_back(key, std::move(all));
  };
}

TEST(RecordPathCombine, SortedPathMatchesOldSortPlusGroupPipeline) {
  for (uint64_t seed : {41u, 42u}) {
    KVVec input = nasty_corpus(seed, 3000);
    CombineFn fn = concat_combiner();

    KVVec expected_buf = input;
    sort_records_reference(expected_buf, true);
    KVVec expected;
    for_each_group_reference(
        expected_buf, [&](const Bytes& key, const std::vector<Bytes>& values) {
          fn(key, values, expected);
        });

    KVVec actual = input;
    std::size_t saved = combine_records(actual, /*deterministic=*/true, fn);
    expect_identical(expected, actual);
    EXPECT_EQ(saved, input.size() - actual.size());
  }
}

TEST(RecordPathCombine, HashedPreservesWithinKeyArrivalOrder) {
  // The hashed path must feed each key the same value sequence a STABLE
  // key-only sort would have: that is what makes it byte-equivalent once the
  // reduce side re-sorts. Compare per-key outputs against that reference.
  for (uint64_t seed : {51u, 52u}) {
    KVVec input = nasty_corpus(seed, 3000);
    CombineFn fn = concat_combiner();

    KVVec ref_buf = input;
    sort_records_reference(ref_buf, /*sort_values=*/false);  // stable
    std::map<Bytes, Bytes> expected;
    for_each_group_reference(
        ref_buf, [&](const Bytes& key, const std::vector<Bytes>& values) {
          KVVec one;
          fn(key, values, one);
          for (KV& kv : one) expected[key] = std::move(kv.value);
        });

    KVVec actual_buf = input;
    std::size_t saved = combine_hashed(actual_buf, fn);
    EXPECT_EQ(saved, input.size() - actual_buf.size());
    ASSERT_EQ(expected.size(), actual_buf.size());
    for (const KV& kv : actual_buf) {
      ASSERT_TRUE(expected.count(kv.key));
      EXPECT_EQ(expected[kv.key], kv.value);
    }

    // First-appearance key order: the first occurrence index in the input
    // must be increasing across the hashed output.
    std::map<Bytes, std::size_t> first_at;
    for (std::size_t i = 0; i < input.size(); ++i) {
      first_at.emplace(input[i].key, i);
    }
    std::size_t prev = 0;
    bool first = true;
    for (const KV& kv : actual_buf) {
      std::size_t at = first_at[kv.key];
      if (!first) {
        EXPECT_GT(at, prev);
      }
      prev = at;
      first = false;
    }
  }
}

TEST(RecordPathCombine, EmptyBufferIsNoop) {
  KVVec empty;
  EXPECT_EQ(combine_records(empty, true, concat_combiner()), 0u);
  EXPECT_EQ(combine_records(empty, false, concat_combiner()), 0u);
  EXPECT_TRUE(empty.empty());
}

// --- Engine-level equivalence -----------------------------------------------

// A classic job whose final output must be byte-identical whether the
// map-side combiner runs the sorted path (deterministic_reduce on) or the
// hash path (off), and whether a combiner runs at all.
TEST(RecordPathEngine, CombinerPathChoiceDoesNotChangeJobOutput) {
  auto cluster = testutil::free_cluster();
  Rng rng(61);
  KVVec in;
  for (uint32_t i = 0; i < 400; ++i) {
    in.emplace_back(u32_key(i), u64_key(rng.next_u64() % 32));
  }
  cluster->dfs().write_file("in", in, 0, nullptr);

  MapperFactory fanout = make_mapper(
      [](const Bytes&, const Bytes& value, Emitter& out) {
        // Dup-heavy: 32 distinct intermediate keys.
        out.emit(value, u64_key(1));
      });
  ReducerFactory summer = make_reducer(
      [](const Bytes& key, const std::vector<Bytes>& values, Emitter& out) {
        uint64_t n = 0;
        for (const Bytes& v : values) {
          std::size_t pos = 0;
          n += decode_u64(v, pos);
        }
        out.emit(key, u64_key(n));
      });

  auto run = [&](bool combiner, bool deterministic, const std::string& out) {
    JobConf job;
    job.set_input("in", fanout);
    job.output_path = out;
    job.reducer = summer;
    if (combiner) job.combiner = summer;
    job.deterministic_reduce = deterministic;
    MapReduceEngine engine(*cluster);
    engine.run_job(job);
    std::map<Bytes, Bytes> result;
    for (const auto& part : resolve_input_paths(cluster->dfs(), out)) {
      for (const KV& kv : cluster->dfs().read_all(part, -1, nullptr)) {
        result[kv.key] = kv.value;
      }
    }
    return result;
  };

  auto plain = run(false, true, "out_plain");
  EXPECT_EQ(plain, run(true, true, "out_sorted_combine"));
  EXPECT_EQ(plain, run(true, false, "out_hashed_combine"));
  EXPECT_EQ(plain, run(false, false, "out_plain_nondet"));
}

}  // namespace
}  // namespace imr
