// TraceRecorder tests: recorder mechanics (gating, rings, track binding),
// Chrome-JSON export validity, and engine integration — a traced SSSP run
// must produce per-iteration spans on every persistent task, stack-correct
// nesting per track, paired reduce->map flow events, and a byte-identical
// event multiset across same-seed runs. Chaos runs must surface fault
// instants and rollback/checkpoint/recovery spans.
#include <gtest/gtest.h>

#include <cctype>
#include <cstdlib>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <tuple>
#include <vector>

#include "algorithms/sssp.h"
#include "graph/generator.h"
#include "imapreduce/engine.h"
#include "metrics/trace.h"
#include "tests/chaos_harness.h"
#include "tests/test_util.h"

namespace imr {
namespace {

// Arms the recorder for one test and guarantees a clean slate afterwards —
// the recorder is a process singleton, so tests must not leak state into
// each other.
struct TraceGuard {
  explicit TraceGuard(
      std::size_t ring_capacity = TraceRecorder::kDefaultRingCapacity) {
    TraceRecorder::instance().reset();
    TraceRecorder::instance().enable(ring_capacity);
  }
  ~TraceGuard() {
    TraceRecorder::instance().disable();
    TraceRecorder::instance().reset();
  }
};

// ---------------------------------------------------------------------------
// Minimal validating JSON parser (syntax only). The export must be loadable
// by Perfetto, which starts with being well-formed JSON.
// ---------------------------------------------------------------------------

class JsonChecker {
 public:
  explicit JsonChecker(const std::string& s) : s_(s) {}

  bool valid() {
    skip_ws();
    if (!value()) return false;
    skip_ws();
    return pos_ == s_.size();
  }

 private:
  bool value() {
    if (pos_ >= s_.size()) return false;
    switch (s_[pos_]) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }
  bool object() {
    ++pos_;  // '{'
    skip_ws();
    if (peek() == '}') { ++pos_; return true; }
    while (true) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (peek() != ':') return false;
      ++pos_;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == '}') { ++pos_; return true; }
      return false;
    }
  }
  bool array() {
    ++pos_;  // '['
    skip_ws();
    if (peek() == ']') { ++pos_; return true; }
    while (true) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == ']') { ++pos_; return true; }
      return false;
    }
  }
  bool string() {
    if (peek() != '"') return false;
    ++pos_;
    while (pos_ < s_.size() && s_[pos_] != '"') {
      if (s_[pos_] == '\\') {
        ++pos_;
        if (pos_ >= s_.size()) return false;
      }
      ++pos_;
    }
    if (pos_ >= s_.size()) return false;
    ++pos_;  // closing quote
    return true;
  }
  bool number() {
    std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
            s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
            s_[pos_] == '+' || s_[pos_] == '-')) {
      ++pos_;
    }
    return pos_ > start;
  }
  bool literal(const char* lit) {
    for (const char* p = lit; *p != '\0'; ++p, ++pos_) {
      if (pos_ >= s_.size() || s_[pos_] != *p) return false;
    }
    return true;
  }
  char peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }
  void skip_ws() {
    while (pos_ < s_.size() &&
           std::isspace(static_cast<unsigned char>(s_[pos_]))) {
      ++pos_;
    }
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

// ---------------------------------------------------------------------------
// Recorder mechanics
// ---------------------------------------------------------------------------

TEST(TraceRecorder, DisabledRecordsNothing) {
  auto& rec = TraceRecorder::instance();
  rec.reset();
  ASSERT_FALSE(TraceRecorder::enabled());
  rec.begin_thread_track("ghost", 0);
  rec.span_begin("a", 10);
  rec.instant("b", 20);
  rec.span_end("a", 30);
  for (const auto& t : rec.snapshot()) EXPECT_TRUE(t.events.empty());
  rec.reset();
}

TEST(TraceRecorder, RecordsSpansInstantsInOrder) {
  TraceGuard guard;
  auto& rec = TraceRecorder::instance();
  rec.begin_thread_track("t0", 2);
  rec.span_begin("work", 100, /*iter=*/3, /*gen=*/1);
  rec.instant("tick", 150, 3);
  rec.span_end("work", 200);

  auto tracks = rec.snapshot();
  const TraceRecorder::TrackSnapshot* t0 = nullptr;
  for (const auto& t : tracks) {
    if (t.label == "t0") t0 = &t;
  }
  ASSERT_NE(t0, nullptr);
  EXPECT_EQ(t0->pid, 2);
  EXPECT_EQ(t0->dropped, 0);
  ASSERT_EQ(t0->events.size(), 3u);
  EXPECT_EQ(t0->events[0].type, TraceEventType::kSpanBegin);
  EXPECT_STREQ(t0->events[0].name, "work");
  EXPECT_EQ(t0->events[0].ts_ns, 100);
  EXPECT_EQ(t0->events[0].iter, 3);
  EXPECT_EQ(t0->events[0].gen, 1);
  EXPECT_EQ(t0->events[1].type, TraceEventType::kInstant);
  EXPECT_EQ(t0->events[2].type, TraceEventType::kSpanEnd);
  EXPECT_EQ(t0->events[2].ts_ns, 200);
}

TEST(TraceRecorder, TrackReuseAndRestore) {
  TraceGuard guard;
  auto& rec = TraceRecorder::instance();
  auto prev = rec.begin_thread_track("driver", 0);
  rec.instant("a", 1);
  // Same label+pid: the binding is reused, no second "driver" track.
  rec.begin_thread_track("driver", 0);
  rec.instant("b", 2);
  // Different label: fresh track; restoring puts events back on "driver".
  auto saved = rec.begin_thread_track("nested", 1);
  rec.instant("c", 3);
  rec.set_thread_track(saved);
  rec.instant("d", 4);
  rec.set_thread_track(prev);

  int driver_tracks = 0;
  for (const auto& t : rec.snapshot()) {
    if (t.label == "driver") {
      ++driver_tracks;
      ASSERT_EQ(t.events.size(), 3u);
      EXPECT_STREQ(t.events[0].name, "a");
      EXPECT_STREQ(t.events[1].name, "b");
      EXPECT_STREQ(t.events[2].name, "d");
    } else if (t.label == "nested") {
      ASSERT_EQ(t.events.size(), 1u);
      EXPECT_STREQ(t.events[0].name, "c");
    }
  }
  EXPECT_EQ(driver_tracks, 1);
}

TEST(TraceRecorder, RingOverwritesOldestAndCountsDrops) {
  TraceGuard guard(/*ring_capacity=*/4);
  auto& rec = TraceRecorder::instance();
  rec.begin_thread_track("small", 0);
  for (int i = 0; i < 10; ++i) rec.instant("e", i);

  for (const auto& t : rec.snapshot()) {
    if (t.label != "small") continue;
    EXPECT_EQ(t.dropped, 6);
    ASSERT_EQ(t.events.size(), 4u);
    // Oldest-first after the wrap: timestamps 6..9.
    for (int i = 0; i < 4; ++i) EXPECT_EQ(t.events[i].ts_ns, 6 + i);
  }
}

TEST(TraceRecorder, ResetDropsAllTracks) {
  TraceGuard guard;
  auto& rec = TraceRecorder::instance();
  rec.begin_thread_track("gone", 0);
  rec.instant("x", 1);
  rec.reset();
  EXPECT_TRUE(rec.snapshot().empty());
  // The thread's cached binding is stale after reset; recording re-registers
  // an anonymous track rather than scribbling on freed state.
  rec.instant("y", 2);
  auto tracks = rec.snapshot();
  ASSERT_EQ(tracks.size(), 1u);
  EXPECT_EQ(tracks[0].label, "thread");
  ASSERT_EQ(tracks[0].events.size(), 1u);
  EXPECT_STREQ(tracks[0].events[0].name, "y");
}

TEST(TraceRecorder, SpanRaiiGatesAtConstruction) {
  TraceRecorder::instance().reset();
  VClock vt;
  vt.advance(SimDuration(1000));
  {
    // Built while disabled: must record nothing even though tracing turns on
    // before the destructor runs.
    TraceSpan s("late", vt);
    TraceRecorder::instance().enable();
  }
  for (const auto& t : TraceRecorder::instance().snapshot()) {
    EXPECT_TRUE(t.events.empty());
  }
  TraceRecorder::instance().disable();
  TraceRecorder::instance().reset();
}

// ---------------------------------------------------------------------------
// Chrome trace-event JSON export
// ---------------------------------------------------------------------------

TEST(TraceExport, EmitsValidChromeJson) {
  TraceGuard guard;
  auto& rec = TraceRecorder::instance();
  rec.begin_thread_track("master", -1);
  rec.span_begin("job", 1000);
  rec.flow_start("shuffle", 7, 1500, 2);
  rec.counter("queue_depth", 1600, 3);
  rec.instant("terminate", 1700, 2);
  rec.flow_end("shuffle", 7, 1800, 2);
  rec.span_end("job", 2000);

  std::ostringstream os;
  rec.export_chrome_json(os);
  std::string json = os.str();

  EXPECT_TRUE(JsonChecker(json).valid()) << json;
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  // Metadata names the process/thread; the master maps to json pid 0.
  EXPECT_NE(json.find("\"process_name\""), std::string::npos);
  EXPECT_NE(json.find("\"thread_name\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"B\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"E\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"s\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"f\""), std::string::npos);
  EXPECT_NE(json.find("\"bp\":\"e\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"C\""), std::string::npos);
  // Timestamps are microseconds with ns precision: 1000 ns -> 1.000 us.
  EXPECT_NE(json.find("1.000"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Engine integration
// ---------------------------------------------------------------------------

struct TracedRun {
  RunReport report;
  std::vector<TraceRecorder::TrackSnapshot> tracks;
};

// One seeded SSSP run on a fresh free cluster, traced end to end.
TracedRun run_traced_sssp(int iterations, int checkpoint_every = 0) {
  auto cluster = testutil::free_cluster(4, 4, 4);
  Graph g = make_sssp_graph("dblp", 0.001, 7);
  Sssp::setup(*cluster, g, 0, "in");
  IterJobConf conf = Sssp::imapreduce("in", "out", iterations);
  conf.num_tasks = 4;
  conf.checkpoint_every = checkpoint_every;
  TracedRun out;
  out.report = IterativeEngine(*cluster).run(conf);
  out.tracks = TraceRecorder::instance().snapshot();
  return out;
}

bool is_map_task(const TraceRecorder::TrackSnapshot& t) {
  return t.pid >= 0 && t.label.find("/m") != std::string::npos &&
         t.label.find("/aux/") == std::string::npos;
}
bool is_reduce_task(const TraceRecorder::TrackSnapshot& t) {
  return t.pid >= 0 && t.label.find("/r") != std::string::npos &&
         t.label.find("/aux/") == std::string::npos;
}

TEST(TraceEngine, SpanNestingIsStackCorrectPerTrack) {
  TraceGuard guard;
  TracedRun run = run_traced_sssp(/*iterations=*/4, /*checkpoint_every=*/2);
  ASSERT_GT(run.report.iterations_run, 0);
  ASSERT_FALSE(run.tracks.empty());

  for (const auto& t : run.tracks) {
    ASSERT_EQ(t.dropped, 0) << "ring wrapped on " << t.label;
    std::vector<const char*> stack;
    for (const auto& e : t.events) {
      if (e.type == TraceEventType::kSpanBegin) {
        stack.push_back(e.name);
      } else if (e.type == TraceEventType::kSpanEnd) {
        ASSERT_FALSE(stack.empty())
            << "unmatched span end '" << e.name << "' on " << t.label;
        EXPECT_STREQ(stack.back(), e.name) << "on track " << t.label;
        stack.pop_back();
      }
    }
    EXPECT_TRUE(stack.empty())
        << "unclosed span '" << stack.back() << "' on " << t.label;
  }
}

TEST(TraceEngine, EveryTaskHasPerIterationSpans) {
  TraceGuard guard;
  const int kIterations = 4;
  TracedRun run = run_traced_sssp(kIterations);
  ASSERT_EQ(run.report.iterations_run, kIterations);

  int map_tasks = 0, reduce_tasks = 0;
  std::set<int> map_iters_seen, reduce_iters_seen;
  for (const auto& t : run.tracks) {
    if (!is_map_task(t) && !is_reduce_task(t)) continue;
    const char* want = is_map_task(t) ? "map_iter" : "reduce_iter";
    (is_map_task(t) ? map_tasks : reduce_tasks)++;
    std::set<int> iters;
    for (const auto& e : t.events) {
      if (e.type == TraceEventType::kSpanBegin &&
          std::string(e.name) == want) {
        iters.insert(e.iter);
        (is_map_task(t) ? map_iters_seen : reduce_iters_seen).insert(e.iter);
      }
    }
    // Every persistent task iterates every decided iteration.
    for (int k = 1; k <= run.report.iterations_run; ++k) {
      EXPECT_TRUE(iters.count(k))
          << t.label << " has no " << want << " span for iteration " << k;
    }
  }
  EXPECT_EQ(map_tasks, 4);
  EXPECT_EQ(reduce_tasks, 4);
  // The master decided each iteration and said so.
  std::set<int> decided;
  for (const auto& t : run.tracks) {
    for (const auto& e : t.events) {
      if (e.type == TraceEventType::kInstant &&
          std::string(e.name) == "iteration_decided") {
        decided.insert(e.iter);
      }
    }
  }
  for (int k = 1; k <= kIterations; ++k) EXPECT_TRUE(decided.count(k));
}

TEST(TraceEngine, FlowEventsPairAcrossTasks) {
  TraceGuard guard;
  const int kIterations = 4;
  TracedRun run = run_traced_sssp(kIterations);
  ASSERT_EQ(run.report.iterations_run, kIterations);

  std::multiset<int64_t> starts;
  std::set<int64_t> ends;
  std::set<int> reduce_to_map_iters;
  for (const auto& t : run.tracks) {
    for (const auto& e : t.events) {
      if (e.type == TraceEventType::kFlowStart) {
        starts.insert(e.value);
        if (std::string(e.name) == "reduce_to_map") {
          reduce_to_map_iters.insert(e.iter);
        }
      } else if (e.type == TraceEventType::kFlowEnd) {
        // A message is received exactly once.
        EXPECT_TRUE(ends.insert(e.value).second)
            << "flow id " << e.value << " received twice";
      }
    }
  }
  EXPECT_FALSE(ends.empty()) << "no flow arrows recorded at all";
  // Every receive matches exactly one send. (Dangling sends are legal — a
  // message can still sit in a queue when the run tears down.)
  for (int64_t id : ends) {
    EXPECT_EQ(starts.count(id), 1u) << "flow id " << id;
  }
  // The reduce->map loop is the paper's defining edge. Iteration k's reduce
  // ships state tagged for iteration k+1 (engine.cpp: out_iter = k + 1), so
  // every iteration after the first must have been FED by such a flow.
  for (int k = 2; k <= kIterations; ++k) {
    EXPECT_TRUE(reduce_to_map_iters.count(k))
        << "no reduce_to_map flow feeding iteration " << k;
  }
}

// The determinism contract: same seed, same config => same span/instant
// multiset per (normalized) track. Flow ids and counter samples are excluded
// — ids are handed out in thread arrival order; the EVENTS compared are the
// semantic timeline. The job tag's "#N" process-global counter suffix is
// normalized away.
std::string normalize_label(const std::string& label) {
  std::string out;
  for (std::size_t i = 0; i < label.size(); ++i) {
    out.push_back(label[i]);
    if (label[i] == '#') {
      while (i + 1 < label.size() &&
             std::isdigit(static_cast<unsigned char>(label[i + 1]))) {
        ++i;
      }
    }
  }
  return out;
}

using SemanticEvent = std::tuple<std::string, int, std::string, int, int>;

std::map<std::string, std::multiset<SemanticEvent>> semantic_events(
    const std::vector<TraceRecorder::TrackSnapshot>& tracks) {
  std::map<std::string, std::multiset<SemanticEvent>> out;
  for (const auto& t : tracks) {
    std::string label = normalize_label(t.label);
    for (const auto& e : t.events) {
      if (e.type != TraceEventType::kSpanBegin &&
          e.type != TraceEventType::kSpanEnd &&
          e.type != TraceEventType::kInstant) {
        continue;
      }
      out[label].insert(SemanticEvent(label, static_cast<int>(e.type),
                                      e.name, e.iter, e.gen));
    }
  }
  return out;
}

TEST(TraceEngine, SameSeedRunsProduceIdenticalSemanticEvents) {
  TraceGuard guard;
  TracedRun a = run_traced_sssp(/*iterations=*/3);
  TraceRecorder::instance().reset();
  TracedRun b = run_traced_sssp(/*iterations=*/3);

  EXPECT_EQ(a.report.iterations_run, b.report.iterations_run);
  auto ea = semantic_events(a.tracks);
  auto eb = semantic_events(b.tracks);
  ASSERT_EQ(ea.size(), eb.size());
  for (const auto& [label, events] : ea) {
    auto it = eb.find(label);
    ASSERT_NE(it, eb.end()) << "track " << label << " missing in second run";
    EXPECT_EQ(events.size(), it->second.size()) << "on track " << label;
    EXPECT_TRUE(events == it->second)
        << "event multiset differs on track " << label;
  }
}

TEST(TraceEngine, ExportedEngineTraceIsValidJson) {
  TraceGuard guard;
  TracedRun run = run_traced_sssp(/*iterations=*/3, /*checkpoint_every=*/2);
  ASSERT_EQ(run.report.iterations_run, 3);

  std::ostringstream os;
  TraceRecorder::instance().export_chrome_json(os);
  std::string json = os.str();
  EXPECT_GT(json.size(), 1000u);
  EXPECT_TRUE(JsonChecker(json).valid());
  EXPECT_NE(json.find("map_iter"), std::string::npos);
  EXPECT_NE(json.find("reduce_iter"), std::string::npos);
  EXPECT_NE(json.find("checkpoint"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Chaos integration: a worker death must show up as a fault instant on the
// dying task's timeline, with rollback spans on the survivors and a recovery
// span on the master.
// ---------------------------------------------------------------------------

TEST(TraceChaos, FaultInstantsAndRecoverySpansAppear) {
  // Make sure the harness does not try to export trace files here.
  ::unsetenv("IMR_TRACE");
  TraceGuard guard;

  auto cluster = testutil::free_cluster(3, 4, 4);
  Graph g = make_sssp_graph("dblp", 0.001, 5);
  Sssp::setup(*cluster, g, 0, "in");
  IterJobConf conf = Sssp::imapreduce("in", "out", /*max_iterations=*/6);
  conf.num_tasks = 4;
  conf.checkpoint_every = 2;

  FaultSchedule schedule;
  FaultEvent e;
  e.worker = 1;
  e.at_iteration = 3;
  e.point = FaultPoint::kMidMap;
  schedule.add(e);

  InvariantExpectations expect;
  expect.expected_recoveries = 1;
  expect.expected_parts = 4;
  auto result = chaos::run_chaos_job(*cluster, conf, schedule,
                                     ChannelFaultConfig{}, expect);
  EXPECT_TRUE(result.violations.empty())
      << ::testing::PrintToString(result.violations);

  bool fault_instant = false, failure_instant = false;
  bool rollback_span = false, checkpoint_span = false, recovery_span = false;
  for (const auto& t : TraceRecorder::instance().snapshot()) {
    for (const auto& ev : t.events) {
      std::string name = ev.name;
      if (ev.type == TraceEventType::kInstant) {
        if (name == "fault:mid_map") fault_instant = true;
        if (name == "worker_failure") failure_instant = true;
      } else if (ev.type == TraceEventType::kSpanBegin) {
        if (name == "rollback") rollback_span = true;
        if (name == "checkpoint") checkpoint_span = true;
        if (name == "recovery") recovery_span = true;
      }
    }
  }
  EXPECT_TRUE(fault_instant) << "no fault:mid_map instant recorded";
  EXPECT_TRUE(failure_instant) << "no worker_failure instant recorded";
  EXPECT_TRUE(rollback_span) << "no rollback span recorded";
  EXPECT_TRUE(checkpoint_span) << "no checkpoint span recorded";
  EXPECT_TRUE(recovery_span) << "no recovery span on the master track";
}

}  // namespace
}  // namespace imr
