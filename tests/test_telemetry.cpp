// Telemetry suite — the iteration-telemetry subsystem end to end.
//
// The load-bearing properties:
//   * conservation — the worker x worker traffic matrix mirrors every
//     MetricsRegistry charge byte-for-byte (invariant 10), and keeps doing
//     so through seeded worker deaths, rollbacks, and migrations;
//   * determinism — same-seed fault-free runs export byte-identical
//     telemetry JSONL outside the duration fields (virtual durations track
//     per-flow network contention, which depends on the real thread
//     schedule; every byte, count, and sequence field is bit-reproducible);
//   * evidence quality — an injected hot key is named by the merged
//     SpaceSaving sketches, a deliberately slowed worker is named by the
//     straggler ranking, and rollbacks leave no duplicate iteration
//     records;
//   * windowing — per-epoch session reports (RunReport::capture_delta)
//     tile: the epoch deltas sum to the cumulative close() report.
#include <gtest/gtest.h>

#include <regex>
#include <sstream>
#include <string>
#include <vector>

#include "algorithms/pagerank.h"
#include "algorithms/sssp.h"
#include "cluster/fault_schedule.h"
#include "common/codec.h"
#include "graph/generator.h"
#include "imapreduce/conf.h"
#include "imapreduce/engine.h"
#include "metrics/invariants.h"
#include "metrics/metrics.h"
#include "metrics/telemetry.h"
#include "tests/chaos_harness.h"
#include "tests/test_util.h"

namespace imr {
namespace {

using chaos::run_chaos_job;

// ---------------------------------------------------------------------------
// Histogram percentile interpolation (companion pins to test_metrics).
// ---------------------------------------------------------------------------

TEST(HistogramPercentile, SingleSampleReportsBucketMidpoint) {
  Histogram h;
  h.record(5);  // bucket [4, 8)
  EXPECT_DOUBLE_EQ(h.percentile(50), 6.0);
  EXPECT_DOUBLE_EQ(h.percentile(99), 6.0);
}

TEST(HistogramPercentile, EmptyAndZeroBucket) {
  Histogram h;
  EXPECT_DOUBLE_EQ(h.percentile(50), 0.0);
  h.record(0);  // bucket 0 has no width
  EXPECT_DOUBLE_EQ(h.percentile(50), 0.0);
}

TEST(HistogramPercentile, SpreadsMultiSampleBucketEvenly) {
  Histogram h;
  h.record(4);
  h.record(7);  // both in [4, 8): ranks sit at 1/4 and 3/4 of the width
  EXPECT_DOUBLE_EQ(h.percentile(50), 5.0);
  EXPECT_DOUBLE_EQ(h.percentile(100), 7.0);
}

// ---------------------------------------------------------------------------
// SpaceSaving sketch
// ---------------------------------------------------------------------------

TEST(SpaceSaving, ExactUnderCapacity) {
  SpaceSaving s(8);
  s.offer("a", 3);
  s.offer("b", 2);
  s.offer("a", 1);
  auto top = s.top();
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0].key, "a");
  EXPECT_EQ(top[0].count, 4);
  EXPECT_EQ(top[0].error, 0);
  EXPECT_EQ(top[1].key, "b");
  EXPECT_EQ(top[1].count, 2);
  EXPECT_EQ(top[1].error, 0);
  EXPECT_EQ(s.total(), 6);
}

TEST(SpaceSaving, EvictionInheritsMinCount) {
  SpaceSaving s(2);
  s.offer("a");
  s.offer("a");
  s.offer("b");
  s.offer("c");  // evicts b (min count 1); c inherits count 1 as error
  auto top = s.top();
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0].key, "a");
  EXPECT_EQ(top[0].count, 2);
  EXPECT_EQ(top[1].key, "c");
  EXPECT_EQ(top[1].count, 2);  // inherited 1 + its own 1
  EXPECT_EQ(top[1].error, 1);
  EXPECT_EQ(s.total(), 4);
}

TEST(SpaceSaving, HeavyHitterGuaranteeAndErrorBound) {
  // One key at frequency 200 in a stream of N = 240 with capacity k = 8:
  // 200 > N/k = 30, so "hot" must survive, with error <= N/k.
  SpaceSaving s(8);
  for (int i = 0; i < 40; ++i) s.offer("cold" + std::to_string(i));
  for (int i = 0; i < 200; ++i) s.offer("hot");
  ASSERT_EQ(s.total(), 240);
  auto top = s.top();
  ASSERT_FALSE(top.empty());
  EXPECT_EQ(top[0].key, "hot");
  EXPECT_GE(top[0].count, 200);
  EXPECT_LE(top[0].error, 240 / 8);
  EXPECT_LE(top[0].count - top[0].error, 200);
}

TEST(SpaceSaving, MergeIsCommutative) {
  SpaceSaving a(4), b(4);
  for (int i = 0; i < 30; ++i) a.offer("k" + std::to_string(i % 7));
  for (int i = 0; i < 30; ++i) b.offer("k" + std::to_string((i * 3) % 11));
  SpaceSaving ab = a, ba = b;
  ab.merge(b);
  ba.merge(a);
  auto ta = ab.top(), tb = ba.top();
  ASSERT_EQ(ta.size(), tb.size());
  for (std::size_t i = 0; i < ta.size(); ++i) {
    EXPECT_EQ(ta[i].key, tb[i].key);
    EXPECT_EQ(ta[i].count, tb[i].count);
    EXPECT_EQ(ta[i].error, tb[i].error);
  }
  EXPECT_EQ(ab.total(), 60);
}

// ---------------------------------------------------------------------------
// End-to-end telemetry over real runs. The recorder gate is process-global,
// so the fixture arms it and clears recorded runs around every test.
// ---------------------------------------------------------------------------

class TelemetryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    TelemetryRecorder::instance().reset();
    TelemetryRecorder::instance().enable();
  }
  void TearDown() override {
    TelemetryRecorder::instance().disable();
    TelemetryRecorder::instance().reset();
  }
};

TEST_F(TelemetryTest, CleanRunMatrixConservesAndRecordsIterations) {
  auto cluster = testutil::costed_cluster();
  Graph g = make_pagerank_graph("google", 0.0005, 7);
  PageRank::setup(*cluster, g, "in");
  IterJobConf conf = PageRank::imapreduce("in", "out", g.num_nodes(), 5);
  conf.num_tasks = 4;
  RunReport report = IterativeEngine(*cluster).run(conf);

  auto violations = InvariantChecker(cluster->metrics())
                        .with_report(report)
                        .with_traffic_matrix(cluster->telemetry().snapshot_matrix())
                        .check();
  EXPECT_TRUE(violations.empty()) << ::testing::PrintToString(violations);

  auto runs = TelemetryRecorder::instance().runs();
  ASSERT_EQ(runs.size(), 1u);
  const RunTelemetry& rt = runs[0];
  EXPECT_EQ(rt.job, conf.name);
  EXPECT_EQ(rt.workers, 4);
  EXPECT_EQ(rt.tasks, 4);
  EXPECT_EQ(rt.iterations_run, 5);
  ASSERT_EQ(rt.iters.size(), 5u);
  for (std::size_t k = 0; k < rt.iters.size(); ++k) {
    const IterTelemetry& it = rt.iters[k];
    EXPECT_EQ(it.iteration, static_cast<int>(k) + 1);
    EXPECT_GT(it.vt_ms, 0.0);
    EXPECT_GT(it.map_ms, 0.0);
    EXPECT_GT(it.reduce_ms, 0.0);
    EXPECT_GT(it.queue_hwm, 0);
    EXPECT_GE(it.straggler_task, 0);
    EXPECT_GE(it.straggler_worker, 0);
    EXPECT_GT(it.bytes[static_cast<int>(TrafficCategory::kShuffle)], 0);
    // All 4 tasks reported a duration and a resident-state estimate.
    EXPECT_EQ(it.task_ms.size(), 4u);
    EXPECT_EQ(it.state_bytes.size(), 4u);
    for (const auto& [task, bytes] : it.state_bytes) EXPECT_GT(bytes, 0);
  }
  // Static stores were measured (PageRank keeps adjacency lists resident).
  EXPECT_GT(rt.static_bytes, 0);
  ASSERT_EQ(rt.static_bytes_per_task.size(), 4u);
  // Hot-key profile exists and its sample total matches the partition sum.
  EXPECT_FALSE(rt.hot_keys.empty());
  int64_t part_sum = 0;
  for (int64_t p : rt.partition_records) part_sum += p;
  EXPECT_EQ(part_sum, rt.hot_key_samples);
  EXPECT_GE(rt.skew, 1.0);
}

TEST_F(TelemetryTest, DisabledGateRecordsNothing) {
  TelemetryRecorder::instance().disable();
  auto cluster = testutil::costed_cluster();
  Graph g = make_pagerank_graph("google", 0.0005, 7);
  PageRank::setup(*cluster, g, "in");
  IterJobConf conf = PageRank::imapreduce("in", "out", g.num_nodes(), 3);
  conf.num_tasks = 4;
  IterativeEngine(*cluster).run(conf);
  EXPECT_TRUE(TelemetryRecorder::instance().runs().empty());
  // The fabric/DFS probes were gated off: the matrix stayed empty even
  // though the registry charged plenty of traffic.
  TrafficMatrixSnapshot m = cluster->telemetry().snapshot_matrix();
  EXPECT_EQ(m.category_bytes(TrafficCategory::kShuffle), 0);
  EXPECT_GT(cluster->metrics().traffic_bytes(TrafficCategory::kShuffle), 0);
}

// Seeded worker deaths at different injection points: the matrix must keep
// mirroring the registry through kill, rollback, respawn, and re-run
// (run_chaos_job attaches the matrix snapshot whenever telemetry is armed,
// arming invariant 10 on every case).
TEST_F(TelemetryTest, ChaosDeathSweepConservesMatrix) {
  for (uint64_t seed : {1u, 2u, 3u}) {
    for (FaultPoint point :
         {FaultPoint::kIterationBoundary, FaultPoint::kMidShuffle,
          FaultPoint::kStatePush}) {
      TelemetryRecorder::instance().reset();
      auto cluster = testutil::free_cluster(3, 4, 4);
      Graph g = make_sssp_graph("dblp", 0.001, 5);
      Sssp::setup(*cluster, g, 0, "in");
      IterJobConf conf = Sssp::imapreduce("in", "out", 7);
      conf.num_tasks = 4;
      conf.checkpoint_every = 2;
      FaultSchedule schedule;
      schedule.add(chaos::derive_fault(seed, 3, /*max_iteration=*/5, point));
      InvariantExpectations expect;
      expect.expected_recoveries = 1;
      auto result = run_chaos_job(*cluster, conf, schedule,
                                  ChannelFaultConfig{}, expect);
      EXPECT_TRUE(result.violations.empty())
          << "seed=" << seed << " point=" << fault_point_name(point) << ":\n  "
          << ::testing::PrintToString(result.violations);

      // Rollback hygiene: the recorded iterations read as one consecutive
      // 1..N sequence — the rollback truncated the in-flight records.
      auto runs = TelemetryRecorder::instance().runs();
      ASSERT_EQ(runs.size(), 1u);
      ASSERT_EQ(runs[0].iters.size(),
                static_cast<std::size_t>(runs[0].iterations_run));
      for (std::size_t k = 0; k < runs[0].iters.size(); ++k) {
        EXPECT_EQ(runs[0].iters[k].iteration, static_cast<int>(k) + 1)
            << "seed=" << seed << " point=" << fault_point_name(point);
      }
    }
  }
}

// Load balancing migrates a task pair off the slow worker mid-run; the
// matrix must conserve through the migration handoff (we do not assert a
// migration happened — that is timing-dependent — only that telemetry never
// diverges from the registry when one does).
TEST_F(TelemetryTest, MigrationRunConservesMatrix) {
  auto cluster = testutil::costed_cluster();
  cluster->set_worker_speed(1, 0.25);
  Graph g = make_pagerank_graph("google", 0.0005, 7);
  PageRank::setup(*cluster, g, "in");
  IterJobConf conf = PageRank::imapreduce("in", "out", g.num_nodes(), 6);
  conf.num_tasks = 4;
  conf.load_balancing = true;
  conf.checkpoint_every = 2;
  RunReport report = IterativeEngine(*cluster).run(conf);
  auto violations =
      InvariantChecker(cluster->metrics())
          .with_report(report)
          .with_traffic_matrix(cluster->telemetry().snapshot_matrix())
          .check();
  EXPECT_TRUE(violations.empty()) << ::testing::PrintToString(violations);
}

// Masks the duration-valued fields of an export. Virtual durations are
// charged per network flow against the flows concurrently in flight, so they
// depend on the real thread schedule; everything else — iteration sequences,
// byte buckets, matrix cells, sketches, state sizes — must reproduce
// bit-for-bit across same-seed fault-free runs. (Under injected faults even
// byte fields can split differently: peers racing a mid-shuffle death may or
// may not land their sends before the rollback. Conservation under faults is
// covered by ChaosDeathSweepConserves.)
std::string mask_durations(const std::string& jsonl) {
  static const std::regex kDurations(
      "\"(vt_ms|map_ms|reduce_ms)\":[-0-9.eE+]+|"
      "\"straggler\":\\{[^}]*\\}|"
      "\"task_ms\":\\[[^\\]]*\\]");
  return std::regex_replace(jsonl, kDurations, "#");
}

TEST_F(TelemetryTest, SameSeedRunsExportIdenticalJsonlOutsideDurations) {
  auto run_once = [] {
    TelemetryRecorder::instance().reset();
    auto cluster = testutil::costed_cluster(3, 4, 4);
    Graph g = make_pagerank_graph("google", 0.0003, 21);
    PageRank::setup(*cluster, g, "in");
    IterJobConf conf = PageRank::imapreduce("in", "out", g.num_nodes(), 6);
    conf.num_tasks = 4;
    conf.checkpoint_every = 2;
    IterativeEngine(*cluster).run(conf);
    std::ostringstream os;
    TelemetryRecorder::instance().export_jsonl(os);
    return os.str();
  };
  const std::string first = run_once();
  const std::string second = run_once();
  EXPECT_FALSE(first.empty());
  EXPECT_GT(first.size(), 1000u);  // several iter lines + the run line
  // The mask must have found real material to strip, or it is vacuous.
  const std::string masked = mask_durations(first);
  EXPECT_NE(masked, first);
  EXPECT_NE(masked.find("\"matrix\":"), std::string::npos);
  EXPECT_EQ(masked, mask_durations(second));
}

// A star graph funnels every node's rank share onto node 0: the merged
// sketches must name u32_key(0) as the top hot key, and the partition
// holding it must read as skewed.
TEST_F(TelemetryTest, InjectedHotKeyIsNamed) {
  constexpr uint32_t kNodes = 60;
  Graph g;
  g.adj.resize(kNodes);
  for (uint32_t u = 1; u < kNodes; ++u) g.adj[u].push_back(WEdge{0, 1.0});
  g.adj[0].push_back(WEdge{1, 1.0});

  auto cluster = testutil::free_cluster();
  PageRank::setup(*cluster, g, "in");
  IterJobConf conf = PageRank::imapreduce("in", "out", kNodes, 4);
  conf.num_tasks = 4;
  IterativeEngine(*cluster).run(conf);

  auto runs = TelemetryRecorder::instance().runs();
  ASSERT_EQ(runs.size(), 1u);
  const RunTelemetry& rt = runs[0];
  ASSERT_FALSE(rt.hot_keys.empty());
  EXPECT_EQ(rt.hot_keys[0].key, u32_key(0));
  // 59 in-edges funnel into node 0 every iteration; nothing else comes
  // close. The guaranteed lower bound (count - error) must dominate too.
  EXPECT_GE(rt.hot_keys[0].count, 4 * 59);
  if (rt.hot_keys.size() > 1) {
    EXPECT_GE(rt.hot_keys[0].count - rt.hot_keys[0].error,
              5 * rt.hot_keys[1].count);
  }
  EXPECT_GT(rt.skew, 1.5);
}

// One worker slowed 50x: the straggler ranking must name it (tasks are
// placed round-robin, so worker 1 hosts task 1 of 4 on 4 workers). The
// slowdown is deliberately deep: virtual compute is measured thread-CPU
// time scaled by compute_scale, so a real scheduling hiccup on a fast
// worker shows up as tens of virtual milliseconds — the handicap must
// dwarf that noise for the vt-latest report to be reliably the slow one.
TEST_F(TelemetryTest, SlowedWorkerIsNamedStraggler) {
  auto cluster = testutil::costed_cluster();
  cluster->set_worker_speed(1, 0.02);
  Graph g = make_pagerank_graph("google", 0.0005, 7);
  PageRank::setup(*cluster, g, "in");
  IterJobConf conf = PageRank::imapreduce("in", "out", g.num_nodes(), 5);
  conf.num_tasks = 4;
  RunReport report = IterativeEngine(*cluster).run(conf);
  ASSERT_EQ(report.iterations_run, 5);

  auto runs = TelemetryRecorder::instance().runs();
  ASSERT_EQ(runs.size(), 1u);
  int gated_by_slow = 0;
  for (const IterTelemetry& it : runs[0].iters) {
    if (it.straggler_worker == 1) ++gated_by_slow;
    // The straggler is the report that closed the barrier last; its duration
    // is that task's own, bounded by the phase max (a later-starting,
    // shorter task can be the last to arrive under pipelining).
    ASSERT_GE(it.straggler_task, 0);
    ASSERT_EQ(it.task_ms.count(it.straggler_task), 1u);
    EXPECT_DOUBLE_EQ(it.straggler_ms, it.task_ms.at(it.straggler_task));
    EXPECT_LE(it.straggler_ms, it.reduce_ms + 1e-9);
  }
  EXPECT_GE(gated_by_slow, 4) << "slowed worker gated only " << gated_by_slow
                              << " of 5 iterations";
}

// Session epochs are reported as tiling windows: the converge epoch plus
// each apply_update epoch (RunReport::capture_delta against the epoch base)
// must sum to the cumulative close() report, category by category. The
// windows are gapless — each window's end snapshot is the next window's
// base — but the LAST window can close before a parked map's trailing
// empty-eos shuffle envelope lands (the quiesce ack barrier covers the
// reduces, not a map speculatively opening the next iteration), so the
// shuffle comparison tolerates a few stray envelopes; reduce-to-map pushes
// all precede the reduce acks and must tile exactly.
TEST_F(TelemetryTest, SessionEpochReportsTile) {
  auto cluster = testutil::free_cluster();
  Graph g0 = make_sssp_graph("dblp", 0.001, 5);
  Sssp::setup(*cluster, g0, 0, "in");
  IterJobConf conf = Sssp::imapreduce("in", "out", /*max_iterations=*/60);
  conf.num_tasks = 4;
  conf.workset_mode = true;
  conf.distance_threshold = -1.0;  // drain-converged only

  IterativeEngine engine(*cluster);
  JobSession session = engine.open_session(conf);
  int64_t epoch_shuffle = session.last_report().shuffle_bytes;
  int64_t epoch_r2m = session.last_report().reduce_to_map_bytes;

  // Perturb two edges and reconverge incrementally, twice.
  Graph g = g0;
  for (int round = 0; round < 2; ++round) {
    Graph g1 = g;
    const uint32_t u = static_cast<uint32_t>(1 + round);
    g1.adj[u].push_back(WEdge{(u + 7) % g1.num_nodes(), 1.0});
    const RunReport ep = session.apply_update(Sssp::static_delta(g, g1));
    EXPECT_GE(ep.shuffle_bytes, 0);
    epoch_shuffle += ep.shuffle_bytes;
    epoch_r2m += ep.reduce_to_map_bytes;
    g = std::move(g1);
  }
  const RunReport total = session.close();
  EXPECT_LE(epoch_shuffle, total.shuffle_bytes);
  EXPECT_LE(total.shuffle_bytes - epoch_shuffle, 1024)
      << "more than stray eos envelopes leaked past the epoch windows";
  EXPECT_EQ(epoch_r2m, total.reduce_to_map_bytes);
  // The recorded run carries the session depth.
  auto runs = TelemetryRecorder::instance().runs();
  ASSERT_EQ(runs.size(), 1u);
  EXPECT_EQ(runs[0].session_epochs, 2);
  EXPECT_TRUE(runs[0].converged);
}

}  // namespace
}  // namespace imr
