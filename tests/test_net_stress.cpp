// Multi-threaded substrate stress tests.
//
// These exist primarily for the thread-sanitizer CI job (IMR_SANITIZE=thread):
// the fabric's disarmed send fast path, the arm/disarm flag, the shared
// broadcast payload buffers, and the striped metrics counters all have
// lock-free components whose absence-of-races only a sanitizer run can prove.
// The assertions themselves (ledger conservation, exact counts) also hold
// under a plain build, so the suite doubles as a concurrency smoke test.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "metrics/metrics.h"
#include "tests/test_util.h"

namespace imr {
namespace {

NetMessage data_msg(KVVec records, int iteration = 0) {
  NetMessage m;
  m.kind = NetMessage::Kind::kData;
  m.iteration = iteration;
  m.set_records(std::move(records));
  return m;
}

TEST(NetStress, ConcurrentSendersKeepLedgerConserved) {
  auto cluster = testutil::free_cluster();
  constexpr int kThreads = 8;
  constexpr int kSends = 400;
  std::vector<std::shared_ptr<Endpoint>> eps;
  for (int t = 0; t < kThreads; ++t) {
    eps.push_back(
        cluster->fabric().create_endpoint("s" + std::to_string(t), t % 4));
  }

  std::atomic<int64_t> drained{0};
  std::vector<std::thread> receivers;
  for (int t = 0; t < kThreads; ++t) {
    receivers.emplace_back([&, t] {
      VClock vt;
      while (auto m = eps[t]->receive(vt)) {
        drained.fetch_add(static_cast<int64_t>(m->take_records().size()));
      }
    });
  }
  std::vector<std::thread> senders;
  for (int t = 0; t < kThreads; ++t) {
    senders.emplace_back([&, t] {
      VClock vt;
      for (int i = 0; i < kSends; ++i) {
        KVVec records;
        records.emplace_back(Bytes("k"), Bytes("v"));
        // Cross traffic: every sender hits every mailbox in turn.
        cluster->fabric().send(t % 4, vt, *eps[(t + i) % kThreads],
                               data_msg(std::move(records), i),
                               TrafficCategory::kShuffle);
      }
    });
  }
  for (auto& th : senders) th.join();
  for (auto& ep : eps) ep->close();
  for (auto& th : receivers) th.join();

  EXPECT_EQ(drained.load(), int64_t{kThreads} * kSends);
  ChannelStats s = cluster->fabric().channel_stats();
  EXPECT_EQ(s.delivered, int64_t{kThreads} * kSends);
  EXPECT_EQ(s.attempts, s.delivered + s.dropped + s.rejected);
  EXPECT_EQ(s.delivered, s.received + s.discarded);
}

TEST(NetStress, ArmDisarmRacesWithConcurrentSends) {
  auto cluster = testutil::free_cluster();
  auto ep = cluster->fabric().create_endpoint("a", 0);
  std::atomic<bool> stop{false};
  std::atomic<int64_t> sent{0};

  constexpr int kSenders = 4;
  std::vector<std::thread> senders;
  for (int t = 0; t < kSenders; ++t) {
    senders.emplace_back([&] {
      VClock vt;
      while (!stop.load(std::memory_order_relaxed)) {
        NetMessage m;
        m.kind = NetMessage::Kind::kControl;
        cluster->fabric().send(1, vt, *ep, std::move(m),
                               TrafficCategory::kControl);
        sent.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  // Toggle the fault machinery while sends are in flight: the armed flag is
  // the lock-free gate the fast path relies on.
  ChannelFaultConfig armed;
  armed.drop_rate = 0.5;
  armed.seed = 9;
  armed.max_attempts = 3;
  for (int i = 0; i < 200; ++i) {
    cluster->fabric().set_channel_faults(armed);
    cluster->fabric().set_channel_faults(ChannelFaultConfig{});
  }
  stop.store(true);
  for (auto& th : senders) th.join();

  // Transient faults retry until delivery: every send() call must land.
  ep->close();
  VClock rv;
  int64_t got = 0;
  while (ep->receive(rv)) ++got;
  EXPECT_EQ(got, sent.load());
  ChannelStats s = cluster->fabric().channel_stats();
  EXPECT_EQ(s.delivered, sent.load());
  EXPECT_EQ(s.attempts, s.delivered + s.dropped + s.rejected);
  EXPECT_EQ(s.delivered, s.received + s.discarded);
}

TEST(NetStress, SharedBroadcastPayloadsSurviveConcurrentTakes) {
  auto cluster = testutil::free_cluster();
  constexpr int kFanout = 8;
  constexpr int kRounds = 200;
  constexpr int kRecords = 16;
  std::vector<std::shared_ptr<Endpoint>> eps;
  for (int t = 0; t < kFanout; ++t) {
    eps.push_back(
        cluster->fabric().create_endpoint("b" + std::to_string(t), t % 4));
  }

  int64_t copies_before = NetMessage::payload_deep_copies();
  std::atomic<int64_t> records_seen{0};
  std::atomic<int64_t> corrupt{0};
  std::vector<std::thread> receivers;
  for (int t = 0; t < kFanout; ++t) {
    receivers.emplace_back([&, t] {
      VClock vt;
      while (auto m = eps[t]->receive(vt)) {
        // Concurrent take_records on the SAME shared buffer from all
        // receivers: marked fan-out copies must deep-copy, never mutate.
        KVVec got = m->take_records();
        records_seen.fetch_add(static_cast<int64_t>(got.size()));
        for (const auto& kv : got) {
          if (kv.value.size() != 32u) corrupt.fetch_add(1);
        }
      }
    });
  }
  VClock sender;
  for (int r = 0; r < kRounds; ++r) {
    KVVec payload;
    for (int i = 0; i < kRecords; ++i) {
      payload.emplace_back(Bytes(8, 'k'), Bytes(32, 'v'));
    }
    cluster->fabric().broadcast(0, sender, eps, data_msg(std::move(payload), r),
                                TrafficCategory::kBroadcast);
  }
  for (auto& ep : eps) ep->close();
  for (auto& th : receivers) th.join();

  EXPECT_EQ(records_seen.load(), int64_t{kRounds} * kFanout * kRecords);
  EXPECT_EQ(corrupt.load(), 0);
  // Every take on a marked fan-out copy deep-copies — exactly one per
  // delivered message, and none at enqueue time.
  EXPECT_EQ(NetMessage::payload_deep_copies(),
            copies_before + int64_t{kRounds} * kFanout);
  ChannelStats s = cluster->fabric().channel_stats();
  EXPECT_EQ(s.delivered, s.received + s.discarded);
}

TEST(NetStress, StripedCountersMergeExactlyUnderContention) {
  MetricsRegistry metrics;
  constexpr int kThreads = 8;
  constexpr int64_t kIncs = 20000;
  std::atomic<bool> done{false};
  // A reader merging the shards mid-flight must see a monotone prefix: shard
  // counts only grow, and a single reader visits each shard in order.
  std::thread reader([&] {
    int64_t last = 0;
    while (!done.load()) {
      int64_t cur = metrics.count("stress_counter");
      EXPECT_GE(cur, last);
      last = cur;
    }
  });
  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&] {
      for (int64_t i = 0; i < kIncs; ++i) metrics.inc("stress_counter");
      metrics.inc("per_thread_total", kIncs);
    });
  }
  for (auto& th : writers) th.join();
  done.store(true);
  reader.join();

  EXPECT_EQ(metrics.count("stress_counter"), kThreads * kIncs);
  EXPECT_EQ(metrics.count("per_thread_total"), kThreads * kIncs);
  EXPECT_EQ(metrics.named_counters().at("stress_counter"), kThreads * kIncs);
}

}  // namespace
}  // namespace imr
