// Baseline-engine edge cases: empty inputs, silent mappers, multi-record
// reducers, many-small-files packing, mapper flush, chained jobs.
#include <gtest/gtest.h>

#include "common/codec.h"
#include "mapreduce/engine.h"
#include "tests/test_util.h"

namespace imr {
namespace {

MapperFactory identity_mapper() {
  return make_mapper([](const Bytes& k, const Bytes& v, Emitter& out) {
    out.emit(k, v);
  });
}

ReducerFactory identity_reducer() {
  return make_reducer(
      [](const Bytes& k, const std::vector<Bytes>& vs, Emitter& out) {
        for (const Bytes& v : vs) out.emit(k, v);
      });
}

KVVec numbered_records(int n) {
  KVVec recs;
  for (int i = 0; i < n; ++i) {
    recs.emplace_back(u32_key(static_cast<uint32_t>(i)),
                      u64_key(static_cast<uint64_t>(i) * 3));
  }
  return recs;
}

KVVec read_output(Cluster& cluster, const std::string& path) {
  KVVec all;
  for (const auto& part : resolve_input_paths(cluster.dfs(), path)) {
    KVVec p = cluster.dfs().read_all(part, -1, nullptr);
    all.insert(all.end(), p.begin(), p.end());
  }
  std::sort(all.begin(), all.end());
  return all;
}

TEST(MapReduceMore, IdentityJobRoundTrips) {
  auto cluster = testutil::free_cluster();
  KVVec recs = numbered_records(500);
  cluster->dfs().write_file("in", recs, 0, nullptr);
  JobConf job;
  job.set_input("in", identity_mapper());
  job.output_path = "out";
  job.reducer = identity_reducer();
  MapReduceEngine engine(*cluster);
  engine.run_job(job);
  std::sort(recs.begin(), recs.end());
  EXPECT_EQ(read_output(*cluster, "out"), recs);
}

TEST(MapReduceMore, EmptyInputProducesEmptyOutput) {
  auto cluster = testutil::free_cluster();
  cluster->dfs().write_file("in", {}, 0, nullptr);
  JobConf job;
  job.set_input("in", identity_mapper());
  job.output_path = "out";
  job.reducer = identity_reducer();
  MapReduceEngine engine(*cluster);
  JobResult res = engine.run_job(job);
  EXPECT_EQ(res.map_input_records, 0);
  EXPECT_EQ(res.reduce_output_records, 0);
  EXPECT_TRUE(read_output(*cluster, "out").empty());
}

TEST(MapReduceMore, SilentMapperIsFine) {
  auto cluster = testutil::free_cluster();
  cluster->dfs().write_file("in", numbered_records(100), 0, nullptr);
  JobConf job;
  job.set_input("in", make_mapper([](const Bytes&, const Bytes&, Emitter&) {}));
  job.output_path = "out";
  job.reducer = identity_reducer();
  MapReduceEngine engine(*cluster);
  JobResult res = engine.run_job(job);
  EXPECT_EQ(res.map_output_records, 0);
  EXPECT_TRUE(read_output(*cluster, "out").empty());
}

TEST(MapReduceMore, ReducerMayEmitManyRecordsPerKey) {
  auto cluster = testutil::free_cluster();
  cluster->dfs().write_file("in", numbered_records(10), 0, nullptr);
  JobConf job;
  job.set_input("in", identity_mapper());
  job.output_path = "out";
  job.reducer = make_reducer(
      [](const Bytes& k, const std::vector<Bytes>& vs, Emitter& out) {
        for (const Bytes& v : vs) {
          out.emit(k, v);
          out.emit(k + Bytes("#dup"), v);
        }
      });
  MapReduceEngine engine(*cluster);
  JobResult res = engine.run_job(job);
  EXPECT_EQ(res.reduce_output_records, 20);
}

TEST(MapReduceMore, ManySmallFilesPackIntoSlotLimit) {
  // 40 part files on a cluster with 16 map slots: the engine must combine
  // them (CombineFileInputFormat behaviour) instead of refusing.
  auto cluster = testutil::free_cluster(4, 4, 4);
  KVVec expected;
  for (int f = 0; f < 40; ++f) {
    KVVec recs;
    recs.emplace_back(u32_key(static_cast<uint32_t>(f)), Bytes("v"));
    expected.emplace_back(u32_key(static_cast<uint32_t>(f)), Bytes("v"));
    cluster->dfs().write_file("dir/part-" + std::to_string(1000 + f),
                              std::move(recs), f % 4, nullptr);
  }
  JobConf job;
  job.set_input("dir", identity_mapper());
  job.output_path = "out";
  job.reducer = identity_reducer();
  MapReduceEngine engine(*cluster);
  JobResult res = engine.run_job(job);
  EXPECT_EQ(res.map_input_records, 40);
  std::sort(expected.begin(), expected.end());
  EXPECT_EQ(read_output(*cluster, "out"), expected);
}

TEST(MapReduceMore, MapperFlushEmitsPerTaskAggregates) {
  auto cluster = testutil::free_cluster();
  cluster->dfs().write_file("in", numbered_records(64), 0, nullptr);

  class CountingMapper : public Mapper {
   public:
    void map(const Bytes&, const Bytes&, Emitter&) override { ++count_; }
    void flush(Emitter& out) override {
      out.emit(Bytes("total"), u64_key(count_));
    }

   private:
    uint64_t count_ = 0;
  };

  JobConf job;
  job.set_input("in", [] { return std::make_unique<CountingMapper>(); });
  job.output_path = "out";
  job.num_map_tasks = 4;
  job.num_reduce_tasks = 1;
  job.reducer = make_reducer(
      [](const Bytes& k, const std::vector<Bytes>& vs, Emitter& out) {
        uint64_t total = 0;
        for (const Bytes& v : vs) total += as_u64(v);
        out.emit(k, u64_key(total));
      });
  MapReduceEngine engine(*cluster);
  engine.run_job(job);
  KVVec out = read_output(*cluster, "out");
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(as_u64(out[0].value), 64u);
}

TEST(MapReduceMore, SingleReduceTaskCollectsEverything) {
  auto cluster = testutil::free_cluster();
  cluster->dfs().write_file("in", numbered_records(200), 0, nullptr);
  JobConf job;
  job.set_input("in", identity_mapper());
  job.output_path = "out";
  job.num_reduce_tasks = 1;
  job.reducer = identity_reducer();
  MapReduceEngine engine(*cluster);
  engine.run_job(job);
  auto parts = cluster->dfs().list("out/");
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(cluster->dfs().file_records(parts[0]), 200u);
}

TEST(MapReduceMore, NonDeterministicReduceStillCorrectForMin) {
  auto cluster = testutil::free_cluster();
  KVVec recs;
  for (uint32_t i = 0; i < 300; ++i) {
    recs.emplace_back(u32_key(i % 10), f64_value(static_cast<double>(i)));
  }
  cluster->dfs().write_file("in", std::move(recs), 0, nullptr);
  JobConf job;
  job.set_input("in", identity_mapper());
  job.output_path = "out";
  job.deterministic_reduce = false;  // skip value sorting
  job.reducer = make_reducer(
      [](const Bytes& k, const std::vector<Bytes>& vs, Emitter& out) {
        double best = 1e300;
        for (const Bytes& v : vs) best = std::min(best, as_f64(v));
        out.emit(k, f64_value(best));
      });
  MapReduceEngine engine(*cluster);
  engine.run_job(job);
  for (const KV& kv : read_output(*cluster, "out")) {
    EXPECT_EQ(as_f64(kv.value), static_cast<double>(as_u32(kv.key)));
  }
}

TEST(MapReduceMore, ChainedJobsShareNoState) {
  auto cluster = testutil::free_cluster();
  cluster->dfs().write_file("in", numbered_records(50), 0, nullptr);
  MapReduceEngine engine(*cluster);
  JobConf job;
  job.set_input("in", identity_mapper());
  job.output_path = "mid";
  job.reducer = identity_reducer();
  JobResult r1 = engine.run_job(job, 0);

  JobConf job2;
  job2.set_input("mid", identity_mapper());
  job2.output_path = "out";
  job2.reducer = identity_reducer();
  JobResult r2 = engine.run_job(job2, r1.end_vt_ns);
  EXPECT_EQ(read_output(*cluster, "out"), read_output(*cluster, "mid"));
  EXPECT_GE(r2.end_vt_ns, r1.end_vt_ns);
}

}  // namespace
}  // namespace imr
