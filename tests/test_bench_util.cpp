// bench_util harness tests: presets, series math, and formatting.
#include <gtest/gtest.h>

#include "bench_util/harness.h"

namespace imr {
namespace {

TEST(Presets, LocalClusterMatchesPaperSetup) {
  ClusterConfig c = bench::local_cluster_preset();
  EXPECT_EQ(c.num_workers, 4);
  EXPECT_EQ(c.map_slots_per_worker, 2);  // Hadoop default: two per slave
  EXPECT_GT(c.cost.job_init.count(), 0);
}

TEST(Presets, Ec2SlowerThanLocal) {
  ClusterConfig local = bench::local_cluster_preset();
  ClusterConfig ec2 = bench::ec2_preset(20);
  EXPECT_EQ(ec2.num_workers, 20);
  EXPECT_GT(ec2.cost.job_init, local.cost.job_init);
  EXPECT_LT(ec2.cost.net_bandwidth, local.cost.net_bandwidth);
}

TEST(Presets, DataScaleTransformsPerByteCosts) {
  CostModel base = CostModel::local_cluster();
  CostModel scaled = base.scaled_for_data(10.0);
  EXPECT_DOUBLE_EQ(scaled.net_bandwidth, base.net_bandwidth / 10.0);
  EXPECT_DOUBLE_EQ(scaled.dfs_write, base.dfs_write / 10.0);
  EXPECT_DOUBLE_EQ(scaled.compute_scale, base.compute_scale * 10.0);
  EXPECT_EQ(scaled.dfs_block_size, base.dfs_block_size / 10);
  // Fixed costs are size-independent.
  EXPECT_EQ(scaled.job_init, base.job_init);
  EXPECT_EQ(scaled.net_latency, base.net_latency);
}

TEST(Series, FromReportIsCumulativeSeconds) {
  RunReport r;
  for (int k = 1; k <= 3; ++k) {
    IterationStat st;
    st.iteration = k;
    st.wall_ms_end = 1000.0 * k;
    st.init_ms = 200.0;
    r.iterations.push_back(st);
  }
  bench::Series s = bench::series_of("x", r);
  ASSERT_EQ(s.cumulative_sec.size(), 3u);
  EXPECT_DOUBLE_EQ(s.cumulative_sec[0], 1.0);
  EXPECT_DOUBLE_EQ(s.cumulative_sec[2], 3.0);
  EXPECT_DOUBLE_EQ(s.total(), 3.0);

  bench::Series ex = bench::series_ex_init("x", r);
  EXPECT_DOUBLE_EQ(ex.cumulative_sec[0], 0.8);   // 1.0 - 0.2
  EXPECT_DOUBLE_EQ(ex.cumulative_sec[2], 2.4);   // 3.0 - 3*0.2
}

TEST(Series, EmptyReport) {
  RunReport r;
  EXPECT_DOUBLE_EQ(bench::series_of("x", r).total(), 0.0);
}

TEST(Fmt, RatiosAndPercentages) {
  EXPECT_EQ(bench::fmt_ratio(300, 100), "3.00x");
  EXPECT_EQ(bench::fmt_ratio(1, 0), "n/a");
  EXPECT_EQ(bench::fmt_pct(25, 100), "25.0%");
  EXPECT_EQ(bench::fmt_sec(1500), "1.5 s");
}

}  // namespace
}  // namespace imr
