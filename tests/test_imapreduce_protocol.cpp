// Protocol-level engine tests: sequential jobs, endpoint hygiene, counters,
// rollback determinism under adversarial buffer sizes, and PageRank mass
// conservation through the full distributed pipeline.
#include <gtest/gtest.h>

#include <numeric>

#include "algorithms/pagerank.h"
#include "algorithms/sssp.h"
#include "graph/generator.h"
#include "imapreduce/engine.h"
#include "tests/test_util.h"

namespace imr {
namespace {

using testutil::expect_near_vectors;

TEST(ImrProtocol, SequentialJobsOnOneClusterDoNotInterfere) {
  auto cluster = testutil::free_cluster();
  LogNormalGraphSpec spec;
  spec.num_nodes = 200;
  spec.seed = 41;
  Graph g = generate_lognormal_graph(spec);
  Sssp::setup(*cluster, g, 0, "sssp");
  IterativeEngine engine(*cluster);

  auto first = [&] {
    engine.run(Sssp::imapreduce("sssp", "out1", 4));
    return Sssp::read_result_imr(*cluster, "out1", g.num_nodes());
  }();
  for (int round = 0; round < 3; ++round) {
    engine.run(Sssp::imapreduce("sssp", "out2", 4));
    EXPECT_EQ(Sssp::read_result_imr(*cluster, "out2", g.num_nodes()), first);
  }
}

TEST(ImrProtocol, PersistentTaskCountersMatchConfiguration) {
  auto cluster = testutil::free_cluster(4, 4, 4);
  LogNormalGraphSpec spec;
  spec.num_nodes = 100;
  spec.seed = 43;
  Graph g = generate_lognormal_graph(spec);
  Sssp::setup(*cluster, g, 0, "sssp");
  IterJobConf conf = Sssp::imapreduce("sssp", "out", 5);
  conf.num_tasks = 6;
  IterativeEngine engine(*cluster);
  engine.run(conf);
  // Persistent tasks are created once, regardless of iteration count.
  EXPECT_EQ(cluster->metrics().count("imr_persistent_map_tasks"), 6);
  EXPECT_EQ(cluster->metrics().count("imr_persistent_reduce_tasks"), 6);
  EXPECT_EQ(cluster->metrics().count("imr_iterations"), 5);
}

TEST(ImrProtocol, OutputPartFilesCoverKeySpaceDisjointly) {
  auto cluster = testutil::free_cluster();
  LogNormalGraphSpec spec;
  spec.num_nodes = 500;
  spec.seed = 47;
  Graph g = generate_lognormal_graph(spec);
  Sssp::setup(*cluster, g, 0, "sssp");
  IterJobConf conf = Sssp::imapreduce("sssp", "out", 3);
  conf.num_tasks = 4;
  IterativeEngine engine(*cluster);
  engine.run(conf);

  auto parts = cluster->dfs().list("out/");
  EXPECT_EQ(parts.size(), 4u);  // one per pair
  std::set<uint32_t> seen;
  for (const auto& part : parts) {
    for (const KV& kv : cluster->dfs().read_all(part, -1, nullptr)) {
      EXPECT_TRUE(seen.insert(as_u32(kv.key)).second)
          << "key duplicated across part files";
    }
  }
  EXPECT_EQ(seen.size(), g.num_nodes());
}

TEST(ImrProtocol, PageRankMassConservedThroughPipeline) {
  // Every node has out-degree >= 1 in a ring-augmented graph, so total rank
  // must stay exactly 1 through the distributed pipeline.
  Graph g;
  g.adj.resize(64);
  Rng rng(51);
  for (uint32_t u = 0; u < 64; ++u) {
    g.adj[u].push_back(WEdge{(u + 1) % 64, 1.0});
    if (rng.uniform(2) == 0) {
      g.adj[u].push_back(WEdge{static_cast<uint32_t>(rng.uniform(64)), 1.0});
    }
  }
  auto cluster = testutil::free_cluster();
  PageRank::setup(*cluster, g, "pr");
  IterativeEngine engine(*cluster);
  engine.run(PageRank::imapreduce("pr", "out", 64, 8));
  auto ranks = PageRank::read_result_imr(*cluster, "out", 64);
  double total = std::accumulate(ranks.begin(), ranks.end(), 0.0);
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(ImrProtocol, RollbackDeterministicUnderTinyBuffers) {
  // Failure + recovery with buffer_records = 1 maximizes message interleaving
  // and future-iteration stashing; the result must still be exact.
  auto cluster = testutil::free_cluster(4, 4, 4);
  Graph g = make_sssp_graph("dblp", 0.002, 53);
  Sssp::setup(*cluster, g, 0, "sssp");
  IterJobConf conf = Sssp::imapreduce("sssp", "out", 8);
  conf.buffer_records = 1;
  conf.checkpoint_every = 3;
  cluster->schedule_worker_failure(2, 5);
  IterativeEngine engine(*cluster);
  RunReport r = engine.run(conf);
  EXPECT_EQ(r.iterations_run, 8);
  expect_near_vectors(Sssp::reference(g, 0, 8),
                      Sssp::read_result_imr(*cluster, "out", g.num_nodes()),
                      1e-12);
}

TEST(ImrProtocol, UnreachableNodesStayInfinite) {
  // Node cluster {5,6,7} unreachable from 0.
  Graph g;
  g.weighted = true;
  g.adj.resize(8);
  g.adj[0] = {{1, 1.0}, {2, 1.0}};
  g.adj[1] = {{3, 1.0}};
  g.adj[2] = {{4, 1.0}};
  g.adj[5] = {{6, 1.0}};
  g.adj[6] = {{7, 1.0}};
  auto cluster = testutil::free_cluster();
  Sssp::setup(*cluster, g, 0, "sssp");
  IterativeEngine engine(*cluster);
  engine.run(Sssp::imapreduce("sssp", "out", 5));
  auto d = Sssp::read_result_imr(*cluster, "out", 8);
  EXPECT_TRUE(std::isinf(d[5]));
  EXPECT_TRUE(std::isinf(d[6]));
  EXPECT_TRUE(std::isinf(d[7]));
  EXPECT_EQ(d[3], 2.0);
}

TEST(ImrProtocol, UserExceptionInMapperSurfaces) {
  auto cluster = testutil::free_cluster();
  LogNormalGraphSpec spec;
  spec.num_nodes = 50;
  spec.seed = 59;
  Graph g = generate_lognormal_graph(spec);
  Sssp::setup(*cluster, g, 0, "sssp");

  IterJobConf conf = Sssp::imapreduce("sssp", "out", 3);
  conf.phases[0].mapper = make_iter_mapper(
      [](const Bytes&, const Bytes&, const Bytes&, IterEmitter&) {
        throw Error("mapper bug");
      });
  IterativeEngine engine(*cluster);
  EXPECT_THROW(engine.run(conf), Error);
}

TEST(ImrProtocol, UserExceptionInReducerSurfaces) {
  auto cluster = testutil::free_cluster();
  LogNormalGraphSpec spec;
  spec.num_nodes = 50;
  spec.seed = 61;
  Graph g = generate_lognormal_graph(spec);
  Sssp::setup(*cluster, g, 0, "sssp");

  IterJobConf conf = Sssp::imapreduce("sssp", "out", 3);
  conf.phases[0].reducer = make_iter_reducer(
      [](const Bytes&, const std::vector<Bytes>&, IterEmitter&) {
        throw Error("reducer bug");
      });
  IterativeEngine engine(*cluster);
  EXPECT_THROW(engine.run(conf), Error);
}

TEST(ImrProtocol, MissingStatePathFailsFast) {
  auto cluster = testutil::free_cluster();
  IterJobConf conf;
  conf.name = "broken";
  conf.state_path = "does/not/exist";
  conf.output_path = "out";
  PhaseConf phase;
  phase.mapper = make_iter_mapper(
      [](const Bytes&, const Bytes&, const Bytes&, IterEmitter&) {});
  phase.reducer = make_iter_reducer(
      [](const Bytes&, const std::vector<Bytes>&, IterEmitter&) {});
  conf.phases.push_back(std::move(phase));
  IterativeEngine engine(*cluster);
  EXPECT_THROW(engine.run(conf), DfsError);
}

}  // namespace
}  // namespace imr
