// Iterative chain-of-jobs driver tests: chaining, convergence-check jobs,
// cache feeding, multi-stage iterations, and init accounting.
#include <gtest/gtest.h>

#include "algorithms/pagerank.h"
#include "algorithms/sssp.h"
#include "graph/generator.h"
#include "mapreduce/iterative_driver.h"
#include "tests/test_util.h"

namespace imr {
namespace {

using testutil::expect_near_vectors;

Graph test_graph(uint32_t n, uint64_t seed) {
  LogNormalGraphSpec spec;
  spec.num_nodes = n;
  spec.seed = seed;
  return generate_lognormal_graph(spec);
}

TEST(IterativeDriver, FixedIterationsRunExactly) {
  auto cluster = testutil::free_cluster();
  Graph g = test_graph(150, 1);
  Sssp::setup(*cluster, g, 0, "sssp");
  IterativeDriver driver(*cluster);
  RunReport r = driver.run(Sssp::baseline("sssp", "work", 7));
  EXPECT_EQ(r.iterations_run, 7);
  EXPECT_FALSE(r.converged);
  EXPECT_EQ(r.iterations.size(), 7u);
}

TEST(IterativeDriver, ConvergenceCheckStopsEarly) {
  auto cluster = testutil::free_cluster();
  Graph g = test_graph(120, 2);
  Sssp::setup(*cluster, g, 0, "sssp");
  IterativeDriver driver(*cluster);
  RunReport r = driver.run(Sssp::baseline("sssp", "work", 60, 0.5));
  EXPECT_TRUE(r.converged);
  EXPECT_LT(r.iterations_run, 60);
  auto result =
      Sssp::read_result_mr(*cluster, driver.final_output(), g.num_nodes());
  expect_near_vectors(Sssp::reference(g, 0, -1), result, 1e-12);
}

TEST(IterativeDriver, CheckJobAddsJobsAndInitTime) {
  auto cluster = testutil::costed_cluster();
  Graph g = test_graph(100, 3);
  Sssp::setup(*cluster, g, 0, "sssp");
  IterativeDriver driver(*cluster);

  cluster->metrics().reset();
  RunReport plain = driver.run(Sssp::baseline("sssp", "w1", 3));
  int64_t plain_jobs = cluster->metrics().count("jobs_submitted");

  cluster->metrics().reset();
  RunReport checked = driver.run(Sssp::baseline("sssp", "w2", 3, 0.0));
  int64_t checked_jobs = cluster->metrics().count("jobs_submitted");

  EXPECT_EQ(plain_jobs, 3);
  EXPECT_EQ(checked_jobs, 6);  // one extra check job per iteration
  EXPECT_GT(checked.init_wall_ms, plain.init_wall_ms);
  EXPECT_GT(checked.total_wall_ms, plain.total_wall_ms);
}

TEST(IterativeDriver, PerIterationInitMatchesAnalyticCost) {
  auto cluster = testutil::costed_cluster();
  Graph g = test_graph(80, 4);
  Sssp::setup(*cluster, g, 0, "sssp");
  IterativeDriver driver(*cluster);
  RunReport r = driver.run(Sssp::baseline("sssp", "work", 2));
  const CostModel& cost = cluster->cost();
  double expected_ms =
      sim_to_ms(cost.job_init + cost.task_init + cost.job_cleanup);
  for (const auto& it : r.iterations) {
    EXPECT_DOUBLE_EQ(it.init_ms, expected_ms);
  }
  EXPECT_DOUBLE_EQ(r.init_wall_ms, 2 * expected_ms);
}

TEST(IterativeDriver, GcKeepsOnlyRecentOutputs) {
  auto cluster = testutil::free_cluster();
  Graph g = test_graph(60, 5);
  Sssp::setup(*cluster, g, 0, "sssp");
  IterativeDriver driver(*cluster);
  driver.run(Sssp::baseline("sssp", "work", 6));
  EXPECT_TRUE(cluster->dfs().list("work/iter1/").empty());
  EXPECT_TRUE(cluster->dfs().list("work/iter4/").empty());
  EXPECT_FALSE(cluster->dfs().list("work/iter5/").empty());
  EXPECT_FALSE(cluster->dfs().list("work/iter6/").empty());
}

TEST(IterativeDriver, GcDisabledKeepsEverything) {
  auto cluster = testutil::free_cluster();
  Graph g = test_graph(60, 5);
  Sssp::setup(*cluster, g, 0, "sssp");
  IterativeSpec spec = Sssp::baseline("sssp", "work", 4);
  spec.gc_intermediate = false;
  IterativeDriver driver(*cluster);
  driver.run(spec);
  for (int k = 1; k <= 4; ++k) {
    EXPECT_FALSE(
        cluster->dfs().list("work/iter" + std::to_string(k) + "/").empty())
        << k;
  }
}

TEST(IterativeDriver, WallClockIsMonotoneAcrossIterations) {
  auto cluster = testutil::costed_cluster();
  Graph g = test_graph(100, 6);
  PageRank::setup(*cluster, g, "pr");
  IterativeDriver driver(*cluster);
  RunReport r =
      driver.run(PageRank::baseline("pr", "work", g.num_nodes(), 5));
  double prev = 0;
  for (const auto& it : r.iterations) {
    EXPECT_GT(it.wall_ms_end, prev);
    prev = it.wall_ms_end;
  }
  EXPECT_DOUBLE_EQ(r.total_wall_ms, r.iterations.back().wall_ms_end);
}

TEST(IterativeDriver, RejectsIncompleteSpecs) {
  auto cluster = testutil::free_cluster();
  IterativeDriver driver(*cluster);
  IterativeSpec empty;
  EXPECT_THROW(driver.run(empty), Error);

  IterativeSpec no_distance;
  no_distance.initial_input = "x";
  no_distance.work_dir = "w";
  no_distance.set_body(
      make_mapper([](const Bytes&, const Bytes&, Emitter&) {}),
      make_reducer([](const Bytes&, const std::vector<Bytes>&, Emitter&) {}));
  no_distance.distance_threshold = 0.5;  // but no distance fn
  EXPECT_THROW(driver.run(no_distance), Error);
}

}  // namespace
}  // namespace imr
