// Algorithm-level unit tests: codecs, references, and invariants that do not
// need a cluster.
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "algorithms/jacobi.h"
#include "algorithms/kmeans.h"
#include "algorithms/matpower.h"
#include "algorithms/pagerank.h"
#include "algorithms/sssp.h"
#include "graph/generator.h"

namespace imr {
namespace {

TEST(SsspUnit, JoinedCodecRoundTrip) {
  std::vector<WEdge> edges = {{3, 1.5}, {9, 0.25}};
  Bytes enc = Sssp::encode_joined(2.75, edges);
  double d;
  std::vector<WEdge> out;
  Sssp::decode_joined(enc, d, out);
  EXPECT_EQ(d, 2.75);
  EXPECT_EQ(out, edges);
}

TEST(SsspUnit, ReferenceFixpointIsShortestPaths) {
  // Hand-built graph: 0->1 (1), 0->2 (5), 1->2 (1), 2->3 (1).
  Graph g;
  g.weighted = true;
  g.adj = {{{1, 1.0}, {2, 5.0}}, {{2, 1.0}}, {{3, 1.0}}, {}};
  auto d = Sssp::reference(g, 0, -1);
  EXPECT_EQ(d[0], 0.0);
  EXPECT_EQ(d[1], 1.0);
  EXPECT_EQ(d[2], 2.0);
  EXPECT_EQ(d[3], 3.0);
}

TEST(SsspUnit, ReferenceIterationsAreBfsWaves) {
  Graph g;
  g.weighted = true;
  g.adj = {{{1, 1.0}}, {{2, 1.0}}, {{3, 1.0}}, {}};
  auto d1 = Sssp::reference(g, 0, 1);
  EXPECT_EQ(d1[1], 1.0);
  EXPECT_TRUE(std::isinf(d1[2]));
  auto d2 = Sssp::reference(g, 0, 2);
  EXPECT_EQ(d2[2], 2.0);
  EXPECT_TRUE(std::isinf(d2[3]));
}

TEST(PageRankUnit, JoinedCodecRoundTrip) {
  std::vector<uint32_t> adj = {1, 5, 9};
  Bytes enc = PageRank::encode_joined(0.125, adj);
  double r;
  std::vector<uint32_t> out;
  PageRank::decode_joined(enc, r, out);
  EXPECT_EQ(r, 0.125);
  EXPECT_EQ(out, adj);
}

TEST(PageRankUnit, ReferencePreservesMassWithoutDanglingNodes) {
  // Ring graph: every node has out-degree 1, so no rank leaks.
  Graph g;
  g.adj.resize(10);
  for (uint32_t u = 0; u < 10; ++u) g.adj[u] = {{(u + 1) % 10, 1.0}};
  auto r = PageRank::reference(g, 20);
  double total = std::accumulate(r.begin(), r.end(), 0.0);
  EXPECT_NEAR(total, 1.0, 1e-9);
  for (double v : r) EXPECT_NEAR(v, 0.1, 1e-9);  // symmetric graph
}

TEST(PageRankUnit, HigherInDegreeHigherRank) {
  // Star: everyone points at node 0.
  Graph g;
  g.adj.resize(6);
  for (uint32_t u = 1; u < 6; ++u) g.adj[u] = {{0, 1.0}};
  auto r = PageRank::reference(g, 30);
  for (uint32_t u = 1; u < 6; ++u) EXPECT_GT(r[0], r[u]);
}

TEST(KMeansUnit, PartialCodecRoundTrip) {
  Bytes enc = KMeans::encode_partial(42, {1.0, -2.0});
  uint64_t count;
  std::vector<double> sum;
  KMeans::decode_partial(enc, count, sum);
  EXPECT_EQ(count, 42u);
  EXPECT_EQ(sum, (std::vector<double>{1.0, -2.0}));
}

TEST(KMeansUnit, GeneratePointsDeterministicAndShaped) {
  KMeansDataSpec spec;
  spec.num_points = 100;
  spec.dim = 5;
  auto a = KMeans::generate_points(spec);
  auto b = KMeans::generate_points(spec);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.size(), 100u);
  EXPECT_EQ(a[0].size(), 5u);
}

TEST(KMeansUnit, ReferenceConvergesOnSeparatedClusters) {
  KMeansDataSpec spec;
  spec.num_points = 400;
  spec.dim = 2;
  spec.num_clusters = 3;
  spec.spread = 0.02;
  auto points = KMeans::generate_points(spec);
  std::map<uint32_t, std::vector<double>> init;
  for (uint32_t c = 0; c < 3; ++c) init[c] = points[c];
  auto r10 = KMeans::reference(points, init, 10);
  auto r11 = KMeans::reference(points, init, 11);
  // Fixpoint reached: one more iteration changes nothing.
  for (const auto& [cid, c] : r10) {
    for (std::size_t d = 0; d < c.size(); ++d) {
      EXPECT_NEAR(c[d], r11.at(cid)[d], 1e-12);
    }
  }
}

TEST(MatPowerUnit, PairKeyRoundTripAndOrder) {
  uint32_t i, k;
  MatPower::decode_pair_key(MatPower::pair_key(7, 9), i, k);
  EXPECT_EQ(i, 7u);
  EXPECT_EQ(k, 9u);
  // Row-major lexicographic order.
  EXPECT_LT(MatPower::pair_key(1, 9), MatPower::pair_key(2, 0));
}

TEST(MatPowerUnit, ReferenceMatchesManualSquare) {
  Matrix m;
  m.n = 2;
  m.a = {1, 2, 3, 4};
  Matrix sq = MatPower::reference(m, 1);  // M^2
  EXPECT_EQ(sq.at(0, 0), 7);
  EXPECT_EQ(sq.at(0, 1), 10);
  EXPECT_EQ(sq.at(1, 0), 15);
  EXPECT_EQ(sq.at(1, 1), 22);
}

TEST(JacobiUnit, GeneratedSystemIsDiagonallyDominant) {
  JacobiSystem sys = Jacobi::generate(100, 0.1, 3);
  for (uint32_t i = 0; i < sys.n; ++i) {
    double row = 0;
    for (const WEdge& e : sys.off_diag[i]) row += std::abs(e.weight);
    EXPECT_GT(sys.diag[i], row);
  }
}

TEST(JacobiUnit, ReferenceConverges) {
  JacobiSystem sys = Jacobi::generate(80, 0.1, 5);
  auto x = Jacobi::reference(sys, 100);
  for (uint32_t i = 0; i < sys.n; ++i) {
    double lhs = sys.diag[i] * x[i];
    for (const WEdge& e : sys.off_diag[i]) lhs += e.weight * x[e.dst];
    EXPECT_NEAR(lhs, sys.b[i], 1e-8);
  }
}

}  // namespace
}  // namespace imr
