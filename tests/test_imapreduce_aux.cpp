// Auxiliary-phase tests beyond the K-means happy path: reduce-sourced aux
// phases, aux monitoring without termination, multiple aux reducers, and
// configuration guards.
#include <gtest/gtest.h>

#include <atomic>

#include "algorithms/sssp.h"
#include "graph/generator.h"
#include "imapreduce/engine.h"
#include "tests/test_util.h"

namespace imr {
namespace {

Graph aux_graph(uint64_t seed = 83) {
  LogNormalGraphSpec spec;
  spec.num_nodes = 300;
  spec.seed = seed;
  return generate_lognormal_graph(spec);
}

// An aux pipeline that counts records it saw, into a shared atomic (test
// instrumentation only — real aux phases communicate via the signal key).
struct CountingAux {
  std::shared_ptr<std::atomic<int64_t>> seen =
      std::make_shared<std::atomic<int64_t>>(0);

  AuxConf conf(AuxConf::Source source) {
    AuxConf aux;
    aux.source = source;
    auto seen_ptr = seen;
    aux.mapper = make_iter_mapper(
        [seen_ptr](const Bytes& key, const Bytes& value, const Bytes&,
                   IterEmitter& out) {
          seen_ptr->fetch_add(1);
          out.emit(key, value);
        });
    aux.reducer = make_iter_reducer(
        [](const Bytes&, const std::vector<Bytes>&, IterEmitter&) {});
    aux.num_reduce_tasks = 2;
    return aux;
  }
};

TEST(ImrAuxMore, ReduceSourcedAuxSeesEveryStateRecord) {
  auto cluster = testutil::free_cluster();
  Graph g = aux_graph();
  Sssp::setup(*cluster, g, 0, "sssp");

  CountingAux counting;
  IterJobConf conf = Sssp::imapreduce("sssp", "out", 4);
  conf.aux = counting.conf(AuxConf::Source::kReduceOutput);
  IterativeEngine engine(*cluster);
  RunReport r = engine.run(conf);
  EXPECT_EQ(r.iterations_run, 4);
  // Every node's state record per iteration flows through the aux phase.
  EXPECT_EQ(counting.seen->load(),
            static_cast<int64_t>(g.num_nodes()) * 4);
}

TEST(ImrAuxMore, MapSideAuxSeesSideOutputsOnly) {
  auto cluster = testutil::free_cluster();
  Graph g = aux_graph(89);
  Sssp::setup(*cluster, g, 0, "sssp");

  CountingAux counting;
  IterJobConf conf = Sssp::imapreduce("sssp", "out", 3);
  // The SSSP mapper never calls side(): the aux phase sees nothing but the
  // per-iteration EOS markers.
  conf.aux = counting.conf(AuxConf::Source::kMapSideOutput);
  IterativeEngine engine(*cluster);
  RunReport r = engine.run(conf);
  EXPECT_EQ(r.iterations_run, 3);
  EXPECT_EQ(counting.seen->load(), 0);
}

TEST(ImrAuxMore, AuxSignalOnFirstIterationStopsImmediately) {
  auto cluster = testutil::free_cluster();
  Graph g = aux_graph(97);
  Sssp::setup(*cluster, g, 0, "sssp");

  IterJobConf conf = Sssp::imapreduce("sssp", "out", 20);
  AuxConf aux;
  aux.source = AuxConf::Source::kReduceOutput;
  aux.mapper = make_iter_mapper([](const Bytes& key, const Bytes& value,
                                   const Bytes&, IterEmitter& out) {
    out.emit(key, value);
  });
  aux.reducer = make_iter_reducer(
      [](const Bytes&, const std::vector<Bytes>&, IterEmitter& out) {
        out.emit(kTerminateSignalKey, Bytes("now"));
      });
  aux.num_reduce_tasks = 1;
  conf.aux = std::move(aux);

  IterativeEngine engine(*cluster);
  RunReport r = engine.run(conf);
  EXPECT_TRUE(r.converged);
  EXPECT_LE(r.iterations_run, 4);  // signal defers to the next decision
  // Final output exists and matches the state of the last decided iteration.
  auto d = Sssp::read_result_imr(*cluster, "out", g.num_nodes());
  auto expected = Sssp::reference(g, 0, r.iterations_run);
  for (uint32_t u = 0; u < g.num_nodes(); ++u) {
    bool both_inf = std::isinf(expected[u]) && std::isinf(d[u]);
    EXPECT_TRUE(both_inf || expected[u] == d[u]) << u;
  }
}

TEST(ImrAuxMore, AuxKeepsReceivingAcrossRollback) {
  auto cluster = testutil::free_cluster();
  Graph g = aux_graph(101);
  Sssp::setup(*cluster, g, 0, "sssp");
  CountingAux counting;

  IterJobConf conf = Sssp::imapreduce("sssp", "out", 5);
  conf.aux = counting.conf(AuxConf::Source::kReduceOutput);
  conf.checkpoint_every = 1;
  cluster->schedule_fault({/*worker=*/1, FaultPoint::kIterationBoundary,
                           /*at_iteration=*/2});

  IterativeEngine engine(*cluster);
  RunReport r = engine.run(conf);
  cluster->assert_faults_consumed();
  EXPECT_EQ(r.iterations_run, 5);
  ASSERT_EQ(r.rollback_iterations.size(), 1u);
  // After the rollback the main phase re-sends the aux copies under the
  // bumped generation. A generation-unaware aux phase would stash that data
  // forever and stop seeing records at the failure point; a generation-aware
  // one sees at least one full copy of every decided iteration.
  EXPECT_GE(counting.seen->load(),
            static_cast<int64_t>(g.num_nodes()) * 5);
  // The recovered output is still exact.
  auto d = Sssp::read_result_imr(*cluster, "out", g.num_nodes());
  auto expected = Sssp::reference(g, 0, 5);
  testutil::expect_near_vectors(expected, d, 0.0);
}

TEST(ImrAuxMore, AuxSignalStillFiresAfterRecovery) {
  auto cluster = testutil::free_cluster();
  Graph g = aux_graph(107);
  Sssp::setup(*cluster, g, 0, "sssp");

  // Distance-based stopping disabled: the aux signal is the ONLY way this
  // job can converge before the 20-iteration cap.
  IterJobConf conf = Sssp::imapreduce("sssp", "out", 20);
  conf.checkpoint_every = 1;
  auto seen = std::make_shared<std::atomic<int64_t>>(0);
  const int64_t threshold = 4 * static_cast<int64_t>(g.num_nodes());
  AuxConf aux;
  aux.source = AuxConf::Source::kReduceOutput;
  aux.mapper = make_iter_mapper(
      [seen](const Bytes& key, const Bytes& value, const Bytes&,
             IterEmitter& out) {
        seen->fetch_add(1);
        out.emit(key, value);
      });
  aux.reducer = make_iter_reducer(
      [seen, threshold](const Bytes&, const std::vector<Bytes>&,
                        IterEmitter& out) {
        if (seen->load() >= threshold) {
          out.emit(kTerminateSignalKey, Bytes("enough"));
        }
      });
  aux.num_reduce_tasks = 1;
  conf.aux = std::move(aux);
  // The failure hits before the signal threshold can be reached, so the
  // signal must come from a post-rollback aux generation.
  cluster->schedule_fault({/*worker=*/1, FaultPoint::kIterationBoundary,
                           /*at_iteration=*/2});

  IterativeEngine engine(*cluster);
  RunReport r = engine.run(conf);
  cluster->assert_faults_consumed();
  EXPECT_EQ(r.rollback_iterations.size(), 1u);
  // A generation-stuck aux phase would never signal again and the run would
  // grind to the cap unconverged.
  EXPECT_TRUE(r.converged);
  EXPECT_LT(r.iterations_run, 20);
}

TEST(ImrAuxMore, AuxSlotsCountAgainstLimits) {
  // 4 workers x 2 map slots = 8; T=4 main + 4 aux + one phase = fits;
  // T=8 main + 8 aux does not.
  ClusterConfig cfg;
  cfg.num_workers = 4;
  cfg.map_slots_per_worker = 2;
  cfg.reduce_slots_per_worker = 2;
  cfg.cost = CostModel::free();
  Cluster cluster(cfg);
  Graph g = aux_graph(103);
  Sssp::setup(cluster, g, 0, "sssp");
  CountingAux counting;

  IterJobConf conf = Sssp::imapreduce("sssp", "out", 2);
  conf.aux = counting.conf(AuxConf::Source::kReduceOutput);
  conf.num_tasks = 8;
  IterativeEngine engine(cluster);
  EXPECT_THROW(engine.run(conf), ConfigError);

  conf.num_tasks = 4;
  EXPECT_NO_THROW(engine.run(conf));
}

}  // namespace
}  // namespace imr
