// Chaos harness — runs an iterative job under a seeded fault schedule (worker
// deaths at arbitrary injection points) and/or transient channel faults, then
// reconciles the InvariantChecker over the finished run.
//
// Everything is deterministic: the fault schedule derives from a seed
// (FaultSchedule::random or derive_fault), channel drops derive from the
// ChannelFaultConfig seed, and the engine's data results are already
// reproducible — so any failing (seed, point, algorithm) tuple reproduces
// bit-for-bit by re-running the one case (see docs/PROTOCOL.md, "Fault
// injection & chaos testing").
#pragma once

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <string>
#include <vector>

#include "cluster/cluster.h"
#include "cluster/fault_schedule.h"
#include "imapreduce/conf.h"
#include "imapreduce/engine.h"
#include "metrics/invariants.h"
#include "metrics/telemetry.h"
#include "metrics/trace.h"
#include "net/fabric.h"

namespace imr::chaos {

struct ChaosResult {
  RunReport report;
  std::vector<std::string> violations;
};

// Arms `schedule` and `channel` on the cluster, runs the job, and checks the
// invariants. Channel faults are disarmed afterwards so a follow-up job on
// the same cluster runs clean (worker-death events are consumed by the run
// itself; see Cluster::consume_fault).
inline ChaosResult run_chaos_job(Cluster& cluster, const IterJobConf& conf,
                                 const FaultSchedule& schedule,
                                 const ChannelFaultConfig& channel = {},
                                 const InvariantExpectations& expect = {}) {
  cluster.set_fault_schedule(schedule);
  cluster.fabric().set_channel_faults(channel);
  IterativeEngine engine(cluster);
  ChaosResult out;
  out.report = engine.run(conf);
  InvariantChecker checker(cluster.metrics());
  checker.with_channel_stats(cluster.fabric().channel_stats())
      .with_report(out.report);
  // With telemetry armed, the traffic matrix mirrors every registry charge
  // through deaths, rollbacks, and migrations — reconcile it against the
  // Fig-11 totals (invariant 10) on every chaos run.
  if (TelemetryRecorder::enabled()) {
    checker.with_traffic_matrix(cluster.telemetry().snapshot_matrix());
  }
  out.violations = checker.check(expect);
  cluster.fabric().set_channel_faults(ChannelFaultConfig{});
  // With IMR_TRACE=<prefix> set, every chaos run exports its own Perfetto
  // trace — "<prefix>.<conf>.<n>.json" — then clears the recorder so the
  // next run starts on fresh tracks. Fault injections show up as
  // "fault:<point>" instants on the dying task's track (replay a failing
  // seed under IMR_TRACE to *see* the failure and recovery).
  if (const char* prefix = std::getenv("IMR_TRACE");
      prefix != nullptr && *prefix != '\0') {
    static std::atomic<int> trace_seq{0};
    std::string path = std::string(prefix) + "." + conf.name + "." +
                       std::to_string(trace_seq.fetch_add(1)) + ".json";
    TraceRecorder::instance().export_to_file(path);
    TraceRecorder::instance().reset();
  }
  // Same per-run export for telemetry: IMR_TELEMETRY=<prefix> writes
  // "<prefix>.<conf>.<n>.jsonl" (feed it to imr_stat) and resets the
  // recorder so each chaos run's JSONL stands alone.
  if (const char* prefix = std::getenv("IMR_TELEMETRY");
      prefix != nullptr && *prefix != '\0') {
    static std::atomic<int> telemetry_seq{0};
    std::string path = std::string(prefix) + "." + conf.name + "." +
                       std::to_string(telemetry_seq.fetch_add(1)) + ".jsonl";
    TelemetryRecorder::instance().export_to_file(path);
    TelemetryRecorder::instance().reset();
  }
  return out;
}

// Derives one worker-death event from a seed: a deterministic worker in
// [0, num_workers) and iteration in [1, max_iteration], at `point`. Spreads
// the two draws so that nearby seeds explore different (worker, iteration)
// pairs.
inline FaultEvent derive_fault(uint64_t seed, int num_workers,
                               int max_iteration, FaultPoint point) {
  FaultEvent e;
  e.worker = static_cast<int>(((seed * 2654435761u) >> 16) %
                              static_cast<uint64_t>(num_workers));
  e.at_iteration =
      1 + static_cast<int>(((seed * 0x9e3779b97f4a7c15ull) >> 32) %
                           static_cast<uint64_t>(max_iteration));
  e.point = point;
  return e;
}

// Expectations for a workset-mode run over `state_records` keys: arms the
// frontier-aware conservation rule (invariant 7) and the workset ledger
// (invariant 8) on top of the usual channel/recovery checks. Workset map
// phases legitimately transfer fewer records than there are keys, so the
// conservation check binds the *final state*, not per-iteration traffic.
inline InvariantExpectations workset_expectations(int64_t state_records,
                                                  int expected_parts = -1,
                                                  int expected_recoveries = -1) {
  InvariantExpectations expect;
  expect.workset_mode = true;
  expect.expected_state_records = state_records;
  expect.expected_parts = expected_parts;
  expect.expected_recoveries = expected_recoveries;
  return expect;
}

// Post-run hygiene: every scheduled fault must have fired and been consumed.
// A sweep case that leaves events pending was not actually exercised.
inline void expect_all_faults_consumed(Cluster& cluster) {
  EXPECT_EQ(cluster.pending_fault_count(), 0)
      << "scheduled faults never fired";
  EXPECT_NO_THROW(cluster.assert_faults_consumed());
}

}  // namespace imr::chaos
