// Memory-governance / out-of-core suite — DESIGN.md §10.
//
// The load-bearing property: a run with a task memory budget — which sorts
// and spills over-budget buffers to MiniDfs and streams a k-way merge over
// the runs at reduce time — must produce the SAME final state, byte for
// byte, as the unlimited run of the same job, across algorithms, iteration
// modes (bulk, workset, session), and injected worker deaths at the spill
// write itself. Budgets here are deliberately tiny (smaller than one arena
// block), so every buffered batch degrades to disk and every reduce
// iteration runs the merge path.
//
// Also here: MemoryBudget/RecordArena units, the MergeCursor-vs-sort_records
// identity property, the SpillSet ledger (invariant 11: bytes/runs written ==
// read + dropped on every exit path, torn writes included), the conf
// validation gates, and the classic engine's budgeted reduce.
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include "algorithms/concomp.h"
#include "algorithms/pagerank.h"
#include "algorithms/sssp.h"
#include "cluster/fault_schedule.h"
#include "common/arena.h"
#include "common/codec.h"
#include "common/error.h"
#include "common/record_source.h"
#include "common/rng.h"
#include "common/sim_time.h"
#include "dfs/spill.h"
#include "graph/generator.h"
#include "imapreduce/conf.h"
#include "imapreduce/engine.h"
#include "mapreduce/engine.h"
#include "mapreduce/shuffle_util.h"
#include "metrics/invariants.h"
#include "tests/chaos_harness.h"
#include "tests/test_util.h"

namespace imr {
namespace {

using chaos::run_chaos_job;

// Smaller than one arena block: after the first sort maps a block the budget
// is permanently over, so every buffered batch spills. The hostile extreme —
// maximum run counts, maximum merge fan-in.
constexpr int64_t kTinyBudget = 512;

constexpr double kPrTheta = 1e-4;

// ---------------------------------------------------------------------------
// MemoryBudget
// ---------------------------------------------------------------------------

TEST(MemoryBudget, UnlimitedNeverFiresButTracksHwm) {
  MemoryBudget b;  // limit 0
  EXPECT_FALSE(b.limited());
  b.charge(1 << 30);
  EXPECT_FALSE(b.over());
  b.release(1 << 20);
  EXPECT_EQ(b.hwm(), 1 << 30);
  EXPECT_EQ(b.used(), (1 << 30) - (1 << 20));
}

TEST(MemoryBudget, OverOnlyAfterExceedingTheLimit) {
  MemoryBudget b(100);
  EXPECT_TRUE(b.limited());
  b.charge(100);
  EXPECT_FALSE(b.over()) << "at the limit is not over it";
  b.charge(1);
  EXPECT_TRUE(b.over());
  b.release(1);
  EXPECT_FALSE(b.over());
  EXPECT_EQ(b.hwm(), 101);
}

TEST(MemoryBudget, ReleaseClampsAtZero) {
  MemoryBudget b(10);
  b.charge(5);
  b.release(50);
  EXPECT_EQ(b.used(), 0);
  EXPECT_FALSE(b.over());
}

// ---------------------------------------------------------------------------
// RecordArena
// ---------------------------------------------------------------------------

TEST(RecordArena, BlocksArePooledAcrossReset) {
  RecordArena arena;
  for (int i = 0; i < 3; ++i) arena.alloc_array<uint64_t>(5000);  // ~40 KiB
  const std::size_t mapped = arena.block_bytes();
  EXPECT_GE(mapped, 3 * 5000 * sizeof(uint64_t));
  // Same allocation pattern after reset() must not map new blocks.
  for (int round = 0; round < 4; ++round) {
    arena.reset();
    for (int i = 0; i < 3; ++i) arena.alloc_array<uint64_t>(5000);
    EXPECT_EQ(arena.block_bytes(), mapped) << "round " << round;
  }
}

TEST(RecordArena, ChargesAndReleasesTheBudget) {
  MemoryBudget budget(1 << 20);
  {
    RecordArena arena(&budget);
    arena.alloc_array<char>(10);
    EXPECT_EQ(budget.used(), static_cast<int64_t>(arena.block_bytes()));
    EXPECT_GT(budget.used(), 0);
    arena.reset();  // blocks stay mapped — and stay charged
    EXPECT_EQ(budget.used(), static_cast<int64_t>(arena.block_bytes()));
  }
  EXPECT_EQ(budget.used(), 0) << "arena death must release its charge";
  EXPECT_GT(budget.hwm(), 0);
}

TEST(RecordArena, OversizedRequestGetsDedicatedBlock) {
  RecordArena arena;
  const std::size_t big = 3 * RecordArena::kBlockBytes;
  auto* p = arena.alloc_array<char>(big);
  ASSERT_NE(p, nullptr);
  p[0] = 1;
  p[big - 1] = 2;  // whole range writable
  EXPECT_GE(arena.block_bytes(), big);
}

TEST(RecordArena, ArrayAllocationIsAligned) {
  RecordArena arena;
  arena.alloc_array<char>(1);  // misalign the bump pointer
  auto* p = arena.alloc_array<uint64_t>(4);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(p) % alignof(uint64_t), 0u);
}

// ---------------------------------------------------------------------------
// MergeCursor vs sort_records: the identity the out-of-core reduce rests on.
// Records split into chunks IN ARRIVAL ORDER, each chunk sorted the way the
// engines sort runs, merged — must equal sorting the whole buffer, including
// the position tiebreak on exact (key, value) duplicates.
// ---------------------------------------------------------------------------

Bytes nasty_key(Rng& rng, std::size_t n) {
  const uint64_t r = rng.next_u64();
  switch (r % 5) {
    case 0:
      return u64_key(r % (n / 4 + 1));  // duplicate-heavy
    case 1:
      return Bytes();  // empty key
    case 2:
      return u64_key(r).substr(0, 1 + r % 7);  // shorter than the prefix
    case 3:
      return Bytes("shared-prefix") + u64_key(r % (n / 8 + 1));
    default:
      return u64_key(r);
  }
}

KVVec nasty_corpus(uint64_t seed, std::size_t n) {
  Rng rng(seed);
  KVVec out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    Bytes key = nasty_key(rng, n);
    // Few distinct values -> plenty of exact (key, value) duplicates, so the
    // cross-run position tiebreak is actually exercised.
    out.emplace_back(std::move(key), f64_value(static_cast<double>(i % 7)));
  }
  return out;
}

void expect_identical(const KVVec& a, const KVVec& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].key, b[i].key) << "record " << i;
    EXPECT_EQ(a[i].value, b[i].value) << "record " << i;
  }
}

TEST(MergeCursor, MatchesWholeBufferSortAcrossChunkings) {
  for (std::size_t n : {0u, 1u, 17u, 256u, 1500u}) {
    for (std::size_t k : {1u, 2u, 3u, 7u}) {
      for (bool compare_values : {false, true}) {
        KVVec whole = nasty_corpus(n * 31 + k, n);
        // Contiguous arrival-order split (uneven on purpose): chunk c's
        // records all precede chunk c+1's, the precondition under which the
        // merge's source-index tiebreak equals the position tiebreak.
        std::vector<KVVec> chunks(k);
        std::size_t at = 0;
        for (std::size_t c = 0; c < k; ++c) {
          std::size_t take = whole.size() / k + ((c < whole.size() % k) ? 1 : 0);
          for (std::size_t i = 0; i < take; ++i) chunks[c].push_back(whole[at++]);
          sort_records(chunks[c], compare_values);
        }
        sort_records(whole, compare_values);

        std::vector<std::unique_ptr<VecSource>> vs;
        std::vector<RecordSource*> sources;
        for (auto& c : chunks) {
          vs.push_back(std::make_unique<VecSource>(c));
          sources.push_back(vs.back().get());
        }
        KVVec merged;
        merge_sorted_runs(sources, compare_values, merged);
        expect_identical(whole, merged);
      }
    }
  }
}

TEST(MergeCursor, NoSourcesAndEmptySourcesDrainImmediately) {
  MergeCursor empty({}, /*compare_values=*/true);
  KV rec;
  EXPECT_FALSE(empty.next(rec));

  KVVec a, b;
  VecSource sa(a), sb(b);
  MergeCursor two({&sa, &sb}, /*compare_values=*/true);
  EXPECT_FALSE(two.next(rec));
}

// ---------------------------------------------------------------------------
// SpillSet: ledger balance on every exit path.
// ---------------------------------------------------------------------------

KVVec numbered_records(uint64_t seed, std::size_t n) {
  Rng rng(seed);
  KVVec out;
  for (std::size_t i = 0; i < n; ++i) {
    out.emplace_back(u64_key(rng.next_u64() % 64), u64_key(i));
  }
  sort_records(out, /*sort_values=*/true);
  return out;
}

struct SpillLedger {
  int64_t bytes_written, bytes_read, bytes_dropped;
  int64_t runs_written, runs_read, runs_dropped;
};

SpillLedger ledger(Cluster& c) {
  auto& m = c.metrics();
  return {m.count("imr_spill_bytes_written"), m.count("imr_spill_bytes_read"),
          m.count("imr_spill_bytes_dropped"), m.count("imr_spill_runs_written"),
          m.count("imr_spill_runs_read"), m.count("imr_spill_runs_dropped")};
}

void expect_balanced(Cluster& c) {
  SpillLedger l = ledger(c);
  EXPECT_EQ(l.bytes_written, l.bytes_read + l.bytes_dropped);
  EXPECT_EQ(l.runs_written, l.runs_read + l.runs_dropped);
}

TEST(SpillSet, TakeRunIsFifoAndCountsRead) {
  auto cluster = testutil::free_cluster(1, 1, 1);
  VClock vt;
  SpillSet spills(cluster->dfs(), cluster->metrics(), "t/u1", 0);
  KVVec r1 = numbered_records(1, 20), r2 = numbered_records(2, 30);
  spills.write_run(0, r1, &vt);
  spills.write_run(0, r2, &vt);
  EXPECT_EQ(spills.run_count(0), 2u);
  EXPECT_EQ(spills.total_runs(), 2u);

  KVVec back1 = spills.take_run(0, &vt);
  expect_identical(r1, back1);
  KVVec back2 = spills.take_run(0, &vt);
  expect_identical(r2, back2);
  EXPECT_TRUE(spills.take_run(0, &vt).empty());
  EXPECT_FALSE(spills.has_runs(0));

  expect_balanced(*cluster);
  EXPECT_EQ(ledger(*cluster).runs_read, 2);
  EXPECT_TRUE(cluster->dfs().list("spill/").empty());
}

TEST(SpillSet, SourcesThenConsumeRoundTripsThroughChunkedCursors) {
  auto cluster = testutil::free_cluster(1, 1, 1);
  VClock vt;
  SpillSet spills(cluster->dfs(), cluster->metrics(), "t/u2", 0);
  // > 1024 records per run so the DfsRunSource chunk boundary is crossed.
  KVVec whole = nasty_corpus(9, 3000);
  std::vector<KVVec> runs(3);
  for (std::size_t c = 0, at = 0; c < 3; ++c) {
    for (std::size_t i = 0; i < 1000; ++i) runs[c].push_back(whole[at++]);
    sort_records(runs[c], /*sort_values=*/true);
    spills.write_run(0, runs[c], &vt);
  }
  sort_records(whole, /*sort_values=*/true);

  auto cursors = spills.sources(0, &vt);
  ASSERT_EQ(cursors.size(), 3u);
  std::vector<RecordSource*> sources;
  for (auto& c : cursors) sources.push_back(c.get());
  KVVec merged;
  merge_sorted_runs(sources, /*compare_values=*/true, merged);
  expect_identical(whole, merged);

  spills.consume(0);
  expect_balanced(*cluster);
  EXPECT_EQ(ledger(*cluster).runs_read, 3);
  EXPECT_TRUE(cluster->dfs().list("spill/").empty());
}

TEST(SpillSet, DestructorAbandonsAndBalancesTheLedger) {
  auto cluster = testutil::free_cluster(1, 1, 1);
  VClock vt;
  {
    SpillSet spills(cluster->dfs(), cluster->metrics(), "t/u3", 0);
    spills.write_run(0, numbered_records(3, 40), &vt);
    spills.write_run(1, numbered_records(4, 10), &vt);
    EXPECT_EQ(cluster->dfs().list("spill/").size(), 2u);
  }
  expect_balanced(*cluster);
  EXPECT_EQ(ledger(*cluster).runs_dropped, 2);
  EXPECT_TRUE(cluster->dfs().list("spill/").empty());
}

TEST(SpillSet, TornRunWritesHalfAndIsDroppedOnUnwind) {
  auto cluster = testutil::free_cluster(1, 1, 1);
  VClock vt;
  KVVec records = numbered_records(5, 50);
  {
    SpillSet spills(cluster->dfs(), cluster->metrics(), "t/u4", 0);
    spills.write_torn_run(0, records, &vt);
    auto files = cluster->dfs().list("spill/");
    ASSERT_EQ(files.size(), 1u);
    EXPECT_EQ(cluster->dfs().file_records(files[0]), records.size() / 2)
        << "a torn run must hold only the first half of its records";
  }
  EXPECT_EQ(cluster->metrics().count("imr_torn_spills"), 1);
  expect_balanced(*cluster);
  EXPECT_TRUE(cluster->dfs().list("spill/").empty());
}

// ---------------------------------------------------------------------------
// Conf validation gates.
// ---------------------------------------------------------------------------

TEST(SpillConf, RejectsNegativeBudget) {
  IterJobConf conf = Sssp::imapreduce("in", "out", 5);
  conf.max_task_memory_bytes = -1;
  EXPECT_THROW(conf.validate(), ConfigError);
}

TEST(SpillConf, BudgetRequiresDeterministicReduce) {
  IterJobConf conf = Sssp::imapreduce("in", "out", 5);
  conf.max_task_memory_bytes = 1 << 20;
  conf.deterministic_reduce = false;
  EXPECT_THROW(conf.validate(), ConfigError);
  conf.deterministic_reduce = true;
  EXPECT_NO_THROW(conf.validate());
}

TEST(SpillConf, ClassicEngineEnforcesTheSameGates) {
  auto cluster = testutil::free_cluster(1, 1, 1);
  cluster->dfs().write_file("in", numbered_records(6, 4), 0, nullptr);
  JobConf job;
  job.set_input("in", make_mapper([](const Bytes& k, const Bytes& v,
                                     Emitter& out) { out.emit(k, v); }));
  job.output_path = "out";
  job.reducer = make_reducer([](const Bytes& key,
                                const std::vector<Bytes>& values,
                                Emitter& out) {
    for (const Bytes& v : values) out.emit(key, v);
  });
  MapReduceEngine engine(*cluster);
  job.max_task_memory_bytes = -5;
  EXPECT_THROW(engine.run_job(job), ConfigError);
  job.max_task_memory_bytes = 1 << 20;
  job.deterministic_reduce = false;
  EXPECT_THROW(engine.run_job(job), ConfigError);
}

// ---------------------------------------------------------------------------
// Classic engine: budgeted reduce is byte-identical and actually spills.
// ---------------------------------------------------------------------------

TEST(ClassicSpill, BudgetedReduceMatchesUnlimitedByteForByte) {
  auto cluster = testutil::free_cluster(3, 4, 4);
  KVVec input;
  Rng rng(11);
  for (int i = 0; i < 4000; ++i) {
    input.emplace_back(u64_key(rng.next_u64() % 300), u64_key(i));
  }
  cluster->dfs().write_file("in", input, 0, nullptr);

  auto identity_job = [&](const std::string& out, int64_t budget) {
    JobConf job;
    job.set_input("in", make_mapper([](const Bytes& k, const Bytes& v,
                                       Emitter& out_e) { out_e.emit(k, v); }));
    job.output_path = out;
    job.num_reduce_tasks = 3;
    job.max_task_memory_bytes = budget;
    job.reducer = make_reducer([](const Bytes& key,
                                  const std::vector<Bytes>& values,
                                  Emitter& out_e) {
      for (const Bytes& v : values) out_e.emit(key, v);
    });
    MapReduceEngine engine(*cluster);
    engine.run_job(job);
  };

  identity_job("out_ref", 0);
  const int64_t runs_before = cluster->metrics().count("imr_spill_runs_written");
  EXPECT_EQ(runs_before, 0) << "unlimited run must not spill";
  identity_job("out_budget", kTinyBudget);
  EXPECT_GE(cluster->metrics().count("imr_spill_runs_written"), 2);
  EXPECT_GE(cluster->metrics().gauge("imr_arena_hwm"), 1);
  expect_balanced(*cluster);
  EXPECT_TRUE(cluster->dfs().list("spill/").empty());

  // part-for-part byte identity (same partitioner, same sorted reduce).
  for (int r = 0; r < 3; ++r) {
    KVVec ref = cluster->dfs().read_all(
        "out_ref/part-" + std::to_string(r), -1, nullptr);
    KVVec got = cluster->dfs().read_all(
        "out_budget/part-" + std::to_string(r), -1, nullptr);
    expect_identical(ref, got);
  }
}

// ---------------------------------------------------------------------------
// Iterative engine: the byte-identity property suite. Bulk and workset modes
// share a parameterized sweep; sessions get their own case below.
// ---------------------------------------------------------------------------

enum class SpAlgo { kSssp, kConComp, kPrDelta };

const char* algo_name(SpAlgo a) {
  switch (a) {
    case SpAlgo::kSssp:
      return "Sssp";
    case SpAlgo::kConComp:
      return "ConComp";
    case SpAlgo::kPrDelta:
      return "PrDelta";
  }
  return "?";
}

std::map<Bytes, Bytes> read_state(Cluster& cluster, const std::string& path) {
  std::map<Bytes, Bytes> state;
  for (const auto& part : resolve_input_paths(cluster.dfs(), path)) {
    for (const KV& kv : cluster.dfs().read_all(part, -1, nullptr)) {
      state[kv.key] = kv.value;
    }
  }
  return state;
}

Graph spill_graph(SpAlgo algo, uint64_t seed) {
  LogNormalGraphSpec spec;
  spec.num_nodes = 70 + static_cast<uint32_t>((seed * 29) % 90);
  spec.degree_mu = 0.8;
  spec.degree_sigma = 0.7;
  spec.weighted = algo == SpAlgo::kSssp;
  spec.seed = 5000 + 19 * seed + static_cast<uint64_t>(algo);
  return generate_lognormal_graph(spec);
}

void setup_algo(SpAlgo algo, Cluster& cluster, const Graph& g,
                const std::string& base) {
  switch (algo) {
    case SpAlgo::kSssp:
      Sssp::setup(cluster, g, 0, base);
      break;
    case SpAlgo::kConComp:
      ConComp::setup(cluster, g, base);
      break;
    case SpAlgo::kPrDelta:
      PageRank::setup_delta(cluster, g, base);
      break;
  }
}

IterJobConf make_conf(SpAlgo algo, const std::string& base,
                      const std::string& out) {
  switch (algo) {
    case SpAlgo::kSssp:
      return Sssp::imapreduce(base, out, /*max_iterations=*/60,
                              /*threshold=*/0.5);
    case SpAlgo::kConComp:
      return ConComp::imapreduce(base, out, /*max_iterations=*/60,
                                 /*threshold=*/0.5);
    case SpAlgo::kPrDelta:
      return PageRank::imapreduce_delta(base, out, /*max_iterations=*/80,
                                        kPrTheta);
  }
  return {};
}

using SpillIdentityParam = std::tuple<uint64_t, SpAlgo, bool /*workset*/>;

class SpillIdentity : public ::testing::TestWithParam<SpillIdentityParam> {};

TEST_P(SpillIdentity, BudgetedRunMatchesUnlimitedByteForByte) {
  const auto [seed, algo, workset] = GetParam();
  const Graph g = spill_graph(algo, seed);
  const auto n = static_cast<int64_t>(g.num_nodes());
  const int tasks = 3;

  auto cluster = testutil::free_cluster(3, 4, 4);
  setup_algo(algo, *cluster, g, "in");

  IterJobConf ref_conf = make_conf(algo, "in", "out_ref");
  ref_conf.num_tasks = tasks;
  IterJobConf budget_conf = make_conf(algo, "in", "out_budget");
  budget_conf.num_tasks = tasks;
  budget_conf.max_task_memory_bytes = kTinyBudget;
  if (workset) {
    for (IterJobConf* c : {&ref_conf, &budget_conf}) {
      c->workset_mode = true;
      c->distance_threshold = -1.0;
    }
  }

  InvariantExpectations expect;
  expect.expected_state_records = n;
  if (workset) expect.workset_mode = true;

  auto ref_run = run_chaos_job(*cluster, ref_conf, FaultSchedule{},
                               ChannelFaultConfig{}, expect);
  EXPECT_TRUE(ref_run.violations.empty())
      << ::testing::PrintToString(ref_run.violations);
  ASSERT_TRUE(ref_run.report.converged);
  EXPECT_EQ(cluster->metrics().count("imr_spill_runs_written"), 0)
      << "unlimited run must not spill";

  auto budget_run = run_chaos_job(*cluster, budget_conf, FaultSchedule{},
                                  ChannelFaultConfig{}, expect);
  EXPECT_TRUE(budget_run.violations.empty())
      << ::testing::PrintToString(budget_run.violations);
  ASSERT_TRUE(budget_run.report.converged);

  // Identical bytes AND identical iteration count: per-iteration state is
  // the same, so the convergence decision lands on the same k*.
  EXPECT_EQ(budget_run.report.iterations_run, ref_run.report.iterations_run);
  EXPECT_EQ(read_state(*cluster, "out_ref"), read_state(*cluster, "out_budget"))
      << "budgeted run diverged (seed=" << seed << ", algo=" << algo_name(algo)
      << ", workset=" << workset << ")";

  // The budget actually bit: multiple runs spilled, merged reduces ran, the
  // arena high-water mark registered, and the ledger closed balanced with no
  // files left behind.
  EXPECT_GE(cluster->metrics().count("imr_spill_runs_written"), 2);
  EXPECT_GE(cluster->metrics().count("imr_reduce_spills"), 1);
  EXPECT_GE(cluster->metrics().count("imr_reduce_merges"), 1);
  if (!workset) {
    EXPECT_GE(cluster->metrics().count("imr_map_spills"), 1);
  }
  EXPECT_GE(cluster->metrics().gauge("imr_arena_hwm"), 1);
  EXPECT_EQ(cluster->metrics().count("imr_spill_leaks"), 0);
  expect_balanced(*cluster);
  EXPECT_TRUE(cluster->dfs().list("spill/").empty());
}

INSTANTIATE_TEST_SUITE_P(
    SeedsByAlgosByModes, SpillIdentity,
    ::testing::Combine(::testing::Values(uint64_t{1}, uint64_t{2}, uint64_t{3}),
                       ::testing::Values(SpAlgo::kSssp, SpAlgo::kConComp,
                                         SpAlgo::kPrDelta),
                       ::testing::Bool()),
    [](const ::testing::TestParamInfo<SpillIdentityParam>& info) {
      return std::string("seed") + std::to_string(std::get<0>(info.param)) +
             "_" + algo_name(std::get<1>(info.param)) +
             (std::get<2>(info.param) ? "_workset" : "_bulk");
    });

// Session mode: a budgeted session over the same converge -> mutate ->
// reconverge -> close sequence must close on the same bytes as the unlimited
// session.
TEST(SpillIdentity, SessionEpochsMatchUnlimited) {
  for (SpAlgo algo : {SpAlgo::kSssp, SpAlgo::kConComp, SpAlgo::kPrDelta}) {
    const Graph g0 = spill_graph(algo, 4);
    Graph g1 = g0;
    // A refining mutation: add a few fresh edges (node universe unchanged).
    for (uint32_t u = 0; u + 7 < g1.num_nodes(); u += 7) {
      g1.adj[u].push_back(WEdge{u + 7, 1.0});
    }
    StaticDelta delta;
    switch (algo) {
      case SpAlgo::kSssp:
        delta = Sssp::static_delta(g0, g1);
        break;
      case SpAlgo::kConComp:
        delta = ConComp::static_delta(g0, g1);
        break;
      case SpAlgo::kPrDelta:
        delta = PageRank::static_delta(g0, g1);
        break;
    }

    auto run_session = [&](int64_t budget, const std::string& out) {
      auto cluster = testutil::free_cluster(3, 4, 4);
      setup_algo(algo, *cluster, g0, "in");
      IterJobConf conf = make_conf(algo, "in", out);
      conf.num_tasks = 3;
      conf.workset_mode = true;
      conf.distance_threshold = -1.0;
      conf.max_task_memory_bytes = budget;
      IterativeEngine engine(*cluster);
      JobSession session = engine.open_session(conf);
      EXPECT_TRUE(session.last_report().converged);
      EXPECT_TRUE(session.apply_update(delta).converged);
      session.close();
      if (budget > 0) {
        EXPECT_GE(cluster->metrics().count("imr_spill_runs_written"), 2)
            << algo_name(algo);
        expect_balanced(*cluster);
        EXPECT_TRUE(cluster->dfs().list("spill/").empty());
      }
      return read_state(*cluster, out);
    };

    EXPECT_EQ(run_session(0, "out"), run_session(kTinyBudget, "out"))
        << "budgeted session diverged (algo=" << algo_name(algo) << ")";
  }
}

// ---------------------------------------------------------------------------
// Chaos at the spill machinery: worker deaths at the spill write itself
// (torn half-run on disk), and at points where spilled runs are live but not
// yet merged (mid-shuffle, iteration boundary). Recovery must land on the
// unlimited clean run's bytes with the ledger balanced.
// ---------------------------------------------------------------------------

using SpillChaosParam = std::tuple<uint64_t, FaultPoint, SpAlgo>;

class SpillChaosSweep : public ::testing::TestWithParam<SpillChaosParam> {};

TEST_P(SpillChaosSweep, RecoversToUnlimitedRunBytes) {
  const auto [seed, point, algo] = GetParam();
  constexpr int kWorkers = 3;
  constexpr int kTasks = 4;
  const Graph g = spill_graph(algo, seed + 10);
  const auto n = static_cast<int64_t>(g.num_nodes());

  // Bulk mode: every iteration moves the full state, so with a tiny budget
  // every reduce task spills at every iteration — any (worker, iteration)
  // the fault derives to is guaranteed a live spill write to die in.
  IterJobConf conf = make_conf(algo, "in", "out");
  conf.num_tasks = kTasks;
  conf.checkpoint_every = 2;

  InvariantExpectations expect;
  expect.expected_state_records = n;

  // Failure-free UNLIMITED reference: chains identity and recovery in one
  // equality.
  auto clean = testutil::free_cluster(kWorkers, 4, 4);
  setup_algo(algo, *clean, g, "in");
  auto clean_run = run_chaos_job(*clean, conf, FaultSchedule{},
                                 ChannelFaultConfig{}, expect);
  EXPECT_TRUE(clean_run.violations.empty())
      << ::testing::PrintToString(clean_run.violations);
  ASSERT_TRUE(clean_run.report.converged);
  const int k_star = clean_run.report.iterations_run;
  ASSERT_GE(k_star, 3);
  const auto reference = read_state(*clean, "out");

  auto faulty = testutil::free_cluster(kWorkers, 4, 4);
  setup_algo(algo, *faulty, g, "in");
  IterJobConf budget_conf = conf;
  budget_conf.output_path = "out";
  budget_conf.max_task_memory_bytes = kTinyBudget;
  FaultSchedule schedule;
  schedule.add(chaos::derive_fault(seed, kWorkers,
                                   /*max_iteration=*/k_star - 1, point));
  InvariantExpectations faulty_expect = expect;
  faulty_expect.expected_recoveries = 1;
  auto result = run_chaos_job(*faulty, budget_conf, schedule,
                              ChannelFaultConfig{}, faulty_expect);
  EXPECT_TRUE(result.violations.empty())
      << "invariant violations (seed=" << seed
      << ", point=" << fault_point_name(point)
      << ", algo=" << algo_name(algo) << "):\n  "
      << ::testing::PrintToString(result.violations);
  ASSERT_TRUE(result.report.converged);
  EXPECT_EQ(result.report.iterations_run, k_star);
  chaos::expect_all_faults_consumed(*faulty);

  EXPECT_EQ(reference, read_state(*faulty, "out"))
      << "recovered budgeted run diverged from the unlimited bytes (seed="
      << seed << ", point=" << fault_point_name(point)
      << ", algo=" << algo_name(algo) << ")";

  if (point == FaultPoint::kSpillWrite) {
    // The death happened mid spill-write: a torn half-run hit the disk and
    // was dropped by the dying task's unwind. (At the other points the task
    // may die with its runs already merged and consumed — nothing left to
    // abandon.)
    EXPECT_GE(faulty->metrics().count("imr_torn_spills"), 1);
    EXPECT_GE(faulty->metrics().count("imr_spill_runs_dropped"), 1)
        << "the dying task should have abandoned the torn run";
  }
  EXPECT_EQ(faulty->metrics().count("imr_spill_leaks"), 0);
  expect_balanced(*faulty);
  EXPECT_TRUE(faulty->dfs().list("spill/").empty());
}

INSTANTIATE_TEST_SUITE_P(
    SeedsByPointsByAlgos, SpillChaosSweep,
    ::testing::Combine(::testing::Values(uint64_t{1}, uint64_t{2}),
                       ::testing::Values(FaultPoint::kSpillWrite,
                                         FaultPoint::kMidShuffle,
                                         FaultPoint::kIterationBoundary),
                       ::testing::Values(SpAlgo::kSssp, SpAlgo::kConComp,
                                         SpAlgo::kPrDelta)),
    [](const ::testing::TestParamInfo<SpillChaosParam>& info) {
      return std::string("seed") + std::to_string(std::get<0>(info.param)) +
             "_" + fault_point_name(std::get<1>(info.param)) + "_" +
             algo_name(std::get<2>(info.param));
    });

// Default random fault schedules must never draw kSpillWrite: unbudgeted
// jobs have no spill writes, so a drawn event could never be consumed.
TEST(SpillChaos, RandomSchedulesExcludeTheSpillPoint) {
  for (uint64_t seed = 1; seed <= 50; ++seed) {
    FaultSchedule s = FaultSchedule::random(seed, /*num_workers=*/4,
                                            /*max_iteration=*/10,
                                            /*num_events=*/3);
    for (const FaultEvent& e : s.events()) {
      EXPECT_NE(e.point, FaultPoint::kSpillWrite)
          << "seed " << seed << " drew the opt-in-only spill point";
    }
  }
}

}  // namespace
}  // namespace imr
