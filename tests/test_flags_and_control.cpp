// Command-line flag parsing and control-message codec tests.
#include <gtest/gtest.h>

#include "common/flags.h"
#include "imapreduce/control.h"

namespace imr {
namespace {

Flags parse(std::initializer_list<const char*> args) {
  std::vector<char*> argv = {const_cast<char*>("prog")};
  for (const char* a : args) argv.push_back(const_cast<char*>(a));
  return Flags(static_cast<int>(argv.size()), argv.data());
}

TEST(Flags, EqualsAndSpaceSyntax) {
  Flags f = parse({"--workers=8", "--engine", "imr", "--sync"});
  EXPECT_EQ(f.get_int("workers", 0), 8);
  EXPECT_EQ(f.get("engine", ""), "imr");
  EXPECT_TRUE(f.get_bool("sync"));
  EXPECT_FALSE(f.get_bool("absent"));
}

TEST(Flags, PositionalArguments) {
  Flags f = parse({"sssp", "--workers", "4", "extra"});
  ASSERT_EQ(f.positional().size(), 2u);
  EXPECT_EQ(f.positional()[0], "sssp");
  EXPECT_EQ(f.positional()[1], "extra");
}

TEST(Flags, Defaults) {
  Flags f = parse({});
  EXPECT_EQ(f.get_int("n", 42), 42);
  EXPECT_EQ(f.get_double("x", 1.5), 1.5);
  EXPECT_EQ(f.get("s", "d"), "d");
}

TEST(Flags, SwitchFollowedByFlag) {
  Flags f = parse({"--verbose", "--workers", "3"});
  EXPECT_TRUE(f.get_bool("verbose"));
  EXPECT_EQ(f.get_int("workers", 0), 3);
}

TEST(Flags, ExplicitFalse) {
  Flags f = parse({"--balance=false"});
  EXPECT_FALSE(f.get_bool("balance"));
}

TEST(Flags, BadNumberThrows) {
  Flags f = parse({"--workers", "soon"});
  EXPECT_THROW(f.get_int("workers", 0), ConfigError);
  EXPECT_THROW(f.get_double("workers", 0), ConfigError);
}

TEST(CtlCodec, RoundTripsAllFields) {
  CtlMsg m;
  m.type = CtlType::kReport;
  m.task = 17;
  m.iteration = 123;
  m.generation = 4;
  m.worker = 9;
  m.distance = 2.5e-3;
  m.duration_ns = 987654321;
  CtlMsg back = CtlMsg::decode(m.encode());
  EXPECT_EQ(back.type, CtlType::kReport);
  EXPECT_EQ(back.task, 17);
  EXPECT_EQ(back.iteration, 123);
  EXPECT_EQ(back.generation, 4);
  EXPECT_EQ(back.worker, 9);
  EXPECT_EQ(back.distance, 2.5e-3);
  EXPECT_EQ(back.duration_ns, 987654321);
}

TEST(CtlCodec, NegativeSentinelsSurvive) {
  CtlMsg m;
  m.type = CtlType::kTerminate;
  m.task = -1;
  m.worker = -1;
  CtlMsg back = CtlMsg::decode(m.encode());
  EXPECT_EQ(back.task, -1);
  EXPECT_EQ(back.worker, -1);
}

TEST(CtlCodec, EmptyBufferThrows) {
  EXPECT_THROW(CtlMsg::decode(Bytes()), FormatError);
}

TEST(CtlCodec, AllTypesRoundTrip) {
  for (CtlType t : {CtlType::kContinue, CtlType::kGo, CtlType::kTerminate,
                    CtlType::kRollback, CtlType::kKill, CtlType::kReport,
                    CtlType::kFailure, CtlType::kDone, CtlType::kAuxSignal}) {
    CtlMsg m;
    m.type = t;
    EXPECT_EQ(CtlMsg::decode(m.encode()).type, t);
  }
}

}  // namespace
}  // namespace imr
