// Multi-phase iteration tests beyond matrix power: a synthetic three-phase
// arithmetic pipeline with per-phase static joins, verifying phase chaining,
// key re-partitioning between phases, and sync mode in multi-phase jobs.
#include <gtest/gtest.h>

#include "algorithms/matpower.h"
#include "common/codec.h"
#include "imapreduce/engine.h"
#include "tests/test_util.h"

namespace imr {
namespace {

// A synthetic job over values v_i (i = 0..n-1), one record per key:
//   phase 0: v += add[i]        (static "add" joined at phase-0 map)
//   phase 1: v *= 2             (no static data)
//   phase 2: v -= 1, re-keyed to (i + 1) mod n   (rotates the key space)
// The reference is trivial to compute; the rotation exercises cross-phase
// key re-partitioning like matrix power's (j) -> (i,k) switch.
constexpr uint32_t kN = 97;  // intentionally not divisible by task counts

IterJobConf arithmetic_job(int iterations) {
  IterJobConf conf;
  conf.name = "arith";
  conf.state_path = "arith/state";
  conf.output_path = "arith/out";
  conf.max_iterations = iterations;

  PhaseConf p0;
  p0.static_path = "arith/add";
  p0.mapper = make_iter_mapper([](const Bytes& key, const Bytes& state,
                                  const Bytes& stat, IterEmitter& out) {
    double add = stat.empty() ? 0.0 : as_f64(stat);
    out.emit(key, f64_value(as_f64(state) + add));
  });
  p0.reducer = make_iter_reducer(
      [](const Bytes& key, const std::vector<Bytes>& values, IterEmitter& out) {
        ASSERT_EQ(values.size(), 1u);
        out.emit(key, values[0]);
      });
  conf.phases.push_back(std::move(p0));

  PhaseConf p1;
  p1.mapper = make_iter_mapper([](const Bytes& key, const Bytes& state,
                                  const Bytes&, IterEmitter& out) {
    out.emit(key, f64_value(as_f64(state) * 2.0));
  });
  p1.reducer = make_iter_reducer(
      [](const Bytes& key, const std::vector<Bytes>& values, IterEmitter& out) {
        out.emit(key, values[0]);
      });
  conf.phases.push_back(std::move(p1));

  PhaseConf p2;
  p2.mapper = make_iter_mapper([](const Bytes& key, const Bytes& state,
                                  const Bytes&, IterEmitter& out) {
    uint32_t i = as_u32(key);
    out.emit(u32_key((i + 1) % kN), f64_value(as_f64(state) - 1.0));
  });
  p2.reducer = make_iter_reducer(
      [](const Bytes& key, const std::vector<Bytes>& values, IterEmitter& out) {
        out.emit(key, values[0]);
      });
  conf.phases.push_back(std::move(p2));
  return conf;
}

void setup_arith(Cluster& cluster) {
  KVVec state, add;
  for (uint32_t i = 0; i < kN; ++i) {
    state.emplace_back(u32_key(i), f64_value(static_cast<double>(i)));
    add.emplace_back(u32_key(i), f64_value(static_cast<double>(i % 5)));
  }
  cluster.dfs().write_file("arith/state", std::move(state), -1, nullptr);
  cluster.dfs().write_file("arith/add", std::move(add), -1, nullptr);
}

std::vector<double> arith_reference(int iterations) {
  std::vector<double> v(kN);
  for (uint32_t i = 0; i < kN; ++i) v[i] = static_cast<double>(i);
  for (int it = 0; it < iterations; ++it) {
    for (uint32_t i = 0; i < kN; ++i) v[i] += static_cast<double>(i % 5);
    for (uint32_t i = 0; i < kN; ++i) v[i] *= 2.0;
    std::vector<double> rotated(kN);
    for (uint32_t i = 0; i < kN; ++i) rotated[(i + 1) % kN] = v[i] - 1.0;
    v = std::move(rotated);
  }
  return v;
}

std::vector<double> read_arith(Cluster& cluster) {
  std::vector<double> v(kN, 0);
  for (const auto& part : cluster.dfs().list("arith/out/")) {
    for (const KV& kv : cluster.dfs().read_all(part, -1, nullptr)) {
      v[as_u32(kv.key)] = as_f64(kv.value);
    }
  }
  return v;
}

class MultiPhaseSweep : public ::testing::TestWithParam<std::tuple<int, bool>> {};

TEST_P(MultiPhaseSweep, ThreePhasePipelineMatchesReference) {
  auto [num_tasks, async] = GetParam();
  auto cluster = testutil::free_cluster(4, 8, 8);
  setup_arith(*cluster);
  IterJobConf conf = arithmetic_job(4);
  conf.num_tasks = num_tasks;
  conf.async_maps = async;
  IterativeEngine engine(*cluster);
  RunReport r = engine.run(conf);
  EXPECT_EQ(r.iterations_run, 4);
  EXPECT_EQ(read_arith(*cluster), arith_reference(4));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, MultiPhaseSweep,
    ::testing::Values(std::make_tuple(1, true), std::make_tuple(3, true),
                      std::make_tuple(7, true), std::make_tuple(3, false),
                      std::make_tuple(7, false)),
    [](const ::testing::TestParamInfo<std::tuple<int, bool>>& info) {
      return "t" + std::to_string(std::get<0>(info.param)) +
             (std::get<1>(info.param) ? "_async" : "_sync");
    });

TEST(MultiPhase, SingleIterationRotatesOnce) {
  auto cluster = testutil::free_cluster();
  setup_arith(*cluster);
  IterativeEngine engine(*cluster);
  engine.run(arithmetic_job(1));
  EXPECT_EQ(read_arith(*cluster), arith_reference(1));
}

TEST(MultiPhase, MatrixPowerAcrossTaskCounts) {
  Matrix m = MatPower::generate(12, 7);
  Matrix expected = MatPower::reference(m, 2);
  for (int tasks : {1, 2, 5}) {
    auto cluster = testutil::free_cluster(4, 8, 8);
    MatPower::setup(*cluster, m, "mat");
    IterJobConf conf = MatPower::imapreduce("mat", "out", 2);
    conf.num_tasks = tasks;
    IterativeEngine engine(*cluster);
    engine.run(conf);
    Matrix actual = MatPower::read_result(*cluster, "out", m.n);
    for (uint32_t i = 0; i < m.n; ++i) {
      for (uint32_t k = 0; k < m.n; ++k) {
        EXPECT_NEAR(expected.at(i, k), actual.at(i, k), 1e-12)
            << "tasks=" << tasks;
      }
    }
  }
}

TEST(MultiPhase, PhaseTimeAdvancesThroughBothPhases) {
  auto cluster = testutil::costed_cluster(4, 8, 8);
  Matrix m = MatPower::generate(10, 9);
  MatPower::setup(*cluster, m, "mat");
  IterativeEngine engine(*cluster);
  RunReport r = engine.run(MatPower::imapreduce("mat", "out", 3));
  ASSERT_EQ(r.iterations.size(), 3u);
  // Every iteration crosses two shuffles and two reduce phases: iteration
  // period must exceed four network latencies at the very least.
  double prev = 0;
  for (const auto& it : r.iterations) {
    EXPECT_GT(it.wall_ms_end - prev, 4 * 0.5);
    prev = it.wall_ms_end;
  }
}

}  // namespace
}  // namespace imr
