// Graph generator & format tests.
#include <gtest/gtest.h>

#include <cmath>

#include "graph/formats.h"
#include "graph/generator.h"

namespace imr {
namespace {

TEST(Generator, Deterministic) {
  LogNormalGraphSpec spec;
  spec.num_nodes = 500;
  spec.seed = 42;
  Graph a = generate_lognormal_graph(spec);
  Graph b = generate_lognormal_graph(spec);
  ASSERT_EQ(a.num_nodes(), b.num_nodes());
  ASSERT_EQ(a.num_edges(), b.num_edges());
  for (uint32_t u = 0; u < a.num_nodes(); ++u) {
    EXPECT_EQ(a.adj[u], b.adj[u]);
  }
}

TEST(Generator, SeedChangesGraph) {
  LogNormalGraphSpec spec;
  spec.num_nodes = 500;
  spec.seed = 1;
  Graph a = generate_lognormal_graph(spec);
  spec.seed = 2;
  Graph b = generate_lognormal_graph(spec);
  EXPECT_NE(a.num_edges(), b.num_edges());
}

TEST(Generator, AverageDegreeTracksLogNormalMean) {
  LogNormalGraphSpec spec;
  spec.num_nodes = 30000;
  spec.degree_mu = 1.5;
  spec.degree_sigma = 1.0;
  Graph g = generate_lognormal_graph(spec);
  double avg = static_cast<double>(g.num_edges()) / g.num_nodes();
  double expected = std::exp(1.5 + 0.5);
  // Dedup of repeated targets and self-loop removal shave a little off.
  EXPECT_GT(avg, expected * 0.75);
  EXPECT_LT(avg, expected * 1.1);
}

TEST(Generator, NoSelfLoopsNoDuplicates) {
  LogNormalGraphSpec spec;
  spec.num_nodes = 2000;
  spec.seed = 9;
  Graph g = generate_lognormal_graph(spec);
  for (uint32_t u = 0; u < g.num_nodes(); ++u) {
    for (std::size_t i = 0; i < g.adj[u].size(); ++i) {
      EXPECT_NE(g.adj[u][i].dst, u);
      if (i > 0) EXPECT_LT(g.adj[u][i - 1].dst, g.adj[u][i].dst);
    }
  }
}

TEST(Generator, WeightsPositiveWhenWeighted) {
  LogNormalGraphSpec spec;
  spec.num_nodes = 1000;
  spec.weighted = true;
  Graph g = generate_lognormal_graph(spec);
  for (const auto& edges : g.adj) {
    for (const WEdge& e : edges) EXPECT_GT(e.weight, 0.0);
  }
}

TEST(Generator, NamedSsspDatasets) {
  for (const char* name : {"dblp", "facebook", "sssp-s", "sssp-m", "sssp-l"}) {
    Graph g = make_sssp_graph(name, 0.0005, 1);
    EXPECT_GT(g.num_nodes(), 0u) << name;
    EXPECT_TRUE(g.weighted) << name;
  }
  EXPECT_THROW(make_sssp_graph("bogus", 1.0, 1), ConfigError);
}

TEST(Generator, NamedPageRankDatasets) {
  for (const char* name :
       {"google", "berkstan", "pagerank-s", "pagerank-m", "pagerank-l"}) {
    Graph g = make_pagerank_graph(name, 0.0005, 1);
    EXPECT_GT(g.num_nodes(), 0u) << name;
    EXPECT_FALSE(g.weighted) << name;
  }
  EXPECT_THROW(make_pagerank_graph("bogus", 1.0, 1), ConfigError);
}

TEST(Formats, RoundTripWeighted) {
  LogNormalGraphSpec spec;
  spec.num_nodes = 50;
  spec.seed = 5;
  Graph g = generate_lognormal_graph(spec);
  Graph parsed = parse_adjacency_text(to_adjacency_text(g), true);
  ASSERT_EQ(parsed.num_nodes(), g.num_nodes());
  for (uint32_t u = 0; u < g.num_nodes(); ++u) {
    ASSERT_EQ(parsed.adj[u].size(), g.adj[u].size());
    for (std::size_t i = 0; i < g.adj[u].size(); ++i) {
      EXPECT_EQ(parsed.adj[u][i].dst, g.adj[u][i].dst);
      EXPECT_NEAR(parsed.adj[u][i].weight, g.adj[u][i].weight, 1e-6);
    }
  }
}

TEST(Formats, ParsesUnweightedAndComments) {
  Graph g = parse_adjacency_text("# comment\n0\t1,2\n1\t2\n2\t\n", false);
  EXPECT_EQ(g.num_nodes(), 3u);
  EXPECT_EQ(g.adj[0].size(), 2u);
  EXPECT_EQ(g.adj[1][0].dst, 2u);
  EXPECT_TRUE(g.adj[2].empty());
}

TEST(Formats, MalformedLinesThrow) {
  EXPECT_THROW(parse_adjacency_text("garbage", false), FormatError);
  EXPECT_THROW(parse_adjacency_text("x\t1", false), FormatError);
  EXPECT_THROW(parse_adjacency_text("0\t1:2", false), FormatError);
  EXPECT_THROW(parse_adjacency_text("0\t1", true), FormatError);
}

TEST(Stats, FileBytesScalesWithEdges) {
  LogNormalGraphSpec spec;
  spec.num_nodes = 1000;
  Graph small = generate_lognormal_graph(spec);
  spec.num_nodes = 10000;
  Graph big = generate_lognormal_graph(spec);
  EXPECT_GT(big.file_bytes(), small.file_bytes());
  GraphStats s = stats_of("x", small);
  EXPECT_EQ(s.nodes, 1000u);
  EXPECT_EQ(s.edges, small.num_edges());
}

}  // namespace
}  // namespace imr
