// Virtual-timing model tests: the orderings and accounting identities the
// paper's evaluation depends on.
#include <gtest/gtest.h>

#include "algorithms/pagerank.h"
#include "algorithms/sssp.h"
#include "graph/generator.h"
#include "imapreduce/engine.h"
#include "mapreduce/iterative_driver.h"
#include "tests/test_util.h"

namespace imr {
namespace {

Graph timing_graph(uint64_t seed = 31) {
  LogNormalGraphSpec spec;
  spec.num_nodes = 2000;
  spec.seed = seed;
  return generate_lognormal_graph(spec);
}

TEST(ImrTiming, AsyncNoSlowerThanSyncBothBeatBaseline) {
  auto cluster = testutil::costed_cluster();
  Graph g = timing_graph();
  Sssp::setup(*cluster, g, 0, "sssp");

  IterativeDriver driver(*cluster);
  RunReport mr = driver.run(Sssp::baseline("sssp", "work", 8, 0.0));

  IterativeEngine engine(*cluster);
  IterJobConf sync_conf = Sssp::imapreduce("sssp", "out_s", 8);
  sync_conf.async_maps = false;
  RunReport imr_sync = engine.run(sync_conf);
  RunReport imr = engine.run(Sssp::imapreduce("sssp", "out_a", 8));

  // Async's structural gain needs per-iteration load variance (the slowest
  // pair must change between iterations — §3.3); on this small uniform
  // workload it can be within the ±2% CPU-measurement noise. The invariants
  // that always hold: async is never structurally slower than sync, and both
  // beat the chain-of-jobs baseline by a wide margin. Fig. 4's bench shows
  // the positive async saving on the full DBLP workload.
  EXPECT_LT(imr.total_wall_ms, imr_sync.total_wall_ms * 1.02);
  EXPECT_LT(imr_sync.total_wall_ms, mr.total_wall_ms * 0.9);
}

TEST(ImrTiming, OneTimeInitVsPerJobInit) {
  auto cluster = testutil::costed_cluster();
  Graph g = timing_graph(5);
  Sssp::setup(*cluster, g, 0, "sssp");

  cluster->metrics().reset();
  IterativeEngine engine(*cluster);
  engine.run(Sssp::imapreduce("sssp", "out", 6));
  // One job + one task-init per persistent task, once.
  const CostModel& cost = cluster->cost();
  EXPECT_EQ(cluster->metrics().count("jobs_submitted"), 1);
  EXPECT_EQ(cluster->metrics().time(TimeCategory::kJobInit), cost.job_init);

  cluster->metrics().reset();
  IterativeDriver driver(*cluster);
  driver.run(Sssp::baseline("sssp", "work", 6));
  EXPECT_EQ(cluster->metrics().count("jobs_submitted"), 6);
  EXPECT_GE(cluster->metrics().time(TimeCategory::kJobInit).count(),
            6 * cost.job_init.count());
}

TEST(ImrTiming, ReduceToMapHandoffIsLocal) {
  // §3.2.1: the scheduler co-locates each pair, so the persistent channel
  // never crosses the network in one2one jobs.
  auto cluster = testutil::costed_cluster();
  Graph g = timing_graph(7);
  Sssp::setup(*cluster, g, 0, "sssp");
  cluster->metrics().reset();
  IterativeEngine engine(*cluster);
  engine.run(Sssp::imapreduce("sssp", "out", 4));
  EXPECT_GT(cluster->metrics().traffic_bytes(TrafficCategory::kReduceToMap), 0);
  EXPECT_EQ(cluster->metrics().traffic_remote_bytes(TrafficCategory::kReduceToMap),
            0);
}

TEST(ImrTiming, CommunicationCostFarBelowBaseline) {
  // Fig. 11's property on a small graph: remote bytes moved by iMapReduce
  // are a small fraction of the baseline's (static data crosses once, not
  // per iteration).
  auto cluster = testutil::costed_cluster(8, 2, 2);
  Graph g = timing_graph(9);
  Sssp::setup(*cluster, g, 0, "sssp");

  cluster->metrics().reset();
  IterativeDriver driver(*cluster);
  driver.run(Sssp::baseline("sssp", "work", 8));
  int64_t mr_bytes = cluster->metrics().total_remote_bytes();

  cluster->metrics().reset();
  IterativeEngine engine(*cluster);
  engine.run(Sssp::imapreduce("sssp", "out", 8));
  int64_t imr_bytes = cluster->metrics().total_remote_bytes();

  EXPECT_LT(imr_bytes, mr_bytes / 2);
}

TEST(ImrTiming, CheckpointingOffTheCriticalPath) {
  // §3.4.1: checkpoints are dumped in parallel with the iterative process;
  // enabling them must not change the run's virtual completion time.
  auto run_with = [&](int every) {
    auto cluster = testutil::costed_cluster();
    Graph g = timing_graph(11);
    Sssp::setup(*cluster, g, 0, "sssp");
    IterJobConf conf = Sssp::imapreduce("sssp", "out", 6);
    conf.checkpoint_every = every;
    IterativeEngine engine(*cluster);
    return engine.run(conf).total_wall_ms;
  };
  double without = run_with(0);
  double with = run_with(2);
  // Virtual times of separate runs carry real-CPU measurement noise; the
  // checkpoint dump itself must not add any structural cost.
  EXPECT_NEAR(with, without, 0.03 * without);
}

TEST(ImrTiming, MorePartitionsFasterIterationOnCostedCluster) {
  // Virtual parallelism: with more workers (and the per-flow network model),
  // the same job completes sooner in virtual time.
  auto total_ms = [&](int workers) {
    auto cluster = testutil::costed_cluster(workers, 2, 2);
    Graph g = timing_graph(13);
    Sssp::setup(*cluster, g, 0, "sssp");
    IterativeEngine engine(*cluster);
    return engine.run(Sssp::imapreduce("sssp", "out", 5)).total_wall_ms;
  };
  double w2 = total_ms(2);
  double w8 = total_ms(8);
  EXPECT_LT(w8, w2);
}

TEST(ImrTiming, HeterogeneousWorkerSlowsWholeRun) {
  auto total_ms = [&](double speed) {
    auto cluster = testutil::costed_cluster();
    cluster->set_worker_speed(1, speed);
    Graph g = timing_graph(17);
    Sssp::setup(*cluster, g, 0, "sssp");
    IterativeEngine engine(*cluster);
    return engine.run(Sssp::imapreduce("sssp", "out", 5)).total_wall_ms;
  };
  EXPECT_GT(total_ms(0.2), total_ms(1.0));
}

TEST(ImrTiming, IterationStatsMonotoneAndComplete) {
  auto cluster = testutil::costed_cluster();
  Graph g = timing_graph(19);
  PageRank::setup(*cluster, g, "pr");
  IterativeEngine engine(*cluster);
  RunReport r =
      engine.run(PageRank::imapreduce("pr", "out", g.num_nodes(), 7));
  ASSERT_EQ(r.iterations.size(), 7u);
  double prev = 0;
  for (int k = 0; k < 7; ++k) {
    EXPECT_EQ(r.iterations[static_cast<std::size_t>(k)].iteration, k + 1);
    EXPECT_GT(r.iterations[static_cast<std::size_t>(k)].wall_ms_end, prev);
    prev = r.iterations[static_cast<std::size_t>(k)].wall_ms_end;
  }
  EXPECT_GE(r.total_wall_ms, prev);
}

TEST(ImrTiming, ControlTrafficAccounted) {
  auto cluster = testutil::costed_cluster();
  Graph g = timing_graph(23);
  Sssp::setup(*cluster, g, 0, "sssp");
  cluster->metrics().reset();
  IterativeEngine engine(*cluster);
  engine.run(Sssp::imapreduce("sssp", "out", 3));
  // Reports + continues + terminate all flow through the fabric.
  EXPECT_GT(cluster->metrics().traffic_transfers(TrafficCategory::kControl), 0);
}

}  // namespace
}  // namespace imr
