// Unit tests for the common substrate: queues, clocks, strings, RNG, hashing.
#include <gtest/gtest.h>

#include <thread>

#include "common/blocking_queue.h"
#include "common/error.h"
#include "common/codec.h"
#include "common/hash.h"
#include "common/log.h"
#include "common/params.h"
#include "common/rng.h"
#include "common/sim_time.h"
#include "common/strings.h"

namespace imr {
namespace {

TEST(Log, FormatLinePrefixLayout) {
  // "[<sec 10-wide>.<ms 3-wide> LEVEL tNN tag] msg" — attributable,
  // monotonic, column-aligned.
  EXPECT_EQ(detail::format_log_line(LogLevel::kInfo, "hello", 12345, 7,
                                    "sssp/p0/m1"),
            "[        12.345 INFO  t07 sssp/p0/m1] hello");
  EXPECT_EQ(detail::format_log_line(LogLevel::kError, "boom", 999, 12, ""),
            "[         0.999 ERROR t12] boom");
  EXPECT_EQ(detail::format_log_line(LogLevel::kWarn, "w", 61000, 3, "x"),
            "[        61.000 WARN  t03 x] w");
  EXPECT_EQ(detail::format_log_line(LogLevel::kDebug, "", 0, 0, ""),
            "[         0.000 DEBUG t00] ");
}

TEST(Log, ThreadTagBindAndClear) {
  // set_thread_log_tag feeds the formatter's tag field; a cleared tag drops
  // the column entirely (see TaskContext, which binds the task name).
  set_thread_log_tag("task-a");
  clear_thread_log_tag();
  // No crash and idempotent clear.
  clear_thread_log_tag();
  SUCCEED();
}

TEST(BlockingQueue, FifoOrder) {
  BlockingQueue<int> q;
  q.push(1);
  q.push(2);
  q.push(3);
  EXPECT_EQ(q.pop(), 1);
  EXPECT_EQ(q.pop(), 2);
  EXPECT_EQ(q.pop(), 3);
}

TEST(BlockingQueue, CloseDrainsThenReturnsNullopt) {
  BlockingQueue<int> q;
  q.push(1);
  q.close();
  EXPECT_EQ(q.pop(), 1);
  EXPECT_EQ(q.pop(), std::nullopt);
  q.push(9);  // dropped after close
  EXPECT_EQ(q.pop(), std::nullopt);
}

TEST(BlockingQueue, CloseWakesBlockedConsumer) {
  BlockingQueue<int> q;
  std::thread t([&] { EXPECT_EQ(q.pop(), std::nullopt); });
  q.close();
  t.join();
}

TEST(BlockingQueue, ResetReopens) {
  BlockingQueue<int> q;
  q.push(1);
  q.close();
  q.reset();
  EXPECT_FALSE(q.closed());
  EXPECT_EQ(q.size(), 0u);
  q.push(5);
  EXPECT_EQ(q.pop(), 5);
}

TEST(BlockingQueue, ConcurrentProducersAllDelivered) {
  BlockingQueue<int> q;
  constexpr int kPerProducer = 1000;
  std::vector<std::thread> producers;
  for (int p = 0; p < 4; ++p) {
    producers.emplace_back([&q, p] {
      for (int i = 0; i < kPerProducer; ++i) q.push(p * kPerProducer + i);
    });
  }
  std::vector<bool> seen(4 * kPerProducer, false);
  int count = 0;
  while (count < 4 * kPerProducer) {
    auto v = q.pop();
    ASSERT_TRUE(v.has_value());
    ASSERT_FALSE(seen[static_cast<std::size_t>(*v)]);
    seen[static_cast<std::size_t>(*v)] = true;
    ++count;
  }
  for (auto& t : producers) t.join();
}

TEST(VClock, AdvanceAndSync) {
  VClock c;
  EXPECT_EQ(c.now_ns(), 0);
  c.advance(sim_ms(2));
  EXPECT_EQ(c.now_ns(), 2000000);
  c.sync_to(1000000);  // past: no-op
  EXPECT_EQ(c.now_ns(), 2000000);
  c.sync_to(5000000);
  EXPECT_EQ(c.now_ns(), 5000000);
  c.advance(SimDuration(-5));  // negative charges ignored
  EXPECT_EQ(c.now_ns(), 5000000);
}

TEST(SimTime, TransferTime) {
  EXPECT_EQ(transfer_time(1000, 1e6).count(), 1000000);  // 1ms
  EXPECT_EQ(transfer_time(123, 0).count(), 0);           // free
}

TEST(SimTime, ThreadCpuTimerMeasuresWork) {
  ThreadCpuTimer t;
  volatile double x = 1.0;
  for (int i = 0; i < 2000000; ++i) x = x * 1.0000001;
  EXPECT_GT(t.elapsed_ns(), 0);
}

TEST(Strings, Split) {
  EXPECT_EQ(split("a,b,c", ','), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(split("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(split("a,", ','), (std::vector<std::string>{"a", ""}));
}

TEST(Strings, HumanBytes) {
  EXPECT_EQ(human_bytes(512), "512 B");
  EXPECT_EQ(human_bytes(16u << 20), "16.00 MB");
}

TEST(Strings, HumanCount) {
  EXPECT_EQ(human_count(999), "999");
  EXPECT_EQ(human_count(1500000), "1.5M");
}

TEST(Hash, StablePartitioning) {
  // The partitioner is part of the on-disk/protocol contract; pin values.
  EXPECT_EQ(partition_of("abc", 16), partition_of("abc", 16));
  uint32_t p = partition_of("node42", 8);
  EXPECT_LT(p, 8u);
}

TEST(Hash, SpreadsKeys) {
  std::vector<int> buckets(16, 0);
  for (uint32_t i = 0; i < 16000; ++i) {
    Bytes k;
    encode_u32(i, k);
    ++buckets[partition_of(k, 16)];
  }
  for (int b : buckets) {
    EXPECT_GT(b, 500);
    EXPECT_LT(b, 1500);
  }
}

TEST(Rng, Deterministic) {
  Rng a(99), b(99);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, SampleDistinct) {
  Rng rng(5);
  auto s = rng.sample_distinct(100, 50);
  std::set<uint64_t> set(s.begin(), s.end());
  EXPECT_EQ(set.size(), 50u);
  for (uint64_t v : s) EXPECT_LT(v, 100u);
}

TEST(Rng, LogNormalMeanRoughlyMatches) {
  Rng rng(6);
  double sum = 0;
  constexpr int kN = 200000;
  for (int i = 0; i < kN; ++i) sum += rng.log_normal(1.5, 1.0);
  double mean = sum / kN;
  double expected = std::exp(1.5 + 0.5);  // e^{mu + sigma^2/2}
  EXPECT_NEAR(mean, expected, expected * 0.1);
}

TEST(Params, TypedAccessors) {
  Params p;
  p.set("s", "v");
  p.set_int("i", 42);
  p.set_double("d", 1.5);
  p.set_bool("b", true);
  EXPECT_EQ(p.get("s"), "v");
  EXPECT_EQ(p.get_int("i"), 42);
  EXPECT_EQ(p.get_double("d"), 1.5);
  EXPECT_TRUE(p.get_bool("b", false));
  EXPECT_EQ(p.get_int("missing", 7), 7);
  EXPECT_THROW(p.get("missing"), ConfigError);
}

TEST(Strings, ParseDoubleStrictRejectsNonNumbers) {
  double out = -1.0;
  // The whole string must be a number: no trailing junk, no comma decimals
  // (under a de_DE locale std::stod would read "1,5" as 1.5 and "0.85" as 0
  // — the strict parser is locale-independent by construction).
  EXPECT_FALSE(parse_double_strict("", out));
  EXPECT_FALSE(parse_double_strict(" 1.5", out));
  EXPECT_FALSE(parse_double_strict("1.5 ", out));
  EXPECT_FALSE(parse_double_strict("1.5x", out));
  EXPECT_FALSE(parse_double_strict("1,5", out));
  EXPECT_FALSE(parse_double_strict("1e", out));
  EXPECT_FALSE(parse_double_strict("nanx", out));
  EXPECT_FALSE(parse_double_strict("1e999999", out));  // out of range

  ASSERT_TRUE(parse_double_strict("0.85", out));
  EXPECT_EQ(out, 0.85);
  ASSERT_TRUE(parse_double_strict("-1e-300", out));
  EXPECT_EQ(out, -1e-300);
  ASSERT_TRUE(parse_double_strict("2.5e-17", out));
  EXPECT_EQ(out, 2.5e-17);
  ASSERT_TRUE(parse_double_strict("-0.5", out));
  EXPECT_EQ(out, -0.5);
}

TEST(Params, SetDoubleRejectsMalformedStrings) {
  Params p;
  p.set("bad", "0,85");
  EXPECT_THROW(p.get_double("bad"), ConfigError);
  p.set("junk", "1.5extra");
  EXPECT_THROW(p.get_double("junk"), ConfigError);
  p.set("ok", "0.85");
  EXPECT_EQ(p.get_double("ok"), 0.85);
}

TEST(Params, DoublesRoundTripExactly) {
  // std::to_string would flatten sub-5e-7 magnitudes to "0.000000" — a
  // workset delta threshold of 1e-7 must survive the string encoding
  // bit-for-bit, as must irrational-looking constants and extremes.
  Params p;
  for (double v : {1e-7, 1e-9, 2.5e-17, 0.8, 1.0 / 3.0, 6.02214076e23,
                   -1e-300, 0.0}) {
    p.set_double("d", v);
    EXPECT_EQ(p.get_double("d"), v) << "value " << v;
  }
}

}  // namespace
}  // namespace imr
