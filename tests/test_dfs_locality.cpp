// DFS locality & placement behaviour: replica placement, split preferences,
// partitioned-read charging, and the block-size knob.
#include <gtest/gtest.h>

#include "common/codec.h"
#include "tests/test_util.h"

namespace imr {
namespace {

KVVec sized_records(int n, std::size_t value_size) {
  KVVec recs;
  for (int i = 0; i < n; ++i) {
    recs.emplace_back(u32_key(static_cast<uint32_t>(i)),
                      Bytes(value_size, 'v'));
  }
  return recs;
}

TEST(DfsLocality, WriterAlwaysHoldsAReplica) {
  ClusterConfig cfg;
  cfg.num_workers = 10;
  cfg.cost = CostModel::local_cluster();
  cfg.cost.dfs_replication = 2;
  Cluster cluster(cfg);
  for (int w = 0; w < 10; ++w) {
    std::string path = "f" + std::to_string(w);
    cluster.dfs().write_file(path, sized_records(200, 64), w, nullptr);
    // Reading from the writer must be at the local rate: compare with a
    // reader that cannot hold a replica... identify by cost.
    VClock as_writer, as_other;
    cluster.dfs().read_all(path, w, &as_writer);
    // Worst case reader: probe all others, take the max (some may hold the
    // second replica).
    int64_t worst = 0;
    for (int r = 0; r < 10; ++r) {
      if (r == w) continue;
      VClock c;
      cluster.dfs().read_all(path, r, &c);
      worst = std::max(worst, c.now_ns());
    }
    EXPECT_LT(as_writer.now_ns(), worst);
  }
}

TEST(DfsLocality, SplitsPreferReplicaHolders) {
  ClusterConfig cfg;
  cfg.num_workers = 6;
  cfg.cost = CostModel::local_cluster();
  cfg.cost.dfs_block_size = 2048;
  Cluster cluster(cfg);
  cluster.dfs().write_file("f", sized_records(2000, 64), 2, nullptr);
  auto splits = cluster.dfs().make_splits("f", 4);
  for (const auto& s : splits) {
    // Single-block-group splits must carry the block's replica set.
    for (int w : s.preferred_workers) {
      EXPECT_GE(w, 0);
      EXPECT_LT(w, 6);
    }
  }
  // At least one split should have preferences (replication factor 3 > 0).
  bool any = false;
  for (const auto& s : splits) any = any || !s.preferred_workers.empty();
  EXPECT_TRUE(any);
}

TEST(DfsLocality, PartitionedReadChargesOnlySelectedBytes) {
  ClusterConfig cfg;
  cfg.num_workers = 4;
  cfg.cost = CostModel::local_cluster();
  Cluster cluster(cfg);
  cluster.dfs().write_file("f", sized_records(4000, 64), 0, nullptr);

  VClock full, part;
  cluster.dfs().read_all("f", 1, &full);
  cluster.dfs().read_partition("f", 0, 8, 1, &part);
  // One of eight partitions costs roughly an eighth of the full read.
  EXPECT_LT(part.now_ns(), full.now_ns() / 4);
  EXPECT_GT(part.now_ns(), 0);
}

TEST(DfsLocality, PartitionsOfOneIsFullFile) {
  auto cluster = testutil::free_cluster();
  KVVec recs = sized_records(100, 16);
  cluster->dfs().write_file("f", recs, 0, nullptr);
  EXPECT_EQ(cluster->dfs().read_partition("f", 0, 1, 0, nullptr), recs);
}

TEST(DfsLocality, SmallerBlocksMeanMoreSplits) {
  auto count_splits = [](std::size_t block_size) {
    ClusterConfig cfg;
    cfg.num_workers = 8;
    cfg.cost = CostModel::free();
    cfg.cost.dfs_block_size = block_size;
    Cluster cluster(cfg);
    cluster.dfs().write_file("f", sized_records(1000, 64), 0, nullptr);
    return cluster.dfs().make_splits("f", 1000).size();
  };
  EXPECT_GT(count_splits(1024), count_splits(16384));
}

TEST(DfsLocality, ScaledForDataShrinksBlocks) {
  CostModel base = CostModel::local_cluster();
  CostModel scaled = base.scaled_for_data(100.0);
  EXPECT_EQ(scaled.dfs_block_size, base.dfs_block_size / 100);
  // Floors at a sane minimum.
  CostModel tiny = base.scaled_for_data(1e9);
  EXPECT_GE(tiny.dfs_block_size, 4096u);
}

TEST(DfsLocality, ReplicationCappedByClusterSize) {
  ClusterConfig cfg;
  cfg.num_workers = 2;
  cfg.cost = CostModel::local_cluster();  // replication 3 > 2 workers
  Cluster cluster(cfg);
  cluster.dfs().write_file("f", sized_records(10, 16), 0, nullptr);
  // Both workers hold replicas; any reader is local.
  VClock c0, c1;
  cluster.dfs().read_all("f", 0, &c0);
  cluster.dfs().read_all("f", 1, &c1);
  EXPECT_EQ(c0.now_ns(), c1.now_ns());
}

}  // namespace
}  // namespace imr
