#include "algorithms/matpower.h"

#include "common/codec.h"
#include "common/error.h"
#include "common/rng.h"
#include "imapreduce/api.h"
#include "mapreduce/engine.h"

namespace imr {

namespace {

// Baseline phase-1 shuffle tags.
constexpr char kMTag = 'M';
constexpr char kNTag = 'N';

// Sum combiner/reducer shared by both implementations' phase 2.
void sum_values(const std::vector<Bytes>& values, double& sum) {
  sum = 0;
  for (const Bytes& v : values) sum += as_f64(v);
}

}  // namespace

Bytes MatPower::pair_key(uint32_t i, uint32_t k) {
  Bytes b;
  b.reserve(8);
  encode_u32(i, b);
  encode_u32(k, b);
  return b;
}

void MatPower::decode_pair_key(BytesView key, uint32_t& i, uint32_t& k) {
  std::size_t pos = 0;
  i = decode_u32(key, pos);
  k = decode_u32(key, pos);
}

Matrix MatPower::generate(uint32_t n, uint64_t seed) {
  Matrix m;
  m.n = n;
  m.a.resize(static_cast<std::size_t>(n) * n);
  Rng rng(seed);
  for (double& x : m.a) x = rng.uniform_real(0.0, 1.0 / n);
  return m;
}

void MatPower::setup(Cluster& cluster, const Matrix& m,
                     const std::string& base) {
  KVVec elements;
  elements.reserve(static_cast<std::size_t>(m.n) * m.n);
  for (uint32_t i = 0; i < m.n; ++i) {
    for (uint32_t j = 0; j < m.n; ++j) {
      elements.emplace_back(pair_key(i, j), f64_value(m.at(i, j)));
    }
  }
  // Columns of M keyed by j, as (i, m_ij) "edge" lists.
  KVVec columns;
  columns.reserve(m.n);
  for (uint32_t j = 0; j < m.n; ++j) {
    std::vector<WEdge> col;
    col.reserve(m.n);
    for (uint32_t i = 0; i < m.n; ++i) {
      col.push_back(WEdge{i, m.at(i, j)});
    }
    Bytes v;
    encode_wedges(col, v);
    columns.emplace_back(u32_key(j), std::move(v));
  }
  cluster.dfs().write_file(base + "/elements", std::move(elements), -1,
                           nullptr);
  cluster.dfs().write_file(base + "/columns", std::move(columns), -1, nullptr);
}

// ---------------------------------------------------------------------------
// Baseline: two jobs per iteration
// ---------------------------------------------------------------------------

IterativeSpec MatPower::baseline(const std::string& base,
                                 const std::string& work_dir,
                                 int max_iterations) {
  IterativeSpec spec;
  spec.name = "matpower";
  spec.initial_input = base + "/elements";
  spec.work_dir = work_dir;
  spec.max_iterations = max_iterations;
  spec.distance_threshold = -1.0;  // fixed iteration count

  // Stage 0 (Map 1 / Reduce 1): extract columns of M and rows of N keyed by
  // the join dimension j, then join.
  IterativeSpec::Stage s0;
  s0.mapper = make_mapper([](const Bytes& key, const Bytes& value,
                             Emitter& out) {
    // N element <(j,k), n_jk> -> <j, (N, k, n_jk)>
    uint32_t j, k;
    MatPower::decode_pair_key(key, j, k);
    Bytes v;
    v.push_back(kNTag);
    encode_u32(k, v);
    v.append(value);
    out.emit(u32_key(j), std::move(v));
  });
  s0.side_inputs.push_back(InputSpec{
      base + "/elements",
      make_mapper([](const Bytes& key, const Bytes& value, Emitter& out) {
        // M element <(i,j), m_ij> -> <j, (M, i, m_ij)>
        uint32_t i, j;
        MatPower::decode_pair_key(key, i, j);
        Bytes v;
        v.push_back(kMTag);
        encode_u32(i, v);
        v.append(value);
        out.emit(u32_key(j), std::move(v));
      })});
  s0.reducer = make_reducer([](const Bytes& key,
                               const std::vector<Bytes>& values,
                               Emitter& out) {
    // Join column j of M with row j of N into one record.
    std::vector<WEdge> m_col, n_row;
    for (const Bytes& v : values) {
      IMR_CHECK(v.size() >= 13);
      std::size_t pos = 1;
      uint32_t idx = decode_u32(v, pos);
      double x = decode_f64(v, pos);
      if (v[0] == kMTag) {
        m_col.push_back(WEdge{idx, x});
      } else {
        n_row.push_back(WEdge{idx, x});
      }
    }
    Bytes joined;
    encode_wedges(m_col, joined);
    encode_wedges(n_row, joined);
    out.emit(key, std::move(joined));
  });
  spec.stages.push_back(std::move(s0));

  // Stage 1 (Map 2 / Reduce 2): emit all partial products, sum them.
  IterativeSpec::Stage s1;
  s1.mapper = make_mapper([](const Bytes& /*key*/, const Bytes& value,
                             Emitter& out) {
    std::size_t pos = 0;
    uint64_t nm = decode_varint(value, pos);
    std::vector<WEdge> m_col;
    m_col.reserve(nm);
    for (uint64_t x = 0; x < nm; ++x) {
      WEdge e;
      e.dst = decode_u32(value, pos);
      e.weight = decode_f64(value, pos);
      m_col.push_back(e);
    }
    uint64_t nn = decode_varint(value, pos);
    std::vector<WEdge> n_row;
    n_row.reserve(nn);
    for (uint64_t x = 0; x < nn; ++x) {
      WEdge e;
      e.dst = decode_u32(value, pos);
      e.weight = decode_f64(value, pos);
      n_row.push_back(e);
    }
    for (const WEdge& m : m_col) {
      for (const WEdge& n : n_row) {
        out.emit(MatPower::pair_key(m.dst, n.dst),
                 f64_value(m.weight * n.weight));
      }
    }
  });
  s1.reducer = make_reducer([](const Bytes& key,
                               const std::vector<Bytes>& values,
                               Emitter& out) {
    double sum;
    sum_values(values, sum);
    out.emit(key, f64_value(sum));
  });
  s1.combiner = s1.reducer;
  spec.stages.push_back(std::move(s1));
  return spec;
}

// ---------------------------------------------------------------------------
// iMapReduce: two phases per iteration
// ---------------------------------------------------------------------------

IterJobConf MatPower::imapreduce(const std::string& base,
                                 const std::string& output_path,
                                 int max_iterations) {
  IterJobConf conf;
  conf.name = "matpower";
  conf.state_path = base + "/elements";
  conf.output_path = output_path;
  conf.max_iterations = max_iterations;
  conf.distance_threshold = -1.0;

  // Phase 0: re-key N by row j (no static data; §5.2.2: "in the first
  // map-reduce phase there is no join operation").
  PhaseConf p0;
  p0.mapper = make_iter_mapper([](const Bytes& key, const Bytes& state,
                                  const Bytes& /*stat*/, IterEmitter& out) {
    uint32_t j, k;
    MatPower::decode_pair_key(key, j, k);
    Bytes v;
    encode_u32(k, v);
    v.append(state);
    out.emit(u32_key(j), std::move(v));
  });
  p0.reducer = make_iter_reducer([](const Bytes& key,
                                    const std::vector<Bytes>& values,
                                    IterEmitter& out) {
    std::vector<WEdge> row;
    row.reserve(values.size());
    for (const Bytes& v : values) {
      std::size_t pos = 0;
      WEdge e;
      e.dst = decode_u32(v, pos);
      e.weight = decode_f64(v, pos);
      row.push_back(e);
    }
    Bytes enc;
    encode_wedges(row, enc);
    out.emit(key, std::move(enc));
  });
  conf.phases.push_back(std::move(p0));

  // Phase 1: join row j of N with static column j of M, multiply, sum.
  PhaseConf p1;
  p1.static_path = base + "/columns";
  p1.mapper = make_iter_mapper([](const Bytes& /*key*/, const Bytes& state,
                                  const Bytes& stat, IterEmitter& out) {
    if (stat.empty()) return;
    std::vector<WEdge> m_col = decode_wedges(stat);
    std::vector<WEdge> n_row = decode_wedges(state);
    for (const WEdge& m : m_col) {
      for (const WEdge& n : n_row) {
        out.emit(MatPower::pair_key(m.dst, n.dst),
                 f64_value(m.weight * n.weight));
      }
    }
  });
  p1.reducer = make_iter_reducer([](const Bytes& key,
                                    const std::vector<Bytes>& values,
                                    IterEmitter& out) {
    double sum;
    sum_values(values, sum);
    out.emit(key, f64_value(sum));
  });
  p1.combiner = make_iter_reducer([](const Bytes& key,
                                     const std::vector<Bytes>& values,
                                     IterEmitter& out) {
    double sum;
    sum_values(values, sum);
    out.emit(key, f64_value(sum));
  });
  conf.phases.push_back(std::move(p1));
  return conf;
}

Matrix MatPower::reference(const Matrix& m, int iterations) {
  Matrix cur = m;
  for (int it = 0; it < iterations; ++it) {
    Matrix next;
    next.n = m.n;
    next.a.assign(static_cast<std::size_t>(m.n) * m.n, 0.0);
    for (uint32_t i = 0; i < m.n; ++i) {
      for (uint32_t j = 0; j < m.n; ++j) {
        double mij = m.at(i, j);
        if (mij == 0) continue;
        for (uint32_t k = 0; k < m.n; ++k) {
          next.at(i, k) += mij * cur.at(j, k);
        }
      }
    }
    cur = std::move(next);
  }
  return cur;
}

Matrix MatPower::read_result(Cluster& cluster, const std::string& output_path,
                             uint32_t n) {
  Matrix m;
  m.n = n;
  m.a.assign(static_cast<std::size_t>(n) * n, 0.0);
  for (const auto& part : resolve_input_paths(cluster.dfs(), output_path)) {
    for (const KV& kv : cluster.dfs().read_all(part, -1, nullptr)) {
      uint32_t i, k;
      decode_pair_key(kv.key, i, k);
      IMR_CHECK(i < n && k < n);
      m.at(i, k) = as_f64(kv.value);
    }
  }
  return m;
}

}  // namespace imr
