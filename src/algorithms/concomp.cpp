#include "algorithms/concomp.h"

#include <algorithm>
#include <numeric>

#include "common/codec.h"
#include "common/error.h"
#include "imapreduce/api.h"
#include "mapreduce/engine.h"

namespace imr {

namespace {

constexpr char kLabelTag = 'l';
constexpr char kStructTag = 's';

std::vector<std::vector<uint32_t>> symmetrized(const Graph& g) {
  std::vector<std::vector<uint32_t>> adj(g.num_nodes());
  for (uint32_t u = 0; u < g.num_nodes(); ++u) {
    for (const WEdge& e : g.adj[u]) {
      adj[u].push_back(e.dst);
      adj[e.dst].push_back(u);
    }
  }
  for (auto& v : adj) {
    std::sort(v.begin(), v.end());
    v.erase(std::unique(v.begin(), v.end()), v.end());
  }
  return adj;
}

Bytes joined_value(uint32_t label, const std::vector<uint32_t>& adj) {
  Bytes v;
  encode_u32(label, v);
  encode_adj(adj, v);
  return v;
}

void decode_joined(BytesView v, uint32_t& label, std::vector<uint32_t>& adj) {
  std::size_t pos = 0;
  label = decode_u32(v, pos);
  adj = decode_adj(v.substr(pos));
}

}  // namespace

void ConComp::setup(Cluster& cluster, const Graph& g,
                    const std::string& base) {
  auto adj = symmetrized(g);
  KVVec joined, stat, state;
  for (uint32_t u = 0; u < g.num_nodes(); ++u) {
    Bytes key = u32_key(u);
    joined.emplace_back(key, joined_value(u, adj[u]));
    Bytes enc;
    encode_adj(adj[u], enc);
    stat.emplace_back(key, std::move(enc));
    state.emplace_back(std::move(key), u32_key(u));
  }
  cluster.dfs().write_file(base + "/joined", std::move(joined), -1, nullptr);
  cluster.dfs().write_file(base + "/static", std::move(stat), -1, nullptr);
  cluster.dfs().write_file(base + "/state", std::move(state), -1, nullptr);
}

IterativeSpec ConComp::baseline(const std::string& base,
                                const std::string& work_dir,
                                int max_iterations, double threshold) {
  IterativeSpec spec;
  spec.name = "concomp";
  spec.initial_input = base + "/joined";
  spec.work_dir = work_dir;
  spec.max_iterations = max_iterations;
  spec.distance_threshold = threshold;

  spec.set_body(
      make_mapper([](const Bytes& key, const Bytes& value, Emitter& out) {
        uint32_t label;
        std::vector<uint32_t> adj;
        decode_joined(value, label, adj);
        for (uint32_t v : adj) {
          Bytes enc;
          enc.push_back(kLabelTag);
          encode_u32(label, enc);
          out.emit(u32_key(v), std::move(enc));
        }
        Bytes s;
        s.push_back(kStructTag);
        s.append(value);
        out.emit(key, std::move(s));
      }),
      make_reducer([](const Bytes& key, const std::vector<Bytes>& values,
                      Emitter& out) {
        uint32_t best = UINT32_MAX;
        std::vector<uint32_t> adj;
        bool have_struct = false;
        for (const Bytes& v : values) {
          IMR_CHECK(!v.empty());
          std::size_t pos = 1;
          if (v[0] == kStructTag) {
            uint32_t own;
            decode_joined(BytesView(v).substr(1), own, adj);
            best = std::min(best, own);
            have_struct = true;
          } else {
            best = std::min(best, decode_u32(v, pos));
          }
        }
        IMR_CHECK_MSG(have_struct, "node without structure record");
        out.emit(key, joined_value(best, adj));
      }));

  spec.distance = [](const Bytes&, const Bytes& prev, const Bytes& cur) {
    uint32_t lp = UINT32_MAX, lc = UINT32_MAX;
    std::vector<uint32_t> unused;
    if (!prev.empty()) decode_joined(prev, lp, unused);
    if (!cur.empty()) decode_joined(cur, lc, unused);
    return lp == lc ? 0.0 : 1.0;
  };
  return spec;
}

IterJobConf ConComp::imapreduce(const std::string& base,
                                const std::string& output_path,
                                int max_iterations, double threshold) {
  IterJobConf conf;
  conf.name = "concomp";
  conf.state_path = base + "/state";
  conf.output_path = output_path;
  conf.max_iterations = max_iterations;
  conf.distance_threshold = threshold;

  PhaseConf phase;
  phase.static_path = base + "/static";
  phase.mapper = make_iter_mapper([](const Bytes& key, const Bytes& state,
                                     const Bytes& stat, IterEmitter& out) {
    uint32_t label = as_u32(state);
    if (!stat.empty()) {
      for (uint32_t v : decode_adj(stat)) {
        out.emit(u32_key(v), u32_key(label));
      }
    }
    out.emit(key, u32_key(label));
  },
  [](const StaticDeltaOp& op, const Bytes* old_value, KVVec& seeds) {
    // Re-seed the perturbed node so it re-announces its label over the new
    // neighbor list; the fallback (its own id) only applies to unseen keys.
    seeds.emplace_back(op.key, op.key);
    if (op.kind == DeltaOpKind::kErase) return false;
    // Refining iff edges only appeared: every old neighbor is still a
    // neighbor (lists are sorted and deduped by symmetrized()), so every
    // converged label remains reachable and min-propagation resumes.
    std::vector<uint32_t> old_adj =
        (old_value == nullptr || old_value->empty()) ? std::vector<uint32_t>{}
                                                     : decode_adj(*old_value);
    std::vector<uint32_t> new_adj = decode_adj(op.value);
    return std::includes(new_adj.begin(), new_adj.end(), old_adj.begin(),
                         old_adj.end());
  });
  phase.reducer = make_iter_reducer(
      [](const Bytes& key, const std::vector<Bytes>& values, IterEmitter& out) {
        uint32_t best = UINT32_MAX;
        for (const Bytes& v : values) best = std::min(best, as_u32(v));
        out.emit(key, u32_key(best));
      },
      [](const Bytes&, const Bytes& prev, const Bytes& cur) {
        if (prev.empty()) return 1.0;
        return as_u32(prev) == as_u32(cur) ? 0.0 : 1.0;
      },
      // Workset merge: keep the smaller component label (min is idempotent,
      // satisfying the monotonic-update contract).
      [](const Bytes&, const Bytes& prev, const Bytes& cur) {
        if (prev.empty()) return cur;
        return as_u32(cur) < as_u32(prev) ? cur : prev;
      });
  conf.phases.push_back(std::move(phase));
  return conf;
}

StaticDelta ConComp::static_delta(const Graph& before, const Graph& after) {
  IMR_CHECK_MSG(before.num_nodes() == after.num_nodes(),
                "session deltas keep the node universe fixed");
  auto old_adj = symmetrized(before);
  auto new_adj = symmetrized(after);
  StaticDelta delta;
  for (uint32_t u = 0; u < after.num_nodes(); ++u) {
    if (old_adj[u] == new_adj[u]) continue;
    Bytes enc;
    encode_adj(new_adj[u], enc);
    delta.upsert(u32_key(u), std::move(enc));
  }
  return delta;
}

std::vector<uint32_t> ConComp::reference(const Graph& g) {
  // Union-find with path compression.
  std::vector<uint32_t> parent(g.num_nodes());
  std::iota(parent.begin(), parent.end(), 0);
  std::function<uint32_t(uint32_t)> find = [&](uint32_t x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  };
  for (uint32_t u = 0; u < g.num_nodes(); ++u) {
    for (const WEdge& e : g.adj[u]) {
      uint32_t a = find(u), b = find(e.dst);
      if (a != b) parent[std::max(a, b)] = std::min(a, b);
    }
  }
  std::vector<uint32_t> label(g.num_nodes());
  // The fixpoint of min-label propagation is the minimum node id in each
  // component; with min-union above, that is exactly the root.
  for (uint32_t u = 0; u < g.num_nodes(); ++u) label[u] = find(u);
  return label;
}

std::vector<uint32_t> ConComp::reference_rounds(const Graph& g,
                                                int iterations) {
  auto adj = symmetrized(g);
  std::vector<uint32_t> label(g.num_nodes());
  std::iota(label.begin(), label.end(), 0);
  for (int it = 0; it < iterations; ++it) {
    std::vector<uint32_t> next = label;
    for (uint32_t u = 0; u < g.num_nodes(); ++u) {
      for (uint32_t v : adj[u]) next[v] = std::min(next[v], label[u]);
    }
    label = std::move(next);
  }
  return label;
}

namespace {
std::vector<uint32_t> read_labels(Cluster& cluster, const std::string& path,
                                  uint32_t num_nodes, bool joined) {
  std::vector<uint32_t> label(num_nodes, UINT32_MAX);
  for (const auto& part : resolve_input_paths(cluster.dfs(), path)) {
    for (const KV& kv : cluster.dfs().read_all(part, -1, nullptr)) {
      uint32_t u = as_u32(kv.key);
      IMR_CHECK(u < num_nodes);
      if (joined) {
        uint32_t l;
        std::vector<uint32_t> unused;
        decode_joined(kv.value, l, unused);
        label[u] = l;
      } else {
        label[u] = as_u32(kv.value);
      }
    }
  }
  return label;
}
}  // namespace

std::vector<uint32_t> ConComp::read_result_imr(Cluster& cluster,
                                               const std::string& output_path,
                                               uint32_t num_nodes) {
  return read_labels(cluster, output_path, num_nodes, /*joined=*/false);
}

std::vector<uint32_t> ConComp::read_result_mr(Cluster& cluster,
                                              const std::string& output_path,
                                              uint32_t num_nodes) {
  return read_labels(cluster, output_path, num_nodes, /*joined=*/true);
}

}  // namespace imr
