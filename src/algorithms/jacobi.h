// Jacobi method for solving Ax = b (§5.1's broadcast example):
//   x_i^(k+1) = (b_i - sum_{j != i} a_ij x_j^(k)) / a_ii
//
// Static: the matrix rows <i, (b_i, a_ii, [(j, a_ij)...])>, hash-partitioned
// across map tasks. State: the solution vector entries <i, x_i>, broadcast
// one-to-all from every reduce task (each mapper needs the whole x).
#pragma once

#include <vector>

#include "cluster/cluster.h"
#include "common/codec.h"  // WEdge
#include "imapreduce/conf.h"
#include "mapreduce/iterative_driver.h"

namespace imr {

struct JacobiSystem {
  uint32_t n = 0;
  std::vector<double> b;
  std::vector<double> diag;
  std::vector<std::vector<WEdge>> off_diag;  // (j, a_ij), j != i
};

struct Jacobi {
  // Random diagonally-dominant sparse system.
  static JacobiSystem generate(uint32_t n, double density, uint64_t seed);

  // Writes <base>/rows (static) and <base>/x0 (state, all zeros).
  static void setup(Cluster& cluster, const JacobiSystem& sys,
                    const std::string& base);

  // Chain-of-jobs baseline (x distributed via cache, rows re-read).
  static IterativeSpec baseline(const std::string& base,
                                const std::string& work_dir,
                                int max_iterations, double threshold = -1.0);

  // iMapReduce one2all job.
  static IterJobConf imapreduce(const std::string& base,
                                const std::string& output_path,
                                int max_iterations, double threshold = -1.0);

  static std::vector<double> reference(const JacobiSystem& sys,
                                       int iterations);

  static std::vector<double> read_result(Cluster& cluster,
                                         const std::string& output_path,
                                         uint32_t n);
};

}  // namespace imr
