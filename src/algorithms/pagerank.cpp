#include "algorithms/pagerank.h"

#include <cmath>

#include "common/codec.h"
#include "common/error.h"
#include "imapreduce/api.h"

namespace imr {

namespace {

constexpr char kPartialTag = 'p';
constexpr char kStructTag = 's';

constexpr const char* kDampingParam = "pagerank.damping";
constexpr const char* kNumNodesParam = "pagerank.num_nodes";

double manhattan(double a, double b) { return std::abs(a - b); }

}  // namespace

Bytes PageRank::encode_joined(double rank, const std::vector<uint32_t>& adj) {
  Bytes v;
  encode_f64(rank, v);
  encode_adj(adj, v);
  return v;
}

void PageRank::decode_joined(BytesView joined, double& rank,
                             std::vector<uint32_t>& adj) {
  std::size_t pos = 0;
  rank = decode_f64(joined, pos);
  adj = decode_adj(joined.substr(pos));
}

void PageRank::setup(Cluster& cluster, const Graph& g,
                     const std::string& base) {
  const double r0 = 1.0 / g.num_nodes();
  KVVec joined, stat, state;
  joined.reserve(g.num_nodes());
  stat.reserve(g.num_nodes());
  state.reserve(g.num_nodes());
  for (uint32_t u = 0; u < g.num_nodes(); ++u) {
    std::vector<uint32_t> adj;
    adj.reserve(g.adj[u].size());
    for (const WEdge& e : g.adj[u]) adj.push_back(e.dst);
    Bytes key = u32_key(u);
    joined.emplace_back(key, encode_joined(r0, adj));
    Bytes enc;
    encode_adj(adj, enc);
    stat.emplace_back(key, std::move(enc));
    state.emplace_back(std::move(key), f64_value(r0));
  }
  cluster.dfs().write_file(base + "/joined", std::move(joined), -1, nullptr);
  cluster.dfs().write_file(base + "/static", std::move(stat), -1, nullptr);
  cluster.dfs().write_file(base + "/state", std::move(state), -1, nullptr);
}

IterativeSpec PageRank::baseline(const std::string& base,
                                 const std::string& work_dir,
                                 uint32_t num_nodes, int max_iterations,
                                 double threshold, double damping) {
  IterativeSpec spec;
  spec.name = "pagerank";
  spec.initial_input = base + "/joined";
  spec.work_dir = work_dir;
  spec.max_iterations = max_iterations;
  spec.distance_threshold = threshold;
  spec.params.set_double(kDampingParam, damping);
  spec.params.set_int(kNumNodesParam, num_nodes);

  class PrMapper : public Mapper {
   public:
    void configure(const Params& params) override {
      damping_ = params.get_double(kDampingParam);
      n_ = static_cast<double>(params.get_int(kNumNodesParam));
    }
    void map(const Bytes& key, const Bytes& value, Emitter& out) override {
      double rank;
      std::vector<uint32_t> adj;
      PageRank::decode_joined(value, rank, adj);
      if (!adj.empty()) {
        double share = damping_ * rank / static_cast<double>(adj.size());
        for (uint32_t v : adj) {
          Bytes enc;
          enc.push_back(kPartialTag);
          encode_f64(share, enc);
          out.emit(u32_key(v), std::move(enc));
        }
      }
      // Retain (1-d)/|V| along with the outbound neighbor set.
      Bytes s;
      s.push_back(kStructTag);
      s.append(PageRank::encode_joined((1.0 - damping_) / n_, adj));
      out.emit(key, std::move(s));
    }

   private:
    double damping_ = kDefaultDamping;
    double n_ = 1;
  };

  spec.set_body(
      [] { return std::make_unique<PrMapper>(); },
      make_reducer([](const Bytes& key, const std::vector<Bytes>& values,
                      Emitter& out) {
        double sum = 0;
        std::vector<uint32_t> adj;
        bool have_struct = false;
        for (const Bytes& v : values) {
          IMR_CHECK(!v.empty());
          if (v[0] == kStructTag) {
            double retained;
            PageRank::decode_joined(BytesView(v).substr(1), retained, adj);
            sum += retained;
            have_struct = true;
          } else {
            std::size_t pos = 1;
            sum += decode_f64(v, pos);
          }
        }
        IMR_CHECK_MSG(have_struct, "node without structure record");
        out.emit(key, PageRank::encode_joined(sum, adj));
      }));

  spec.distance = [](const Bytes&, const Bytes& prev, const Bytes& cur) {
    double rp = 0, rc = 0;
    std::vector<uint32_t> unused;
    if (!prev.empty()) PageRank::decode_joined(prev, rp, unused);
    if (!cur.empty()) PageRank::decode_joined(cur, rc, unused);
    return manhattan(rp, rc);
  };
  return spec;
}

IterJobConf PageRank::imapreduce(const std::string& base,
                                 const std::string& output_path,
                                 uint32_t num_nodes, int max_iterations,
                                 double threshold, double damping) {
  IterJobConf conf;
  conf.name = "pagerank";
  conf.state_path = base + "/state";
  conf.output_path = output_path;
  conf.max_iterations = max_iterations;
  conf.distance_threshold = threshold;
  conf.params.set_double(kDampingParam, damping);
  conf.params.set_int(kNumNodesParam, num_nodes);

  class PrIterMapper : public IterMapper {
   public:
    void configure(const Params& params) override {
      damping_ = params.get_double(kDampingParam);
      n_ = static_cast<double>(params.get_int(kNumNodesParam));
    }
    void map(const Bytes& key, const Bytes& state, const Bytes& stat,
             IterEmitter& out) override {
      double rank = as_f64(state);
      if (!stat.empty()) {
        std::vector<uint32_t> adj = decode_adj(stat);
        if (!adj.empty()) {
          double share = damping_ * rank / static_cast<double>(adj.size());
          for (uint32_t v : adj) out.emit(u32_key(v), f64_value(share));
        }
      }
      out.emit(key, f64_value((1.0 - damping_) / n_));
    }

   private:
    double damping_ = kDefaultDamping;
    double n_ = 1;
  };

  PhaseConf phase;
  phase.static_path = base + "/static";
  phase.mapper = [] { return std::make_unique<PrIterMapper>(); };
  phase.reducer = make_iter_reducer(
      [](const Bytes& key, const std::vector<Bytes>& values, IterEmitter& out) {
        double sum = 0;
        for (const Bytes& v : values) sum += as_f64(v);
        out.emit(key, f64_value(sum));
      },
      [](const Bytes&, const Bytes& prev, const Bytes& cur) {
        double rp = prev.empty() ? 0.0 : as_f64(prev);
        double rc = cur.empty() ? 0.0 : as_f64(cur);
        return manhattan(rp, rc);
      });
  conf.phases.push_back(std::move(phase));
  return conf;
}

// --- Delta-accumulation formulation ---

namespace {
constexpr const char* kDeltaThresholdParam = "pagerank.delta_threshold";
constexpr std::size_t kDeltaStateSize = 16;  // f64 rank | f64 delta
}  // namespace

Bytes PageRank::encode_delta(double rank, double delta) {
  Bytes v;
  encode_f64(rank, v);
  encode_f64(delta, v);
  return v;
}

void PageRank::decode_delta(BytesView v, double& rank, double& delta) {
  std::size_t pos = 0;
  rank = decode_f64(v, pos);
  delta = decode_f64(v, pos);
}

void PageRank::setup_delta(Cluster& cluster, const Graph& g,
                           const std::string& base, double damping) {
  // Every node starts with its base mass (1-d)/|V| both banked (rank) and
  // pending propagation (delta). Accumulating d^k-damped shares of this
  // seed over all paths is exactly the geometric-series expansion of the
  // PageRank fixpoint, so the converged ranks match the power-iteration
  // job's.
  KVVec stat, state;
  stat.reserve(g.num_nodes());
  state.reserve(g.num_nodes());
  const double r0 = (1.0 - damping) / g.num_nodes();
  for (uint32_t u = 0; u < g.num_nodes(); ++u) {
    std::vector<uint32_t> adj;
    adj.reserve(g.adj[u].size());
    for (const WEdge& e : g.adj[u]) adj.push_back(e.dst);
    Bytes key = u32_key(u);
    Bytes enc;
    encode_adj(adj, enc);
    stat.emplace_back(key, std::move(enc));
    state.emplace_back(std::move(key), encode_delta(r0, r0));
  }
  cluster.dfs().write_file(base + "/static", std::move(stat), -1, nullptr);
  cluster.dfs().write_file(base + "/state", std::move(state), -1, nullptr);
}

IterJobConf PageRank::imapreduce_delta(const std::string& base,
                                       const std::string& output_path,
                                       int max_iterations,
                                       double delta_threshold,
                                       double damping) {
  IterJobConf conf;
  conf.name = "pagerank_delta";
  conf.state_path = base + "/state";
  conf.output_path = output_path;
  conf.max_iterations = max_iterations;
  // Count-changed distance: bulk runs stop when no node's state moved —
  // the same iteration a workset run's frontier drains.
  conf.distance_threshold = 0.5;
  conf.params.set_double(kDampingParam, damping);
  conf.params.set_double(kDeltaThresholdParam, delta_threshold);

  class PrDeltaMapper : public IterMapper {
   public:
    void configure(const Params& params) override {
      damping_ = params.get_double(kDampingParam);
      threshold_ = params.get_double(kDeltaThresholdParam);
    }
    void map(const Bytes& key, const Bytes& state, const Bytes& stat,
             IterEmitter& out) override {
      double rank, delta;
      PageRank::decode_delta(state, rank, delta);
      if (std::abs(delta) > threshold_ && !stat.empty()) {
        std::vector<uint32_t> adj = decode_adj(stat);
        if (!adj.empty()) {
          double share = damping_ * delta / static_cast<double>(adj.size());
          for (uint32_t v : adj) out.emit(u32_key(v), f64_value(share));
        }
      }
      // Retain the banked rank with the delta consumed: whatever shares
      // arrive at the reduce become the node's next delta.
      out.emit(key, PageRank::encode_delta(rank, 0.0));
    }

    bool perturbed_keys(const StaticDeltaOp&, const Bytes*,
                        KVVec&) override {
      // Rank sums are not monotone under edge changes: a rewired edge's
      // past shares are already banked downstream and cannot be retracted
      // by forward propagation. Report non-refining so the session resets
      // to the original initial state and replays over the mutated static.
      return false;
    }

   private:
    double damping_ = kDefaultDamping;
    double threshold_ = 0.0;
  };

  PhaseConf phase;
  phase.static_path = base + "/static";
  phase.mapper = [] { return std::make_unique<PrDeltaMapper>(); };
  phase.reducer = make_iter_reducer(
      [](const Bytes& key, const std::vector<Bytes>& values, IterEmitter& out) {
        // Size dispatch: the 16-byte retain carries the banked rank, the
        // 8-byte values are incoming shares.
        double rank = 0, shares = 0;
        bool have_retain = false;
        for (const Bytes& v : values) {
          if (v.size() == kDeltaStateSize) {
            double r, d;
            PageRank::decode_delta(v, r, d);
            rank = r;
            have_retain = true;
          } else {
            shares += as_f64(v);
          }
        }
        if (have_retain) {
          out.emit(key, PageRank::encode_delta(rank + shares, shares));
        } else {
          // Workset mode only: the key was outside the frontier, so no
          // retain arrived. Emit the share sum as an 8-byte partial for
          // merge() to fold into the previous state.
          out.emit(key, f64_value(shares));
        }
      },
      [](const Bytes&, const Bytes& prev, const Bytes& cur) {
        return prev == cur ? 0.0 : 1.0;  // count-changed
      },
      [](const Bytes&, const Bytes& prev, const Bytes& cur) {
        if (cur.size() == kDeltaStateSize) return cur;  // retain was present
        double shares = as_f64(cur);
        double rank = 0, delta = 0;
        if (!prev.empty()) PageRank::decode_delta(prev, rank, delta);
        return PageRank::encode_delta(rank + shares, shares);
      });
  conf.phases.push_back(std::move(phase));
  return conf;
}

StaticDelta PageRank::static_delta(const Graph& before, const Graph& after) {
  IMR_CHECK_MSG(before.num_nodes() == after.num_nodes(),
                "session deltas keep the node universe fixed");
  StaticDelta delta;
  for (uint32_t u = 0; u < after.num_nodes(); ++u) {
    std::vector<uint32_t> old_adj, new_adj;
    old_adj.reserve(before.adj[u].size());
    for (const WEdge& e : before.adj[u]) old_adj.push_back(e.dst);
    new_adj.reserve(after.adj[u].size());
    for (const WEdge& e : after.adj[u]) new_adj.push_back(e.dst);
    if (old_adj == new_adj) continue;
    Bytes enc;
    encode_adj(new_adj, enc);
    delta.upsert(u32_key(u), std::move(enc));
  }
  return delta;
}

std::vector<double> PageRank::reference_delta(const Graph& g, int iterations,
                                              double delta_threshold,
                                              double damping) {
  const uint32_t n = g.num_nodes();
  const double r0 = (1.0 - damping) / n;
  std::vector<double> rank(n, r0);
  std::vector<double> delta(n, r0);
  for (int it = 0; it < iterations; ++it) {
    std::vector<double> next(n, 0.0);
    bool any = false;
    for (uint32_t u = 0; u < n; ++u) {
      if (std::abs(delta[u]) <= delta_threshold || g.adj[u].empty()) continue;
      any = true;
      double share = damping * delta[u] / static_cast<double>(g.adj[u].size());
      for (const WEdge& e : g.adj[u]) next[e.dst] += share;
    }
    for (uint32_t u = 0; u < n; ++u) rank[u] += next[u];
    delta = std::move(next);
    if (!any) break;
  }
  return rank;
}

std::vector<double> PageRank::read_result_delta(Cluster& cluster,
                                                const std::string& output_path,
                                                uint32_t num_nodes) {
  std::vector<double> rank(num_nodes, 0.0);
  for (const auto& part : resolve_input_paths(cluster.dfs(), output_path)) {
    for (const KV& kv : cluster.dfs().read_all(part, -1, nullptr)) {
      uint32_t u = as_u32(kv.key);
      IMR_CHECK(u < num_nodes);
      double r, d;
      decode_delta(kv.value, r, d);
      rank[u] = r;
    }
  }
  return rank;
}

std::vector<double> PageRank::reference(const Graph& g, int iterations,
                                        double damping) {
  const uint32_t n = g.num_nodes();
  std::vector<double> rank(n, 1.0 / n);
  for (int it = 0; it < iterations; ++it) {
    std::vector<double> next(n, (1.0 - damping) / n);
    for (uint32_t u = 0; u < n; ++u) {
      if (g.adj[u].empty()) continue;
      double share = damping * rank[u] / static_cast<double>(g.adj[u].size());
      for (const WEdge& e : g.adj[u]) next[e.dst] += share;
    }
    rank = std::move(next);
  }
  return rank;
}

namespace {
std::vector<double> read_ranks(Cluster& cluster, const std::string& path,
                               uint32_t num_nodes, bool joined) {
  std::vector<double> rank(num_nodes, 0.0);
  for (const auto& part : resolve_input_paths(cluster.dfs(), path)) {
    for (const KV& kv : cluster.dfs().read_all(part, -1, nullptr)) {
      uint32_t u = as_u32(kv.key);
      IMR_CHECK(u < num_nodes);
      if (joined) {
        double r;
        std::vector<uint32_t> unused;
        PageRank::decode_joined(kv.value, r, unused);
        rank[u] = r;
      } else {
        rank[u] = as_f64(kv.value);
      }
    }
  }
  return rank;
}
}  // namespace

std::vector<double> PageRank::read_result_mr(Cluster& cluster,
                                             const std::string& output_path,
                                             uint32_t num_nodes) {
  return read_ranks(cluster, output_path, num_nodes, /*joined=*/true);
}

std::vector<double> PageRank::read_result_imr(Cluster& cluster,
                                              const std::string& output_path,
                                              uint32_t num_nodes) {
  return read_ranks(cluster, output_path, num_nodes, /*joined=*/false);
}

}  // namespace imr
