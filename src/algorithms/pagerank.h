// PageRank (§2.1.2).
//
// State: per-node ranking score R(v). Static: out-neighbor list.
// Map:    emit <v, d·R(u)/|N+(u)|> for each out-neighbor, retain
//         <u, (1-d)/|V|>.
// Reduce: sum.
// Distance (termination): Manhattan distance between consecutive rank
// vectors (the paper's Fig. 3 example uses threshold 0.01).
#pragma once

#include <vector>

#include "cluster/cluster.h"
#include "graph/graph.h"
#include "imapreduce/conf.h"
#include "imapreduce/delta.h"
#include "mapreduce/iterative_driver.h"

namespace imr {

struct PageRank {
  static constexpr double kDefaultDamping = 0.8;

  static void setup(Cluster& cluster, const Graph& g, const std::string& base);

  static IterativeSpec baseline(const std::string& base,
                                const std::string& work_dir,
                                uint32_t num_nodes, int max_iterations,
                                double threshold = -1.0,
                                double damping = kDefaultDamping);

  static IterJobConf imapreduce(const std::string& base,
                                const std::string& output_path,
                                uint32_t num_nodes, int max_iterations,
                                double threshold = -1.0,
                                double damping = kDefaultDamping);

  // Synchronous power-iteration reference with the paper's update rule.
  static std::vector<double> reference(const Graph& g, int iterations,
                                       double damping = kDefaultDamping);

  static std::vector<double> read_result_mr(Cluster& cluster,
                                            const std::string& output_path,
                                            uint32_t num_nodes);
  static std::vector<double> read_result_imr(Cluster& cluster,
                                             const std::string& output_path,
                                             uint32_t num_nodes);

  static Bytes encode_joined(double rank, const std::vector<uint32_t>& adj);
  static void decode_joined(BytesView joined, double& rank,
                            std::vector<uint32_t>& adj);

  // --- Delta-accumulation formulation (PageRank-with-threshold) ---
  //
  // The plain power-iteration job above is NOT workset-eligible: a node's
  // new rank sums contributions from ALL in-neighbors, so skipping the
  // unchanged ones silently drops their share. The delta formulation makes
  // the update accumulative instead: state per node is (rank, delta), rank
  // accumulates every share ever received plus the (1-d)/|V| base, delta is
  // the share mass received last iteration and still to be propagated. The
  // mapper forwards d·delta/deg to out-neighbors only while |delta| exceeds
  // `delta_threshold` (the "with-threshold" knob that makes convergence
  // finite) and retains (rank, 0); the reducer folds incoming shares into
  // both fields. This satisfies the workset monotonic-update contract —
  // IterReducer::merge reconstructs (rank + shares, shares) from an
  // 8-byte share-only partial when the node was outside the frontier —
  // and the fixpoint is the PageRank vector (geometric-series expansion).
  static void setup_delta(Cluster& cluster, const Graph& g,
                          const std::string& base,
                          double damping = kDefaultDamping);
  static IterJobConf imapreduce_delta(const std::string& base,
                                      const std::string& output_path,
                                      int max_iterations,
                                      double delta_threshold = 0.0,
                                      double damping = kDefaultDamping);
  // Synchronous simulation of the delta scheme (same threshold semantics),
  // for approximate value checks; byte-level checks compare bulk vs workset
  // runs of the job itself.
  static std::vector<double> reference_delta(const Graph& g, int iterations,
                                             double delta_threshold = 0.0,
                                             double damping = kDefaultDamping);
  static std::vector<double> read_result_delta(Cluster& cluster,
                                               const std::string& output_path,
                                               uint32_t num_nodes);
  static Bytes encode_delta(double rank, double delta);
  static void decode_delta(BytesView v, double& rank, double& delta);

  // Session update batch for the delta job: one upsert of the full new
  // out-neighbor list per node whose list changed (same node set). The
  // perturbed_keys hook on the delta mapper always reports non-refining:
  // an edge change redistributes share mass that is already banked in
  // downstream ranks, so the only byte-exact reconvergence is a reset_all
  // replay from the original initial state over the mutated static data.
  static StaticDelta static_delta(const Graph& before, const Graph& after);
};

}  // namespace imr
