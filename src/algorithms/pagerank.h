// PageRank (§2.1.2).
//
// State: per-node ranking score R(v). Static: out-neighbor list.
// Map:    emit <v, d·R(u)/|N+(u)|> for each out-neighbor, retain
//         <u, (1-d)/|V|>.
// Reduce: sum.
// Distance (termination): Manhattan distance between consecutive rank
// vectors (the paper's Fig. 3 example uses threshold 0.01).
#pragma once

#include <vector>

#include "cluster/cluster.h"
#include "graph/graph.h"
#include "imapreduce/conf.h"
#include "mapreduce/iterative_driver.h"

namespace imr {

struct PageRank {
  static constexpr double kDefaultDamping = 0.8;

  static void setup(Cluster& cluster, const Graph& g, const std::string& base);

  static IterativeSpec baseline(const std::string& base,
                                const std::string& work_dir,
                                uint32_t num_nodes, int max_iterations,
                                double threshold = -1.0,
                                double damping = kDefaultDamping);

  static IterJobConf imapreduce(const std::string& base,
                                const std::string& output_path,
                                uint32_t num_nodes, int max_iterations,
                                double threshold = -1.0,
                                double damping = kDefaultDamping);

  // Synchronous power-iteration reference with the paper's update rule.
  static std::vector<double> reference(const Graph& g, int iterations,
                                       double damping = kDefaultDamping);

  static std::vector<double> read_result_mr(Cluster& cluster,
                                            const std::string& output_path,
                                            uint32_t num_nodes);
  static std::vector<double> read_result_imr(Cluster& cluster,
                                             const std::string& output_path,
                                             uint32_t num_nodes);

  static Bytes encode_joined(double rank, const std::vector<uint32_t>& adj);
  static void decode_joined(BytesView joined, double& rank,
                            std::vector<uint32_t>& adj);
};

}  // namespace imr
