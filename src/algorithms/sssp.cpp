#include "algorithms/sssp.h"

#include <limits>
#include <map>

#include "common/codec.h"
#include "common/error.h"
#include "imapreduce/api.h"

namespace imr {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// Shuffle value tags for the baseline (candidate distance vs retained
// structure record).
constexpr char kDistTag = 'd';
constexpr char kStructTag = 's';

// Count-changed distance for termination: 1 per node whose shortest distance
// changed this iteration.
double changed(double prev, double cur) { return prev == cur ? 0.0 : 1.0; }

// Per-destination minimum edge weight of an encoded out-edge list (parallel
// edges collapse to the cheapest — the only one relaxation can ever use).
std::map<uint32_t, double> min_weight_by_dst(BytesView encoded) {
  std::map<uint32_t, double> min_w;
  if (encoded.empty()) return min_w;  // no static record: no out-edges
  for (const WEdge& e : decode_wedges(encoded)) {
    auto [it, fresh] = min_w.emplace(e.dst, e.weight);
    if (!fresh && e.weight < it->second) it->second = e.weight;
  }
  return min_w;
}

}  // namespace

Bytes Sssp::encode_joined(double dist, const std::vector<WEdge>& edges) {
  Bytes v;
  encode_f64(dist, v);
  encode_wedges(edges, v);
  return v;
}

void Sssp::decode_joined(BytesView joined, double& dist,
                         std::vector<WEdge>& edges) {
  std::size_t pos = 0;
  dist = decode_f64(joined, pos);
  edges = decode_wedges(joined.substr(pos));
}

void Sssp::setup(Cluster& cluster, const Graph& g, uint32_t source,
                 const std::string& base) {
  IMR_CHECK_MSG(source < g.num_nodes(), "source node out of range");
  KVVec joined, stat, state;
  joined.reserve(g.num_nodes());
  stat.reserve(g.num_nodes());
  state.reserve(g.num_nodes());
  for (uint32_t u = 0; u < g.num_nodes(); ++u) {
    double d = u == source ? 0.0 : kInf;
    Bytes key = u32_key(u);
    joined.emplace_back(key, encode_joined(d, g.adj[u]));
    Bytes edges;
    encode_wedges(g.adj[u], edges);
    stat.emplace_back(key, std::move(edges));
    state.emplace_back(std::move(key), f64_value(d));
  }
  cluster.dfs().write_file(base + "/joined", std::move(joined), -1, nullptr);
  cluster.dfs().write_file(base + "/static", std::move(stat), -1, nullptr);
  cluster.dfs().write_file(base + "/state", std::move(state), -1, nullptr);
}

IterativeSpec Sssp::baseline(const std::string& base,
                             const std::string& work_dir, int max_iterations,
                             double threshold) {
  IterativeSpec spec;
  spec.name = "sssp";
  spec.initial_input = base + "/joined";
  spec.work_dir = work_dir;
  spec.max_iterations = max_iterations;
  spec.distance_threshold = threshold;

  spec.set_body(
      make_mapper([](const Bytes& key, const Bytes& value, Emitter& out) {
        double d;
        std::vector<WEdge> edges;
        Sssp::decode_joined(value, d, edges);
        if (d != kInf) {
          for (const WEdge& e : edges) {
            Bytes v;
            v.push_back(kDistTag);
            encode_f64(d + e.weight, v);
            out.emit(u32_key(e.dst), std::move(v));
          }
        }
        Bytes s;
        s.push_back(kStructTag);
        s.append(value);
        out.emit(key, std::move(s));
      }),
      make_reducer([](const Bytes& key, const std::vector<Bytes>& values,
                      Emitter& out) {
        double best = kInf;
        double own = kInf;
        std::vector<WEdge> edges;
        bool have_struct = false;
        for (const Bytes& v : values) {
          IMR_CHECK(!v.empty());
          std::size_t pos = 1;
          if (v[0] == kStructTag) {
            Sssp::decode_joined(BytesView(v).substr(1), own, edges);
            have_struct = true;
          } else {
            best = std::min(best, decode_f64(v, pos));
          }
        }
        IMR_CHECK_MSG(have_struct, "node without structure record");
        best = std::min(best, own);
        out.emit(key, Sssp::encode_joined(best, edges));
      }));

  spec.distance = [](const Bytes&, const Bytes& prev, const Bytes& cur) {
    double dp = kInf, dc = kInf;
    std::vector<WEdge> unused;
    if (!prev.empty()) Sssp::decode_joined(prev, dp, unused);
    if (!cur.empty()) Sssp::decode_joined(cur, dc, unused);
    return changed(dp, dc);
  };
  return spec;
}

IterJobConf Sssp::imapreduce(const std::string& base,
                             const std::string& output_path,
                             int max_iterations, double threshold) {
  IterJobConf conf;
  conf.name = "sssp";
  conf.state_path = base + "/state";
  conf.output_path = output_path;
  conf.max_iterations = max_iterations;
  conf.distance_threshold = threshold;

  PhaseConf phase;
  phase.static_path = base + "/static";
  phase.mapper = make_iter_mapper([](const Bytes& key, const Bytes& state,
                                     const Bytes& stat, IterEmitter& out) {
    double d = as_f64(state);
    if (d != kInf && !stat.empty()) {
      for (const WEdge& e : decode_wedges(stat)) {
        out.emit(u32_key(e.dst), f64_value(d + e.weight));
      }
    }
    out.emit(key, f64_value(d));  // retain the current shortest distance
  },
  [](const StaticDeltaOp& op, const Bytes* old_value, KVVec& seeds) {
    // The perturbed node re-relaxes over its mutated out-edges once it
    // re-enters the frontier; its converged distance is resident in the
    // paired reduce, so the fallback is only used for unseen keys.
    seeds.emplace_back(op.key, f64_value(kInf));
    if (op.kind == DeltaOpKind::kErase) return false;
    // Refining iff no old destination got farther: each destination of the
    // OLD edge list keeps a new edge at most as heavy. Then every old
    // relaxation is still achievable and converged distances stay valid
    // upper bounds for the resumed min-fold.
    auto new_min = min_weight_by_dst(op.value);
    for (const auto& [dst, w] :
         min_weight_by_dst(old_value ? BytesView(*old_value) : BytesView())) {
      auto it = new_min.find(dst);
      if (it == new_min.end() || it->second > w) return false;
    }
    return true;
  });
  phase.reducer = make_iter_reducer(
      [](const Bytes& key, const std::vector<Bytes>& values, IterEmitter& out) {
        double best = kInf;
        for (const Bytes& v : values) best = std::min(best, as_f64(v));
        out.emit(key, f64_value(best));
      },
      [](const Bytes&, const Bytes& prev, const Bytes& cur) {
        double dp = prev.empty() ? kInf : as_f64(prev);
        double dc = cur.empty() ? kInf : as_f64(cur);
        return changed(dp, dc);
      },
      // Workset merge: keep the shorter distance. Min is idempotent, so
      // re-applying an already-applied candidate never moves the state —
      // exactly the monotonic-update contract workset_mode requires.
      [](const Bytes&, const Bytes& prev, const Bytes& cur) {
        if (prev.empty()) return cur;
        return as_f64(cur) < as_f64(prev) ? cur : prev;
      });
  conf.phases.push_back(std::move(phase));
  return conf;
}

StaticDelta Sssp::static_delta(const Graph& before, const Graph& after) {
  IMR_CHECK_MSG(before.num_nodes() == after.num_nodes(),
                "session deltas keep the node universe fixed");
  StaticDelta delta;
  for (uint32_t u = 0; u < after.num_nodes(); ++u) {
    Bytes old_edges, new_edges;
    encode_wedges(before.adj[u], old_edges);
    encode_wedges(after.adj[u], new_edges);
    if (old_edges == new_edges) continue;
    delta.upsert(u32_key(u), std::move(new_edges));
  }
  return delta;
}

std::vector<double> Sssp::reference(const Graph& g, uint32_t source,
                                    int iterations) {
  std::vector<double> dist(g.num_nodes(), kInf);
  dist[source] = 0.0;
  int max_rounds = iterations < 0 ? static_cast<int>(g.num_nodes()) : iterations;
  for (int round = 0; round < max_rounds; ++round) {
    std::vector<double> next = dist;
    bool any_change = false;
    for (uint32_t u = 0; u < g.num_nodes(); ++u) {
      if (dist[u] == kInf) continue;
      for (const WEdge& e : g.adj[u]) {
        double cand = dist[u] + e.weight;
        if (cand < next[e.dst]) {
          next[e.dst] = cand;
          any_change = true;
        }
      }
    }
    dist = std::move(next);
    if (iterations < 0 && !any_change) break;
  }
  return dist;
}

namespace {
std::vector<double> read_distances(Cluster& cluster, const std::string& path,
                                   uint32_t num_nodes, bool joined) {
  std::vector<double> dist(num_nodes, kInf);
  for (const auto& part : resolve_input_paths(cluster.dfs(), path)) {
    for (const KV& kv : cluster.dfs().read_all(part, -1, nullptr)) {
      uint32_t u = as_u32(kv.key);
      IMR_CHECK(u < num_nodes);
      if (joined) {
        double d;
        std::vector<WEdge> unused;
        Sssp::decode_joined(kv.value, d, unused);
        dist[u] = d;
      } else {
        dist[u] = as_f64(kv.value);
      }
    }
  }
  return dist;
}
}  // namespace

std::vector<double> Sssp::read_result_mr(Cluster& cluster,
                                         const std::string& output_path,
                                         uint32_t num_nodes) {
  return read_distances(cluster, output_path, num_nodes, /*joined=*/true);
}

std::vector<double> Sssp::read_result_imr(Cluster& cluster,
                                          const std::string& output_path,
                                          uint32_t num_nodes) {
  return read_distances(cluster, output_path, num_nodes, /*joined=*/false);
}

}  // namespace imr
