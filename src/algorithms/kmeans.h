// K-means clustering (§5.1).
//
// Static: the point coordinates, hash-partitioned across map tasks.
// State:  the k cluster centroids — broadcast from every reduce task to every
//         map task (one2all mapping), so map execution is synchronous.
// Map:    assign each point to its nearest centroid; emit
//         <cid, (count=1, coords)>.
// Reduce: average the assigned points into the new centroid.
// Combiner (optional, §5.1.3): pre-sum (count, coords) pairs map-side.
// Auxiliary phase (§5.3): counts points that changed cluster; signals
//         termination when fewer than a threshold moved.
//
// The paper clusters Last.fm users by listening history (359,347 users, 48.9
// preferred artists each). That log is not available, so the workload is a
// synthetic Gaussian-mixture "taste vector" set of configurable size and
// dimension — same access pattern (dense coordinate records, big static
// data, tiny state), which is what drives the Fig. 16/20 behaviour.
#pragma once

#include <map>
#include <vector>

#include "cluster/cluster.h"
#include "imapreduce/conf.h"
#include "mapreduce/iterative_driver.h"

namespace imr {

struct KMeansDataSpec {
  uint32_t num_points = 10000;
  int dim = 8;
  int num_clusters = 10;    // true generative clusters
  double spread = 0.15;     // intra-cluster stddev (cluster means in [0,1]^d)
  uint64_t seed = 7;
};

struct KMeans {
  static std::vector<std::vector<double>> generate_points(
      const KMeansDataSpec& spec);

  // Writes <base>/points and <base>/centroids0 (the first k points, the
  // paper's "select k random nodes as cluster centroids").
  static void setup(Cluster& cluster,
                    const std::vector<std::vector<double>>& points, int k,
                    const std::string& base);

  // Chain-of-jobs baseline: re-reads the points every iteration, distributes
  // the current centroids via the distributed-cache equivalent.
  static IterativeSpec baseline(const std::string& base,
                                const std::string& work_dir,
                                int max_iterations, double threshold = -1.0,
                                bool with_combiner = false);

  // iMapReduce job: one2all broadcast, synchronous maps (§5.1.2).
  static IterJobConf imapreduce(const std::string& base,
                                const std::string& output_path,
                                int max_iterations, double threshold = -1.0,
                                bool with_combiner = false);

  // iMapReduce job with the auxiliary convergence-detection phase (§5.3):
  // terminates when fewer than `move_threshold` points change cluster.
  static IterJobConf imapreduce_with_aux(const std::string& base,
                                         const std::string& output_path,
                                         int max_iterations,
                                         int64_t move_threshold);

  // Reference with identical semantics (nearest centroid, ties to the lowest
  // cluster id, empty clusters dropped). Returns cid -> centroid.
  static std::map<uint32_t, std::vector<double>> reference(
      const std::vector<std::vector<double>>& points,
      const std::map<uint32_t, std::vector<double>>& init_centroids,
      int iterations);

  static std::map<uint32_t, std::vector<double>> read_result(
      Cluster& cluster, const std::string& output_path, bool joined_count);

  // Shuffle value codec: (count, coordinate sum).
  static Bytes encode_partial(uint64_t count, const std::vector<double>& sum);
  static void decode_partial(BytesView v, uint64_t& count,
                             std::vector<double>& sum);
};

}  // namespace imr
