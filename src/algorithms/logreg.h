// Batch-gradient-descent logistic regression — a machine-learning workload
// of the "K-means-like" class (§5.1): every mapper needs the full model, so
// the state (the weight vector) is broadcast one-to-all from reduce to map,
// and the static data (the training samples) stays partitioned on the map
// side.
//
// State:  a single record <0, w> (the weight vector, dim+1 with bias).
// Static: training samples <i, (y, x)> with y in {-1, +1}.
// Map:    accumulate the partial gradient over the local partition; flush()
//         emits <0, (count, grad, loss)> once per iteration, plus one tagged
//         copy of the current w.
// Reduce: sum partials, take one step: w' = w - lr * grad / n.
// Distance: L1 distance between consecutive weight vectors.
#pragma once

#include <vector>

#include "cluster/cluster.h"
#include "imapreduce/conf.h"
#include "mapreduce/iterative_driver.h"

namespace imr {

struct LogRegSample {
  double label = 1.0;  // -1 or +1
  std::vector<double> x;
};

struct LogRegDataSpec {
  uint32_t num_samples = 4000;
  int dim = 6;
  double separation = 2.0;  // distance between the two class means
  uint64_t seed = 99;
};

struct LogReg {
  static std::vector<LogRegSample> generate(const LogRegDataSpec& spec);

  // Writes <base>/samples and <base>/w0 (zero weights).
  static void setup(Cluster& cluster, const std::vector<LogRegSample>& data,
                    int dim, const std::string& base);

  static IterativeSpec baseline(const std::string& base,
                                const std::string& work_dir, int dim,
                                int max_iterations, double learning_rate,
                                double threshold = -1.0);

  static IterJobConf imapreduce(const std::string& base,
                                const std::string& output_path, int dim,
                                int max_iterations, double learning_rate,
                                double threshold = -1.0);

  // Batch GD reference with identical update rule.
  static std::vector<double> reference(const std::vector<LogRegSample>& data,
                                       int dim, int iterations,
                                       double learning_rate);

  static std::vector<double> read_result(Cluster& cluster,
                                         const std::string& output_path);

  // Classification accuracy of weights `w` on `data` (for tests/examples).
  static double accuracy(const std::vector<LogRegSample>& data,
                         const std::vector<double>& w);
};

}  // namespace imr
