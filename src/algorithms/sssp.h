// Single Source Shortest Path (§2.1.1).
//
// State: per-node shortest distance (f64, +inf when unreached).
// Static: weighted out-edge list.
// Map:    for each edge (u,v,w) emit <v, d(u)+w>; retain <u, d(u)>.
// Reduce: min over candidates.
// Distance (termination): count of nodes whose distance changed; the run
// converges when no node changes (threshold 0.5).
#pragma once

#include <vector>

#include "cluster/cluster.h"
#include "graph/graph.h"
#include "imapreduce/conf.h"
#include "imapreduce/delta.h"
#include "mapreduce/iterative_driver.h"

namespace imr {

struct Sssp {
  // Writes <base>/joined (baseline input: [d | edges] per node),
  // <base>/static (edges per node) and <base>/state (initial distances).
  static void setup(Cluster& cluster, const Graph& g, uint32_t source,
                    const std::string& base);

  // The chain-of-jobs baseline (§2.1.1's MapReduce implementation).
  static IterativeSpec baseline(const std::string& base,
                                const std::string& work_dir,
                                int max_iterations, double threshold = -1.0);

  // The iMapReduce job (§3.5's interfaces). The mapper carries a
  // perturbed_keys hook (DESIGN.md §8): an adjacency upsert is refining when
  // no existing destination got farther (every old out-edge keeps a
  // replacement at most as heavy), so the old converged distances remain
  // valid upper bounds and the min-fold can resume from them.
  static IterJobConf imapreduce(const std::string& base,
                                const std::string& output_path,
                                int max_iterations, double threshold = -1.0);

  // Session update batch: one upsert of the full new out-edge list per node
  // whose adjacency differs between `before` and `after`. The node universe
  // must be fixed (reset_all replays the ORIGINAL initial state, which only
  // covers the original keys).
  static StaticDelta static_delta(const Graph& before, const Graph& after);

  // Synchronous Bellman-Ford reference: exactly `iterations` rounds
  // (matching a fixed-iteration framework run), or run to fixpoint when
  // iterations < 0.
  static std::vector<double> reference(const Graph& g, uint32_t source,
                                       int iterations);

  // Decode framework outputs back into a distance vector.
  static std::vector<double> read_result_mr(Cluster& cluster,
                                            const std::string& output_path,
                                            uint32_t num_nodes);
  static std::vector<double> read_result_imr(Cluster& cluster,
                                             const std::string& output_path,
                                             uint32_t num_nodes);

  // Value codecs (exposed for tests).
  static Bytes encode_joined(double dist, const std::vector<WEdge>& edges);
  static void decode_joined(BytesView joined, double& dist,
                            std::vector<WEdge>& edges);
};

}  // namespace imr
