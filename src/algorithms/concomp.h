// Connected components by minimum-label propagation — another of the
// "large class of graph-based iterative algorithms" (§2.2) the framework
// targets, structurally identical to SSSP (one2one, static adjacency,
// monotone state) but with a different reduction (min over labels).
//
// State: per-node component label (initially the node id).
// Static: undirected neighbor list (both edge directions present).
// Map:    send own label to every neighbor; retain own label.
// Reduce: min.
// Distance: count of nodes whose label changed.
#pragma once

#include <vector>

#include "cluster/cluster.h"
#include "graph/graph.h"
#include "imapreduce/conf.h"
#include "mapreduce/iterative_driver.h"

namespace imr {

struct ConComp {
  // Writes <base>/joined, <base>/static, <base>/state. Edges are
  // symmetrized: label propagation needs both directions.
  static void setup(Cluster& cluster, const Graph& g, const std::string& base);

  static IterativeSpec baseline(const std::string& base,
                                const std::string& work_dir,
                                int max_iterations, double threshold = -1.0);

  static IterJobConf imapreduce(const std::string& base,
                                const std::string& output_path,
                                int max_iterations, double threshold = -1.0);

  // Exact reference (union-find), the fixpoint of label propagation.
  static std::vector<uint32_t> reference(const Graph& g);
  // Synchronous label propagation for exactly `iterations` rounds.
  static std::vector<uint32_t> reference_rounds(const Graph& g,
                                                int iterations);

  static std::vector<uint32_t> read_result_imr(Cluster& cluster,
                                               const std::string& output_path,
                                               uint32_t num_nodes);
  static std::vector<uint32_t> read_result_mr(Cluster& cluster,
                                              const std::string& output_path,
                                              uint32_t num_nodes);
};

}  // namespace imr
