// Connected components by minimum-label propagation — another of the
// "large class of graph-based iterative algorithms" (§2.2) the framework
// targets, structurally identical to SSSP (one2one, static adjacency,
// monotone state) but with a different reduction (min over labels).
//
// State: per-node component label (initially the node id).
// Static: undirected neighbor list (both edge directions present).
// Map:    send own label to every neighbor; retain own label.
// Reduce: min.
// Distance: count of nodes whose label changed.
#pragma once

#include <vector>

#include "cluster/cluster.h"
#include "graph/graph.h"
#include "imapreduce/conf.h"
#include "imapreduce/delta.h"
#include "mapreduce/iterative_driver.h"

namespace imr {

struct ConComp {
  // Writes <base>/joined, <base>/static, <base>/state. Edges are
  // symmetrized: label propagation needs both directions.
  static void setup(Cluster& cluster, const Graph& g, const std::string& base);

  static IterativeSpec baseline(const std::string& base,
                                const std::string& work_dir,
                                int max_iterations, double threshold = -1.0);

  // The mapper carries a perturbed_keys hook (DESIGN.md §8): a neighbor-list
  // upsert is refining iff the new list is a superset of the old — edges only
  // appeared, so labels can only keep shrinking from the converged values.
  // Any removed edge may have carried the minimum label and forces a replay.
  static IterJobConf imapreduce(const std::string& base,
                                const std::string& output_path,
                                int max_iterations, double threshold = -1.0);

  // Session update batch between two graphs over the SAME node set: one
  // upsert of the full symmetrized neighbor list per node whose list
  // changed. Symmetrization guarantees both endpoints of an added edge get
  // an op (and hence a seed), so the label exchange re-runs in both
  // directions.
  static StaticDelta static_delta(const Graph& before, const Graph& after);

  // Exact reference (union-find), the fixpoint of label propagation.
  static std::vector<uint32_t> reference(const Graph& g);
  // Synchronous label propagation for exactly `iterations` rounds.
  static std::vector<uint32_t> reference_rounds(const Graph& g,
                                                int iterations);

  static std::vector<uint32_t> read_result_imr(Cluster& cluster,
                                               const std::string& output_path,
                                               uint32_t num_nodes);
  static std::vector<uint32_t> read_result_mr(Cluster& cluster,
                                              const std::string& output_path,
                                              uint32_t num_nodes);
};

}  // namespace imr
