#include "algorithms/logreg.h"

#include <cmath>

#include "common/codec.h"
#include "common/error.h"
#include "common/rng.h"
#include "imapreduce/api.h"
#include "mapreduce/engine.h"

namespace imr {

namespace {

constexpr const char* kLrParam = "logreg.learning_rate";
constexpr char kGradTag = 'g';
constexpr char kWeightTag = 'w';

double sigmoid(double z) { return 1.0 / (1.0 + std::exp(-z)); }

double dot_bias(const std::vector<double>& w, const std::vector<double>& x) {
  IMR_CHECK(w.size() == x.size() + 1);
  double z = w.back();  // bias
  for (std::size_t d = 0; d < x.size(); ++d) z += w[d] * x[d];
  return z;
}

// Per-sample gradient contribution of the negative log-likelihood with
// labels in {-1, +1}: grad += -y * sigmoid(-y z) * [x, 1].
void accumulate_gradient(const std::vector<double>& w, const LogRegSample& s,
                         std::vector<double>& grad, double& loss) {
  double z = dot_bias(w, s.x);
  double margin = s.label * z;
  double g = -s.label * sigmoid(-margin);
  for (std::size_t d = 0; d < s.x.size(); ++d) grad[d] += g * s.x[d];
  grad[s.x.size()] += g;  // bias
  loss += std::log1p(std::exp(-margin));
}

Bytes encode_sample(const LogRegSample& s) {
  Bytes v;
  encode_f64(s.label, v);
  encode_f64_vec(s.x, v);
  return v;
}

LogRegSample decode_sample(BytesView v) {
  LogRegSample s;
  std::size_t pos = 0;
  s.label = decode_f64(v, pos);
  s.x = decode_f64_vec(v, pos);
  return s;
}

// Partial record: (count, grad..., loss).
Bytes encode_partial(uint64_t count, const std::vector<double>& grad,
                     double loss) {
  Bytes v;
  v.push_back(kGradTag);
  encode_varint(count, v);
  encode_f64_vec(grad, v);
  encode_f64(loss, v);
  return v;
}

// Sums tagged partials and extracts the current weights; returns the count.
uint64_t sum_values(const std::vector<Bytes>& values, std::vector<double>& grad,
                    double& loss, std::vector<double>& w) {
  uint64_t count = 0;
  grad.clear();
  loss = 0;
  for (const Bytes& v : values) {
    IMR_CHECK(!v.empty());
    std::size_t pos = 1;
    if (v[0] == kWeightTag) {
      w = decode_f64_vec(v, pos);
      continue;
    }
    count += decode_varint(v, pos);
    std::vector<double> g = decode_f64_vec(v, pos);
    loss += decode_f64(v, pos);
    if (grad.empty()) {
      grad = std::move(g);
    } else {
      IMR_CHECK(grad.size() == g.size());
      for (std::size_t d = 0; d < g.size(); ++d) grad[d] += g[d];
    }
  }
  return count;
}

Bytes weight_record(const std::vector<double>& w) {
  Bytes v;
  encode_f64_vec(w, v);
  return v;
}

double l1_distance(const Bytes& prev, const Bytes& cur) {
  std::size_t pos = 0;
  std::vector<double> a =
      prev.empty() ? std::vector<double>{} : decode_f64_vec(prev, pos);
  pos = 0;
  std::vector<double> b =
      cur.empty() ? std::vector<double>{} : decode_f64_vec(cur, pos);
  if (a.size() != b.size()) return 1e18;
  double s = 0;
  for (std::size_t d = 0; d < a.size(); ++d) s += std::abs(a[d] - b[d]);
  return s;
}

}  // namespace

std::vector<LogRegSample> LogReg::generate(const LogRegDataSpec& spec) {
  Rng rng(spec.seed);
  // Two Gaussian clouds at +/- separation/2 along a random direction.
  std::vector<double> dir(static_cast<std::size_t>(spec.dim));
  double norm = 0;
  for (double& d : dir) {
    d = rng.gaussian(0, 1);
    norm += d * d;
  }
  norm = std::sqrt(norm);
  for (double& d : dir) d /= norm;

  std::vector<LogRegSample> data;
  data.reserve(spec.num_samples);
  for (uint32_t i = 0; i < spec.num_samples; ++i) {
    LogRegSample s;
    s.label = (rng.uniform(2) == 0) ? -1.0 : 1.0;
    s.x.resize(static_cast<std::size_t>(spec.dim));
    for (int d = 0; d < spec.dim; ++d) {
      s.x[static_cast<std::size_t>(d)] =
          s.label * spec.separation / 2 * dir[static_cast<std::size_t>(d)] +
          rng.gaussian(0, 1);
    }
    data.push_back(std::move(s));
  }
  return data;
}

void LogReg::setup(Cluster& cluster, const std::vector<LogRegSample>& data,
                   int dim, const std::string& base) {
  KVVec samples;
  samples.reserve(data.size());
  for (uint32_t i = 0; i < data.size(); ++i) {
    samples.emplace_back(u32_key(i), encode_sample(data[i]));
  }
  KVVec w0;
  w0.emplace_back(u32_key(0),
                  weight_record(std::vector<double>(
                      static_cast<std::size_t>(dim) + 1, 0.0)));
  cluster.dfs().write_file(base + "/samples", std::move(samples), -1, nullptr);
  cluster.dfs().write_file(base + "/w0", std::move(w0), -1, nullptr);
}

// ---------------------------------------------------------------------------
// Baseline (points re-read; w via distributed cache)
// ---------------------------------------------------------------------------

namespace {

class LogRegBaselineReducer : public Reducer {
 public:
  void configure(const Params& params) override {
    lr_ = params.get_double(kLrParam, 0.5);
  }
  void reduce(const Bytes& key, const std::vector<Bytes>& values,
              Emitter& out) override {
    std::vector<double> grad, w;
    double loss;
    uint64_t count = sum_values(values, grad, loss, w);
    IMR_CHECK(count > 0 && !w.empty());
    for (std::size_t d = 0; d < w.size(); ++d) {
      w[d] -= lr_ * grad[d] / static_cast<double>(count);
    }
    out.emit(key, weight_record(w));
  }

 private:
  double lr_ = 0.5;
};

class LogRegBaselineMapper : public Mapper {
 public:
  void attach_cache(const KVVec& records) override {
    IMR_CHECK(records.size() == 1);
    std::size_t pos = 0;
    w_ = decode_f64_vec(records[0].value, pos);
    grad_.assign(w_.size(), 0.0);
  }
  void map(const Bytes&, const Bytes& value, Emitter&) override {
    LogRegSample s = decode_sample(value);
    accumulate_gradient(w_, s, grad_, loss_);
    ++count_;
  }
  void flush(Emitter& out) override {
    out.emit(u32_key(0), encode_partial(count_, grad_, loss_));
    Bytes wrec;
    wrec.push_back(kWeightTag);
    encode_f64_vec(w_, wrec);
    out.emit(u32_key(0), std::move(wrec));
  }

 private:
  std::vector<double> w_;
  std::vector<double> grad_;
  double loss_ = 0;
  uint64_t count_ = 0;
};

}  // namespace

IterativeSpec LogReg::baseline(const std::string& base,
                               const std::string& work_dir, int dim,
                               int max_iterations, double learning_rate,
                               double threshold) {
  (void)dim;
  IterativeSpec spec;
  spec.name = "logreg";
  spec.initial_input = base + "/samples";
  spec.initial_state = base + "/w0";
  spec.iterate_input = false;
  spec.work_dir = work_dir;
  spec.max_iterations = max_iterations;
  spec.distance_threshold = threshold;
  spec.params.set_double(kLrParam, learning_rate);
  spec.num_reduce_tasks = 1;  // single model record

  IterativeSpec::Stage stage;
  stage.use_cache = true;
  stage.mapper = [] { return std::make_unique<LogRegBaselineMapper>(); };
  stage.reducer = [] { return std::make_unique<LogRegBaselineReducer>(); };
  spec.stages.push_back(std::move(stage));

  spec.distance = [](const Bytes&, const Bytes& prev, const Bytes& cur) {
    return l1_distance(prev, cur);
  };
  return spec;
}

// ---------------------------------------------------------------------------
// iMapReduce (one2all broadcast)
// ---------------------------------------------------------------------------

namespace {

class LogRegIterMapper : public IterMapper {
 public:
  void map_all(const Bytes&, const Bytes& stat, const KVVec& states,
               IterEmitter&) override {
    if (states_seen_ != &states) {
      IMR_CHECK(states.size() == 1);
      std::size_t pos = 0;
      w_ = decode_f64_vec(states[0].value, pos);
      grad_.assign(w_.size(), 0.0);
      loss_ = 0;
      count_ = 0;
      states_seen_ = &states;
    }
    LogRegSample s = decode_sample(stat);
    accumulate_gradient(w_, s, grad_, loss_);
    ++count_;
  }

  void flush(IterEmitter& out) override {
    if (states_seen_ == nullptr) return;  // empty partition
    out.emit(u32_key(0), encode_partial(count_, grad_, loss_));
    Bytes wrec;
    wrec.push_back(kWeightTag);
    encode_f64_vec(w_, wrec);
    out.emit(u32_key(0), std::move(wrec));
    states_seen_ = nullptr;
  }

 private:
  const KVVec* states_seen_ = nullptr;
  std::vector<double> w_;
  std::vector<double> grad_;
  double loss_ = 0;
  uint64_t count_ = 0;
};

class LogRegReducer : public IterReducer {
 public:
  void configure(const Params& params) override {
    lr_ = params.get_double(kLrParam, 0.5);
  }
  void reduce(const Bytes& key, const std::vector<Bytes>& values,
              IterEmitter& out) override {
    std::vector<double> grad, w;
    double loss;
    uint64_t count = sum_values(values, grad, loss, w);
    IMR_CHECK(count > 0 && !w.empty());
    for (std::size_t d = 0; d < w.size(); ++d) {
      w[d] -= lr_ * grad[d] / static_cast<double>(count);
    }
    out.emit(key, weight_record(w));
  }
  double distance(const Bytes&, const Bytes& prev,
                  const Bytes& cur) override {
    return l1_distance(prev, cur);
  }

 private:
  double lr_ = 0.5;
};

}  // namespace

IterJobConf LogReg::imapreduce(const std::string& base,
                               const std::string& output_path, int dim,
                               int max_iterations, double learning_rate,
                               double threshold) {
  (void)dim;
  IterJobConf conf;
  conf.name = "logreg";
  conf.state_path = base + "/w0";
  conf.output_path = output_path;
  conf.max_iterations = max_iterations;
  conf.distance_threshold = threshold;
  conf.async_maps = false;  // one2all
  conf.params.set_double(kLrParam, learning_rate);

  PhaseConf phase;
  phase.mapping = Mapping::kOne2All;
  phase.static_path = base + "/samples";
  phase.mapper = [] { return std::make_unique<LogRegIterMapper>(); };
  phase.reducer = [] { return std::make_unique<LogRegReducer>(); };
  conf.phases.push_back(std::move(phase));
  return conf;
}

std::vector<double> LogReg::reference(const std::vector<LogRegSample>& data,
                                      int dim, int iterations,
                                      double learning_rate) {
  std::vector<double> w(static_cast<std::size_t>(dim) + 1, 0.0);
  for (int it = 0; it < iterations; ++it) {
    std::vector<double> grad(w.size(), 0.0);
    double loss = 0;
    for (const LogRegSample& s : data) {
      accumulate_gradient(w, s, grad, loss);
    }
    for (std::size_t d = 0; d < w.size(); ++d) {
      w[d] -= learning_rate * grad[d] / static_cast<double>(data.size());
    }
  }
  return w;
}

std::vector<double> LogReg::read_result(Cluster& cluster,
                                        const std::string& output_path) {
  for (const auto& part : resolve_input_paths(cluster.dfs(), output_path)) {
    for (const KV& kv : cluster.dfs().read_all(part, -1, nullptr)) {
      std::size_t pos = 0;
      return decode_f64_vec(kv.value, pos);
    }
  }
  throw Error("no weight record in " + output_path);
}

double LogReg::accuracy(const std::vector<LogRegSample>& data,
                        const std::vector<double>& w) {
  if (data.empty()) return 0;
  std::size_t correct = 0;
  for (const LogRegSample& s : data) {
    double z = dot_bias(w, s.x);
    if ((z >= 0 ? 1.0 : -1.0) == s.label) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(data.size());
}

}  // namespace imr
