// Matrix power computation M^k via repeated multiplication (§5.2.1), the
// two-map-reduce-phases-per-iteration example.
//
// State: the current power N = M^t as element records <(i,k), n_ik>.
// Static (joined at Map 2 only): the columns of M, <j, [(i, m_ij)...]>.
//
// Phase 1:  Map 1 re-keys N elements by row:   <(j,k), n_jk> -> <j, (k, n_jk)>
//           Reduce 1 gathers row j of N:        <j, [(k, n_jk)...]>
// Phase 2:  Map 2 joins row j of N with column j of M and emits all partial
//           products <(i,k), m_ij * n_jk> (combiner pre-sums);
//           Reduce 2 sums partials:              <(i,k), p_ik>
// Reduce 2 connects back to Map 1 one-to-one (both operate on (i,k) keys).
#pragma once

#include <vector>

#include "cluster/cluster.h"
#include "imapreduce/conf.h"
#include "mapreduce/iterative_driver.h"

namespace imr {

// Dense row-major matrix.
struct Matrix {
  uint32_t n = 0;
  std::vector<double> a;  // n*n

  double& at(uint32_t i, uint32_t j) { return a[static_cast<std::size_t>(i) * n + j]; }
  double at(uint32_t i, uint32_t j) const {
    return a[static_cast<std::size_t>(i) * n + j];
  }
};

struct MatPower {
  // Random matrix with entries in [0, 1/n) so powers stay bounded.
  static Matrix generate(uint32_t n, uint64_t seed);

  // Writes <base>/elements (N_0 = M as <(i,j), m_ij>) and <base>/columns
  // (column-major static data for Map 2).
  static void setup(Cluster& cluster, const Matrix& m,
                    const std::string& base);

  // Two chained jobs per iteration (§5.2.1's MapReduce implementation).
  static IterativeSpec baseline(const std::string& base,
                                const std::string& work_dir,
                                int max_iterations);

  // Two phases per iteration, M joined as static data at Map 2 (§5.2.2).
  static IterJobConf imapreduce(const std::string& base,
                                const std::string& output_path,
                                int max_iterations);

  // Dense reference: M^(iterations+1).
  static Matrix reference(const Matrix& m, int iterations);

  static Matrix read_result(Cluster& cluster, const std::string& output_path,
                            uint32_t n);

  static Bytes pair_key(uint32_t i, uint32_t k);
  static void decode_pair_key(BytesView key, uint32_t& i, uint32_t& k);
};

}  // namespace imr
