#include "algorithms/jacobi.h"

#include <algorithm>
#include <cmath>

#include "common/codec.h"
#include "common/error.h"
#include "common/rng.h"
#include "imapreduce/api.h"
#include "mapreduce/engine.h"

namespace imr {

namespace {

Bytes encode_row(double b, double diag, const std::vector<WEdge>& off) {
  Bytes v;
  encode_f64(b, v);
  encode_f64(diag, v);
  encode_wedges(off, v);
  return v;
}

void decode_row(BytesView v, double& b, double& diag,
                std::vector<WEdge>& off) {
  std::size_t pos = 0;
  b = decode_f64(v, pos);
  diag = decode_f64(v, pos);
  off = decode_wedges(v.substr(pos));
}

// x lookup in the sorted broadcast state list.
double x_at(const KVVec& states, uint32_t j) {
  Bytes key = u32_key(j);
  auto it = std::lower_bound(
      states.begin(), states.end(), key,
      [](const KV& kv, const Bytes& k) { return kv.key < k; });
  if (it == states.end() || it->key != key) return 0.0;
  return as_f64(it->value);
}

double jacobi_update(double b, double diag, const std::vector<WEdge>& off,
                     const KVVec& states) {
  double s = 0;
  for (const WEdge& e : off) s += e.weight * x_at(states, e.dst);
  return (b - s) / diag;
}

}  // namespace

JacobiSystem Jacobi::generate(uint32_t n, double density, uint64_t seed) {
  IMR_CHECK(n > 1 && density > 0 && density <= 1);
  Rng rng(seed);
  JacobiSystem sys;
  sys.n = n;
  sys.b.resize(n);
  sys.diag.resize(n);
  sys.off_diag.resize(n);
  for (uint32_t i = 0; i < n; ++i) {
    sys.b[i] = rng.uniform_real(-1.0, 1.0);
    double row_sum = 0;
    auto nnz = static_cast<uint32_t>(density * n);
    for (uint32_t t = 0; t < nnz; ++t) {
      auto j = static_cast<uint32_t>(rng.uniform(n));
      if (j == i) continue;
      double a = rng.uniform_real(-1.0, 1.0);
      sys.off_diag[i].push_back(WEdge{j, a});
      row_sum += std::abs(a);
    }
    std::sort(sys.off_diag[i].begin(), sys.off_diag[i].end(),
              [](const WEdge& a, const WEdge& b) { return a.dst < b.dst; });
    // Strict diagonal dominance guarantees convergence.
    sys.diag[i] = row_sum + 1.0 + rng.uniform_real(0.0, 1.0);
  }
  return sys;
}

void Jacobi::setup(Cluster& cluster, const JacobiSystem& sys,
                   const std::string& base) {
  KVVec rows, x0;
  rows.reserve(sys.n);
  x0.reserve(sys.n);
  for (uint32_t i = 0; i < sys.n; ++i) {
    rows.emplace_back(u32_key(i),
                      encode_row(sys.b[i], sys.diag[i], sys.off_diag[i]));
    x0.emplace_back(u32_key(i), f64_value(0.0));
  }
  cluster.dfs().write_file(base + "/rows", std::move(rows), -1, nullptr);
  cluster.dfs().write_file(base + "/x0", std::move(x0), -1, nullptr);
}

IterativeSpec Jacobi::baseline(const std::string& base,
                               const std::string& work_dir, int max_iterations,
                               double threshold) {
  IterativeSpec spec;
  spec.name = "jacobi";
  spec.initial_input = base + "/rows";
  spec.initial_state = base + "/x0";
  spec.iterate_input = false;
  spec.work_dir = work_dir;
  spec.max_iterations = max_iterations;
  spec.distance_threshold = threshold;

  class JacobiBaselineMapper : public Mapper {
   public:
    void attach_cache(const KVVec& records) override { x_ = records; }
    void map(const Bytes& key, const Bytes& value, Emitter& out) override {
      double b, diag;
      std::vector<WEdge> off;
      decode_row(value, b, diag, off);
      out.emit(key, f64_value(jacobi_update(b, diag, off, x_)));
    }

   private:
    KVVec x_;
  };

  IterativeSpec::Stage stage;
  stage.use_cache = true;
  stage.mapper = [] { return std::make_unique<JacobiBaselineMapper>(); };
  stage.reducer = make_reducer([](const Bytes& key,
                                  const std::vector<Bytes>& values,
                                  Emitter& out) {
    IMR_CHECK(values.size() == 1);
    out.emit(key, values[0]);
  });
  spec.stages.push_back(std::move(stage));

  spec.distance = [](const Bytes&, const Bytes& prev, const Bytes& cur) {
    double p = prev.empty() ? 0.0 : as_f64(prev);
    double c = cur.empty() ? 0.0 : as_f64(cur);
    return std::abs(p - c);
  };
  return spec;
}

IterJobConf Jacobi::imapreduce(const std::string& base,
                               const std::string& output_path,
                               int max_iterations, double threshold) {
  IterJobConf conf;
  conf.name = "jacobi";
  conf.state_path = base + "/x0";
  conf.output_path = output_path;
  conf.max_iterations = max_iterations;
  conf.distance_threshold = threshold;
  conf.async_maps = false;  // one2all

  PhaseConf phase;
  phase.mapping = Mapping::kOne2All;
  phase.static_path = base + "/rows";
  phase.mapper = make_iter_mapper_all([](const Bytes& key, const Bytes& stat,
                                         const KVVec& states,
                                         IterEmitter& out) {
    double b, diag;
    std::vector<WEdge> off;
    decode_row(stat, b, diag, off);
    out.emit(key, f64_value(jacobi_update(b, diag, off, states)));
  });
  phase.reducer = make_iter_reducer(
      [](const Bytes& key, const std::vector<Bytes>& values, IterEmitter& out) {
        IMR_CHECK(values.size() == 1);
        out.emit(key, values[0]);
      },
      [](const Bytes&, const Bytes& prev, const Bytes& cur) {
        double p = prev.empty() ? 0.0 : as_f64(prev);
        double c = cur.empty() ? 0.0 : as_f64(cur);
        return std::abs(p - c);
      });
  conf.phases.push_back(std::move(phase));
  return conf;
}

std::vector<double> Jacobi::reference(const JacobiSystem& sys,
                                      int iterations) {
  std::vector<double> x(sys.n, 0.0);
  for (int it = 0; it < iterations; ++it) {
    std::vector<double> next(sys.n);
    for (uint32_t i = 0; i < sys.n; ++i) {
      double s = 0;
      for (const WEdge& e : sys.off_diag[i]) s += e.weight * x[e.dst];
      next[i] = (sys.b[i] - s) / sys.diag[i];
    }
    x = std::move(next);
  }
  return x;
}

std::vector<double> Jacobi::read_result(Cluster& cluster,
                                        const std::string& output_path,
                                        uint32_t n) {
  std::vector<double> x(n, 0.0);
  for (const auto& part : resolve_input_paths(cluster.dfs(), output_path)) {
    for (const KV& kv : cluster.dfs().read_all(part, -1, nullptr)) {
      uint32_t i = as_u32(kv.key);
      IMR_CHECK(i < n);
      x[i] = as_f64(kv.value);
    }
  }
  return x;
}

}  // namespace imr
