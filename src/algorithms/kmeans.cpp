#include "algorithms/kmeans.h"

#include <cmath>
#include <limits>
#include <unordered_map>

#include "common/codec.h"
#include "common/error.h"
#include "common/rng.h"
#include "imapreduce/api.h"
#include "mapreduce/engine.h"

namespace imr {

namespace {

constexpr const char* kMoveThresholdParam = "kmeans.move_threshold";

double sq_dist(const std::vector<double>& a, const std::vector<double>& b) {
  IMR_CHECK(a.size() == b.size());
  double s = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    double d = a[i] - b[i];
    s += d * d;
  }
  return s;
}

// Nearest centroid; ties break to the lowest cluster id. `centroids` must be
// ordered by ascending cid.
uint32_t nearest(const std::vector<double>& p,
                 const std::vector<std::pair<uint32_t, std::vector<double>>>&
                     centroids) {
  IMR_CHECK_MSG(!centroids.empty(), "no centroids");
  uint32_t best = centroids[0].first;
  double best_d = std::numeric_limits<double>::infinity();
  for (const auto& [cid, c] : centroids) {
    double d = sq_dist(p, c);
    if (d < best_d) {
      best_d = d;
      best = cid;
    }
  }
  return best;
}

std::vector<std::pair<uint32_t, std::vector<double>>> decode_centroids(
    const KVVec& records) {
  std::vector<std::pair<uint32_t, std::vector<double>>> out;
  out.reserve(records.size());
  for (const KV& kv : records) {
    std::size_t pos = 0;
    out.emplace_back(as_u32(kv.key), decode_f64_vec(kv.value, pos));
  }
  // records are sorted by key upstream; keys are big-endian so this is
  // ascending cid order already.
  return out;
}

double centroid_distance(const Bytes& prev, const Bytes& cur) {
  std::size_t pos = 0;
  std::vector<double> a =
      prev.empty() ? std::vector<double>{} : decode_f64_vec(prev, pos);
  pos = 0;
  std::vector<double> b =
      cur.empty() ? std::vector<double>{} : decode_f64_vec(cur, pos);
  if (a.size() != b.size()) return 1e18;  // appeared/disappeared: not converged
  return std::sqrt(sq_dist(a, b));
}

}  // namespace

Bytes KMeans::encode_partial(uint64_t count, const std::vector<double>& sum) {
  Bytes v;
  encode_varint(count, v);
  encode_f64_vec(sum, v);
  return v;
}

void KMeans::decode_partial(BytesView v, uint64_t& count,
                            std::vector<double>& sum) {
  std::size_t pos = 0;
  count = decode_varint(v, pos);
  sum = decode_f64_vec(v, pos);
}

std::vector<std::vector<double>> KMeans::generate_points(
    const KMeansDataSpec& spec) {
  Rng rng(spec.seed);
  // Cluster means uniform in [0,1]^dim.
  std::vector<std::vector<double>> means;
  for (int c = 0; c < spec.num_clusters; ++c) {
    std::vector<double> m(static_cast<std::size_t>(spec.dim));
    for (double& x : m) x = rng.uniform_real(0.0, 1.0);
    means.push_back(std::move(m));
  }
  std::vector<std::vector<double>> points;
  points.reserve(spec.num_points);
  for (uint32_t i = 0; i < spec.num_points; ++i) {
    const auto& m = means[rng.uniform(static_cast<uint64_t>(spec.num_clusters))];
    std::vector<double> p(static_cast<std::size_t>(spec.dim));
    for (int d = 0; d < spec.dim; ++d) {
      p[static_cast<std::size_t>(d)] =
          m[static_cast<std::size_t>(d)] + rng.gaussian(0.0, spec.spread);
    }
    points.push_back(std::move(p));
  }
  return points;
}

void KMeans::setup(Cluster& cluster,
                   const std::vector<std::vector<double>>& points, int k,
                   const std::string& base) {
  IMR_CHECK(k > 0 && static_cast<std::size_t>(k) <= points.size());
  KVVec point_recs;
  point_recs.reserve(points.size());
  for (uint32_t i = 0; i < points.size(); ++i) {
    Bytes v;
    encode_f64_vec(points[i], v);
    point_recs.emplace_back(u32_key(i), std::move(v));
  }
  KVVec centroid_recs;
  for (int c = 0; c < k; ++c) {
    Bytes v;
    encode_f64_vec(points[static_cast<std::size_t>(c)], v);
    centroid_recs.emplace_back(u32_key(static_cast<uint32_t>(c)),
                               std::move(v));
  }
  cluster.dfs().write_file(base + "/points", std::move(point_recs), -1,
                           nullptr);
  cluster.dfs().write_file(base + "/centroids0", std::move(centroid_recs), -1,
                           nullptr);
}

// ---------------------------------------------------------------------------
// Baseline
// ---------------------------------------------------------------------------

namespace {

class KMeansBaselineMapper : public Mapper {
 public:
  void attach_cache(const KVVec& records) override {
    centroids_ = decode_centroids(records);
  }
  void map(const Bytes& /*key*/, const Bytes& value, Emitter& out) override {
    std::size_t pos = 0;
    std::vector<double> p = decode_f64_vec(value, pos);
    uint32_t cid = nearest(p, centroids_);
    out.emit(u32_key(cid), KMeans::encode_partial(1, p));
  }

 private:
  std::vector<std::pair<uint32_t, std::vector<double>>> centroids_;
};

void sum_partials(const std::vector<Bytes>& values, uint64_t& count,
                  std::vector<double>& sum) {
  count = 0;
  sum.clear();
  for (const Bytes& v : values) {
    uint64_t c;
    std::vector<double> s;
    KMeans::decode_partial(v, c, s);
    count += c;
    if (sum.empty()) {
      sum = std::move(s);
    } else {
      IMR_CHECK(sum.size() == s.size());
      for (std::size_t i = 0; i < s.size(); ++i) sum[i] += s[i];
    }
  }
}

}  // namespace

IterativeSpec KMeans::baseline(const std::string& base,
                               const std::string& work_dir,
                               int max_iterations, double threshold,
                               bool with_combiner) {
  IterativeSpec spec;
  spec.name = "kmeans";
  spec.initial_input = base + "/points";
  spec.initial_state = base + "/centroids0";
  spec.iterate_input = false;  // points are re-read every job (§5.1: the
                               // static data must be shuffled each iteration)
  spec.work_dir = work_dir;
  spec.max_iterations = max_iterations;
  spec.distance_threshold = threshold;

  IterativeSpec::Stage stage;
  stage.use_cache = true;  // centroids via distributed cache
  stage.mapper = [] { return std::make_unique<KMeansBaselineMapper>(); };
  stage.reducer = make_reducer([](const Bytes& key,
                                  const std::vector<Bytes>& values,
                                  Emitter& out) {
    uint64_t count;
    std::vector<double> sum;
    sum_partials(values, count, sum);
    IMR_CHECK(count > 0);
    for (double& x : sum) x /= static_cast<double>(count);
    Bytes enc;
    encode_f64_vec(sum, enc);
    out.emit(key, std::move(enc));
  });
  if (with_combiner) {
    stage.combiner = make_reducer([](const Bytes& key,
                                     const std::vector<Bytes>& values,
                                     Emitter& out) {
      uint64_t count;
      std::vector<double> sum;
      sum_partials(values, count, sum);
      out.emit(key, KMeans::encode_partial(count, sum));
    });
  }
  spec.stages.push_back(std::move(stage));

  spec.distance = [](const Bytes&, const Bytes& prev, const Bytes& cur) {
    return centroid_distance(prev, cur);
  };
  return spec;
}

// ---------------------------------------------------------------------------
// iMapReduce
// ---------------------------------------------------------------------------

namespace {

// One2all mapper: per point, with the full broadcast centroid list. Caches
// the decoded centroid list per iteration (the engine passes the same state
// list for every static record of an iteration).
class KMeansIterMapper : public IterMapper {
 public:
  explicit KMeansIterMapper(bool emit_assignments)
      : emit_assignments_(emit_assignments) {}

  void map_all(const Bytes& key, const Bytes& stat, const KVVec& states,
               IterEmitter& out) override {
    if (states_seen_ != &states) {
      centroids_ = decode_centroids(states);
      states_seen_ = &states;
    }
    std::size_t pos = 0;
    std::vector<double> p = decode_f64_vec(stat, pos);
    uint32_t cid = nearest(p, centroids_);
    out.emit(u32_key(cid), KMeans::encode_partial(1, p));
    if (emit_assignments_) out.side(key, u32_key(cid));
  }

  void flush(IterEmitter& /*out*/) override { states_seen_ = nullptr; }

 private:
  bool emit_assignments_;
  const KVVec* states_seen_ = nullptr;
  std::vector<std::pair<uint32_t, std::vector<double>>> centroids_;
};

// Auxiliary convergence detector (§5.3.1): persistent mapper remembers the
// previous assignment of every point it sees and counts stays.
class KMeansAuxMapper : public IterMapper {
 public:
  void map(const Bytes& key, const Bytes& state, const Bytes& /*stat*/,
           IterEmitter& /*out*/) override {
    uint32_t uid = as_u32(key);
    uint32_t cid = as_u32(state);
    ++total_;
    auto it = prev_.find(uid);
    if (it != prev_.end() && it->second == cid) ++stay_;
    prev_[uid] = cid;
  }

  void flush(IterEmitter& out) override {
    // <0, num_stay>: a unique key so all aux mappers' outputs meet at one
    // aux reducer (§5.3.1 Map 2).
    out.emit(u32_key(0), KMeans::encode_partial(stay_, {static_cast<double>(total_)}));
    stay_ = 0;
    total_ = 0;
  }

 private:
  std::unordered_map<uint32_t, uint32_t> prev_;
  uint64_t stay_ = 0;
  uint64_t total_ = 0;
};

class KMeansAuxReducer : public IterReducer {
 public:
  void configure(const Params& params) override {
    move_threshold_ = params.get_int(kMoveThresholdParam, 0);
  }
  void reduce(const Bytes& /*key*/, const std::vector<Bytes>& values,
              IterEmitter& out) override {
    uint64_t stay = 0;
    uint64_t total = 0;
    for (const Bytes& v : values) {
      uint64_t s;
      std::vector<double> t;
      KMeans::decode_partial(v, s, t);
      stay += s;
      total += static_cast<uint64_t>(t.at(0));
    }
    auto moved = static_cast<int64_t>(total - stay);
    if (total > 0 && moved < move_threshold_) {
      out.emit(kTerminateSignalKey, u64_key(static_cast<uint64_t>(moved)));
    }
  }

 private:
  int64_t move_threshold_ = 0;
};

IterJobConf kmeans_imr_conf(const std::string& base,
                            const std::string& output_path,
                            int max_iterations, double threshold,
                            bool with_combiner, bool emit_assignments) {
  IterJobConf conf;
  conf.name = "kmeans";
  conf.state_path = base + "/centroids0";
  conf.output_path = output_path;
  conf.max_iterations = max_iterations;
  conf.distance_threshold = threshold;
  conf.async_maps = false;  // §5.1.2: one2all requires synchronous maps

  PhaseConf phase;
  phase.mapping = Mapping::kOne2All;
  phase.static_path = base + "/points";
  phase.mapper = [emit_assignments] {
    return std::make_unique<KMeansIterMapper>(emit_assignments);
  };
  phase.reducer = make_iter_reducer(
      [](const Bytes& key, const std::vector<Bytes>& values, IterEmitter& out) {
        uint64_t count;
        std::vector<double> sum;
        sum_partials(values, count, sum);
        IMR_CHECK(count > 0);
        for (double& x : sum) x /= static_cast<double>(count);
        Bytes enc;
        encode_f64_vec(sum, enc);
        out.emit(key, std::move(enc));
      },
      [](const Bytes&, const Bytes& prev, const Bytes& cur) {
        return centroid_distance(prev, cur);
      });
  if (with_combiner) {
    phase.combiner = make_iter_reducer(
        [](const Bytes& key, const std::vector<Bytes>& values,
           IterEmitter& out) {
          uint64_t count;
          std::vector<double> sum;
          sum_partials(values, count, sum);
          out.emit(key, KMeans::encode_partial(count, sum));
        });
  }
  conf.phases.push_back(std::move(phase));
  return conf;
}

}  // namespace

IterJobConf KMeans::imapreduce(const std::string& base,
                               const std::string& output_path,
                               int max_iterations, double threshold,
                               bool with_combiner) {
  return kmeans_imr_conf(base, output_path, max_iterations, threshold,
                         with_combiner, /*emit_assignments=*/false);
}

IterJobConf KMeans::imapreduce_with_aux(const std::string& base,
                                        const std::string& output_path,
                                        int max_iterations,
                                        int64_t move_threshold) {
  IterJobConf conf = kmeans_imr_conf(base, output_path, max_iterations,
                                     /*threshold=*/-1.0,
                                     /*with_combiner=*/false,
                                     /*emit_assignments=*/true);
  AuxConf aux;
  aux.source = AuxConf::Source::kMapSideOutput;
  aux.mapper = [] { return std::make_unique<KMeansAuxMapper>(); };
  aux.reducer = [] { return std::make_unique<KMeansAuxReducer>(); };
  aux.num_reduce_tasks = 1;
  conf.aux = std::move(aux);
  conf.params.set_int(kMoveThresholdParam, move_threshold);
  return conf;
}

std::map<uint32_t, std::vector<double>> KMeans::reference(
    const std::vector<std::vector<double>>& points,
    const std::map<uint32_t, std::vector<double>>& init_centroids,
    int iterations) {
  std::map<uint32_t, std::vector<double>> centroids = init_centroids;
  for (int it = 0; it < iterations; ++it) {
    std::vector<std::pair<uint32_t, std::vector<double>>> ordered(
        centroids.begin(), centroids.end());
    std::map<uint32_t, std::pair<uint64_t, std::vector<double>>> agg;
    for (const auto& p : points) {
      uint32_t cid = nearest(p, ordered);
      auto& [count, sum] = agg[cid];
      if (sum.empty()) sum.assign(p.size(), 0.0);
      ++count;
      for (std::size_t d = 0; d < p.size(); ++d) sum[d] += p[d];
    }
    centroids.clear();
    for (auto& [cid, cs] : agg) {
      for (double& x : cs.second) x /= static_cast<double>(cs.first);
      centroids[cid] = std::move(cs.second);
    }
  }
  return centroids;
}

std::map<uint32_t, std::vector<double>> KMeans::read_result(
    Cluster& cluster, const std::string& output_path, bool /*joined_count*/) {
  std::map<uint32_t, std::vector<double>> out;
  for (const auto& part : resolve_input_paths(cluster.dfs(), output_path)) {
    for (const KV& kv : cluster.dfs().read_all(part, -1, nullptr)) {
      std::size_t pos = 0;
      out[as_u32(kv.key)] = decode_f64_vec(kv.value, pos);
    }
  }
  return out;
}

}  // namespace imr
