#include "metrics/trace.h"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <ostream>
#include <string>

namespace imr {

namespace {

// A thread caches its bound track; the cache is valid only while the
// recorder epoch matches (reset() frees track storage and bumps the epoch).
thread_local TraceRecorder::TrackHandle t_track = nullptr;

bool env_requests_tracing() {
  const char* env = std::getenv("IMR_TRACE");
  return env != nullptr && *env != '\0';
}

void json_escape(std::string& out, const std::string& s) {
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

// Chrome trace-event "ts" is in microseconds; keep sub-microsecond detail.
void append_ts_us(std::string& out, int64_t ts_ns) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.3f", static_cast<double>(ts_ns) / 1e3);
  out += buf;
}

}  // namespace

std::atomic<bool> TraceRecorder::enabled_{env_requests_tracing()};

TraceRecorder& TraceRecorder::instance() {
  static TraceRecorder recorder;
  return recorder;
}

void TraceRecorder::enable(std::size_t ring_capacity) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    ring_capacity_ = ring_capacity == 0 ? kDefaultRingCapacity : ring_capacity;
  }
  enabled_.store(true, std::memory_order_relaxed);
}

void TraceRecorder::disable() {
  enabled_.store(false, std::memory_order_relaxed);
}

void TraceRecorder::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  epoch_.fetch_add(1, std::memory_order_release);
  // Tracks are retired, not freed: surviving threads still hold cached
  // pointers and re-validate them by reading track->epoch, so the storage
  // must stay alive. Only the rings are released.
  for (auto& t : tracks_) {
    t->ring.clear();
    t->ring.shrink_to_fit();
    retired_.push_back(std::move(t));
  }
  tracks_.clear();
  for (auto& c : inflight_) c.store(0, std::memory_order_relaxed);
}

TraceRecorder::Track* TraceRecorder::new_track(const std::string& label,
                                               int pid) {
  std::lock_guard<std::mutex> lock(mu_);
  tracks_.push_back(std::make_unique<Track>());
  Track* t = tracks_.back().get();
  t->label = label;
  t->pid = pid;
  t->epoch = epoch_.load(std::memory_order_acquire);
  t->capacity = ring_capacity_;
  t->ring.reserve(std::min<std::size_t>(ring_capacity_, 1024));
  return t;
}

TraceRecorder::Track* TraceRecorder::current_track() {
  Track* t = static_cast<Track*>(t_track);
  if (t != nullptr && t->epoch == epoch_.load(std::memory_order_acquire)) {
    return t;
  }
  t = new_track("thread", -1);
  t_track = t;
  return t;
}

TraceRecorder::TrackHandle TraceRecorder::begin_thread_track(
    const std::string& label, int pid) {
  Track* cur = static_cast<Track*>(t_track);
  if (cur != nullptr && cur->epoch == epoch_.load(std::memory_order_acquire) &&
      cur->pid == pid && cur->label == label) {
    return cur;  // rebinding to the same timeline is a no-op
  }
  TrackHandle prev =
      (cur != nullptr &&
       cur->epoch == epoch_.load(std::memory_order_acquire))
          ? cur
          : nullptr;
  t_track = new_track(label, pid);
  return prev;
}

void TraceRecorder::set_thread_track(TrackHandle handle) {
  t_track = handle;  // epoch re-checked at the next record
}

void TraceRecorder::span_begin(const char* name, int64_t ts_ns, int iter,
                               int gen) {
  if (!enabled()) return;
  TraceEvent e;
  e.type = TraceEventType::kSpanBegin;
  e.name = name;
  e.ts_ns = ts_ns;
  e.iter = iter;
  e.gen = gen;
  current_track()->record(e);
}

void TraceRecorder::span_end(const char* name, int64_t ts_ns) {
  if (!enabled()) return;
  TraceEvent e;
  e.type = TraceEventType::kSpanEnd;
  e.name = name;
  e.ts_ns = ts_ns;
  current_track()->record(e);
}

void TraceRecorder::instant(const char* name, int64_t ts_ns, int iter,
                            int gen) {
  if (!enabled()) return;
  TraceEvent e;
  e.type = TraceEventType::kInstant;
  e.name = name;
  e.ts_ns = ts_ns;
  e.iter = iter;
  e.gen = gen;
  current_track()->record(e);
}

void TraceRecorder::flow_start(const char* name, uint64_t id, int64_t ts_ns,
                               int iter, int gen) {
  if (!enabled()) return;
  TraceEvent e;
  e.type = TraceEventType::kFlowStart;
  e.name = name;
  e.ts_ns = ts_ns;
  e.value = static_cast<int64_t>(id);
  e.iter = iter;
  e.gen = gen;
  current_track()->record(e);
}

void TraceRecorder::flow_end(const char* name, uint64_t id, int64_t ts_ns,
                             int iter, int gen) {
  if (!enabled()) return;
  TraceEvent e;
  e.type = TraceEventType::kFlowEnd;
  e.name = name;
  e.ts_ns = ts_ns;
  e.value = static_cast<int64_t>(id);
  e.iter = iter;
  e.gen = gen;
  current_track()->record(e);
}

void TraceRecorder::counter(const char* name, int64_t ts_ns, int64_t value) {
  if (!enabled()) return;
  TraceEvent e;
  e.type = TraceEventType::kCounter;
  e.name = name;
  e.ts_ns = ts_ns;
  e.value = value;
  current_track()->record(e);
}

int64_t TraceRecorder::add_inflight(int category, int64_t delta) {
  if (category < 0 || category >= 8) return 0;
  return inflight_[category].fetch_add(delta, std::memory_order_relaxed) +
         delta;
}

std::vector<TraceRecorder::TrackSnapshot> TraceRecorder::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<TrackSnapshot> out;
  out.reserve(tracks_.size());
  for (const auto& t : tracks_) {
    TrackSnapshot s;
    s.label = t->label;
    s.pid = t->pid;
    s.dropped = t->dropped;
    s.events.reserve(t->ring.size());
    if (t->dropped == 0) {
      s.events = t->ring;
    } else {
      // Wrapped ring: head points at the oldest surviving event.
      for (std::size_t n = 0; n < t->ring.size(); ++n) {
        s.events.push_back(t->ring[(t->head + n) % t->ring.size()]);
      }
    }
    out.push_back(std::move(s));
  }
  return out;
}

void TraceRecorder::export_chrome_json(std::ostream& os) const {
  std::vector<TrackSnapshot> tracks = snapshot();

  // Perfetto layout: the master/driver is process 0, worker W is process
  // W+1; each track is one thread of its process.
  auto json_pid = [](int pid) { return pid + 1; };
  std::string out;
  out += "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
  bool first = true;
  auto emit = [&](const std::string& line) {
    if (!first) out += ",\n";
    first = false;
    out += line;
  };

  std::map<int, bool> pid_named;
  int tid = 0;
  for (const TrackSnapshot& t : tracks) {
    ++tid;
    const int pid = json_pid(t.pid);
    char head[96];
    if (!pid_named[pid]) {
      pid_named[pid] = true;
      std::string pname =
          t.pid < 0 ? std::string("master")
                    : "worker" + std::to_string(t.pid);
      std::snprintf(head, sizeof(head),
                    "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":%d,"
                    "\"args\":{\"name\":\"",
                    pid);
      std::string line = head;
      json_escape(line, pname);
      line += "\"}}";
      emit(line);
    }
    std::snprintf(head, sizeof(head),
                  "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":%d,"
                  "\"tid\":%d,\"args\":{\"name\":\"",
                  pid, tid);
    std::string line = head;
    json_escape(line, t.label);
    line += "\"}}";
    emit(line);

    for (const TraceEvent& e : t.events) {
      std::string ev = "{\"name\":\"";
      ev += e.name != nullptr ? e.name : "?";
      ev += "\",\"pid\":";
      ev += std::to_string(pid);
      ev += ",\"tid\":";
      ev += std::to_string(tid);
      ev += ",\"ts\":";
      append_ts_us(ev, e.ts_ns);
      switch (e.type) {
        case TraceEventType::kSpanBegin:
          ev += ",\"cat\":\"task\",\"ph\":\"B\",\"args\":{\"iter\":";
          ev += std::to_string(e.iter);
          ev += ",\"gen\":";
          ev += std::to_string(e.gen);
          ev += "}}";
          break;
        case TraceEventType::kSpanEnd:
          ev += ",\"cat\":\"task\",\"ph\":\"E\"}";
          break;
        case TraceEventType::kInstant:
          ev += ",\"cat\":\"event\",\"ph\":\"i\",\"s\":\"t\","
               "\"args\":{\"iter\":";
          ev += std::to_string(e.iter);
          ev += ",\"gen\":";
          ev += std::to_string(e.gen);
          ev += "}}";
          break;
        case TraceEventType::kFlowStart:
        case TraceEventType::kFlowEnd:
          ev += ",\"cat\":\"flow\",\"ph\":\"";
          ev += e.type == TraceEventType::kFlowStart ? "s" : "f";
          ev += "\"";
          if (e.type == TraceEventType::kFlowEnd) ev += ",\"bp\":\"e\"";
          ev += ",\"id\":";
          ev += std::to_string(e.value);
          ev += ",\"args\":{\"iter\":";
          ev += std::to_string(e.iter);
          ev += ",\"gen\":";
          ev += std::to_string(e.gen);
          ev += "}}";
          break;
        case TraceEventType::kCounter:
          ev += ",\"ph\":\"C\",\"args\":{\"value\":";
          ev += std::to_string(e.value);
          ev += "}}";
          break;
      }
      emit(ev);
    }
  }
  out += "\n]}\n";
  os << out;
}

bool TraceRecorder::export_to_file(const std::string& path) const {
  std::ofstream os(path);
  if (!os) return false;
  export_chrome_json(os);
  return os.good();
}

}  // namespace imr
