// InvariantChecker — conservation and recovery invariants over a finished
// run. The chaos harness runs it after every fault-injected job; a clean
// failure-free run must satisfy the same invariants trivially.
//
// The checker deliberately consumes only plain data (MetricsRegistry,
// RunReport, ChannelStats snapshots) so that it sits at the metrics layer:
// higher layers (net, cluster, the test harness) gather the snapshots and
// hand them down.
//
// Checked invariants:
//   1. traffic conservation  — per category, 0 <= remote bytes <= bytes, and
//      total remote <= total (nothing is double-counted or negative);
//   2. channel conservation  — every send attempt is accounted for:
//      attempts == delivered + dropped + rejected, and once quiesced
//      delivered == received + discarded (no message is lost outside the
//      declared drop/discard ledger, none materializes from nowhere);
//   3. co-location           — the one2one reduce->map state channel moved
//      zero remote bytes (§3.2.1's saving survives recovery and migration,
//      because a pair's endpoints always move together);
//   4. output consistency    — every final part file was dumped at the same
//      iteration, which equals the run's decided iteration count (§3.1.2's
//      deterministic-termination contract);
//   5. iteration ledger      — decided iterations advance by exactly one,
//      except across a recorded rollback, where they restart at
//      rollback + 1 (exactly-once application of every decided iteration);
//   6. recovery accounting   — the master recovered exactly once per
//      injected worker death;
//   7. state conservation    — the final state holds exactly the expected
//      number of records. Conservation is checked on the FINAL STATE, not
//      on per-iteration channel transfers: a workset-mode map phase
//      legitimately receives fewer records than there are keys (only the
//      frontier is shipped), so counting channel sends against the key
//      count would trip false positives on every frontier iteration;
//   8. workset ledger        — bulk runs record no workset sizes (-1
//      sentinel everywhere); workset runs record a non-negative size per
//      decided iteration, never exceeding the state record count, and a
//      drained (zero) workset appears only as a suffix of its session —
//      a zero followed by a non-zero in the SAME session means the run kept
//      iterating past its fixpoint (trailing zeros are legal: a recovery
//      that rolls back to the drain checkpoint re-decides drained
//      iterations before quiescing);
//   9. delta conservation    — every static-delta op the session master
//      routed was applied by exactly one map task (job sessions mutate the
//      static stores exactly once per op, no loss, no double-apply);
//  10. telemetry conservation — when a traffic-matrix snapshot is attached,
//      its per-category cell sums equal the registry's Fig-11 totals
//      exactly: bytes, off-diagonal (remote) bytes, and message counts all
//      balance, so the placement-advice matrix never invents or loses a
//      byte relative to the audited counters;
//  11. spill conservation   — every byte (and every run) spilled to MiniDfs
//      by the out-of-core record path is either merged back or explicitly
//      dropped: written == read + dropped, for bytes and for run counts.
//      Dropped covers rollback GC, torn writes, and end-of-run sweeps — a
//      run that silently vanishes (or is merged twice) breaks the ledger.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "metrics/metrics.h"
#include "metrics/telemetry.h"

namespace imr {

// Snapshot of a Fabric's message ledger (Fabric::channel_stats()).
struct ChannelStats {
  int64_t attempts = 0;   // send() calls including fault-injected retries
  int64_t delivered = 0;  // enqueued at a receiver mailbox
  int64_t dropped = 0;    // lost to an injected channel fault (then retried)
  int64_t rejected = 0;   // pushed to a closed mailbox (late producer)
  int64_t received = 0;   // popped by a receiver
  int64_t discarded = 0;  // delivered but destroyed unread (rollback/teardown)
};

struct InvariantExpectations {
  // The job ran one2one phases with paired endpoints co-located: expect zero
  // remote bytes on the reduce->map channel. Disable for one2all jobs.
  bool colocated_state_channel = true;
  // All endpoints are torn down: delivered == received + discarded. Disable
  // when checking mid-run.
  bool quiesced = true;
  // Exact number of recoveries the run must have performed (-1 = skip).
  int expected_recoveries = -1;
  // Exact number of final part files / Done notices (-1 = skip).
  int expected_parts = -1;
  // Exact number of records the final state must hold across all part files
  // (-1 = skip). Checked against RunReport::final_state_records — the
  // frontier-aware conservation rule (invariant 7).
  int64_t expected_state_records = -1;
  // Whether the run was a workset-mode run; drives the workset ledger rule
  // (invariant 8) in both directions.
  bool workset_mode = false;
  // Exact number of static-delta ops the session was fed (-1 = skip the
  // exact-count check; the routed == applied conservation is always on).
  // Replayed ops (recovery rebuilds) are counted separately and are NOT
  // part of this balance.
  int64_t expected_delta_ops = -1;
};

class InvariantChecker {
 public:
  explicit InvariantChecker(const MetricsRegistry& metrics)
      : metrics_(metrics) {}

  InvariantChecker& with_channel_stats(const ChannelStats& stats) {
    channel_ = stats;
    has_channel_ = true;
    return *this;
  }
  InvariantChecker& with_report(const RunReport& report) {
    report_ = &report;
    return *this;
  }
  // Attach a telemetry traffic-matrix snapshot (stored by value — snapshots
  // are plain data) and arm invariant 10 against the same registry.
  InvariantChecker& with_traffic_matrix(TrafficMatrixSnapshot matrix) {
    matrix_ = std::move(matrix);
    has_matrix_ = true;
    return *this;
  }

  // Returns one human-readable line per violated invariant; empty = clean.
  std::vector<std::string> check(
      const InvariantExpectations& expect = {}) const;

 private:
  const MetricsRegistry& metrics_;
  ChannelStats channel_;
  bool has_channel_ = false;
  const RunReport* report_ = nullptr;
  TrafficMatrixSnapshot matrix_;
  bool has_matrix_ = false;
};

}  // namespace imr
