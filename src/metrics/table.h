// Fixed-width text table renderer for bench/report output.
//
// Renders the paper-style tables (dataset statistics, running-time series,
// factor decompositions) with right-aligned numeric columns.
#pragma once

#include <string>
#include <vector>

namespace imr {

class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header)
      : header_(std::move(header)) {}

  void add_row(std::vector<std::string> row);

  // Render with column separators and a rule under the header.
  std::string render() const;

  // Render as CSV (for downstream plotting).
  std::string csv() const;

  std::size_t num_rows() const { return rows_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace imr
