// Telemetry — structured per-iteration runtime evidence on top of the
// trace/metrics substrate.
//
// Three pieces, same cost discipline as TraceRecorder (one relaxed-atomic
// branch per probe when disabled):
//
//  * TelemetryLedger — per-cluster accumulator the Fabric, MiniDfs, and
//    engine feed while a run executes. It holds the worker x worker x
//    TrafficCategory traffic matrix (lock-free striped counters mirroring
//    every MetricsRegistry::add_traffic charge byte-for-byte, so the matrix
//    row/column sums are invariant-checkable against the Fig-11 category
//    totals), per-(generation, iteration) byte/message buckets keyed by the
//    NetMessage tags, per-map-task iteration durations, hot-key sketches,
//    and static-store size estimates.
//
//  * TelemetryRecorder — process-global sink mirroring TraceRecorder:
//    armed by IMR_TELEMETRY (or enable()), gated by one relaxed atomic
//    load, collecting one RunTelemetry per finished job and exporting them
//    as JSONL. All values are virtual-time or byte counts — never wall
//    time — so same-seed fault-free runs reproduce every byte, count, and
//    sequence field bit-for-bit. The duration fields (vt_ms, map_ms,
//    reduce_ms, task_ms, straggler) are the exception: per-flow network
//    charging shares bandwidth among the flows concurrently in flight, so
//    virtual durations track the real thread schedule.
//
//  * SpaceSaving — the classic top-k heavy-hitter sketch (Metwally et al.):
//    capacity k, evicting the minimum-count entry whose count the newcomer
//    inherits as `error`. Any key with true frequency > N/k is guaranteed
//    present, and every reported count overestimates by at most its
//    `error` (<= N/k). Merging sums counts and errors per key and
//    re-truncates — the merged bound degrades to the sum of the parts'
//    bounds, which imr_stat reports alongside the counts.
//
// The analyzer for the exported JSONL is tools/imr_stat; the schema is
// documented in docs/OBSERVABILITY.md.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "metrics/metrics.h"

namespace imr {

// ---------------------------------------------------------------------------
// SpaceSaving top-k sketch
// ---------------------------------------------------------------------------

struct HotKey {
  Bytes key;
  int64_t count = 0;  // estimated frequency (overestimate)
  int64_t error = 0;  // max overestimation inherited from evictions
};

class SpaceSaving {
 public:
  static constexpr std::size_t kDefaultCapacity = 64;

  explicit SpaceSaving(std::size_t capacity = kDefaultCapacity)
      : capacity_(capacity == 0 ? 1 : capacity) {}

  void offer(const Bytes& key, int64_t by = 1);

  // Commutative merge: union counts and errors per key, then keep the
  // capacity largest (ties broken by error then key, so the result does not
  // depend on merge order).
  void merge(const SpaceSaving& other);

  // Entries sorted by (count desc, error asc, key asc).
  std::vector<HotKey> top() const;

  int64_t total() const { return total_; }
  std::size_t capacity() const { return capacity_; }

 private:
  struct Counter {
    int64_t count = 0;
    int64_t error = 0;
  };
  void truncate();

  std::size_t capacity_;
  int64_t total_ = 0;
  // Ordered map: the min-scan eviction breaks count ties by key order, so a
  // deterministic offer sequence yields a deterministic sketch.
  std::map<Bytes, Counter> counters_;
};

// ---------------------------------------------------------------------------
// Traffic matrix
// ---------------------------------------------------------------------------

struct TrafficCell {
  int64_t bytes = 0;
  int64_t msgs = 0;
};

// Plain (non-atomic) merged view of the matrix. Slot 0 is the master/driver
// (worker -1); worker w maps to slot w + 1.
class TrafficMatrixSnapshot {
 public:
  TrafficMatrixSnapshot() = default;
  explicit TrafficMatrixSnapshot(int num_workers)
      : workers_(num_workers),
        cells_(static_cast<std::size_t>((num_workers + 1)) *
               static_cast<std::size_t>(num_workers + 1) *
               kNumTrafficCategories) {}

  int workers() const { return workers_; }
  int slots() const { return workers_ + 1; }

  // `from` / `to` are worker ids; -1 addresses the master/driver slot.
  const TrafficCell& cell(int from, int to, TrafficCategory c) const {
    return cells_[index(from, to, c)];
  }
  TrafficCell& cell(int from, int to, TrafficCategory c) {
    return cells_[index(from, to, c)];
  }

  // Conservation sums, comparable to the MetricsRegistry totals.
  int64_t category_bytes(TrafficCategory c) const;
  int64_t category_remote_bytes(TrafficCategory c) const;  // off-diagonal
  int64_t category_msgs(TrafficCategory c) const;

  std::size_t index(int from, int to, TrafficCategory c) const {
    return (static_cast<std::size_t>(slot(from)) *
                static_cast<std::size_t>(slots()) +
            static_cast<std::size_t>(slot(to))) *
               kNumTrafficCategories +
           static_cast<std::size_t>(c);
  }
  int slot(int worker) const {
    if (worker < 0 || worker >= workers_) return 0;
    return worker + 1;
  }

 private:
  int workers_ = 0;
  std::vector<TrafficCell> cells_;
};

// ---------------------------------------------------------------------------
// Per-run records
// ---------------------------------------------------------------------------

struct IterTelemetry {
  int iteration = 0;
  int generation = 0;
  int session = 0;
  double vt_ms = 0;        // master virtual time at the decision
  double distance = 0;
  int64_t workset = -1;    // -1 = bulk run
  double map_ms = 0;       // max per-task map-iteration virtual duration
  double reduce_ms = 0;    // max per-task report duration
  int straggler_task = -1;   // the report that closed the barrier last
  int straggler_worker = -1;
  double straggler_ms = 0;   // that task's report duration
  std::map<int, double> task_ms;        // per-task report duration (ms)
  std::map<int, int64_t> state_bytes;   // per-task resident state estimate
  int64_t queue_hwm = 0;   // max messages any endpoint absorbed this iter
  std::array<int64_t, kNumTrafficCategories> bytes{};  // fabric traffic
  std::array<int64_t, kNumTrafficCategories> msgs{};
};

struct RunTelemetry {
  std::string job;
  int workers = 0;
  int tasks = 0;
  int iterations_run = 0;
  bool converged = false;
  int session_epochs = 0;          // final session id (0 = plain run)
  int64_t static_bytes = 0;        // sum over tasks
  std::vector<int64_t> static_bytes_per_task;
  std::vector<int64_t> partition_records;  // exact per-partition emit counts
  double skew = 0;                 // max / mean of partition_records
  std::vector<HotKey> hot_keys;    // merged across map tasks
  int64_t hot_key_samples = 0;     // N for the N/k error bound
  // Out-of-core record path (DESIGN.md §10): the spill ledger for this run
  // (invariant 11: written == read + dropped) and the largest per-task
  // arena footprint observed.
  int64_t spill_bytes_written = 0;
  int64_t spill_bytes_read = 0;
  int64_t spill_bytes_dropped = 0;
  int64_t spill_runs = 0;          // runs written
  int64_t arena_hwm = 0;           // max per-task arena block bytes
  TrafficMatrixSnapshot matrix;    // cumulative for the cluster
  std::vector<IterTelemetry> iters;
};

// ---------------------------------------------------------------------------
// TelemetryLedger — per-cluster accumulator
// ---------------------------------------------------------------------------

class TelemetryLedger {
 public:
  explicit TelemetryLedger(int num_workers);

  // Fabric probe: mirrors the MetricsRegistry::add_traffic charge of one
  // accounted send (zombie-suppressed sends never reach it). Buckets the
  // bytes under the message's (generation, iteration) tag and counts the
  // delivery against `endpoint_uid` for the queue high-water mark.
  void add_send(int from_worker, int to_worker, TrafficCategory c,
                int64_t bytes, int generation, int iteration,
                uint32_t endpoint_uid);

  // DFS probe: mirrors one MiniDfs add_traffic charge. `count_msg` matches
  // the registry's one-transfer-per-add_traffic-call accounting.
  void add_dfs(int from_worker, int to_worker, TrafficCategory c,
               int64_t bytes, bool count_msg);

  // Engine-side records. begin_run clears the per-run stores (buckets,
  // durations, sketches, static sizes) but NOT the matrix — the matrix is
  // cumulative like the registry, so conservation holds across multiple
  // jobs on one cluster.
  void begin_run();
  void record_map_iter(int task, int generation, int iteration,
                       int64_t duration_ns);
  void record_static_bytes(int task, int64_t bytes);
  // Pushed at task exit. A higher generation replaces the stored entry
  // (the respawned task supersedes the zombie); the same generation merges
  // (multi-phase tasks share an index); a lower generation is dropped.
  void record_task_profile(int task, int generation, SpaceSaving sketch,
                           std::vector<int64_t> partition_counts);

  TrafficMatrixSnapshot snapshot_matrix() const;

  // Joins the ledger's per-(generation, iteration) evidence into a master
  // record: map_ms, queue_hwm, and the per-category byte/msg buckets.
  // Callers must be quiescent (engine threads joined).
  void fill_iter(IterTelemetry& t) const;

  // Merged hot-key/partition profile. Sketches merge in task order;
  // partition counts sum element-wise; skew = max/mean over partitions.
  void collect_profiles(std::vector<HotKey>* hot_keys, int64_t* samples,
                        std::vector<int64_t>* partition_records,
                        double* skew) const;
  std::vector<int64_t> static_bytes_per_task() const;

  int num_workers() const { return workers_; }

 private:
  static constexpr int kStripes = 4;
  static constexpr std::size_t kCells = kNumTrafficCategories;

  struct MatrixStripe {
    // 2 counters (bytes, msgs) per matrix cell.
    std::vector<std::atomic<int64_t>> counters;
  };

  struct IterBucket {
    std::array<int64_t, kNumTrafficCategories> bytes{};
    std::array<int64_t, kNumTrafficCategories> msgs{};
    std::map<uint32_t, int64_t> endpoint_msgs;
    std::map<int, int64_t> map_dur_ns;  // task -> map-iter virtual duration
  };

  struct BucketShard {
    mutable std::mutex mu;
    std::map<uint64_t, IterBucket> buckets;  // (gen << 32) | iter
  };

  struct TaskProfile {
    int generation = -1;
    SpaceSaving sketch;
    std::vector<int64_t> partition_counts;
  };

  static uint64_t bucket_key(int generation, int iteration) {
    return (static_cast<uint64_t>(static_cast<uint32_t>(generation)) << 32) |
           static_cast<uint32_t>(iteration);
  }
  std::size_t stripe_for_this_thread() const;
  std::size_t matrix_index(int from, int to, TrafficCategory c) const;
  BucketShard& shard_for_key(uint64_t key) const {
    return bucket_shards_[key % kBucketShards];
  }

  int workers_;
  int slots_;
  std::array<MatrixStripe, kStripes> matrix_stripes_;

  static constexpr std::size_t kBucketShards = 8;
  mutable std::array<BucketShard, kBucketShards> bucket_shards_;

  mutable std::mutex profile_mu_;
  std::map<int, TaskProfile> profiles_;    // by task index
  std::map<int, int64_t> static_bytes_;    // by task index
};

// ---------------------------------------------------------------------------
// TelemetryRecorder — process-global sink
// ---------------------------------------------------------------------------

class TelemetryRecorder {
 public:
  static TelemetryRecorder& instance();

  // The hot-path gate: one relaxed load, checked (after a null-pointer
  // test) before any telemetry work on the fabric/DFS paths.
  static bool enabled() { return enabled_.load(std::memory_order_relaxed); }

  void enable();
  void disable();
  void reset();  // drops recorded runs; does not change the gate

  void append(RunTelemetry run);
  std::vector<RunTelemetry> runs() const;

  // One JSON object per line: every iteration record ({"type":"iter"})
  // followed by the run summary ({"type":"run"}), per recorded run.
  void export_jsonl(std::ostream& os) const;
  bool export_to_file(const std::string& path) const;

 private:
  TelemetryRecorder() = default;

  static std::atomic<bool> enabled_;  // seeded from IMR_TELEMETRY
  mutable std::mutex mu_;
  std::vector<RunTelemetry> runs_;
};

}  // namespace imr
