#include "metrics/metrics.h"

#include <functional>
#include <sstream>
#include <thread>

#include "common/strings.h"

namespace imr {

const char* traffic_category_name(TrafficCategory c) {
  switch (c) {
    case TrafficCategory::kShuffle: return "shuffle";
    case TrafficCategory::kReduceToMap: return "reduce_to_map";
    case TrafficCategory::kBroadcast: return "broadcast";
    case TrafficCategory::kDfsRead: return "dfs_read";
    case TrafficCategory::kDfsWrite: return "dfs_write";
    case TrafficCategory::kCheckpoint: return "checkpoint";
    case TrafficCategory::kControl: return "control";
  }
  return "?";
}

const char* time_category_name(TimeCategory c) {
  switch (c) {
    case TimeCategory::kJobInit: return "job_init";
    case TimeCategory::kTaskInit: return "task_init";
    case TimeCategory::kDfsIo: return "dfs_io";
    case TimeCategory::kNetwork: return "network";
    case TimeCategory::kCompute: return "compute";
    case TimeCategory::kSort: return "sort";
  }
  return "?";
}

int64_t MetricsRegistry::total_remote_bytes() const {
  int64_t total = 0;
  for (const auto& t : traffic_) total += t.remote_bytes.load();
  return total;
}

int64_t MetricsRegistry::total_bytes() const {
  int64_t total = 0;
  for (const auto& t : traffic_) total += t.bytes.load();
  return total;
}

MetricsRegistry::NamedShard& MetricsRegistry::shard_for_this_thread() const {
  // The shard index is computed once per thread; every registry indexes its
  // own shard array with it, so distinct registries stay independent.
  static const thread_local std::size_t idx =
      std::hash<std::thread::id>{}(std::this_thread::get_id()) %
      static_cast<std::size_t>(kNamedShards);
  return named_shards_[idx];
}

void MetricsRegistry::inc(const std::string& name, int64_t by) {
  NamedShard& shard = shard_for_this_thread();
  std::lock_guard<std::mutex> lock(shard.mu);
  shard.counts[name] += by;
}

int64_t MetricsRegistry::count(const std::string& name) const {
  int64_t total = 0;
  for (const NamedShard& shard : named_shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.counts.find(name);
    if (it != shard.counts.end()) total += it->second;
  }
  return total;
}

std::map<std::string, int64_t> MetricsRegistry::named_counters() const {
  std::map<std::string, int64_t> merged;
  for (const NamedShard& shard : named_shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    for (const auto& [name, v] : shard.counts) merged[name] += v;
  }
  return merged;
}

std::string MetricsRegistry::report() const {
  std::ostringstream os;
  os << "traffic (bytes total / remote / transfers):\n";
  for (int i = 0; i < kNumTrafficCategories; ++i) {
    const auto& t = traffic_[i];
    if (t.transfers.load() == 0) continue;
    os << "  " << traffic_category_name(static_cast<TrafficCategory>(i))
       << ": " << human_bytes(static_cast<std::size_t>(t.bytes.load()))
       << " / " << human_bytes(static_cast<std::size_t>(t.remote_bytes.load()))
       << " / " << t.transfers.load() << "\n";
  }
  os << "time (simulated/measured ms):\n";
  for (int i = 0; i < kNumTimeCategories; ++i) {
    int64_t ns = times_[i].load();
    if (ns == 0) continue;
    os << "  " << time_category_name(static_cast<TimeCategory>(i)) << ": "
       << fmt_double(static_cast<double>(ns) / 1e6, 2) << "\n";
  }
  std::map<std::string, int64_t> named = named_counters();
  if (!named.empty()) {
    os << "counters:\n";
    for (const auto& [name, v] : named) {
      os << "  " << name << ": " << v << "\n";
    }
  }
  return os.str();
}

void MetricsRegistry::reset() {
  for (auto& t : traffic_) {
    t.bytes.store(0);
    t.remote_bytes.store(0);
    t.transfers.store(0);
  }
  for (auto& t : times_) t.store(0);
  for (NamedShard& shard : named_shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    shard.counts.clear();
  }
}

void RunReport::capture(const MetricsRegistry& m) {
  total_comm_bytes = m.total_remote_bytes();
  shuffle_bytes = m.traffic_bytes(TrafficCategory::kShuffle);
  dfs_read_bytes = m.traffic_bytes(TrafficCategory::kDfsRead);
  dfs_write_bytes = m.traffic_bytes(TrafficCategory::kDfsWrite);
  job_init_time = m.time(TimeCategory::kJobInit);
  task_init_time = m.time(TimeCategory::kTaskInit);
  network_time = m.time(TimeCategory::kNetwork);
  dfs_time = m.time(TimeCategory::kDfsIo);
}

}  // namespace imr
