#include "metrics/metrics.h"

#include <functional>
#include <sstream>
#include <thread>

#include "common/strings.h"

namespace imr {

const char* traffic_category_name(TrafficCategory c) {
  switch (c) {
    case TrafficCategory::kShuffle: return "shuffle";
    case TrafficCategory::kReduceToMap: return "reduce_to_map";
    case TrafficCategory::kBroadcast: return "broadcast";
    case TrafficCategory::kDfsRead: return "dfs_read";
    case TrafficCategory::kDfsWrite: return "dfs_write";
    case TrafficCategory::kCheckpoint: return "checkpoint";
    case TrafficCategory::kControl: return "control";
    case TrafficCategory::kShuffleAgg: return "shuffle_agg";
    case TrafficCategory::kSpill: return "spill";
  }
  return "?";
}

const char* traffic_inflight_counter_name(TrafficCategory c) {
  switch (c) {
    case TrafficCategory::kShuffle: return "inflight_shuffle";
    case TrafficCategory::kReduceToMap: return "inflight_reduce_to_map";
    case TrafficCategory::kBroadcast: return "inflight_broadcast";
    case TrafficCategory::kDfsRead: return "inflight_dfs_read";
    case TrafficCategory::kDfsWrite: return "inflight_dfs_write";
    case TrafficCategory::kCheckpoint: return "inflight_checkpoint";
    case TrafficCategory::kControl: return "inflight_control";
    case TrafficCategory::kShuffleAgg: return "inflight_shuffle_agg";
    case TrafficCategory::kSpill: return "inflight_spill";
  }
  return "inflight_?";
}

const char* time_category_name(TimeCategory c) {
  switch (c) {
    case TimeCategory::kJobInit: return "job_init";
    case TimeCategory::kTaskInit: return "task_init";
    case TimeCategory::kDfsIo: return "dfs_io";
    case TimeCategory::kNetwork: return "network";
    case TimeCategory::kCompute: return "compute";
    case TimeCategory::kSort: return "sort";
  }
  return "?";
}

int64_t Histogram::count() const {
  int64_t total = 0;
  for (const auto& b : buckets_) total += b.load(std::memory_order_relaxed);
  return total;
}

double Histogram::mean() const {
  int64_t n = count();
  if (n == 0) return 0;
  return static_cast<double>(sum_.load(std::memory_order_relaxed)) /
         static_cast<double>(n);
}

double Histogram::percentile(double p) const {
  int64_t counts[kNumBuckets];
  int64_t total = 0;
  for (int b = 0; b < kNumBuckets; ++b) {
    counts[b] = buckets_[b].load(std::memory_order_relaxed);
    total += counts[b];
  }
  if (total == 0) return 0;
  p = std::min(100.0, std::max(0.0, p));
  // Rank of the sample that the percentile falls on (1-based, ceil — the
  // p-th percentile is the smallest value with >= p% of samples at or
  // below it).
  int64_t target = static_cast<int64_t>(p / 100.0 * static_cast<double>(total));
  if (target < 1) target = 1;
  int64_t cum = 0;
  for (int b = 0; b < kNumBuckets; ++b) {
    if (counts[b] == 0) continue;
    if (cum + counts[b] >= target) {
      if (b == 0) return 0;
      // Linear interpolation within [2^(b-1), 2^b): the bucket's samples are
      // taken as evenly spread, sample j of n sitting at fraction
      // (j - 0.5) / n of the bucket width. A single-sample bucket therefore
      // reports the midpoint; multi-sample buckets spread across the range.
      double lower = static_cast<double>(bucket_lower(b));
      double upper = 2.0 * lower;
      double frac = (static_cast<double>(target - cum) - 0.5) /
                    static_cast<double>(counts[b]);
      if (frac < 0) frac = 0;
      return lower + (upper - lower) * frac;
    }
    cum += counts[b];
  }
  return 2.0 * static_cast<double>(bucket_lower(kNumBuckets - 1));
}

void Histogram::merge(const Histogram& other) {
  for (int b = 0; b < kNumBuckets; ++b) {
    int64_t n = other.buckets_[b].load(std::memory_order_relaxed);
    if (n != 0) buckets_[b].fetch_add(n, std::memory_order_relaxed);
  }
  sum_.fetch_add(other.sum_.load(std::memory_order_relaxed),
                 std::memory_order_relaxed);
}

void Histogram::reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  sum_.store(0, std::memory_order_relaxed);
}

int64_t MetricsRegistry::total_remote_bytes() const {
  int64_t total = 0;
  for (const auto& t : traffic_) total += t.remote_bytes.load();
  return total;
}

int64_t MetricsRegistry::total_bytes() const {
  int64_t total = 0;
  for (const auto& t : traffic_) total += t.bytes.load();
  return total;
}

MetricsRegistry::NamedShard& MetricsRegistry::shard_for_this_thread() const {
  // The shard index is computed once per thread; every registry indexes its
  // own shard array with it, so distinct registries stay independent.
  static const thread_local std::size_t idx =
      std::hash<std::thread::id>{}(std::this_thread::get_id()) %
      static_cast<std::size_t>(kNamedShards);
  return named_shards_[idx];
}

void MetricsRegistry::inc(const std::string& name, int64_t by) {
  NamedShard& shard = shard_for_this_thread();
  std::lock_guard<std::mutex> lock(shard.mu);
  shard.counts[name] += by;
}

int64_t MetricsRegistry::count(const std::string& name) const {
  int64_t total = 0;
  for (const NamedShard& shard : named_shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.counts.find(name);
    if (it != shard.counts.end()) total += it->second;
  }
  return total;
}

std::map<std::string, int64_t> MetricsRegistry::named_counters() const {
  std::map<std::string, int64_t> merged;
  for (const NamedShard& shard : named_shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    for (const auto& [name, v] : shard.counts) merged[name] += v;
  }
  return merged;
}

void MetricsRegistry::gauge_max(const std::string& name, int64_t value) {
  std::lock_guard<std::mutex> lock(gauge_mu_);
  int64_t& slot = gauges_[name];
  if (value > slot) slot = value;
}

int64_t MetricsRegistry::gauge(const std::string& name) const {
  std::lock_guard<std::mutex> lock(gauge_mu_);
  auto it = gauges_.find(name);
  return it == gauges_.end() ? 0 : it->second;
}

std::map<std::string, int64_t> MetricsRegistry::gauges() const {
  std::lock_guard<std::mutex> lock(gauge_mu_);
  return gauges_;
}

Histogram& MetricsRegistry::histogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(hist_mu_);
  auto& slot = hists_[name];
  if (!slot) slot = std::make_unique<Histogram>();
  return *slot;
}

std::map<std::string, const Histogram*> MetricsRegistry::histograms() const {
  std::lock_guard<std::mutex> lock(hist_mu_);
  std::map<std::string, const Histogram*> out;
  for (const auto& [name, h] : hists_) out[name] = h.get();
  return out;
}

std::string MetricsRegistry::report() const {
  std::ostringstream os;
  os << "traffic (bytes total / remote / transfers):\n";
  for (int i = 0; i < kNumTrafficCategories; ++i) {
    const auto& t = traffic_[i];
    if (t.transfers.load() == 0) continue;
    os << "  " << traffic_category_name(static_cast<TrafficCategory>(i))
       << ": " << human_bytes(static_cast<std::size_t>(t.bytes.load()))
       << " / " << human_bytes(static_cast<std::size_t>(t.remote_bytes.load()))
       << " / " << t.transfers.load() << "\n";
  }
  os << "time (simulated/measured ms):\n";
  for (int i = 0; i < kNumTimeCategories; ++i) {
    int64_t ns = times_[i].load();
    if (ns == 0) continue;
    os << "  " << time_category_name(static_cast<TimeCategory>(i)) << ": "
       << fmt_double(static_cast<double>(ns) / 1e6, 2) << "\n";
  }
  std::map<std::string, int64_t> named = named_counters();
  if (!named.empty()) {
    os << "counters:\n";
    for (const auto& [name, v] : named) {
      os << "  " << name << ": " << v << "\n";
    }
  }
  {
    std::lock_guard<std::mutex> lock(gauge_mu_);
    if (!gauges_.empty()) {
      os << "gauges (high-water marks):\n";
      for (const auto& [name, v] : gauges_) {
        os << "  " << name << ": " << v << "\n";
      }
    }
  }
  {
    std::lock_guard<std::mutex> lock(hist_mu_);
    bool any = false;
    for (const auto& [name, h] : hists_) {
      if (h->count() == 0) continue;
      if (!any) {
        os << "histograms (count / p50 / p90 / p99 / mean):\n";
        any = true;
      }
      os << "  " << name << ": " << h->count() << " / "
         << fmt_double(h->percentile(50), 1) << " / "
         << fmt_double(h->percentile(90), 1) << " / "
         << fmt_double(h->percentile(99), 1) << " / "
         << fmt_double(h->mean(), 1) << "\n";
    }
  }
  return os.str();
}

void MetricsRegistry::reset() {
  for (auto& t : traffic_) {
    t.bytes.store(0);
    t.remote_bytes.store(0);
    t.transfers.store(0);
  }
  for (auto& t : times_) t.store(0);
  for (NamedShard& shard : named_shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    shard.counts.clear();
  }
  {
    std::lock_guard<std::mutex> lock(gauge_mu_);
    gauges_.clear();
  }
  // Histogram ENTRIES survive a reset (hot call sites cache the pointers);
  // only the recorded contents are cleared.
  std::lock_guard<std::mutex> lock(hist_mu_);
  for (auto& [name, h] : hists_) h->reset();
}

void RunReport::capture(const MetricsRegistry& m) {
  total_comm_bytes = m.total_remote_bytes();
  shuffle_bytes = m.traffic_bytes(TrafficCategory::kShuffle);
  reduce_to_map_bytes = m.traffic_bytes(TrafficCategory::kReduceToMap);
  broadcast_bytes = m.traffic_bytes(TrafficCategory::kBroadcast);
  checkpoint_bytes = m.traffic_bytes(TrafficCategory::kCheckpoint);
  control_bytes = m.traffic_bytes(TrafficCategory::kControl);
  shuffle_agg_bytes = m.traffic_bytes(TrafficCategory::kShuffleAgg);
  spill_bytes = m.traffic_bytes(TrafficCategory::kSpill);
  dfs_read_bytes = m.traffic_bytes(TrafficCategory::kDfsRead);
  dfs_write_bytes = m.traffic_bytes(TrafficCategory::kDfsWrite);
  shuffle_remote_bytes = m.traffic_remote_bytes(TrafficCategory::kShuffle);
  reduce_to_map_remote_bytes =
      m.traffic_remote_bytes(TrafficCategory::kReduceToMap);
  broadcast_remote_bytes = m.traffic_remote_bytes(TrafficCategory::kBroadcast);
  checkpoint_remote_bytes =
      m.traffic_remote_bytes(TrafficCategory::kCheckpoint);
  control_remote_bytes = m.traffic_remote_bytes(TrafficCategory::kControl);
  shuffle_agg_remote_bytes =
      m.traffic_remote_bytes(TrafficCategory::kShuffleAgg);
  spill_remote_bytes = m.traffic_remote_bytes(TrafficCategory::kSpill);
  job_init_time = m.time(TimeCategory::kJobInit);
  task_init_time = m.time(TimeCategory::kTaskInit);
  network_time = m.time(TimeCategory::kNetwork);
  dfs_time = m.time(TimeCategory::kDfsIo);
}

void RunReport::capture_delta(const MetricsRegistry& m, const RunReport& base) {
  capture(m);
  subtract(base);
}

void RunReport::subtract(const RunReport& base) {
  total_comm_bytes -= base.total_comm_bytes;
  shuffle_bytes -= base.shuffle_bytes;
  reduce_to_map_bytes -= base.reduce_to_map_bytes;
  broadcast_bytes -= base.broadcast_bytes;
  checkpoint_bytes -= base.checkpoint_bytes;
  control_bytes -= base.control_bytes;
  shuffle_agg_bytes -= base.shuffle_agg_bytes;
  spill_bytes -= base.spill_bytes;
  dfs_read_bytes -= base.dfs_read_bytes;
  dfs_write_bytes -= base.dfs_write_bytes;
  shuffle_remote_bytes -= base.shuffle_remote_bytes;
  reduce_to_map_remote_bytes -= base.reduce_to_map_remote_bytes;
  broadcast_remote_bytes -= base.broadcast_remote_bytes;
  checkpoint_remote_bytes -= base.checkpoint_remote_bytes;
  control_remote_bytes -= base.control_remote_bytes;
  shuffle_agg_remote_bytes -= base.shuffle_agg_remote_bytes;
  spill_remote_bytes -= base.spill_remote_bytes;
  job_init_time -= base.job_init_time;
  task_init_time -= base.task_init_time;
  network_time -= base.network_time;
  dfs_time -= base.dfs_time;
}

}  // namespace imr
