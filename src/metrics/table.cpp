#include "metrics/table.h"

#include <algorithm>
#include <sstream>

#include "common/error.h"

namespace imr {

void TextTable::add_row(std::vector<std::string> row) {
  IMR_CHECK_MSG(row.size() == header_.size(),
                "row width does not match header");
  rows_.push_back(std::move(row));
}

std::string TextTable::render() const {
  std::vector<std::size_t> widths(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }

  auto render_row = [&](const std::vector<std::string>& row,
                        std::ostringstream& os) {
    os << "| ";
    for (std::size_t c = 0; c < row.size(); ++c) {
      std::size_t pad = widths[c] - row[c].size();
      // Left-align the first column (labels), right-align the rest (numbers).
      if (c == 0) {
        os << row[c] << std::string(pad, ' ');
      } else {
        os << std::string(pad, ' ') << row[c];
      }
      os << " | ";
    }
    os << "\n";
  };

  std::ostringstream os;
  render_row(header_, os);
  os << "|";
  for (std::size_t c = 0; c < header_.size(); ++c) {
    os << std::string(widths[c] + 2, '-') << "|";
  }
  os << "\n";
  for (const auto& row : rows_) render_row(row, os);
  return os.str();
}

std::string TextTable::csv() const {
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) os << ",";
      os << row[c];
    }
    os << "\n";
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
  return os.str();
}

}  // namespace imr
