// Metrics: counters and simulated-time accounting for one engine run.
//
// Every experiment creates a fresh MetricsRegistry; the cluster, DFS, network
// fabric, and engines write into it. Two kinds of entries:
//   - counters:  monotonically increasing int64 values (bytes, records, events)
//   - sim times: accumulated simulated nanoseconds by category
//
// Traffic is recorded per TrafficCategory so that the paper's decomposition
// figures (Fig. 10, Fig. 11) can be computed exactly from a run.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/sim_time.h"

namespace imr {

// Categories of data motion and charged time. Every byte that moves through
// net:: or dfs:: carries one of these.
enum class TrafficCategory {
  kShuffle,        // map -> reduce intermediate data
  kReduceToMap,    // iMapReduce persistent reduce -> map channel
  kBroadcast,      // one-to-all reduce -> map broadcast
  kDfsRead,        // DFS file reads
  kDfsWrite,       // DFS file writes
  kCheckpoint,     // checkpoint dumps (also DFS writes, tracked separately)
  kControl,        // termination / report / migration control messages
  kShuffleAgg,     // aggregated cross-worker shuffle batches (DESIGN.md §9)
  kSpill,          // budgeted spill runs written to / read from MiniDfs
                   // (out-of-core record path, DESIGN.md §10)
};

const char* traffic_category_name(TrafficCategory c);
// Static-storage counter-track name for the per-category in-flight bytes
// samples the fabric records into the TraceRecorder ("inflight_shuffle"...).
const char* traffic_inflight_counter_name(TrafficCategory c);
inline constexpr int kNumTrafficCategories = 9;

// Categories of charged simulated time, used for the Fig. 10 factor
// decomposition.
enum class TimeCategory {
  kJobInit,     // per-job setup (scheduling, JVM-equivalent startup)
  kTaskInit,    // per-task setup
  kDfsIo,       // DFS read/write transfer time
  kNetwork,     // shuffle / broadcast / reduce-to-map transfer time
  kCompute,     // user map/reduce function execution (measured, not charged)
  kSort,        // sort/group time in reduce (measured)
};

const char* time_category_name(TimeCategory c);
inline constexpr int kNumTimeCategories = 6;

// Lock-free log2-bucketed histogram of non-negative int64 samples (latency
// nanoseconds, batch bytes, ...). record() is two relaxed atomic RMWs — no
// mutex, no allocation — so it is safe on the fabric's send/receive hot
// paths. Bucket b >= 1 covers [2^(b-1), 2^b); bucket 0 holds samples <= 0.
// Percentiles come from a cumulative walk over the buckets with linear
// interpolation inside the target bucket — exact for single-sample buckets
// and within one bucket width otherwise (see docs/OBSERVABILITY.md).
class Histogram {
 public:
  static constexpr int kNumBuckets = 64;

  void record(int64_t v) {
    buckets_[bucket_index(v)].fetch_add(1, std::memory_order_relaxed);
    if (v > 0) sum_.fetch_add(v, std::memory_order_relaxed);
  }

  int64_t count() const;
  double mean() const;
  // p in [0, 100]; returns 0 on an empty histogram.
  double percentile(double p) const;
  // Adds `other`'s buckets into this one (merging per-shard or per-run
  // histograms); concurrent record()s on either side stay countable.
  void merge(const Histogram& other);
  void reset();

  static int bucket_index(int64_t v) {
    if (v <= 0) return 0;
    int b = 0;
    for (uint64_t u = static_cast<uint64_t>(v); u != 0; u >>= 1) ++b;
    return b;  // highest set bit + 1; int64 max lands in bucket 63
  }
  static int64_t bucket_lower(int b) {
    return b <= 0 ? 0 : int64_t{1} << (b - 1);
  }

 private:
  std::atomic<int64_t> buckets_[kNumBuckets] = {};
  std::atomic<int64_t> sum_{0};
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  // --- traffic ---
  void add_traffic(TrafficCategory c, std::size_t bytes, bool remote) {
    auto& t = traffic_[static_cast<int>(c)];
    t.bytes.fetch_add(static_cast<int64_t>(bytes), std::memory_order_relaxed);
    t.transfers.fetch_add(1, std::memory_order_relaxed);
    if (remote) {
      t.remote_bytes.fetch_add(static_cast<int64_t>(bytes),
                               std::memory_order_relaxed);
    }
  }
  int64_t traffic_bytes(TrafficCategory c) const {
    return traffic_[static_cast<int>(c)].bytes.load();
  }
  int64_t traffic_remote_bytes(TrafficCategory c) const {
    return traffic_[static_cast<int>(c)].remote_bytes.load();
  }
  int64_t traffic_transfers(TrafficCategory c) const {
    return traffic_[static_cast<int>(c)].transfers.load();
  }
  // All bytes that crossed between two distinct workers (the paper's
  // "communication cost").
  int64_t total_remote_bytes() const;
  int64_t total_bytes() const;

  // --- simulated / measured time ---
  void add_time(TimeCategory c, SimDuration d) {
    times_[static_cast<int>(c)].fetch_add(d.count(),
                                          std::memory_order_relaxed);
  }
  SimDuration time(TimeCategory c) const {
    return SimDuration(times_[static_cast<int>(c)].load());
  }

  // --- named counters (records emitted, iterations run, tasks launched...) ---
  // Writes are striped: each thread increments its own shard (picked by
  // thread id), so concurrent tasks never contend on one counter mutex.
  // Reads (count / named_counters / report) merge the shards — they are the
  // cold path, taken once per run by benches and the invariant checker.
  void inc(const std::string& name, int64_t by = 1);
  int64_t count(const std::string& name) const;
  std::map<std::string, int64_t> named_counters() const;

  // --- gauges (high-water marks) ---
  // Named counters are additive across shards; a high-water mark is not.
  // gauge_max keeps the maximum ever reported under `name` (e.g. the
  // largest per-task arena footprint, "imr_arena_hwm"). Cold path: tasks
  // report once at exit.
  void gauge_max(const std::string& name, int64_t value);
  int64_t gauge(const std::string& name) const;  // 0 when never reported
  std::map<std::string, int64_t> gauges() const;

  // --- histograms (latency/size distributions) ---
  // Returns the named histogram, registering it on first use. The reference
  // is stable for the registry's lifetime (reset() clears contents, never
  // entries), so hot call sites cache the pointer and record lock-free.
  Histogram& histogram(const std::string& name);
  std::map<std::string, const Histogram*> histograms() const;

  // Render everything as a human-readable report.
  std::string report() const;

  void reset();

 private:
  struct Traffic {
    std::atomic<int64_t> bytes{0};
    std::atomic<int64_t> remote_bytes{0};
    std::atomic<int64_t> transfers{0};
  };
  Traffic traffic_[kNumTrafficCategories];
  std::atomic<int64_t> times_[kNumTimeCategories] = {};

  // One shard per stripe of threads; a thread always hits the same shard,
  // so each shard's map sees a consistent, uncontended stream of updates.
  static constexpr int kNamedShards = 16;
  struct NamedShard {
    mutable std::mutex mu;
    std::map<std::string, int64_t> counts;
  };
  NamedShard& shard_for_this_thread() const;
  mutable NamedShard named_shards_[kNamedShards];

  mutable std::mutex gauge_mu_;
  std::map<std::string, int64_t> gauges_;

  // unique_ptr values keep Histogram references stable across rehashes.
  mutable std::mutex hist_mu_;
  std::map<std::string, std::unique_ptr<Histogram>> hists_;
};

// Per-iteration record of one engine run; engines append one entry per
// completed iteration so benches can plot "time vs iteration" curves
// (Fig. 4–7) and compute decompositions.
struct IterationStat {
  int iteration = 0;          // 1-based
  double wall_ms_end = 0.0;   // wall time from run start to end of iteration
  double init_ms = 0.0;       // job+task init charged during this iteration
  double distance = 0.0;      // merged convergence distance (if measured)
  // Workset mode: total records changed across all reduce tasks this
  // iteration (the size of the next frontier); -1 in bulk mode.
  int64_t workset_size = -1;
  // Job-session epoch this iteration ran in (0 = the initial run; each
  // apply_update starts the next epoch). Always 0 outside sessions.
  int session = 0;
};

struct RunReport {
  std::string label;
  double total_wall_ms = 0.0;
  double init_wall_ms = 0.0;  // total scaled init time within total_wall_ms
  int iterations_run = 0;
  bool converged = false;
  std::vector<IterationStat> iterations;
  // Recovery/migration audit trail (InvariantChecker input): the iteration
  // each rollback restarted from, how many of those were migrations (the
  // rest were failure recoveries), and the iteration each final part file
  // was dumped at (one entry per Done notice).
  std::vector<int> rollback_iterations;
  int migration_rollbacks = 0;
  std::vector<int> final_part_iterations;
  // Total state records across all final part files (summed from the tasks'
  // Done notices). The InvariantChecker's conservation rule compares this
  // against the expected key count — frontier-only map phases legitimately
  // send fewer records than there are keys, so conservation is checked on
  // the final state, not on per-iteration channel transfers.
  int64_t final_state_records = 0;
  // Snapshot of key totals at end of run. The per-category byte fields
  // cover every category of the Fig. 11 communication decomposition, so the
  // decomposition can be computed from a report alone, without a live
  // registry; *_remote_bytes are the cross-worker slices (what the paper
  // calls communication cost).
  int64_t total_comm_bytes = 0;    // all remote bytes
  int64_t shuffle_bytes = 0;
  int64_t reduce_to_map_bytes = 0;
  int64_t broadcast_bytes = 0;
  int64_t checkpoint_bytes = 0;
  int64_t control_bytes = 0;
  int64_t dfs_read_bytes = 0;
  int64_t dfs_write_bytes = 0;
  int64_t shuffle_agg_bytes = 0;
  int64_t spill_bytes = 0;
  int64_t shuffle_remote_bytes = 0;
  int64_t reduce_to_map_remote_bytes = 0;
  int64_t broadcast_remote_bytes = 0;
  int64_t checkpoint_remote_bytes = 0;
  int64_t control_remote_bytes = 0;
  int64_t shuffle_agg_remote_bytes = 0;
  int64_t spill_remote_bytes = 0;
  SimDuration job_init_time{0};
  SimDuration task_init_time{0};
  SimDuration network_time{0};
  SimDuration dfs_time{0};

  // Fill the byte/time totals from a registry.
  void capture(const MetricsRegistry& m);
  // Fill the byte/time totals with the registry's counters MINUS `base`'s —
  // the traffic attributable to one window (e.g. one session epoch) of a
  // shared, cumulative registry. `base` must be a capture() of the same
  // registry taken at the window's start.
  void capture_delta(const MetricsRegistry& m, const RunReport& base);
  // Subtract `base`'s byte/time totals from this report's (already-captured)
  // totals in place. Lets a caller read the registry once and use the same
  // snapshot both as a window's end and as the next window's base, so
  // consecutive windows tile with no gap for concurrent charges to fall in.
  void subtract(const RunReport& base);
};

}  // namespace imr
