// TraceRecorder — always-on tracing substrate for the runtime.
//
// Typed events (spans, instants, flows, counter samples) are recorded into
// per-track ring buffers behind a single relaxed-atomic gate, the same
// pattern as Fabric::send's armed flag: with tracing disabled — the default —
// every instrumentation site costs one predictable branch and nothing else,
// so the probes can stay in the hot paths permanently. A track is one task's
// (or the master's) timeline; each track has exactly one writer thread, so
// recording takes no lock at all. When a ring fills, the oldest events are
// overwritten and counted as dropped — tracing never blocks or allocates on
// the steady-state path.
//
// Timestamps are VIRTUAL time (VClock nanoseconds), not wall time: the trace
// visualizes the same discrete-event timeline the cost model computes, which
// makes traces deterministic for a fixed seed and directly comparable to the
// paper's simulated-seconds results. One caveat follows from the engine
// itself: checkpoint dumps are charged on a detached parallel clock (§3.4.1),
// so a checkpoint span can legitimately extend past the end timestamp of the
// iteration span that contains it. Span nesting is therefore defined by
// event ORDER within a track (strict begin/end stack discipline), not by
// timestamp containment.
//
// Export is Chrome trace-event JSON: load the file in Perfetto
// (https://ui.perfetto.dev) or chrome://tracing. Tracks map to threads, with
// the master as process 0 and worker W as process W+1; flow arrows connect
// each Fabric send to its receive. See docs/OBSERVABILITY.md for the event
// taxonomy.
//
// Enabling: programmatically via enable()/disable(), or by setting the
// IMR_TRACE environment variable (its value is the export path convention
// used by imr_run and the chaos harness; any non-empty value arms the gate
// at process start).
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <iosfwd>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/sim_time.h"

namespace imr {

enum class TraceEventType : uint8_t {
  kSpanBegin,   // ph "B"
  kSpanEnd,     // ph "E"
  kInstant,     // ph "i"
  kFlowStart,   // ph "s"  (value = flow id)
  kFlowEnd,     // ph "f"  (value = flow id)
  kCounter,     // ph "C"  (value = sample)
};

// One fixed-size trace record. `name` must point at a string with static
// storage duration — the event taxonomy is a closed set of literals (plus
// the category names from metrics.cpp); dynamic strings appear only in track
// labels, which are registered once per task.
struct TraceEvent {
  int64_t ts_ns = 0;            // virtual-time timestamp
  int64_t value = 0;            // flow id (kFlow*) or sample (kCounter)
  const char* name = nullptr;
  int32_t iter = 0;             // iteration argument (0 = n/a)
  int32_t gen = 0;              // generation argument
  TraceEventType type = TraceEventType::kInstant;
};

class TraceRecorder {
 public:
  static TraceRecorder& instance();

  // The hot-path gate: one relaxed load. Instrumentation sites check this
  // before doing any work (building names, reading clocks, ...).
  static bool enabled() { return enabled_.load(std::memory_order_relaxed); }

  // Arms the gate. `ring_capacity` applies to tracks registered afterwards.
  void enable(std::size_t ring_capacity = kDefaultRingCapacity);
  void disable();
  // Drops all recorded tracks and invalidates every thread's cached track.
  // Requires quiescence: no thread may be mid-record (call it between runs,
  // with the engine's threads joined).
  void reset();

  // Binds the calling thread to a track. If the thread's current track
  // already has this label and pid it is reused (repeated short-lived
  // driver contexts collapse onto one timeline); otherwise a fresh track is
  // registered — so a respawned task gets its own timeline, distinct from
  // the zombie it replaces even when the label matches. Returns the
  // previous binding; restore it with set_thread_track when the caller's
  // timeline (e.g. a driver loop) continues after a nested job finishes.
  // `pid` is the home worker (-1 = master/driver).
  using TrackHandle = void*;
  TrackHandle begin_thread_track(const std::string& label, int pid);
  void set_thread_track(TrackHandle handle);

  void span_begin(const char* name, int64_t ts_ns, int iter = 0, int gen = 0);
  void span_end(const char* name, int64_t ts_ns);
  void instant(const char* name, int64_t ts_ns, int iter = 0, int gen = 0);
  void flow_start(const char* name, uint64_t id, int64_t ts_ns, int iter = 0,
                  int gen = 0);
  void flow_end(const char* name, uint64_t id, int64_t ts_ns, int iter = 0,
                int gen = 0);
  void counter(const char* name, int64_t ts_ns, int64_t value);

  // Process-unique id linking one send event to its receive event.
  uint64_t next_flow_id() {
    return flow_ids_.fetch_add(1, std::memory_order_relaxed);
  }

  // Running in-flight byte total per TrafficCategory (sender adds, receiver
  // subtracts); returns the post-update value for counter sampling.
  int64_t add_inflight(int category, int64_t delta);

  struct TrackSnapshot {
    std::string label;
    int pid = -1;
    int64_t dropped = 0;            // events overwritten by ring wrap
    std::vector<TraceEvent> events; // oldest first
  };
  // Copies all tracks. Like reset(), requires writer quiescence.
  std::vector<TrackSnapshot> snapshot() const;

  // Chrome trace-event JSON ({"traceEvents": [...]}) — Perfetto-loadable.
  void export_chrome_json(std::ostream& os) const;
  bool export_to_file(const std::string& path) const;

  static constexpr std::size_t kDefaultRingCapacity = 1u << 15;

 private:
  struct Track {
    std::string label;
    int pid = -1;
    uint64_t epoch = 0;        // recorder epoch at registration
    std::size_t capacity = 0;
    std::vector<TraceEvent> ring;  // grows to capacity, then wraps
    std::size_t head = 0;          // index of the oldest event once wrapped
    int64_t dropped = 0;

    void record(const TraceEvent& e) {
      if (ring.size() < capacity) {
        ring.push_back(e);
        return;
      }
      ring[head] = e;
      head = (head + 1) % capacity;
      ++dropped;
    }
  };

  TraceRecorder() = default;
  // Returns the calling thread's track, auto-registering an anonymous one
  // ("thread", pid -1) for threads that record before binding a track.
  Track* current_track();
  Track* new_track(const std::string& label, int pid);

  static std::atomic<bool> enabled_;  // seeded from IMR_TRACE (trace.cpp)
  std::atomic<uint64_t> flow_ids_{1};
  std::atomic<int64_t> inflight_[8] = {};
  // Bumped by reset(); a thread-cached Track whose epoch is stale is
  // abandoned (its storage was freed), never written.
  std::atomic<uint64_t> epoch_{1};
  mutable std::mutex mu_;  // guards tracks_ registration and ring_capacity_
  std::deque<std::unique_ptr<Track>> tracks_;
  // Tracks dropped by reset(). Kept (rings cleared) so that thread-cached
  // pointers into them stay dereferenceable for the epoch check.
  std::deque<std::unique_ptr<Track>> retired_;
  std::size_t ring_capacity_ = kDefaultRingCapacity;
};

// RAII span on a task's virtual clock: begins at construction, ends at
// destruction (or an early end()), reading the clock at each point. All
// gating happens at construction — a span built while tracing is disabled
// records nothing, even if tracing is enabled before it dies.
class TraceSpan {
 public:
  TraceSpan(const char* name, const VClock& vt, int iter = 0, int gen = 0) {
    if (TraceRecorder::enabled()) begin(name, &vt, iter, gen);
  }
  // Pointer form for call sites with an optional clock (DFS helpers).
  TraceSpan(const char* name, const VClock* vt, int iter = 0, int gen = 0) {
    if (vt != nullptr && TraceRecorder::enabled()) begin(name, vt, iter, gen);
  }
  ~TraceSpan() { end(); }
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  void end() {
    if (vt_ == nullptr) return;
    TraceRecorder::instance().span_end(name_, vt_->now_ns());
    vt_ = nullptr;
  }

 private:
  void begin(const char* name, const VClock* vt, int iter, int gen) {
    vt_ = vt;
    name_ = name;
    TraceRecorder::instance().span_begin(name, vt->now_ns(), iter, gen);
  }

  const VClock* vt_ = nullptr;
  const char* name_ = nullptr;
};

}  // namespace imr
