#include "metrics/invariants.h"

#include <algorithm>

#include "common/strings.h"

namespace imr {

std::vector<std::string> InvariantChecker::check(
    const InvariantExpectations& expect) const {
  std::vector<std::string> violations;
  auto fail = [&](std::string what) { violations.push_back(std::move(what)); };

  // 1. Traffic conservation.
  for (int cat = 0; cat < kNumTrafficCategories; ++cat) {
    auto c = static_cast<TrafficCategory>(cat);
    int64_t bytes = metrics_.traffic_bytes(c);
    int64_t remote = metrics_.traffic_remote_bytes(c);
    if (bytes < 0 || remote < 0 || remote > bytes) {
      fail(strprintf("traffic[%s]: remote %lld outside [0, total %lld]",
                     traffic_category_name(c),
                     static_cast<long long>(remote),
                     static_cast<long long>(bytes)));
    }
  }
  if (metrics_.total_remote_bytes() > metrics_.total_bytes()) {
    fail("total remote bytes exceed total bytes");
  }

  // 2. Channel conservation.
  if (has_channel_) {
    const ChannelStats& s = channel_;
    if (s.attempts != s.delivered + s.dropped + s.rejected) {
      fail(strprintf("channel ledger: attempts %lld != delivered %lld + "
                     "dropped %lld + rejected %lld",
                     static_cast<long long>(s.attempts),
                     static_cast<long long>(s.delivered),
                     static_cast<long long>(s.dropped),
                     static_cast<long long>(s.rejected)));
    }
    if (expect.quiesced && s.delivered != s.received + s.discarded) {
      fail(strprintf("channel ledger: delivered %lld != received %lld + "
                     "discarded %lld after quiesce",
                     static_cast<long long>(s.delivered),
                     static_cast<long long>(s.received),
                     static_cast<long long>(s.discarded)));
    }
  }

  // 3. Co-location of the one2one reduce->map state channel.
  if (expect.colocated_state_channel) {
    int64_t remote =
        metrics_.traffic_remote_bytes(TrafficCategory::kReduceToMap);
    if (remote != 0) {
      fail(strprintf("reduce->map channel moved %lld remote bytes; one2one "
                     "pairs must stay co-located through recovery",
                     static_cast<long long>(remote)));
    }
  }

  if (report_ != nullptr) {
    const RunReport& r = *report_;

    // 4. Output consistency: every part dumped at the final iteration.
    if (expect.expected_parts >= 0 &&
        static_cast<int>(r.final_part_iterations.size()) !=
            expect.expected_parts) {
      fail(strprintf("expected %d final part files, saw %d",
                     expect.expected_parts,
                     static_cast<int>(r.final_part_iterations.size())));
    }
    for (int it : r.final_part_iterations) {
      if (it != r.iterations_run) {
        fail(strprintf("part file dumped at iteration %d, run decided %d",
                       it, r.iterations_run));
      }
    }

    // 5. Iteration ledger: strictly +1 steps within a session. A rollback
    // truncates the entries above the restored checkpoint before the re-run
    // appends, so even a recovered run must read as one consecutive
    // sequence — duplicated or regressing entries mean the truncation was
    // skipped. A session boundary (apply_update) resumes above the decided
    // drain iteration, so across it the ledger must only advance.
    for (std::size_t n = 1; n < r.iterations.size(); ++n) {
      int prev = r.iterations[n - 1].iteration;
      int cur = r.iterations[n].iteration;
      int prev_sess = r.iterations[n - 1].session;
      int cur_sess = r.iterations[n].session;
      if (cur_sess < prev_sess) {
        fail(strprintf("session ledger regresses %d -> %d at iteration %d",
                       prev_sess, cur_sess, cur));
      }
      if (cur_sess != prev_sess) {
        if (cur <= prev) {
          fail(strprintf("iteration ledger regresses %d -> %d across the "
                         "session %d -> %d boundary",
                         prev, cur, prev_sess, cur_sess));
        }
      } else if (cur != prev + 1) {
        fail(strprintf("iteration ledger jumps %d -> %d; entries must step "
                       "by one even across rollbacks",
                       prev, cur));
      }
    }
    if (!r.iterations.empty() &&
        r.iterations.back().iteration != r.iterations_run) {
      fail(strprintf("last decided iteration %d != iterations_run %d",
                     r.iterations.back().iteration, r.iterations_run));
    }

    // 6. Recovery accounting.
    if (expect.expected_recoveries >= 0 &&
        static_cast<int>(r.rollback_iterations.size()) -
                r.migration_rollbacks !=
            expect.expected_recoveries) {
      fail(strprintf("expected %d recovery rollbacks, saw %d",
                     expect.expected_recoveries,
                     static_cast<int>(r.rollback_iterations.size()) -
                         r.migration_rollbacks));
    }

    // 7. State conservation (frontier-aware): checked on the final state,
    // not on channel transfers — workset map phases legitimately see fewer
    // records than keys, so only the end-of-run state must balance.
    if (expect.expected_state_records >= 0 &&
        r.final_state_records != expect.expected_state_records) {
      fail(strprintf("final state holds %lld records, expected %lld",
                     static_cast<long long>(r.final_state_records),
                     static_cast<long long>(expect.expected_state_records)));
    }

    // 8. Workset ledger.
    for (std::size_t n = 0; n < r.iterations.size(); ++n) {
      int64_t ws = r.iterations[n].workset_size;
      int iter = r.iterations[n].iteration;
      if (!expect.workset_mode) {
        if (ws != -1) {
          fail(strprintf("bulk run recorded workset size %lld at iteration "
                         "%d; expected the -1 sentinel",
                         static_cast<long long>(ws), iter));
        }
        continue;
      }
      if (ws < 0) {
        fail(strprintf("workset run missing workset size at iteration %d",
                       iter));
        continue;
      }
      if (expect.expected_state_records >= 0 &&
          ws > expect.expected_state_records) {
        fail(strprintf("workset size %lld at iteration %d exceeds the %lld "
                       "state records",
                       static_cast<long long>(ws), iter,
                       static_cast<long long>(
                           expect.expected_state_records)));
      }
      // A drained workset may only be followed, within the same session, by
      // further drained entries (a recovery that rolled back to the drain
      // checkpoint re-decides them); a non-zero after a zero means the run
      // kept iterating past its fixpoint.
      if (ws == 0 && n + 1 < r.iterations.size() &&
          r.iterations[n + 1].session == r.iterations[n].session &&
          r.iterations[n + 1].workset_size != 0) {
        fail(strprintf("workset drained at iteration %d but the run kept "
                       "iterating past its fixpoint",
                       iter));
      }
    }
  }
  if (expect.expected_recoveries >= 0 &&
      metrics_.count("imr_recoveries") != expect.expected_recoveries) {
    fail(strprintf("expected %d recoveries, metrics count %lld",
                   expect.expected_recoveries,
                   static_cast<long long>(metrics_.count("imr_recoveries"))));
  }

  // 9. Delta conservation: every routed static-delta op was applied by
  // exactly one map task. Replay (imr_delta_ops_replayed) re-applies ops to
  // a REBUILT store during recovery and is deliberately outside this
  // balance — it never pairs with a route.
  {
    int64_t routed = metrics_.count("imr_delta_ops_routed");
    int64_t applied = metrics_.count("imr_delta_ops_applied");
    if (routed != applied) {
      fail(strprintf("delta ledger: %lld ops routed but %lld applied",
                     static_cast<long long>(routed),
                     static_cast<long long>(applied)));
    }
    if (expect.expected_delta_ops >= 0 && routed != expect.expected_delta_ops) {
      fail(strprintf("expected %lld delta ops, routed %lld",
                     static_cast<long long>(expect.expected_delta_ops),
                     static_cast<long long>(routed)));
    }
  }

  // 10. Telemetry conservation: the traffic matrix mirrors every registry
  // charge, so per category its cell sums must reproduce the Fig-11 totals
  // exactly — bytes, off-diagonal (remote) bytes, and message counts.
  if (has_matrix_) {
    for (int cat = 0; cat < kNumTrafficCategories; ++cat) {
      auto c = static_cast<TrafficCategory>(cat);
      int64_t m_bytes = matrix_.category_bytes(c);
      int64_t m_remote = matrix_.category_remote_bytes(c);
      int64_t m_msgs = matrix_.category_msgs(c);
      if (m_bytes != metrics_.traffic_bytes(c)) {
        fail(strprintf("telemetry matrix[%s]: %lld bytes != registry %lld",
                       traffic_category_name(c),
                       static_cast<long long>(m_bytes),
                       static_cast<long long>(metrics_.traffic_bytes(c))));
      }
      if (m_remote != metrics_.traffic_remote_bytes(c)) {
        fail(strprintf(
            "telemetry matrix[%s]: %lld remote bytes != registry %lld",
            traffic_category_name(c), static_cast<long long>(m_remote),
            static_cast<long long>(metrics_.traffic_remote_bytes(c))));
      }
      if (m_msgs != metrics_.traffic_transfers(c)) {
        fail(strprintf("telemetry matrix[%s]: %lld messages != registry "
                       "%lld transfers",
                       traffic_category_name(c),
                       static_cast<long long>(m_msgs),
                       static_cast<long long>(metrics_.traffic_transfers(c))));
      }
    }
  }

  // 11. Spill conservation: the out-of-core record path accounts for every
  // spilled run. Written runs are merged back (read) or explicitly dropped
  // (rollback GC, torn writes, end-of-run sweep) — never lost or replayed
  // into the output twice.
  {
    int64_t written = metrics_.count("imr_spill_bytes_written");
    int64_t read = metrics_.count("imr_spill_bytes_read");
    int64_t dropped = metrics_.count("imr_spill_bytes_dropped");
    if (written != read + dropped) {
      fail(strprintf("spill ledger: %lld bytes written != %lld read + %lld "
                     "dropped",
                     static_cast<long long>(written),
                     static_cast<long long>(read),
                     static_cast<long long>(dropped)));
    }
    int64_t runs_written = metrics_.count("imr_spill_runs_written");
    int64_t runs_read = metrics_.count("imr_spill_runs_read");
    int64_t runs_dropped = metrics_.count("imr_spill_runs_dropped");
    if (runs_written != runs_read + runs_dropped) {
      fail(strprintf("spill ledger: %lld runs written != %lld read + %lld "
                     "dropped",
                     static_cast<long long>(runs_written),
                     static_cast<long long>(runs_read),
                     static_cast<long long>(runs_dropped)));
    }
  }

  return violations;
}

}  // namespace imr
