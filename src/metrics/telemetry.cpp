#include "metrics/telemetry.h"

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <functional>
#include <ostream>
#include <thread>

#include "common/strings.h"

namespace imr {

namespace {

bool env_requests_telemetry() {
  const char* env = std::getenv("IMR_TELEMETRY");
  return env != nullptr && *env != '\0';
}

// Same escaping rules as the trace exporter: keys can hold arbitrary bytes.
std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (unsigned char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20 || c >= 0x7f) {
          out += strprintf("\\u%04x", c);
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  return out;
}

// Doubles in the JSONL are all derived from virtual-time integers, so a
// fixed-precision print keeps same-seed exports byte-identical.
std::string json_double(double v) { return strprintf("%.6f", v); }

}  // namespace

// ---------------------------------------------------------------------------
// SpaceSaving
// ---------------------------------------------------------------------------

void SpaceSaving::offer(const Bytes& key, int64_t by) {
  total_ += by;
  auto it = counters_.find(key);
  if (it != counters_.end()) {
    it->second.count += by;
    return;
  }
  if (counters_.size() < capacity_) {
    counters_[key] = Counter{by, 0};
    return;
  }
  // Evict the minimum-count entry (ties: smallest key, from the ordered
  // scan); the newcomer inherits its count as the error bound.
  auto min_it = counters_.begin();
  for (auto scan = counters_.begin(); scan != counters_.end(); ++scan) {
    if (scan->second.count < min_it->second.count) min_it = scan;
  }
  Counter evicted = min_it->second;
  counters_.erase(min_it);
  counters_[key] = Counter{evicted.count + by, evicted.count};
}

void SpaceSaving::merge(const SpaceSaving& other) {
  total_ += other.total_;
  for (const auto& [key, c] : other.counters_) {
    Counter& mine = counters_[key];
    mine.count += c.count;
    mine.error += c.error;
  }
  truncate();
}

void SpaceSaving::truncate() {
  if (counters_.size() <= capacity_) return;
  std::vector<HotKey> all = top();
  counters_.clear();
  for (std::size_t n = 0; n < capacity_; ++n) {
    counters_[all[n].key] = Counter{all[n].count, all[n].error};
  }
}

std::vector<HotKey> SpaceSaving::top() const {
  std::vector<HotKey> out;
  out.reserve(counters_.size());
  for (const auto& [key, c] : counters_) {
    out.push_back(HotKey{key, c.count, c.error});
  }
  std::sort(out.begin(), out.end(), [](const HotKey& a, const HotKey& b) {
    if (a.count != b.count) return a.count > b.count;
    if (a.error != b.error) return a.error < b.error;
    return a.key < b.key;
  });
  return out;
}

// ---------------------------------------------------------------------------
// TrafficMatrixSnapshot
// ---------------------------------------------------------------------------

int64_t TrafficMatrixSnapshot::category_bytes(TrafficCategory c) const {
  int64_t total = 0;
  for (int f = -1; f < workers_; ++f) {
    for (int t = -1; t < workers_; ++t) total += cell(f, t, c).bytes;
  }
  return total;
}

int64_t TrafficMatrixSnapshot::category_remote_bytes(TrafficCategory c) const {
  int64_t total = 0;
  for (int f = -1; f < workers_; ++f) {
    for (int t = -1; t < workers_; ++t) {
      if (f != t) total += cell(f, t, c).bytes;
    }
  }
  return total;
}

int64_t TrafficMatrixSnapshot::category_msgs(TrafficCategory c) const {
  int64_t total = 0;
  for (int f = -1; f < workers_; ++f) {
    for (int t = -1; t < workers_; ++t) total += cell(f, t, c).msgs;
  }
  return total;
}

// ---------------------------------------------------------------------------
// TelemetryLedger
// ---------------------------------------------------------------------------

TelemetryLedger::TelemetryLedger(int num_workers)
    : workers_(num_workers), slots_(num_workers + 1) {
  const std::size_t cells = static_cast<std::size_t>(slots_) *
                            static_cast<std::size_t>(slots_) *
                            kNumTrafficCategories * 2;
  for (MatrixStripe& s : matrix_stripes_) {
    s.counters = std::vector<std::atomic<int64_t>>(cells);
  }
}

std::size_t TelemetryLedger::stripe_for_this_thread() const {
  static const thread_local std::size_t idx =
      std::hash<std::thread::id>{}(std::this_thread::get_id()) %
      static_cast<std::size_t>(kStripes);
  return idx;
}

std::size_t TelemetryLedger::matrix_index(int from, int to,
                                          TrafficCategory c) const {
  auto slot = [this](int w) {
    return (w < 0 || w >= workers_) ? 0 : w + 1;
  };
  return ((static_cast<std::size_t>(slot(from)) *
               static_cast<std::size_t>(slots_) +
           static_cast<std::size_t>(slot(to))) *
              kNumTrafficCategories +
          static_cast<std::size_t>(c)) *
         2;
}

void TelemetryLedger::add_send(int from_worker, int to_worker,
                               TrafficCategory c, int64_t bytes,
                               int generation, int iteration,
                               uint32_t endpoint_uid) {
  MatrixStripe& stripe = matrix_stripes_[stripe_for_this_thread()];
  const std::size_t idx = matrix_index(from_worker, to_worker, c);
  stripe.counters[idx].fetch_add(bytes, std::memory_order_relaxed);
  stripe.counters[idx + 1].fetch_add(1, std::memory_order_relaxed);

  const uint64_t key = bucket_key(generation, iteration);
  BucketShard& shard = shard_for_key(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  IterBucket& b = shard.buckets[key];
  b.bytes[static_cast<std::size_t>(c)] += bytes;
  b.msgs[static_cast<std::size_t>(c)] += 1;
  b.endpoint_msgs[endpoint_uid] += 1;
}

void TelemetryLedger::add_dfs(int from_worker, int to_worker,
                              TrafficCategory c, int64_t bytes,
                              bool count_msg) {
  MatrixStripe& stripe = matrix_stripes_[stripe_for_this_thread()];
  const std::size_t idx = matrix_index(from_worker, to_worker, c);
  stripe.counters[idx].fetch_add(bytes, std::memory_order_relaxed);
  if (count_msg) stripe.counters[idx + 1].fetch_add(1, std::memory_order_relaxed);
}

void TelemetryLedger::begin_run() {
  for (BucketShard& shard : bucket_shards_) {
    std::lock_guard<std::mutex> lock(shard.mu);
    shard.buckets.clear();
  }
  std::lock_guard<std::mutex> lock(profile_mu_);
  profiles_.clear();
  static_bytes_.clear();
}

void TelemetryLedger::record_map_iter(int task, int generation, int iteration,
                                      int64_t duration_ns) {
  const uint64_t key = bucket_key(generation, iteration);
  BucketShard& shard = shard_for_key(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  int64_t& dur = shard.buckets[key].map_dur_ns[task];
  dur = std::max(dur, duration_ns);
}

void TelemetryLedger::record_static_bytes(int task, int64_t bytes) {
  std::lock_guard<std::mutex> lock(profile_mu_);
  static_bytes_[task] += bytes;
}

void TelemetryLedger::record_task_profile(int task, int generation,
                                          SpaceSaving sketch,
                                          std::vector<int64_t> counts) {
  std::lock_guard<std::mutex> lock(profile_mu_);
  TaskProfile& p = profiles_[task];
  if (generation < p.generation) return;  // zombie: superseded by a respawn
  if (generation > p.generation) {
    p.generation = generation;
    p.sketch = std::move(sketch);
    p.partition_counts = std::move(counts);
    return;
  }
  // Same generation: another phase of the same pair. Merge.
  p.sketch.merge(sketch);
  if (p.partition_counts.size() < counts.size()) {
    p.partition_counts.resize(counts.size(), 0);
  }
  for (std::size_t n = 0; n < counts.size(); ++n) {
    p.partition_counts[n] += counts[n];
  }
}

TrafficMatrixSnapshot TelemetryLedger::snapshot_matrix() const {
  TrafficMatrixSnapshot snap(workers_);
  for (int f = -1; f < workers_; ++f) {
    for (int t = -1; t < workers_; ++t) {
      for (int c = 0; c < kNumTrafficCategories; ++c) {
        auto cat = static_cast<TrafficCategory>(c);
        const std::size_t idx = matrix_index(f, t, cat);
        TrafficCell& cell = snap.cell(f, t, cat);
        for (const MatrixStripe& s : matrix_stripes_) {
          cell.bytes += s.counters[idx].load(std::memory_order_relaxed);
          cell.msgs += s.counters[idx + 1].load(std::memory_order_relaxed);
        }
      }
    }
  }
  return snap;
}

void TelemetryLedger::fill_iter(IterTelemetry& t) const {
  const uint64_t key = bucket_key(t.generation, t.iteration);
  BucketShard& shard = shard_for_key(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto it = shard.buckets.find(key);
  if (it == shard.buckets.end()) return;
  const IterBucket& b = it->second;
  t.bytes = b.bytes;
  t.msgs = b.msgs;
  for (const auto& [uid, n] : b.endpoint_msgs) {
    t.queue_hwm = std::max(t.queue_hwm, n);
  }
  int64_t max_map = 0;
  for (const auto& [task, dur] : b.map_dur_ns) {
    max_map = std::max(max_map, dur);
  }
  t.map_ms = static_cast<double>(max_map) / 1e6;
}

void TelemetryLedger::collect_profiles(std::vector<HotKey>* hot_keys,
                                       int64_t* samples,
                                       std::vector<int64_t>* partition_records,
                                       double* skew) const {
  std::lock_guard<std::mutex> lock(profile_mu_);
  SpaceSaving merged;
  std::vector<int64_t> counts;
  for (const auto& [task, p] : profiles_) {
    merged.merge(p.sketch);
    if (counts.size() < p.partition_counts.size()) {
      counts.resize(p.partition_counts.size(), 0);
    }
    for (std::size_t n = 0; n < p.partition_counts.size(); ++n) {
      counts[n] += p.partition_counts[n];
    }
  }
  *hot_keys = merged.top();
  *samples = merged.total();
  int64_t total = 0;
  int64_t max = 0;
  for (int64_t n : counts) {
    total += n;
    max = std::max(max, n);
  }
  *skew = (total > 0 && !counts.empty())
              ? static_cast<double>(max) /
                    (static_cast<double>(total) /
                     static_cast<double>(counts.size()))
              : 0.0;
  *partition_records = std::move(counts);
}

std::vector<int64_t> TelemetryLedger::static_bytes_per_task() const {
  std::lock_guard<std::mutex> lock(profile_mu_);
  std::vector<int64_t> out;
  for (const auto& [task, bytes] : static_bytes_) {
    if (static_cast<int>(out.size()) <= task) {
      out.resize(static_cast<std::size_t>(task) + 1, 0);
    }
    out[static_cast<std::size_t>(task)] = bytes;
  }
  return out;
}

// ---------------------------------------------------------------------------
// TelemetryRecorder
// ---------------------------------------------------------------------------

std::atomic<bool> TelemetryRecorder::enabled_{env_requests_telemetry()};

TelemetryRecorder& TelemetryRecorder::instance() {
  static TelemetryRecorder recorder;
  return recorder;
}

void TelemetryRecorder::enable() {
  enabled_.store(true, std::memory_order_relaxed);
}

void TelemetryRecorder::disable() {
  enabled_.store(false, std::memory_order_relaxed);
}

void TelemetryRecorder::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  runs_.clear();
}

void TelemetryRecorder::append(RunTelemetry run) {
  std::lock_guard<std::mutex> lock(mu_);
  runs_.push_back(std::move(run));
}

std::vector<RunTelemetry> TelemetryRecorder::runs() const {
  std::lock_guard<std::mutex> lock(mu_);
  return runs_;
}

namespace {

void export_iter(std::ostream& os, const RunTelemetry& run,
                 const IterTelemetry& t) {
  os << "{\"type\":\"iter\",\"job\":\"" << json_escape(run.job)
     << "\",\"session\":" << t.session << ",\"generation\":" << t.generation
     << ",\"iteration\":" << t.iteration
     << ",\"vt_ms\":" << json_double(t.vt_ms)
     << ",\"distance\":" << json_double(t.distance)
     << ",\"workset\":" << t.workset
     << ",\"map_ms\":" << json_double(t.map_ms)
     << ",\"reduce_ms\":" << json_double(t.reduce_ms)
     << ",\"straggler\":{\"task\":" << t.straggler_task
     << ",\"worker\":" << t.straggler_worker
     << ",\"ms\":" << json_double(t.straggler_ms) << "}";
  os << ",\"task_ms\":[";
  for (int i = 0; i < run.tasks; ++i) {
    if (i > 0) os << ",";
    auto it = t.task_ms.find(i);
    os << json_double(it == t.task_ms.end() ? 0.0 : it->second);
  }
  os << "],\"state_bytes\":[";
  for (int i = 0; i < run.tasks; ++i) {
    if (i > 0) os << ",";
    auto it = t.state_bytes.find(i);
    os << (it == t.state_bytes.end() ? 0 : it->second);
  }
  os << "],\"queue_hwm\":" << t.queue_hwm;
  os << ",\"bytes\":{";
  for (int c = 0; c < kNumTrafficCategories; ++c) {
    if (c > 0) os << ",";
    os << "\"" << traffic_category_name(static_cast<TrafficCategory>(c))
       << "\":" << t.bytes[static_cast<std::size_t>(c)];
  }
  os << "},\"msgs\":{";
  for (int c = 0; c < kNumTrafficCategories; ++c) {
    if (c > 0) os << ",";
    os << "\"" << traffic_category_name(static_cast<TrafficCategory>(c))
       << "\":" << t.msgs[static_cast<std::size_t>(c)];
  }
  os << "}}\n";
}

void export_run(std::ostream& os, const RunTelemetry& run) {
  os << "{\"type\":\"run\",\"job\":\"" << json_escape(run.job)
     << "\",\"workers\":" << run.workers << ",\"tasks\":" << run.tasks
     << ",\"iterations_run\":" << run.iterations_run
     << ",\"converged\":" << (run.converged ? "true" : "false")
     << ",\"session_epochs\":" << run.session_epochs;
  os << ",\"traffic\":{";
  for (int c = 0; c < kNumTrafficCategories; ++c) {
    auto cat = static_cast<TrafficCategory>(c);
    if (c > 0) os << ",";
    os << "\"" << traffic_category_name(cat)
       << "\":{\"bytes\":" << run.matrix.category_bytes(cat)
       << ",\"remote\":" << run.matrix.category_remote_bytes(cat)
       << ",\"msgs\":" << run.matrix.category_msgs(cat) << "}";
  }
  os << "}";
  // Sparse matrix: only non-empty cells, as [from, to, category, bytes,
  // msgs] with -1 for the master slot.
  os << ",\"matrix\":[";
  bool first = true;
  for (int f = -1; f < run.matrix.workers(); ++f) {
    for (int t = -1; t < run.matrix.workers(); ++t) {
      for (int c = 0; c < kNumTrafficCategories; ++c) {
        auto cat = static_cast<TrafficCategory>(c);
        const TrafficCell& cell = run.matrix.cell(f, t, cat);
        if (cell.bytes == 0 && cell.msgs == 0) continue;
        if (!first) os << ",";
        first = false;
        os << "[" << f << "," << t << ",\"" << traffic_category_name(cat)
           << "\"," << cell.bytes << "," << cell.msgs << "]";
      }
    }
  }
  os << "]";
  os << ",\"hot_keys\":[";
  for (std::size_t n = 0; n < run.hot_keys.size(); ++n) {
    if (n > 0) os << ",";
    os << "{\"key\":\"" << json_escape(run.hot_keys[n].key)
       << "\",\"count\":" << run.hot_keys[n].count
       << ",\"error\":" << run.hot_keys[n].error << "}";
  }
  os << "],\"hot_key_samples\":" << run.hot_key_samples;
  os << ",\"partition_records\":[";
  for (std::size_t n = 0; n < run.partition_records.size(); ++n) {
    if (n > 0) os << ",";
    os << run.partition_records[n];
  }
  os << "],\"skew\":" << json_double(run.skew);
  os << ",\"static_bytes\":" << run.static_bytes;
  os << ",\"static_bytes_per_task\":[";
  for (std::size_t n = 0; n < run.static_bytes_per_task.size(); ++n) {
    if (n > 0) os << ",";
    os << run.static_bytes_per_task[n];
  }
  os << "]";
  os << ",\"spill\":{\"bytes_written\":" << run.spill_bytes_written
     << ",\"bytes_read\":" << run.spill_bytes_read
     << ",\"bytes_dropped\":" << run.spill_bytes_dropped
     << ",\"runs\":" << run.spill_runs
     << ",\"arena_hwm\":" << run.arena_hwm << "}}\n";
}

}  // namespace

void TelemetryRecorder::export_jsonl(std::ostream& os) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const RunTelemetry& run : runs_) {
    for (const IterTelemetry& t : run.iters) export_iter(os, run, t);
    export_run(os, run);
  }
}

bool TelemetryRecorder::export_to_file(const std::string& path) const {
  std::ofstream os(path, std::ios::binary);
  if (!os) return false;
  export_jsonl(os);
  return os.good();
}

}  // namespace imr
