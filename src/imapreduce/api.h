// iMapReduce programming interface (§3.5).
//
// Compared to classic MapReduce, the map function takes TWO values for a key:
// the iterated *state* value and the immutable *static* value; the framework
// performs the state/static join automatically (§3.2.2). The reduce function
// sees state data only, and additionally supplies the distance() used for
// threshold-based termination (§3.1.2).
//
// Mapper/Reducer instances are PERSISTENT: one instance per task, living
// across all iterations (the persistent-task model, §3.1.1). They may keep
// state between iterations — the K-means auxiliary convergence detector
// (§5.3) relies on this to remember the previous iteration's assignments.
#pragma once

#include <functional>
#include <memory>

#include "common/bytes.h"
#include "common/params.h"
#include "imapreduce/delta.h"
#include "mapreduce/api.h"  // Emitter

namespace imr {

// Emitter with an auxiliary side channel: records emitted via side() feed the
// auxiliary map-reduce phase (§5.3) when one is configured, and are dropped
// otherwise.
class IterEmitter : public Emitter {
 public:
  virtual void side(Bytes key, Bytes value) = 0;
};

class IterMapper {
 public:
  virtual ~IterMapper() = default;
  virtual void configure(const Params& /*params*/) {}

  // One-to-one mapping (§3.2): called per joined (state, static) record.
  // `stat` is empty when the key has no static record (or the phase has no
  // static data).
  virtual void map(const Bytes& key, const Bytes& state, const Bytes& stat,
                   IterEmitter& out) {
    (void)key;
    (void)state;
    (void)stat;
    (void)out;
    throw Error("one2one map() not implemented");
  }

  // Called once at the end of every iteration, after the last map()/
  // map_all() of the iteration; lets a persistent mapper emit per-iteration
  // aggregates (the K-means auxiliary convergence detector emits its
  // "nodes that stayed" count here, §5.3.1).
  virtual void flush(IterEmitter& /*out*/) {}

  // One-to-all mapping (§5.1): called per static record with the complete
  // state list gathered from all reduce tasks (e.g. all K-means centroids).
  virtual void map_all(const Bytes& key, const Bytes& stat,
                       const KVVec& states, IterEmitter& out) {
    (void)key;
    (void)stat;
    (void)states;
    (void)out;
    throw Error("one2all map_all() not implemented");
  }

  // Incremental recomputation hook (job sessions, DESIGN.md §8): called once
  // per static-delta op landing on this task's partition, BEFORE the op is
  // applied. `old_value` is the key's current static record (nullptr when
  // absent). Push <key, fallback-initial-state> records into `seeds` for
  // every key whose converged state must be re-propagated; the engine
  // resolves each seed against the converged state (the fallback value is
  // used only for keys that have none yet) and makes the seed set the resume
  // epoch's initial workset.
  //
  // Return true when the op REFINES the converged state — i.e. re-running
  // the frontier from the seeds alone, with merge() reconciling against the
  // converged values, reaches the same fixpoint a cold run over the mutated
  // input would (monotone additions: a new edge, a shorter weight). Return
  // false for anything non-monotone (removals, weight increases, or when
  // unsure): one false verdict anywhere makes the engine discard the
  // converged state and replay the full iteration from the initial state
  // inside the session — always correct, just not incremental. The default
  // declines every op.
  virtual bool perturbed_keys(const StaticDeltaOp& op, const Bytes* old_value,
                              KVVec& seeds) {
    (void)op;
    (void)old_value;
    (void)seeds;
    return false;
  }
};

class IterReducer {
 public:
  virtual ~IterReducer() = default;
  virtual void configure(const Params& /*params*/) {}

  virtual void reduce(const Bytes& key, const std::vector<Bytes>& values,
                      IterEmitter& out) = 0;

  // Distance between a key's previous and current state value; summed over
  // keys and merged across reduce tasks by the master (§3.5). `prev` is
  // empty on the first iteration.
  virtual double distance(const Bytes& key, const Bytes& prev,
                          const Bytes& cur) {
    (void)key;
    (void)prev;
    (void)cur;
    return 0.0;
  }

  // Workset mode only (IterJobConf::workset_mode): combine the key's
  // previous state value with `cur`, the value reduce() just produced from
  // this iteration's candidates. In workset mode the reduce sees only keys
  // that RECEIVED records this iteration — a key outside the frontier gets
  // no retained record from its own mapper, so `cur` is computed from the
  // incoming candidates alone and must be reconciled against `prev` here.
  //
  // The monotonic-update contract (DESIGN.md §7): merge must be such that
  // re-applying any already-applied candidate is a no-op — i.e. the state
  // only ever moves toward the fixpoint, and stale or duplicate candidate
  // deliveries (rollback replay restores the exact frontier, but a reducer
  // must not DEPEND on exactly-once application) cannot move it backwards.
  // Selective reducers (min/max) satisfy it with merge = min(prev, cur);
  // accumulative ones must carry enough state to make the update idempotent
  // (see PageRank::imapreduce_delta). `prev` is empty when the key has no
  // state yet; the default keeps `cur`, which is correct only for reducers
  // whose reduce() output already dominates the previous value.
  virtual Bytes merge(const Bytes& key, const Bytes& prev, const Bytes& cur) {
    (void)key;
    (void)prev;
    return cur;
  }
};

using IterMapperFactory = std::function<std::unique_ptr<IterMapper>()>;
using IterReducerFactory = std::function<std::unique_ptr<IterReducer>()>;

// Emitting this key from an auxiliary reducer signals the master to
// terminate the main iterative job (§5.3.2's "termination signals").
inline const char* kTerminateSignalKey = "__imr_terminate__";

// Lambda adapters for simple user code. The optional perturb_fn implements
// IterMapper::perturbed_keys for session-capable mappers.
using PerturbFn =
    std::function<bool(const StaticDeltaOp&, const Bytes*, KVVec&)>;
IterMapperFactory make_iter_mapper(
    std::function<void(const Bytes&, const Bytes&, const Bytes&, IterEmitter&)>
        fn,
    PerturbFn perturb_fn = nullptr);
IterMapperFactory make_iter_mapper_all(
    std::function<void(const Bytes&, const Bytes&, const KVVec&, IterEmitter&)>
        fn);
IterReducerFactory make_iter_reducer(
    std::function<void(const Bytes&, const std::vector<Bytes>&, IterEmitter&)>
        reduce_fn,
    std::function<double(const Bytes&, const Bytes&, const Bytes&)> distance_fn =
        nullptr,
    std::function<Bytes(const Bytes&, const Bytes&, const Bytes&)> merge_fn =
        nullptr);

}  // namespace imr
