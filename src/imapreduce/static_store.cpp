#include "imapreduce/static_store.h"

#include <utility>

#include "common/hash.h"

namespace imr {

void StaticStore::build(KVVec sorted) {
  records_ = std::move(sorted);
  slots_.clear();
  if (records_.empty()) {
    mask_ = 0;
    return;
  }
  const std::size_t capacity = next_pow2(2 * records_.size());
  mask_ = capacity - 1;
  slots_.assign(capacity, 0);
  for (std::size_t i = 0; i < records_.size(); ++i) {
    // Sorted input puts duplicate keys adjacent; keeping only the first
    // preserves the lower_bound join's first-match semantics.
    if (i > 0 && records_[i].key == records_[i - 1].key) continue;
    std::size_t s = static_cast<std::size_t>(fnv1a(records_[i].key)) & mask_;
    while (slots_[s] != 0) s = (s + 1) & mask_;
    slots_[s] = static_cast<uint32_t>(i) + 1;
  }
}

const Bytes* StaticStore::find(BytesView key) const {
  if (records_.empty()) return nullptr;
  std::size_t s = static_cast<std::size_t>(fnv1a(key)) & mask_;
  while (true) {
    uint32_t slot = slots_[s];
    if (slot == 0) return nullptr;
    const KV& kv = records_[slot - 1];
    if (kv.key == key) return &kv.value;
    s = (s + 1) & mask_;
  }
}

}  // namespace imr
