#include "imapreduce/static_store.h"

#include <algorithm>
#include <utility>

#include "common/error.h"
#include "common/hash.h"

namespace imr {

void StaticStore::assert_no_live_probes() const {
#ifndef NDEBUG
  IMR_CHECK_MSG(live_probes_.load(std::memory_order_relaxed) == 0,
                "StaticStore mutated while a join holds live find() probes");
#endif
}

void StaticStore::build(KVVec sorted) {
  assert_no_live_probes();
  records_ = std::move(sorted);
  reindex();
}

void StaticStore::reindex() {
  ++epoch_;
  slots_.clear();
  if (records_.empty()) {
    mask_ = 0;
    return;
  }
  const std::size_t capacity = next_pow2(2 * records_.size());
  mask_ = capacity - 1;
  slots_.assign(capacity, 0);
  for (std::size_t i = 0; i < records_.size(); ++i) {
    // Sorted input puts duplicate keys adjacent; keeping only the first
    // preserves the lower_bound join's first-match semantics.
    if (i > 0 && records_[i].key == records_[i - 1].key) continue;
    std::size_t s = static_cast<std::size_t>(fnv1a(records_[i].key)) & mask_;
    while (slots_[s] != 0) s = (s + 1) & mask_;
    slots_[s] = static_cast<uint32_t>(i) + 1;
  }
}

void StaticStore::apply_delta(const std::vector<StaticDeltaOp>& ops) {
  assert_no_live_probes();
  if (ops.empty()) {
    // Contract says every apply bumps the epoch — an "empty" mutation still
    // invalidates probes, so callers cannot rely on batch contents to decide
    // whether cached pointers survived.
    ++epoch_;
    return;
  }

  // Collapse to one final op per key, batch order deciding ties (last op
  // wins). A stable sort on key keeps the batch order within a key run, so
  // the run's last element is the winner.
  std::vector<const StaticDeltaOp*> final_ops;
  final_ops.reserve(ops.size());
  for (const StaticDeltaOp& op : ops) final_ops.push_back(&op);
  std::stable_sort(final_ops.begin(), final_ops.end(),
                   [](const StaticDeltaOp* a, const StaticDeltaOp* b) {
                     return a->key < b->key;
                   });
  std::size_t w = 0;
  for (std::size_t r = 0; r < final_ops.size(); ++r) {
    if (r + 1 < final_ops.size() && final_ops[r + 1]->key == final_ops[r]->key)
      continue;
    final_ops[w++] = final_ops[r];
  }
  final_ops.resize(w);

  // One two-pointer merge of the sorted records with the sorted final ops:
  // an upsert key's old records (however many duplicates) are replaced by
  // the single new record, an erase key's are dropped, everything else is
  // moved through untouched.
  KVVec merged;
  merged.reserve(records_.size() + final_ops.size());
  std::size_t ri = 0;
  for (const StaticDeltaOp* op : final_ops) {
    while (ri < records_.size() && records_[ri].key < op->key) {
      merged.push_back(std::move(records_[ri++]));
    }
    while (ri < records_.size() && records_[ri].key == op->key) ++ri;
    if (op->kind == DeltaOpKind::kUpsert) {
      merged.emplace_back(op->key, op->value);
    }
  }
  while (ri < records_.size()) merged.push_back(std::move(records_[ri++]));

  records_ = std::move(merged);
  reindex();
}

const Bytes* StaticStore::find(BytesView key) const {
  if (records_.empty()) return nullptr;
  std::size_t s = static_cast<std::size_t>(fnv1a(key)) & mask_;
  while (true) {
    uint32_t slot = slots_[s];
    if (slot == 0) return nullptr;
    const KV& kv = records_[slot - 1];
    if (kv.key == key) return &kv.value;
    s = (s + 1) & mask_;
  }
}

}  // namespace imr
