// Typed adapters over the byte-level API.
//
// The engines move byte records (codec.h); user algorithms usually want
// typed keys and values. TypeCodec<T> supplies the (order-preserving for
// keys) encoding for the supported types, and the typed_* factories wrap
// typed lambdas into IterMapper/IterReducer implementations:
//
//   auto mapper = typed_iter_mapper<uint32_t, double, std::vector<WEdge>>(
//       [](uint32_t u, double dist, const std::vector<WEdge>& edges,
//          TypedEmitter<uint32_t, double>& out) {
//         for (const WEdge& e : edges) out.emit(e.dst, dist + e.weight);
//         out.emit(u, dist);
//       });
#pragma once

#include <string>
#include <vector>

#include "common/codec.h"
#include "imapreduce/api.h"

namespace imr {

// ---------------------------------------------------------------------------
// TypeCodec: encode/decode for the supported key/value types.
// ---------------------------------------------------------------------------

template <typename T>
struct TypeCodec;  // unspecialized: unsupported type

template <>
struct TypeCodec<uint32_t> {
  static Bytes encode(uint32_t v) { return u32_key(v); }
  static uint32_t decode(BytesView b) { return as_u32(b); }
};

template <>
struct TypeCodec<uint64_t> {
  static Bytes encode(uint64_t v) { return u64_key(v); }
  static uint64_t decode(BytesView b) { return as_u64(b); }
};

template <>
struct TypeCodec<double> {
  static Bytes encode(double v) { return f64_value(v); }
  static double decode(BytesView b) { return as_f64(b); }
};

template <>
struct TypeCodec<std::string> {
  static Bytes encode(const std::string& v) { return v; }
  static std::string decode(BytesView b) { return std::string(b); }
};

template <>
struct TypeCodec<std::vector<double>> {
  static Bytes encode(const std::vector<double>& v) {
    Bytes b;
    encode_f64_vec(v, b);
    return b;
  }
  static std::vector<double> decode(BytesView b) {
    std::size_t pos = 0;
    std::vector<double> v = decode_f64_vec(b, pos);
    if (pos != b.size()) throw FormatError("trailing bytes after f64 vector");
    return v;
  }
};

template <>
struct TypeCodec<std::vector<WEdge>> {
  static Bytes encode(const std::vector<WEdge>& v) {
    Bytes b;
    encode_wedges(v, b);
    return b;
  }
  static std::vector<WEdge> decode(BytesView b) { return decode_wedges(b); }
};

template <>
struct TypeCodec<std::vector<uint32_t>> {
  static Bytes encode(const std::vector<uint32_t>& v) {
    Bytes b;
    encode_adj(v, b);
    return b;
  }
  static std::vector<uint32_t> decode(BytesView b) { return decode_adj(b); }
};

// ---------------------------------------------------------------------------
// Typed emitter view.
// ---------------------------------------------------------------------------

template <typename OutK, typename OutV>
class TypedEmitter {
 public:
  explicit TypedEmitter(IterEmitter& raw) : raw_(raw) {}

  void emit(const OutK& key, const OutV& value) {
    raw_.emit(TypeCodec<OutK>::encode(key), TypeCodec<OutV>::encode(value));
  }
  template <typename SK, typename SV>
  void side(const SK& key, const SV& value) {
    raw_.side(TypeCodec<SK>::encode(key), TypeCodec<SV>::encode(value));
  }

 private:
  IterEmitter& raw_;
};

// ---------------------------------------------------------------------------
// Typed factories.
// ---------------------------------------------------------------------------

// One2one mapper over (key, state, static). The static value is passed by
// pointer: nullptr when the key has no static record.
template <typename K, typename StateV, typename StaticV, typename OutK,
          typename OutV>
IterMapperFactory typed_iter_mapper(
    std::function<void(const K&, const StateV&, const StaticV*,
                       TypedEmitter<OutK, OutV>&)>
        fn) {
  return make_iter_mapper([fn = std::move(fn)](const Bytes& key,
                                               const Bytes& state,
                                               const Bytes& stat,
                                               IterEmitter& out) {
    TypedEmitter<OutK, OutV> typed(out);
    if (stat.empty()) {
      fn(TypeCodec<K>::decode(key), TypeCodec<StateV>::decode(state), nullptr,
         typed);
    } else {
      StaticV sv = TypeCodec<StaticV>::decode(stat);
      fn(TypeCodec<K>::decode(key), TypeCodec<StateV>::decode(state), &sv,
         typed);
    }
  });
}

// Typed reducer with a typed distance function.
template <typename K, typename V, typename OutK, typename OutV>
IterReducerFactory typed_iter_reducer(
    std::function<void(const K&, const std::vector<V>&,
                       TypedEmitter<OutK, OutV>&)>
        reduce_fn,
    std::function<double(const K&, const V*, const V&)> distance_fn = nullptr) {
  auto raw_reduce = [reduce_fn = std::move(reduce_fn)](
                        const Bytes& key, const std::vector<Bytes>& values,
                        IterEmitter& out) {
    std::vector<V> typed_values;
    typed_values.reserve(values.size());
    for (const Bytes& v : values) typed_values.push_back(TypeCodec<V>::decode(v));
    TypedEmitter<OutK, OutV> typed(out);
    reduce_fn(TypeCodec<K>::decode(key), typed_values, typed);
  };
  if (!distance_fn) return make_iter_reducer(std::move(raw_reduce));
  auto raw_distance = [distance_fn = std::move(distance_fn)](
                          const Bytes& key, const Bytes& prev,
                          const Bytes& cur) {
    if (prev.empty()) {
      return distance_fn(TypeCodec<K>::decode(key), nullptr,
                         TypeCodec<V>::decode(cur));
    }
    V pv = TypeCodec<V>::decode(prev);
    return distance_fn(TypeCodec<K>::decode(key), &pv,
                       TypeCodec<V>::decode(cur));
  };
  return make_iter_reducer(std::move(raw_reduce), std::move(raw_distance));
}

}  // namespace imr
