// Iterative job configuration (§3.5's JobConf parameters, plus the §5
// extensions: one-to-all mapping, multiple map-reduce phases via successor
// chaining, and auxiliary phases).
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/error.h"
#include "common/params.h"
#include "graph/partition.h"
#include "imapreduce/api.h"

namespace imr {

// How the previous phase's reduce output feeds this phase's map (§5.1):
// one2one pairs reduce i with map i over the same key subset; one2all
// broadcasts every reduce task's output to every map task.
enum class Mapping { kOne2One, kOne2All };

// One map-reduce phase of an iteration. A single-phase job is the common
// graph case (§3); chaining phases reproduces job.addSuccessor (§5.2).
struct PhaseConf {
  IterMapperFactory mapper;
  IterReducerFactory reducer;
  IterReducerFactory combiner;  // optional map-side combiner
  // DFS path of this phase's static data; empty = no join at this phase
  // (e.g. matrix power joins the static multiplicand only at Map 2).
  std::string static_path;
  // How this phase's map receives its state input.
  Mapping mapping = Mapping::kOne2One;
};

// Auxiliary map-reduce phase (§5.3): runs concurrently with the main
// iteration, fed either by side-output records emitted by the main phase-0
// mapper or by a copy of the main last-phase reduce output. Its reducer can
// emit kTerminateSignalKey to stop the main job.
struct AuxConf {
  enum class Source { kMapSideOutput, kReduceOutput };
  IterMapperFactory mapper;
  IterReducerFactory reducer;
  Source source = Source::kMapSideOutput;
  int num_reduce_tasks = 1;
};

struct IterJobConf {
  std::string name = "iterjob";
  // mapred.iterjob.statepath — initial state data.
  std::string state_path;
  // Final state is dumped here as part files when the job terminates.
  std::string output_path;
  std::vector<PhaseConf> phases;

  // Persistent task pairs per phase. 0 = one pair per worker. The engine
  // checks that every phase's pairs fit in the cluster's task slots —
  // persistent tasks must all start up front (§3.1.1).
  int num_tasks = 0;

  // Termination (§3.1.2): stop at max_iterations, or earlier when the merged
  // distance drops below distance_threshold (>= 0 enables the check).
  int max_iterations = 10;           // mapred.iterjob.maxiter
  double distance_threshold = -1.0;  // mapred.iterjob.disthresh

  // Workset (frontier) iteration, the bulk-vs-incremental split of *Spinning
  // Fast Iterative Data Flows* (DESIGN.md §7). When enabled, each reduce
  // task tracks which state records its iteration actually CHANGED and ships
  // only those to its paired map — the next iteration's map phase visits the
  // active frontier instead of every key, joining per-key against the static
  // index. A third termination path joins the §3.1.2 protocol: the master
  // merges per-task workset sizes and terminates when the global workset
  // drains to zero. Requires a single-phase one2one job whose reducer obeys
  // the monotonic-update contract (IterReducer::merge); bulk mode stays
  // byte-for-byte available in the same binary for A/B verification.
  bool workset_mode = false;

  // §3.3: asynchronous map execution. When false (mapred.iterjob.sync), the
  // phase-0 maps of iteration k+1 wait for the master's decision on
  // iteration k — the behaviour labeled "iMapReduce (sync.)" in Figs. 4–7.
  // Forced off when phase 0 uses one2all mapping.
  bool async_maps = true;

  // §3.3: the reduce->map send buffer; a batch is shipped every
  // `buffer_records` records to amortize per-message overhead.
  int buffer_records = 4096;

  // §3.4.1: checkpoint the state every N iterations (0 = off). Required for
  // fault recovery and load balancing.
  int checkpoint_every = 0;

  // §3.4.2: report-driven task-pair migration.
  bool load_balancing = false;
  double migration_threshold = 0.4;  // relative deviation that triggers it
  // Noise gate for the deviation test: the slowest worker must also exceed
  // the trimmed average by this much absolute virtual time. Iteration spans
  // carry measured thread-CPU time, so on a loaded machine a homogeneous
  // cluster can show large *relative* deviation on microsecond-scale
  // iterations; a migration (which costs a rollback) is only worth it when
  // the gap is material.
  double migration_min_gap_ms = 25.0;

  std::optional<AuxConf> aux;

  // Partition-aware placement (DESIGN.md §9). null = the built-in flat hash
  // (byte-for-byte the pre-partitioner behavior). When set, every component
  // that routes a key — the map-side shuffle, the static/state partition
  // loaders, session update routing — consults this instance, and the master
  // co-locates partitions by its affinity matrix (see plan_placement). The
  // partitioner's partition count must equal the job's task count.
  std::shared_ptr<const Partitioner> partitioner;

  // Aggregated cross-worker exchange (DESIGN.md §9): shuffle output destined
  // for a REMOTE worker is held until the iteration barrier and flushed as
  // one coalesced batch per destination worker (TrafficCategory::kShuffleAgg)
  // instead of one message per reduce partition, and the frame doubles as
  // the sending map's iteration-EOS for every reduce on that worker — the
  // per-(map, reduce) EOS fan-out never crosses the wire. Local partitions
  // stream exactly as before. Requires deterministic_reduce: the coalesced
  // batches arrive at the barrier rather than interleaved, and only the
  // sorted-reduce contract makes arrival order invisible to results.
  bool aggregated_shuffle = false;

  // Memory governance (DESIGN.md §10): per-task byte budget for held record
  // buffers and arena scratch. 0 = unlimited — byte-for-byte today's
  // behavior. When set, a task whose buffers overflow the budget sorts them
  // and spills a run to MiniDfs (TrafficCategory::kSpill), and the reduce
  // streams a k-way merge over its runs instead of materializing everything;
  // output stays byte-identical to the unlimited run. Requires
  // deterministic_reduce: the spill path sorts runs with the value-sorting
  // comparator, and only that contract makes spill boundaries invisible.
  int64_t max_task_memory_bytes = 0;

  Params params;
  bool deterministic_reduce = true;

  // Throws ConfigError when the combination is invalid.
  void validate() const {
    if (phases.empty()) throw ConfigError("iterative job needs >= 1 phase");
    for (const auto& p : phases) {
      if (!p.mapper || !p.reducer) {
        throw ConfigError("phase missing mapper or reducer");
      }
    }
    if (state_path.empty()) throw ConfigError("statepath not set");
    if (output_path.empty()) throw ConfigError("output path not set");
    if (max_iterations < 1) throw ConfigError("maxiter must be >= 1");
    bool single_one2one =
        phases.size() == 1 && phases[0].mapping == Mapping::kOne2One;
    if ((checkpoint_every > 0 || load_balancing) && !single_one2one) {
      throw ConfigError(
          "checkpointing/load balancing support single-phase one2one jobs");
    }
    if (load_balancing && checkpoint_every <= 0) {
      throw ConfigError(
          "load balancing migrates from checkpoints; set checkpoint_every");
    }
    if (workset_mode && !single_one2one) {
      throw ConfigError("workset_mode supports single-phase one2one jobs");
    }
    if (workset_mode && aux) {
      throw ConfigError(
          "workset_mode is incompatible with auxiliary phases: the frontier "
          "map emits no per-iteration side-output stream to feed them");
    }
    if (aux && (!aux->mapper || !aux->reducer)) {
      throw ConfigError("auxiliary phase missing mapper or reducer");
    }
    if (buffer_records < 1) throw ConfigError("buffer_records must be >= 1");
    if (aggregated_shuffle && !deterministic_reduce) {
      throw ConfigError(
          "aggregated_shuffle needs deterministic_reduce: coalesced batches "
          "change arrival order, and only the sorted reduce hides that");
    }
    if (partitioner && partitioner->num_partitions() == 0) {
      throw ConfigError("partitioner has zero partitions");
    }
    if (max_task_memory_bytes < 0) {
      throw ConfigError("max_task_memory_bytes must be >= 0 (0 = unlimited)");
    }
    if (max_task_memory_bytes > 0 && !deterministic_reduce) {
      throw ConfigError(
          "max_task_memory_bytes needs deterministic_reduce: spilled runs "
          "are value-sorted, and only the sorted reduce hides the spill "
          "boundaries");
    }
  }
};

}  // namespace imr
