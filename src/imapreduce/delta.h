// Static-data deltas (job sessions, DESIGN.md §8).
//
// A converged workset job can stay resident as a *session*: the master keeps
// the persistent tasks and their converged state alive and accepts batches of
// StaticDeltaOp — records added, removed, or re-valued in the loop-invariant
// static data (§3.2). Each op is routed to the map task owning its key
// (partition_of, the same partitioner the shuffle uses), applied in place to
// that task's StaticStore, and expanded into a seed workset of perturbed keys
// so the engine re-runs frontier iterations only where the input actually
// changed.
//
// Ops travel on the wire as KV records (key = op key, value = 1 kind byte +
// op value) inside a control message's data payload, so delta traffic is
// byte-accounted like everything else.
#pragma once

#include <cstdint>
#include <vector>

#include "common/bytes.h"

namespace imr {

enum class DeltaOpKind : uint8_t {
  kUpsert = 0,  // replace ALL records of `key` with the single new value
                // (or insert it if the key had none)
  kErase = 1,   // remove every record of `key`
};

struct StaticDeltaOp {
  DeltaOpKind kind = DeltaOpKind::kUpsert;
  Bytes key;
  Bytes value;  // empty for kErase

  StaticDeltaOp() = default;
  StaticDeltaOp(DeltaOpKind k, Bytes key_, Bytes value_ = {})
      : kind(k), key(std::move(key_)), value(std::move(value_)) {}

  friend bool operator==(const StaticDeltaOp&, const StaticDeltaOp&) = default;
};

// One update batch handed to JobSession::apply_update.
struct StaticDelta {
  std::vector<StaticDeltaOp> ops;

  bool empty() const { return ops.empty(); }
  std::size_t size() const { return ops.size(); }

  void upsert(Bytes key, Bytes value) {
    ops.emplace_back(DeltaOpKind::kUpsert, std::move(key), std::move(value));
  }
  void erase(Bytes key) {
    ops.emplace_back(DeltaOpKind::kErase, std::move(key));
  }
};

// Wire form: a delta op as one KV record (the value's first byte is the op
// kind). Round-trips exactly; the 1-byte tag keeps wire_size() honest.
KV delta_op_to_kv(const StaticDeltaOp& op);
StaticDeltaOp delta_op_from_kv(const KV& kv);

}  // namespace imr
