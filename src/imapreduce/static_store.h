// StaticStore — a map task's one-time index over its static data partition.
//
// The static data (§3.2) is loop-invariant: loaded once when the persistent
// task starts, then joined against every state record of every iteration
// (§3.2.2). Paying a per-record lower_bound with O(log n) byte-string
// compares for that join re-derives the same ordering information each
// round, so the store builds an open-addressed hash index (key -> record
// slot) once at load and answers each probe with a single fnv1a hash and an
// expected O(1) scan. The sorted record vector is kept as-is for the
// one2all map_all() pass, which walks the static partition in key order.
//
// Duplicate static keys resolve to the FIRST record in sorted order —
// exactly what the lower_bound join returned.
#pragma once

#include <cstdint>
#include <vector>

#include "common/bytes.h"

namespace imr {

class StaticStore {
 public:
  StaticStore() = default;
  StaticStore(const StaticStore&) = delete;
  StaticStore& operator=(const StaticStore&) = delete;

  // Takes ownership of the partition's records, which MUST already be
  // key-sorted (sort_records(records, /*sort_values=*/false)), and builds
  // the hash index. May be called again to replace the contents.
  void build(KVVec sorted);

  // O(1) join probe: the value of the first sorted record with this key, or
  // nullptr when the key has no static record. The pointer stays valid until
  // the next build().
  const Bytes* find(BytesView key) const;

  // The sorted partition, for in-order scans (map_all).
  const KVVec& records() const { return records_; }
  bool empty() const { return records_.empty(); }

 private:
  KVVec records_;
  // Open-addressed table: slot -> record index + 1, 0 = empty. Power-of-two
  // capacity at load factor <= 0.5.
  std::vector<uint32_t> slots_;
  std::size_t mask_ = 0;
};

}  // namespace imr
