// StaticStore — a map task's one-time index over its static data partition.
//
// The static data (§3.2) is loop-invariant: loaded once when the persistent
// task starts, then joined against every state record of every iteration
// (§3.2.2). Paying a per-record lower_bound with O(log n) byte-string
// compares for that join re-derives the same ordering information each
// round, so the store builds an open-addressed hash index (key -> record
// slot) once at load and answers each probe with a single fnv1a hash and an
// expected O(1) scan. The sorted record vector is kept as-is for the
// one2all map_all() pass, which walks the static partition in key order.
//
// Duplicate static keys resolve to the FIRST record in sorted order —
// exactly what the lower_bound join returned.
//
// Job sessions (DESIGN.md §8) make the store *mutable between epochs*:
// apply_delta() merges a batch of StaticDeltaOp into the sorted records and
// rebuilds the index incrementally with one O(n + m) pass. Every mutation
// (build or apply_delta) bumps the store epoch and invalidates all pointers
// previously returned by find(); in debug builds a live-probe counter
// asserts that no join still holds a probe across a mutation.
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "common/bytes.h"
#include "imapreduce/delta.h"

namespace imr {

class StaticStore {
 public:
  StaticStore() = default;
  StaticStore(const StaticStore&) = delete;
  StaticStore& operator=(const StaticStore&) = delete;

  // Takes ownership of the partition's records, which MUST already be
  // key-sorted (sort_records(records, /*sort_values=*/false)), and builds
  // the hash index. May be called again to replace the contents. Bumps the
  // store epoch: pointers from earlier find() calls are invalid.
  void build(KVVec sorted);

  // Merges a delta batch into the sorted records and reindexes: one
  // O(n + m log m) pass (sort the batch, then a single two-pointer merge).
  // Ops are applied in batch order, so a later op on the same key wins; an
  // upsert replaces ALL records of its key with exactly one (collapsing any
  // duplicates the build had kept), an erase removes them all — in both
  // cases find() semantics afterwards match a fresh build of the mutated
  // partition byte for byte. Bumps the store epoch even for an empty batch.
  void apply_delta(const std::vector<StaticDeltaOp>& ops);

  // O(1) join probe: the value of the first sorted record with this key, or
  // nullptr when the key has no static record. The pointer stays valid until
  // the next build() or apply_delta().
  const Bytes* find(BytesView key) const;

  // The sorted partition, for in-order scans (map_all).
  const KVVec& records() const { return records_; }
  bool empty() const { return records_.empty(); }

  // Mutation counter: bumped by build() and apply_delta(). A caller that
  // cached a find() result can compare epochs to detect invalidation.
  uint64_t epoch() const { return epoch_; }

  // Debug guard for the find() invalidation rule: a join loop opens a
  // ProbeScope for as long as it dereferences find() results, and any
  // mutation while a scope is open trips an assertion (compiled in for
  // !NDEBUG builds — the ASan/TSan CI legs — and free in Release).
  class ProbeScope {
   public:
    explicit ProbeScope(const StaticStore& store) : store_(store) {
      store_.live_probes_.fetch_add(1, std::memory_order_relaxed);
    }
    ~ProbeScope() {
      store_.live_probes_.fetch_sub(1, std::memory_order_relaxed);
    }
    ProbeScope(const ProbeScope&) = delete;
    ProbeScope& operator=(const ProbeScope&) = delete;

   private:
    const StaticStore& store_;
  };

 private:
  void assert_no_live_probes() const;
  void reindex();

  KVVec records_;
  // Open-addressed table: slot -> record index + 1, 0 = empty. Power-of-two
  // capacity at load factor <= 0.5.
  std::vector<uint32_t> slots_;
  std::size_t mask_ = 0;
  uint64_t epoch_ = 0;
  mutable std::atomic<int> live_probes_{0};
};

}  // namespace imr
