#include "imapreduce/control.h"

#include "common/codec.h"
#include "common/error.h"

namespace imr {

Bytes CtlMsg::encode() const {
  Bytes b;
  b.push_back(static_cast<char>(type));
  encode_u32(static_cast<uint32_t>(task), b);
  encode_u32(static_cast<uint32_t>(iteration), b);
  encode_u32(static_cast<uint32_t>(generation), b);
  encode_u32(static_cast<uint32_t>(worker), b);
  encode_f64(distance, b);
  encode_i64(duration_ns, b);
  encode_i64(workset_size, b);
  encode_i64(state_records, b);
  encode_u32(static_cast<uint32_t>(session), b);
  encode_i64(state_bytes, b);
  return b;
}

CtlMsg CtlMsg::decode(const Bytes& b) {
  if (b.empty()) throw FormatError("empty control message");
  CtlMsg m;
  m.type = static_cast<CtlType>(b[0]);
  std::size_t pos = 1;
  m.task = static_cast<int32_t>(decode_u32(b, pos));
  m.iteration = static_cast<int32_t>(decode_u32(b, pos));
  m.generation = static_cast<int32_t>(decode_u32(b, pos));
  m.worker = static_cast<int32_t>(decode_u32(b, pos));
  m.distance = decode_f64(b, pos);
  m.duration_ns = decode_i64(b, pos);
  m.workset_size = decode_i64(b, pos);
  m.state_records = decode_i64(b, pos);
  m.session = static_cast<int32_t>(decode_u32(b, pos));
  m.state_bytes = decode_i64(b, pos);
  return m;
}

}  // namespace imr
