#include "imapreduce/delta.h"

#include "common/error.h"

namespace imr {

KV delta_op_to_kv(const StaticDeltaOp& op) {
  Bytes v;
  v.reserve(op.value.size() + 1);
  v.push_back(static_cast<char>(op.kind));
  v.append(op.value);
  return KV(op.key, std::move(v));
}

StaticDeltaOp delta_op_from_kv(const KV& kv) {
  if (kv.value.empty()) throw FormatError("delta op without kind byte");
  StaticDeltaOp op;
  op.kind = static_cast<DeltaOpKind>(kv.value[0]);
  if (op.kind != DeltaOpKind::kUpsert && op.kind != DeltaOpKind::kErase) {
    throw FormatError("unknown delta op kind");
  }
  op.key = kv.key;
  op.value = kv.value.substr(1);
  return op;
}

}  // namespace imr
