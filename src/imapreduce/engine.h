// IterativeEngine — the iMapReduce runtime (§3).
//
// One run executes an IterJobConf on the cluster with persistent map/reduce
// task pairs:
//
//   - ONE-TIME INITIALIZATION (§3.1.1): the job pays job_init once; every
//     persistent task pays task_init once and loads its static partition and
//     (phase-0 maps) initial state partition from DFS once. The engine
//     verifies all tasks fit into the cluster's slots up front.
//   - STATE/STATIC SEPARATION (§3.2): map tasks keep the static data sorted
//     in memory and join arriving state records against it; only state data
//     is shuffled, and the reduce->map hand-off uses a persistent channel
//     that is local because the scheduler co-locates each pair.
//   - ASYNC MAP EXECUTION (§3.3): a phase-0 map starts iteration k+1 the
//     moment its own reducer's buffered output arrives; with
//     async_maps=false it waits for the master's go — the "(sync.)" curves.
//   - TERMINATION (§3.1.2): reduce tasks report local distances; the master
//     merges them and stops at max_iterations or below distance_threshold,
//     or when an auxiliary phase (§5.3) signals.
//   - FAULT TOLERANCE (§3.4.1): reduce tasks checkpoint state every N
//     iterations; on worker failure the master respawns the lost pairs on
//     live workers and rolls everyone back to the last checkpoint.
//   - LOAD BALANCING (§3.4.2): per-iteration completion reports drive
//     migration of a pair from the slowest to the fastest worker.
#pragma once

#include "cluster/cluster.h"
#include "imapreduce/conf.h"
#include "metrics/metrics.h"

namespace imr {

class IterativeEngine {
 public:
  explicit IterativeEngine(Cluster& cluster) : cluster_(cluster) {}

  // Runs the iterative job to termination and returns the per-iteration
  // virtual-time report. Final state is written to conf.output_path/part-<i>.
  RunReport run(const IterJobConf& conf);

 private:
  Cluster& cluster_;
};

}  // namespace imr
