// IterativeEngine — the iMapReduce runtime (§3).
//
// One run executes an IterJobConf on the cluster with persistent map/reduce
// task pairs:
//
//   - ONE-TIME INITIALIZATION (§3.1.1): the job pays job_init once; every
//     persistent task pays task_init once and loads its static partition and
//     (phase-0 maps) initial state partition from DFS once. The engine
//     verifies all tasks fit into the cluster's slots up front.
//   - STATE/STATIC SEPARATION (§3.2): map tasks keep the static data sorted
//     in memory and join arriving state records against it; only state data
//     is shuffled, and the reduce->map hand-off uses a persistent channel
//     that is local because the scheduler co-locates each pair.
//   - ASYNC MAP EXECUTION (§3.3): a phase-0 map starts iteration k+1 the
//     moment its own reducer's buffered output arrives; with
//     async_maps=false it waits for the master's go — the "(sync.)" curves.
//   - TERMINATION (§3.1.2): reduce tasks report local distances; the master
//     merges them and stops at max_iterations or below distance_threshold,
//     or when an auxiliary phase (§5.3) signals.
//   - FAULT TOLERANCE (§3.4.1): reduce tasks checkpoint state every N
//     iterations; on worker failure the master respawns the lost pairs on
//     live workers and rolls everyone back to the last checkpoint.
//   - LOAD BALANCING (§3.4.2): per-iteration completion reports drive
//     migration of a pair from the slowest to the fastest worker.
//   - JOB SESSIONS (DESIGN.md §8): open_session() runs a workset job to
//     convergence and then keeps the persistent tasks, their in-memory
//     static indexes, and the converged state RESIDENT. apply_update()
//     feeds a batch of static-delta ops to the owning map tasks and
//     re-iterates only from the perturbed keys (or, for non-monotone
//     deltas, replays the full iteration in place) until the frontier
//     drains again — the reconverged state is byte-identical to a cold run
//     over the mutated input. close() dumps the final state and tears the
//     job down.
#pragma once

#include <memory>

#include "cluster/cluster.h"
#include "imapreduce/conf.h"
#include "imapreduce/delta.h"
#include "metrics/metrics.h"

namespace imr {

namespace detail {
class JobRun;
}  // namespace detail

// A resident converged job accepting static-delta update batches. Obtained
// from IterativeEngine::open_session; the underlying persistent tasks stay
// parked (alive, state in memory) between calls. Move-only. close() must be
// called to dump the final state; the destructor closes as a safety net,
// swallowing errors.
class JobSession {
 public:
  JobSession(JobSession&&) noexcept;
  JobSession& operator=(JobSession&&) noexcept;
  ~JobSession();

  // Report of the most recent epoch: the initial convergence after
  // open_session, then each apply_update's reconvergence.
  const RunReport& last_report() const;

  // Applies one update batch: routes ops to the owning map tasks, mutates
  // their static stores in place, seeds the resume frontier from the
  // algorithms' perturbed_keys hooks, and re-runs workset iterations until
  // the frontier drains. Returns the reconvergence epoch's report (wall time
  // covers resume -> quiesce only).
  RunReport apply_update(const StaticDelta& delta);

  // Terminates the resident tasks; the final state is dumped to
  // conf.output_path/part-<i> exactly as a plain run() would. Returns the
  // cumulative report of the whole session. Idempotent.
  RunReport close();

  bool closed() const;

 private:
  friend class IterativeEngine;
  explicit JobSession(std::unique_ptr<detail::JobRun> run);
  std::unique_ptr<detail::JobRun> run_;
};

class IterativeEngine {
 public:
  explicit IterativeEngine(Cluster& cluster) : cluster_(cluster) {}

  // Runs the iterative job to termination and returns the per-iteration
  // virtual-time report. Final state is written to conf.output_path/part-<i>.
  RunReport run(const IterJobConf& conf);

  // Runs the job to its first convergence and returns a session holding the
  // converged tasks resident (conf must be a workset_mode job — incremental
  // reconvergence is defined over frontiers). last_report() on the returned
  // session is the initial run's report.
  JobSession open_session(const IterJobConf& conf);

 private:
  Cluster& cluster_;
};

}  // namespace imr
