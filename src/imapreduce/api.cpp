#include "imapreduce/api.h"

namespace imr {

namespace {

class LambdaIterMapper : public IterMapper {
 public:
  using MapFn =
      std::function<void(const Bytes&, const Bytes&, const Bytes&, IterEmitter&)>;
  using MapAllFn =
      std::function<void(const Bytes&, const Bytes&, const KVVec&, IterEmitter&)>;

  explicit LambdaIterMapper(MapFn fn, PerturbFn perturb_fn = nullptr)
      : map_fn_(std::move(fn)), perturb_fn_(std::move(perturb_fn)) {}
  explicit LambdaIterMapper(MapAllFn fn) : map_all_fn_(std::move(fn)) {}

  void map(const Bytes& key, const Bytes& state, const Bytes& stat,
           IterEmitter& out) override {
    if (!map_fn_) throw Error("one2one map() not implemented");
    map_fn_(key, state, stat, out);
  }

  void map_all(const Bytes& key, const Bytes& stat, const KVVec& states,
               IterEmitter& out) override {
    if (!map_all_fn_) throw Error("one2all map_all() not implemented");
    map_all_fn_(key, stat, states, out);
  }

  bool perturbed_keys(const StaticDeltaOp& op, const Bytes* old_value,
                      KVVec& seeds) override {
    if (!perturb_fn_) return false;  // same conservative default as the base
    return perturb_fn_(op, old_value, seeds);
  }

 private:
  MapFn map_fn_;
  MapAllFn map_all_fn_;
  PerturbFn perturb_fn_;
};

class LambdaIterReducer : public IterReducer {
 public:
  using ReduceFn =
      std::function<void(const Bytes&, const std::vector<Bytes>&, IterEmitter&)>;
  using DistFn = std::function<double(const Bytes&, const Bytes&, const Bytes&)>;
  using MergeFn = std::function<Bytes(const Bytes&, const Bytes&, const Bytes&)>;

  LambdaIterReducer(ReduceFn reduce_fn, DistFn dist_fn, MergeFn merge_fn)
      : reduce_fn_(std::move(reduce_fn)),
        dist_fn_(std::move(dist_fn)),
        merge_fn_(std::move(merge_fn)) {}

  void reduce(const Bytes& key, const std::vector<Bytes>& values,
              IterEmitter& out) override {
    reduce_fn_(key, values, out);
  }

  double distance(const Bytes& key, const Bytes& prev,
                  const Bytes& cur) override {
    return dist_fn_ ? dist_fn_(key, prev, cur) : 0.0;
  }

  Bytes merge(const Bytes& key, const Bytes& prev, const Bytes& cur) override {
    return merge_fn_ ? merge_fn_(key, prev, cur) : cur;
  }

 private:
  ReduceFn reduce_fn_;
  DistFn dist_fn_;
  MergeFn merge_fn_;
};

}  // namespace

IterMapperFactory make_iter_mapper(
    std::function<void(const Bytes&, const Bytes&, const Bytes&, IterEmitter&)>
        fn,
    PerturbFn perturb_fn) {
  return [fn = std::move(fn), perturb_fn = std::move(perturb_fn)] {
    return std::make_unique<LambdaIterMapper>(fn, perturb_fn);
  };
}

IterMapperFactory make_iter_mapper_all(
    std::function<void(const Bytes&, const Bytes&, const KVVec&, IterEmitter&)>
        fn) {
  return [fn = std::move(fn)] {
    return std::make_unique<LambdaIterMapper>(fn);
  };
}

IterReducerFactory make_iter_reducer(
    std::function<void(const Bytes&, const std::vector<Bytes>&, IterEmitter&)>
        reduce_fn,
    std::function<double(const Bytes&, const Bytes&, const Bytes&)>
        distance_fn,
    std::function<Bytes(const Bytes&, const Bytes&, const Bytes&)> merge_fn) {
  return [reduce_fn = std::move(reduce_fn),
          distance_fn = std::move(distance_fn),
          merge_fn = std::move(merge_fn)] {
    return std::make_unique<LambdaIterReducer>(reduce_fn, distance_fn,
                                               merge_fn);
  };
}

}  // namespace imr
