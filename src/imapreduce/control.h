// Control-plane messages between the master and persistent tasks.
//
// Encoded into NetMessage::control payloads so that they flow through the
// same costed fabric as data (category kControl).
#pragma once

#include <cstdint>

#include "common/bytes.h"

namespace imr {

enum class CtlType : uint8_t {
  kContinue = 1,   // master -> reduce: iteration `iter` accepted, proceed
  kGo = 2,         // master -> map (sync mode): start iteration `iter`
  kTerminate = 3,  // master -> all: stop; last-phase reduces dump final state
  kRollback = 4,   // master -> all: restart from checkpoint `iter`, new gen
  kKill = 5,       // master -> a migrated/failed pair: exit immediately
  kReport = 6,     // reduce -> master: iteration completion report (§3.4.2)
  kFailure = 7,    // task -> master: my worker failed (§3.4.1)
  kDone = 8,       // reduce -> master: final state written
  kAuxSignal = 9,  // aux reduce -> master: terminate signal (§5.3)
  // --- job sessions (DESIGN.md §8) ---
  kConvergedCkpt = 10,  // master -> reduce: converged; dump the session
                        // baseline checkpoint (converged-<session>) and ack
  kCkptAck = 11,        // reduce -> master: baseline checkpoint written
  kDelta = 12,          // master -> map: static-delta ops for your partition
                        // (ops ride in the message's record payload)
  kDeltaAck = 13,       // map -> master: ops applied; perturbed-key seeds in
                        // the record payload, refining verdict in workset_size
  kResume = 14,         // master -> map/reduce: start the next session epoch
                        // at iteration `iteration + 1` (workset_size != 0
                        // means reset_all: replay from the initial state)
};

struct CtlMsg {
  CtlType type = CtlType::kContinue;
  int32_t task = -1;      // sender task index (reports) or target info
  int32_t iteration = 0;  // iteration the message refers to
  int32_t generation = 0; // job generation (bumped on rollback)
  int32_t worker = -1;    // reporting worker (reports, failure notices)
  double distance = 0.0;  // local distance (reports)
  int64_t duration_ns = 0;  // iteration processing time (reports)
  // Workset mode (DESIGN.md §7): number of state records this reduce task
  // CHANGED in the reported iteration — the master sums these and terminates
  // when the global workset drains to 0. Always 0 in bulk mode.
  int64_t workset_size = 0;  // kReport
  // Final state-record count of the task's partition; the master sums these
  // into RunReport::final_state_records for the InvariantChecker's
  // state-conservation rule.
  int64_t state_records = 0;  // kDone
  // Session epoch the message belongs to (0 = the initial run). Guards the
  // quiesce/resume handshakes the same way `generation` guards rollbacks: a
  // straggling ack from a previous epoch is ignored.
  int32_t session = 0;  // kConvergedCkpt, kCkptAck, kDelta, kDeltaAck, kResume
  // Resident-state byte estimate of the task's partition (sum of key+value
  // sizes), carried on reports while telemetry is enabled; 0 otherwise.
  int64_t state_bytes = 0;  // kReport

  Bytes encode() const;
  static CtlMsg decode(const Bytes& b);
};

}  // namespace imr
