#include "imapreduce/engine.h"

#include <algorithm>
#include <atomic>
#include <deque>
#include <map>
#include <set>
#include <thread>
#include <unordered_map>

#include "cluster/placement.h"
#include "cluster/task_context.h"
#include "common/arena.h"
#include "common/codec.h"
#include "common/hash.h"
#include "common/log.h"
#include "common/strings.h"
#include "dfs/spill.h"
#include "imapreduce/control.h"
#include "imapreduce/static_store.h"
#include "mapreduce/shuffle_util.h"
#include "metrics/telemetry.h"

namespace imr {

namespace {

// Map-side emitter: partitions emit() across the phase's reduce tasks and
// side() across the auxiliary map tasks (dropped when no aux phase).
class TaskEmitter : public IterEmitter {
 public:
  // `part` (optional) overrides the flat hash for the main shuffle routing —
  // the conf's partitioner (DESIGN.md §9). Aux side-output keys live in their
  // own small key space and always hash.
  TaskEmitter(int num_partitions, int num_aux_partitions,
              const Partitioner* part = nullptr)
      : buffers_(static_cast<std::size_t>(num_partitions)),
        aux_buffers_(static_cast<std::size_t>(
            std::max(0, num_aux_partitions))),
        part_(part) {}

  void emit(Bytes key, Bytes value) override {
    uint32_t p = part_ != nullptr
                     ? part_->partition(key)
                     : partition_of(key, static_cast<uint32_t>(buffers_.size()));
    if (sketch_ != nullptr) {
      sketch_->offer(key);
      (*partition_counts_)[p] += 1;
    }
    if (track_held_) held_bytes_ += key.size() + value.size() + 8;
    buffers_[p].emplace_back(std::move(key), std::move(value));
    ++emitted_;
  }

  // Memory governance (DESIGN.md §10): wire bytes currently held across the
  // partition buffers, maintained incrementally. Off (zero probes on emit)
  // unless the owning task runs under a budget; the task adjusts the count
  // whenever it ships, combines, or spills a buffer.
  void set_track_held(bool on) { track_held_ = on; }
  bool tracking_held() const { return track_held_; }
  std::size_t held_bytes() const { return held_bytes_; }
  void add_held(std::size_t bytes) { held_bytes_ += bytes; }
  void sub_held(std::size_t bytes) {
    held_bytes_ -= bytes < held_bytes_ ? bytes : held_bytes_;
  }

  // Telemetry hot-key profiling: every emitted key feeds the sketch and the
  // exact per-partition counts. Null (the default) keeps emit() probe-free.
  void set_profile(SpaceSaving* sketch, std::vector<int64_t>* counts) {
    sketch_ = sketch;
    partition_counts_ = counts;
  }

  void side(Bytes key, Bytes value) override {
    if (aux_buffers_.empty()) return;
    uint32_t p = partition_of(key, static_cast<uint32_t>(aux_buffers_.size()));
    aux_buffers_[p].emplace_back(std::move(key), std::move(value));
  }

  std::vector<KVVec>& buffers() { return buffers_; }
  std::vector<KVVec>& aux_buffers() { return aux_buffers_; }
  int64_t emitted() const { return emitted_; }

  void clear() {
    for (auto& b : buffers_) b.clear();
    for (auto& b : aux_buffers_) b.clear();
    held_bytes_ = 0;
  }

 private:
  std::vector<KVVec> buffers_;
  std::vector<KVVec> aux_buffers_;
  const Partitioner* part_;
  int64_t emitted_ = 0;
  SpaceSaving* sketch_ = nullptr;
  std::vector<int64_t>* partition_counts_ = nullptr;
  bool track_held_ = false;
  std::size_t held_bytes_ = 0;
};

// Reports the budget's high-water mark to the cluster gauge when the owning
// task exits, whatever the exit path (terminate, rollback unwind, injected
// crash). One gauge across all tasks: the LARGEST per-task footprint.
struct BudgetHwmGuard {
  MetricsRegistry& metrics;
  const MemoryBudget& budget;
  ~BudgetHwmGuard() {
    if (budget.hwm() > 0) metrics.gauge_max("imr_arena_hwm", budget.hwm());
  }
};

// Reduce-side emitter: plain collection; side() feeds nothing here (the
// engine taps the reduce output itself for reduce-sourced aux phases).
class CollectEmitter : public IterEmitter {
 public:
  explicit CollectEmitter(KVVec& out) : out_(out) {}
  void emit(Bytes key, Bytes value) override {
    out_.emplace_back(std::move(key), std::move(value));
  }
  void side(Bytes /*key*/, Bytes /*value*/) override {}

 private:
  KVVec& out_;
};

// What a task's message loop decided.
enum class LoopEvent {
  kIterationReady,
  kRollback,
  kResume,  // session epoch resume (kRollback arithmetic, no state reload)
  kTerminate,
  kKill,
  kClosed,
};

// Iteration-aware mailbox wrapper. In asynchronous execution a fast upstream
// task may legitimately run one iteration ahead and send data tagged with a
// FUTURE iteration while this task is still collecting the current one
// (§3.3: maps of iteration k+1 overlap reduces of iteration k). Such
// messages must be buffered, not discarded; only messages from an older
// generation or an already-completed iteration are stale.
class StashedInbox {
 public:
  explicit StashedInbox(std::shared_ptr<Endpoint> ep) : ep_(std::move(ep)) {}

  // Returns the next message that is either a control message or a data/EOS
  // message matching (gen, iter). Buffers future-iteration data; drops
  // stale-generation and past-iteration messages. nullopt = endpoint closed.
  std::optional<NetMessage> next(VClock& vt, int gen, int iter) {
    auto key = std::make_pair(gen, iter);
    auto it = stash_.find(key);
    if (it != stash_.end()) {
      NetMessage msg = std::move(it->second.front());
      it->second.pop_front();
      if (it->second.empty()) stash_.erase(it);
      vt.sync_to(msg.vt_ready);
      return msg;
    }
    // Drop buckets that can never be consumed anymore.
    while (!stash_.empty() && stash_.begin()->first < key) {
      stash_.erase(stash_.begin());
    }
    while (true) {
      auto msg = ep_->receive(vt);
      if (!msg) return std::nullopt;
      if (msg->kind == NetMessage::Kind::kControl) return msg;
      if (msg->generation == gen && msg->iteration == iter) return msg;
      if (msg->generation > gen ||
          (msg->generation == gen && msg->iteration > iter)) {
        stash_[{msg->generation, msg->iteration}].push_back(std::move(*msg));
        continue;
      }
      // Older generation or already-finished iteration: stale, drop.
      IMR_DEBUG << ep_->name() << " drops stale "
                << (msg->kind == NetMessage::Kind::kEos ? "eos" : "data")
                << " gen " << msg->generation << " iter " << msg->iteration
                << " from " << msg->from_task << " (want gen " << gen
                << " iter " << iter << ")";
    }
  }

 private:
  std::shared_ptr<Endpoint> ep_;
  std::map<std::pair<int, int>, std::deque<NetMessage>> stash_;
};

}  // namespace

namespace detail {

// One run of an iterative job. Owns endpoints, task threads, and the master
// protocol state. In session mode (DESIGN.md §8) the run QUIESCES instead of
// terminating once the workset drains: the reduces dump a converged-<epoch>
// baseline checkpoint and every task stays parked in its collect loop, state
// and static indexes resident, until apply_update() routes a static-delta
// batch to the maps and resumes iteration from the perturbed-key frontier —
// or close_session() terminates the run and dumps the final output.
class JobRun {
 public:
  JobRun(Cluster& cluster, const IterJobConf& conf, bool session_mode = false)
      : cluster_(cluster),
        conf_(conf),
        cost_(cluster.cost()),
        // Job ordinal is per-cluster so a fresh cluster replays the same DFS
        // paths (placement is path-derived; see Cluster::next_job_ordinal).
        tag_(conf.name + "#" + std::to_string(cluster.next_job_ordinal())),
        P_(static_cast<int>(conf.phases.size())),
        T_(conf.num_tasks > 0 ? conf.num_tasks : default_tasks()),
        session_mode_(session_mode) {}

  // Default persistent-task count: fill the cluster's slots (§3.1.1 — the
  // task granularity is set so that all persistent tasks fit, using the same
  // slot capacity the classic engine's task waves use).
  int default_tasks() const {
    // Phases of one iteration alternate activity, and a dormant persistent
    // task does not occupy an execution slot (§3.1.1) — so phases share the
    // slot budget; only the aux phase (which runs concurrently with the
    // main phase) claims its own share.
    int aux_maps_share = conf_.aux ? 1 : 0;
    int aux_reduces = conf_.aux ? conf_.aux->num_reduce_tasks : 0;
    int by_maps = cluster_.map_slots() / (1 + aux_maps_share);
    int by_reduces = cluster_.reduce_slots() - aux_reduces;
    return std::max(1, std::min(by_maps, by_reduces));
  }

  RunReport execute();

  // --- session lifecycle (driven by JobSession, engine.h) ---
  // Runs to the first convergence and quiesces; the tasks stay parked.
  RunReport converge();
  // Routes a delta batch to the maps, seeds the resume frontier from their
  // perturbed_keys verdicts, and re-runs the loop until the frontier drains.
  RunReport apply_update(const StaticDelta& delta);
  // Terminates the parked tasks; last-phase reduces dump the final output.
  RunReport close_session();
  const RunReport& last_report() const { return last_report_; }
  bool closed() const { return closed_; }

 private:
  // --- naming ---
  std::string map_ep_name(int p, int i) const {
    return tag_ + "/p" + std::to_string(p) + "/m" + std::to_string(i);
  }
  std::string red_ep_name(int p, int i) const {
    return tag_ + "/p" + std::to_string(p) + "/r" + std::to_string(i);
  }
  std::string ckpt_path(int iter) const {
    return "ckpt/" + tag_ + "/it" + std::to_string(iter);
  }
  // Session baseline checkpoint of epoch `session` (the state every task of
  // epoch session+1 resumes against). Lives under ckpt/<tag>/ so teardown's
  // prefix removal garbage-collects it with the periodic checkpoints.
  std::string converged_path(int session) const {
    return "ckpt/" + tag_ + "/converged-" + std::to_string(session);
  }

  // --- endpoint registry (swapped under lock on respawn) ---
  std::shared_ptr<Endpoint> map_ep(int p, int i) {
    std::lock_guard<std::mutex> lock(ep_mu_);
    return map_ep_[static_cast<std::size_t>(p)][static_cast<std::size_t>(i)];
  }
  std::shared_ptr<Endpoint> red_ep(int p, int i) {
    std::lock_guard<std::mutex> lock(ep_mu_);
    return red_ep_[static_cast<std::size_t>(p)][static_cast<std::size_t>(i)];
  }
  std::shared_ptr<Endpoint> aux_map_ep(int a) {
    std::lock_guard<std::mutex> lock(ep_mu_);
    return aux_map_ep_[static_cast<std::size_t>(a)];
  }
  std::shared_ptr<Endpoint> aux_red_ep(int j) {
    std::lock_guard<std::mutex> lock(ep_mu_);
    return aux_red_ep_[static_cast<std::size_t>(j)];
  }
  std::vector<std::shared_ptr<Endpoint>> all_endpoints() {
    std::lock_guard<std::mutex> lock(ep_mu_);
    std::vector<std::shared_ptr<Endpoint>> all;
    for (auto& v : map_ep_) all.insert(all.end(), v.begin(), v.end());
    for (auto& v : red_ep_) all.insert(all.end(), v.begin(), v.end());
    all.insert(all.end(), aux_map_ep_.begin(), aux_map_ep_.end());
    all.insert(all.end(), aux_red_ep_.begin(), aux_red_ep_.end());
    return all;
  }

  // Which endpoint row an EpRow caches.
  enum class EpKind { kMap, kReduce, kAuxMap, kAuxReduce };

  // Generation-stamped cache of one endpoint row ([task index] for a fixed
  // phase). Task loops ship every flushed batch through a row; looking each
  // endpoint up under ep_mu_ per batch serializes all senders on one global
  // mutex. Instead the row is snapshotted once and re-snapshotted only after
  // respawn_and_rollback swaps endpoints and bumps ep_epoch_. A send racing
  // the swap can still land in an abandoned mailbox — exactly the race the
  // per-send lookup already had (the pointer was fetched before the swap) —
  // and is handled the same way: the receiver's generation check filters it,
  // or teardown declares it a discard.
  class EpRow {
   public:
    EpRow(JobRun& run, EpKind kind, int p = 0) : run_(run), kind_(kind), p_(p) {}

    Endpoint& at(int i) {
      refresh();
      return *row_[static_cast<std::size_t>(i)];
    }
    const std::vector<std::shared_ptr<Endpoint>>& row() {
      refresh();
      return row_;
    }

   private:
    void refresh() {
      // Epoch is loaded before the snapshot: if a swap lands in between, the
      // fresher row is stored under the older stamp and the next access
      // simply refreshes again.
      uint64_t epoch = run_.ep_epoch_.load(std::memory_order_acquire);
      if (epoch == epoch_) return;
      std::lock_guard<std::mutex> lock(run_.ep_mu_);
      switch (kind_) {
        case EpKind::kMap:
          row_ = run_.map_ep_[static_cast<std::size_t>(p_)];
          break;
        case EpKind::kReduce:
          row_ = run_.red_ep_[static_cast<std::size_t>(p_)];
          break;
        case EpKind::kAuxMap:
          row_ = run_.aux_map_ep_;
          break;
        case EpKind::kAuxReduce:
          row_ = run_.aux_red_ep_;
          break;
      }
      epoch_ = epoch;
    }

    JobRun& run_;
    EpKind kind_;
    int p_;
    uint64_t epoch_ = ~uint64_t{0};
    std::vector<std::shared_ptr<Endpoint>> row_;
  };

  // --- control helpers ---
  void master_send(VClock& mvt, Endpoint& to, const CtlMsg& ctl) {
    NetMessage msg;
    msg.kind = NetMessage::Kind::kControl;
    msg.from_task = -1;
    msg.iteration = ctl.iteration;
    msg.generation = ctl.generation;
    msg.control = ctl.encode();
    cluster_.fabric().send(/*sender_worker=*/-1, mvt, to, std::move(msg),
                           TrafficCategory::kControl);
  }
  void task_send_ctl(TaskContext& ctx, const CtlMsg& ctl) {
    NetMessage msg;
    msg.kind = NetMessage::Kind::kControl;
    msg.from_task = ctl.task;
    msg.iteration = ctl.iteration;
    msg.generation = ctl.generation;
    msg.control = ctl.encode();
    ctx.send(*master_ep_, std::move(msg), TrafficCategory::kControl);
  }
  // An injected crash: the dying task's last breath is the failure notice
  // (the in-process stand-in for the master's heartbeat timeout). The caller
  // must return immediately after.
  void fail_task(TaskContext& ctx, int task, int iteration, int gen) {
    IMR_DEBUG << tag_ << ": task " << task << " (worker " << ctx.worker()
              << ") injected failure at iter " << iteration << " gen " << gen;
    CtlMsg fail;
    fail.type = CtlType::kFailure;
    fail.task = task;
    fail.iteration = iteration;
    fail.generation = gen;
    fail.worker = ctx.worker();
    task_send_ctl(ctx, fail);
  }

  // --- data helpers ---
  void send_batch(TaskContext& ctx, Endpoint& to, KVVec records, int from,
                  int iter, int gen, TrafficCategory cat) {
    NetMessage msg;
    msg.kind = NetMessage::Kind::kData;
    msg.from_task = from;
    msg.iteration = iter;
    msg.generation = gen;
    msg.set_records(std::move(records));
    ctx.send(to, std::move(msg), cat);
  }
  void send_eos(TaskContext& ctx, Endpoint& to, int from, int iter, int gen,
                TrafficCategory cat) {
    NetMessage msg;
    msg.kind = NetMessage::Kind::kEos;
    msg.from_task = from;
    msg.iteration = iter;
    msg.generation = gen;
    ctx.send(to, std::move(msg), cat);
  }

  // --- task bodies ---
  // `worker` and `ep` are captured by the spawning thread (see spawn_pair),
  // not read here: a task thread may be scheduled arbitrarily late.
  void run_map(int p, int i, int gen, int start_iter, int64_t start_vt,
               int worker, std::shared_ptr<Endpoint> ep);
  void run_reduce(int p, int i, int gen, int start_iter, int64_t start_vt,
                  int worker, std::shared_ptr<Endpoint> ep);
  // Aux tasks are generation-aware like main tasks: after a rollback the
  // main phase re-sends aux data under the bumped generation, so an aux task
  // stuck at generation 0 would stash that data forever and convergence
  // detection would silently stop firing.
  void run_aux_map(int j, int gen, int start_iter,
                   std::shared_ptr<Endpoint> ep);
  void run_aux_reduce(int j, int gen, int start_iter,
                      std::shared_ptr<Endpoint> ep);
  void master_loop();

  // execute() split so a session can re-enter the master loop per epoch:
  // start() validates/spawns once, run_master() wraps master_loop with error
  // capture, finish() tears everything down and fills the cumulative report.
  void start();
  void run_master();
  RunReport finish();
  // Report slice covering the current epoch only (since epoch_first_stat_).
  RunReport epoch_report(const std::string& label);

  // --- spawning ---
  void spawn(std::function<void()> body) {
    std::lock_guard<std::mutex> lock(threads_mu_);
    threads_.emplace_back([this, body = std::move(body)] {
      try {
        body();
      } catch (...) {
        {
          std::lock_guard<std::mutex> elock(error_mu_);
          if (!first_error_) first_error_ = std::current_exception();
        }
        // Unblock everything so the run can unwind.
        for (auto& ep : all_endpoints()) ep->close();
        master_ep_->close();
      }
    });
  }
  void spawn_pair(int i, int gen, int start_iter, int64_t start_vt) {
    // Resolve the pair's home worker and inbox endpoints HERE, in the
    // spawning thread. A new thread can begin running arbitrarily late —
    // after a subsequent recovery has re-homed this pair and replaced its
    // endpoints. A task that resolved its own inbox only once scheduled
    // would then grab the *replacement* mailbox: its Kill would sit unread
    // in the abandoned one while it silently stole (and stashed, by
    // generation) the replacement task's messages — a deadlock that only
    // shows up when thread start-up is delayed by machine load.
    int worker = pair_worker(i);
    for (int p = 0; p < P_; ++p) {
      auto mep = map_ep(p, i);
      auto rep = red_ep(p, i);
      spawn([this, p, i, gen, start_iter, start_vt, worker, mep] {
        run_map(p, i, gen, start_iter, start_vt, worker, mep);
      });
      spawn([this, p, i, gen, start_iter, start_vt, worker, rep] {
        run_reduce(p, i, gen, start_iter, start_vt, worker, rep);
      });
    }
  }

  // Routing for one key under the job's effective partitioner (the conf's or
  // the flat hash). Everything that decides where a key LIVES — shuffle
  // routing, state/static loads, session update routing — goes through the
  // same function, or a key would be loaded on one task and updated on
  // another (DESIGN.md §9).
  uint32_t key_partition(BytesView key) const {
    return conf_.partitioner
               ? conf_.partitioner->partition(key)
               : partition_of(key, static_cast<uint32_t>(T_));
  }
  // The same routing as a MiniDfs::PartitionFn for partition loads.
  MiniDfs::PartitionFn partition_fn() const {
    return [this](BytesView key) { return key_partition(key); };
  }

  // Loads the phase-0 map state input for iteration `ckpt_iter + 1`.
  KVVec load_map_state(TaskContext& ctx, int i, int ckpt_iter, bool one2all) {
    // A reset_all epoch's baseline is the ORIGINAL initial state: the epoch
    // replays the whole iteration (over the mutated static data) in place,
    // which is what makes a non-refining delta's reconvergence byte-identical
    // to a cold run.
    if (ckpt_iter > 0) {
      SessionView sv = session_view();
      if (sv.active && ckpt_iter == sv.base && sv.reset_all) ckpt_iter = 0;
    }
    if (ckpt_iter <= 0) {
      if (one2all) return ctx.dfs_read_all(conf_.state_path);
      return cluster_.dfs().read_partition(conf_.state_path,
                                           static_cast<uint32_t>(i),
                                           partition_fn(), ctx.worker(),
                                           &ctx.vt());
    }
    // Workset mode restores the exact FRONTIER the checkpoint iteration
    // produced, not the full state: replaying the full state would revisit
    // every key (re-applying updates an accumulative reducer already
    // absorbed) and make the recovered run diverge from the fault-free one.
    if (conf_.workset_mode) {
      return ctx.dfs_read_all(ckpt_path(ckpt_iter) + "/workset-" +
                              std::to_string(i));
    }
    return ctx.dfs_read_all(ckpt_path(ckpt_iter) + "/part-" +
                            std::to_string(i));
  }

  // --- session-state views for task threads. The master writes the fields
  // only while every task is parked (or inside the ack barrier), but a task
  // respawned by recovery reads them concurrently with nothing ordering the
  // two — hence session_mu_ around every access.
  struct SessionView {
    bool active = false;   // a resume epoch is in effect (session_id_ > 0)
    int base = 0;          // iteration the epoch resumed after
    bool reset_all = false;
    std::string baseline_dir;  // converged ckpt backing a refining epoch
  };
  SessionView session_view() {
    std::lock_guard<std::mutex> lock(session_mu_);
    SessionView sv;
    sv.active = session_mode_ && session_id_ > 0;
    sv.base = session_base_;
    sv.reset_all = session_reset_all_;
    sv.baseline_dir = session_baseline_dir_;
    return sv;
  }
  // True when `ckpt_iter` is the current epoch's baseline and the epoch is
  // refining: the converged state lives on in the reduces, so a map restarts
  // with NO pending input and waits for its paired reduce's seed frontier.
  bool session_baseline_collect(int ckpt_iter) {
    std::lock_guard<std::mutex> lock(session_mu_);
    return session_mode_ && session_id_ > 0 && !session_reset_all_ &&
           ckpt_iter == session_base_;
  }
  // Copy of reduce task i's seed frontier for the current epoch. Reduces read
  // seeds from here (not from the resume message) so a task respawned
  // mid-epoch re-ships the identical frontier.
  KVVec session_seeds_for(int i) {
    std::lock_guard<std::mutex> lock(session_mu_);
    if (epoch_seeds_.empty()) return KVVec{};
    return epoch_seeds_[static_cast<std::size_t>(i)];
  }
  // Every delta batch applied so far, filtered to task i's partition: a map
  // respawned by recovery rebuilds its static store from the original input
  // and replays these to catch up with the session's mutations.
  std::vector<std::vector<StaticDeltaOp>> session_history_for(int i) {
    std::lock_guard<std::mutex> lock(session_mu_);
    std::vector<std::vector<StaticDeltaOp>> out;
    out.reserve(delta_history_.size());
    for (const auto& batch : delta_history_) {
      std::vector<StaticDeltaOp> mine;
      for (const StaticDeltaOp& op : batch) {
        if (key_partition(op.key) == static_cast<uint32_t>(i)) {
          mine.push_back(op);
        }
      }
      out.push_back(std::move(mine));
    }
    return out;
  }

  Cluster& cluster_;
  // By value: a session-mode run outlives the IterativeEngine::open_session
  // call that supplied the conf.
  const IterJobConf conf_;
  const CostModel& cost_;
  std::string tag_;
  int P_;
  int T_;
  int aux_reduces_ = 0;

  std::shared_ptr<Endpoint> master_ep_;
  std::mutex ep_mu_;
  std::vector<std::vector<std::shared_ptr<Endpoint>>> map_ep_;  // [p][i]
  std::vector<std::vector<std::shared_ptr<Endpoint>>> red_ep_;  // [p][i]
  std::vector<std::shared_ptr<Endpoint>> aux_map_ep_;           // [i]
  std::vector<std::shared_ptr<Endpoint>> aux_red_ep_;           // [j]
  // Bumped (after the swap, under ep_mu_) whenever endpoints are replaced;
  // EpRow caches re-snapshot when they observe a new epoch.
  std::atomic<uint64_t> ep_epoch_{0};

  std::mutex assign_mu_;
  std::vector<int> pair_worker_;  // pair index -> worker

  std::mutex threads_mu_;
  std::vector<std::thread> threads_;
  std::mutex error_mu_;
  std::exception_ptr first_error_;

  // Master-filled results.
  RunReport report_;
  int64_t final_vt_ = 0;
  RunReport last_report_;
  // Telemetry iteration records (master thread only); truncated beside
  // report_.iterations on rollback, joined with the ledger at finish().
  std::vector<IterTelemetry> telemetry_iters_;
  // Registry snapshot at the current epoch's start; epoch_report subtracts
  // it so each epoch's byte/time totals cover that epoch alone.
  RunReport epoch_base_report_;

  // --- master protocol state. Owned by the master thread; hoisted out of
  // master_loop so a session can leave the loop at quiesce and re-enter it
  // for the next epoch without losing the iteration ledger.
  struct PendingIter {
    int reports = 0;
    double distance = 0;
    int64_t workset = 0;  // summed changed-record counts (workset mode)
    std::map<int, int64_t> worker_dur;  // worker -> max duration
    // Telemetry (populated only while the recorder gate is armed): exact
    // per-task durations/resident-state bytes, and the straggler — the
    // report that arrived LAST in virtual time (ties: smaller task id).
    std::map<int, int64_t> task_dur;
    std::map<int, int64_t> task_state_bytes;
    int straggler_task = -1;
    int straggler_worker = -1;
    int64_t straggler_vt = -1;
    int64_t straggler_dur = 0;
  };
  std::map<int, PendingIter> pending_;  // iteration -> reports (current gen)
  int generation_ = 0;
  int decided_ = 0;
  int last_ckpt_ = 0;
  int aux_stop_at_ = INT32_MAX;
  int last_migration_iter_ = 0;
  std::set<int> dead_workers_;
  bool terminating_ = false;
  int done_count_ = 0;
  double last_decided_wall_ms_ = 0;
  // The master clock and trace track persist across session epochs: epoch
  // wall times are slices of one continuous timeline.
  VClock mvt_;
  bool started_ = false;
  bool closed_ = false;
  bool close_requested_ = false;
  bool traced_ = false;
  TraceRecorder::TrackHandle prev_track_ = nullptr;
  std::optional<TraceSpan> job_span_;

  // --- job-session state (DESIGN.md §8) ---
  bool session_mode_ = false;
  std::mutex session_mu_;
  int session_id_ = 0;    // current epoch; 0 = the initial run
  int session_base_ = 0;  // iteration the current epoch resumed after
  bool session_reset_all_ = false;
  std::string session_baseline_dir_;
  std::vector<std::vector<StaticDeltaOp>> delta_history_;
  std::vector<KVVec> epoch_seeds_;  // [reduce task] current epoch's frontier
  // Quiesce/epoch bookkeeping (master thread only).
  bool quiesced_ = false;
  int ckpt_acks_ = 0;
  // Iteration-budget base: a resume epoch gets a fresh max_iterations budget
  // counted from its base (0 initially, so plain runs are unchanged).
  int epoch_base_ = 0;
  std::size_t epoch_first_stat_ = 0;
  double epoch_start_ms_ = 0;

  int pair_worker(int i) {
    std::lock_guard<std::mutex> lock(assign_mu_);
    return pair_worker_[static_cast<std::size_t>(i)];
  }
  void set_pair_worker(int i, int w) {
    std::lock_guard<std::mutex> lock(assign_mu_);
    pair_worker_[static_cast<std::size_t>(i)] = w;
  }
};

// ---------------------------------------------------------------------------
// Map task
// ---------------------------------------------------------------------------

void JobRun::run_map(int p, int i, int gen, int start_iter, int64_t start_vt,
                     int worker, std::shared_ptr<Endpoint> ep) {
  const PhaseConf& ph = conf_.phases[static_cast<std::size_t>(p)];
  const bool one2all = ph.mapping == Mapping::kOne2All;
  const bool is_phase0 = (p == 0);
  // Workset mode (DESIGN.md §7): the paired reduce ships only CHANGED
  // records, so the batches arriving here are the active frontier, not the
  // full state. The map body is unchanged — it joins and maps whatever
  // arrives — but the iteration span is named distinctly so traces show
  // frontier iterations at a glance.
  const bool workset = conf_.workset_mode;
  const bool sync_gate = is_phase0 && !conf_.async_maps && !one2all;
  const int eos_target = one2all ? T_ : 1;
  const int num_aux =
      (conf_.aux && is_phase0 &&
       conf_.aux->source == AuxConf::Source::kMapSideOutput)
          ? T_
          : 0;

  StashedInbox inbox(ep);
  TaskContext ctx(cluster_, map_ep_name(p, i), worker, start_vt);
  EpRow red_row(*this, EpKind::kReduce, p);
  EpRow aux_row(*this, EpKind::kAuxMap);
  ctx.charge(cost_.task_init, TimeCategory::kTaskInit);
  cluster_.metrics().inc("imr_persistent_map_tasks");
  IMR_DEBUG << tag_ << ": map " << p << "/" << i << " gen " << gen
            << " starting at iter " << start_iter << " on worker "
            << ctx.worker();

  // One-time static load (§3.2: loaded to local FS once). The partition is
  // sorted (for in-order map_all scans) and hash-indexed (StaticStore) here,
  // once per persistent task — every per-record join of every iteration then
  // costs one hash probe instead of a lower_bound's log n string compares.
  StaticStore static_store;
  if (!ph.static_path.empty()) {
    KVVec static_data = cluster_.dfs().read_partition(
        ph.static_path, static_cast<uint32_t>(i), partition_fn(),
        ctx.worker(), &ctx.vt());
    if (TelemetryRecorder::enabled()) {
      cluster_.telemetry().record_static_bytes(
          i, static_cast<int64_t>(wire_size(static_data)));
    }
    TraceSpan index_span("join_index_build", ctx.vt(), start_iter, gen);
    ThreadCpuTimer index_cpu;
    sort_records(static_data, /*sort_values=*/false);
    static_store.build(std::move(static_data));
    ctx.charge_compute(index_cpu.elapsed_ns(), TimeCategory::kSort);
  }
  if (session_mode_ && !ph.static_path.empty()) {
    // A task respawned mid-session rebuilt its store from the ORIGINAL
    // static input above; catch up by replaying every delta batch the
    // session has applied so far. Fresh gen-0 tasks see an empty history.
    for (const auto& ops : session_history_for(i)) {
      if (ops.empty()) continue;
      ThreadCpuTimer replay_cpu;
      static_store.apply_delta(ops);
      ctx.charge_compute(replay_cpu.elapsed_ns());
      cluster_.metrics().inc("imr_delta_ops_replayed",
                             static_cast<int64_t>(ops.size()));
    }
  }

  std::unique_ptr<IterMapper> mapper = ph.mapper();
  mapper->configure(conf_.params);
  std::unique_ptr<IterReducer> combiner = ph.combiner ? ph.combiner() : nullptr;
  if (combiner) combiner->configure(conf_.params);
  CombineFn combine_body;
  if (combiner) {
    combine_body = [&combiner = *combiner](const Bytes& key,
                                           const std::vector<Bytes>& values,
                                           KVVec& out) {
      CollectEmitter emitter(out);
      combiner.reduce(key, values, emitter);
    };
  }

  TaskEmitter emitter(T_, num_aux, conf_.partitioner.get());

  // Memory governance (DESIGN.md §10): the budget covers the held shuffle
  // buffers plus the sort arena scratch. Map-side spilling stays off under
  // the aggregated exchange — remote output is held to the barrier by design
  // there, and pushing it through spill files would move the same bytes
  // twice without lowering the barrier-frame peak.
  MemoryBudget budget(conf_.max_task_memory_bytes);
  RecordArena arena(&budget);
  SpillSet spills(cluster_.dfs(), cluster_.metrics(),
                  strprintf("%s/m%d-t%d-g%d", tag_.c_str(), p, i, gen),
                  ctx.worker());
  BudgetHwmGuard hwm_guard{cluster_.metrics(), budget};
  const bool map_budgeted = budget.limited() && !conf_.aggregated_shuffle;
  emitter.set_track_held(map_budgeted);
  int64_t held_charged = 0;
  auto sync_budget = [&] {
    const int64_t held = static_cast<int64_t>(emitter.held_bytes());
    if (held > held_charged) {
      budget.charge(held - held_charged);
    } else {
      budget.release(held_charged - held);
    }
    held_charged = held;
  };
  // Over-budget map-side spill: sort (and pre-combine, when the phase has a
  // combiner) every held partition buffer and write each as a run on that
  // partition's stream; the final flush replays them as ordinary shuffle
  // batches ahead of the tail. Returns true when an injected crash killed
  // the task mid-spill.
  auto map_spill = [&](int iter) -> bool {
    if (!map_budgeted) return false;
    sync_budget();
    if (!budget.over()) return false;
    TraceSpan spill_span("spill_write", ctx.vt(), iter, gen);
    bool wrote = false;
    for (int r = 0; r < T_; ++r) {
      KVVec& buf = emitter.buffers()[static_cast<std::size_t>(r)];
      if (buf.empty()) continue;
      emitter.sub_held(wire_size(buf));
      {
        ThreadCpuTimer sort_cpu;
        sort_records(buf, /*sort_values=*/true, arena);
        ctx.charge_compute(sort_cpu.elapsed_ns(), TimeCategory::kSort);
      }
      if (combiner) {
        // Budgeted jobs imply deterministic_reduce (conf validation), so the
        // sorted combine path is always the right one here.
        TraceSpan combine_span("combine", ctx.vt(), iter, gen);
        ThreadCpuTimer cpu;
        combine_sorted(buf, combine_body);
        ctx.charge_compute(cpu.elapsed_ns());
      }
      // Injection point: died between sorting a run and registering it — the
      // torn half-file IS registered, so this task's unwind drops it and the
      // spill ledger stays balanced.
      if (cluster_.consume_fault(ctx.worker(), FaultPoint::kSpillWrite, iter,
                                 &ctx.vt())) {
        spills.write_torn_run(r, std::move(buf), &ctx.vt());
        fail_task(ctx, i, iter, gen);
        return true;
      }
      spills.write_run(r, std::move(buf), &ctx.vt());
      buf = KVVec{};
      wrote = true;
    }
    sync_budget();
    if (wrote) cluster_.metrics().inc("imr_map_spills");
    return false;
  };

  // Telemetry hot-key profile of this task's shuffle output: a SpaceSaving
  // sketch plus exact per-partition emit counts, handed to the cluster
  // ledger on EVERY exit path (the guard covers injected-crash returns and
  // error unwinds alike). The ledger keeps the highest-generation push per
  // task, so a respawned task supersedes the zombie it replaced.
  const bool profiled = is_phase0 && TelemetryRecorder::enabled();
  SpaceSaving sketch;
  std::vector<int64_t> partition_counts;
  if (profiled) {
    partition_counts.assign(static_cast<std::size_t>(T_), 0);
    emitter.set_profile(&sketch, &partition_counts);
  }
  struct ProfileGuard {
    JobRun& run;
    bool armed;
    int task;
    const int& gen;
    SpaceSaving& sketch;
    std::vector<int64_t>& counts;
    ~ProfileGuard() {
      if (!armed) return;
      run.cluster_.telemetry().record_task_profile(task, gen,
                                                   std::move(sketch),
                                                   std::move(counts));
    }
  } profile_guard{*this, profiled, i, gen, sketch, partition_counts};

  static const Bytes kEmpty;

  // Per-iteration mapped-record count. The workset A/B benches read the
  // total to show the frontier shrinking (bulk maps every key, every
  // iteration); per-iteration frontier sizes come from the master's
  // workset_size series.
  int64_t iter_input_records = 0;

  // Hash join against the static index (§3.2.2): one probe per record.
  auto process_one2one_batch = [&](const KVVec& batch) {
    ThreadCpuTimer cpu;
    iter_input_records += static_cast<int64_t>(batch.size());
    // The probe scope pins the store for the duration of the join: find()'s
    // pointers die on any mutation, and the debug assertion inside
    // apply_delta/build fires if a delta ever lands mid-join.
    StaticStore::ProbeScope probes(static_store);
    for (const KV& kv : batch) {
      const Bytes* sv = static_store.find(kv.key);
      mapper->map(kv.key, kv.value, sv ? *sv : kEmpty, emitter);
    }
    ctx.charge_compute(cpu.elapsed_ns());
  };
  auto process_one2all = [&](KVVec& states) {
    ThreadCpuTimer cpu;
    iter_input_records += static_cast<int64_t>(static_store.records().size());
    // Deterministic order regardless of broadcast arrival interleaving.
    // Reduce pushes already arrive key-sorted per sender, so steady-state
    // iterations (single sender, or luckily ordered interleavings) skip the
    // sort; a stable key-only sort of an already key-sorted buffer is the
    // identity, so the guard never changes the outcome.
    if (!std::is_sorted(
            states.begin(), states.end(),
            [](const KV& a, const KV& b) { return a.key < b.key; })) {
      sort_records(states, /*sort_values=*/false);
    }
    for (const KV& kv : static_store.records()) {
      mapper->map_all(kv.key, kv.value, states, emitter);
    }
    ctx.charge_compute(cpu.elapsed_ns());
  };

  auto flush_buffers = [&](int iter, bool final_flush) {
    // Aggregated exchange (DESIGN.md §9): output destined for a reduce homed
    // on a REMOTE worker is held to the iteration barrier (final flush) and
    // shipped below as ONE coalesced message per destination worker. Local
    // partitions stream exactly as before, so the paired-task fast path
    // keeps its pipelining.
    const bool agg = conf_.aggregated_shuffle;
    struct AggBatch {
      std::vector<std::shared_ptr<Endpoint>> eps;
      KVVec records;
      Bytes entries;  // per partition: task:u32, begin:u32, end:u32
      uint32_t count = 0;
    };
    std::map<int, AggBatch> coalesced;  // dest worker -> batch
    // Runs spilled earlier in the iteration ship first — they hold the
    // iteration's OLDEST records, and each run travels as its own batch.
    // (Map-side spilling is inactive under the aggregated exchange, so these
    // always stream directly to their partition.)
    if (final_flush && spills.total_runs() > 0) {
      for (int r = 0; r < T_; ++r) {
        while (spills.has_runs(r)) {
          KVVec run = spills.take_run(r, &ctx.vt());
          if (!run.empty()) {
            send_batch(ctx, red_row.at(r), std::move(run), i, iter, gen,
                       TrafficCategory::kShuffle);
          }
        }
      }
    }
    if (agg && final_flush) {
      // The barrier frame is also this map's iteration-EOS for every reduce
      // on the destination worker (each sibling mailbox receives the one
      // frame), so a frame goes to every remote worker hosting a partition —
      // record ranges or not — and no per-reduce EOS crosses the wire.
      for (int r = 0; r < T_; ++r) {
        const int home = red_row.at(r).home_worker();
        if (home == ctx.worker()) continue;
        coalesced[home].eps.push_back(
            red_row.row()[static_cast<std::size_t>(r)]);
      }
    }
    for (int r = 0; r < T_; ++r) {
      KVVec& buf = emitter.buffers()[static_cast<std::size_t>(r)];
      if (buf.empty()) continue;
      const bool held_remote =
          agg && red_row.at(r).home_worker() != ctx.worker();
      // With a combiner, ship only at the end of the iteration: combining
      // within small streamed batches finds few duplicate keys and forfeits
      // most of the aggregation (matrix power would shuffle the full
      // pre-combine product stream).
      if (!final_flush &&
          (held_remote || combiner ||
           buf.size() < static_cast<std::size_t>(conf_.buffer_records))) {
        continue;
      }
      if (combiner) {
        // Combine before shipping, through the shared shuffle_util path:
        // sorted run-length grouping when deterministic_reduce pins the
        // order, hash aggregation (no sort) otherwise.
        const std::size_t pre_combine =
            emitter.tracking_held() ? wire_size(buf) : 0;
        TraceSpan combine_span("combine", ctx.vt(), iter, gen);
        if (conf_.deterministic_reduce) {
          {
            ThreadCpuTimer sort_cpu;
            sort_records(buf, /*sort_values=*/true, arena);
            ctx.charge_compute(sort_cpu.elapsed_ns(), TimeCategory::kSort);
          }
          ThreadCpuTimer cpu;
          combine_sorted(buf, combine_body);
          ctx.charge_compute(cpu.elapsed_ns());
        } else {
          ThreadCpuTimer cpu;
          combine_hashed(buf, combine_body);
          ctx.charge_compute(cpu.elapsed_ns());
        }
        if (emitter.tracking_held()) {
          emitter.sub_held(pre_combine);
          emitter.add_held(wire_size(buf));
        }
      }
      if (held_remote) {
        AggBatch& b = coalesced[red_row.at(r).home_worker()];
        encode_u32(static_cast<uint32_t>(r), b.entries);
        encode_u32(static_cast<uint32_t>(b.records.size()), b.entries);
        encode_u32(static_cast<uint32_t>(b.records.size() + buf.size()),
                   b.entries);
        ++b.count;
        b.records.insert(b.records.end(),
                         std::make_move_iterator(buf.begin()),
                         std::make_move_iterator(buf.end()));
        buf = KVVec{};
        continue;
      }
      if (emitter.tracking_held()) emitter.sub_held(wire_size(buf));
      send_batch(ctx, red_row.at(r), std::move(buf), i, iter, gen,
                 TrafficCategory::kShuffle);
      buf = KVVec{};
    }
    // Ship the coalesced batches: records for every partition on the worker
    // concatenated in partition order, control = header (count, then
    // (task, begin, end) record ranges) each receiver slices its own range
    // from. One wire transfer per destination worker and iteration
    // (kShuffleAgg) — possibly entry-free, since the frame doubles as the
    // EOS barrier marker; the sibling mailbox hand-offs are free.
    for (auto& [w, b] : coalesced) {
      NetMessage msg;
      msg.kind = NetMessage::Kind::kData;
      msg.from_task = i;
      msg.iteration = iter;
      msg.generation = gen;
      Bytes header;
      encode_u32(b.count, header);
      header.insert(header.end(), b.entries.begin(), b.entries.end());
      msg.control = std::move(header);
      msg.set_records(std::move(b.records));
      ctx.send_coalesced(b.eps, msg, TrafficCategory::kShuffleAgg);
    }
  };

  // Returns true when an injected crash killed the task mid-shuffle.
  auto finish_iteration = [&](int iter) -> bool {
    {
      ThreadCpuTimer cpu;
      mapper->flush(emitter);
      ctx.charge_compute(cpu.elapsed_ns());
    }
    if (iter_input_records > 0) {
      cluster_.metrics().inc("imr_map_input_records", iter_input_records);
      iter_input_records = 0;
    }
    TraceSpan flush_span("shuffle_flush", ctx.vt(), iter, gen);
    flush_buffers(iter, /*final_flush=*/true);
    // Injection point: died after flushing shuffle data but before the EOS
    // hand-offs (under the aggregated exchange, remote frames — EOS
    // included — are out, local reduces got nothing) — downstream reduces
    // hold a partial iteration that only the rollback's generation bump can
    // clear.
    if (cluster_.consume_fault(ctx.worker(), FaultPoint::kMidShuffle, iter,
                               &ctx.vt())) {
      fail_task(ctx, i, iter, gen);
      return true;
    }
    for (int r = 0; r < T_; ++r) {
      // Under the aggregated exchange remote reduces already hold this map's
      // EOS — it rode the barrier frame — so only same-worker hand-offs
      // still send one.
      if (conf_.aggregated_shuffle &&
          red_row.at(r).home_worker() != ctx.worker()) {
        continue;
      }
      send_eos(ctx, red_row.at(r), i, iter, gen, TrafficCategory::kShuffle);
    }
    IMR_DEBUG << tag_ << ": map " << p << "/" << i << " shipped eos iter "
              << iter << " gen " << gen;
    if (num_aux > 0) {
      for (int a = 0; a < num_aux; ++a) {
        KVVec& buf = emitter.aux_buffers()[static_cast<std::size_t>(a)];
        if (!buf.empty()) {
          send_batch(ctx, aux_row.at(a), std::move(buf), i, iter, gen,
                     TrafficCategory::kShuffle);
          buf = KVVec{};
        }
        send_eos(ctx, aux_row.at(a), i, iter, gen, TrafficCategory::kShuffle);
      }
    }
    return false;
  };

  int k = start_iter;
  int go_allowed = start_iter;  // sync gating: first iteration is free
  // Phase-0 maps begin from the loaded state (initial or checkpoint) — except
  // at a refining epoch's baseline, where the converged state is resident in
  // the reduces and the input is the seed frontier the paired reduce ships.
  bool have_pending = is_phase0;
  KVVec pending;
  if (is_phase0) {
    if (session_baseline_collect(start_iter - 1)) {
      have_pending = false;
    } else {
      pending = load_map_state(ctx, i, start_iter - 1, one2all);
    }
  }

  while (true) {
    TraceSpan iter_span(workset ? "map_iter_frontier" : "map_iter", ctx.vt(),
                        k, gen);
    const int64_t iter_start_vt_ns = ctx.vt().now_ns();
    // Injection point: died while working on iteration k, before its shuffle
    // output exists.
    if (cluster_.consume_fault(ctx.worker(), FaultPoint::kMidMap, k,
                               &ctx.vt())) {
      fail_task(ctx, i, k, gen);
      return;
    }
    int rollback_to = -1;
    if (have_pending) {
      have_pending = false;
      if (one2all) {
        process_one2all(pending);
      } else if (conf_.max_task_memory_bytes > 0) {
        // The whole-state map (phase-0 start, rollback reload) would hold
        // its entire output until the iteration flush; under a budget,
        // process it in shuffle-batch slices so the governor can ship or
        // spill between them, exactly like the eager streaming path below.
        const std::size_t slice =
            static_cast<std::size_t>(std::max(conf_.buffer_records, 1));
        KVVec chunk;
        for (std::size_t off = 0; off < pending.size(); off += slice) {
          const auto end =
              pending.begin() +
              static_cast<std::ptrdiff_t>(std::min(pending.size(), off + slice));
          chunk.assign(
              std::make_move_iterator(pending.begin() +
                                      static_cast<std::ptrdiff_t>(off)),
              std::make_move_iterator(end));
          process_one2one_batch(chunk);
          flush_buffers(k, /*final_flush=*/false);
          if (map_spill(k)) return;
        }
      } else {
        process_one2one_batch(pending);
      }
      pending = KVVec{};
      if (finish_iteration(k)) return;
      if (profiled) {
        cluster_.telemetry().record_map_iter(
            i, gen, k, ctx.vt().now_ns() - iter_start_vt_ns);
      }
      ++k;
      continue;
    }

    // Collect this iteration's state input.
    int eos_seen = 0;
    KVVec stash;       // buffered batches (sync mode / one2all)
    bool done = false;
    LoopEvent event = LoopEvent::kIterationReady;
    while (!done) {
      // Completion check up front: both the data EOS and (in sync mode) the
      // master's go may arrive in either order.
      if (eos_seen >= eos_target && (!sync_gate || go_allowed >= k)) {
        break;
      }
      auto msg = inbox.next(ctx.vt(), gen, k);
      if (!msg) {
        event = LoopEvent::kClosed;
        break;
      }
      if (msg->kind == NetMessage::Kind::kControl) {
        CtlMsg ctl = CtlMsg::decode(msg->control);
        switch (ctl.type) {
          case CtlType::kTerminate:
          case CtlType::kKill:
            event = LoopEvent::kTerminate;
            done = true;
            break;
          case CtlType::kRollback:
            gen = ctl.generation;
            rollback_to = ctl.iteration;
            event = LoopEvent::kRollback;
            done = true;
            break;
          case CtlType::kResume:
            gen = ctl.generation;
            rollback_to = ctl.iteration;
            event = LoopEvent::kResume;
            done = true;
            break;
          case CtlType::kDelta: {
            // Session update batch for this partition (master is blocked in
            // its ack barrier; every task is parked). The hooks observe the
            // PRE-batch store, then the batch is applied in one pass —
            // exactly how a respawned task replays it from the history.
            if (ctl.generation != gen) break;
            KVVec op_records = msg->take_records();
            std::vector<StaticDeltaOp> ops;
            ops.reserve(op_records.size());
            for (const KV& kv : op_records) {
              ops.push_back(delta_op_from_kv(kv));
            }
            KVVec seeds;
            bool refining = true;
            ThreadCpuTimer delta_cpu;
            for (const StaticDeltaOp& op : ops) {
              const Bytes* old_value = static_store.find(op.key);
              // Hook first: the verdict must be computed for every op so the
              // seed list is deterministic regardless of op order.
              bool op_refines = mapper->perturbed_keys(op, old_value, seeds);
              refining = op_refines && refining;
            }
            static_store.apply_delta(ops);
            ctx.charge_compute(delta_cpu.elapsed_ns());
            cluster_.metrics().inc("imr_delta_ops_applied",
                                   static_cast<int64_t>(ops.size()));
            CtlMsg ack;
            ack.type = CtlType::kDeltaAck;
            ack.task = i;
            ack.iteration = ctl.iteration;
            ack.generation = gen;
            ack.session = ctl.session;
            ack.workset_size = refining ? 1 : 0;
            ack.state_records = static_cast<int64_t>(ops.size());
            NetMessage amsg;
            amsg.kind = NetMessage::Kind::kControl;
            amsg.from_task = i;
            amsg.iteration = ctl.iteration;
            amsg.generation = gen;
            amsg.control = ack.encode();
            amsg.set_records(std::move(seeds));
            ctx.send(*master_ep_, std::move(amsg), TrafficCategory::kControl);
            break;
          }
          case CtlType::kGo:
            go_allowed = std::max(go_allowed, ctl.iteration);
            break;
          default:
            break;
        }
        continue;
      }
      if (msg->kind == NetMessage::Kind::kEos) {
        ++eos_seen;
        continue;
      }
      // Data batch for iteration k.
      if (one2all || (sync_gate && go_allowed < k)) {
        KVVec batch = msg->take_records();
        stash.insert(stash.end(), std::make_move_iterator(batch.begin()),
                     std::make_move_iterator(batch.end()));
      } else {
        // Asynchronous eager processing (§3.3): join+map immediately. The
        // records are only read, so the (possibly shared) payload is used
        // in place.
        process_one2one_batch(msg->records());
        flush_buffers(k, /*final_flush=*/false);
        if (map_spill(k)) return;
      }
    }

    if (event == LoopEvent::kClosed || event == LoopEvent::kTerminate) {
      IMR_DEBUG << tag_ << ": map " << p << "/" << i << " gen " << gen
                << " exiting at iter " << k;
      return;
    }
    if (event == LoopEvent::kRollback || event == LoopEvent::kResume) {
      // Restart from the checkpoint (§3.4) or the session resume point: stale
      // queue contents are filtered by generation (rollback) or stale
      // iteration (resume); reload whatever input the restart point needs.
      // The static store is NOT touched — session mutations are loop-
      // invariant within an epoch and survive rollbacks.
      TraceSpan rb_span(
          event == LoopEvent::kResume ? "session_resume" : "rollback",
          ctx.vt(), rollback_to, gen);
      IMR_DEBUG << tag_ << ": map " << p << "/" << i
                << (event == LoopEvent::kResume ? " resume after "
                                                : " rollback to ")
                << rollback_to << " gen " << gen;
      emitter.clear();
      spills.abandon();
      sync_budget();
      k = rollback_to + 1;
      go_allowed = k;
      if (is_phase0) {
        if (session_baseline_collect(rollback_to)) {
          // Refining baseline: the frontier arrives as the paired reduce's
          // seed batch — start with no pending input.
          have_pending = false;
          pending = KVVec{};
        } else {
          pending = load_map_state(ctx, i, rollback_to, one2all);
          have_pending = true;
        }
      }
      continue;
    }

    if (!stash.empty()) {
      if (one2all) {
        process_one2all(stash);
      } else {
        process_one2one_batch(stash);
      }
    }
    if (finish_iteration(k)) return;
    if (profiled) {
      cluster_.telemetry().record_map_iter(
          i, gen, k, ctx.vt().now_ns() - iter_start_vt_ns);
    }
    IMR_DEBUG << tag_ << ": map " << p << "/" << i << " finished iter " << k
              << " gen " << gen;
    ++k;
  }
}

// ---------------------------------------------------------------------------
// Reduce task
// ---------------------------------------------------------------------------

void JobRun::run_reduce(int p, int i, int gen, int start_iter,
                        int64_t start_vt, int worker,
                        std::shared_ptr<Endpoint> ep) {
  const PhaseConf& ph = conf_.phases[static_cast<std::size_t>(p)];
  const bool last_phase = (p == P_ - 1);
  const bool is_phase0 = (p == 0);
  // Workset mode (DESIGN.md §7): this reduce reconciles each produced value
  // against the key's previous state via IterReducer::merge and ships ONLY
  // the keys whose state changed — the shipped set IS the next iteration's
  // frontier. conf validation guarantees single-phase one2one here.
  const bool workset = conf_.workset_mode;
  const int next_p = (p + 1) % P_;
  const Mapping next_mapping =
      conf_.phases[static_cast<std::size_t>(next_p)].mapping;
  const bool aux_from_reduce =
      conf_.aux && last_phase &&
      conf_.aux->source == AuxConf::Source::kReduceOutput;

  StashedInbox inbox(ep);
  TaskContext ctx(cluster_, red_ep_name(p, i), worker, start_vt);
  EpRow next_maps(*this, EpKind::kMap, next_p);
  EpRow aux_row(*this, EpKind::kAuxMap);
  ctx.charge(cost_.task_init, TimeCategory::kTaskInit);
  cluster_.metrics().inc("imr_persistent_reduce_tasks");
  IMR_DEBUG << tag_ << ": reduce " << p << "/" << i << " gen " << gen
            << " starting at iter " << start_iter << " on worker "
            << ctx.worker();

  // Injection point: a respawned task (gen > 0 means it was just migrated or
  // recovered) dies on startup — a failure during recovery itself, the
  // cascading case of §3.4.2.
  if (gen > 0 &&
      cluster_.consume_fault(ctx.worker(), FaultPoint::kMigration, start_iter,
                             &ctx.vt())) {
    fail_task(ctx, i, start_iter, gen);
    return;
  }

  std::unique_ptr<IterReducer> reducer = ph.reducer();
  reducer->configure(conf_.params);

  // Memory governance (DESIGN.md §10): collected shuffle input is charged
  // against the budget as it arrives. Overflowing sorts the buffer and
  // spills it to MiniDfs as a run; iteration processing then streams a k-way
  // merge over the runs plus the in-memory tail instead of materializing
  // the whole input — byte-identical output either way.
  MemoryBudget budget(conf_.max_task_memory_bytes);
  RecordArena arena(&budget);
  SpillSet spills(cluster_.dfs(), cluster_.metrics(),
                  strprintf("%s/r%d-t%d-g%d", tag_.c_str(), p, i, gen),
                  ctx.worker());
  BudgetHwmGuard hwm_guard{cluster_.metrics(), budget};

  // Previous-iteration state for distance + checkpoints + final dump
  // (§3.1.2: "the reduce tasks save the output from two consecutive
  // iterations and calculate the distance").
  std::unordered_map<Bytes, Bytes> state_map;
  auto load_reduce_state = [&](int ckpt_iter) {
    state_map.clear();
    if (ckpt_iter <= 0) return;
    SessionView sv = session_view();
    if (sv.active && ckpt_iter == sv.base) {
      // Session-epoch baseline: a refining epoch reloads the converged
      // state the quiesce dumped; a reset_all epoch starts empty, exactly
      // like a cold run over the mutated input.
      if (!sv.reset_all) {
        for (KV& kv : ctx.dfs_read_all(sv.baseline_dir + "/part-" +
                                       std::to_string(i))) {
          state_map[std::move(kv.key)] = std::move(kv.value);
        }
      }
      return;
    }
    for (KV& kv : ctx.dfs_read_all(ckpt_path(ckpt_iter) + "/part-" +
                                   std::to_string(i))) {
      state_map[std::move(kv.key)] = std::move(kv.value);
    }
  };
  if (last_phase && start_iter > 1) load_reduce_state(start_iter - 1);
  // Set when the next iteration must open by shipping the session epoch's
  // seed frontier to the paired map (refining epochs only): at resume, and
  // again whenever a rollback lands exactly on the epoch baseline.
  bool pending_seed_ship =
      is_phase0 && session_baseline_collect(start_iter - 1);

  auto dump_state = [&](const std::string& path, VClock* clock,
                        TrafficCategory cat) {
    KVVec sorted;
    sorted.reserve(state_map.size());
    for (const auto& [key, value] : state_map) sorted.emplace_back(key, value);
    sort_records(sorted, /*sort_values=*/false);
    cluster_.dfs().write_file(path + "/part-" + std::to_string(i),
                              std::move(sorted), ctx.worker(), clock, cat);
  };

  int k = start_iter;
  int allowed = start_iter;  // master Continue gate (phase-0 reduces)
  int64_t prev_end_vt = ctx.vt().now_ns();

  while (true) {
    TraceSpan iter_span("reduce_iter", ctx.vt(), k, gen);
    if (pending_seed_ship) {
      // Open the epoch: ship the seed frontier to the paired map, resolving
      // each seed against the converged state (the hook's fallback value
      // covers keys that have none yet). EOS follows immediately — the
      // seeds ARE the paired map's whole iteration-k input.
      pending_seed_ship = false;
      KVVec seeds = session_seeds_for(i);
      for (KV& kv : seeds) {
        auto it = state_map.find(kv.key);
        if (it != state_map.end()) kv.value = it->second;
      }
      cluster_.metrics().inc("imr_session_seed_records",
                             static_cast<int64_t>(seeds.size()));
      if (!seeds.empty()) {
        send_batch(ctx, next_maps.at(i), std::move(seeds), i, k, gen,
                   TrafficCategory::kReduceToMap);
      }
      send_eos(ctx, next_maps.at(i), i, k, gen,
               TrafficCategory::kReduceToMap);
    }
    KVVec records;
    int64_t held = 0;  // budget charge for `records`, released on spill/use
    // Sorts the collected prefix and writes it out as one spill run on
    // stream 0. Returns true when an injected crash killed the task
    // mid-spill (the torn half-run is registered, so the unwind drops it).
    auto spill_collected = [&]() -> bool {
      {
        TraceSpan spill_span("spill_write", ctx.vt(), k, gen);
        {
          ThreadCpuTimer sort_cpu;
          sort_records(records, conf_.deterministic_reduce, arena);
          ctx.charge_compute(sort_cpu.elapsed_ns(), TimeCategory::kSort);
        }
        if (cluster_.consume_fault(ctx.worker(), FaultPoint::kSpillWrite, k,
                                   &ctx.vt())) {
          spills.write_torn_run(0, std::move(records), &ctx.vt());
          fail_task(ctx, i, k, gen);
          return true;
        }
        spills.write_run(0, std::move(records), &ctx.vt());
      }
      records = KVVec{};
      budget.release(held);
      held = 0;
      cluster_.metrics().inc("imr_reduce_spills");
      return false;
    };
    auto charge_collected = [&](std::size_t bytes) {
      budget.charge(static_cast<int64_t>(bytes));
      held += static_cast<int64_t>(bytes);
    };
    int eos_seen = 0;
    int rollback_to = -1;
    LoopEvent event = LoopEvent::kIterationReady;
    bool done = false;
    while (!done) {
      // The gate: iteration k may only be *processed* after the master
      // accepted iteration k-1 (deterministic termination, §3.1.2). Data may
      // be fully collected before the Continue arrives.
      if (eos_seen >= T_ && (!is_phase0 || allowed >= k)) {
        done = true;
        break;
      }
      auto msg = inbox.next(ctx.vt(), gen, k);
      if (!msg) {
        event = LoopEvent::kClosed;
        break;
      }
      if (msg->kind == NetMessage::Kind::kControl) {
        CtlMsg ctl = CtlMsg::decode(msg->control);
        switch (ctl.type) {
          case CtlType::kContinue:
            allowed = std::max(allowed, ctl.iteration + 1);
            break;
          case CtlType::kTerminate:
            event = LoopEvent::kTerminate;
            done = true;
            break;
          case CtlType::kKill:
            event = LoopEvent::kKill;
            done = true;
            break;
          case CtlType::kRollback:
            gen = ctl.generation;
            rollback_to = ctl.iteration;
            event = LoopEvent::kRollback;
            done = true;
            break;
          case CtlType::kResume:
            gen = ctl.generation;
            rollback_to = ctl.iteration;
            event = LoopEvent::kResume;
            done = true;
            break;
          case CtlType::kConvergedCkpt: {
            // Session quiesce: dump the epoch baseline checkpoint and ack,
            // then keep collecting (parked). Written on the task clock —
            // the quiesce IS a barrier, unlike periodic checkpoints.
            if (ctl.generation != gen) break;
            if (cluster_.consume_fault(ctx.worker(),
                                       FaultPoint::kCheckpointWrite,
                                       ctl.iteration, &ctx.vt())) {
              // Torn baseline: half the state lands, then the task dies.
              // Recovery rolls the epoch back and re-quiesces; the retry
              // overwrites the torn part file.
              KVVec torn;
              torn.reserve(state_map.size() / 2);
              for (const auto& [key, value] : state_map) {
                if (torn.size() >= state_map.size() / 2) break;
                torn.emplace_back(key, value);
              }
              sort_records(torn, /*sort_values=*/false);
              cluster_.dfs().write_file(
                  converged_path(ctl.session) + "/part-" + std::to_string(i),
                  std::move(torn), ctx.worker(), &ctx.vt(),
                  TrafficCategory::kCheckpoint);
              cluster_.metrics().inc("imr_torn_checkpoints");
              fail_task(ctx, i, ctl.iteration, gen);
              return;
            }
            dump_state(converged_path(ctl.session), &ctx.vt(),
                       TrafficCategory::kCheckpoint);
            cluster_.metrics().inc("imr_converged_checkpoints");
            CtlMsg ack;
            ack.type = CtlType::kCkptAck;
            ack.task = i;
            ack.iteration = ctl.iteration;
            ack.generation = gen;
            ack.session = ctl.session;
            ack.state_records = static_cast<int64_t>(state_map.size());
            task_send_ctl(ctx, ack);
            break;
          }
          default:
            break;
        }
        continue;
      }
      if (msg->kind == NetMessage::Kind::kEos) {
        ++eos_seen;
        IMR_DEBUG << tag_ << ": reduce " << p << "/" << i << " gen " << gen
                  << " iter " << k << " eos " << eos_seen << "/" << T_
                  << " from " << msg->from_task;
      } else if (!msg->control.empty()) {
        // Aggregated frame (DESIGN.md §9): one payload carrying every
        // partition homed on this worker; slice out our own record range.
        // The buffer is shared with sibling mailboxes — copy, never
        // take_records. The frame is flushed at the sender's iteration
        // barrier, so it IS that map's EOS for this reduce — count it even
        // when it carries no range for us.
        ByteReader hr(msg->control);
        const KVVec& all = msg->records();
        for (uint32_t n = hr.u32(); n > 0; --n) {
          uint32_t task = hr.u32();
          uint32_t begin = hr.u32();
          uint32_t end = hr.u32();
          if (task != static_cast<uint32_t>(i)) continue;
          IMR_CHECK(begin <= end && end <= all.size());
          records.insert(records.end(), all.begin() + begin,
                         all.begin() + end);
          if (budget.limited()) {
            std::size_t sliced = 0;
            for (uint32_t x = begin; x < end; ++x) sliced += all[x].wire_size();
            charge_collected(sliced);
          }
        }
        if (budget.over() && !records.empty()) {
          if (spill_collected()) return;
        }
        ++eos_seen;
        IMR_DEBUG << tag_ << ": reduce " << p << "/" << i << " gen " << gen
                  << " iter " << k << " agg frame eos " << eos_seen << "/"
                  << T_ << " from " << msg->from_task;
      } else {
        KVVec batch = msg->take_records();
        const std::size_t batch_bytes =
            budget.limited() ? wire_size(batch) : 0;
        if (records.empty()) {
          records = std::move(batch);
        } else {
          records.insert(records.end(),
                         std::make_move_iterator(batch.begin()),
                         std::make_move_iterator(batch.end()));
        }
        if (budget.limited()) {
          charge_collected(batch_bytes);
          if (budget.over() && !records.empty()) {
            if (spill_collected()) return;
          }
        }
      }
    }

    if (event == LoopEvent::kClosed || event == LoopEvent::kKill) {
      IMR_DEBUG << tag_ << ": reduce " << p << "/" << i << " gen " << gen
                << " exiting at iter " << k;
      return;
    }
    if (event == LoopEvent::kTerminate) {
      if (last_phase) {
        // Dump the final state to DFS — the single output write of the whole
        // iterative run (§3.1, Fig. 1b).
        dump_state(conf_.output_path, &ctx.vt(), TrafficCategory::kDfsWrite);
        CtlMsg done_msg;
        done_msg.type = CtlType::kDone;
        done_msg.task = i;
        done_msg.iteration = k - 1;
        done_msg.generation = gen;
        done_msg.state_records = static_cast<int64_t>(state_map.size());
        task_send_ctl(ctx, done_msg);
      }
      return;
    }
    if (event == LoopEvent::kRollback || event == LoopEvent::kResume) {
      TraceSpan rb_span(
          event == LoopEvent::kResume ? "session_resume" : "rollback",
          ctx.vt(), rollback_to, gen);
      IMR_DEBUG << tag_ << ": reduce " << p << "/" << i
                << (event == LoopEvent::kResume ? " resume after "
                                                : " rollback to ")
                << rollback_to << " gen " << gen;
      spills.abandon();
      budget.release(held);
      held = 0;
      k = rollback_to + 1;
      allowed = k;
      if (event == LoopEvent::kResume) {
        // The live state_map IS the refining epoch's baseline — no reload.
        // A reset_all epoch discards it (and ships no seeds: the maps
        // reload the initial state themselves, replaying the cold run).
        SessionView sv = session_view();
        if (sv.reset_all) {
          state_map.clear();
          pending_seed_ship = false;
        } else {
          pending_seed_ship = is_phase0;
        }
      } else {
        if (last_phase) load_reduce_state(rollback_to);
        pending_seed_ship =
            is_phase0 && session_baseline_collect(rollback_to);
      }
      prev_end_vt = ctx.vt().now_ns();
      continue;
    }

    // --- process iteration k ---
    // Report the task's own processing span (§3.4.2's "processing time for
    // that iteration"): from all-inputs-ready to completion. Wall duration
    // would be useless for balancing — every reduce waits on the globally
    // slowest map, so wall times are nearly identical across workers.
    prev_end_vt = ctx.vt().now_ns();
    const bool spilled = spills.has_runs(0);
    {
      // With spilled runs, `records` is the in-memory TAIL: sorted here with
      // the same comparator the runs were sorted with, it becomes the merge's
      // last source.
      TraceSpan sort_span("sort", ctx.vt(), k, gen);
      ThreadCpuTimer sort_cpu;
      sort_records(records, conf_.deterministic_reduce, arena);
      ctx.charge_compute(sort_cpu.elapsed_ns(), TimeCategory::kSort);
    }

    // Run the reduce function over the key groups, STREAMING the output to
    // the next phase's maps in buffer-sized batches as it is produced
    // (§3.3: "as the buffer size grows larger than a threshold, the data are
    // sent to the corresponding map task"). In asynchronous mode the paired
    // map joins and processes these early batches while this reduce is still
    // working on later keys — the genuine pipelining the async curves
    // measure. Distance and state bookkeeping happen inline.
    const int out_iter = next_p == 0 ? k + 1 : k;
    const TrafficCategory cat = next_mapping == Mapping::kOne2All
                                    ? TrafficCategory::kBroadcast
                                    : TrafficCategory::kReduceToMap;
    auto ship_batch = [&](KVVec batch) {
      if (next_mapping == Mapping::kOne2All) {
        // One shared payload for all T map tasks: the fabric enqueues T
        // handles to one records buffer (each charged its full wire size)
        // instead of T deep copies.
        NetMessage msg;
        msg.kind = NetMessage::Kind::kData;
        msg.from_task = i;
        msg.iteration = out_iter;
        msg.generation = gen;
        msg.set_records(std::move(batch));
        ctx.broadcast(next_maps.row(), msg, cat);
      } else {
        send_batch(ctx, next_maps.at(i), std::move(batch), i, out_iter, gen,
                   cat);
      }
    };

    // Whether iteration k checkpoints — decided up front so the workset
    // changed-set can be collected inline while the groups stream through.
    const bool ckpt_due = last_phase && conf_.checkpoint_every > 0 &&
                          k % conf_.checkpoint_every == 0;
    KVVec output;  // full iteration output, kept for the aux copy
    KVVec ckpt_workset;  // changed records of a checkpoint iteration
    KVVec pending_batch;
    double local_distance = 0;
    int64_t changed_count = 0;
    static const Bytes kNoPrev;
    ThreadCpuTimer cpu;
    KVVec produced;
    // Per-group body shared by the in-memory cursor and the spilled-merge
    // stream — one body is what keeps budgeted output byte-identical to the
    // unlimited run (same groups, same order, same batching thresholds).
    auto reduce_group = [&](const Bytes& group_key,
                            const std::vector<Bytes>& group_values) {
      produced.clear();
      CollectEmitter group_emitter(produced);
      reducer->reduce(group_key, group_values, group_emitter);
      for (KV& kv : produced) {
        if (workset) {
          // Reconcile against the previous state. Only keys whose merged
          // value differs enter the next frontier; an unchanged key ships
          // nothing, so the paired map never revisits it.
          auto it = state_map.find(kv.key);
          const Bytes& prev = it == state_map.end() ? kNoPrev : it->second;
          Bytes merged = reducer->merge(kv.key, prev, kv.value);
          local_distance += reducer->distance(kv.key, prev, merged);
          if (it != state_map.end() && merged == it->second) continue;
          if (it == state_map.end()) {
            state_map.emplace(kv.key, merged);
          } else {
            it->second = merged;
          }
          kv.value = std::move(merged);
          ++changed_count;
          if (ckpt_due) ckpt_workset.push_back(kv);
          pending_batch.push_back(std::move(kv));
          continue;
        }
        if (last_phase) {
          auto it = state_map.find(kv.key);
          const Bytes& prev = it == state_map.end() ? Bytes{} : it->second;
          local_distance += reducer->distance(kv.key, prev, kv.value);
          state_map[kv.key] = kv.value;
        }
        if (aux_from_reduce) output.push_back(kv);
        pending_batch.push_back(std::move(kv));
      }
      if (pending_batch.size() >=
          static_cast<std::size_t>(conf_.buffer_records)) {
        // Charge the compute consumed so far, then ship — the batch's
        // availability time reflects the work done to produce it.
        ctx.charge_compute(cpu.elapsed_ns());
        cpu.reset();
        ship_batch(std::move(pending_batch));
        pending_batch = KVVec{};
      }
    };
    if (!spilled) {
      // Zero-copy grouping: the cursor walks key runs in place and the
      // values adapter MOVES each run's values out of `records` (consumed by
      // this pass) instead of deep-copying them per group.
      GroupCursor groups(records);
      GroupValues group_vals;
      while (groups.next()) {
        reduce_group(groups.key(), group_vals.take(records, groups));
      }
    } else {
      // Out-of-core path (DESIGN.md §10): stream the k-way merge over the
      // spilled runs plus the sorted in-memory tail. Each source is sorted
      // with the same comparator and the cursor breaks ties by source index
      // in write order, so the merged stream IS sort_records() of the full
      // input — groups arrive in the same order with the same values, never
      // materializing more than one group plus k read-ahead chunks.
      auto run_cursors = spills.sources(0, &ctx.vt());
      std::vector<RecordSource*> cursors;
      cursors.reserve(run_cursors.size() + 1);
      for (const auto& c : run_cursors) cursors.push_back(c.get());
      VecSource tail(records);
      cursors.push_back(&tail);
      MergeCursor merge(cursors,
                        /*compare_values=*/conf_.deterministic_reduce);
      KV rec;
      Bytes group_key;
      std::vector<Bytes> group_values;
      bool in_group = false;
      while (merge.next(rec)) {
        if (!in_group || rec.key != group_key) {
          if (in_group) reduce_group(group_key, group_values);
          group_key = std::move(rec.key);
          group_values.clear();
          in_group = true;
        }
        group_values.push_back(std::move(rec.value));
      }
      if (in_group) reduce_group(group_key, group_values);
      spills.consume(0);
      cluster_.metrics().inc("imr_reduce_merges");
    }
    ctx.charge_compute(cpu.elapsed_ns());
    budget.release(held);
    held = 0;
    // Injection point: died mid reduce->map push — earlier batches of this
    // iteration are already out, the tail and all EOS markers are not.
    if (cluster_.consume_fault(ctx.worker(), FaultPoint::kStatePush, k,
                               &ctx.vt())) {
      fail_task(ctx, i, k, gen);
      return;
    }
    if (!pending_batch.empty()) ship_batch(std::move(pending_batch));
    if (next_mapping == Mapping::kOne2All) {
      for (int m = 0; m < T_; ++m) {
        send_eos(ctx, next_maps.at(m), i, out_iter, gen, cat);
      }
    } else {
      send_eos(ctx, next_maps.at(i), i, out_iter, gen, cat);
    }

    // Checkpoint (§3.4.1) — written in parallel with the iteration, so it is
    // charged on a detached clock and does not delay the pipeline.
    if (ckpt_due) {
      VClock parallel_clock(ctx.vt().now_ns());
      // Injection point: died DURING the checkpoint dump, leaving a torn
      // (truncated) part file behind. Because the Report for iteration k is
      // only sent after the dump, the master never collects all of k's
      // reports and so never advances last_ckpt to k — recovery always
      // restores the previous complete checkpoint, never this torn one
      // (§3.4.1 write-then-report ordering; pinned by a regression test).
      if (cluster_.consume_fault(ctx.worker(), FaultPoint::kCheckpointWrite, k,
                                 &ctx.vt())) {
        KVVec torn;
        torn.reserve(state_map.size() / 2);
        for (const auto& [key, value] : state_map) {
          if (torn.size() >= state_map.size() / 2) break;
          torn.emplace_back(key, value);
        }
        sort_records(torn, /*sort_values=*/false);
        cluster_.dfs().write_file(ckpt_path(k) + "/part-" + std::to_string(i),
                                  std::move(torn), ctx.worker(),
                                  &parallel_clock,
                                  TrafficCategory::kCheckpoint);
        cluster_.metrics().inc("imr_torn_checkpoints");
        fail_task(ctx, i, k, gen);
        return;
      }
      {
        // The span lives on the detached parallel clock, so its end ts can
        // overrun the enclosing iteration span — nesting is by event order.
        TraceSpan ckpt_span("checkpoint", parallel_clock, k, gen);
        dump_state(ckpt_path(k), &parallel_clock,
                   TrafficCategory::kCheckpoint);
        if (workset) {
          // The changed-set rides along with the full state: recovery
          // restores the exact frontier of iteration k, so the replay is
          // record-identical to the fault-free run (replaying the full
          // state would double-apply updates for accumulative reducers).
          sort_records(ckpt_workset, /*sort_values=*/false);
          cluster_.dfs().write_file(
              ckpt_path(k) + "/workset-" + std::to_string(i),
              std::move(ckpt_workset), ctx.worker(), &parallel_clock,
              TrafficCategory::kCheckpoint);
        }
      }
      cluster_.metrics().inc("imr_checkpoints");
    }

    // Copy to a reduce-sourced auxiliary phase (§5.3).
    if (aux_from_reduce) {
      const int num_aux = static_cast<int>(aux_row.row().size());
      TaskEmitter aux_emit(1, num_aux);
      for (const KV& kv : output) aux_emit.side(kv.key, kv.value);
      for (int a = 0; a < num_aux; ++a) {
        KVVec& buf = aux_emit.aux_buffers()[static_cast<std::size_t>(a)];
        if (!buf.empty()) {
          send_batch(ctx, aux_row.at(a), std::move(buf), i, k, gen,
                     TrafficCategory::kShuffle);
        }
        send_eos(ctx, aux_row.at(a), i, k, gen, TrafficCategory::kShuffle);
      }
    }

    // Injection point (§3.4.1, the classic one): died at the iteration
    // boundary, after all of iteration k's work. Consuming the event (rather
    // than querying it) guarantees a scheduled failure trips exactly once —
    // a stale schedule can never leak into a later job on the same cluster.
    if (cluster_.consume_fault(ctx.worker(), FaultPoint::kIterationBoundary, k,
                               &ctx.vt())) {
      fail_task(ctx, i, k, gen);
      return;
    }

    // Iteration completion report (§3.4.2).
    if (last_phase) {
      IMR_DEBUG << tag_ << ": reduce " << p << "/" << i << " reporting iter "
                << k << " gen " << gen;
      CtlMsg report;
      report.type = CtlType::kReport;
      report.task = i;
      report.iteration = k;
      report.generation = gen;
      report.worker = ctx.worker();
      report.distance = local_distance;
      report.duration_ns = ctx.vt().now_ns() - prev_end_vt;
      report.workset_size = workset ? changed_count : 0;
      if (TelemetryRecorder::enabled()) {
        int64_t sb = 0;
        for (const auto& [key, value] : state_map) {
          sb += static_cast<int64_t>(key.size() + value.size());
        }
        report.state_bytes = sb;
      }
      task_send_ctl(ctx, report);
    }
    prev_end_vt = ctx.vt().now_ns();
    ++k;
  }
}

// ---------------------------------------------------------------------------
// Auxiliary phase tasks (§5.3)
// ---------------------------------------------------------------------------

void JobRun::run_aux_map(int j, int gen, int start_iter,
                         std::shared_ptr<Endpoint> ep) {
  StashedInbox inbox(ep);
  TaskContext ctx(cluster_, tag_ + "/aux/m" + std::to_string(j),
                  ep->home_worker(), 0);
  EpRow red_row(*this, EpKind::kAuxReduce);
  ctx.charge(cost_.task_init, TimeCategory::kTaskInit);

  std::unique_ptr<IterMapper> mapper = conf_.aux->mapper();
  mapper->configure(conf_.params);
  TaskEmitter emitter(aux_reduces_, 0);
  static const Bytes kEmpty;

  int k = start_iter;
  while (true) {
    TraceSpan iter_span("aux_map_iter", ctx.vt(), k, gen);
    int eos_seen = 0;
    int rollback_to = -1;
    LoopEvent event = LoopEvent::kIterationReady;
    while (eos_seen < T_) {
      auto msg = inbox.next(ctx.vt(), gen, k);
      if (!msg) return;
      if (msg->kind == NetMessage::Kind::kControl) {
        CtlMsg ctl = CtlMsg::decode(msg->control);
        if (ctl.type == CtlType::kTerminate || ctl.type == CtlType::kKill) {
          event = LoopEvent::kTerminate;
          break;
        }
        if (ctl.type == CtlType::kRollback) {
          gen = ctl.generation;
          rollback_to = ctl.iteration;
          event = LoopEvent::kRollback;
          break;
        }
        continue;
      }
      if (msg->kind == NetMessage::Kind::kEos) {
        ++eos_seen;
        continue;
      }
      ThreadCpuTimer cpu;
      for (const KV& kv : msg->records()) {
        mapper->map(kv.key, kv.value, kEmpty, emitter);
      }
      ctx.charge_compute(cpu.elapsed_ns());
    }
    if (event == LoopEvent::kTerminate) return;
    if (event == LoopEvent::kRollback) {
      // The main phase re-executes from the checkpoint and re-sends this
      // data under the new generation. Drop the partially collected
      // iteration — including whatever the eager mapper already absorbed —
      // and resume where the main phase resumes.
      mapper = conf_.aux->mapper();
      mapper->configure(conf_.params);
      emitter.clear();
      k = rollback_to + 1;
      continue;
    }
    {
      ThreadCpuTimer cpu;
      mapper->flush(emitter);
      ctx.charge_compute(cpu.elapsed_ns());
    }
    for (int r = 0; r < aux_reduces_; ++r) {
      KVVec& buf = emitter.buffers()[static_cast<std::size_t>(r)];
      if (!buf.empty()) {
        send_batch(ctx, red_row.at(r), std::move(buf), j, k, gen,
                   TrafficCategory::kShuffle);
        buf = KVVec{};
      }
      send_eos(ctx, red_row.at(r), j, k, gen, TrafficCategory::kShuffle);
    }
    ++k;
  }
}

void JobRun::run_aux_reduce(int j, int gen, int start_iter,
                            std::shared_ptr<Endpoint> ep) {
  StashedInbox inbox(ep);
  TaskContext ctx(cluster_, tag_ + "/aux/r" + std::to_string(j),
                  ep->home_worker(), 0);
  ctx.charge(cost_.task_init, TimeCategory::kTaskInit);

  std::unique_ptr<IterReducer> reducer = conf_.aux->reducer();
  reducer->configure(conf_.params);

  int k = start_iter;
  while (true) {
    TraceSpan iter_span("aux_reduce_iter", ctx.vt(), k, gen);
    KVVec records;
    int eos_seen = 0;
    int rollback_to = -1;
    LoopEvent event = LoopEvent::kIterationReady;
    while (eos_seen < T_) {  // one aux map per pair
      auto msg = inbox.next(ctx.vt(), gen, k);
      if (!msg) return;
      if (msg->kind == NetMessage::Kind::kControl) {
        CtlMsg ctl = CtlMsg::decode(msg->control);
        if (ctl.type == CtlType::kTerminate || ctl.type == CtlType::kKill) {
          event = LoopEvent::kTerminate;
          break;
        }
        if (ctl.type == CtlType::kRollback) {
          gen = ctl.generation;
          rollback_to = ctl.iteration;
          event = LoopEvent::kRollback;
          break;
        }
        continue;
      }
      if (msg->kind == NetMessage::Kind::kEos) {
        ++eos_seen;
      } else {
        KVVec batch = msg->take_records();
        records.insert(records.end(),
                       std::make_move_iterator(batch.begin()),
                       std::make_move_iterator(batch.end()));
      }
    }
    if (event == LoopEvent::kTerminate) return;
    if (event == LoopEvent::kRollback) {
      // Partial collections are dropped; the aux maps re-send everything
      // from the rollback point under the new generation.
      k = rollback_to + 1;
      continue;
    }

    ThreadCpuTimer cpu;
    sort_records(records, conf_.deterministic_reduce);
    KVVec output;
    CollectEmitter out(output);
    GroupCursor groups(records);
    GroupValues group_vals;
    while (groups.next()) {
      reducer->reduce(groups.key(), group_vals.take(records, groups), out);
    }
    ctx.charge_compute(cpu.elapsed_ns());

    for (const KV& kv : output) {
      if (kv.key == kTerminateSignalKey) {
        CtlMsg sig;
        sig.type = CtlType::kAuxSignal;
        sig.task = j;
        sig.iteration = k;
        sig.generation = gen;
        task_send_ctl(ctx, sig);
        cluster_.metrics().inc("imr_aux_signals");
      }
    }
    ++k;
  }
}

// ---------------------------------------------------------------------------
// Master
// ---------------------------------------------------------------------------

void JobRun::master_loop() {
  // Protocol state lives in members (a session re-enters this loop once per
  // epoch); the aliases keep the body identical to the single-run shape.
  VClock& mvt = mvt_;
  std::map<int, PendingIter>& pending = pending_;
  int& generation = generation_;
  int& decided = decided_;
  int& last_ckpt = last_ckpt_;
  int& aux_stop_at = aux_stop_at_;
  int& last_migration_iter = last_migration_iter_;
  std::set<int>& dead_workers = dead_workers_;
  bool& terminating = terminating_;
  int& done_count = done_count_;
  Histogram& iter_hist = cluster_.metrics().histogram("iteration_wall_us");
  double& last_decided_wall_ms = last_decided_wall_ms_;

  auto broadcast_terminate = [&](int iter) {
    terminating = true;
    TraceRecorder::instance().instant("terminate", mvt.now_ns(), iter,
                                      generation);
    CtlMsg t;
    t.type = CtlType::kTerminate;
    t.iteration = iter;
    t.generation = generation;
    for (auto& ep : all_endpoints()) master_send(mvt, *ep, t);
    cluster_.metrics().inc("imr_terminate_broadcasts");
  };

  // Respawn `pairs` on `targets` and roll everything back to `ckpt_iter`.
  auto respawn_and_rollback = [&](const std::vector<int>& pairs,
                                  const std::vector<int>& targets,
                                  int ckpt_iter) {
    ++generation;
    const bool has_aux = conf_.aux.has_value();
    // Aux reduces are not pair-homed; the ones stranded on a worker the
    // master no longer trusts respawn on the recovery targets.
    std::vector<int> moved_aux_reduces;
    if (has_aux) {
      for (int j = 0; j < aux_reduces_; ++j) {
        if (!cluster_.worker_alive(aux_red_ep(j)->home_worker())) {
          moved_aux_reduces.push_back(j);
        }
      }
    }
    // Kill the old tasks of the moved pairs (their endpoints are about to be
    // replaced; the kill lands in the old objects). Aux maps are co-located
    // with their pair and move with it.
    CtlMsg kill;
    kill.type = CtlType::kKill;
    kill.generation = generation;
    for (int idx : pairs) {
      for (int p = 0; p < P_; ++p) {
        master_send(mvt, *map_ep(p, idx), kill);
        master_send(mvt, *red_ep(p, idx), kill);
      }
      if (has_aux) master_send(mvt, *aux_map_ep(idx), kill);
    }
    for (int j : moved_aux_reduces) master_send(mvt, *aux_red_ep(j), kill);
    // Fresh endpoints homed on the new workers, then fresh pair threads.
    {
      std::lock_guard<std::mutex> lock(ep_mu_);
      for (std::size_t n = 0; n < pairs.size(); ++n) {
        int idx = pairs[n];
        int target = targets[n];
        for (int p = 0; p < P_; ++p) {
          map_ep_[static_cast<std::size_t>(p)][static_cast<std::size_t>(idx)] =
              cluster_.fabric().create_endpoint(map_ep_name(p, idx), target);
          red_ep_[static_cast<std::size_t>(p)][static_cast<std::size_t>(idx)] =
              cluster_.fabric().create_endpoint(red_ep_name(p, idx), target);
        }
        if (has_aux) {
          aux_map_ep_[static_cast<std::size_t>(idx)] =
              cluster_.fabric().create_endpoint(
                  tag_ + "/aux/m" + std::to_string(idx), target);
        }
      }
      for (int j : moved_aux_reduces) {
        aux_red_ep_[static_cast<std::size_t>(j)] =
            cluster_.fabric().create_endpoint(
                tag_ + "/aux/r" + std::to_string(j),
                targets[static_cast<std::size_t>(j) % targets.size()]);
      }
      // Publish the swap to the EpRow caches.
      ep_epoch_.fetch_add(1, std::memory_order_release);
    }
    for (std::size_t n = 0; n < pairs.size(); ++n) {
      set_pair_worker(pairs[n], targets[n]);
      spawn_pair(pairs[n], generation, ckpt_iter + 1, mvt.now_ns());
    }
    if (has_aux) {
      for (int idx : pairs) {
        auto aep = aux_map_ep(idx);
        spawn([this, idx, aep, g = generation, s = ckpt_iter + 1] {
          run_aux_map(idx, g, s, aep);
        });
      }
      for (int j : moved_aux_reduces) {
        auto aep = aux_red_ep(j);
        spawn([this, j, aep, g = generation, s = ckpt_iter + 1] {
          run_aux_reduce(j, g, s, aep);
        });
      }
    }
    // Roll every other pair back to the checkpoint (§3.4.2 step 3), and the
    // surviving aux tasks with them — an aux task left at the old generation
    // would stash the re-sent data forever and never signal again.
    CtlMsg rb;
    rb.type = CtlType::kRollback;
    rb.iteration = ckpt_iter;
    rb.generation = generation;
    for (int idx = 0; idx < T_; ++idx) {
      if (std::find(pairs.begin(), pairs.end(), idx) != pairs.end()) continue;
      for (int p = 0; p < P_; ++p) {
        master_send(mvt, *map_ep(p, idx), rb);
        master_send(mvt, *red_ep(p, idx), rb);
      }
      if (has_aux) master_send(mvt, *aux_map_ep(idx), rb);
    }
    for (int j = 0; j < aux_reduces_; ++j) {
      if (std::find(moved_aux_reduces.begin(), moved_aux_reduces.end(), j) !=
          moved_aux_reduces.end()) {
        continue;
      }
      master_send(mvt, *aux_red_ep(j), rb);
    }
    pending.clear();
    decided = ckpt_iter;
    // A partially collected quiesce is void too: the epoch re-converges and
    // re-quiesces under the new generation (stale acks are gen-filtered).
    ckpt_acks_ = 0;
    // A convergence verdict reached under the old generation is void: the
    // rolled-back iterations will re-run and re-signal if still converged.
    aux_stop_at = INT32_MAX;
    // Iterations past the checkpoint will be re-reported under the new
    // generation; keeping the first-run entries would leave duplicate (and
    // non-monotonic) per-iteration stats in the report.
    while (!report_.iterations.empty() &&
           report_.iterations.back().iteration > ckpt_iter) {
      report_.iterations.pop_back();
    }
    while (!telemetry_iters_.empty() &&
           telemetry_iters_.back().iteration > ckpt_iter) {
      telemetry_iters_.pop_back();
    }
    report_.rollback_iterations.push_back(ckpt_iter);
  };

  // close_session() re-enters the loop one last time to terminate the
  // parked tasks and collect their Done notices.
  if (close_requested_ && !terminating) broadcast_terminate(decided);

  while (done_count < T_ && !quiesced_) {
    auto msg = master_ep_->receive(mvt);
    if (!msg) break;
    if (msg->kind != NetMessage::Kind::kControl) continue;
    CtlMsg ctl = CtlMsg::decode(msg->control);
    IMR_DEBUG << tag_ << ": master ctl type " << static_cast<int>(ctl.type)
              << " task " << ctl.task << " iter " << ctl.iteration << " gen "
              << ctl.generation << " (decided " << decided << " gen "
              << generation << ")";

    switch (ctl.type) {
      case CtlType::kDone: {
        ++done_count;
        final_vt_ = std::max(final_vt_, mvt.now_ns());
        // Output-consistency audit: the iteration each part file was dumped
        // at (the InvariantChecker asserts they all agree), plus the part's
        // record count for the state-conservation rule.
        report_.final_part_iterations.push_back(ctl.iteration);
        report_.final_state_records += ctl.state_records;
        break;
      }
      case CtlType::kCkptAck: {
        // Session quiesce barrier: all T_ baseline checkpoints written.
        if (ctl.generation != generation || ctl.session != session_id_) break;
        if (++ckpt_acks_ >= T_) quiesced_ = true;
        break;
      }
      case CtlType::kAuxSignal: {
        // A signal computed from pre-rollback data must not stop the
        // re-executed run.
        if (ctl.generation != generation) {
          TraceRecorder::instance().instant("aux_signal_rejected",
                                            mvt.now_ns(), ctl.iteration,
                                            ctl.generation);
          break;
        }
        TraceRecorder::instance().instant("aux_signal_accepted", mvt.now_ns(),
                                          ctl.iteration, ctl.generation);
        // Terminate at the NEXT decision boundary, not immediately: the
        // Continue for iteration `decided` is already out, so reduce tasks
        // may legitimately be applying iteration decided+1 — stopping
        // mid-flight would leave a mixed final state. Deferring keeps every
        // part file at the same iteration.
        if (!terminating) {
          aux_stop_at = std::min(aux_stop_at, std::max(decided + 1,
                                                       ctl.iteration));
        }
        break;
      }
      case CtlType::kFailure: {
        if (terminating || dead_workers.count(ctl.worker)) break;
        dead_workers.insert(ctl.worker);
        cluster_.mark_dead(ctl.worker);
        cluster_.metrics().inc("imr_recoveries");
        TraceRecorder::instance().instant("worker_failure", mvt.now_ns(),
                                          ctl.iteration, generation);
        IMR_WARN << tag_ << ": worker " << ctl.worker
                 << " failed at iteration " << ctl.iteration
                 << "; rolling back to checkpoint " << last_ckpt;
        // All pairs on the dead worker move to the least-loaded live worker.
        std::vector<int> pairs;
        std::vector<int> targets;
        std::map<int, int> load;
        for (int idx = 0; idx < T_; ++idx) {
          int w = pair_worker(idx);
          if (w == ctl.worker) {
            pairs.push_back(idx);
          } else {
            ++load[w];
          }
        }
        for (int w = 0; w < cluster_.num_workers(); ++w) {
          if (cluster_.worker_alive(w) && !load.count(w)) load[w] = 0;
        }
        for (std::size_t n = 0; n < pairs.size(); ++n) {
          auto best = std::min_element(
              load.begin(), load.end(),
              [](const auto& a, const auto& b) { return a.second < b.second; });
          IMR_CHECK_MSG(best != load.end(), "no live worker for recovery");
          targets.push_back(best->first);
          ++best->second;
        }
        {
          TraceSpan recovery_span("recovery", mvt, last_ckpt, generation);
          respawn_and_rollback(pairs, targets, last_ckpt);
        }
        break;
      }
      case CtlType::kReport: {
        if (terminating || ctl.generation != generation) break;
        PendingIter& pi = pending[ctl.iteration];
        ++pi.reports;
        pi.distance += ctl.distance;
        pi.workset += ctl.workset_size;
        int64_t& dur = pi.worker_dur[ctl.worker];
        dur = std::max(dur, ctl.duration_ns);
        if (TelemetryRecorder::enabled()) {
          int64_t& td = pi.task_dur[ctl.task];
          td = std::max(td, ctl.duration_ns);
          pi.task_state_bytes[ctl.task] = ctl.state_bytes;
          const int64_t vr = msg->vt_ready;
          if (vr > pi.straggler_vt ||
              (vr == pi.straggler_vt &&
               (pi.straggler_task == -1 || ctl.task < pi.straggler_task))) {
            pi.straggler_vt = vr;
            pi.straggler_task = ctl.task;
            pi.straggler_worker = ctl.worker;
            pi.straggler_dur = ctl.duration_ns;
          }
        }
        if (ctl.iteration != decided + 1 || pi.reports < T_) break;

        // --- decision for iteration `decided + 1` ---
        decided = ctl.iteration;
        PendingIter done_iter = pi;
        pending.erase(ctl.iteration);
        if (conf_.checkpoint_every > 0 &&
            decided % conf_.checkpoint_every == 0) {
          last_ckpt = decided;
        }
        {
          IterationStat st;
          st.iteration = decided;
          st.wall_ms_end = mvt.now_ms();
          st.distance = done_iter.distance;
          st.session = session_id_;
          if (conf_.workset_mode) st.workset_size = done_iter.workset;
          report_.iterations.push_back(st);
          iter_hist.record(static_cast<int64_t>(
              (st.wall_ms_end - last_decided_wall_ms) * 1000.0));
          last_decided_wall_ms = st.wall_ms_end;
        }
        if (TelemetryRecorder::enabled()) {
          // Master-side slice of the iteration record; the ledger's fabric
          // buckets (bytes, msgs, queue HWM, map durations) join in at
          // finish(), once the task threads are quiescent.
          IterTelemetry it;
          it.iteration = decided;
          it.generation = generation;
          it.session = session_id_;
          it.vt_ms = mvt.now_ms();
          it.distance = done_iter.distance;
          if (conf_.workset_mode) it.workset = done_iter.workset;
          int64_t max_dur = 0;
          for (const auto& [t, ns] : done_iter.task_dur) {
            it.task_ms[t] = static_cast<double>(ns) / 1e6;
            max_dur = std::max(max_dur, ns);
          }
          it.reduce_ms = static_cast<double>(max_dur) / 1e6;
          it.state_bytes = done_iter.task_state_bytes;
          it.straggler_task = done_iter.straggler_task;
          it.straggler_worker = done_iter.straggler_worker;
          it.straggler_ms =
              static_cast<double>(done_iter.straggler_dur) / 1e6;
          telemetry_iters_.push_back(std::move(it));
        }
        TraceRecorder::instance().instant("iteration_decided", mvt.now_ns(),
                                          decided, generation);
        if (conf_.workset_mode) {
          TraceRecorder::instance().counter("workset_size", mvt.now_ns(),
                                            done_iter.workset);
        }
        cluster_.metrics().inc("imr_iterations");
        IMR_INFO << tag_ << " iteration " << decided << " done at "
                 << mvt.now_ms() << " ms, distance " << done_iter.distance;

        // Drain termination (DESIGN.md §7): a workset run whose merged
        // changed-record count hits zero has reached its fixpoint — nothing
        // would be mapped next iteration, so the job stops here.
        // Each session epoch gets a fresh max_iterations budget counted
        // from its resume base (epoch_base_ is 0 outside sessions, so this
        // is the plain `decided >= max_iterations` for normal runs).
        const bool drained = conf_.workset_mode && done_iter.workset == 0;
        const bool budget_spent =
            decided - epoch_base_ >= conf_.max_iterations;
        bool stop = budget_spent ||
                    (conf_.distance_threshold >= 0 &&
                     done_iter.distance < conf_.distance_threshold) ||
                    drained || decided >= aux_stop_at;
        if (stop) {
          report_.converged =
              drained || !budget_spent ||
              (conf_.distance_threshold >= 0 &&
               done_iter.distance < conf_.distance_threshold);
          if (session_mode_) {
            // Quiesce instead of terminate: every reduce dumps the epoch's
            // converged-<session> baseline and acks; the acks flip
            // quiesced_ and the loop returns with all tasks parked.
            ckpt_acks_ = 0;
            TraceRecorder::instance().instant("session_quiesce",
                                              mvt.now_ns(), decided,
                                              generation);
            CtlMsg cc;
            cc.type = CtlType::kConvergedCkpt;
            cc.iteration = decided;
            cc.generation = generation;
            cc.session = session_id_;
            for (int idx = 0; idx < T_; ++idx) {
              master_send(mvt, *red_ep(0, idx), cc);
            }
            break;
          }
          broadcast_terminate(decided);
          break;
        }

        // Allow the next iteration.
        CtlMsg cont;
        cont.type = CtlType::kContinue;
        cont.iteration = decided;
        cont.generation = generation;
        for (int idx = 0; idx < T_; ++idx) {
          master_send(mvt, *red_ep(0, idx), cont);
        }
        if (!conf_.async_maps &&
            conf_.phases[0].mapping == Mapping::kOne2One) {
          CtlMsg go;
          go.type = CtlType::kGo;
          go.iteration = decided + 1;
          go.generation = generation;
          for (int idx = 0; idx < T_; ++idx) {
            master_send(mvt, *map_ep(0, idx), go);
          }
        }

        // --- load balancing (§3.4.2) ---
        if (conf_.load_balancing && last_ckpt > 0 &&
            decided - last_migration_iter >= 2 &&
            done_iter.worker_dur.size() >= 3) {
          std::vector<std::pair<int, int64_t>> durs(
              done_iter.worker_dur.begin(), done_iter.worker_dur.end());
          std::sort(durs.begin(), durs.end(), [](const auto& a, const auto& b) {
            return a.second < b.second;
          });
          // Average excluding the longest and shortest, per the paper.
          double sum = 0;
          for (std::size_t n = 1; n + 1 < durs.size(); ++n) {
            sum += static_cast<double>(durs[n].second);
          }
          double avg = sum / static_cast<double>(durs.size() - 2);
          int slowest = durs.back().first;
          int fastest = durs.front().first;
          double gap_ms =
              (static_cast<double>(durs.back().second) - avg) / 1e6;
          double dev = (static_cast<double>(durs.back().second) - avg) / avg;
          IMR_DEBUG << tag_ << ": lb iter " << decided << " avg "
                    << avg / 1e6 << " ms, max "
                    << static_cast<double>(durs.back().second) / 1e6
                    << " ms (worker " << slowest << "), dev " << dev;
          if (avg > 0 && dev > conf_.migration_threshold &&
              gap_ms > conf_.migration_min_gap_ms &&
              cluster_.worker_alive(fastest) && slowest != fastest) {
            // Migrate the slowest pair on the slowest worker.
            int victim = -1;
            for (int idx = 0; idx < T_; ++idx) {
              if (pair_worker(idx) == slowest) {
                victim = idx;
                break;
              }
            }
            if (victim >= 0) {
              IMR_INFO << tag_ << ": migrating pair " << victim
                       << " from worker " << slowest << " to " << fastest
                       << " (deviation " << dev << ")";
              cluster_.metrics().inc("imr_migrations");
              last_migration_iter = decided;
              {
                TraceSpan mig_span("migration", mvt, last_ckpt, generation);
                respawn_and_rollback({victim}, {fastest}, last_ckpt);
              }
              ++report_.migration_rollbacks;
            }
          }
        }
        break;
      }
      default:
        break;
    }
  }
}

// ---------------------------------------------------------------------------
// execute
// ---------------------------------------------------------------------------

void JobRun::start() {
  conf_.validate();
  for (const auto& ph : conf_.phases) {
    if (ph.mapping == Mapping::kOne2All && ph.static_path.empty()) {
      throw ConfigError("one2all phase requires static data to map over");
    }
  }
  aux_reduces_ = conf_.aux ? conf_.aux->num_reduce_tasks : 0;
  const int aux_maps = conf_.aux ? T_ : 0;

  // Each phase's persistent tasks must fit the execution slots; phases of
  // the same iteration alternate activity and share them (§3.1.1), while an
  // aux phase runs concurrently with the main phase and needs its own.
  if (T_ + aux_maps > cluster_.map_slots()) {
    throw ConfigError(strprintf(
        "%d persistent map tasks exceed %d map slots", T_ + aux_maps,
        cluster_.map_slots()));
  }
  if (T_ + aux_reduces_ > cluster_.reduce_slots()) {
    throw ConfigError("persistent reduce tasks exceed reduce slots");
  }

  // Placement (§3.2.1 + DESIGN.md §9): each pair i (all phases) is placed by
  // plan_placement — round-robin i mod W without a partitioner (or when the
  // cost model makes locality free), partition-affinity-guided otherwise.
  // Map and paired reduce always share the worker so the reduce->map
  // hand-off stays local.
  if (conf_.partitioner &&
      conf_.partitioner->num_partitions() != static_cast<uint32_t>(T_)) {
    throw ConfigError(strprintf(
        "partitioner has %u partitions but the job runs %d task pairs",
        conf_.partitioner->num_partitions(), T_));
  }
  pair_worker_ = plan_placement(
      T_, cluster_.num_workers(),
      conf_.partitioner ? conf_.partitioner->affinity()
                        : std::vector<int64_t>{},
      cost_);

  master_ep_ = cluster_.fabric().create_endpoint(tag_ + "/master", -1);
  map_ep_.resize(static_cast<std::size_t>(P_));
  red_ep_.resize(static_cast<std::size_t>(P_));
  for (int p = 0; p < P_; ++p) {
    for (int i = 0; i < T_; ++i) {
      map_ep_[static_cast<std::size_t>(p)].push_back(
          cluster_.fabric().create_endpoint(map_ep_name(p, i),
                                            pair_worker_[static_cast<std::size_t>(i)]));
      red_ep_[static_cast<std::size_t>(p)].push_back(
          cluster_.fabric().create_endpoint(red_ep_name(p, i),
                                            pair_worker_[static_cast<std::size_t>(i)]));
    }
  }
  for (int a = 0; a < aux_maps; ++a) {
    // Aux map a lives with pair a, so map-side output hand-off is local.
    aux_map_ep_.push_back(cluster_.fabric().create_endpoint(
        tag_ + "/aux/m" + std::to_string(a),
        pair_worker_[static_cast<std::size_t>(a)]));
  }
  for (int j = 0; j < aux_reduces_; ++j) {
    aux_red_ep_.push_back(cluster_.fabric().create_endpoint(
        tag_ + "/aux/r" + std::to_string(j), j % cluster_.num_workers()));
  }

  // One-time job initialization (§3.1).
  // The master thread's trace timeline for this job; the "job" span brackets
  // everything from init to the post-join report.
  if (TelemetryRecorder::enabled()) cluster_.telemetry().begin_run();
  traced_ = TraceRecorder::enabled();
  if (traced_) {
    prev_track_ =
        TraceRecorder::instance().begin_thread_track(tag_ + "/master", -1);
  }
  job_span_.emplace("job", mvt_);
  mvt_.advance(cost_.job_init);
  cluster_.metrics().add_time(TimeCategory::kJobInit, cost_.job_init);
  cluster_.metrics().inc("jobs_submitted");
  const int64_t base_vt = mvt_.now_ns();

  for (int i = 0; i < T_; ++i) spawn_pair(i, /*gen=*/0, /*start_iter=*/1, base_vt);
  for (int a = 0; a < aux_maps; ++a) {
    auto aep = aux_map_ep(a);
    spawn([this, a, aep] { run_aux_map(a, /*gen=*/0, /*start_iter=*/1, aep); });
  }
  for (int j = 0; j < aux_reduces_; ++j) {
    auto aep = aux_red_ep(j);
    spawn([this, j, aep] {
      run_aux_reduce(j, /*gen=*/0, /*start_iter=*/1, aep);
    });
  }
  started_ = true;
}

void JobRun::run_master() {
  try {
    master_loop();
  } catch (...) {
    std::lock_guard<std::mutex> lock(error_mu_);
    if (!first_error_) first_error_ = std::current_exception();
  }
}

RunReport JobRun::finish() {
  closed_ = true;
  // Teardown runs unconditionally, errors or not: a failed job must not
  // leave endpoints registered on the fabric or checkpoints in the DFS.
  // Make absolutely sure every task unblocks, then join.
  for (auto& ep : all_endpoints()) ep->close();
  master_ep_->close();
  {
    std::lock_guard<std::mutex> lock(threads_mu_);
    for (auto& t : threads_) t.join();
  }
  for (auto& ep : all_endpoints()) {
    cluster_.fabric().remove_endpoint(ep->name());
  }
  cluster_.fabric().remove_endpoint(master_ep_->name());
  // Release our own endpoint references so the destructors run NOW and any
  // undrained message lands on the discard ledger before finish() returns.
  // A plain run() destroys the JobRun immediately, but a session's JobRun
  // outlives close_session() inside the JobSession handle — without this the
  // ledger would read delivered > received + discarded until the session
  // object itself died.
  map_ep_.clear();
  red_ep_.clear();
  aux_map_ep_.clear();
  aux_red_ep_.clear();
  master_ep_.reset();

  // Checkpoints are recovery-scoped; a job garbage-collects its own
  // (including any torn part a mid-write crash left behind).
  cluster_.dfs().remove_prefix("ckpt/" + tag_ + "/");
  // Spill runs are task-scoped and every SpillSet abandons its remainder on
  // destruction, so with all task threads joined nothing should be left.
  // Sweep defensively anyway, keeping the ledger balanced (invariant 11).
  for (const std::string& path : cluster_.dfs().list("spill/" + tag_ + "/")) {
    cluster_.metrics().inc(
        "imr_spill_bytes_dropped",
        static_cast<int64_t>(cluster_.dfs().file_bytes(path)));
    cluster_.metrics().inc("imr_spill_runs_dropped");
    cluster_.metrics().inc("imr_spill_leaks");
  }
  cluster_.dfs().remove_prefix("spill/" + tag_ + "/");

  {
    std::lock_guard<std::mutex> lock(error_mu_);
    if (first_error_) std::rethrow_exception(first_error_);
  }

  report_.label = conf_.name + "/imapreduce";
  report_.total_wall_ms =
      static_cast<double>(std::max(final_vt_, mvt_.now_ns())) / 1e6;
  report_.init_wall_ms =
      sim_to_ms(cost_.job_init) + sim_to_ms(cost_.task_init);
  report_.iterations_run =
      report_.iterations.empty() ? 0 : report_.iterations.back().iteration;
  report_.capture(cluster_.metrics());
  if (TelemetryRecorder::enabled()) {
    // Assemble the run's telemetry record now that every task thread is
    // joined: the ledger's buckets are quiescent, so the join is race-free.
    TelemetryLedger& led = cluster_.telemetry();
    RunTelemetry rt;
    rt.job = conf_.name;
    rt.workers = cluster_.num_workers();
    rt.tasks = T_;
    rt.iterations_run = report_.iterations_run;
    rt.converged = report_.converged;
    rt.session_epochs = session_id_;
    for (IterTelemetry& it : telemetry_iters_) led.fill_iter(it);
    rt.iters = std::move(telemetry_iters_);
    rt.matrix = led.snapshot_matrix();
    led.collect_profiles(&rt.hot_keys, &rt.hot_key_samples,
                         &rt.partition_records, &rt.skew);
    rt.static_bytes_per_task = led.static_bytes_per_task();
    for (int64_t b : rt.static_bytes_per_task) rt.static_bytes += b;
    rt.spill_bytes_written = cluster_.metrics().count("imr_spill_bytes_written");
    rt.spill_bytes_read = cluster_.metrics().count("imr_spill_bytes_read");
    rt.spill_bytes_dropped = cluster_.metrics().count("imr_spill_bytes_dropped");
    rt.spill_runs = cluster_.metrics().count("imr_spill_runs_written");
    rt.arena_hwm = cluster_.metrics().gauge("imr_arena_hwm");
    TelemetryRecorder::instance().append(std::move(rt));
  }
  if (job_span_) job_span_->end();
  if (traced_) TraceRecorder::instance().set_thread_track(prev_track_);
  return report_;
}

RunReport JobRun::execute() {
  start();
  run_master();
  return finish();
}

// ---------------------------------------------------------------------------
// Job sessions (DESIGN.md §8)
// ---------------------------------------------------------------------------

RunReport JobRun::epoch_report(const std::string& label) {
  RunReport r;
  r.label = label;
  r.total_wall_ms = mvt_.now_ms() - epoch_start_ms_;
  r.converged = report_.converged;
  std::size_t first = std::min(epoch_first_stat_, report_.iterations.size());
  r.iterations.assign(
      report_.iterations.begin() + static_cast<std::ptrdiff_t>(first),
      report_.iterations.end());
  r.iterations_run =
      r.iterations.empty() ? 0 : r.iterations.back().iteration - epoch_base_;
  // Delta against the epoch-start snapshot: the cluster's registry is
  // cumulative, so the subtraction scopes the byte/time totals to this
  // epoch. The same snapshot that ends this window becomes the next
  // window's base — one registry read per boundary, so consecutive epochs
  // tile with no gap that a concurrently landing charge (a parked map's
  // last async send) could fall into.
  r.capture(cluster_.metrics());
  RunReport window_end = r;
  r.subtract(epoch_base_report_);
  epoch_base_report_ = std::move(window_end);
  return r;
}

RunReport JobRun::converge() {
  epoch_base_report_.capture(cluster_.metrics());
  start();
  epoch_start_ms_ = 0;
  epoch_first_stat_ = 0;
  run_master();
  if (!quiesced_) {
    // A task error unwound the run before it could park; tear everything
    // down and surface the failure.
    finish();
    throw Error(tag_ + ": session run ended without quiescing");
  }
  last_report_ = epoch_report(conf_.name + "/session-initial");
  return last_report_;
}

RunReport JobRun::apply_update(const StaticDelta& delta) {
  IMR_CHECK_MSG(started_ && !closed_, "apply_update on a closed session");
  IMR_CHECK_MSG(quiesced_, "apply_update before the session quiesced");
  epoch_start_ms_ = mvt_.now_ms();
  // The epoch base was advanced by the previous epoch_report(): this window
  // opens exactly where that one closed, so the delta-routing sends below
  // and anything a parked task charged since quiesce land in THIS window.
  const int new_session = session_id_ + 1;
  TraceSpan update_span("session_update", mvt_, new_session, generation_);

  // Route ops to their owning map partitions — the same key_partition the
  // shuffle and the DFS partition reader use, so an op always lands on the
  // task whose store holds (or will hold) its key.
  std::vector<KVVec> routed(static_cast<std::size_t>(T_));
  for (const StaticDeltaOp& op : delta.ops) {
    routed[key_partition(op.key)].push_back(delta_op_to_kv(op));
  }
  cluster_.metrics().inc("imr_delta_ops_routed",
                         static_cast<int64_t>(delta.ops.size()));
  {
    // The history feeds recovery replay: a map respawned later in the
    // session rebuilds its store from the original input plus every batch.
    std::lock_guard<std::mutex> lock(session_mu_);
    delta_history_.push_back(delta.ops);
  }
  // Every map gets its slice — possibly empty; the ack doubles as the
  // barrier — applies it, and answers with seeds + a refining verdict.
  for (int idx = 0; idx < T_; ++idx) {
    CtlMsg d;
    d.type = CtlType::kDelta;
    d.task = idx;
    d.iteration = decided_;
    d.generation = generation_;
    d.session = new_session;
    NetMessage msg;
    msg.kind = NetMessage::Kind::kControl;
    msg.from_task = -1;
    msg.iteration = decided_;
    msg.generation = generation_;
    msg.control = d.encode();
    msg.set_records(std::move(routed[static_cast<std::size_t>(idx)]));
    cluster_.fabric().send(/*sender_worker=*/-1, mvt_, *map_ep(0, idx),
                           std::move(msg), TrafficCategory::kControl);
  }
  // Collect the T_ acks. Every task is parked, so no data, reports, or
  // failure notices race this loop; stale-session acks are filtered.
  int acks = 0;
  bool reset_all = false;
  KVVec all_seeds;
  while (acks < T_) {
    auto msg = master_ep_->receive(mvt_);
    IMR_CHECK_MSG(msg.has_value(), "master endpoint closed mid-update");
    if (msg->kind != NetMessage::Kind::kControl) continue;
    CtlMsg ctl = CtlMsg::decode(msg->control);
    if (ctl.type != CtlType::kDeltaAck || ctl.session != new_session ||
        ctl.generation != generation_) {
      continue;
    }
    ++acks;
    if (ctl.workset_size == 0) reset_all = true;
    KVVec seeds = msg->take_records();
    all_seeds.insert(all_seeds.end(), std::make_move_iterator(seeds.begin()),
                     std::make_move_iterator(seeds.end()));
  }
  // Deduplicate seeds (first-in-sorted-order wins, mirroring the static
  // store's duplicate-key rule) and bucket them by owning reduce partition.
  sort_records(all_seeds, /*sort_values=*/false);
  all_seeds.erase(
      std::unique(all_seeds.begin(), all_seeds.end(),
                  [](const KV& a, const KV& b) { return a.key == b.key; }),
      all_seeds.end());
  std::vector<KVVec> seeds_by_part(static_cast<std::size_t>(T_));
  if (!reset_all) {
    for (KV& kv : all_seeds) {
      seeds_by_part[key_partition(kv.key)].push_back(std::move(kv));
    }
  }

  // The drain tail polluted iteration decided_+1 (async maps processed it
  // as an empty iteration); the epoch resumes AFTER it, at base+1.
  const int base = decided_ + 1;
  // The drain tail also ran ahead under the old generation: an async map may
  // have finished iterations PAST base before this resume reaches it, leaving
  // its own eos in the reduces' stashes and consuming eos the new epoch will
  // re-send under the same iteration numbers. Resuming under a fresh
  // generation makes that residue distinguishable — every parked task adopts
  // the new generation from the kResume and the inbox filter then drops the
  // old epoch's traffic exactly like post-rollback stale messages.
  ++generation_;
  {
    std::lock_guard<std::mutex> lock(session_mu_);
    session_id_ = new_session;
    session_base_ = base;
    session_reset_all_ = reset_all;
    session_baseline_dir_ = converged_path(new_session - 1);
    epoch_seeds_ = std::move(seeds_by_part);
  }
  decided_ = base;
  epoch_base_ = base;
  last_ckpt_ = base;
  pending_.clear();
  aux_stop_at_ = INT32_MAX;
  quiesced_ = false;
  report_.converged = false;
  epoch_first_stat_ = report_.iterations.size();
  cluster_.metrics().inc("imr_session_epochs");
  if (reset_all) cluster_.metrics().inc("imr_session_resets");
  IMR_INFO << tag_ << ": session epoch " << new_session
           << " resuming at iter " << base + 1
           << (reset_all ? " (full replay)" : " (incremental)");

  CtlMsg rs;
  rs.type = CtlType::kResume;
  rs.iteration = base;
  rs.generation = generation_;
  rs.session = new_session;
  rs.workset_size = reset_all ? 1 : 0;
  for (int idx = 0; idx < T_; ++idx) {
    rs.task = idx;
    master_send(mvt_, *red_ep(0, idx), rs);
    master_send(mvt_, *map_ep(0, idx), rs);
  }
  run_master();
  if (!quiesced_) {
    finish();
    throw Error(tag_ + ": session epoch ended without quiescing");
  }
  last_report_ = epoch_report(conf_.name + "/session-epoch-" +
                              std::to_string(new_session));
  return last_report_;
}

RunReport JobRun::close_session() {
  if (closed_) return report_;
  if (!started_) {
    closed_ = true;
    return report_;
  }
  close_requested_ = true;
  quiesced_ = false;
  run_master();
  return finish();
}

}  // namespace detail

// ---------------------------------------------------------------------------
// Public API
// ---------------------------------------------------------------------------

RunReport IterativeEngine::run(const IterJobConf& conf) {
  detail::JobRun run(cluster_, conf);
  return run.execute();
}

JobSession IterativeEngine::open_session(const IterJobConf& conf) {
  if (!conf.workset_mode) {
    throw ConfigError(
        "open_session requires a workset_mode job: incremental "
        "reconvergence is defined over frontiers");
  }
  auto run = std::make_unique<detail::JobRun>(cluster_, conf,
                                              /*session_mode=*/true);
  run->converge();
  return JobSession(std::move(run));
}

JobSession::JobSession(std::unique_ptr<detail::JobRun> run)
    : run_(std::move(run)) {}
JobSession::JobSession(JobSession&&) noexcept = default;
JobSession& JobSession::operator=(JobSession&&) noexcept = default;
JobSession::~JobSession() {
  if (run_ && !run_->closed()) {
    try {
      run_->close_session();
    } catch (...) {
      // Destructors must not throw; call close() explicitly to observe
      // teardown errors.
    }
  }
}
const RunReport& JobSession::last_report() const {
  return run_->last_report();
}
RunReport JobSession::apply_update(const StaticDelta& delta) {
  return run_->apply_update(delta);
}
RunReport JobSession::close() { return run_->close_session(); }
bool JobSession::closed() const { return !run_ || run_->closed(); }

}  // namespace imr
