#include "graph/formats.h"

#include <sstream>

#include "common/error.h"
#include "common/strings.h"

namespace imr {

Graph parse_adjacency_text(const std::string& text, bool weighted) {
  Graph g;
  g.weighted = weighted;
  uint32_t max_node = 0;
  struct Row {
    uint32_t u;
    std::vector<WEdge> edges;
  };
  std::vector<Row> rows;

  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::size_t tab = line.find('\t');
    if (tab == std::string::npos) tab = line.find(' ');
    if (tab == std::string::npos) {
      throw FormatError("adjacency line without separator: " + line);
    }
    Row row;
    try {
      row.u = static_cast<uint32_t>(std::stoul(line.substr(0, tab)));
    } catch (const std::exception&) {
      throw FormatError("bad node id in line: " + line);
    }
    max_node = std::max(max_node, row.u);
    std::string rest = line.substr(tab + 1);
    if (!rest.empty()) {
      for (const std::string& part : split(rest, ',')) {
        if (part.empty()) continue;
        WEdge e;
        try {
          std::size_t used = 0;
          if (weighted) {
            std::size_t colon = part.find(':');
            if (colon == std::string::npos) {
              throw FormatError("weighted edge without ':' in: " + line);
            }
            std::string id = part.substr(0, colon);
            e.dst = static_cast<uint32_t>(std::stoul(id, &used));
            if (used != id.size()) throw FormatError("bad edge id: " + line);
            std::string w = part.substr(colon + 1);
            // from_chars, not stod: edge weights written by to_adjacency_text
            // must read back identically under any LC_NUMERIC.
            if (!parse_double_strict(w, e.weight)) {
              throw FormatError("bad weight: " + line);
            }
          } else {
            e.dst = static_cast<uint32_t>(std::stoul(part, &used));
            if (used != part.size()) {
              throw FormatError("trailing characters in edge: " + line);
            }
            e.weight = 1.0;
          }
        } catch (const FormatError&) {
          throw;
        } catch (const std::exception&) {
          throw FormatError("bad edge in line: " + line);
        }
        max_node = std::max(max_node, e.dst);
        row.edges.push_back(e);
      }
    }
    rows.push_back(std::move(row));
  }

  g.adj.resize(max_node + 1);
  for (Row& row : rows) {
    g.adj[row.u] = std::move(row.edges);
  }
  return g;
}

std::string to_adjacency_text(const Graph& g) {
  std::ostringstream os;
  os.precision(17);  // shortest round-trippable double would be nicer, but
                     // 17 significant digits always round-trips
  for (uint32_t u = 0; u < g.num_nodes(); ++u) {
    os << u << '\t';
    const auto& edges = g.adj[u];
    for (std::size_t i = 0; i < edges.size(); ++i) {
      if (i) os << ',';
      os << edges[i].dst;
      if (g.weighted) os << ':' << edges[i].weight;
    }
    os << '\n';
  }
  return os.str();
}

}  // namespace imr
