#include "graph/partition.h"

#include <algorithm>
#include <cstdlib>
#include <deque>
#include <fstream>
#include <string>

#include "common/codec.h"
#include "common/error.h"
#include "common/hash.h"
#include "common/rng.h"

namespace imr {

const std::vector<int64_t>& Partitioner::affinity() const {
  static const std::vector<int64_t> kEmpty;
  return kEmpty;
}

namespace {

class HashPartitioner final : public Partitioner {
 public:
  explicit HashPartitioner(uint32_t parts) : parts_(parts) {
    IMR_CHECK_MSG(parts_ >= 1, "partitioner needs >= 1 partition");
  }
  const char* name() const override { return "hash"; }
  uint32_t num_partitions() const override { return parts_; }
  uint32_t partition(BytesView key) const override {
    return partition_of(key, parts_);
  }

 private:
  uint32_t parts_;
};

// Vertex-map partitioner backing both the BFS grower and the file loader:
// 4-byte keys are decoded as vertex ids and looked up in the assignment;
// anything else (aux keys, foreign key spaces) falls back to the hash so
// every key still has a stable home.
class VertexPartitioner final : public Partitioner {
 public:
  VertexPartitioner(const char* name, std::vector<uint32_t> assignment,
                    uint32_t parts, std::vector<int64_t> affinity)
      : name_(name),
        assignment_(std::move(assignment)),
        parts_(parts),
        affinity_(std::move(affinity)) {
    IMR_CHECK_MSG(parts_ >= 1, "partitioner needs >= 1 partition");
  }
  const char* name() const override { return name_; }
  uint32_t num_partitions() const override { return parts_; }
  uint32_t partition(BytesView key) const override {
    if (key.size() == 4) {
      const uint32_t u = as_u32(key);
      if (u < assignment_.size()) return assignment_[u];
    }
    return partition_of(key, parts_);
  }
  const std::vector<int64_t>& affinity() const override { return affinity_; }

 private:
  const char* name_;
  std::vector<uint32_t> assignment_;
  uint32_t parts_;
  std::vector<int64_t> affinity_;
};

std::vector<int64_t> compute_affinity(const Graph& g,
                                      const std::vector<uint32_t>& assignment,
                                      uint32_t parts) {
  std::vector<int64_t> aff(static_cast<std::size_t>(parts) * parts, 0);
  const uint32_t n = g.num_nodes();
  for (uint32_t u = 0; u < n; ++u) {
    for (const WEdge& e : g.adj[u]) {
      if (e.dst >= n) continue;
      ++aff[static_cast<std::size_t>(assignment[u]) * parts +
            assignment[e.dst]];
    }
  }
  return aff;
}

// Seed vertex for a new region: a few seeded draws, then the lowest
// unassigned vertex. `next_probe` advances monotonically so the fallback
// scan is O(n) over the whole run.
uint32_t pick_region_seed(Rng& rng, const std::vector<uint32_t>& part,
                          uint32_t unassigned_mark, uint32_t n,
                          uint32_t& next_probe) {
  for (int tries = 0; tries < 8; ++tries) {
    auto c = static_cast<uint32_t>(rng.uniform(n));
    if (part[c] == unassigned_mark) return c;
  }
  while (part[next_probe] != unassigned_mark) ++next_probe;
  return next_probe;
}

std::vector<uint32_t> grow_bfs_regions(const Graph& g, uint32_t parts,
                                       uint64_t seed) {
  const uint32_t n = g.num_nodes();
  IMR_CHECK_MSG(n >= parts, "fewer vertices than partitions");

  // Undirected neighbor view: region growth should follow edges in either
  // direction, since both directions cost shuffle bytes.
  std::vector<std::vector<uint32_t>> nbr(n);
  for (uint32_t u = 0; u < n; ++u) {
    for (const WEdge& e : g.adj[u]) {
      if (e.dst == u || e.dst >= n) continue;
      nbr[u].push_back(e.dst);
      nbr[e.dst].push_back(u);
    }
  }
  for (auto& v : nbr) {
    std::sort(v.begin(), v.end());
    v.erase(std::unique(v.begin(), v.end()), v.end());
  }

  std::vector<uint32_t> part(n, parts);  // `parts` marks unassigned
  Rng rng(seed);
  uint32_t assigned = 0;
  uint32_t next_probe = 0;
  for (uint32_t p = 0; p < parts && assigned < n; ++p) {
    // Spread the remainder so every region is within one vertex of n/parts.
    const uint32_t remaining_parts = parts - p;
    const uint32_t cap = (n - assigned + remaining_parts - 1) / remaining_parts;
    uint32_t size = 0;
    std::deque<uint32_t> frontier;
    while (size < cap && assigned < n) {
      if (frontier.empty()) {
        // New component (or fresh region): seed and keep growing.
        const uint32_t s =
            pick_region_seed(rng, part, parts, n, next_probe);
        part[s] = p;
        ++assigned;
        ++size;
        frontier.push_back(s);
        continue;
      }
      const uint32_t u = frontier.front();
      frontier.pop_front();
      for (uint32_t v : nbr[u]) {
        if (part[v] != parts) continue;
        part[v] = p;
        ++assigned;
        ++size;
        frontier.push_back(v);
        if (size >= cap) break;
      }
    }
  }
  return part;
}

}  // namespace

std::shared_ptr<const Partitioner> make_hash_partitioner(
    uint32_t num_partitions) {
  return std::make_shared<HashPartitioner>(num_partitions);
}

std::shared_ptr<const Partitioner> make_bfs_partitioner(const Graph& g,
                                                        uint32_t num_partitions,
                                                        uint64_t seed) {
  std::vector<uint32_t> assignment = grow_bfs_regions(g, num_partitions, seed);
  std::vector<int64_t> aff = compute_affinity(g, assignment, num_partitions);
  return std::make_shared<VertexPartitioner>("bfs", std::move(assignment),
                                             num_partitions, std::move(aff));
}

std::shared_ptr<const Partitioner> make_file_partitioner(
    std::vector<uint32_t> assignment, const Graph& g, uint32_t num_partitions) {
  if (assignment.size() != g.num_nodes()) {
    throw ConfigError("partition assignment covers " +
                      std::to_string(assignment.size()) +
                      " vertices, graph has " +
                      std::to_string(g.num_nodes()));
  }
  for (uint32_t p : assignment) {
    if (p >= num_partitions) {
      throw ConfigError("partition assignment names partition " +
                        std::to_string(p) + ", job has " +
                        std::to_string(num_partitions));
    }
  }
  std::vector<int64_t> aff = compute_affinity(g, assignment, num_partitions);
  return std::make_shared<VertexPartitioner>("file", std::move(assignment),
                                             num_partitions, std::move(aff));
}

std::vector<uint32_t> load_partition_file(const std::string& path,
                                          uint32_t num_vertices) {
  std::ifstream in(path);
  if (!in) throw ConfigError("cannot open partition file: " + path);
  std::vector<uint32_t> assignment;
  assignment.reserve(num_vertices);
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    const auto first = line.find_first_not_of(" \t\r");
    if (first == std::string::npos) continue;
    char* end = nullptr;
    const unsigned long v = std::strtoul(line.c_str() + first, &end, 10);
    if (end == line.c_str() + first ||
        line.find_first_not_of(" \t\r", end - line.c_str()) !=
            std::string::npos) {
      throw ConfigError(path + ":" + std::to_string(lineno) +
                        ": bad partition id '" + line + "'");
    }
    assignment.push_back(static_cast<uint32_t>(v));
  }
  if (assignment.size() != num_vertices) {
    throw ConfigError("partition file " + path + " covers " +
                      std::to_string(assignment.size()) +
                      " vertices, expected " + std::to_string(num_vertices));
  }
  return assignment;
}

void write_partition_file(const std::string& path,
                          const std::vector<uint32_t>& assignment) {
  std::ofstream out(path);
  if (!out) throw Error("cannot write partition file: " + path);
  for (uint32_t p : assignment) out << p << "\n";
  if (!out) throw Error("short write to partition file: " + path);
}

int64_t edge_cut(const Graph& g, const Partitioner& p) {
  const uint32_t n = g.num_nodes();
  std::vector<uint32_t> part(n);
  for (uint32_t u = 0; u < n; ++u) part[u] = p.partition(u32_key(u));
  int64_t cut = 0;
  for (uint32_t u = 0; u < n; ++u) {
    for (const WEdge& e : g.adj[u]) {
      if (e.dst < n && part[e.dst] != part[u]) ++cut;
    }
  }
  return cut;
}

std::vector<int64_t> partition_sizes(const Graph& g, const Partitioner& p) {
  std::vector<int64_t> sizes(p.num_partitions(), 0);
  const uint32_t n = g.num_nodes();
  for (uint32_t u = 0; u < n; ++u) ++sizes[p.partition(u32_key(u))];
  return sizes;
}

double balance_factor(const std::vector<int64_t>& sizes) {
  if (sizes.empty()) return 1.0;
  int64_t max = 0, total = 0;
  for (int64_t s : sizes) {
    max = std::max(max, s);
    total += s;
  }
  if (total == 0) return 1.0;
  const double mean =
      static_cast<double>(total) / static_cast<double>(sizes.size());
  return static_cast<double>(max) / mean;
}

}  // namespace imr
