// In-memory directed graph used by generators, loaders, and the sequential
// reference implementations.
#pragma once

#include <cstdint>
#include <vector>

#include "common/codec.h"  // WEdge

namespace imr {

struct Graph {
  bool weighted = false;
  std::vector<std::vector<WEdge>> adj;  // adj[u] = out-edges of u

  uint32_t num_nodes() const { return static_cast<uint32_t>(adj.size()); }
  uint64_t num_edges() const {
    uint64_t e = 0;
    for (const auto& v : adj) e += v.size();
    return e;
  }

  // Approximate serialized size (the "File size" column of Tables 1 and 2):
  // the byte count of the joined state+static records the MapReduce baseline
  // reads each iteration.
  std::size_t file_bytes() const;
};

// Statistics row for the dataset tables.
struct GraphStats {
  std::string name;
  uint32_t nodes = 0;
  uint64_t edges = 0;
  std::size_t file_bytes = 0;
};

GraphStats stats_of(const std::string& name, const Graph& g);

}  // namespace imr
