// Key-space partitioners for partition-aware placement (DESIGN.md §9).
//
// The flat hash partitioner spreads graph vertices uniformly, so nearly every
// edge crosses a partition boundary and the iterative shuffle pays remote
// bytes for all of it. A graph-aware partitioner groups adjacent vertices
// into the same reduce partition; combined with the master's affinity-based
// placement this turns most shuffle traffic into same-worker hand-offs.
//
// A partitioner is a PURE function of the key: the map-side shuffle, the
// static/state partition loaders, and the session update router all consult
// the same instance, so a stateful or time-varying answer would silently
// split a key across reduce tasks.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "graph/graph.h"

namespace imr {

class Partitioner {
 public:
  virtual ~Partitioner() = default;

  virtual const char* name() const = 0;
  virtual uint32_t num_partitions() const = 0;

  // Maps a wire key to its partition in [0, num_partitions()).
  virtual uint32_t partition(BytesView key) const = 0;

  // Inter-partition directed edge counts (flattened P×P, row-major), used by
  // the master to co-locate the partitions that exchange the most data.
  // Empty when the partitioner has no graph to measure (hash).
  virtual const std::vector<int64_t>& affinity() const;
};

// Pass-through hash: identical to the engines' built-in partition_of.
std::shared_ptr<const Partitioner> make_hash_partitioner(
    uint32_t num_partitions);

// Deterministic seeded BFS region grower (LDG-style greedy growth): regions
// are grown one at a time to a capacity that splits the vertices within one
// of each other, so max/mean partition size is bounded by 1 + P/n. The seed
// only picks region start vertices; the same (graph, parts, seed) triple
// always yields the same assignment.
std::shared_ptr<const Partitioner> make_bfs_partitioner(const Graph& g,
                                                        uint32_t num_partitions,
                                                        uint64_t seed);

// External assignment (e.g. METIS output re-numbered to this job's partition
// count). Throws ConfigError when the assignment does not cover exactly the
// graph's vertices or names a partition >= num_partitions.
std::shared_ptr<const Partitioner> make_file_partitioner(
    std::vector<uint32_t> assignment, const Graph& g, uint32_t num_partitions);

// METIS-style partition file: line i holds the partition id of vertex i,
// "#" starts a comment. Throws ConfigError when the file is missing,
// unparseable, or covers a vertex range other than [0, num_vertices).
std::vector<uint32_t> load_partition_file(const std::string& path,
                                          uint32_t num_vertices);
void write_partition_file(const std::string& path,
                          const std::vector<uint32_t>& assignment);

// --- diagnostics (tests, imr_stat-adjacent tooling, benches) ---

// Directed edges whose endpoints land in different partitions.
int64_t edge_cut(const Graph& g, const Partitioner& p);

// Vertices per partition.
std::vector<int64_t> partition_sizes(const Graph& g, const Partitioner& p);

// max/mean of the non-empty size vector; >= 1, with 1 = perfectly balanced.
double balance_factor(const std::vector<int64_t>& sizes);

}  // namespace imr
