// Synthetic graph generators reproducing the paper's data sets (§4.1.2).
//
// The paper extracts log-normal parameters from its real graphs and generates
// synthetics from them; the real graphs themselves (DBLP, Facebook, Google
// web, Berkeley-Stanford) are not redistributable here, so each one is
// replaced by a distribution-matched synthetic at (scaled) published size.
//
//   SSSP graphs:      out-degree ~ LogNormal(mu=1.5, sigma=1.0),
//                     link weight ~ LogNormal(mu=0.4, sigma=1.2)
//   PageRank graphs:  out-degree ~ LogNormal(mu=-0.5, sigma=2.0), unweighted
#pragma once

#include <cstdint>
#include <string>

#include "graph/graph.h"

namespace imr {

struct LogNormalGraphSpec {
  uint32_t num_nodes = 1000;
  double degree_mu = 1.5;
  double degree_sigma = 1.0;
  bool weighted = true;
  double weight_mu = 0.4;
  double weight_sigma = 1.2;
  uint64_t seed = 42;
};

// Generates a directed graph with log-normal out-degrees (capped at
// num_nodes - 1) and uniformly random distinct targets; weights are
// log-normal when `weighted`.
Graph generate_lognormal_graph(const LogNormalGraphSpec& spec);

// The log-normal synthetics have NO edge locality (targets are uniform over
// the whole vertex range), which makes them useless for exercising a
// locality-aware partitioner: every partitioning cuts ~all edges. The two
// generators below produce graphs with real structure.

// 2D lattice: vertex (r, c) -> id r*cols + c, edges to the 4 neighbors in
// both directions. A contiguous region of k vertices has ~4*sqrt(k) cut
// edges, so a BFS partitioning beats hash by the area/perimeter ratio.
struct GridGraphSpec {
  uint32_t rows = 64;
  uint32_t cols = 64;
  bool weighted = true;
  double weight_mu = 0.4;
  double weight_sigma = 1.2;
  uint64_t seed = 42;
};
Graph generate_grid_graph(const GridGraphSpec& spec);

// Recursive-matrix (R-MAT) power-law graph: skewed degrees with community
// structure, the standard stressor for partition balance bounds.
struct RmatGraphSpec {
  uint32_t num_nodes = 1u << 12;  // quadrant recursion runs on the next pow2
  uint32_t edges_per_node = 8;
  double a = 0.57, b = 0.19, c = 0.19;  // d = 1 - a - b - c
  bool weighted = false;
  uint64_t seed = 42;
};
Graph generate_rmat_graph(const RmatGraphSpec& spec);

// The paper's SSSP data sets (Table 1), scaled by `scale` (1.0 = published
// node counts). DBLP/Facebook stand-ins use the same generator with the
// published node counts and average degrees.
Graph make_sssp_graph(const std::string& name, double scale, uint64_t seed);

// The paper's PageRank data sets (Table 2): google, berkstan,
// pagerank-s/m/l.
Graph make_pagerank_graph(const std::string& name, double scale,
                          uint64_t seed);

}  // namespace imr
