#include "graph/generator.h"

#include <algorithm>
#include <cmath>

#include "common/error.h"
#include "common/rng.h"

namespace imr {

std::size_t Graph::file_bytes() const {
  // state (8B distance/rank) + per-edge (4B target [+8B weight]) + framing.
  std::size_t per_edge = weighted ? 12 : 4;
  return num_nodes() * 20 + num_edges() * per_edge;
}

GraphStats stats_of(const std::string& name, const Graph& g) {
  GraphStats s;
  s.name = name;
  s.nodes = g.num_nodes();
  s.edges = g.num_edges();
  s.file_bytes = g.file_bytes();
  return s;
}

Graph generate_lognormal_graph(const LogNormalGraphSpec& spec) {
  IMR_CHECK(spec.num_nodes > 1);
  Rng rng(spec.seed);
  Graph g;
  g.weighted = spec.weighted;
  g.adj.resize(spec.num_nodes);

  const uint32_t n = spec.num_nodes;
  for (uint32_t u = 0; u < n; ++u) {
    double draw = rng.log_normal(spec.degree_mu, spec.degree_sigma);
    auto degree = static_cast<uint32_t>(std::min<double>(
        std::llround(draw), static_cast<double>(n - 1)));
    auto& edges = g.adj[u];
    edges.reserve(degree);
    // Sample targets with replacement and dedupe — O(d) and indistinguishable
    // from distinct sampling at d << n.
    for (uint32_t d = 0; d < degree; ++d) {
      auto v = static_cast<uint32_t>(rng.uniform(n));
      if (v == u) continue;
      WEdge e;
      e.dst = v;
      e.weight = spec.weighted
                     ? rng.log_normal(spec.weight_mu, spec.weight_sigma)
                     : 1.0;
      edges.push_back(e);
    }
    std::sort(edges.begin(), edges.end(),
              [](const WEdge& a, const WEdge& b) { return a.dst < b.dst; });
    edges.erase(std::unique(edges.begin(), edges.end(),
                            [](const WEdge& a, const WEdge& b) {
                              return a.dst == b.dst;
                            }),
                edges.end());
  }
  return g;
}

Graph generate_grid_graph(const GridGraphSpec& spec) {
  IMR_CHECK(spec.rows >= 2 && spec.cols >= 2);
  Rng rng(spec.seed);
  Graph g;
  g.weighted = spec.weighted;
  g.adj.resize(static_cast<std::size_t>(spec.rows) * spec.cols);
  auto id = [&](uint32_t r, uint32_t c) { return r * spec.cols + c; };
  for (uint32_t r = 0; r < spec.rows; ++r) {
    for (uint32_t c = 0; c < spec.cols; ++c) {
      auto& edges = g.adj[id(r, c)];
      auto link = [&](uint32_t v) {
        WEdge e;
        e.dst = v;
        e.weight = spec.weighted
                       ? rng.log_normal(spec.weight_mu, spec.weight_sigma)
                       : 1.0;
        edges.push_back(e);
      };
      if (r > 0) link(id(r - 1, c));
      if (c > 0) link(id(r, c - 1));
      if (c + 1 < spec.cols) link(id(r, c + 1));
      if (r + 1 < spec.rows) link(id(r + 1, c));
    }
  }
  return g;
}

Graph generate_rmat_graph(const RmatGraphSpec& spec) {
  IMR_CHECK(spec.num_nodes > 1);
  Rng rng(spec.seed);
  Graph g;
  g.weighted = spec.weighted;
  g.adj.resize(spec.num_nodes);

  int levels = 0;
  while ((1u << levels) < spec.num_nodes) ++levels;
  const double ab = spec.a + spec.b;
  const double abc = ab + spec.c;
  const uint64_t target_edges =
      static_cast<uint64_t>(spec.num_nodes) * spec.edges_per_node;
  for (uint64_t i = 0; i < target_edges; ++i) {
    uint32_t u = 0, v = 0;
    for (int l = 0; l < levels; ++l) {
      const double r = rng.uniform_real(0.0, 1.0);
      u <<= 1;
      v <<= 1;
      if (r >= ab) u |= 1;
      if (r >= spec.a && (r < ab || r >= abc)) v |= 1;
    }
    // The recursion quadrants cover the next power of two; drop draws that
    // land past the requested size, and self-loops.
    if (u >= spec.num_nodes || v >= spec.num_nodes || u == v) continue;
    WEdge e;
    e.dst = v;
    e.weight = spec.weighted ? rng.log_normal(0.4, 1.2) : 1.0;
    g.adj[u].push_back(e);
  }
  for (auto& edges : g.adj) {
    std::sort(edges.begin(), edges.end(),
              [](const WEdge& a, const WEdge& b) { return a.dst < b.dst; });
    edges.erase(std::unique(edges.begin(), edges.end(),
                            [](const WEdge& a, const WEdge& b) {
                              return a.dst == b.dst;
                            }),
                edges.end());
  }
  return g;
}

namespace {

uint32_t scaled(uint32_t published, double scale) {
  auto v = static_cast<uint32_t>(static_cast<double>(published) * scale);
  return std::max<uint32_t>(v, 64);
}

// Side length for the "grid" dataset: area scales linearly with `scale` so
// the node count tracks the other datasets' scaling convention.
uint32_t grid_side(uint32_t published_nodes, double scale) {
  const auto nodes = static_cast<double>(scaled(published_nodes, scale));
  return std::max<uint32_t>(8, static_cast<uint32_t>(std::lround(
                                   std::sqrt(nodes))));
}

}  // namespace

Graph make_sssp_graph(const std::string& name, double scale, uint64_t seed) {
  LogNormalGraphSpec spec;
  spec.weighted = true;
  spec.degree_mu = 1.5;
  spec.degree_sigma = 1.0;
  spec.weight_mu = 0.4;
  spec.weight_sigma = 1.2;
  spec.seed = seed;
  if (name == "dblp") {
    // 310,556 nodes / 1,518,617 edges: avg degree ~4.9 -> mu = ln(4.9)-0.5.
    spec.num_nodes = scaled(310556, scale);
    spec.degree_mu = std::log(4.9) - 0.5;
  } else if (name == "facebook") {
    // 1,204,004 nodes / 5,430,303 edges: avg degree ~4.5.
    spec.num_nodes = scaled(1204004, scale);
    spec.degree_mu = std::log(4.5) - 0.5;
  } else if (name == "sssp-s") {
    spec.num_nodes = scaled(1000000, scale);
  } else if (name == "sssp-m") {
    spec.num_nodes = scaled(10000000, scale);
  } else if (name == "sssp-l") {
    spec.num_nodes = scaled(50000000, scale);
  } else if (name == "grid") {
    GridGraphSpec gs;
    gs.rows = gs.cols = grid_side(65536, scale);
    gs.weighted = true;
    gs.seed = seed;
    return generate_grid_graph(gs);
  } else if (name == "rmat") {
    RmatGraphSpec rs;
    rs.num_nodes = scaled(262144, scale);
    rs.weighted = true;
    rs.seed = seed;
    return generate_rmat_graph(rs);
  } else {
    throw ConfigError("unknown SSSP graph: " + name);
  }
  return generate_lognormal_graph(spec);
}

Graph make_pagerank_graph(const std::string& name, double scale,
                          uint64_t seed) {
  LogNormalGraphSpec spec;
  spec.weighted = false;
  spec.degree_mu = -0.5;
  spec.degree_sigma = 2.0;
  spec.seed = seed;
  if (name == "google") {
    // 916,417 nodes / 6,078,254 edges: avg degree ~6.6.
    spec.num_nodes = scaled(916417, scale);
    spec.degree_mu = std::log(6.6) - 2.0;
  } else if (name == "berkstan") {
    // 685,230 nodes / 7,600,595 edges: avg degree ~11.1.
    spec.num_nodes = scaled(685230, scale);
    spec.degree_mu = std::log(11.1) - 2.0;
  } else if (name == "pagerank-s") {
    spec.num_nodes = scaled(1000000, scale);
  } else if (name == "pagerank-m") {
    spec.num_nodes = scaled(10000000, scale);
  } else if (name == "pagerank-l") {
    spec.num_nodes = scaled(30000000, scale);
  } else if (name == "grid") {
    GridGraphSpec gs;
    gs.rows = gs.cols = grid_side(65536, scale);
    gs.weighted = false;
    gs.seed = seed;
    return generate_grid_graph(gs);
  } else if (name == "rmat") {
    RmatGraphSpec rs;
    rs.num_nodes = scaled(262144, scale);
    rs.weighted = false;
    rs.seed = seed;
    return generate_rmat_graph(rs);
  } else {
    throw ConfigError("unknown PageRank graph: " + name);
  }
  return generate_lognormal_graph(spec);
}

}  // namespace imr
