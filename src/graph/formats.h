// Text formats for graphs (the "particular formatted graphs" iMapReduce
// supports loading, §3.5): one line per node,
//   weighted:    "<u>\t<v1>:<w1>,<v2>:<w2>,..."
//   unweighted:  "<u>\t<v1>,<v2>,..."
#pragma once

#include <string>

#include "graph/graph.h"

namespace imr {

// Parses adjacency-list text; node ids must be < num_nodes implied by the
// maximum id seen. Throws FormatError on malformed lines.
Graph parse_adjacency_text(const std::string& text, bool weighted);

// Serializes a graph back to the same format.
std::string to_adjacency_text(const Graph& g);

}  // namespace imr
