#include "bench_util/harness.h"

#include <cstdio>

#include "common/strings.h"

namespace imr::bench {

ClusterConfig local_cluster_preset(double data_scale) {
  ClusterConfig config;
  config.num_workers = 4;
  config.map_slots_per_worker = 2;
  config.reduce_slots_per_worker = 2;
  config.cost = CostModel::local_cluster().scaled_for_data(data_scale);
  return config;
}

ClusterConfig ec2_preset(int instances, double data_scale) {
  ClusterConfig config;
  config.num_workers = instances;
  config.map_slots_per_worker = 2;
  config.reduce_slots_per_worker = 2;
  config.cost = CostModel::ec2().scaled_for_data(data_scale);
  return config;
}

Series series_of(const std::string& label, const RunReport& report) {
  Series s;
  s.label = label;
  for (const IterationStat& it : report.iterations) {
    s.cumulative_sec.push_back(it.wall_ms_end / 1e3);
  }
  return s;
}

Series series_ex_init(const std::string& label, const RunReport& report) {
  Series s;
  s.label = label;
  double init_so_far = 0;
  for (const IterationStat& it : report.iterations) {
    init_so_far += it.init_ms;
    s.cumulative_sec.push_back((it.wall_ms_end - init_so_far) / 1e3);
  }
  return s;
}

void banner(const std::string& experiment_id, const std::string& title) {
  std::printf("\n============================================================\n");
  std::printf("%s — %s\n", experiment_id.c_str(), title.c_str());
  std::printf("============================================================\n");
}

void note(const std::string& text) { std::printf("  %s\n", text.c_str()); }

void expectation(const std::string& paper, const std::string& measured) {
  std::printf("  expected (paper): %s\n", paper.c_str());
  std::printf("  measured:         %s\n", measured.c_str());
}

void print_series(const std::vector<Series>& series) {
  std::vector<std::string> header = {"iteration"};
  std::size_t rows = 0;
  for (const Series& s : series) {
    header.push_back(s.label + " (s)");
    rows = std::max(rows, s.cumulative_sec.size());
  }
  TextTable table(header);
  for (std::size_t i = 0; i < rows; ++i) {
    std::vector<std::string> row = {std::to_string(i + 1)};
    for (const Series& s : series) {
      row.push_back(i < s.cumulative_sec.size()
                        ? fmt_double(s.cumulative_sec[i], 1)
                        : "");
    }
    table.add_row(std::move(row));
  }
  print_table(table);
}

void print_table(const TextTable& table) {
  std::printf("%s", table.render().c_str());
}

std::string fmt_sec(double ms) { return fmt_double(ms / 1e3, 1) + " s"; }

std::string fmt_ratio(double num, double den) {
  if (den == 0) return "n/a";
  return fmt_double(num / den, 2) + "x";
}

std::string fmt_pct(double num, double den) {
  if (den == 0) return "n/a";
  return fmt_double(100.0 * num / den, 1) + "%";
}

}  // namespace imr::bench
