// Experiment harness shared by all bench binaries.
//
// Each bench reproduces one table or figure from the paper: it builds a
// cluster with the matching preset, synthesizes the (scaled) dataset, runs
// the framework configurations, and prints paper-style series/tables along
// with the paper's expectation so EXPERIMENTS.md can record shape parity.
//
// Every reported time is VIRTUAL seconds from the calibrated cost model —
// deterministic, hardware-independent — not wall-clock.
#pragma once

#include <string>
#include <vector>

#include "cluster/cluster.h"
#include "metrics/metrics.h"
#include "metrics/table.h"

namespace imr::bench {

// The paper's two environments (§4.1.1). `data_scale` adapts the cost model
// for runs whose dataset is 1/data_scale of the published size (see
// CostModel::scaled_for_data and DESIGN.md).
ClusterConfig local_cluster_preset(double data_scale = 1.0);  // 4 nodes
ClusterConfig ec2_preset(int instances, double data_scale = 1.0);

// A named time-vs-iteration curve (one line in Figs. 4-9, 16, 18, 20).
struct Series {
  std::string label;
  std::vector<double> cumulative_sec;  // per completed iteration

  double total() const {
    return cumulative_sec.empty() ? 0.0 : cumulative_sec.back();
  }
};

// Builds a curve from a run report.
Series series_of(const std::string& label, const RunReport& report);
// The paper's "MapReduce (ex. init.)" curve: the baseline with the per-job
// initialization subtracted from every point.
Series series_ex_init(const std::string& label, const RunReport& report);

// --- output helpers ---
void banner(const std::string& experiment_id, const std::string& title);
void note(const std::string& text);
// Prints "expected (paper): ..." / "measured: ..." pair used by
// EXPERIMENTS.md.
void expectation(const std::string& paper, const std::string& measured);
// One column per series, one row per iteration (cumulative seconds).
void print_series(const std::vector<Series>& series);
void print_table(const TextTable& table);
std::string fmt_sec(double ms);
std::string fmt_ratio(double num, double den);
std::string fmt_pct(double num, double den);

}  // namespace imr::bench
