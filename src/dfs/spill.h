// SpillSet — a task's registry of budgeted spill runs on MiniDfs.
//
// When a task's MemoryBudget overflows, the engine sorts the offending
// buffer and hands it here: write_run stores it as one sorted run file
// under "spill/<tag>/" (TrafficCategory::kSpill — spill I/O never pollutes
// the Fig-11 dfs_read/dfs_write decomposition) and registers it on a
// per-stream list. Streams keep independent run sequences in write order:
// the reduce side uses a single stream, the map side one stream per output
// partition. Run order within a stream IS arrival order, which is what lets
// shuffle_util::MergeCursor's source-index tiebreak reproduce the in-memory
// sort byte-for-byte.
//
// Every byte written is accounted on the spill ledger (invariant 11:
// imr_spill_bytes_written == read + dropped, same for run counts). A run
// leaves the registry in exactly one of three ways:
//   - take_run: read back whole (map-side final flush) — counted read;
//   - consume:  after a streaming merge drained the stream's cursors —
//               counted read, whole-run granularity;
//   - abandon:  rollback, fault unwind, or end-of-task GC — counted
//               dropped.
// The destructor abandons whatever is left, so a task that dies mid-merge
// (or mid-write, via write_torn_run) still balances the ledger and leaves
// no files behind.
//
// Like the budget and arena, a SpillSet is per-task and NOT thread-safe.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/record_source.h"
#include "common/sim_time.h"
#include "dfs/mini_dfs.h"
#include "metrics/metrics.h"

namespace imr {

class SpillSet {
 public:
  // `tag` must be unique per live task (e.g. "<job>/t<task>-g<generation>")
  // so concurrent tasks never collide under "spill/".
  SpillSet(MiniDfs& dfs, MetricsRegistry& metrics, std::string tag,
           int worker)
      : dfs_(dfs), metrics_(metrics), tag_(std::move(tag)), worker_(worker) {}
  ~SpillSet() { abandon(); }

  SpillSet(const SpillSet&) = delete;
  SpillSet& operator=(const SpillSet&) = delete;

  // Writes `records` (already sorted by the caller) as the next run of
  // `stream` and registers it. Counts imr_spill_bytes_written /
  // imr_spill_runs_written at wire size.
  void write_run(int stream, KVVec records, VClock* vt);

  // Fault injection: writes a run torn in half (only the first half of the
  // records reach the file), registered like any run so the dying task's
  // unwind drops it. Counts imr_torn_spills on top of the written ledger.
  void write_torn_run(int stream, KVVec records, VClock* vt);

  bool has_runs(int stream) const;
  std::size_t run_count(int stream) const;
  std::size_t total_runs() const;

  // Chunked streaming cursors over `stream`'s runs, one per run in write
  // order. Reading charges kSpill traffic incrementally; the runs stay
  // registered (and on the ledger's open side) until consume(stream) or
  // abandon(). `vt` must outlive the cursors.
  std::vector<std::unique_ptr<RecordSource>> sources(int stream, VClock* vt);

  // Reads one whole run back (FIFO within the stream), unregisters it, and
  // removes the file. Counted read. Returns an empty vector when the stream
  // has no runs left. Map-side final flush drains a partition's runs this
  // way, shipping each as its own batch.
  KVVec take_run(int stream, VClock* vt);

  // Unregisters and removes all of `stream`'s runs, counting them read —
  // called after a merge over sources(stream) has drained them.
  void consume(int stream);

  // Drops everything still registered: counted dropped, files removed.
  // Rollback and task teardown call this; idempotent.
  void abandon();

 private:
  struct Run {
    std::string path;
    std::size_t records = 0;
    std::size_t bytes = 0;
  };

  std::string next_run_path(int stream);
  void register_run(int stream, const std::string& path, std::size_t records);

  MiniDfs& dfs_;
  MetricsRegistry& metrics_;
  std::string tag_;
  int worker_;
  int next_run_ = 0;
  std::map<int, std::vector<Run>> streams_;
};

}  // namespace imr
