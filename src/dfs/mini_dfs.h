// MiniDfs — an in-process stand-in for HDFS.
//
// Files are sequences of KV records, chunked into blocks with replica
// placement across workers. Reads and writes charge virtual time against the
// caller's clock: a block read is charged at the local rate when the reading
// worker holds a replica and the remote rate otherwise; a write is charged at
// the (replication-pipeline) write rate, and the replication copies count as
// remote traffic.
//
// The MapReduce engine uses block-aligned input splits with preferred
// (replica-holding) workers, which is how Hadoop's locality optimization is
// reproduced: the scheduler places map tasks on preferred workers when a slot
// is available.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "cluster/cost_model.h"
#include "common/bytes.h"
#include "common/rng.h"
#include "common/sim_time.h"
#include "metrics/metrics.h"

namespace imr {

class TelemetryLedger;

// A contiguous range of records of one file, plus the workers that hold all
// of its blocks locally (empty when no single worker holds all of them).
struct InputSplit {
  std::string path;
  std::size_t begin = 0;  // record index, inclusive
  std::size_t end = 0;    // record index, exclusive
  std::size_t bytes = 0;
  std::vector<int> preferred_workers;
};

class MiniDfs {
 public:
  // `telemetry` (optional) mirrors every traffic charge into the cluster's
  // telemetry matrix while the TelemetryRecorder gate is armed.
  MiniDfs(int num_workers, const CostModel& cost, MetricsRegistry& metrics,
          uint64_t seed = 17, TelemetryLedger* telemetry = nullptr);

  MiniDfs(const MiniDfs&) = delete;
  MiniDfs& operator=(const MiniDfs&) = delete;

  // Creates (or replaces) a file. Charges write cost to `vt` if non-null.
  // `category` distinguishes normal writes from checkpoint dumps.
  void write_file(const std::string& path, KVVec records, int writer_worker,
                  VClock* vt,
                  TrafficCategory category = TrafficCategory::kDfsWrite);

  // Reads the whole file; charges read cost to `vt` if non-null.
  KVVec read_all(const std::string& path, int reader_worker, VClock* vt,
                 TrafficCategory category = TrafficCategory::kDfsRead) const;

  // Reads the record range of one split (blocks are charged individually,
  // local vs remote depending on the reader).
  KVVec read_split(const InputSplit& split, int reader_worker, VClock* vt,
                   TrafficCategory category = TrafficCategory::kDfsRead) const;

  // Reads the records whose key hashes to partition `index` of
  // `num_partitions` (the hash-partitioned share a persistent task owns).
  // Charges only the selected records' bytes, locality per block — modeling
  // a graph pre-partitioned on DFS (§3.2: "iMapReduce supports automatic
  // graph partitioning and graph loading").
  KVVec read_partition(const std::string& path, uint32_t index,
                       uint32_t num_partitions, int reader_worker, VClock* vt,
                       TrafficCategory category = TrafficCategory::kDfsRead) const;

  // Key -> partition function for partitioner-aware loads. Kept as a
  // std::function so the dfs layer does not depend on the graph library.
  using PartitionFn = std::function<uint32_t(BytesView)>;

  // Same as read_partition, but membership comes from `part` (the job's
  // configured partitioner) instead of the flat hash — static/state loading
  // must agree with the shuffle's routing or a key would live on one task
  // and be updated on another (DESIGN.md §9).
  KVVec read_partition(const std::string& path, uint32_t index,
                       const PartitionFn& part, int reader_worker, VClock* vt,
                       TrafficCategory category = TrafficCategory::kDfsRead) const;

  // Splits a file into up to `desired_splits` block-aligned splits.
  std::vector<InputSplit> make_splits(const std::string& path,
                                      int desired_splits) const;

  bool exists(const std::string& path) const;
  void remove(const std::string& path);
  // Removes every file under `prefix` (checkpoint GC); returns how many.
  std::size_t remove_prefix(const std::string& prefix);
  // All paths with the given prefix, sorted.
  std::vector<std::string> list(const std::string& prefix) const;
  std::size_t file_bytes(const std::string& path) const;
  std::size_t file_records(const std::string& path) const;

  int num_workers() const { return num_workers_; }

 private:
  struct Block {
    std::size_t begin = 0;  // record range [begin, end)
    std::size_t end = 0;
    std::size_t bytes = 0;
    std::vector<int> replicas;
  };
  struct File {
    KVVec records;
    std::size_t bytes = 0;
    std::vector<Block> blocks;
  };

  const File& get_file_locked(const std::string& path) const;
  std::vector<int> place_replicas(int writer_worker, Rng& rng);
  void charge_read_block(const Block& b, std::size_t bytes, int reader,
                         VClock* vt, TrafficCategory category) const;

  int num_workers_;
  const CostModel& cost_;
  MetricsRegistry& metrics_;
  TelemetryLedger* telemetry_;  // may be null; gated per charge
  mutable std::mutex mu_;
  std::map<std::string, File> files_;
  // Placement draws come from a per-file Rng seeded by (seed_, path), not a
  // shared stream: concurrent writers would otherwise consume a shared
  // stream in thread-arrival order, making replica placement — and every
  // locality-dependent virtual-time cost downstream of it — depend on real
  // scheduling. Per-file derivation keeps same-seed runs bit-reproducible.
  uint64_t seed_;
};

}  // namespace imr
