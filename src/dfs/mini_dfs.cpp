#include "dfs/mini_dfs.h"

#include <algorithm>

#include "common/error.h"
#include "common/hash.h"
#include "metrics/telemetry.h"
#include "metrics/trace.h"

namespace imr {

MiniDfs::MiniDfs(int num_workers, const CostModel& cost,
                 MetricsRegistry& metrics, uint64_t seed,
                 TelemetryLedger* telemetry)
    : num_workers_(num_workers),
      cost_(cost),
      metrics_(metrics),
      telemetry_(telemetry),
      seed_(seed) {
  IMR_CHECK(num_workers > 0);
}

std::vector<int> MiniDfs::place_replicas(int writer_worker, Rng& rng) {
  int n = std::min(cost_.dfs_replication, num_workers_);
  std::vector<int> replicas;
  replicas.reserve(static_cast<std::size_t>(n));
  // First replica on the writer (HDFS policy), the rest on distinct others.
  if (writer_worker >= 0 && writer_worker < num_workers_) {
    replicas.push_back(writer_worker);
  } else {
    replicas.push_back(static_cast<int>(rng.uniform(
        static_cast<uint64_t>(num_workers_))));
  }
  while (static_cast<int>(replicas.size()) < n) {
    int w = static_cast<int>(
        rng.uniform(static_cast<uint64_t>(num_workers_)));
    if (std::find(replicas.begin(), replicas.end(), w) == replicas.end()) {
      replicas.push_back(w);
    }
  }
  return replicas;
}

void MiniDfs::write_file(const std::string& path, KVVec records,
                         int writer_worker, VClock* vt,
                         TrafficCategory category) {
  // Checkpoint dumps are the recovery-critical writes; give them their own
  // span name so they stand out on the writer's trace track.
  TraceSpan write_span(category == TrafficCategory::kCheckpoint
                           ? "checkpoint_write"
                           : "dfs_write",
                       vt);
  // The whole write holds mu_: place_replicas draws from the shared rng_,
  // and part/checkpoint dumps run concurrently from many task threads.
  std::lock_guard<std::mutex> lock(mu_);
  File f;
  f.bytes = wire_size(records);
  f.records = std::move(records);

  // Per-file placement stream: derived from (seed, path) so the draw order
  // does not depend on which concurrent writer reached mu_ first.
  Rng place_rng(seed_ ^ fnv1a(path));

  // Chunk into blocks by cumulative wire size.
  std::size_t block_begin = 0;
  std::size_t block_bytes = 0;
  for (std::size_t i = 0; i < f.records.size(); ++i) {
    block_bytes += f.records[i].wire_size();
    bool last = (i + 1 == f.records.size());
    if (block_bytes >= cost_.dfs_block_size || last) {
      Block b;
      b.begin = block_begin;
      b.end = i + 1;
      b.bytes = block_bytes;
      b.replicas = place_replicas(writer_worker, place_rng);
      f.blocks.push_back(std::move(b));
      block_begin = i + 1;
      block_bytes = 0;
    }
  }
  if (f.records.empty()) {
    Block b;
    b.replicas = place_replicas(writer_worker, place_rng);
    f.blocks.push_back(std::move(b));
  }

  // Charge the write: pipeline rate over the full size, plus per-op latency.
  if (vt != nullptr) {
    SimDuration d = cost_.dfs_op_latency + transfer_time(f.bytes, cost_.dfs_write);
    vt->advance(d);
    metrics_.add_time(TimeCategory::kDfsIo, d);
  }
  // Replication copies leave the writer: (replicas-1) remote copies.
  int copies = std::max(0, std::min(cost_.dfs_replication, num_workers_) - 1);
  metrics_.add_traffic(category, f.bytes, /*remote=*/false);
  if (copies > 0) {
    metrics_.add_traffic(category, f.bytes * static_cast<std::size_t>(copies),
                         /*remote=*/true);
  }
  // Telemetry mirror of the two charges above, byte-for-byte: the local
  // part on the writer's diagonal cell (one message, like the registry's
  // one transfer), and the replication copies attributed to the FIRST
  // block's tail replicas — a placement approximation (later blocks may
  // place elsewhere) that preserves the per-category byte/remote/message
  // conservation sums exactly. The registry counts the whole copies-sized
  // charge as ONE transfer, so only the first remote cell gets a message.
  if (telemetry_ != nullptr && TelemetryRecorder::enabled()) {
    telemetry_->add_dfs(writer_worker, writer_worker, category,
                        static_cast<int64_t>(f.bytes), /*count_msg=*/true);
    const std::vector<int>& reps = f.blocks.front().replicas;
    for (int n = 1; n <= copies && n < static_cast<int>(reps.size()); ++n) {
      telemetry_->add_dfs(writer_worker, reps[static_cast<std::size_t>(n)],
                          category, static_cast<int64_t>(f.bytes),
                          /*count_msg=*/n == 1);
    }
  }

  files_[path] = std::move(f);
}

const MiniDfs::File& MiniDfs::get_file_locked(const std::string& path) const {
  auto it = files_.find(path);
  if (it == files_.end()) throw DfsError("no such file: " + path);
  return it->second;
}

void MiniDfs::charge_read_block(const Block& b, std::size_t bytes, int reader,
                                VClock* vt, TrafficCategory category) const {
  bool local = std::find(b.replicas.begin(), b.replicas.end(), reader) !=
               b.replicas.end();
  if (vt != nullptr) {
    double rate = local ? cost_.dfs_read_local : cost_.dfs_read_remote;
    SimDuration d = cost_.dfs_op_latency + transfer_time(bytes, rate);
    vt->advance(d);
    metrics_.add_time(TimeCategory::kDfsIo, d);
  }
  metrics_.add_traffic(category, bytes, /*remote=*/!local);
  // Telemetry mirror: a local read stays on the reader's diagonal; a remote
  // read is attributed to the block's primary replica as the source.
  if (telemetry_ != nullptr && TelemetryRecorder::enabled()) {
    telemetry_->add_dfs(local ? reader : b.replicas.front(), reader, category,
                        static_cast<int64_t>(bytes), /*count_msg=*/true);
  }
}

KVVec MiniDfs::read_all(const std::string& path, int reader_worker, VClock* vt,
                        TrafficCategory category) const {
  TraceSpan read_span("dfs_read", vt);
  std::lock_guard<std::mutex> lock(mu_);
  const File& f = get_file_locked(path);
  for (const Block& b : f.blocks) {
    charge_read_block(b, b.bytes, reader_worker, vt, category);
  }
  return f.records;
}

KVVec MiniDfs::read_split(const InputSplit& split, int reader_worker,
                          VClock* vt, TrafficCategory category) const {
  TraceSpan read_span("dfs_read", vt);
  std::lock_guard<std::mutex> lock(mu_);
  const File& f = get_file_locked(split.path);
  IMR_CHECK(split.end <= f.records.size() && split.begin <= split.end);
  // Charge each overlapping block for the overlapped byte share.
  for (const Block& b : f.blocks) {
    std::size_t lo = std::max(b.begin, split.begin);
    std::size_t hi = std::min(b.end, split.end);
    if (lo >= hi) continue;
    std::size_t bytes = 0;
    for (std::size_t i = lo; i < hi; ++i) bytes += f.records[i].wire_size();
    charge_read_block(b, bytes, reader_worker, vt, category);
  }
  return KVVec(f.records.begin() + static_cast<std::ptrdiff_t>(split.begin),
               f.records.begin() + static_cast<std::ptrdiff_t>(split.end));
}

KVVec MiniDfs::read_partition(const std::string& path, uint32_t index,
                              uint32_t num_partitions, int reader_worker,
                              VClock* vt, TrafficCategory category) const {
  TraceSpan read_span("dfs_read", vt);
  std::lock_guard<std::mutex> lock(mu_);
  const File& f = get_file_locked(path);
  KVVec out;
  for (const Block& b : f.blocks) {
    std::size_t bytes = 0;
    for (std::size_t i = b.begin; i < b.end; ++i) {
      const KV& kv = f.records[i];
      if (partition_of(kv.key, num_partitions) == index) {
        bytes += kv.wire_size();
        out.push_back(kv);
      }
    }
    if (bytes > 0) charge_read_block(b, bytes, reader_worker, vt, category);
  }
  return out;
}

KVVec MiniDfs::read_partition(const std::string& path, uint32_t index,
                              const PartitionFn& part, int reader_worker,
                              VClock* vt, TrafficCategory category) const {
  IMR_CHECK_MSG(static_cast<bool>(part), "read_partition: null partition fn");
  TraceSpan read_span("dfs_read", vt);
  std::lock_guard<std::mutex> lock(mu_);
  const File& f = get_file_locked(path);
  KVVec out;
  for (const Block& b : f.blocks) {
    std::size_t bytes = 0;
    for (std::size_t i = b.begin; i < b.end; ++i) {
      const KV& kv = f.records[i];
      if (part(kv.key) == index) {
        bytes += kv.wire_size();
        out.push_back(kv);
      }
    }
    if (bytes > 0) charge_read_block(b, bytes, reader_worker, vt, category);
  }
  return out;
}

std::vector<InputSplit> MiniDfs::make_splits(const std::string& path,
                                             int desired_splits) const {
  IMR_CHECK(desired_splits > 0);
  std::lock_guard<std::mutex> lock(mu_);
  const File& f = get_file_locked(path);

  // Group whole blocks into `desired_splits` contiguous groups of roughly
  // equal byte size (Hadoop: one split per block; we allow coarser splits to
  // honor slot limits for persistent tasks).
  std::vector<InputSplit> splits;
  std::size_t total = f.bytes;
  std::size_t target = std::max<std::size_t>(
      1, total / static_cast<std::size_t>(desired_splits));

  InputSplit cur;
  cur.path = path;
  cur.begin = 0;
  std::vector<int> pref;  // intersection of replica sets in the group
  bool first_block = true;
  for (const Block& b : f.blocks) {
    if (first_block) {
      pref = b.replicas;
      first_block = false;
    } else {
      std::vector<int> merged;
      for (int w : pref) {
        if (std::find(b.replicas.begin(), b.replicas.end(), w) !=
            b.replicas.end()) {
          merged.push_back(w);
        }
      }
      pref = std::move(merged);
    }
    cur.end = b.end;
    cur.bytes += b.bytes;
    bool enough = cur.bytes >= target &&
                  static_cast<int>(splits.size()) + 1 < desired_splits;
    if (enough) {
      cur.preferred_workers = pref;
      splits.push_back(cur);
      cur = InputSplit{};
      cur.path = path;
      cur.begin = b.end;
      first_block = true;
    }
  }
  if (cur.end > cur.begin || splits.empty()) {
    cur.preferred_workers = pref;
    splits.push_back(cur);
  }
  return splits;
}

bool MiniDfs::exists(const std::string& path) const {
  std::lock_guard<std::mutex> lock(mu_);
  return files_.count(path) > 0;
}

void MiniDfs::remove(const std::string& path) {
  std::lock_guard<std::mutex> lock(mu_);
  files_.erase(path);
}

std::size_t MiniDfs::remove_prefix(const std::string& prefix) {
  std::lock_guard<std::mutex> lock(mu_);
  std::size_t removed = 0;
  for (auto it = files_.begin(); it != files_.end();) {
    if (it->first.rfind(prefix, 0) == 0) {
      it = files_.erase(it);
      ++removed;
    } else {
      ++it;
    }
  }
  return removed;
}

std::vector<std::string> MiniDfs::list(const std::string& prefix) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> out;
  for (const auto& [path, f] : files_) {
    if (path.rfind(prefix, 0) == 0) out.push_back(path);
  }
  return out;
}

std::size_t MiniDfs::file_bytes(const std::string& path) const {
  std::lock_guard<std::mutex> lock(mu_);
  return get_file_locked(path).bytes;
}

std::size_t MiniDfs::file_records(const std::string& path) const {
  std::lock_guard<std::mutex> lock(mu_);
  return get_file_locked(path).records.size();
}

}  // namespace imr
