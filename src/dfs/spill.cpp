#include "dfs/spill.h"

#include "common/strings.h"

namespace imr {

namespace {

// Records per read_split refill of a spill-run cursor. Small enough that k
// open cursors plus the in-memory tail stay far under any sane budget,
// large enough that the per-read virtual-time op latency amortizes.
constexpr std::size_t kChunkRecords = 1024;

// Streams one spill-run file in kChunkRecords slices, so a merge over many
// runs never re-materializes a whole run in memory.
class DfsRunSource : public RecordSource {
 public:
  DfsRunSource(const MiniDfs& dfs, std::string path, std::size_t records,
               int reader, VClock* vt)
      : dfs_(dfs),
        path_(std::move(path)),
        records_(records),
        reader_(reader),
        vt_(vt) {}

  bool next(KV& out) override {
    if (pos_ >= buf_.size()) {
      if (read_ >= records_) return false;
      InputSplit chunk;
      chunk.path = path_;
      chunk.begin = read_;
      chunk.end = std::min(records_, read_ + kChunkRecords);
      buf_ = dfs_.read_split(chunk, reader_, vt_, TrafficCategory::kSpill);
      read_ = chunk.end;
      pos_ = 0;
      if (buf_.empty()) return false;
    }
    out = std::move(buf_[pos_++]);
    return true;
  }

 private:
  const MiniDfs& dfs_;
  std::string path_;
  std::size_t records_;
  int reader_;
  VClock* vt_;
  KVVec buf_;
  std::size_t pos_ = 0;
  std::size_t read_ = 0;  // records fetched from the file so far
};

}  // namespace

std::string SpillSet::next_run_path(int stream) {
  return strprintf("spill/%s/s%d-r%06d", tag_.c_str(), stream, next_run_++);
}

void SpillSet::register_run(int stream, const std::string& path,
                            std::size_t records) {
  const std::size_t bytes = dfs_.file_bytes(path);
  metrics_.inc("imr_spill_bytes_written", static_cast<int64_t>(bytes));
  metrics_.inc("imr_spill_runs_written");
  streams_[stream].push_back(Run{path, records, bytes});
}

void SpillSet::write_run(int stream, KVVec records, VClock* vt) {
  const std::string path = next_run_path(stream);
  const std::size_t n = records.size();
  dfs_.write_file(path, std::move(records), worker_, vt,
                  TrafficCategory::kSpill);
  register_run(stream, path, n);
}

void SpillSet::write_torn_run(int stream, KVVec records, VClock* vt) {
  records.resize(records.size() / 2);
  metrics_.inc("imr_torn_spills");
  write_run(stream, std::move(records), vt);
}

bool SpillSet::has_runs(int stream) const {
  auto it = streams_.find(stream);
  return it != streams_.end() && !it->second.empty();
}

std::size_t SpillSet::run_count(int stream) const {
  auto it = streams_.find(stream);
  return it == streams_.end() ? 0 : it->second.size();
}

std::size_t SpillSet::total_runs() const {
  std::size_t n = 0;
  for (const auto& [stream, runs] : streams_) n += runs.size();
  return n;
}

std::vector<std::unique_ptr<RecordSource>> SpillSet::sources(int stream,
                                                             VClock* vt) {
  std::vector<std::unique_ptr<RecordSource>> out;
  auto it = streams_.find(stream);
  if (it == streams_.end()) return out;
  out.reserve(it->second.size());
  for (const Run& run : it->second) {
    out.push_back(std::make_unique<DfsRunSource>(dfs_, run.path, run.records,
                                                 worker_, vt));
  }
  return out;
}

KVVec SpillSet::take_run(int stream, VClock* vt) {
  auto it = streams_.find(stream);
  if (it == streams_.end() || it->second.empty()) return {};
  Run run = it->second.front();
  it->second.erase(it->second.begin());
  if (it->second.empty()) streams_.erase(it);
  KVVec records =
      dfs_.read_all(run.path, worker_, vt, TrafficCategory::kSpill);
  metrics_.inc("imr_spill_bytes_read", static_cast<int64_t>(run.bytes));
  metrics_.inc("imr_spill_runs_read");
  dfs_.remove(run.path);
  return records;
}

void SpillSet::consume(int stream) {
  auto it = streams_.find(stream);
  if (it == streams_.end()) return;
  for (const Run& run : it->second) {
    metrics_.inc("imr_spill_bytes_read", static_cast<int64_t>(run.bytes));
    metrics_.inc("imr_spill_runs_read");
    dfs_.remove(run.path);
  }
  streams_.erase(it);
}

void SpillSet::abandon() {
  for (const auto& [stream, runs] : streams_) {
    for (const Run& run : runs) {
      metrics_.inc("imr_spill_bytes_dropped", static_cast<int64_t>(run.bytes));
      metrics_.inc("imr_spill_runs_dropped");
      dfs_.remove(run.path);
    }
  }
  streams_.clear();
}

}  // namespace imr
