// TaskContext — everything a running task needs: its identity, the worker it
// is homed on, its virtual clock, and costed access to compute, DFS, and the
// network fabric.
#pragma once

#include <string>

#include "cluster/cluster.h"
#include "common/log.h"
#include "common/sim_time.h"
#include "metrics/trace.h"

namespace imr {

class TaskContext {
 public:
  // Construction binds the calling thread's observability identity: log
  // lines carry the task name, and (when tracing) the thread records onto
  // this task's trace track inside a "task" lifecycle span. The previous
  // track binding is restored at destruction, so a driver thread that runs
  // nested task contexts (IterativeDriver) returns to its own timeline.
  TaskContext(Cluster& cluster, std::string task_name, int worker,
              int64_t start_vt_ns = 0)
      : cluster_(cluster),
        task_name_(std::move(task_name)),
        worker_(worker),
        vt_(start_vt_ns) {
    set_thread_log_tag(task_name_);
    if (TraceRecorder::enabled()) {
      traced_ = true;
      prev_track_ =
          TraceRecorder::instance().begin_thread_track(task_name_, worker_);
      TraceRecorder::instance().span_begin("task", vt_.now_ns());
    }
  }

  ~TaskContext() {
    if (traced_) {
      TraceRecorder::instance().span_end("task", vt_.now_ns());
      TraceRecorder::instance().set_thread_track(prev_track_);
    }
    clear_thread_log_tag();
  }

  TaskContext(const TaskContext&) = delete;
  TaskContext& operator=(const TaskContext&) = delete;

  Cluster& cluster() { return cluster_; }
  const std::string& task_name() const { return task_name_; }
  int worker() const { return worker_; }
  void set_worker(int w) { worker_ = w; }  // task migration
  VClock& vt() { return vt_; }

  // Charge measured user-function CPU time, scaled by the cost model and the
  // worker's speed factor.
  void charge_compute(int64_t cpu_ns, TimeCategory cat = TimeCategory::kCompute) {
    double scale = cluster_.cost().compute_scale;
    if (scale <= 0 || cpu_ns <= 0) return;
    double speed = cluster_.worker_speed(worker_);
    auto d = SimDuration(
        static_cast<int64_t>(static_cast<double>(cpu_ns) * scale / speed));
    vt_.advance(d);
    cluster_.metrics().add_time(cat, d);
  }

  // Charge a fixed cost (job/task initialization, cleanup).
  void charge(SimDuration d, TimeCategory cat) {
    vt_.advance(d);
    cluster_.metrics().add_time(cat, d);
  }

  // Costed sends through the fabric from this task.
  void send(Endpoint& to, NetMessage msg, TrafficCategory category) {
    cluster_.fabric().send(worker_, vt_, to, std::move(msg), category);
  }
  // One payload to many mailboxes; the enqueued copies share msg's records
  // buffer (each is still charged its full wire size).
  void broadcast(const std::vector<std::shared_ptr<Endpoint>>& to,
                 const NetMessage& msg, TrafficCategory category) {
    cluster_.fabric().broadcast(worker_, vt_, to, msg, category);
  }
  // One wire transfer to many co-homed mailboxes (aggregated exchange,
  // DESIGN.md §9): the first endpoint is charged the full payload, siblings
  // pay framing only.
  void send_coalesced(const std::vector<std::shared_ptr<Endpoint>>& to,
                      const NetMessage& msg, TrafficCategory category) {
    cluster_.fabric().send_coalesced(worker_, vt_, to, msg, category);
  }

  // DFS helpers that charge against this task's clock.
  KVVec dfs_read_all(const std::string& path) {
    return cluster_.dfs().read_all(path, worker_, &vt_);
  }
  KVVec dfs_read_split(const InputSplit& split) {
    return cluster_.dfs().read_split(split, worker_, &vt_);
  }
  void dfs_write(const std::string& path, KVVec records,
                 TrafficCategory category = TrafficCategory::kDfsWrite) {
    cluster_.dfs().write_file(path, std::move(records), worker_, &vt_,
                              category);
  }

 private:
  Cluster& cluster_;
  std::string task_name_;
  int worker_;
  VClock vt_;
  bool traced_ = false;
  TraceRecorder::TrackHandle prev_track_ = nullptr;
};

}  // namespace imr
