#include "cluster/cluster.h"

namespace imr {

Cluster::Cluster(ClusterConfig config) : config_(config) {
  IMR_CHECK(config_.num_workers > 0);
  IMR_CHECK(config_.map_slots_per_worker > 0);
  IMR_CHECK(config_.reduce_slots_per_worker > 0);
  dfs_ = std::make_unique<MiniDfs>(config_.num_workers, config_.cost,
                                   metrics_, config_.seed);
  fabric_ = std::make_unique<Fabric>(config_.cost, metrics_);
  speeds_.assign(static_cast<std::size_t>(config_.num_workers), 1.0);
  alive_.assign(static_cast<std::size_t>(config_.num_workers), true);
}

void Cluster::set_worker_speed(int worker, double speed) {
  check_worker(worker);
  IMR_CHECK(speed > 0);
  std::lock_guard<std::mutex> lock(mu_);
  speeds_[static_cast<std::size_t>(worker)] = speed;
}

double Cluster::worker_speed(int worker) const {
  check_worker(worker);
  std::lock_guard<std::mutex> lock(mu_);
  return speeds_[static_cast<std::size_t>(worker)];
}

void Cluster::schedule_worker_failure(int worker, int at_iteration) {
  check_worker(worker);
  std::lock_guard<std::mutex> lock(mu_);
  scheduled_failures_[worker] = at_iteration;
}

bool Cluster::worker_failed(int worker, int finished_iteration) const {
  check_worker(worker);
  std::lock_guard<std::mutex> lock(mu_);
  auto it = scheduled_failures_.find(worker);
  return it != scheduled_failures_.end() && finished_iteration >= it->second;
}

void Cluster::mark_dead(int worker) {
  check_worker(worker);
  std::lock_guard<std::mutex> lock(mu_);
  alive_[static_cast<std::size_t>(worker)] = false;
}

bool Cluster::worker_alive(int worker) const {
  check_worker(worker);
  std::lock_guard<std::mutex> lock(mu_);
  return alive_[static_cast<std::size_t>(worker)];
}

void Cluster::revive_worker(int worker) {
  check_worker(worker);
  std::lock_guard<std::mutex> lock(mu_);
  alive_[static_cast<std::size_t>(worker)] = true;
  scheduled_failures_.erase(worker);
}

}  // namespace imr
