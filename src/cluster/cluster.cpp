#include "cluster/cluster.h"

#include <algorithm>
#include <string>

#include "common/strings.h"

namespace imr {

Cluster::Cluster(ClusterConfig config) : config_(config) {
  IMR_CHECK(config_.num_workers > 0);
  IMR_CHECK(config_.map_slots_per_worker > 0);
  IMR_CHECK(config_.reduce_slots_per_worker > 0);
  telemetry_ = std::make_unique<TelemetryLedger>(config_.num_workers);
  dfs_ = std::make_unique<MiniDfs>(config_.num_workers, config_.cost,
                                   metrics_, config_.seed, telemetry_.get());
  fabric_ = std::make_unique<Fabric>(config_.cost, metrics_, telemetry_.get());
  fabric_->set_liveness_probe([this](int w) {
    return w < 0 || w >= config_.num_workers || worker_alive(w);
  });
  speeds_.assign(static_cast<std::size_t>(config_.num_workers), 1.0);
  alive_.assign(static_cast<std::size_t>(config_.num_workers), true);
}

void Cluster::set_worker_speed(int worker, double speed) {
  check_worker(worker);
  IMR_CHECK(speed > 0);
  std::lock_guard<std::mutex> lock(mu_);
  speeds_[static_cast<std::size_t>(worker)] = speed;
}

double Cluster::worker_speed(int worker) const {
  check_worker(worker);
  std::lock_guard<std::mutex> lock(mu_);
  return speeds_[static_cast<std::size_t>(worker)];
}

void Cluster::set_fault_schedule(const FaultSchedule& schedule) {
  for (const FaultEvent& e : schedule.events()) schedule_fault(e);
}

void Cluster::schedule_fault(const FaultEvent& event) {
  check_worker(event.worker);
  IMR_CHECK_MSG(event.at_iteration >= 1, "faults fire from iteration 1");
  std::lock_guard<std::mutex> lock(mu_);
  pending_faults_.push_back(event);
}

void Cluster::schedule_worker_failure(int worker, int at_iteration) {
  schedule_fault(
      FaultEvent{worker, FaultPoint::kIterationBoundary, at_iteration});
}

bool Cluster::worker_failed(int worker, int finished_iteration) const {
  return fault_pending(worker, FaultPoint::kIterationBoundary,
                       finished_iteration);
}

bool Cluster::fault_pending(int worker, FaultPoint point, int iteration) const {
  check_worker(worker);
  std::lock_guard<std::mutex> lock(mu_);
  return std::any_of(pending_faults_.begin(), pending_faults_.end(),
                     [&](const FaultEvent& e) {
                       return e.worker == worker && e.point == point &&
                              iteration >= e.at_iteration;
                     });
}

namespace {
// Static-storage instant names for the trace (TraceEvent::name does not own).
const char* fault_instant_name(FaultPoint p) {
  switch (p) {
    case FaultPoint::kIterationBoundary: return "fault:iteration_boundary";
    case FaultPoint::kMidMap: return "fault:mid_map";
    case FaultPoint::kMidShuffle: return "fault:mid_shuffle";
    case FaultPoint::kCheckpointWrite: return "fault:checkpoint_write";
    case FaultPoint::kStatePush: return "fault:state_push";
    case FaultPoint::kMigration: return "fault:migration";
  }
  return "fault:?";
}
}  // namespace

bool Cluster::consume_fault(int worker, FaultPoint point, int iteration,
                            const VClock* vt) {
  check_worker(worker);
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = std::find_if(pending_faults_.begin(), pending_faults_.end(),
                           [&](const FaultEvent& e) {
                             return e.worker == worker && e.point == point &&
                                    iteration >= e.at_iteration;
                           });
    if (it == pending_faults_.end()) return false;
    // Consuming removes the event, so a second probe — another task on the
    // same worker, or a later job sharing this cluster — can never trip the
    // same fault again.
    pending_faults_.erase(it);
    ++consumed_faults_;
  }
  metrics_.inc("faults_injected");
  metrics_.inc(std::string("faults_injected_") + fault_point_name(point));
  if (TraceRecorder::enabled()) {
    TraceRecorder::instance().instant(fault_instant_name(point),
                                      vt != nullptr ? vt->now_ns() : 0,
                                      iteration);
  }
  return true;
}

int Cluster::pending_fault_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int>(pending_faults_.size());
}

int64_t Cluster::consumed_fault_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return consumed_faults_;
}

void Cluster::assert_faults_consumed() const {
  std::lock_guard<std::mutex> lock(mu_);
  if (pending_faults_.empty()) return;
  const FaultEvent& e = pending_faults_.front();
  IMR_CHECK_MSG(false, strprintf(
                           "%d armed fault(s) never fired; first: worker %d, "
                           "%s, at_iteration %d",
                           static_cast<int>(pending_faults_.size()), e.worker,
                           fault_point_name(e.point), e.at_iteration));
}

void Cluster::mark_dead(int worker) {
  check_worker(worker);
  std::lock_guard<std::mutex> lock(mu_);
  alive_[static_cast<std::size_t>(worker)] = false;
}

bool Cluster::worker_alive(int worker) const {
  check_worker(worker);
  std::lock_guard<std::mutex> lock(mu_);
  return alive_[static_cast<std::size_t>(worker)];
}

void Cluster::revive_worker(int worker) {
  check_worker(worker);
  std::lock_guard<std::mutex> lock(mu_);
  alive_[static_cast<std::size_t>(worker)] = true;
  pending_faults_.erase(
      std::remove_if(pending_faults_.begin(), pending_faults_.end(),
                     [&](const FaultEvent& e) { return e.worker == worker; }),
      pending_faults_.end());
}

}  // namespace imr
