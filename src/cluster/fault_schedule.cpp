#include "cluster/fault_schedule.h"

#include "common/error.h"
#include "common/rng.h"

namespace imr {

const char* fault_point_name(FaultPoint p) {
  switch (p) {
    case FaultPoint::kIterationBoundary:
      return "iteration_boundary";
    case FaultPoint::kMidMap:
      return "mid_map";
    case FaultPoint::kMidShuffle:
      return "mid_shuffle";
    case FaultPoint::kCheckpointWrite:
      return "checkpoint_write";
    case FaultPoint::kStatePush:
      return "state_push";
    case FaultPoint::kMigration:
      return "migration";
    case FaultPoint::kSpillWrite:
      return "spill_write";
  }
  return "unknown";
}

FaultSchedule FaultSchedule::random(uint64_t seed, int num_workers,
                                    int max_iteration, int num_faults,
                                    std::vector<FaultPoint> points) {
  IMR_CHECK(num_workers > 0);
  IMR_CHECK(max_iteration >= 1);
  if (points.empty()) {
    for (int p = 0; p < kNumDefaultFaultPoints; ++p) {
      points.push_back(static_cast<FaultPoint>(p));
    }
  }
  Rng rng(seed);
  FaultSchedule schedule;
  // Prefer distinct workers: draw a worker not yet scheduled while one
  // exists, so a k-fault schedule kills k distinct failure domains.
  std::vector<bool> used(static_cast<std::size_t>(num_workers), false);
  int used_count = 0;
  for (int n = 0; n < num_faults; ++n) {
    int worker = static_cast<int>(rng.uniform(static_cast<uint64_t>(num_workers)));
    if (used_count < num_workers) {
      while (used[static_cast<std::size_t>(worker)]) {
        worker = (worker + 1) % num_workers;
      }
    }
    if (!used[static_cast<std::size_t>(worker)]) {
      used[static_cast<std::size_t>(worker)] = true;
      ++used_count;
    }
    FaultEvent e;
    e.worker = worker;
    e.point = points[static_cast<std::size_t>(rng.uniform(points.size()))];
    e.at_iteration =
        1 + static_cast<int>(rng.uniform(static_cast<uint64_t>(max_iteration)));
    schedule.add(e);
  }
  return schedule;
}

}  // namespace imr
