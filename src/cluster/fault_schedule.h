// FaultSchedule — deterministic, seeded fault injection for chaos testing.
//
// A schedule is a list of FaultEvents, each arming one fault at one of the
// engine's injection points (§3.4.1 recovery is exercised at every point a
// real worker could die, not just iteration boundaries). Events are armed on
// the Cluster and *consumed exactly once* by the first task that reaches a
// matching injection point — so a schedule can never leak into a later job
// sharing the same cluster (see Cluster::consume_fault).
//
// All schedules are either hand-built (targeted regression tests) or derived
// from a single seed (FaultSchedule::random), so every chaos run is
// reproducible bit-for-bit from its seed.
#pragma once

#include <cstdint>
#include <vector>

namespace imr {

// Where in the iteration pipeline a fault trips. Tasks probe the cluster at
// each of these points; a matching armed event kills the probing task's
// worker there.
enum class FaultPoint : uint8_t {
  kIterationBoundary = 0,  // reduce finished iteration k (the classic point)
  kMidMap,                 // map is about to process iteration k's input
  kMidShuffle,             // map flushed shuffle data but sent no EOS yet
  kCheckpointWrite,        // reduce dies during the checkpoint dump (§3.4.1)
  kStatePush,              // reduce shipped part of its reduce->map state
  kMigration,              // a respawned (migrated/recovered) task dies on
                           // startup — failure during recovery (§3.4.2)
  kSpillWrite,             // task dies while writing a budgeted spill run
                           // (out-of-core record path, DESIGN.md §10)
};

const char* fault_point_name(FaultPoint p);
inline constexpr int kNumFaultPoints = 7;
// Points FaultSchedule::random draws from when no explicit set is given:
// the original six. kSpillWrite only fires in budget-limited runs, so
// including it by default would plant never-firing events in every seeded
// unlimited-budget chaos sweep (tripping expect_all_faults_consumed) and
// shift every existing seed's draw sequence.
inline constexpr int kNumDefaultFaultPoints = 6;

struct FaultEvent {
  int worker = 0;
  FaultPoint point = FaultPoint::kIterationBoundary;
  // The event matches the first probe with iteration >= at_iteration (same
  // "at or after" semantics the original schedule_worker_failure had).
  int at_iteration = 1;
};

class FaultSchedule {
 public:
  FaultSchedule() = default;

  FaultSchedule& add(FaultEvent e) {
    events_.push_back(e);
    return *this;
  }
  FaultSchedule& add(int worker, FaultPoint point, int at_iteration) {
    return add(FaultEvent{worker, point, at_iteration});
  }

  // `num_faults` events drawn deterministically from `seed`: workers in
  // [0, num_workers), iterations in [1, max_iteration], points from `points`
  // (the six default points when empty — pass kSpillWrite explicitly for
  // budget-limited runs). Distinct workers are preferred so that cascades
  // hit independent failure domains.
  static FaultSchedule random(uint64_t seed, int num_workers,
                              int max_iteration, int num_faults,
                              std::vector<FaultPoint> points = {});

  const std::vector<FaultEvent>& events() const { return events_; }
  bool empty() const { return events_.empty(); }
  std::size_t size() const { return events_.size(); }

 private:
  std::vector<FaultEvent> events_;
};

}  // namespace imr
