// Cost model for the in-process cluster.
//
// Constants are calibrated against the paper's environments (§4.1.1): a
// 4-node local cluster on a 1 Gbps switch, and EC2 small instances. They are
// EFFECTIVE end-to-end rates of the Hadoop stack circa 2011 (JVM start-up,
// HTTP shuffle fetches, spill/merge passes, record-at-a-time deserialization)
// — not raw hardware numbers. The absolute values matter less than the
// ratios between job initialization, task initialization, network, DFS I/O,
// and per-record compute: those ratios determine the shapes of Figs. 4–14.
// The calibration evidence is recorded in EXPERIMENTS.md.
//
// `compute_scale` converts measured thread-CPU nanoseconds of the user
// map/reduce functions into virtual nanoseconds: Hadoop's per-record cost is
// microseconds, this runtime's is tens of nanoseconds.
#pragma once

#include "common/sim_time.h"

namespace imr {

struct CostModel {
  // --- job & task lifecycle (the "one-time initialization" factor) ---
  SimDuration job_init = sim_sec(1.5);     // submission, split computation, setup
  SimDuration task_init = sim_sec(0.3);    // per-task launch (JVM spin-up)
  SimDuration job_cleanup = sim_sec(0.2);  // commit + cleanup

  // --- network (the "static data shuffling" factor) ---
  double net_bandwidth = 6e6;              // effective shuffle bytes/sec/flow
  SimDuration net_latency = sim_ms(0.5);
  double local_bandwidth = 200e6;          // same-worker hand-off (memory)
  SimDuration local_latency = sim_us(20);
  SimDuration control_latency = sim_ms(1); // small control messages

  // --- DFS ---
  double dfs_read_local = 20e6;            // bytes/sec from a local replica
  double dfs_read_remote = 10e6;           // bytes/sec from a remote replica
  double dfs_write = 8e6;                  // bytes/sec incl. replication pipeline
  SimDuration dfs_op_latency = sim_ms(2);  // per-operation namespace overhead
  std::size_t dfs_block_size = 64u << 20;  // 64 MB (the paper's setting)
  int dfs_replication = 3;

  // --- compute ---
  double compute_scale = 40.0;  // measured CPU ns -> virtual ns

  // The paper's local cluster: 4 nodes, dual-core, 1 Gbps switch.
  static CostModel local_cluster() { return CostModel{}; }

  // EC2 small instances: slower startup, shared network, slower CPU.
  static CostModel ec2() {
    CostModel m;
    m.job_init = sim_sec(6.0);
    m.task_init = sim_sec(1.0);
    m.job_cleanup = sim_sec(0.5);
    m.net_bandwidth = 3e6;
    m.net_latency = sim_ms(1.0);
    m.dfs_read_local = 15e6;
    m.dfs_read_remote = 8e6;
    m.dfs_write = 5e6;
    m.compute_scale = 60.0;
    return m;
  }

  // Adapts the model for a run whose dataset is 1/data_scale of the real
  // size: per-byte and per-record costs are multiplied by data_scale so the
  // virtual times approximate the full-size system while the in-process data
  // stays small. Block size shrinks with the data so split/locality behaviour
  // is preserved. Fixed costs (init, latency) are size-independent.
  CostModel scaled_for_data(double data_scale) const {
    CostModel m = *this;
    m.net_bandwidth /= data_scale;
    m.local_bandwidth /= data_scale;
    m.dfs_read_local /= data_scale;
    m.dfs_read_remote /= data_scale;
    m.dfs_write /= data_scale;
    m.compute_scale *= data_scale;
    m.dfs_block_size = std::max<std::size_t>(
        4096, static_cast<std::size_t>(
                  static_cast<double>(m.dfs_block_size) / data_scale));
    return m;
  }

  // --- placement (DESIGN.md §9) ---
  // Per-byte transfer cost in virtual ns. 0-bandwidth means free transfer,
  // consistent with the fabric's transfer_time convention.
  double net_ns_per_byte() const {
    return net_bandwidth > 0 ? 1e9 / net_bandwidth : 0.0;
  }
  double local_ns_per_byte() const {
    return local_bandwidth > 0 ? 1e9 / local_bandwidth : 0.0;
  }
  // What one byte saves by moving over memory instead of the wire. The
  // placement planner co-locates high-affinity partitions only when this is
  // positive; under CostModel::free() both paths cost nothing and placement
  // falls back to round-robin, keeping logic-only tests' task layout stable.
  double colocation_gain_ns_per_byte() const {
    const double gain = net_ns_per_byte() - local_ns_per_byte();
    return gain > 0 ? gain : 0.0;
  }

  // All costs zero: logic-only unit tests.
  static CostModel free() {
    CostModel m;
    m.job_init = m.task_init = m.job_cleanup = SimDuration(0);
    m.net_latency = m.local_latency = m.control_latency = SimDuration(0);
    m.dfs_op_latency = SimDuration(0);
    m.net_bandwidth = m.local_bandwidth = 0;  // 0 => free transfer
    m.dfs_read_local = m.dfs_read_remote = m.dfs_write = 0;
    m.compute_scale = 0;
    return m;
  }
};

}  // namespace imr
