// Cluster — the in-process stand-in for a cluster of slave workers plus the
// shared services (DFS, network fabric, metrics, cost model).
//
// Workers are descriptors, not threads: each engine spawns one real thread
// per task and homes it on a worker. A worker contributes map/reduce task
// slots, a relative compute speed (for heterogeneous-cluster experiments,
// §3.4.2), and an alive flag driven by the failure injector (§3.4.1).
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "cluster/cost_model.h"
#include "cluster/fault_schedule.h"
#include "common/error.h"
#include "dfs/mini_dfs.h"
#include "metrics/metrics.h"
#include "metrics/telemetry.h"
#include "net/fabric.h"

namespace imr {

struct ClusterConfig {
  int num_workers = 4;
  int map_slots_per_worker = 2;    // Hadoop's default: two per slave
  int reduce_slots_per_worker = 2;
  CostModel cost;
  uint64_t seed = 17;
};

class Cluster {
 public:
  explicit Cluster(ClusterConfig config);
  Cluster(const Cluster&) = delete;
  Cluster& operator=(const Cluster&) = delete;

  int num_workers() const { return config_.num_workers; }
  int map_slots() const {
    return config_.num_workers * config_.map_slots_per_worker;
  }
  int reduce_slots() const {
    return config_.num_workers * config_.reduce_slots_per_worker;
  }

  const ClusterConfig& config() const { return config_; }
  const CostModel& cost() const { return config_.cost; }
  MetricsRegistry& metrics() { return metrics_; }
  MiniDfs& dfs() { return *dfs_; }
  Fabric& fabric() { return *fabric_; }
  // Per-cluster telemetry accumulator (traffic matrix, iteration buckets,
  // hot-key profiles). Always wired into the fabric and DFS; its probes are
  // inert until the TelemetryRecorder gate is armed.
  TelemetryLedger& telemetry() { return *telemetry_; }

  // Per-cluster job ordinal, used by the engines to uniquify DFS paths
  // ("name#N/..."). Scoped to the cluster — not process-global — because the
  // cluster's DFS is the namespace the tag disambiguates, and because DFS
  // replica placement is derived from the path: a process-global counter
  // would give the same job a different tag (hence different placement) on
  // every fresh-cluster run, breaking same-seed reproducibility.
  uint64_t next_job_ordinal() { return job_ordinal_.fetch_add(1); }

  // --- heterogeneity ---
  // speed = 1.0 is nominal; 0.5 runs user compute twice as slow.
  void set_worker_speed(int worker, double speed);
  double worker_speed(int worker) const;

  // --- failure injection ---
  // Arms fault events. Tasks probe the schedule at the engine's injection
  // points (see FaultPoint); the first probe matching an armed event
  // *consumes* it — exactly once — and the probing task notifies the master,
  // which marks the worker dead and recovers (§3.4.1). Consumption is what
  // keeps a schedule from leaking into a later job sharing this cluster.
  void set_fault_schedule(const FaultSchedule& schedule);
  void schedule_fault(const FaultEvent& event);
  // Legacy single-point form: fail once any task on `worker` finishes
  // iteration `at_iteration` (an armed kIterationBoundary event).
  void schedule_worker_failure(int worker, int at_iteration);

  // Query (does not consume): a kIterationBoundary event is armed at or
  // before `finished_iteration`.
  bool worker_failed(int worker, int finished_iteration) const;
  // Query (does not consume): an event for (worker, point) is armed at or
  // before `iteration`.
  bool fault_pending(int worker, FaultPoint point, int iteration) const;
  // Consumes the first armed event matching (worker, point, >= at_iteration).
  // Returns true exactly once per armed event; the engine calls this at its
  // injection points. Consumed events also increment the metrics counters
  // `faults_injected` and `faults_injected_<point>`, and — when tracing is
  // enabled and the caller passes its clock — record a "fault:<point>"
  // instant on the probing task's trace track.
  bool consume_fault(int worker, FaultPoint point, int iteration,
                     const VClock* vt = nullptr);

  int pending_fault_count() const;
  int64_t consumed_fault_count() const;
  // Asserts every armed fault was consumed — chaos harness hygiene: a sweep
  // case whose fault never fired is testing the failure-free path by
  // accident.
  void assert_faults_consumed() const;

  void mark_dead(int worker);
  bool worker_alive(int worker) const;
  // Revives the worker and disarms any fault still scheduled for it.
  void revive_worker(int worker);

 private:
  void check_worker(int worker) const {
    IMR_CHECK_MSG(worker >= 0 && worker < config_.num_workers,
                  "worker id out of range");
  }

  ClusterConfig config_;
  MetricsRegistry metrics_;
  // Declared before the DFS and fabric, which hold raw pointers into it.
  std::unique_ptr<TelemetryLedger> telemetry_;
  std::unique_ptr<MiniDfs> dfs_;
  std::unique_ptr<Fabric> fabric_;

  std::atomic<uint64_t> job_ordinal_{0};

  mutable std::mutex mu_;
  std::vector<double> speeds_;
  std::vector<bool> alive_;
  std::vector<FaultEvent> pending_faults_;
  int64_t consumed_faults_ = 0;
};

}  // namespace imr
