// Partition-aware task placement (DESIGN.md §9).
//
// The master assigns each persistent map/reduce pair a home worker. Without
// partition affinity the assignment is round-robin; with a graph-aware
// partitioner the affinity matrix (inter-partition edge counts) tells the
// master which reduce partitions feed each other the most shuffle bytes, and
// a greedy grouping co-locates them — subject to the same per-worker
// capacity the round-robin layout respects, so slot accounting is unchanged.
#pragma once

#include <cstdint>
#include <vector>

#include "cluster/cost_model.h"

namespace imr {

// Returns pair_worker[p] for p in [0, num_partitions): the worker each
// map/reduce pair is homed on.
//
// Round-robin (p % num_workers) when `affinity` is empty, or when the cost
// model says co-location saves nothing (colocation_gain_ns_per_byte() == 0,
// e.g. CostModel::free()). Otherwise: partitions in decreasing total-affinity
// order each go to the worker — among those still under capacity
// ceil(P / W) — with the highest affinity to the partitions already placed
// there (ties: lowest worker id), so the layout is deterministic.
//
// `affinity` is the flattened P×P row-major matrix from
// Partitioner::affinity(); both directions of a pair count, since shuffle
// bytes flow both ways.
std::vector<int> plan_placement(int num_partitions, int num_workers,
                                const std::vector<int64_t>& affinity,
                                const CostModel& cost);

}  // namespace imr
