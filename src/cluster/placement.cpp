#include "cluster/placement.h"

#include <algorithm>
#include <numeric>

#include "common/error.h"

namespace imr {

std::vector<int> plan_placement(int num_partitions, int num_workers,
                                const std::vector<int64_t>& affinity,
                                const CostModel& cost) {
  IMR_CHECK_MSG(num_partitions >= 1, "placement needs >= 1 partition");
  IMR_CHECK_MSG(num_workers >= 1, "placement needs >= 1 worker");
  std::vector<int> assignment(num_partitions);

  const auto P = static_cast<std::size_t>(num_partitions);
  const bool have_affinity = affinity.size() == P * P;
  if (!have_affinity || cost.colocation_gain_ns_per_byte() <= 0) {
    for (int p = 0; p < num_partitions; ++p) assignment[p] = p % num_workers;
    return assignment;
  }

  // Same per-worker pair count as round-robin, so the slot checks the master
  // already performed still hold for the grouped layout.
  const int cap = (num_partitions + num_workers - 1) / num_workers;

  // Place the partitions with the most total traffic first: they anchor the
  // groups the cheaper partitions then join.
  std::vector<int64_t> total(P, 0);
  for (std::size_t p = 0; p < P; ++p) {
    for (std::size_t q = 0; q < P; ++q) {
      if (p == q) continue;
      total[p] += affinity[p * P + q] + affinity[q * P + p];
    }
  }
  std::vector<int> order(P);
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
    return total[a] > total[b];  // ties keep index order (stable)
  });

  std::vector<int> load(num_workers, 0);
  std::vector<std::vector<int>> on_worker(num_workers);
  for (int p : order) {
    int best = -1;
    int64_t best_score = -1;
    for (int w = 0; w < num_workers; ++w) {
      if (load[w] >= cap) continue;
      int64_t score = 0;
      for (int q : on_worker[w]) {
        score += affinity[static_cast<std::size_t>(p) * P + q] +
                 affinity[static_cast<std::size_t>(q) * P + p];
      }
      // Strict > keeps ties on the lowest worker id; among zero-affinity
      // candidates prefer the least-loaded worker so isolated partitions
      // still spread out.
      if (score > best_score ||
          (score == best_score && best >= 0 && load[w] < load[best])) {
        best = w;
        best_score = score;
      }
    }
    IMR_CHECK_MSG(best >= 0, "placement capacity exhausted");
    assignment[p] = best;
    load[best] += 1;
    on_worker[best].push_back(p);
  }
  return assignment;
}

}  // namespace imr
