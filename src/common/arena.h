// Memory governance for the record path: a per-task byte budget and a
// pooled block allocator for record-path scratch structures.
//
// MemoryBudget is the policy object: every buffer the task holds (collected
// shuffle batches, held map output, arena blocks) charges its wire bytes
// against the budget, and the engines consult over() to decide when to
// degrade to disk (sort + spill a run to MiniDfs) instead of growing. The
// default limit of 0 means unlimited — charging still tracks the high-water
// mark, but over() never fires and the engines behave byte-for-byte as
// before.
//
// RecordArena is the mechanism that takes the global allocator off the hot
// path: sort_records' (prefix, index) order array — one malloc/free pair per
// reduce iteration and per map-side combine today — comes from pooled 64 KiB
// blocks that survive reset() and are reused every iteration. Blocks charge
// the budget when first mapped and release it when the arena dies, so the
// scratch memory is governed like every other buffer.
//
// Both classes are deliberately NOT thread-safe: each engine task owns one
// budget and one arena for its lifetime, on its own thread.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <type_traits>
#include <vector>

namespace imr {

class MemoryBudget {
 public:
  // limit 0 = unlimited (today's behavior; the high-water mark still tracks).
  explicit MemoryBudget(int64_t limit = 0) : limit_(limit) {}

  bool limited() const { return limit_ > 0; }

  void charge(int64_t bytes) {
    used_ += bytes;
    if (used_ > hwm_) hwm_ = used_;
  }
  void release(int64_t bytes) {
    used_ -= bytes;
    if (used_ < 0) used_ = 0;
  }

  // True when a limit is set and charged bytes exceed it — the engines'
  // spill trigger. Checked AFTER the overflowing charge, so a single record
  // larger than the whole budget still makes progress (spill granularity is
  // a buffer, never a fraction of a record).
  bool over() const { return limit_ > 0 && used_ > limit_; }

  int64_t limit() const { return limit_; }
  int64_t used() const { return used_; }
  int64_t hwm() const { return hwm_; }

 private:
  int64_t limit_;
  int64_t used_ = 0;
  int64_t hwm_ = 0;
};

class RecordArena {
 public:
  static constexpr std::size_t kBlockBytes = 64 * 1024;

  // Block bytes are charged against `budget` (may be null) as blocks are
  // mapped and released when the arena is destroyed.
  explicit RecordArena(MemoryBudget* budget = nullptr) : budget_(budget) {}
  ~RecordArena();

  RecordArena(const RecordArena&) = delete;
  RecordArena& operator=(const RecordArena&) = delete;

  // Bump-allocates `bytes` aligned to `align` (a power of two). Oversized
  // requests get a dedicated block of exactly the requested size.
  void* allocate(std::size_t bytes, std::size_t align);

  // Typed scratch array of n trivially-destructible elements.
  template <typename T>
  T* alloc_array(std::size_t n) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "arena memory is reclaimed without running destructors");
    return static_cast<T*>(allocate(n * sizeof(T), alignof(T)));
  }

  // Rewinds to empty. Blocks stay mapped (and charged) for reuse — this is
  // the per-iteration fast path: after the first iteration, reset() +
  // allocate() touch no allocator at all.
  void reset();

  // Total bytes of mapped blocks (the budget charge).
  std::size_t block_bytes() const { return total_block_bytes_; }

 private:
  struct Block {
    std::unique_ptr<char[]> data;
    std::size_t size = 0;
  };

  std::vector<Block> blocks_;
  std::size_t cur_ = 0;  // block being bumped; == blocks_.size() when full
  std::size_t off_ = 0;  // offset into blocks_[cur_]
  std::size_t total_block_bytes_ = 0;
  MemoryBudget* budget_;
};

}  // namespace imr
