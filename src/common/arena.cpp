#include "common/arena.h"

namespace imr {

RecordArena::~RecordArena() {
  if (budget_ != nullptr) {
    budget_->release(static_cast<int64_t>(total_block_bytes_));
  }
}

void* RecordArena::allocate(std::size_t bytes, std::size_t align) {
  if (bytes == 0) bytes = 1;
  while (cur_ < blocks_.size()) {
    Block& b = blocks_[cur_];
    const std::size_t aligned = (off_ + align - 1) & ~(align - 1);
    if (aligned + bytes <= b.size) {
      off_ = aligned + bytes;
      return b.data.get() + aligned;
    }
    // This block is exhausted for a request of this size; move on. Later
    // blocks (pooled from a previous generation) may still fit.
    ++cur_;
    off_ = 0;
  }
  // Map a fresh block. kBlockBytes is enough for the common case (the sort
  // order array for a full default send buffer); larger requests get an
  // exact-size block so one huge sort does not permanently inflate the pool
  // geometry. Blocks from new[] are max_align-aligned, so offset 0 is fine.
  const std::size_t size = bytes > kBlockBytes ? bytes : kBlockBytes;
  Block b;
  b.data = std::make_unique<char[]>(size);
  b.size = size;
  blocks_.push_back(std::move(b));
  total_block_bytes_ += size;
  if (budget_ != nullptr) budget_->charge(static_cast<int64_t>(size));
  cur_ = blocks_.size() - 1;
  off_ = bytes;
  return blocks_[cur_].data.get();
}

void RecordArena::reset() {
  cur_ = 0;
  off_ = 0;
}

}  // namespace imr
