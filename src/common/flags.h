// Minimal command-line flag parsing for the tools and examples:
// --key=value / --key value / --switch.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "common/error.h"

namespace imr {

class Flags {
 public:
  // Parses argv; non-flag arguments are collected as positionals.
  Flags(int argc, char** argv);

  bool has(const std::string& name) const { return values_.count(name) > 0; }
  std::string get(const std::string& name, const std::string& dflt) const;
  int64_t get_int(const std::string& name, int64_t dflt) const;
  double get_double(const std::string& name, double dflt) const;
  bool get_bool(const std::string& name) const;  // present => true

  const std::vector<std::string>& positional() const { return positional_; }

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

}  // namespace imr
