// Deterministic random number generation for workload synthesis.
//
// All generators take explicit seeds so that every dataset, partition, and
// failure schedule in tests and benches is reproducible bit-for-bit.
#pragma once

#include <cstdint>
#include <random>
#include <vector>

namespace imr {

class Rng {
 public:
  explicit Rng(uint64_t seed) : engine_(seed) {}

  uint64_t next_u64() { return engine_(); }

  // Uniform in [0, n).
  uint64_t uniform(uint64_t n) {
    std::uniform_int_distribution<uint64_t> d(0, n - 1);
    return d(engine_);
  }

  // Uniform real in [lo, hi).
  double uniform_real(double lo, double hi) {
    std::uniform_real_distribution<double> d(lo, hi);
    return d(engine_);
  }

  // Log-normal with the given shape (sigma) and scale (mu) parameters —
  // the paper's degree and weight distributions (§4.1.2).
  double log_normal(double mu, double sigma) {
    std::lognormal_distribution<double> d(mu, sigma);
    return d(engine_);
  }

  double gaussian(double mean, double stddev) {
    std::normal_distribution<double> d(mean, stddev);
    return d(engine_);
  }

  // Sample k distinct values from [0, n) (k << n expected).
  std::vector<uint64_t> sample_distinct(uint64_t n, std::size_t k);

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace imr
