// Virtual (simulated) time.
//
// The in-process cluster runs tasks on real threads but measures time on a
// virtual clock, discrete-event style: every task owns a VClock; charged
// costs (job init, DFS I/O, network transfer, scaled compute) advance it, and
// every message carries the virtual timestamp at which it becomes available
// at the receiver, who then syncs forward. Barriers are therefore max() over
// the participating clocks — which is exactly how the paper's synchronization
// overheads (and iMapReduce's asynchronous-map savings) manifest.
//
// This gives deterministic, hardware-independent timing: a benchmark run on a
// 1-core box reports the same simulated seconds as on a 64-core box, and the
// cost-model constants are calibrated directly against the paper's cluster.
//
// User-function compute is measured with the per-thread CPU clock (so that
// physical time-slicing between the many worker threads does not pollute the
// measurement) and converted to virtual time by a configurable scale factor.
#pragma once

#include <algorithm>
#include <chrono>
#include <cstdint>

namespace imr {

// Simulated durations in nanoseconds of virtual time.
using SimDuration = std::chrono::nanoseconds;

inline SimDuration sim_ms(double ms) {
  return SimDuration(static_cast<int64_t>(ms * 1e6));
}
inline SimDuration sim_us(double us) {
  return SimDuration(static_cast<int64_t>(us * 1e3));
}
inline SimDuration sim_sec(double s) {
  return SimDuration(static_cast<int64_t>(s * 1e9));
}
inline double sim_to_ms(SimDuration d) {
  return static_cast<double>(d.count()) / 1e6;
}
inline double sim_to_sec(SimDuration d) {
  return static_cast<double>(d.count()) / 1e9;
}

// Virtual duration for moving `bytes` at `bytes_per_sec`.
SimDuration transfer_time(std::size_t bytes, double bytes_per_sec);

// A task-local virtual clock. Not thread-safe by design: each task thread
// owns exactly one; cross-task synchronization happens via message
// timestamps.
class VClock {
 public:
  VClock() = default;
  explicit VClock(int64_t start_ns) : now_ns_(start_ns) {}

  int64_t now_ns() const { return now_ns_; }
  double now_ms() const { return static_cast<double>(now_ns_) / 1e6; }

  void advance(SimDuration d) {
    if (d.count() > 0) now_ns_ += d.count();
  }

  // Jump forward to `t` if it is in the future (receiving a message, passing
  // a barrier). Never moves backwards.
  void sync_to(int64_t t_ns) { now_ns_ = std::max(now_ns_, t_ns); }

  void reset(int64_t t_ns) { now_ns_ = t_ns; }

 private:
  int64_t now_ns_ = 0;
};

// Measures CPU time consumed by the calling thread between construction /
// reset() and elapsed(). Immune to preemption by other worker threads.
class ThreadCpuTimer {
 public:
  ThreadCpuTimer() { reset(); }
  void reset();
  int64_t elapsed_ns() const;

 private:
  int64_t start_ns_ = 0;
};

// Plain wall-clock stopwatch (used only for meta-reporting of how long the
// benches themselves take, never for simulated results).
class Stopwatch {
 public:
  Stopwatch() : start_(std::chrono::steady_clock::now()) {}
  void reset() { start_ = std::chrono::steady_clock::now(); }
  double elapsed_ms() const {
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now() - start_)
        .count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

}  // namespace imr
