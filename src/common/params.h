// String-keyed job parameters, mirroring Hadoop's JobConf key/value space
// (e.g. "mapred.iterjob.maxiter"). Typed getters throw ConfigError on
// missing keys unless a default is supplied.
#pragma once

#include <charconv>
#include <map>
#include <optional>
#include <string>

#include "common/error.h"
#include "common/strings.h"

namespace imr {

class Params {
 public:
  void set(const std::string& key, std::string value) {
    values_[key] = std::move(value);
  }
  void set_int(const std::string& key, int64_t v) {
    values_[key] = std::to_string(v);
  }
  void set_double(const std::string& key, double v) {
    // std::to_string is fixed-notation with 6 decimals: it flattens any
    // value below 5e-7 to "0.000000" (a delta threshold of 1e-7 would reach
    // the mapper as 0). to_chars emits the shortest exactly-round-tripping
    // form instead.
    char buf[32];
    auto res = std::to_chars(buf, buf + sizeof(buf), v);
    values_[key] = std::string(buf, res.ptr);
  }
  void set_bool(const std::string& key, bool v) {
    values_[key] = v ? "true" : "false";
  }

  bool has(const std::string& key) const { return values_.count(key) > 0; }

  std::string get(const std::string& key) const {
    auto it = values_.find(key);
    if (it == values_.end()) throw ConfigError("missing parameter: " + key);
    return it->second;
  }
  std::string get(const std::string& key, const std::string& dflt) const {
    auto it = values_.find(key);
    return it == values_.end() ? dflt : it->second;
  }
  int64_t get_int(const std::string& key) const { return std::stoll(get(key)); }
  int64_t get_int(const std::string& key, int64_t dflt) const {
    auto it = values_.find(key);
    return it == values_.end() ? dflt : std::stoll(it->second);
  }
  double get_double(const std::string& key) const {
    return parse_double(key, get(key));
  }
  double get_double(const std::string& key, double dflt) const {
    auto it = values_.find(key);
    return it == values_.end() ? dflt : parse_double(key, it->second);
  }
  bool get_bool(const std::string& key, bool dflt) const {
    auto it = values_.find(key);
    if (it == values_.end()) return dflt;
    return it->second == "true" || it->second == "1";
  }

  const std::map<std::string, std::string>& all() const { return values_; }

 private:
  // Parse side of the set_double round trip: locale-independent and strict,
  // so a value formatted by to_chars always reads back bit-identical no
  // matter what LC_NUMERIC the host process runs under.
  static double parse_double(const std::string& key, const std::string& s) {
    double v;
    if (!parse_double_strict(s, v)) {
      throw ConfigError("parameter " + key + " expects a number, got '" + s +
                        "'");
    }
    return v;
  }

  std::map<std::string, std::string> values_;
};

}  // namespace imr
