#include "common/codec.h"

#include <bit>
#include <cstring>

namespace imr {

namespace {

void require(bool ok, const char* what) {
  if (!ok) throw FormatError(what);
}

void put_be(uint64_t v, int nbytes, Bytes& out) {
  for (int i = nbytes - 1; i >= 0; --i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

uint64_t get_be(BytesView in, std::size_t& pos, int nbytes) {
  require(pos + static_cast<std::size_t>(nbytes) <= in.size(),
          "buffer underflow in fixed-width decode");
  uint64_t v = 0;
  for (int i = 0; i < nbytes; ++i) {
    v = (v << 8) | static_cast<unsigned char>(in[pos + i]);
  }
  pos += static_cast<std::size_t>(nbytes);
  return v;
}

}  // namespace

void encode_u32(uint32_t v, Bytes& out) { put_be(v, 4, out); }
void encode_u64(uint64_t v, Bytes& out) { put_be(v, 8, out); }

void encode_i64(int64_t v, Bytes& out) {
  // Flip the sign bit so negative < positive in byte order.
  put_be(static_cast<uint64_t>(v) ^ (1ull << 63), 8, out);
}

void encode_f64(double v, Bytes& out) {
  uint64_t bits = std::bit_cast<uint64_t>(v);
  // Standard order-preserving transform for IEEE-754.
  if (bits >> 63) {
    bits = ~bits;  // negative: flip everything
  } else {
    bits |= (1ull << 63);  // positive: set sign bit
  }
  put_be(bits, 8, out);
}

uint32_t decode_u32(BytesView in, std::size_t& pos) {
  return static_cast<uint32_t>(get_be(in, pos, 4));
}

uint64_t decode_u64(BytesView in, std::size_t& pos) {
  return get_be(in, pos, 8);
}

int64_t decode_i64(BytesView in, std::size_t& pos) {
  return static_cast<int64_t>(get_be(in, pos, 8) ^ (1ull << 63));
}

double decode_f64(BytesView in, std::size_t& pos) {
  uint64_t bits = get_be(in, pos, 8);
  if (bits >> 63) {
    bits &= ~(1ull << 63);
  } else {
    bits = ~bits;
  }
  return std::bit_cast<double>(bits);
}

Bytes u32_key(uint32_t v) {
  Bytes b;
  b.reserve(4);
  encode_u32(v, b);
  return b;
}

Bytes u64_key(uint64_t v) {
  Bytes b;
  b.reserve(8);
  encode_u64(v, b);
  return b;
}

Bytes f64_value(double v) {
  Bytes b;
  b.reserve(8);
  encode_f64(v, b);
  return b;
}

uint32_t as_u32(BytesView b) {
  std::size_t pos = 0;
  uint32_t v = decode_u32(b, pos);
  require(pos == b.size(), "trailing bytes after u32");
  return v;
}

uint64_t as_u64(BytesView b) {
  std::size_t pos = 0;
  uint64_t v = decode_u64(b, pos);
  require(pos == b.size(), "trailing bytes after u64");
  return v;
}

double as_f64(BytesView b) {
  std::size_t pos = 0;
  double v = decode_f64(b, pos);
  require(pos == b.size(), "trailing bytes after f64");
  return v;
}

void encode_varint(uint64_t v, Bytes& out) {
  while (v >= 0x80) {
    out.push_back(static_cast<char>((v & 0x7f) | 0x80));
    v >>= 7;
  }
  out.push_back(static_cast<char>(v));
}

uint64_t decode_varint(BytesView in, std::size_t& pos) {
  uint64_t v = 0;
  int shift = 0;
  while (true) {
    require(pos < in.size(), "buffer underflow in varint");
    require(shift < 64, "varint too long");
    unsigned char b = static_cast<unsigned char>(in[pos++]);
    v |= static_cast<uint64_t>(b & 0x7f) << shift;
    if (!(b & 0x80)) return v;
    shift += 7;
  }
}

void encode_bytes(BytesView b, Bytes& out) {
  encode_varint(b.size(), out);
  out.append(b);
}

Bytes decode_bytes(BytesView in, std::size_t& pos) {
  return Bytes(decode_bytes_view(in, pos));
}

BytesView decode_bytes_view(BytesView in, std::size_t& pos) {
  uint64_t n = decode_varint(in, pos);
  require(pos + n <= in.size(), "buffer underflow in bytes segment");
  BytesView v = in.substr(pos, n);
  pos += n;
  return v;
}

void encode_f64_vec(const std::vector<double>& v, Bytes& out) {
  encode_varint(v.size(), out);
  for (double d : v) encode_f64(d, out);
}

std::vector<double> decode_f64_vec(BytesView in, std::size_t& pos) {
  uint64_t n = decode_varint(in, pos);
  std::vector<double> v;
  v.reserve(n);
  for (uint64_t i = 0; i < n; ++i) v.push_back(decode_f64(in, pos));
  return v;
}

void encode_wedges(const std::vector<WEdge>& edges, Bytes& out) {
  encode_varint(edges.size(), out);
  for (const WEdge& e : edges) {
    encode_u32(e.dst, out);
    encode_f64(e.weight, out);
  }
}

std::vector<WEdge> decode_wedges(BytesView in) {
  std::size_t pos = 0;
  uint64_t n = decode_varint(in, pos);
  std::vector<WEdge> edges;
  edges.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    WEdge e;
    e.dst = decode_u32(in, pos);
    e.weight = decode_f64(in, pos);
    edges.push_back(e);
  }
  require(pos == in.size(), "trailing bytes after edge list");
  return edges;
}

void encode_adj(const std::vector<uint32_t>& neighbors, Bytes& out) {
  encode_varint(neighbors.size(), out);
  for (uint32_t v : neighbors) encode_u32(v, out);
}

std::vector<uint32_t> decode_adj(BytesView in) {
  std::size_t pos = 0;
  uint64_t n = decode_varint(in, pos);
  std::vector<uint32_t> adj;
  adj.reserve(n);
  for (uint64_t i = 0; i < n; ++i) adj.push_back(decode_u32(in, pos));
  require(pos == in.size(), "trailing bytes after adjacency list");
  return adj;
}

}  // namespace imr
