// Minimal leveled logger. Thread-safe, writes to stderr.
//
// Every line is prefixed with a monotonic timestamp, the level, and the
// logging thread's identity: `[<sec>.<ms> LEVEL tNN tag] msg`, where NN is a
// small process-unique thread number (assigned on a thread's first log) and
// `tag` is the task name bound via set_thread_log_tag — so interleaved task
// output from a run is attributable line by line. Untagged threads print
// just `tNN`.
//
// The engines log task lifecycle events at DEBUG and job milestones at INFO;
// benches set WARN to keep output clean.
#pragma once

#include <cstdint>
#include <sstream>
#include <string>

namespace imr {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

// Global minimum level; messages below it are discarded cheaply.
void set_log_level(LogLevel level);
LogLevel log_level();

// Binds/clears the calling thread's log tag (TaskContext binds the task
// name for the task's lifetime).
void set_thread_log_tag(const std::string& tag);
void clear_thread_log_tag();

namespace detail {
void log_line(LogLevel level, const std::string& msg);
// Pure formatter behind log_line, separated so the prefix layout is
// testable: "[<sec>.<ms> LEVEL tNN tag] msg" (no trailing newline).
std::string format_log_line(LogLevel level, const std::string& msg,
                            int64_t mono_ms, int thread_id,
                            const std::string& tag);

class LogStream {
 public:
  explicit LogStream(LogLevel level) : level_(level) {}
  ~LogStream() { log_line(level_, os_.str()); }
  LogStream(const LogStream&) = delete;
  LogStream& operator=(const LogStream&) = delete;

  template <typename T>
  LogStream& operator<<(const T& v) {
    os_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream os_;
};
}  // namespace detail

}  // namespace imr

#define IMR_LOG(level)                                     \
  if (static_cast<int>(::imr::LogLevel::level) <           \
      static_cast<int>(::imr::log_level())) {              \
  } else                                                   \
    ::imr::detail::LogStream(::imr::LogLevel::level)

#define IMR_DEBUG IMR_LOG(kDebug)
#define IMR_INFO IMR_LOG(kInfo)
#define IMR_WARN IMR_LOG(kWarn)
#define IMR_ERROR IMR_LOG(kError)
