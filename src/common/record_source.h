// RecordSource — a pull cursor over one sorted run of records.
//
// Lives in common (not mapreduce) so both ends of the out-of-core record
// path can meet at it: the dfs layer implements it over spill-run files
// (SpillSet::sources) and the mapreduce layer merges implementations with a
// loser tree (shuffle_util::MergeCursor) without either depending on the
// other.
#pragma once

#include <cstddef>
#include <utility>

#include "common/bytes.h"

namespace imr {

// next() MOVES the next record into `out` and returns false once the run is
// exhausted (after which it keeps returning false).
class RecordSource {
 public:
  virtual ~RecordSource() = default;
  virtual bool next(KV& out) = 0;
};

// Streams a sorted KVVec, moving records out of the donated buffer.
class VecSource : public RecordSource {
 public:
  explicit VecSource(KVVec& records) : records_(&records) {}
  bool next(KV& out) override {
    if (pos_ >= records_->size()) return false;
    out = std::move((*records_)[pos_++]);
    return true;
  }

 private:
  KVVec* records_;
  std::size_t pos_ = 0;
};

}  // namespace imr
