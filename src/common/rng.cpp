#include "common/rng.h"

#include <unordered_set>

#include "common/error.h"

namespace imr {

std::vector<uint64_t> Rng::sample_distinct(uint64_t n, std::size_t k) {
  IMR_CHECK_MSG(k <= n, "cannot sample more distinct values than the range");
  std::unordered_set<uint64_t> seen;
  std::vector<uint64_t> out;
  out.reserve(k);
  while (out.size() < k) {
    uint64_t v = uniform(n);
    if (seen.insert(v).second) out.push_back(v);
  }
  return out;
}

}  // namespace imr
