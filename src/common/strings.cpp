#include "common/strings.h"

#include <charconv>
#include <cstdarg>
#include <cstdio>
#include <sstream>

namespace imr {

std::vector<std::string> split(const std::string& s, char sep) {
  std::vector<std::string> parts;
  std::size_t start = 0;
  while (true) {
    std::size_t pos = s.find(sep, start);
    if (pos == std::string::npos) {
      parts.push_back(s.substr(start));
      return parts;
    }
    parts.push_back(s.substr(start, pos - start));
    start = pos + 1;
  }
}

std::string join(const std::vector<std::string>& parts,
                 const std::string& sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i) out += sep;
    out += parts[i];
  }
  return out;
}

std::string human_bytes(std::size_t bytes) {
  const char* units[] = {"B", "KB", "MB", "GB", "TB"};
  double v = static_cast<double>(bytes);
  int u = 0;
  while (v >= 1024.0 && u < 4) {
    v /= 1024.0;
    ++u;
  }
  char buf[48];
  if (u == 0) {
    std::snprintf(buf, sizeof(buf), "%.0f %s", v, units[u]);
  } else {
    std::snprintf(buf, sizeof(buf), "%.2f %s", v, units[u]);
  }
  return buf;
}

std::string human_count(uint64_t n) {
  char buf[48];
  if (n >= 1000000000ull) {
    std::snprintf(buf, sizeof(buf), "%.1fB", static_cast<double>(n) / 1e9);
  } else if (n >= 1000000ull) {
    std::snprintf(buf, sizeof(buf), "%.1fM", static_cast<double>(n) / 1e6);
  } else if (n >= 10000ull) {
    std::snprintf(buf, sizeof(buf), "%.0fK", static_cast<double>(n) / 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%llu", static_cast<unsigned long long>(n));
  }
  return buf;
}

std::string fmt_double(double v, int precision) {
  std::ostringstream os;
  os.setf(std::ios::fixed);
  os.precision(precision);
  os << v;
  return os.str();
}

bool parse_double_strict(const std::string& s, double& out) {
  const char* first = s.data();
  const char* last = first + s.size();
  auto res = std::from_chars(first, last, out);
  return res.ec == std::errc() && res.ptr == last;
}

std::string strprintf(const char* fmt, ...) {
  va_list ap;
  va_start(ap, fmt);
  char buf[1024];
  std::vsnprintf(buf, sizeof(buf), fmt, ap);
  va_end(ap);
  return buf;
}

}  // namespace imr
