#include "common/sim_time.h"

#include <ctime>

namespace imr {

SimDuration transfer_time(std::size_t bytes, double bytes_per_sec) {
  if (bytes_per_sec <= 0) return SimDuration(0);
  double secs = static_cast<double>(bytes) / bytes_per_sec;
  return SimDuration(static_cast<int64_t>(secs * 1e9));
}

namespace {
int64_t thread_cpu_now_ns() {
  timespec ts;
  clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts);
  return static_cast<int64_t>(ts.tv_sec) * 1000000000ll + ts.tv_nsec;
}
}  // namespace

void ThreadCpuTimer::reset() { start_ns_ = thread_cpu_now_ns(); }

int64_t ThreadCpuTimer::elapsed_ns() const {
  return thread_cpu_now_ns() - start_ns_;
}

}  // namespace imr
