// Error handling: the framework uses exceptions (per C++ Core Guidelines E.2)
// for conditions that the local code cannot reasonably handle, plus CHECK
// macros for internal invariants.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace imr {

// Base class for all framework errors.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

// A malformed record, bad codec input, or unparsable file.
class FormatError : public Error {
 public:
  explicit FormatError(const std::string& what) : Error("format: " + what) {}
};

// DFS namespace errors (missing path, double create, ...).
class DfsError : public Error {
 public:
  explicit DfsError(const std::string& what) : Error("dfs: " + what) {}
};

// Bad job configuration detected at submission time.
class ConfigError : public Error {
 public:
  explicit ConfigError(const std::string& what) : Error("config: " + what) {}
};

// Thrown inside a task when the failure injector or the master kills it.
// Engines catch this at the task boundary; it must not escape a job run.
class TaskKilled : public Error {
 public:
  explicit TaskKilled(const std::string& what) : Error("killed: " + what) {}
};

namespace detail {
[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line, const std::string& msg) {
  std::ostringstream os;
  os << "CHECK failed: " << expr << " at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw Error(os.str());
}
}  // namespace detail

}  // namespace imr

// Invariant check that throws imr::Error. Always on (these guard framework
// invariants, not user input; they are cheap relative to I/O costs).
#define IMR_CHECK(expr)                                              \
  do {                                                               \
    if (!(expr)) ::imr::detail::check_failed(#expr, __FILE__, __LINE__, ""); \
  } while (0)

#define IMR_CHECK_MSG(expr, msg)                                       \
  do {                                                                 \
    if (!(expr))                                                       \
      ::imr::detail::check_failed(#expr, __FILE__, __LINE__, (msg));   \
  } while (0)
