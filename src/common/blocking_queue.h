// Unbounded MPMC blocking queue with close semantics.
//
// Used for every data channel in the runtime. The queues are unbounded by
// design: the shuffle fan-in (n map tasks into one reduce task) would
// otherwise be able to deadlock under bounded capacity, and the datasets the
// in-process cluster handles fit comfortably in memory.
#pragma once

#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

#ifdef IMR_SANITIZE_BUILD
#include <cassert>
#endif

namespace imr {

template <typename T>
class BlockingQueue {
 public:
  BlockingQueue() = default;
  BlockingQueue(const BlockingQueue&) = delete;
  BlockingQueue& operator=(const BlockingQueue&) = delete;

  // Pushes an item. Pushing to a closed queue drops the item and returns
  // false (a late producer racing a consumer-side shutdown is normal during
  // termination and rollback); callers that must account for every message
  // use the return value.
  bool push(T item) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (closed_) return false;
      items_.push_back(std::move(item));
#ifdef IMR_SANITIZE_BUILD
      if (items_.size() > depth_hwm_) depth_hwm_ = items_.size();
      assert(depth_bound_ == 0 || items_.size() <= depth_bound_);
#endif
    }
    cv_.notify_one();
    return true;
  }

  // Blocks until an item is available or the queue is closed and drained.
  // Returns nullopt only on closed-and-empty.
  std::optional<T> pop() {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [&] { return !items_.empty() || closed_; });
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  // Non-blocking pop.
  std::optional<T> try_pop() {
    std::lock_guard<std::mutex> lock(mu_);
    if (items_.empty()) return std::nullopt;
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  // Closes the queue: wakes all blocked consumers; further pushes are
  // dropped; pops drain remaining items then return nullopt.
  void close() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
    }
    cv_.notify_all();
  }

  // Reopens a closed queue and discards any stale items, returning how many
  // were discarded. Used when a persistent task is rolled back and its
  // channels must be reset.
  std::size_t reset() {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = false;
    std::size_t discarded = items_.size();
    items_.clear();
    return discarded;
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return closed_;
  }

  std::size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return items_.size();
  }

#ifdef IMR_SANITIZE_BUILD
  // Sanitizer-build depth assertion: arms an upper bound on queue depth
  // (0 = unbounded, the default). A channel outgrowing its bound means a
  // producer is outrunning memory governance — trip at the offending push,
  // not as an OOM minutes later. Compiled out of release builds entirely.
  void set_depth_bound(std::size_t bound) {
    std::lock_guard<std::mutex> lock(mu_);
    depth_bound_ = bound;
  }
  std::size_t depth_hwm() const {
    std::lock_guard<std::mutex> lock(mu_);
    return depth_hwm_;
  }
#endif

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<T> items_;
  bool closed_ = false;
#ifdef IMR_SANITIZE_BUILD
  std::size_t depth_bound_ = 0;
  std::size_t depth_hwm_ = 0;
#endif
};

}  // namespace imr
