// Order-preserving binary codecs.
//
// Keys are compared as raw bytes throughout the sort/shuffle pipeline, so the
// integer codecs are big-endian (lexicographic byte order == numeric order)
// and the double codec uses the standard sign-flip trick. Values do not need
// ordering but use the same codecs for simplicity.
//
// Composite encodings (pairs, vectors) use length-prefixed segments so that
// adjacency lists, coordinate vectors, and tagged unions round-trip exactly.
#pragma once

#include <cstdint>
#include <vector>

#include "common/bytes.h"
#include "common/error.h"

namespace imr {

// ---------------------------------------------------------------------------
// Fixed-width order-preserving scalars.
// ---------------------------------------------------------------------------

void encode_u32(uint32_t v, Bytes& out);
void encode_u64(uint64_t v, Bytes& out);
void encode_i64(int64_t v, Bytes& out);
// Order-preserving double: positive values get the sign bit flipped, negative
// values get all bits flipped, so byte order matches numeric order.
void encode_f64(double v, Bytes& out);

uint32_t decode_u32(BytesView in, std::size_t& pos);
uint64_t decode_u64(BytesView in, std::size_t& pos);
int64_t decode_i64(BytesView in, std::size_t& pos);
double decode_f64(BytesView in, std::size_t& pos);

// Convenience one-shot encoders.
Bytes u32_key(uint32_t v);
Bytes u64_key(uint64_t v);
Bytes f64_value(double v);
uint32_t as_u32(BytesView b);
uint64_t as_u64(BytesView b);
double as_f64(BytesView b);

// ---------------------------------------------------------------------------
// Length-prefixed composites.
// ---------------------------------------------------------------------------

// Varint (LEB128) length prefix — compact for the many small segments in
// adjacency lists. NOT order-preserving; use only inside values or after an
// order-preserving prefix.
void encode_varint(uint64_t v, Bytes& out);
uint64_t decode_varint(BytesView in, std::size_t& pos);

void encode_bytes(BytesView b, Bytes& out);      // varint length + raw bytes
Bytes decode_bytes(BytesView in, std::size_t& pos);
BytesView decode_bytes_view(BytesView in, std::size_t& pos);

void encode_f64_vec(const std::vector<double>& v, Bytes& out);
std::vector<double> decode_f64_vec(BytesView in, std::size_t& pos);

// ---------------------------------------------------------------------------
// Typed helpers used by the algorithms.
// ---------------------------------------------------------------------------

// A weighted out-edge (SSSP static data).
struct WEdge {
  uint32_t dst = 0;
  double weight = 0.0;
  friend bool operator==(const WEdge&, const WEdge&) = default;
};

void encode_wedges(const std::vector<WEdge>& edges, Bytes& out);
std::vector<WEdge> decode_wedges(BytesView in);

// Unweighted out-neighbors (PageRank static data).
void encode_adj(const std::vector<uint32_t>& neighbors, Bytes& out);
std::vector<uint32_t> decode_adj(BytesView in);

// Reader that walks a buffer sequentially; throws FormatError on underflow.
class ByteReader {
 public:
  explicit ByteReader(BytesView in) : in_(in) {}
  bool done() const { return pos_ >= in_.size(); }
  std::size_t pos() const { return pos_; }
  uint32_t u32() { return decode_u32(in_, pos_); }
  uint64_t u64() { return decode_u64(in_, pos_); }
  int64_t i64() { return decode_i64(in_, pos_); }
  double f64() { return decode_f64(in_, pos_); }
  uint64_t varint() { return decode_varint(in_, pos_); }
  Bytes bytes() { return decode_bytes(in_, pos_); }
  BytesView bytes_view() { return decode_bytes_view(in_, pos_); }
  std::vector<double> f64_vec() { return decode_f64_vec(in_, pos_); }

 private:
  BytesView in_;
  std::size_t pos_ = 0;
};

}  // namespace imr
