// Core byte-string and key-value record types shared by every layer.
//
// The framework is type-erased at the record level, like Hadoop's
// Writable-based pipeline: keys and values travel as byte strings, and user
// code (or the typed adapters in codec.h) is responsible for encoding.
// Keeping records as bytes is what makes the communication accounting in
// net/ and dfs/ byte-accurate.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace imr {

// Owned byte string. std::string is used deliberately: it has the small
// buffer optimization, is hashable, and comparisons are lexicographic,
// which the sort/shuffle layers rely on (codecs are order-preserving).
using Bytes = std::string;
using BytesView = std::string_view;

// One record flowing through the system.
struct KV {
  Bytes key;
  Bytes value;

  KV() = default;
  KV(Bytes k, Bytes v) : key(std::move(k)), value(std::move(v)) {}

  // Wire size of this record: used by the cost model and traffic counters.
  // 8 bytes of framing approximates the length prefixes on the wire.
  std::size_t wire_size() const { return key.size() + value.size() + 8; }

  friend bool operator==(const KV& a, const KV& b) {
    return a.key == b.key && a.value == b.value;
  }
  friend bool operator<(const KV& a, const KV& b) {
    return a.key != b.key ? a.key < b.key : a.value < b.value;
  }
};

using KVVec = std::vector<KV>;

// First 8 bytes of a key as a big-endian integer, zero-padded on the right.
// Because the codecs are order-preserving, comparing prefixes compares keys:
// prefix(a) < prefix(b) implies a < b lexicographically (a pad byte only ties
// with a real 0x00 byte, and ties fall back to a full compare). The sort and
// join fast paths use this to replace most byte-string compares with one
// integer compare.
inline uint64_t key_prefix_u64(BytesView key) {
  uint64_t p = 0;
  const std::size_t n = key.size() < 8 ? key.size() : 8;
  for (std::size_t i = 0; i < n; ++i) {
    p |= static_cast<uint64_t>(static_cast<unsigned char>(key[i]))
         << (56 - 8 * i);
  }
  return p;
}

// Total wire size of a batch of records.
inline std::size_t wire_size(const KVVec& kvs) {
  std::size_t n = 0;
  for (const KV& kv : kvs) n += kv.wire_size();
  return n;
}

}  // namespace imr
