// Core byte-string and key-value record types shared by every layer.
//
// The framework is type-erased at the record level, like Hadoop's
// Writable-based pipeline: keys and values travel as byte strings, and user
// code (or the typed adapters in codec.h) is responsible for encoding.
// Keeping records as bytes is what makes the communication accounting in
// net/ and dfs/ byte-accurate.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace imr {

// Owned byte string. std::string is used deliberately: it has the small
// buffer optimization, is hashable, and comparisons are lexicographic,
// which the sort/shuffle layers rely on (codecs are order-preserving).
using Bytes = std::string;
using BytesView = std::string_view;

// One record flowing through the system.
struct KV {
  Bytes key;
  Bytes value;

  KV() = default;
  KV(Bytes k, Bytes v) : key(std::move(k)), value(std::move(v)) {}

  // Wire size of this record: used by the cost model and traffic counters.
  // 8 bytes of framing approximates the length prefixes on the wire.
  std::size_t wire_size() const { return key.size() + value.size() + 8; }

  friend bool operator==(const KV& a, const KV& b) {
    return a.key == b.key && a.value == b.value;
  }
  friend bool operator<(const KV& a, const KV& b) {
    return a.key != b.key ? a.key < b.key : a.value < b.value;
  }
};

using KVVec = std::vector<KV>;

// Total wire size of a batch of records.
inline std::size_t wire_size(const KVVec& kvs) {
  std::size_t n = 0;
  for (const KV& kv : kvs) n += kv.wire_size();
  return n;
}

}  // namespace imr
