// Stable hashing for partitioning.
//
// std::hash is implementation-defined; the shuffle partitioner must be stable
// across builds so that tests asserting partition contents and the DFS
// replica placement are deterministic. FNV-1a is simple and good enough for
// key distribution.
#pragma once

#include <cstdint>

#include "common/bytes.h"
#include "common/error.h"

namespace imr {

inline uint64_t fnv1a(BytesView data, uint64_t seed = 0xcbf29ce484222325ull) {
  uint64_t h = seed;
  for (char c : data) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ull;
  }
  return h;
}

// The default partitioner used by both engines: hash-mod over key bytes.
// Contract: num_partitions >= 1. A zero partition count is always a caller
// bug (an unvalidated conf or an empty endpoint table), and modulo-by-zero
// is UB — fail loudly instead.
inline uint32_t partition_of(BytesView key, uint32_t num_partitions) {
  IMR_CHECK_MSG(num_partitions > 0, "partition_of: num_partitions == 0");
  return static_cast<uint32_t>(fnv1a(key) % num_partitions);
}

// Smallest power of two >= v (and >= 1). Open-addressed tables (the static
// join index, the hash combiner) size to powers of two so the probe sequence
// is a mask, not a modulo.
inline std::size_t next_pow2(std::size_t v) {
  std::size_t p = 1;
  while (p < v) p <<= 1;
  return p;
}

}  // namespace imr
