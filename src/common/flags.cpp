#include "common/flags.h"

#include "common/strings.h"

namespace imr {

Flags::Flags(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(std::move(arg));
      continue;
    }
    std::string body = arg.substr(2);
    std::size_t eq = body.find('=');
    if (eq != std::string::npos) {
      values_[body.substr(0, eq)] = body.substr(eq + 1);
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      values_[body] = argv[++i];
    } else {
      values_[body] = "true";
    }
  }
}

std::string Flags::get(const std::string& name, const std::string& dflt) const {
  auto it = values_.find(name);
  return it == values_.end() ? dflt : it->second;
}

int64_t Flags::get_int(const std::string& name, int64_t dflt) const {
  auto it = values_.find(name);
  if (it == values_.end()) return dflt;
  try {
    return std::stoll(it->second);
  } catch (const std::exception&) {
    throw ConfigError("flag --" + name + " expects an integer, got '" +
                      it->second + "'");
  }
}

double Flags::get_double(const std::string& name, double dflt) const {
  auto it = values_.find(name);
  if (it == values_.end()) return dflt;
  double v;
  if (!parse_double_strict(it->second, v)) {
    throw ConfigError("flag --" + name + " expects a number, got '" +
                      it->second + "'");
  }
  return v;
}

bool Flags::get_bool(const std::string& name) const {
  auto it = values_.find(name);
  if (it == values_.end()) return false;
  return it->second != "false" && it->second != "0";
}

}  // namespace imr
