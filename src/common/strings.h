// String formatting helpers used by reports and loaders.
#pragma once

#include <string>
#include <vector>

#include "common/bytes.h"

namespace imr {

std::vector<std::string> split(const std::string& s, char sep);
std::string join(const std::vector<std::string>& parts, const std::string& sep);

// Human-readable byte count ("1.2 MB").
std::string human_bytes(std::size_t bytes);

// Human-readable count ("1.5M", "310K").
std::string human_count(uint64_t n);

// Fixed-precision double.
std::string fmt_double(double v, int precision);

// Locale-independent strict double parse (std::from_chars): the whole string
// must be consumed and the decimal separator is always '.'. Returns false on
// empty input, trailing characters, or out-of-range values. This is the parse
// half of the set_double/to_chars round-trip guarantee — std::stod honors the
// global C locale, so under a comma-decimal locale "0.85" would stop at the
// '.' and silently parse as 0.
bool parse_double_strict(const std::string& s, double& out);

// printf-style convenience.
std::string strprintf(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

}  // namespace imr
