#include "common/log.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>

namespace imr {

namespace {
// IMR_LOG=debug|info|warn|error|off overrides the default (handy for
// replaying a failing chaos seed with full protocol tracing).
LogLevel initial_level() {
  const char* env = std::getenv("IMR_LOG");
  if (env == nullptr) return LogLevel::kWarn;
  if (std::strcmp(env, "debug") == 0) return LogLevel::kDebug;
  if (std::strcmp(env, "info") == 0) return LogLevel::kInfo;
  if (std::strcmp(env, "error") == 0) return LogLevel::kError;
  if (std::strcmp(env, "off") == 0) return LogLevel::kOff;
  return LogLevel::kWarn;
}

std::atomic<LogLevel> g_level{initial_level()};
std::mutex g_mutex;

const char* level_name(LogLevel l) {
  switch (l) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kError: return "ERROR";
    default: return "?????";
  }
}
}  // namespace

void set_log_level(LogLevel level) { g_level.store(level); }
LogLevel log_level() { return g_level.load(std::memory_order_relaxed); }

namespace detail {
void log_line(LogLevel level, const std::string& msg) {
  using namespace std::chrono;
  auto now = duration_cast<milliseconds>(
                 steady_clock::now().time_since_epoch())
                 .count();
  std::lock_guard<std::mutex> lock(g_mutex);
  std::fprintf(stderr, "[%10lld.%03lld %s] %s\n",
               static_cast<long long>(now / 1000),
               static_cast<long long>(now % 1000), level_name(level),
               msg.c_str());
}
}  // namespace detail

}  // namespace imr
