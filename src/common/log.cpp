#include "common/log.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>

namespace imr {

namespace {
// IMR_LOG=debug|info|warn|error|off overrides the default (handy for
// replaying a failing chaos seed with full protocol tracing).
LogLevel initial_level() {
  const char* env = std::getenv("IMR_LOG");
  if (env == nullptr) return LogLevel::kWarn;
  if (std::strcmp(env, "debug") == 0) return LogLevel::kDebug;
  if (std::strcmp(env, "info") == 0) return LogLevel::kInfo;
  if (std::strcmp(env, "error") == 0) return LogLevel::kError;
  if (std::strcmp(env, "off") == 0) return LogLevel::kOff;
  return LogLevel::kWarn;
}

std::atomic<LogLevel> g_level{initial_level()};
std::mutex g_mutex;

// Small process-unique thread numbers, assigned lazily on first log — far
// more readable across a run's interleaved output than pthread ids.
std::atomic<int> g_thread_counter{0};
thread_local int t_thread_id = -1;
thread_local std::string t_log_tag;

int this_thread_id() {
  if (t_thread_id < 0) {
    t_thread_id = g_thread_counter.fetch_add(1, std::memory_order_relaxed);
  }
  return t_thread_id;
}

const char* level_name(LogLevel l) {
  switch (l) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kError: return "ERROR";
    default: return "?????";
  }
}
}  // namespace

void set_log_level(LogLevel level) { g_level.store(level); }
LogLevel log_level() { return g_level.load(std::memory_order_relaxed); }

void set_thread_log_tag(const std::string& tag) { t_log_tag = tag; }
void clear_thread_log_tag() { t_log_tag.clear(); }

namespace detail {
std::string format_log_line(LogLevel level, const std::string& msg,
                            int64_t mono_ms, int thread_id,
                            const std::string& tag) {
  char prefix[64];
  std::snprintf(prefix, sizeof(prefix), "[%10lld.%03lld %s t%02d",
                static_cast<long long>(mono_ms / 1000),
                static_cast<long long>(mono_ms % 1000), level_name(level),
                thread_id);
  std::string out = prefix;
  if (!tag.empty()) {
    out += ' ';
    out += tag;
  }
  out += "] ";
  out += msg;
  return out;
}

void log_line(LogLevel level, const std::string& msg) {
  using namespace std::chrono;
  auto now = duration_cast<milliseconds>(
                 steady_clock::now().time_since_epoch())
                 .count();
  std::string line =
      format_log_line(level, msg, now, this_thread_id(), t_log_tag);
  std::lock_guard<std::mutex> lock(g_mutex);
  std::fprintf(stderr, "%s\n", line.c_str());
}
}  // namespace detail

}  // namespace imr
