#include "mapreduce/shuffle_util.h"

#include <algorithm>

namespace imr {

void sort_records(KVVec& records, bool sort_values) {
  if (sort_values) {
    std::sort(records.begin(), records.end());
  } else {
    std::stable_sort(records.begin(), records.end(),
                     [](const KV& a, const KV& b) { return a.key < b.key; });
  }
}

void for_each_group(
    const KVVec& sorted,
    const std::function<void(const Bytes& key,
                             const std::vector<Bytes>& values)>& fn) {
  std::size_t i = 0;
  std::vector<Bytes> values;
  while (i < sorted.size()) {
    std::size_t j = i;
    values.clear();
    while (j < sorted.size() && sorted[j].key == sorted[i].key) {
      values.push_back(sorted[j].value);
      ++j;
    }
    fn(sorted[i].key, values);
    i = j;
  }
}

std::size_t run_combiner(KVVec& sorted, Reducer& combiner) {
  KVVec combined;
  combined.reserve(sorted.size() / 2 + 1);
  VectorEmitter emitter(combined);
  for_each_group(sorted,
                 [&](const Bytes& key, const std::vector<Bytes>& values) {
                   combiner.reduce(key, values, emitter);
                 });
  std::size_t saved = sorted.size() - combined.size();
  sorted = std::move(combined);
  return saved;
}

}  // namespace imr
