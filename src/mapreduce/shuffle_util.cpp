#include "mapreduce/shuffle_util.h"

#include <algorithm>
#include <cstdint>

#include "common/hash.h"

namespace imr {

namespace {

// Below this size the indirection of the prefix pass costs more than the
// string compares it saves; fall back to a direct comparison sort.
constexpr std::size_t kPrefixSortThreshold = 64;

void sort_records_direct(KVVec& records, bool sort_values) {
  if (sort_values) {
    std::sort(records.begin(), records.end());
  } else {
    std::stable_sort(records.begin(), records.end(),
                     [](const KV& a, const KV& b) { return a.key < b.key; });
  }
}

struct PrefixEntry {
  uint64_t prefix;
  uint32_t index;
};

}  // namespace

void sort_records(KVVec& records, bool sort_values) {
  const std::size_t n = records.size();
  if (n < kPrefixSortThreshold || n > UINT32_MAX) {
    sort_records_direct(records, sort_values);
    return;
  }

  std::vector<PrefixEntry> order(n);
  for (std::size_t i = 0; i < n; ++i) {
    order[i] = PrefixEntry{key_prefix_u64(records[i].key),
                           static_cast<uint32_t>(i)};
  }
  // Prefix inequality decides without touching the strings; ties (keys
  // sharing their first 8 bytes, or short keys colliding with pad bytes)
  // fall back to the full compare. The index tiebreak makes the key-only
  // mode stable and the full mode a deterministic permutation even among
  // bitwise-equal records.
  std::sort(order.begin(), order.end(),
            [&records, sort_values](const PrefixEntry& a,
                                    const PrefixEntry& b) {
              if (a.prefix != b.prefix) return a.prefix < b.prefix;
              const KV& x = records[a.index];
              const KV& y = records[b.index];
              int c = x.key.compare(y.key);
              if (c != 0) return c < 0;
              if (sort_values) {
                c = x.value.compare(y.value);
                if (c != 0) return c < 0;
              }
              return a.index < b.index;
            });
  KVVec sorted;
  sorted.reserve(n);
  for (const PrefixEntry& e : order) {
    sorted.push_back(std::move(records[e.index]));
  }
  records = std::move(sorted);
}

void sort_records(KVVec& records, bool sort_values, RecordArena& arena) {
  const std::size_t n = records.size();
  if (n < kPrefixSortThreshold || n > UINT32_MAX) {
    sort_records_direct(records, sort_values);
    return;
  }

  arena.reset();
  PrefixEntry* order = arena.alloc_array<PrefixEntry>(n);
  for (std::size_t i = 0; i < n; ++i) {
    order[i] = PrefixEntry{key_prefix_u64(records[i].key),
                           static_cast<uint32_t>(i)};
  }
  std::sort(order, order + n,
            [&records, sort_values](const PrefixEntry& a,
                                    const PrefixEntry& b) {
              if (a.prefix != b.prefix) return a.prefix < b.prefix;
              const KV& x = records[a.index];
              const KV& y = records[b.index];
              int c = x.key.compare(y.key);
              if (c != 0) return c < 0;
              if (sort_values) {
                c = x.value.compare(y.value);
                if (c != 0) return c < 0;
              }
              return a.index < b.index;
            });
  // Apply the permutation in place, cycle by cycle: position i must receive
  // records[order[i].index]. Each cycle rotates through one saved tmp; a
  // placed slot is marked by pointing its index at itself, so every record
  // moves exactly once and no scratch KVVec is needed (this is where the
  // arena overload beats the plain one even before allocator reuse).
  for (std::size_t i = 0; i < n; ++i) {
    std::size_t src = order[i].index;
    if (src == i) continue;
    KV tmp = std::move(records[i]);
    std::size_t dst = i;
    while (src != i) {
      records[dst] = std::move(records[src]);
      order[dst].index = static_cast<uint32_t>(dst);
      dst = src;
      src = order[dst].index;
    }
    records[dst] = std::move(tmp);
    order[dst].index = static_cast<uint32_t>(dst);
  }
}

// ---------------------------------------------------------------------------
// MergeCursor
// ---------------------------------------------------------------------------

bool MergeCursor::source_less(int a, int b) const {
  // An exhausted leaf loses to any live one (and ties with another
  // exhausted leaf resolve arbitrarily — next() checks alive_ before use).
  if (!alive_[static_cast<std::size_t>(a)]) return false;
  if (!alive_[static_cast<std::size_t>(b)]) return true;
  const KV& x = heads_[static_cast<std::size_t>(a)];
  const KV& y = heads_[static_cast<std::size_t>(b)];
  int c = x.key.compare(y.key);
  if (c != 0) return c < 0;
  if (compare_values_) {
    c = x.value.compare(y.value);
    if (c != 0) return c < 0;
  }
  return a < b;  // arrival-order tiebreak == sort_records' index tiebreak
}

MergeCursor::MergeCursor(std::vector<RecordSource*> sources,
                         bool compare_values)
    : sources_(std::move(sources)), compare_values_(compare_values) {
  const std::size_t k = sources_.size();
  padded_ = static_cast<int>(next_pow2(k == 0 ? 1 : k));
  heads_.resize(static_cast<std::size_t>(padded_));
  alive_.assign(static_cast<std::size_t>(padded_), 0);
  for (std::size_t i = 0; i < k; ++i) {
    alive_[i] = sources_[i]->next(heads_[i]) ? 1 : 0;
  }
  // Build the loser tree bottom-up: winner[node] propagates the smaller
  // head toward the root, each internal node keeping the loser. Leaves are
  // virtual nodes [padded_, 2*padded_) mapping to leaf index node - padded_.
  tree_.assign(static_cast<std::size_t>(padded_), 0);
  std::vector<int> winner(static_cast<std::size_t>(2 * padded_), 0);
  for (int i = 0; i < padded_; ++i) winner[static_cast<std::size_t>(padded_ + i)] = i;
  for (int node = padded_ - 1; node >= 1; --node) {
    int a = winner[static_cast<std::size_t>(2 * node)];
    int b = winner[static_cast<std::size_t>(2 * node + 1)];
    if (source_less(a, b)) {
      winner[static_cast<std::size_t>(node)] = a;
      tree_[static_cast<std::size_t>(node)] = b;
    } else {
      winner[static_cast<std::size_t>(node)] = b;
      tree_[static_cast<std::size_t>(node)] = a;
    }
  }
  tree_[0] = padded_ > 1 ? winner[1] : 0;
}

bool MergeCursor::next(KV& out) {
  const int w = tree_[0];
  if (!alive_[static_cast<std::size_t>(w)]) return false;
  out = std::move(heads_[static_cast<std::size_t>(w)]);
  alive_[static_cast<std::size_t>(w)] =
      sources_[static_cast<std::size_t>(w)]->next(
          heads_[static_cast<std::size_t>(w)])
          ? 1
          : 0;
  // Replay the path from w's leaf to the root: the new head fights each
  // stored loser; the winner bubbles up.
  int cur = w;
  for (int node = (padded_ + w) / 2; node >= 1; node /= 2) {
    int& loser = tree_[static_cast<std::size_t>(node)];
    if (source_less(loser, cur)) std::swap(cur, loser);
  }
  tree_[0] = cur;
  return true;
}

void merge_sorted_runs(const std::vector<RecordSource*>& sources,
                       bool compare_values, KVVec& out) {
  MergeCursor merge(sources, compare_values);
  KV kv;
  while (merge.next(kv)) out.push_back(std::move(kv));
}

void for_each_group(
    const KVVec& sorted,
    const std::function<void(const Bytes& key,
                             const std::vector<Bytes>& values)>& fn) {
  GroupCursor groups(sorted);
  GroupValues vals;
  while (groups.next()) {
    fn(groups.key(), vals.view(groups));
  }
}

std::size_t combine_sorted(KVVec& sorted, const CombineFn& fn) {
  KVVec combined;
  combined.reserve(sorted.size() / 2 + 1);
  GroupCursor groups(sorted);
  GroupValues vals;
  while (groups.next()) {
    fn(groups.key(), vals.take(sorted, groups), combined);
  }
  std::size_t saved = sorted.size() - combined.size();
  sorted = std::move(combined);
  return saved;
}

std::size_t combine_hashed(KVVec& records, const CombineFn& fn) {
  if (records.empty()) return 0;

  struct Group {
    std::size_t first;  // index of the group's first record (the key source)
    std::vector<Bytes> values;
  };
  std::vector<Group> groups;  // first-appearance order
  groups.reserve(records.size() / 2 + 1);

  // Open-addressed index: slot -> group id + 1, 0 = empty. Power-of-two
  // capacity at load factor <= 0.5 keeps probe chains short.
  const std::size_t capacity = next_pow2(2 * records.size());
  const std::size_t mask = capacity - 1;
  std::vector<uint32_t> slots(capacity, 0);

  for (std::size_t i = 0; i < records.size(); ++i) {
    const Bytes& key = records[i].key;
    std::size_t s = static_cast<std::size_t>(fnv1a(key)) & mask;
    while (true) {
      uint32_t g = slots[s];
      if (g == 0) {
        slots[s] = static_cast<uint32_t>(groups.size()) + 1;
        groups.push_back(Group{i, {}});
        groups.back().values.push_back(std::move(records[i].value));
        break;
      }
      Group& grp = groups[g - 1];
      if (records[grp.first].key == key) {
        grp.values.push_back(std::move(records[i].value));
        break;
      }
      s = (s + 1) & mask;
    }
  }

  KVVec combined;
  combined.reserve(groups.size());
  for (const Group& g : groups) {
    fn(records[g.first].key, g.values, combined);
  }
  std::size_t saved = records.size() - combined.size();
  records = std::move(combined);
  return saved;
}

std::size_t combine_records(KVVec& records, bool deterministic,
                            const CombineFn& fn) {
  if (records.empty()) return 0;
  if (!deterministic) return combine_hashed(records, fn);
  sort_records(records, /*sort_values=*/true);
  return combine_sorted(records, fn);
}

CombineFn combine_fn(Reducer& combiner) {
  return [&combiner](const Bytes& key, const std::vector<Bytes>& values,
                     KVVec& out) {
    VectorEmitter emitter(out);
    combiner.reduce(key, values, emitter);
  };
}

}  // namespace imr
