// Sort/group/combine utilities shared by both engines' reduce sides.
#pragma once

#include <vector>

#include "common/bytes.h"
#include "mapreduce/api.h"

namespace imr {

// Sorts records by key (and by value within equal keys when
// `sort_values` — deterministic reduce input independent of arrival order).
void sort_records(KVVec& records, bool sort_values);

// Iterates sorted records as (key, values) groups, invoking `fn`.
// Records MUST already be sorted by key.
void for_each_group(
    const KVVec& sorted,
    const std::function<void(const Bytes& key,
                             const std::vector<Bytes>& values)>& fn);

// Runs a combiner over sorted map-side output, replacing the buffer with the
// combined records. Returns the number of input records combined away.
std::size_t run_combiner(KVVec& sorted, Reducer& combiner);

// An Emitter that appends into a vector.
class VectorEmitter : public Emitter {
 public:
  explicit VectorEmitter(KVVec& out) : out_(out) {}
  void emit(Bytes key, Bytes value) override {
    out_.emplace_back(std::move(key), std::move(value));
  }

 private:
  KVVec& out_;
};

}  // namespace imr
