// Sort/group/combine utilities shared by both engines' reduce sides.
//
// The record compute path is the per-iteration hot loop of every figure, so
// the primitives here avoid redundant byte-string work:
//   - sort_records normalizes each key to an 8-byte big-endian prefix and
//     sorts (prefix, index) pairs, falling back to a full compare only on
//     prefix ties (codecs are order-preserving, so prefix order == key
//     order); the permutation is applied by moving records once.
//   - GroupCursor iterates key runs of a sorted buffer as spans — no value
//     copies, one key compare per record.
//   - GroupValues adapts a run to the std::vector<Bytes> shape user
//     Reducer::reduce signatures expect, either borrowing (moving values out
//     of a consumed buffer — zero deep copies for heap-allocated values) or
//     copying (for buffers the caller still needs).
//   - combine_sorted / combine_hashed are the single combiner implementation
//     both engines ship through: run-length grouping over sorted input when
//     deterministic_reduce demands a stable order, hash aggregation with no
//     sort at all when it does not.
#pragma once

#include <span>
#include <vector>

#include "common/arena.h"
#include "common/bytes.h"
#include "common/record_source.h"
#include "mapreduce/api.h"

namespace imr {

// Sorts records by key (and by value within equal keys when
// `sort_values` — deterministic reduce input independent of arrival order).
// Key-only sorting is stable; full sorting breaks exact (key, value) ties by
// original position, so the result is deterministic in both modes.
void sort_records(KVVec& records, bool sort_values);

// Arena-backed variant: the (prefix, index) order array comes from `arena`
// (reset first — the scratch is dead after the call) and the permutation is
// applied in place by cycle rotation, so the sort allocates nothing from the
// global heap once the arena's blocks are pooled. Byte-identical results to
// the plain overload.
void sort_records(KVVec& records, bool sort_values, RecordArena& arena);

// ---------------------------------------------------------------------------
// Streaming k-way merge over sorted runs (out-of-core reduce, DESIGN.md §10)
// ---------------------------------------------------------------------------

// The RecordSource cursor interface (and VecSource, the in-memory tail
// source) live in common/record_source.h; dfs spill-run readers implement
// the same interface (SpillSet::sources).
//
// Loser-tree k-way merge. Given sources that are each sorted the way
// sort_records(run, compare_values) sorts — and whose records were split
// from one logical buffer in arrival order (source 0's records preceded
// source 1's, ...) — the merged stream is byte-identical to sorting the
// concatenated buffer: the comparator breaks exact ties by source index,
// which is precisely the original-position tiebreak sort_records applies.
// O(log k) compares per record, no buffering beyond one head per source.
class MergeCursor {
 public:
  MergeCursor(std::vector<RecordSource*> sources, bool compare_values);

  // Moves the globally-smallest head into `out`; false when all sources are
  // exhausted.
  bool next(KV& out);

 private:
  bool source_less(int a, int b) const;

  std::vector<RecordSource*> sources_;
  bool compare_values_;
  int padded_;              // next_pow2(sources): full-tree leaf count
  std::vector<KV> heads_;   // current head record per leaf
  std::vector<char> alive_; // leaf has a head (padding leaves never do)
  std::vector<int> tree_;   // tree_[0] = winner; tree_[1..] = loser nodes
};

// Convenience: drains a MergeCursor over `sources` into `out` (appending).
void merge_sorted_runs(const std::vector<RecordSource*>& sources,
                       bool compare_values, KVVec& out);

// Iterates a key-sorted buffer as runs of equal keys. Zero-copy: key() and
// run() reference the underlying records.
//
//   GroupCursor groups(sorted);
//   while (groups.next()) { use groups.key(), groups.run(); }
class GroupCursor {
 public:
  explicit GroupCursor(const KVVec& sorted)
      : data_(sorted.data()), n_(sorted.size()) {}

  // Advances to the next group; false when the buffer is exhausted.
  bool next() {
    begin_ = end_;
    if (begin_ >= n_) return false;
    const Bytes& k = data_[begin_].key;
    ++end_;
    while (end_ < n_ && data_[end_].key == k) ++end_;
    return true;
  }

  const Bytes& key() const { return data_[begin_].key; }
  std::span<const KV> run() const { return {data_ + begin_, end_ - begin_}; }
  std::size_t begin_index() const { return begin_; }
  std::size_t size() const { return end_ - begin_; }

 private:
  const KV* data_;
  std::size_t n_;
  std::size_t begin_ = 0;
  std::size_t end_ = 0;
};

// Reusable adapter materializing one group's values in the
// std::vector<Bytes> shape Reducer::reduce takes. One instance serves a
// whole iteration loop; the scratch vector is recycled across groups.
class GroupValues {
 public:
  // Copies the current run's values (for buffers the caller keeps).
  const std::vector<Bytes>& view(const GroupCursor& g) {
    vals_.clear();
    for (const KV& kv : g.run()) vals_.push_back(kv.value);
    return vals_;
  }

  // MOVES the current run's values out of `records` (which must be the
  // buffer `g` iterates). Heap-allocated values transfer ownership instead
  // of being deep-copied; the donated slots are left empty. Use only when
  // the buffer is consumed by the grouping pass — both engines' reduce and
  // combiner loops discard it afterwards.
  const std::vector<Bytes>& take(KVVec& records, const GroupCursor& g) {
    vals_.clear();
    const std::size_t b = g.begin_index();
    for (std::size_t i = 0; i < g.size(); ++i) {
      vals_.push_back(std::move(records[b + i].value));
    }
    return vals_;
  }

 private:
  std::vector<Bytes> vals_;
};

// Compatibility entry: iterates sorted records as (key, values) groups,
// copying values. Records MUST already be sorted by key. Engine hot loops
// use GroupCursor/GroupValues directly; this remains for call sites that
// cannot donate their buffer.
void for_each_group(
    const KVVec& sorted,
    const std::function<void(const Bytes& key,
                             const std::vector<Bytes>& values)>& fn);

// One combiner invocation: reduce `values` for `key`, appending the
// combined records to `out`. Both engines bind their combiner (classic
// Reducer or IterReducer) through this shape, so the grouping/aggregation
// logic below exists exactly once.
using CombineFn = std::function<void(
    const Bytes& key, const std::vector<Bytes>& values, KVVec& out)>;

// Combines a buffer already sorted with sort_records(buf, true) in place,
// replacing it with the combined records (in key order). Returns the number
// of input records combined away. This is the deterministic_reduce path:
// byte-identical to sorting plus run-length grouping.
std::size_t combine_sorted(KVVec& sorted, const CombineFn& fn);

// Combines an UNSORTED buffer in place by hash aggregation — no sort, one
// fnv1a hash and (amortized) one probe per record. Groups are emitted in
// key-first-appearance order with within-key value order preserved, which is
// exactly the value order a stable key-only sort would have fed the
// combiner; only the cross-key output order differs, and the reduce side
// re-sorts anyway. Legal only when deterministic_reduce is off (the sorted
// path stays behind that flag).
std::size_t combine_hashed(KVVec& records, const CombineFn& fn);

// Dispatcher: sorts + run-combines when `deterministic`, hash-combines
// otherwise. Engines that charge sort CPU separately call the two phases
// directly.
std::size_t combine_records(KVVec& records, bool deterministic,
                            const CombineFn& fn);

// Binds a classic Reducer used as a combiner to the shared CombineFn shape.
CombineFn combine_fn(Reducer& combiner);

// An Emitter that appends into a vector.
class VectorEmitter : public Emitter {
 public:
  explicit VectorEmitter(KVVec& out) : out_(out) {}
  void emit(Bytes key, Bytes value) override {
    out_.emplace_back(std::move(key), std::move(value));
  }

 private:
  KVVec& out_;
};

}  // namespace imr
