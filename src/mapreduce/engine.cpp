#include "mapreduce/engine.h"

#include <algorithm>
#include <map>
#include <thread>

#include "cluster/task_context.h"
#include "common/hash.h"
#include "common/log.h"
#include "common/strings.h"
#include "dfs/spill.h"
#include "mapreduce/shuffle_util.h"

namespace imr {

namespace {

// Map-side emitter: partitions output by key hash into one buffer per
// reduce task.
class PartitionedEmitter : public Emitter {
 public:
  explicit PartitionedEmitter(int num_partitions)
      : buffers_(static_cast<std::size_t>(num_partitions)) {}

  void emit(Bytes key, Bytes value) override {
    uint32_t p = partition_of(key, static_cast<uint32_t>(buffers_.size()));
    buffers_[p].emplace_back(std::move(key), std::move(value));
    ++emitted_;
  }

  std::vector<KVVec>& buffers() { return buffers_; }
  int64_t emitted() const { return emitted_; }

 private:
  std::vector<KVVec> buffers_;
  int64_t emitted_ = 0;
};

// One map task may process several splits (CombineFileInputFormat-style),
// so that inputs with many small part files still fit the slot limit.
struct MapTaskSpec {
  std::vector<InputSplit> splits;
  const InputSpec* input = nullptr;
  int worker = -1;

  std::vector<int> preferred_workers() const {
    return splits.empty() ? std::vector<int>{} : splits[0].preferred_workers;
  }
};

// Greedy locality-aware placement: preferred worker with a free slot first,
// then the least-loaded worker (Hadoop's scheduler gets most maps local this
// way because replication spreads blocks across the cluster).
int place_task(const std::vector<int>& preferred, std::vector<int>& load,
               int slots_per_worker) {
  for (int w : preferred) {
    if (load[static_cast<std::size_t>(w)] < slots_per_worker) {
      return w;
    }
  }
  int best = 0;
  for (int w = 1; w < static_cast<int>(load.size()); ++w) {
    if (load[static_cast<std::size_t>(w)] < load[static_cast<std::size_t>(best)]) {
      best = w;
    }
  }
  return best;
}

}  // namespace

std::vector<std::string> resolve_input_paths(MiniDfs& dfs,
                                             const std::string& path) {
  if (dfs.exists(path)) return {path};
  std::vector<std::string> files = dfs.list(path + "/");
  if (files.empty()) throw DfsError("no input matches " + path);
  std::sort(files.begin(), files.end());
  return files;
}

JobResult MapReduceEngine::run_job(const JobConf& conf, int64_t submit_vt_ns) {
  if (conf.inputs.empty()) throw ConfigError("job has no inputs");
  for (const auto& in : conf.inputs) {
    if (!in.mapper) throw ConfigError("input without mapper: " + in.path);
  }
  if (!conf.reducer) throw ConfigError("job has no reducer");
  if (conf.output_path.empty()) throw ConfigError("job has no output path");
  if (conf.max_task_memory_bytes < 0) {
    throw ConfigError("max_task_memory_bytes must be >= 0 (0 = unlimited)");
  }
  if (conf.max_task_memory_bytes > 0 && !conf.deterministic_reduce) {
    throw ConfigError(
        "max_task_memory_bytes needs deterministic_reduce: spilled runs are "
        "value-sorted, and only the sorted reduce hides spill boundaries");
  }

  // Per-cluster ordinal: same job on a fresh cluster replays the same DFS
  // paths, keeping path-derived replica placement reproducible.
  const uint64_t job_id = cluster_.next_job_ordinal();
  const std::string job_tag = conf.name + "#" + std::to_string(job_id);
  MiniDfs& dfs = cluster_.dfs();
  const CostModel& cost = cluster_.cost();

  // Each classic job gets its own trace timeline on the submitting thread;
  // the previous binding (e.g. the iterative driver's track) is restored on
  // exit. The "job" span runs submit -> end_vt, bracketing the task spans.
  const bool traced = TraceRecorder::enabled();
  TraceRecorder::TrackHandle prev_track = nullptr;
  if (traced) {
    prev_track = TraceRecorder::instance().begin_thread_track(job_tag, -1);
    TraceRecorder::instance().span_begin("job", submit_vt_ns);
  }

  // --- compute input splits, locality-annotated ---
  struct FileInput {
    std::string file;
    const InputSpec* spec;
    std::size_t bytes;
  };
  std::vector<FileInput> files;
  std::size_t total_bytes = 0;
  std::size_t total_blocks = 0;
  for (const auto& in : conf.inputs) {
    for (const auto& f : resolve_input_paths(dfs, in.path)) {
      std::size_t b = dfs.file_bytes(f);
      files.push_back(FileInput{f, &in, b});
      total_bytes += b;
      total_blocks += std::max<std::size_t>(1, b / cost.dfs_block_size);
    }
  }

  int desired_maps = conf.num_map_tasks;
  if (desired_maps <= 0) {
    desired_maps = static_cast<int>(
        std::min<std::size_t>(total_blocks,
                              static_cast<std::size_t>(cluster_.map_slots())));
  }
  if (desired_maps > cluster_.map_slots()) {
    throw ConfigError(strprintf(
        "%d map tasks exceed %d map slots (persistent-task comparability "
        "requires tasks <= slots)",
        desired_maps, cluster_.map_slots()));
  }
  int num_reduces = conf.num_reduce_tasks > 0 ? conf.num_reduce_tasks
                                              : cluster_.reduce_slots();
  if (num_reduces > cluster_.reduce_slots()) {
    throw ConfigError("reduce tasks exceed reduce slots");
  }

  // Compute per-file splits proportional to size, then pack them into at
  // most `desired_maps` map tasks (splits of different InputSpecs never mix,
  // since they use different mappers).
  struct SplitWithSpec {
    InputSplit split;
    const InputSpec* spec;
  };
  std::vector<SplitWithSpec> all_splits;
  for (const auto& fi : files) {
    int share = 1;
    if (files.size() == 1) {
      share = desired_maps;
    } else if (total_bytes > 0) {
      share = std::max<int>(
          1, static_cast<int>(static_cast<double>(desired_maps) *
                              static_cast<double>(fi.bytes) /
                              static_cast<double>(total_bytes)));
    }
    for (const auto& split : dfs.make_splits(fi.file, share)) {
      all_splits.push_back(SplitWithSpec{split, fi.spec});
    }
  }

  std::vector<MapTaskSpec> map_tasks;
  if (static_cast<int>(all_splits.size()) <= desired_maps) {
    for (auto& s : all_splits) {
      MapTaskSpec t;
      t.splits.push_back(std::move(s.split));
      t.input = s.spec;
      map_tasks.push_back(std::move(t));
    }
  } else {
    // Round-robin the splits of each InputSpec into its proportional share
    // of the task budget.
    std::map<const InputSpec*, std::vector<InputSplit>> by_spec;
    for (auto& s : all_splits) by_spec[s.spec].push_back(std::move(s.split));
    int specs = static_cast<int>(by_spec.size());
    IMR_CHECK_MSG(desired_maps >= specs,
                  "fewer map slots than input sources");
    int budget = desired_maps;
    int remaining_specs = specs;
    for (auto& [spec, splits] : by_spec) {
      int share = std::max(
          1, std::min<int>(budget - (remaining_specs - 1),
                           static_cast<int>(
                               static_cast<double>(desired_maps) *
                               static_cast<double>(splits.size()) /
                               static_cast<double>(all_splits.size()))));
      budget -= share;
      --remaining_specs;
      std::vector<MapTaskSpec> group(static_cast<std::size_t>(share));
      for (std::size_t n = 0; n < splits.size(); ++n) {
        group[n % static_cast<std::size_t>(share)].splits.push_back(
            std::move(splits[n]));
      }
      for (auto& t : group) {
        if (t.splits.empty()) continue;
        t.input = spec;
        map_tasks.push_back(std::move(t));
      }
    }
  }
  IMR_CHECK(static_cast<int>(map_tasks.size()) <= cluster_.map_slots());

  // --- placement ---
  std::vector<int> map_load(static_cast<std::size_t>(cluster_.num_workers()), 0);
  for (auto& t : map_tasks) {
    t.worker = place_task(t.preferred_workers(), map_load,
                          cluster_.config().map_slots_per_worker);
    ++map_load[static_cast<std::size_t>(t.worker)];
  }
  std::vector<int> reduce_worker(static_cast<std::size_t>(num_reduces));
  for (int r = 0; r < num_reduces; ++r) {
    reduce_worker[static_cast<std::size_t>(r)] = r % cluster_.num_workers();
  }

  // --- endpoints for the shuffle ---
  std::vector<std::shared_ptr<Endpoint>> reduce_ep(
      static_cast<std::size_t>(num_reduces));
  for (int r = 0; r < num_reduces; ++r) {
    reduce_ep[static_cast<std::size_t>(r)] = cluster_.fabric().create_endpoint(
        job_tag + "/r" + std::to_string(r),
        reduce_worker[static_cast<std::size_t>(r)]);
  }

  const int64_t base_vt = submit_vt_ns + cost.job_init.count();
  cluster_.metrics().add_time(TimeCategory::kJobInit, cost.job_init);
  cluster_.metrics().inc("jobs_submitted");

  const int M = static_cast<int>(map_tasks.size());

  // Shared result accumulators.
  std::atomic<int64_t> map_in{0}, map_out{0}, red_groups{0}, red_out{0};
  std::vector<int64_t> reduce_end_vt(static_cast<std::size_t>(num_reduces), 0);
  std::vector<std::exception_ptr> errors(
      static_cast<std::size_t>(M + num_reduces));

  IMR_DEBUG << job_tag << ": " << M << " map tasks, " << num_reduces
            << " reduce tasks";

  // --- task bodies ---
  auto run_map_task = [&](int m) {
    const MapTaskSpec& spec = map_tasks[static_cast<std::size_t>(m)];
    TaskContext ctx(cluster_, job_tag + "/m" + std::to_string(m), spec.worker,
                    base_vt);
    ctx.charge(cost.task_init, TimeCategory::kTaskInit);
    cluster_.metrics().inc("map_tasks_launched");

    KVVec input;
    for (const InputSplit& split : spec.splits) {
      KVVec part = ctx.dfs_read_split(split);
      input.insert(input.end(), std::make_move_iterator(part.begin()),
                   std::make_move_iterator(part.end()));
    }
    map_in.fetch_add(static_cast<int64_t>(input.size()));

    std::unique_ptr<Mapper> mapper = spec.input->mapper();
    mapper->configure(conf.params);
    if (!conf.cache_path.empty()) {
      KVVec cache;
      for (const auto& f : resolve_input_paths(dfs, conf.cache_path)) {
        KVVec part = ctx.dfs_read_all(f);
        cache.insert(cache.end(), std::make_move_iterator(part.begin()),
                     std::make_move_iterator(part.end()));
      }
      sort_records(cache, /*sort_values=*/false);
      mapper->attach_cache(cache);
    }

    PartitionedEmitter emitter(num_reduces);
    ThreadCpuTimer cpu;
    for (const KV& kv : input) {
      mapper->map(kv.key, kv.value, emitter);
    }
    mapper->flush(emitter);
    ctx.charge_compute(cpu.elapsed_ns());
    map_out.fetch_add(emitter.emitted());

    std::unique_ptr<Reducer> combiner =
        conf.combiner ? conf.combiner() : nullptr;
    if (combiner) combiner->configure(conf.params);
    CombineFn combine_body;
    if (combiner) combine_body = combine_fn(*combiner);

    TraceSpan flush_span("shuffle_flush", ctx.vt());
    for (int r = 0; r < num_reduces; ++r) {
      KVVec& buf = emitter.buffers()[static_cast<std::size_t>(r)];
      if (combiner && !conf.deterministic_reduce) {
        // Hash aggregation: no map-side sort at all. With
        // deterministic_reduce off the shipped order is free — the reduce
        // side's stable key sort reconstructs the same within-key value
        // order either way.
        if (!buf.empty()) {
          TraceSpan combine_span("combine", ctx.vt());
          ThreadCpuTimer comb_cpu;
          std::size_t saved = combine_hashed(buf, combine_body);
          ctx.charge_compute(comb_cpu.elapsed_ns());
          cluster_.metrics().inc("combiner_records_saved",
                                 static_cast<int64_t>(saved));
        }
      } else {
        ThreadCpuTimer sort_cpu;
        sort_records(buf, conf.deterministic_reduce);
        ctx.charge_compute(sort_cpu.elapsed_ns(), TimeCategory::kSort);
        if (combiner && !buf.empty()) {
          TraceSpan combine_span("combine", ctx.vt());
          ThreadCpuTimer comb_cpu;
          std::size_t saved = combine_sorted(buf, combine_body);
          ctx.charge_compute(comb_cpu.elapsed_ns());
          cluster_.metrics().inc("combiner_records_saved",
                                 static_cast<int64_t>(saved));
        }
      }
      if (!buf.empty()) {
        NetMessage msg;
        msg.kind = NetMessage::Kind::kData;
        msg.from_task = m;
        msg.set_records(std::move(buf));
        ctx.send(*reduce_ep[static_cast<std::size_t>(r)], std::move(msg),
                 TrafficCategory::kShuffle);
      }
      NetMessage eos;
      eos.kind = NetMessage::Kind::kEos;
      eos.from_task = m;
      ctx.send(*reduce_ep[static_cast<std::size_t>(r)], std::move(eos),
               TrafficCategory::kShuffle);
    }
  };

  auto run_reduce_task = [&](int r) {
    TaskContext ctx(cluster_, job_tag + "/r" + std::to_string(r),
                    reduce_worker[static_cast<std::size_t>(r)], base_vt);
    ctx.charge(cost.task_init, TimeCategory::kTaskInit);
    cluster_.metrics().inc("reduce_tasks_launched");

    Endpoint& ep = *reduce_ep[static_cast<std::size_t>(r)];
    // Memory governance (DESIGN.md §10): same budgeted spill/merge record
    // path as the iterative engine's reduce, minus the iteration machinery.
    MemoryBudget budget(conf.max_task_memory_bytes);
    RecordArena arena(&budget);
    SpillSet spills(cluster_.dfs(), cluster_.metrics(),
                    job_tag + "/r" + std::to_string(r),
                    reduce_worker[static_cast<std::size_t>(r)]);
    KVVec records;
    int64_t held = 0;
    int eos_seen = 0;
    while (eos_seen < M) {
      auto msg = ep.receive(ctx.vt());
      IMR_CHECK_MSG(msg.has_value(), "shuffle channel closed early");
      if (msg->kind == NetMessage::Kind::kEos) {
        ++eos_seen;
      } else {
        KVVec batch = msg->take_records();
        const std::size_t batch_bytes =
            budget.limited() ? wire_size(batch) : 0;
        if (records.empty()) {
          records = std::move(batch);
        } else {
          records.insert(records.end(),
                         std::make_move_iterator(batch.begin()),
                         std::make_move_iterator(batch.end()));
        }
        if (budget.limited()) {
          budget.charge(static_cast<int64_t>(batch_bytes));
          held += static_cast<int64_t>(batch_bytes);
          if (budget.over() && !records.empty()) {
            TraceSpan spill_span("spill_write", ctx.vt());
            ThreadCpuTimer sort_cpu;
            sort_records(records, conf.deterministic_reduce, arena);
            ctx.charge_compute(sort_cpu.elapsed_ns(), TimeCategory::kSort);
            spills.write_run(0, std::move(records), &ctx.vt());
            records = KVVec{};
            budget.release(held);
            held = 0;
          }
        }
      }
    }

    const bool spilled = spills.has_runs(0);
    {
      TraceSpan sort_span("sort", ctx.vt());
      ThreadCpuTimer sort_cpu;
      sort_records(records, conf.deterministic_reduce, arena);
      ctx.charge_compute(sort_cpu.elapsed_ns(), TimeCategory::kSort);
    }

    std::unique_ptr<Reducer> reducer = conf.reducer();
    reducer->configure(conf.params);
    KVVec output;
    VectorEmitter out_emitter(output);
    ThreadCpuTimer cpu;
    int64_t groups = 0;
    if (!spilled) {
      GroupCursor cursor(records);
      GroupValues group_vals;
      while (cursor.next()) {
        ++groups;
        reducer->reduce(cursor.key(), group_vals.take(records, cursor),
                        out_emitter);
      }
    } else {
      // Streaming k-way merge over the spilled runs plus the sorted
      // in-memory tail: the merged stream reproduces sort_records() of the
      // whole input, so the groups (and the output) are byte-identical.
      auto run_cursors = spills.sources(0, &ctx.vt());
      std::vector<RecordSource*> cursors;
      cursors.reserve(run_cursors.size() + 1);
      for (const auto& c : run_cursors) cursors.push_back(c.get());
      VecSource tail(records);
      cursors.push_back(&tail);
      MergeCursor merge(cursors, /*compare_values=*/conf.deterministic_reduce);
      KV rec;
      Bytes group_key;
      std::vector<Bytes> group_values;
      bool in_group = false;
      while (merge.next(rec)) {
        if (!in_group || rec.key != group_key) {
          if (in_group) {
            ++groups;
            reducer->reduce(group_key, group_values, out_emitter);
          }
          group_key = std::move(rec.key);
          group_values.clear();
          in_group = true;
        }
        group_values.push_back(std::move(rec.value));
      }
      if (in_group) {
        ++groups;
        reducer->reduce(group_key, group_values, out_emitter);
      }
      spills.consume(0);
    }
    ctx.charge_compute(cpu.elapsed_ns());
    if (budget.hwm() > 0) {
      cluster_.metrics().gauge_max("imr_arena_hwm", budget.hwm());
    }
    red_groups.fetch_add(groups);
    red_out.fetch_add(static_cast<int64_t>(output.size()));

    ctx.dfs_write(conf.output_path + "/part-" + std::to_string(r),
                  std::move(output));
    reduce_end_vt[static_cast<std::size_t>(r)] = ctx.vt().now_ns();
  };

  // --- run: reduce threads first (they block on the shuffle), then maps ---
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(M + num_reduces));
  for (int r = 0; r < num_reduces; ++r) {
    threads.emplace_back([&, r] {
      try {
        run_reduce_task(r);
      } catch (...) {
        errors[static_cast<std::size_t>(M + r)] = std::current_exception();
        reduce_ep[static_cast<std::size_t>(r)]->close();
      }
    });
  }
  for (int m = 0; m < M; ++m) {
    threads.emplace_back([&, m] {
      try {
        run_map_task(m);
      } catch (...) {
        errors[static_cast<std::size_t>(m)] = std::current_exception();
        // Unblock reducers waiting for this map's EOS.
        for (auto& ep : reduce_ep) ep->close();
      }
    });
  }
  for (auto& t : threads) t.join();
  for (auto& e : errors) {
    if (e) std::rethrow_exception(e);
  }
  for (int r = 0; r < num_reduces; ++r) {
    cluster_.fabric().remove_endpoint(reduce_ep[static_cast<std::size_t>(r)]->name());
  }

  JobResult result;
  result.submit_vt_ns = submit_vt_ns;
  int64_t max_reduce_end = base_vt;
  for (int64_t v : reduce_end_vt) max_reduce_end = std::max(max_reduce_end, v);
  result.end_vt_ns = max_reduce_end + cost.job_cleanup.count();
  cluster_.metrics().add_time(TimeCategory::kJobInit, cost.job_cleanup);
  result.critical_init_ns =
      cost.job_init.count() + cost.task_init.count() + cost.job_cleanup.count();
  result.map_input_records = map_in.load();
  result.map_output_records = map_out.load();
  result.reduce_input_groups = red_groups.load();
  result.reduce_output_records = red_out.load();
  if (traced) {
    TraceRecorder::instance().span_end("job", result.end_vt_ns);
    TraceRecorder::instance().set_thread_track(prev_track);
  }
  return result;
}

}  // namespace imr
