#include "mapreduce/iterative_driver.h"

#include "cluster/task_context.h"
#include "common/codec.h"
#include "common/log.h"
#include "mapreduce/shuffle_util.h"

namespace imr {

namespace {

constexpr char kPrevTag = 'P';
constexpr char kCurTag = 'C';

// Check-job mapper: tag each record with which iteration output it came from.
class TagMapper : public Mapper {
 public:
  explicit TagMapper(char tag) : tag_(tag) {}
  void map(const Bytes& key, const Bytes& value, Emitter& out) override {
    Bytes tagged;
    tagged.reserve(value.size() + 1);
    tagged.push_back(tag_);
    tagged.append(value);
    out.emit(key, std::move(tagged));
  }

 private:
  char tag_;
};

}  // namespace

RunReport IterativeDriver::run(const IterativeSpec& spec) {
  IMR_CHECK_MSG(!spec.stages.empty(), "iterative spec has no stages");
  for (const auto& s : spec.stages) {
    IMR_CHECK_MSG(s.mapper && s.reducer, "stage missing mapper or reducer");
  }
  if (spec.distance_threshold >= 0) {
    IMR_CHECK_MSG(spec.distance != nullptr,
                  "distance function required for threshold termination");
  }
  if (!spec.iterate_input) {
    IMR_CHECK_MSG(!spec.initial_state.empty(),
                  "initial_state required when input is not iterated");
  }

  RunReport report;
  report.label = spec.name + "/mapreduce";
  int64_t vt = 0;
  double cum_init_ms = 0;
  // The driver thread's trace timeline. Label and pid deliberately match the
  // per-iteration TaskContext below ("<name>-driver", worker 0) so those
  // short-lived contexts collapse onto this one track instead of spawning a
  // fresh track per iteration.
  const bool traced = TraceRecorder::enabled();
  TraceRecorder::TrackHandle prev_track = nullptr;
  if (traced) {
    prev_track =
        TraceRecorder::instance().begin_thread_track(spec.name + "-driver", 0);
  }
  Histogram& iter_hist = cluster_.metrics().histogram("iteration_wall_us");
  double prev_wall_ms = 0;
  // The iterated stream: previous iteration's final output (seeded by the
  // initial input or the initial state).
  std::string prev_output =
      spec.iterate_input ? spec.initial_input : spec.initial_state;

  for (int k = 1; k <= spec.max_iterations; ++k) {
    if (traced) TraceRecorder::instance().span_begin("iteration", vt, k);
    double iter_init_ms = 0;
    std::string stage_input =
        spec.iterate_input ? prev_output : spec.initial_input;
    std::string iter_output;

    for (std::size_t s = 0; s < spec.stages.size(); ++s) {
      const IterativeSpec::Stage& stage = spec.stages[s];
      JobConf body;
      body.name =
          spec.name + "-it" + std::to_string(k) + "-s" + std::to_string(s);
      body.set_input(stage_input, stage.mapper);
      for (const auto& side : stage.side_inputs) body.inputs.push_back(side);
      // Intermediate stages get a _s<N> suffix; the final stage's output is
      // the iteration output proper.
      body.output_path = spec.work_dir + "/iter" + std::to_string(k) +
                         (s + 1 < spec.stages.size() ? "_s" + std::to_string(s)
                                                     : "");
      if (stage.use_cache) body.cache_path = prev_output;
      body.reducer = stage.reducer;
      body.combiner = stage.combiner;
      body.num_map_tasks = spec.num_map_tasks;
      body.num_reduce_tasks = spec.num_reduce_tasks;
      body.params = spec.params;

      JobResult res = engine_.run_job(body, vt);
      vt = res.end_vt_ns;
      iter_init_ms += static_cast<double>(res.critical_init_ns) / 1e6;

      if (s + 1 < spec.stages.size()) {
        stage_input = body.output_path;
      } else {
        iter_output = body.output_path;
      }
    }

    IterationStat st;
    st.iteration = k;
    st.distance = -1;

    // Convergence-check job (the paper's "additional MapReduce job").
    bool stop = false;
    if (spec.distance_threshold >= 0) {
      DistanceFn dist = spec.distance;
      JobConf check;
      check.name = spec.name + "-check" + std::to_string(k);
      check.inputs.push_back(InputSpec{
          prev_output, [] { return std::make_unique<TagMapper>(kPrevTag); }});
      check.inputs.push_back(InputSpec{
          iter_output, [] { return std::make_unique<TagMapper>(kCurTag); }});
      check.output_path = spec.work_dir + "/check" + std::to_string(k);
      check.reducer = make_reducer([dist](const Bytes& key,
                                          const std::vector<Bytes>& values,
                                          Emitter& out) {
        Bytes prev, cur;
        for (const Bytes& v : values) {
          IMR_CHECK_MSG(!v.empty(), "untagged value in check job");
          if (v[0] == kPrevTag) {
            prev = v.substr(1);
          } else {
            cur = v.substr(1);
          }
        }
        Bytes enc;
        encode_f64(dist(key, prev, cur), enc);
        out.emit(key, std::move(enc));
      });
      check.num_map_tasks = spec.num_map_tasks > 0 ? spec.num_map_tasks : 0;
      check.num_reduce_tasks = spec.num_reduce_tasks;
      check.params = spec.params;

      JobResult cres = engine_.run_job(check, vt);
      vt = cres.end_vt_ns;
      iter_init_ms += static_cast<double>(cres.critical_init_ns) / 1e6;

      // The driver (client program) reads the tiny distance output.
      TaskContext master(cluster_, spec.name + "-driver", 0, vt);
      double total = 0;
      for (const auto& part :
           resolve_input_paths(cluster_.dfs(), check.output_path)) {
        for (const KV& kv : master.dfs_read_all(part)) {
          total += as_f64(kv.value);
        }
      }
      vt = master.vt().now_ns();
      st.distance = total;
      stop = total < spec.distance_threshold;
      for (const auto& f : cluster_.dfs().list(check.output_path + "/")) {
        cluster_.dfs().remove(f);
      }
    }

    cum_init_ms += iter_init_ms;
    st.wall_ms_end = static_cast<double>(vt) / 1e6;
    st.init_ms = iter_init_ms;
    report.iterations.push_back(st);
    report.iterations_run = k;
    iter_hist.record(
        static_cast<int64_t>((st.wall_ms_end - prev_wall_ms) * 1000.0));
    prev_wall_ms = st.wall_ms_end;
    if (traced) TraceRecorder::instance().span_end("iteration", vt);

    IMR_INFO << spec.name << " [MapReduce] iteration " << k << " done at "
             << st.wall_ms_end << " ms, distance " << st.distance;

    // Garbage-collect: intermediate stage outputs of this iteration, and
    // whole-iteration outputs older than the previous one (the next check
    // job still needs iter k-1).
    if (spec.gc_intermediate) {
      for (std::size_t s = 0; s + 1 < spec.stages.size(); ++s) {
        std::string mid =
            spec.work_dir + "/iter" + std::to_string(k) + "_s" +
            std::to_string(s);
        for (const auto& f : cluster_.dfs().list(mid + "/")) {
          cluster_.dfs().remove(f);
        }
      }
      if (k >= 3) {
        std::string old = spec.work_dir + "/iter" + std::to_string(k - 2);
        for (const auto& f : cluster_.dfs().list(old + "/")) {
          cluster_.dfs().remove(f);
        }
      }
    }
    prev_output = iter_output;
    final_output_ = iter_output;

    if (stop) {
      report.converged = true;
      break;
    }
  }

  report.total_wall_ms = static_cast<double>(vt) / 1e6;
  report.init_wall_ms = cum_init_ms;
  report.capture(cluster_.metrics());
  if (traced) TraceRecorder::instance().set_thread_track(prev_track);
  return report;
}

}  // namespace imr
