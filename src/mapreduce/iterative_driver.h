// IterativeDriver — the §2.1 baseline: implement an iterative algorithm as a
// user-written driver that submits a chain of MapReduce jobs, one (or more)
// per iteration, each reloading from and dumping to DFS, with an *additional*
// MapReduce job after each iteration to test convergence.
//
// This is exactly the structure whose overheads (§2.2) iMapReduce removes;
// every figure in the evaluation compares against it. The driver supports:
//   - multiple stages per iteration (matrix power runs two jobs, §5.2.1)
//   - side inputs re-read every iteration (the static multiplicand M)
//   - a distributed-cache feed of the previous iteration's output (the
//     K-means centroids, §5.1)
#pragma once

#include "cluster/cluster.h"
#include "mapreduce/engine.h"
#include "metrics/metrics.h"

namespace imr {

// User-supplied distance between a key's previous and current value
// (Manhattan/Euclidean contributions are summed across keys).
using DistanceFn =
    std::function<double(const Bytes& key, const Bytes& prev, const Bytes& cur)>;

struct IterativeSpec {
  struct Stage {
    // Mapper for the iterated data stream of this stage (stage 0 reads the
    // iterated input; stage s>0 reads stage s-1's output).
    MapperFactory mapper;
    // Additional inputs re-read every iteration (static data the baseline
    // has to reload and reshuffle — §2.2 limitation 2).
    std::vector<InputSpec> side_inputs;
    ReducerFactory reducer;
    ReducerFactory combiner;
    // Attach the previous iteration's final output as distributed cache
    // (e.g. the current centroids for the K-means baseline).
    bool use_cache = false;
  };

  std::string name = "iterative";
  // The data stream fed to stage 0. With iterate_input=true (graph
  // algorithms) this is the iteration-0 joined state+static records and each
  // subsequent iteration reads the previous output. With false (K-means) the
  // same input is re-read every iteration and `initial_state` seeds the
  // iterated output/cache stream.
  std::string initial_input;
  std::string initial_state;  // only used when iterate_input == false
  bool iterate_input = true;
  std::string work_dir;  // iteration outputs go under here

  std::vector<Stage> stages;  // >= 1
  int num_map_tasks = 0;
  int num_reduce_tasks = 0;
  Params params;

  int max_iterations = 10;
  // < 0: fixed number of iterations, no convergence-check job. >= 0: run a
  // check job after every iteration and stop when the summed distance drops
  // below the threshold.
  double distance_threshold = -1.0;
  DistanceFn distance;

  bool gc_intermediate = true;

  // Convenience for the common single-stage case.
  void set_body(MapperFactory m, ReducerFactory r, ReducerFactory c = nullptr) {
    stages.clear();
    Stage s;
    s.mapper = std::move(m);
    s.reducer = std::move(r);
    s.combiner = std::move(c);
    stages.push_back(std::move(s));
  }
};

class IterativeDriver {
 public:
  explicit IterativeDriver(Cluster& cluster)
      : cluster_(cluster), engine_(cluster) {}

  // Runs the chain; the returned report has one IterationStat per iteration
  // (wall = virtual ms since submission) and end-of-run traffic totals.
  RunReport run(const IterativeSpec& spec);

  // DFS path of the final iteration's output after run().
  const std::string& final_output() const { return final_output_; }

 private:
  Cluster& cluster_;
  MapReduceEngine engine_;
  std::string final_output_;
};

}  // namespace imr
