#include "mapreduce/api.h"

namespace imr {

namespace {

class LambdaMapper : public Mapper {
 public:
  explicit LambdaMapper(
      std::function<void(const Bytes&, const Bytes&, Emitter&)> fn)
      : fn_(std::move(fn)) {}
  void map(const Bytes& key, const Bytes& value, Emitter& out) override {
    fn_(key, value, out);
  }

 private:
  std::function<void(const Bytes&, const Bytes&, Emitter&)> fn_;
};

class LambdaReducer : public Reducer {
 public:
  explicit LambdaReducer(
      std::function<void(const Bytes&, const std::vector<Bytes>&, Emitter&)> fn)
      : fn_(std::move(fn)) {}
  void reduce(const Bytes& key, const std::vector<Bytes>& values,
              Emitter& out) override {
    fn_(key, values, out);
  }

 private:
  std::function<void(const Bytes&, const std::vector<Bytes>&, Emitter&)> fn_;
};

}  // namespace

MapperFactory make_mapper(
    std::function<void(const Bytes&, const Bytes&, Emitter&)> fn) {
  return [fn = std::move(fn)] { return std::make_unique<LambdaMapper>(fn); };
}

ReducerFactory make_reducer(
    std::function<void(const Bytes&, const std::vector<Bytes>&, Emitter&)> fn) {
  return [fn = std::move(fn)] { return std::make_unique<LambdaReducer>(fn); };
}

}  // namespace imr
