// Classic MapReduce programming interface (the Hadoop-equivalent baseline).
//
// User code implements Mapper/Reducer over byte records; factories produce a
// fresh instance per task because tasks run concurrently and may keep state.
// A Combiner is a Reducer run on the map side (§5.1.3's K-means-with-Combiner
// experiment uses it).
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/params.h"

namespace imr {

// Receives the key-value pairs produced by user functions.
class Emitter {
 public:
  virtual ~Emitter() = default;
  virtual void emit(Bytes key, Bytes value) = 0;
};

class Mapper {
 public:
  virtual ~Mapper() = default;
  // Called once per task before any map() with the job parameters.
  virtual void configure(const Params& /*params*/) {}
  // Called once per task with the records of JobConf::cache_path (Hadoop
  // distributed-cache equivalent; e.g. the current K-means centroids).
  virtual void attach_cache(const KVVec& /*records*/) {}
  virtual void map(const Bytes& key, const Bytes& value, Emitter& out) = 0;
  // Called once per task after the last map() (Hadoop's cleanup()); lets a
  // mapper emit per-task aggregates (e.g. a partial gradient).
  virtual void flush(Emitter& /*out*/) {}
};

class Reducer {
 public:
  virtual ~Reducer() = default;
  virtual void configure(const Params& /*params*/) {}
  virtual void reduce(const Bytes& key, const std::vector<Bytes>& values,
                      Emitter& out) = 0;
};

using MapperFactory = std::function<std::unique_ptr<Mapper>()>;
using ReducerFactory = std::function<std::unique_ptr<Reducer>()>;

// Adapters for lambda-style user code.
MapperFactory make_mapper(
    std::function<void(const Bytes&, const Bytes&, Emitter&)> fn);
ReducerFactory make_reducer(
    std::function<void(const Bytes&, const std::vector<Bytes>&, Emitter&)> fn);

// An input source: a DFS path (file or directory prefix) with the mapper
// applied to its records. Multiple inputs reproduce Hadoop's MultipleInputs,
// which the convergence-check job needs (it reads two consecutive iteration
// outputs).
struct InputSpec {
  std::string path;
  MapperFactory mapper;
};

struct JobConf {
  std::string name = "job";
  std::vector<InputSpec> inputs;
  std::string output_path;
  // Optional side file (or directory) read by every map task at startup and
  // passed to Mapper::attach_cache — Hadoop's distributed cache. Charged as
  // a DFS read per map task, every job.
  std::string cache_path;
  ReducerFactory reducer;
  ReducerFactory combiner;  // optional
  int num_map_tasks = 0;    // 0: one per input block, capped by map slots
  int num_reduce_tasks = 0; // 0: all reduce slots
  Params params;
  // Sort values within each key group before reducing, making floating-point
  // accumulation independent of shuffle arrival order.
  bool deterministic_reduce = true;
  // Memory governance (DESIGN.md §10): per-reduce-task byte budget for the
  // collected shuffle input. 0 = unlimited (today's behavior). When set,
  // over-budget input is sorted and spilled to MiniDfs as runs and the group
  // pass streams a k-way merge over runs + in-memory tail — byte-identical
  // output. Requires deterministic_reduce.
  int64_t max_task_memory_bytes = 0;

  // Convenience for the common single-input case.
  void set_input(std::string path, MapperFactory mapper) {
    inputs.clear();
    inputs.push_back(InputSpec{std::move(path), std::move(mapper)});
  }
};

// Outcome of one job, in virtual time.
struct JobResult {
  int64_t submit_vt_ns = 0;
  int64_t end_vt_ns = 0;
  // Initialization charged on the critical path (job setup + first task
  // wave launch) — the paper's "(ex. init.)" curves subtract this.
  int64_t critical_init_ns = 0;
  int64_t map_input_records = 0;
  int64_t map_output_records = 0;
  int64_t reduce_input_groups = 0;
  int64_t reduce_output_records = 0;

  double duration_ms() const {
    return static_cast<double>(end_vt_ns - submit_vt_ns) / 1e6;
  }
};

}  // namespace imr
